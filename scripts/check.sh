#!/usr/bin/env bash
# Tier-1 verification: configure + build (warnings are errors) + full test
# suite. Exits nonzero on the first failure.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}" \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

# Compile-footprint guard: the fused registry instantiates the full
# compile-time pipeline 12x (4 line codes x 3 CRCs) in one TU, which is
# exactly where template bloat would creep in.  Touch the fused headers,
# rebuild just the datalink library, and fail if the rebuild blows past a
# generous ceiling — a regression here means an instantiation explosion,
# not a slow machine (the ceiling is ~10x the current cost).
echo "fused compile-footprint guard..."
touch "${repo_root}/src/datalink/fused/pipeline.hpp" \
  "${repo_root}/src/phy/linecode_static.hpp" \
  "${repo_root}/src/datalink/errordetect/detector_static.hpp" \
  "${repo_root}/src/datalink/framing/framing_static.hpp"
footprint_start="$(date +%s)"
cmake --build "${build_dir}" --target sublayer_datalink -j "${jobs}" >/dev/null
footprint_secs="$(( $(date +%s) - footprint_start ))"
echo "datalink rebuild (12 fused instantiations): ${footprint_secs}s"
if (( footprint_secs > 120 )); then
  echo "fused compile footprint regressed: ${footprint_secs}s > 120s" >&2
  exit 1
fi

# Bench smoke: one tiny run of each perf bench binary (output discarded) so
# a broken benchmark fails tier-1 instead of being discovered at bench time.
echo "bench smoke..."
"${build_dir}/bench/bench_datalink_stack" --smoke >/dev/null
"${build_dir}/bench/bench_tcp_goodput" >/dev/null
"${build_dir}/bench/bench_manyflow" --smoke >/dev/null
"${build_dir}/bench/bench_snapshot" --smoke >/dev/null
echo "bench smoke OK"

# Cross-thread-count replay matrix: the determinism contract, asserted as
# its own named step.  Each suite runs the same seeded workload at 1, 2,
# and 4 workers (ring replay, run-ahead line+island, burst dequeue) and
# diffs events, telemetry, traces, and observability exports bit for bit.
echo "replay matrix (1/2/4 workers)..."
"${build_dir}/tests/test_sim" \
  --gtest_filter='ParallelReplay*:RunAhead*:*BatchReplay*' >/dev/null
echo "replay matrix OK"

# Chaos matrix: fork several alternative fault futures from one warmed
# snapshot.  The bench exits nonzero unless the futures diverge, every
# future heals all its faults, and re-running a future reproduces it
# bit-for-bit — the snapshot must be a reusable launch pad.
echo "chaos matrix..."
matrix_out="$("${build_dir}/bench/bench_snapshot" --matrix 4)"
grep -q '^CHAOS_MATRIX_OK$' <<<"${matrix_out}"
echo "chaos matrix OK"

# Observability export validation: run the observe bench's smoke pass (it
# writes a pcapng capture and a Chrome-trace JSON next to itself) and check
# both artifacts structurally — the pcapng block layout a libpcap reader
# needs, and JSON that chrome://tracing would load.
echo "observe export check..."
observe_dir="${build_dir}/observe-smoke"
rm -rf "${observe_dir}"
mkdir -p "${observe_dir}"
(cd "${observe_dir}" && "${build_dir}/bench/bench_observe" --smoke >/dev/null)
python3 - "${observe_dir}/observe_smoke.pcapng" \
  "${observe_dir}/observe_smoke.trace.json" <<'PYEOF'
import json, struct, sys

pcap, trace = sys.argv[1], sys.argv[2]
data = open(pcap, "rb").read()

# Walk every pcapng block: SHB first with the little-endian byte-order
# magic, consistent leading/trailing lengths, at least one IDB and one EPB.
assert len(data) >= 28, "pcapng too short"
block_types = []
off = 0
while off < len(data):
    assert off + 12 <= len(data), "truncated block header"
    btype, blen = struct.unpack_from("<II", data, off)
    assert blen >= 12 and blen % 4 == 0, f"bad block length {blen}"
    assert off + blen <= len(data), "block overruns file"
    (trailer,) = struct.unpack_from("<I", data, off + blen - 4)
    assert trailer == blen, "trailing length mismatch"
    block_types.append(btype)
    off += blen
assert block_types[0] == 0x0A0D0D0A, "first block is not an SHB"
(bom,) = struct.unpack_from("<I", data, 8)
assert bom == 0x1A2B3C4D, "byte-order magic mismatch"
assert 1 in block_types, "no Interface Description Block"
assert 6 in block_types, "no Enhanced Packet Block"

doc = json.load(open(trace))
events = doc["traceEvents"]
assert isinstance(events, list) and events, "empty traceEvents"
for ev in events:
    assert {"name", "ph", "pid", "tid", "ts"} <= set(ev), f"bad event {ev}"
phases = {ev["ph"] for ev in events}
assert "X" in phases, "no complete spans in trace"

print(f"observe export OK: {len(block_types)} pcapng blocks, "
      f"{len(events)} trace events")
PYEOF
rm -rf "${observe_dir}"

# Sanitizer pass: ASan+UBSan over the paths that chew on adversarial input —
# chaos (fault injection, crash/restart teardown ordering), transport
# robustness (garbage/forgery injection), and the event engine (pooled
# slot recycling, stale-id cancels, hash-table rehash under re-entrant
# handlers). Skippable for quick local loops with SKIP_SANITIZERS=1.
if [[ "${SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo "ASan+UBSan pass (chaos + robustness + scheduler)..."
  san_dir="${build_dir}-asan"
  san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B "${san_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror ${san_flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${san_flags}" >/dev/null
  cmake --build "${san_dir}" -j "${jobs}" \
    --target test_chaos test_transport test_datalink test_sim test_common \
    test_integration >/dev/null
  # Chaos smoke: the unit tests plus one soak seed per script (the full
  # 140-case sweep runs in the regular suite above; under sanitizers one
  # representative seed each keeps the pass quick).
  "${san_dir}/tests/test_chaos" --gtest_filter='-*ChaosSoak*' >/dev/null
  "${san_dir}/tests/test_chaos" --gtest_filter='*ChaosSoak*_seed1' >/dev/null
  "${san_dir}/tests/test_transport" \
    --gtest_filter='Robustness.*:Keepalive.*' >/dev/null
  # Batched pipeline under ASan: the arena recycles buffers the stages
  # hand around, so stale-use bugs in the batch paths are exactly what
  # address poisoning catches.  The fused equivalence matrix rides along:
  # the compile-time pipeline reuses those arena buffers per-frame too, and
  # its corruption legs feed truncated/flipped wires through every stage.
  "${san_dir}/tests/test_datalink" \
    --gtest_filter='*Resync*:*BatchPipeline*:*FusedEquivalence*:*FusedRegistry*' \
    >/dev/null
  # Scheduler determinism + flat-hash churn: the timer wheel recycles
  # pooled slots and the demux tables rehash mid-dispatch; both are
  # use-after-free factories if ever wrong, so run them under ASan.
  # BatchReplay rides along: burst dequeue drains engine slots in batches.
  "${san_dir}/tests/test_sim" \
    --gtest_filter='*SchedulerDeterminism*:*SchedulerCrossEngine*:Simulator.*:Timer.*:*BatchReplay*' \
    >/dev/null
  "${san_dir}/tests/test_common" \
    --gtest_filter='FlatHash*:FrameArena*' >/dev/null
  # Snapshot replay under ASan: save serializes every live structure and
  # restore re-arms events into recycled pool slots — both are prime
  # use-after-free territory.  Container + module round-trips, TimeTravel
  # re-execution, ARQ mid-retransmit resume, and the full-stack
  # snapshot-resume suite (both engines, 1/2/4 shards, clean + mayhem).
  "${san_dir}/tests/test_sim" --gtest_filter='*Snapshot*:*TimeTravel*' \
    >/dev/null
  "${san_dir}/tests/test_datalink" --gtest_filter='*ArqSnapshot*' >/dev/null
  "${san_dir}/tests/test_integration" --gtest_filter='SnapshotResume.*' \
    >/dev/null
  # Fused replay + cross-config snapshot resume under ASan: the plane swap
  # (dynamic image restored into a fused stack and back) re-arms ARQ state
  # against a different plane implementation, and the replay leg drives the
  # fused pipeline through the full impaired-wire burst matrix.
  "${san_dir}/tests/test_sim" --gtest_filter='*FusedPlane*' >/dev/null
  "${san_dir}/tests/test_integration" --gtest_filter='*FusedSnapshot*' \
    >/dev/null
  echo "ASan+UBSan OK"

  # TSan pass: the parallel sharded engine is the one genuinely
  # multi-threaded subsystem — worker threads, barrier handoffs, SPSC
  # mailboxes, thread-local registry/clock switching. Run the parallel
  # unit tests and the full replay suite (which spins up 1/2/4-worker
  # runs of the real stack) under ThreadSanitizer so any missed
  # happens-before edge fails tier-1, not a soak run.
  echo "TSan pass (parallel engine + replay suite)..."
  tsan_dir="${build_dir}-tsan"
  tsan_flags="-fsanitize=thread -fno-omit-frame-pointer"
  cmake -B "${tsan_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror ${tsan_flags}" \
    -DCMAKE_EXE_LINKER_FLAGS="${tsan_flags}" >/dev/null
  cmake --build "${tsan_dir}" -j "${jobs}" \
    --target test_sim test_integration >/dev/null
  # RunAhead* covers the shards the per-pair horizon engine leaves
  # unthrottled (sink-only, disconnected island) — the paths where a
  # worker runs far past its peers and any barrier-ordering mistake
  # becomes a data race; Partitioner* rides along for the ShardMap plan.
  "${tsan_dir}/tests/test_sim" \
    --gtest_filter='ShardMap*:ParallelSim*:ParallelReplay*:Partitioner*:RunAhead*:*TimerRace*:*BatchReplay*' \
    >/dev/null
  # Snapshot replay under TSan: parallel save/restore happens at barrier
  # park points and the resumed run re-spins the worker pool — any missed
  # happens-before edge between restore and the first epoch shows here.
  "${tsan_dir}/tests/test_integration" \
    --gtest_filter='SnapshotResume.Parallel*:SnapshotResume.ThreadCount*' \
    >/dev/null
  echo "TSan OK"
fi
