#!/usr/bin/env bash
# Tier-1 verification: configure + build (warnings are errors) + full test
# suite. Exits nonzero on the first failure.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}" \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

# Bench smoke: one tiny run of each perf bench binary (output discarded) so
# a broken benchmark fails tier-1 instead of being discovered at bench time.
echo "bench smoke..."
"${build_dir}/bench/bench_datalink_stack" --smoke >/dev/null
"${build_dir}/bench/bench_tcp_goodput" >/dev/null
echo "bench smoke OK"
