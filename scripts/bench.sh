#!/usr/bin/env bash
# Runs the performance benchmarks with fixed seeds and writes the
# machine-readable results to BENCH_datalink.json / BENCH_tcp.json /
# BENCH_manyflow.json at the repo root.  Each bench binary prints its
# results on a single line prefixed with "BENCH_JSON "; this script
# extracts it.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# --trajectory: no benches — fold the headline numbers of every committed
# BENCH_*.json into one dated line appended to BENCH_trajectory.json, so
# the performance history of the repo reads as a time series.
if [[ "${1:-}" == "--trajectory" ]]; then
  python3 - "${repo_root}" <<'PYEOF'
import datetime, glob, json, os, sys
root = sys.argv[1]
snap = {"date": datetime.date.today().isoformat(), "headline": {}}
for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
    name = os.path.basename(path)[len("BENCH_"):-len(".json")]
    if name == "trajectory":
        continue
    doc = json.load(open(path))
    h = {}
    if name == "datalink":
        h["dataplane_nrz_mbps"] = next(
            r["mbps"] for r in doc["dataplane"] if r["label"] == "nrz")
        if doc.get("dataplane_fused"):
            h["fused_nrz_mbps"] = next(
                r["mbps"] for r in doc["dataplane_fused"]
                if r["label"] == "nrz")
        h["batched_nrz_peak_mbps"] = max(
            r["mbps"] for r in doc["dataplane_batched"]
            if r["label"] == "nrz")
    elif name == "tcp":
        rows = [r for r in doc["rows"]
                if r["sweep"] == "loss" and r["x"] == 0]
        if rows:
            h["lossless_sublayered_mbps"] = rows[0]["sublayered_mbps"]
            h["lossless_monolithic_mbps"] = rows[0]["monolithic_mbps"]
        if "header_codec" in doc:
            h["header_crossing_overhead_ns"] = \
                doc["header_codec"]["crossing_overhead_ns"]
    elif name == "manyflow":
        for key in ("speedup_at_4096_flows", "wheel_cancel_flatness",
                    "parallel_speedup_at_4_threads", "parallel_effective",
                    "detected_cores", "fat_tree_topo_vs_hash"):
            if key in doc:
                h[key] = doc[key]
    elif name == "observe":
        h["tap_disabled_overhead_pct"] = doc["tap_disabled_overhead_pct"]
    elif name == "snapshot":
        h["mono_clean_image_bytes"] = next(
            r["image_bytes"] for r in doc["workloads"]
            if r["label"] == "mono-clean")
    if not h:  # unknown bench: keep its headline-free presence visible
        h["present"] = True
    snap["headline"][name] = h
out = os.path.join(root, "BENCH_trajectory.json")
with open(out, "a") as f:
    f.write(json.dumps(snap, sort_keys=True) + "\n")
print(f"appended {snap['date']} snapshot of "
      f"{len(snap['headline'])} benches to {out}")
PYEOF
  exit 0
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-Release}" >/dev/null
cmake --build "${build_dir}" -j "${jobs}" \
  --target bench_datalink_stack bench_tcp_goodput bench_manyflow \
  bench_observe bench_snapshot >/dev/null

extract_json() {
  # Prints the payload of the (last) BENCH_JSON line of the given output.
  grep '^BENCH_JSON ' <<<"$1" | tail -n 1 | sed 's/^BENCH_JSON //'
}

echo "== bench_datalink_stack =="
datalink_out="$("${build_dir}/bench/bench_datalink_stack")"
echo "${datalink_out}"
extract_json "${datalink_out}" >"${repo_root}/BENCH_datalink.json"
echo "wrote ${repo_root}/BENCH_datalink.json"
# The batched-data-path acceptance bar: the arena + burst + stage-major
# pipeline must hold >= 5x the committed unbatched nrz throughput
# (44.36 MB/s -> 221.8 MB/s) at identical goodput, with steady-state heap
# traffic under 2 allocations per frame on every batched row.
python3 - "${repo_root}/BENCH_datalink.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = doc["dataplane_batched"]
assert rows, "no batched dataplane rows"
for r in rows:
    assert r["goodput_bytes"] == 522000, \
        f"batched goodput drifted: {r['label']} burst {r['burst']}"
    assert r["heap_allocs_per_frame"] <= 2.0, \
        f"heap allocs/frame {r['heap_allocs_per_frame']} > 2 " \
        f"({r['label']} burst {r['burst']})"
best_nrz = max(r["mbps"] for r in rows if r["label"] == "nrz")
assert best_nrz >= 221.8, \
    f"batched nrz peak {best_nrz:.2f} MB/s below the 221.8 MB/s (5x) bar"
print(f"batched nrz peak {best_nrz:.2f} MB/s (bar 221.8), "
      f"allocs/frame <= 2 on all {len(rows)} rows")

# Compile-time fusion acceptance bar (DESIGN.md §15, E19): the fused
# per-frame nrz round trip must hold >= 1.3x the committed dynamic-plane
# throughput (145.38 MB/s -> 189.0 MB/s) at identical goodput, and the
# fused plane must never change the E10 virtual-time trace.
fused = doc["dataplane_fused"]
assert fused, "no fused dataplane rows"
for r in fused:
    assert r["goodput_bytes"] == 522000, \
        f"fused goodput drifted: {r['label']}"
fused_nrz = next(r["mbps"] for r in fused if r["label"] == "nrz")
assert fused_nrz >= 189.0, \
    f"fused nrz {fused_nrz:.2f} MB/s below the 189.0 MB/s (1.3x) bar"
assert doc["e10_fused_parity"] is True, "fused plane changed the E10 trace"
print(f"fused nrz {fused_nrz:.2f} MB/s (bar 189.0, committed dynamic "
      f"145.38), E10 parity holds")
PYEOF

echo "== bench_tcp_goodput =="
tcp_out="$("${build_dir}/bench/bench_tcp_goodput")"
echo "${tcp_out}"
extract_json "${tcp_out}" >"${repo_root}/BENCH_tcp.json"
echo "wrote ${repo_root}/BENCH_tcp.json"

echo "== bench_manyflow =="
manyflow_out="$("${build_dir}/bench/bench_manyflow")"
echo "${manyflow_out}"
extract_json "${manyflow_out}" >"${repo_root}/BENCH_manyflow.json"
echo "wrote ${repo_root}/BENCH_manyflow.json"
# The parallel acceptance bar (E20): >= 2.0x events/sec over monolithic at
# 4 worker threads on the ring sweep — but ONLY when the machine can
# actually run 4 workers (parallel_effective, i.e. detected_cores >= 4).
# On smaller containers the sub-unity speedup is a property of the host,
# not the engine, so the gate reports and skips instead of failing.
python3 - "${repo_root}/BENCH_manyflow.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
cores = doc.get("detected_cores", 0)
sp = doc.get("parallel_speedup_at_4_threads", 0.0)
if doc.get("parallel_effective", False):
    assert sp >= 2.0, \
        f"parallel speedup {sp:.2f}x at 4 threads below the 2.0x bar " \
        f"on a {cores}-core host"
    print(f"parallel speedup {sp:.2f}x at 4 threads (bar 2.0x, "
          f"{cores} cores)")
else:
    print(f"parallel speedup gate SKIPPED: {cores} core(s) < 4 "
          f"(measured {sp:.2f}x is host-bound, not an engine regression)")
PYEOF

echo "== bench_observe =="
observe_out="$("${build_dir}/bench/bench_observe")"
echo "${observe_out}"
extract_json "${observe_out}" >"${repo_root}/BENCH_observe.json"
echo "wrote ${repo_root}/BENCH_observe.json"
# The observability acceptance bar: taps compiled in but with no hub
# installed must cost <= 5% on the datalink dataplane loop.
python3 - "${repo_root}/BENCH_observe.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
pct = doc["tap_disabled_overhead_pct"]
assert pct <= 5.0, f"disabled-tap overhead {pct:.2f}% exceeds the 5% budget"
print(f"disabled-tap overhead {pct:.2f}% (budget 5%)")
PYEOF

echo "== bench_snapshot =="
snapshot_out="$("${build_dir}/bench/bench_snapshot")"
echo "${snapshot_out}"
extract_json "${snapshot_out}" >"${repo_root}/BENCH_snapshot.json"
echo "wrote ${repo_root}/BENCH_snapshot.json"
# Structural bar: all four workload rows present (mono/parallel x
# clean/chaos) with nonzero images and timings, and the snapshot stays a
# checkpoint, not a second copy of the heap — a loose 16 MB ceiling on the
# ring-workload image catches accidental full-buffer serialization.
python3 - "${repo_root}/BENCH_snapshot.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = {r["label"]: r for r in doc["workloads"]}
for label in ("mono-clean", "mono-chaos", "par4-clean", "par4-chaos"):
    r = rows[label]
    assert r["image_bytes"] > 0 and r["save_ns"] > 0 and r["restore_ns"] > 0, \
        f"degenerate measurement for {label}"
    assert r["image_bytes"] < 16 * 1024 * 1024, \
        f"{label} image {r['image_bytes']} bytes: snapshot bloat"
print(", ".join(f"{label} {rows[label]['image_bytes']}B "
                f"save {rows[label]['save_ns']/1e3:.0f}us "
                f"restore {rows[label]['restore_ns']/1e3:.0f}us"
                for label in sorted(rows)))
PYEOF
