// Experiment E14: control-plane scale — N concurrent sublayered TCP flows
// through a router line, timer wheel vs the legacy binary-heap scheduler.
//
// The data plane got its speedup in PR 2; this bench measures the *other*
// axis a production stack must scale on: how the event engine and the
// demux behave as the number of live connections (and therefore armed,
// cancelled, and expiring timers) grows.  Two parts:
//
//   1. A scheduler microbench: pop cost as a function of how many
//      cancelled-but-unexpired events are outstanding.  The legacy heap
//      scans its cancellation list on every pop (O(cancelled)); the wheel
//      must stay flat.
//   2. The many-flow run: N ∈ {64, 256, 1024, 4096} flows, each engine,
//      reporting events/sec, wall-clock per simulated second, timer
//      arm/cancel/expire rates, and resident bytes per flow.
//   3. The parallel sweep: the same flow population on an 8-router ring
//      sharded one-router-per-shard across a ParallelSimulator, at worker
//      thread counts {1, 2, 4, 8} plus the monolithic Simulator baseline.
//      Reports events/sec and speedup over monolithic, and asserts the
//      conservative engine's determinism contract: identical event counts
//      and cross-shard frame counts at every thread count.
//   5. The fat-tree sweep (E20): a 14-router fat-tree-ish topology with
//      heterogeneous latencies (500 us core uplinks, 20 us pod links),
//      partitioned by hash vs ShardMap::topology_aware onto 4 shards.
//      The topology-aware cut keeps pods intact, so the per-pair horizon
//      engine throttles on the wide uplinks instead of the narrow pod
//      links; rows report connected_shard_pairs, min_pair_lookahead, and
//      run-ahead epoch counts alongside throughput.
//
// Honesty: speedup over monolithic is only meaningful on multi-core
// hardware.  The JSON carries `detected_cores` and a `parallel_effective`
// flag (cores >= 4) so a sub-unity speedup measured inside a 1-core
// container is machine-distinguishable from a real regression; bench.sh
// gates on the speedup only when parallel_effective is true.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

// Live-byte tracking for the bytes-per-flow figure (via the shared harness
// hook: malloc_usable_size residency, atomics — Part 3's worker threads
// allocate concurrently).
#define SUBLAYER_BENCH_TRACK_ALLOCS
#include "bench/harness.hpp"
#include "sim/parallel.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "transport/sublayered/host.hpp"

using namespace sublayer;

namespace {

const char* engine_name(sim::EngineKind kind) {
  return kind == sim::EngineKind::kTimerWheel ? "wheel" : "legacy_heap";
}

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---- Part 1: cancel-cost microbench -----------------------------------------

struct CancelRow {
  sim::EngineKind kind;
  std::size_t outstanding_cancelled = 0;
  double ns_per_pop = 0;
};

/// Pops `live` due events while `cancelled` far-future events sit in the
/// engine as cancelled-but-unexpired husks.  The heap's lazy-cancel list
/// makes every pop scan those husks; the wheel never touches them.
CancelRow measure_cancel_cost(sim::EngineKind kind, std::size_t live,
                              std::size_t cancelled) {
  auto engine = sim::make_engine(kind);
  for (std::size_t i = 0; i < live; ++i) {
    engine->schedule(TimePoint::from_ns(static_cast<std::int64_t>(i + 1)),
                     [] {});
  }
  std::vector<sim::EventId> victims;
  victims.reserve(cancelled);
  for (std::size_t i = 0; i < cancelled; ++i) {
    victims.push_back(engine->schedule(
        TimePoint::from_ns(1'000'000'000'000 +
                           static_cast<std::int64_t>(i)),
        [] {}));
  }
  for (const auto id : victims) engine->cancel(id);

  constexpr TimePoint kForever =
      TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
  const auto start = std::chrono::steady_clock::now();
  TimePoint when;
  sim::EventEngine::Fn fn;
  std::size_t popped = 0;
  while (popped < live && engine->pop_if(kForever, when, fn)) ++popped;
  const double wall = wall_seconds_since(start);
  return CancelRow{kind, cancelled, wall * 1e9 / static_cast<double>(live)};
}

/// Warm (page-in, branch-train) then measure; the min of three runs
/// strips scheduler noise from a microsecond-scale measurement.
CancelRow measure_cancel_cost_stable(sim::EngineKind kind, std::size_t live,
                                     std::size_t cancelled) {
  CancelRow best = measure_cancel_cost(kind, live, cancelled);
  for (int i = 0; i < 2; ++i) {
    const CancelRow again = measure_cancel_cost(kind, live, cancelled);
    if (again.ns_per_pop < best.ns_per_pop) best = again;
  }
  return best;
}

// ---- Part 2: many-flow run --------------------------------------------------

struct FlowRunResult {
  sim::EngineKind kind;
  std::size_t flows = 0;
  std::size_t completed = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
  double virt_s = 0;
  double events_per_sec = 0;
  double wall_per_virt_s = 0;
  sim::SchedStats sched;
  double arm_rate = 0;     // schedule() per wall second
  double cancel_rate = 0;  // live cancels per wall second
  double fire_rate = 0;    // expiries per wall second
  double bytes_per_flow = 0;
};

/// N flows client(r0) -> server(r3) across a 4-router line, each moving
/// `per_flow` bytes; runs until every flow completes (or the event budget
/// trips).  Fully seeded: both engines must replay it identically.
FlowRunResult run_flows(sim::EngineKind kind, std::size_t flows,
                        std::size_t per_flow) {
  telemetry::MetricsRegistry::instance().reset();
  telemetry::SpanTracer::instance().reset();

  sim::Simulator sim(kind);
  netlayer::RouterConfig rc;
  rc.routing = netlayer::RoutingKind::kLinkState;
  rc.neighbor.dead_interval = Duration::seconds(3600.0);  // no control flaps
  netlayer::Network net(sim, rc, /*seed=*/1);
  std::vector<netlayer::RouterId> routers;
  for (int i = 0; i < 4; ++i) routers.push_back(net.add_router());
  sim::LinkConfig link;
  link.bandwidth_bps = 10e9;  // the flows, not the wire, must be the limit
  link.propagation_delay = Duration::micros(100);
  link.queue_limit = 4096;
  for (int i = 0; i < 3; ++i) net.connect(routers[i], routers[i + 1], link);
  net.start();
  sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));

  const std::size_t live_before = bench::live_alloc_bytes();
  // Keepalives on, as a production deployment (and the chaos suite) runs
  // them: every received segment restarts a multi-second timer, which is
  // precisely the arm/cancel-heavy pattern a flow-scale scheduler must
  // absorb — the legacy heap's lazily-scanned cancel list degrades on it.
  transport::HostConfig hc;
  hc.connection.cm.keepalive_interval = Duration::seconds(2.0);
  transport::TcpHost client(sim, net.router(routers[0]), 1, hc);
  transport::TcpHost server(sim, net.router(routers[3]), 1, hc);

  std::size_t completed = 0;
  server.listen(80, [&](transport::Connection& conn) {
    transport::Connection::AppCallbacks cb;
    auto received = std::make_shared<std::size_t>(0);
    cb.on_data = [&completed, received, per_flow](Bytes data) {
      *received += data.size();
      if (*received == per_flow) ++completed;
    };
    conn.set_app_callbacks(cb);
  });

  // Connect storm, staggered 10 us apart: a mega-batch of simultaneous
  // SYNs would measure the queue, not the scheduler.
  Rng rng(7);
  const Bytes payload = rng.next_bytes(per_flow);
  for (std::size_t i = 0; i < flows; ++i) {
    sim.schedule(Duration::micros(static_cast<std::int64_t>(10 * i)),
                 [&client, &server, payload] {
                   client.connect(server.addr(), 80).send(payload);
                 });
  }

  const std::uint64_t events_before = sim.events_processed();
  const TimePoint virt_start = sim.now();
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr std::uint64_t kEventBudget = 200'000'000;
  // Stepped, not batched: the measurement must stop AT the last flow's
  // completion, not overshoot into idle periodic-timer churn.
  while (completed < flows &&
         sim.events_processed() - events_before < kEventBudget &&
         sim.step()) {
  }
  const double wall = wall_seconds_since(wall_start);
  const std::size_t live_after = bench::live_alloc_bytes();

  FlowRunResult r;
  r.kind = kind;
  r.flows = flows;
  r.completed = completed;
  r.events = sim.events_processed() - events_before;
  r.wall_s = wall;
  r.virt_s = (sim.now() - virt_start).to_seconds();
  r.events_per_sec = wall > 0 ? static_cast<double>(r.events) / wall : 0;
  r.wall_per_virt_s = r.virt_s > 0 ? wall / r.virt_s : 0;
  r.sched = sim.sched_stats();
  r.arm_rate = wall > 0 ? static_cast<double>(r.sched.armed) / wall : 0;
  r.cancel_rate = wall > 0 ? static_cast<double>(r.sched.cancelled) / wall : 0;
  r.fire_rate = wall > 0 ? static_cast<double>(r.sched.fired) / wall : 0;
  r.bytes_per_flow =
      static_cast<double>(live_after - live_before) / static_cast<double>(flows);
  return r;
}

// ---- Part 3: parallel shard sweep -------------------------------------------

constexpr std::size_t kRing = 8;

struct ParallelRow {
  std::size_t threads = 0;  // 0 = monolithic Simulator baseline
  std::size_t flows = 0;
  std::size_t completed = 0;
  std::uint64_t events = 0;
  std::uint64_t cross_frames = 0;
  std::uint64_t epochs = 0;
  std::uint64_t runahead = 0;
  double wall_s = 0;
  double events_per_sec = 0;
};

netlayer::RouterConfig ring_router_config() {
  netlayer::RouterConfig rc;
  rc.routing = netlayer::RoutingKind::kLinkState;
  rc.neighbor.dead_interval = Duration::seconds(3600.0);
  return rc;
}

sim::LinkConfig ring_link_config() {
  sim::LinkConfig link;
  link.bandwidth_bps = 10e9;
  link.propagation_delay = Duration::micros(100);
  link.queue_limit = 4096;
  return link;
}

/// N flows around an 8-router ring, host on router f%8 -> host on router
/// (f%8+3)%8 (three cross-shard hops), same seeds everywhere.  `threads`
/// 0 runs the monolithic Simulator; otherwise a ParallelSimulator with one
/// router per shard and that many workers.  `burst` is the scheduler's
/// burst-dequeue budget (Simulator::set_burst_budget): it changes how many
/// same-tick events one engine visit drains, and must never change the
/// event trace.
ParallelRow run_ring(std::size_t threads, std::size_t flows,
                     std::size_t per_flow, std::size_t burst = 1) {
  telemetry::MetricsRegistry::instance().reset();
  telemetry::SpanTracer::instance().reset();
  const bool parallel = threads > 0;

  std::unique_ptr<sim::Simulator> mono;
  std::unique_ptr<sim::ParallelSimulator> psim;
  std::unique_ptr<netlayer::Network> net;
  if (parallel) {
    sim::ParallelConfig pc;
    pc.shards = kRing;
    pc.threads = threads;
    pc.burst_budget = burst;
    psim = std::make_unique<sim::ParallelSimulator>(pc);
    sim::ShardMap map(kRing);
    for (std::size_t i = 0; i < kRing; ++i) map.assign(i, i);
    net = std::make_unique<netlayer::Network>(*psim, ring_router_config(),
                                              /*seed=*/1, map);
  } else {
    mono = std::make_unique<sim::Simulator>(sim::EngineKind::kTimerWheel);
    mono->set_burst_budget(burst);
    net = std::make_unique<netlayer::Network>(*mono, ring_router_config(),
                                              /*seed=*/1);
  }
  std::vector<netlayer::RouterId> routers;
  for (std::size_t i = 0; i < kRing; ++i) routers.push_back(net->add_router());
  for (std::size_t i = 0; i < kRing; ++i) {
    net->connect(routers[i], routers[(i + 1) % kRing], ring_link_config());
  }
  net->start();
  const auto warmup = TimePoint::from_ns(Duration::millis(500).ns());
  if (parallel) {
    psim->run_until(warmup);
  } else {
    mono->run_until(warmup);
  }

  transport::HostConfig hc;
  hc.connection.cm.keepalive_interval = Duration::seconds(2.0);
  std::vector<std::unique_ptr<transport::TcpHost>> hosts;
  std::atomic<std::size_t> completed{0};  // servers live on several shards
  for (std::size_t i = 0; i < kRing; ++i) {
    std::optional<sim::ParallelSimulator::ShardScope> scope;
    if (parallel) scope.emplace(*psim, net->shard_of(routers[i]));
    hosts.push_back(std::make_unique<transport::TcpHost>(
        net->router(routers[i]), 1, hc));
    hosts.back()->listen(80, [&completed, per_flow](transport::Connection& c) {
      transport::Connection::AppCallbacks cb;
      auto received = std::make_shared<std::size_t>(0);
      cb.on_data = [&completed, received, per_flow](Bytes data) {
        *received += data.size();
        if (*received == per_flow) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      };
      c.set_app_callbacks(cb);
    });
  }

  Rng rng(7);
  const Bytes payload = rng.next_bytes(per_flow);
  for (std::size_t f = 0; f < flows; ++f) {
    transport::TcpHost* client = hosts[f % kRing].get();
    transport::TcpHost* server = hosts[(f % kRing + 3) % kRing].get();
    const auto at =
        warmup + Duration::micros(static_cast<std::int64_t>(10 * (f + 1)));
    const auto go = [client, server, payload] {
      client->connect(server->addr(), 80).send(payload);
    };
    if (parallel) {
      psim->shard(net->shard_of(static_cast<netlayer::RouterId>(f % kRing)))
          .schedule_at(at, go);
    } else {
      mono->schedule_at(at, go);
    }
  }

  ParallelRow r;
  r.threads = threads;
  r.flows = flows;
  const auto deadline = TimePoint::from_ns(Duration::seconds(30.0).ns());
  const auto wall_start = std::chrono::steady_clock::now();
  if (parallel) {
    const std::uint64_t before = psim->events_processed();
    psim->run_until(deadline, [&completed, flows] {
      return completed.load(std::memory_order_relaxed) >= flows;
    });
    r.events = psim->events_processed() - before;
    r.cross_frames = psim->cross_shard_frames();
    r.epochs = psim->epochs();
    r.runahead = psim->runahead_shard_epochs();
  } else {
    const std::uint64_t before = mono->events_processed();
    constexpr std::uint64_t kEventBudget = 400'000'000;
    while (completed.load(std::memory_order_relaxed) < flows &&
           mono->events_processed() - before < kEventBudget && mono->step()) {
    }
    r.events = mono->events_processed() - before;
  }
  r.wall_s = wall_seconds_since(wall_start);
  r.completed = completed.load(std::memory_order_relaxed);
  r.events_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
  return r;
}

// ---- Part 5: fat-tree sweep (E20) -------------------------------------------

constexpr std::size_t kFatNodes = 14;  // 2 cores, 4 aggs, 8 edge routers
constexpr std::size_t kFatShards = 4;
constexpr std::size_t kFatEdgeBase = 6;  // routers 6..13 carry the hosts

/// The physical graph as the partitioner sees it: long-haul core uplinks,
/// short pod links.  Also the wiring plan — run_fat_tree connects exactly
/// these links with these propagation delays.
std::vector<sim::TopoEdge> fat_tree_topology() {
  std::vector<sim::TopoEdge> edges;
  const std::int64_t uplink_ns = Duration::micros(500).ns();
  const std::int64_t podlink_ns = Duration::micros(20).ns();
  for (std::uint64_t agg = 2; agg <= 5; ++agg) {
    edges.push_back(sim::TopoEdge{0, agg, uplink_ns});
    edges.push_back(sim::TopoEdge{1, agg, uplink_ns});
    const std::uint64_t e0 = kFatEdgeBase + (agg - 2) * 2;
    edges.push_back(sim::TopoEdge{agg, e0, podlink_ns});
    edges.push_back(sim::TopoEdge{agg, e0 + 1, podlink_ns});
  }
  return edges;
}

struct FatRow {
  std::string partition;  // "monolithic", "hash", "greedy-kl"
  std::size_t threads = 0;
  std::size_t flows = 0;
  std::size_t completed = 0;
  std::uint64_t events = 0;
  std::uint64_t cross_frames = 0;
  std::uint64_t epochs = 0;
  std::uint64_t runahead = 0;
  std::int64_t shard_pairs = 0;
  std::int64_t min_pair_ns = 0;
  double wall_s = 0;
  double events_per_sec = 0;
};

/// N flows between edge routers (client edge f%8 -> server edge
/// (f%8+3)%8, mixing intra-pod and cross-pod paths), same seeds
/// everywhere.  `threads` 0 runs the monolithic Simulator; otherwise the
/// 14 routers are placed on 4 shards by hash or by the topology-aware
/// partitioner, and the run reports the wiring diagnostics the engine
/// publishes (connected shard pairs, tightest pair lookahead, run-ahead
/// epochs).
FatRow run_fat_tree(std::size_t threads, bool topo_partition,
                    std::size_t flows, std::size_t per_flow) {
  telemetry::MetricsRegistry::instance().reset();
  telemetry::SpanTracer::instance().reset();
  const bool parallel = threads > 0;
  const auto edges = fat_tree_topology();

  FatRow r;
  std::unique_ptr<sim::Simulator> mono;
  std::unique_ptr<sim::ParallelSimulator> psim;
  std::unique_ptr<netlayer::Network> net;
  if (parallel) {
    sim::ParallelConfig pc;
    pc.shards = kFatShards;
    pc.threads = threads;
    psim = std::make_unique<sim::ParallelSimulator>(pc);
    const sim::ShardMap map =
        topo_partition
            ? sim::ShardMap::topology_aware(kFatShards, kFatNodes, edges)
            : sim::ShardMap(kFatShards);
    r.partition = topo_partition ? map.method() : "hash";
    net = std::make_unique<netlayer::Network>(*psim, ring_router_config(),
                                              /*seed=*/1, map);
  } else {
    r.partition = "monolithic";
    mono = std::make_unique<sim::Simulator>(sim::EngineKind::kTimerWheel);
    net = std::make_unique<netlayer::Network>(*mono, ring_router_config(),
                                              /*seed=*/1);
  }
  std::vector<netlayer::RouterId> routers;
  for (std::size_t i = 0; i < kFatNodes; ++i) {
    routers.push_back(net->add_router());
  }
  for (const auto& e : edges) {
    sim::LinkConfig link;
    link.bandwidth_bps = 10e9;
    link.propagation_delay = Duration::nanos(e.latency_ns);
    link.queue_limit = 4096;
    net->connect(routers[e.a], routers[e.b], link);
  }
  net->start();
  const auto warmup = TimePoint::from_ns(Duration::millis(500).ns());
  if (parallel) {
    psim->run_until(warmup);
  } else {
    mono->run_until(warmup);
  }

  transport::HostConfig hc;
  hc.connection.cm.keepalive_interval = Duration::seconds(2.0);
  std::vector<std::unique_ptr<transport::TcpHost>> hosts;
  std::atomic<std::size_t> completed{0};
  for (std::size_t i = 0; i < 8; ++i) {
    const netlayer::RouterId rid = routers[kFatEdgeBase + i];
    std::optional<sim::ParallelSimulator::ShardScope> scope;
    if (parallel) scope.emplace(*psim, net->shard_of(rid));
    hosts.push_back(
        std::make_unique<transport::TcpHost>(net->router(rid), 1, hc));
    hosts.back()->listen(80, [&completed, per_flow](transport::Connection& c) {
      transport::Connection::AppCallbacks cb;
      auto received = std::make_shared<std::size_t>(0);
      cb.on_data = [&completed, received, per_flow](Bytes data) {
        *received += data.size();
        if (*received == per_flow) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      };
      c.set_app_callbacks(cb);
    });
  }

  Rng rng(7);
  const Bytes payload = rng.next_bytes(per_flow);
  for (std::size_t f = 0; f < flows; ++f) {
    transport::TcpHost* client = hosts[f % 8].get();
    transport::TcpHost* server = hosts[(f % 8 + 3) % 8].get();
    const auto at =
        warmup + Duration::micros(static_cast<std::int64_t>(10 * (f + 1)));
    const auto go = [client, server, payload] {
      client->connect(server->addr(), 80).send(payload);
    };
    if (parallel) {
      psim->shard(net->shard_of(routers[kFatEdgeBase + f % 8]))
          .schedule_at(at, go);
    } else {
      mono->schedule_at(at, go);
    }
  }

  r.threads = threads;
  r.flows = flows;
  const auto deadline = TimePoint::from_ns(Duration::seconds(30.0).ns());
  const auto wall_start = std::chrono::steady_clock::now();
  if (parallel) {
    const std::uint64_t before = psim->events_processed();
    psim->run_until(deadline, [&completed, flows] {
      return completed.load(std::memory_order_relaxed) >= flows;
    });
    r.events = psim->events_processed() - before;
    r.cross_frames = psim->cross_shard_frames();
    r.epochs = psim->epochs();
    r.runahead = psim->runahead_shard_epochs();
    const auto m = psim->merged_metrics();
    r.shard_pairs = m.gauge("parallel.connected_shard_pairs");
    r.min_pair_ns = m.gauge("parallel.min_pair_lookahead");
  } else {
    const std::uint64_t before = mono->events_processed();
    constexpr std::uint64_t kEventBudget = 400'000'000;
    while (completed.load(std::memory_order_relaxed) < flows &&
           mono->events_processed() - before < kEventBudget && mono->step()) {
    }
    r.events = mono->events_processed() - before;
  }
  r.wall_s = wall_seconds_since(wall_start);
  r.completed = completed.load(std::memory_order_relaxed);
  r.events_per_sec =
      r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: the smallest N on both engines, for check.sh's bench-smoke
  // step; still asserts completion and cross-engine determinism.
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  // Big enough that all N connections stay simultaneously live (the bench
  // is about CONCURRENT flows, not a connect storm of short ones), small
  // enough that the heap baseline at N=4096 still finishes in seconds.
  const std::size_t per_flow = 16384;
  std::vector<std::size_t> sizes = smoke
                                       ? std::vector<std::size_t>{64}
                                       : std::vector<std::size_t>{64, 256,
                                                                  1024, 4096};

  std::puts("E14.1: scheduler pop cost vs outstanding cancelled events");
  std::printf("%12s | %12s | %10s\n", "engine", "cancelled", "ns/pop");
  std::string cancel_json;
  const std::size_t pops = smoke ? 2'000 : 20'000;
  std::vector<std::size_t> husks =
      smoke ? std::vector<std::size_t>{0, 1'000}
            : std::vector<std::size_t>{0, 1'000, 4'000, 16'000};
  double wheel_flat[2] = {0, 0};  // ns/pop at min and max husk count
  for (const auto kind :
       {sim::EngineKind::kTimerWheel, sim::EngineKind::kLegacyHeap}) {
    for (std::size_t i = 0; i < husks.size(); ++i) {
      const CancelRow row = measure_cancel_cost_stable(kind, pops, husks[i]);
      if (kind == sim::EngineKind::kTimerWheel) {
        if (i == 0) wheel_flat[0] = row.ns_per_pop;
        if (i == husks.size() - 1) wheel_flat[1] = row.ns_per_pop;
      }
      std::printf("%12s | %12zu | %10.1f\n", engine_name(kind),
                  row.outstanding_cancelled, row.ns_per_pop);
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s{\"engine\":\"%s\",\"outstanding_cancelled\":%zu,"
                    "\"ns_per_pop\":%.1f}",
                    cancel_json.empty() ? "" : ",", engine_name(kind),
                    row.outstanding_cancelled, row.ns_per_pop);
      cancel_json += buf;
    }
  }

  std::printf("\nE14.2: %zu-byte transfers, client(r0) -> server(r3), "
              "4-router line\n",
              per_flow);
  std::printf("%12s %6s | %10s %9s %12s %9s | %9s %9s %9s | %9s\n", "engine",
              "flows", "events", "wall s", "events/s", "s/virt-s", "arm/s",
              "cancel/s", "fire/s", "B/flow");
  std::string rows_json;
  bool ok = true;
  double evps[2][8] = {{0}};  // [engine][size index], for the speedup row
  std::uint64_t events_seen[2][8] = {{0}};
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    for (const auto kind :
         {sim::EngineKind::kTimerWheel, sim::EngineKind::kLegacyHeap}) {
      const FlowRunResult r = run_flows(kind, sizes[si], per_flow);
      const int ei = kind == sim::EngineKind::kTimerWheel ? 0 : 1;
      evps[ei][si] = r.events_per_sec;
      events_seen[ei][si] = r.events;
      if (r.completed != r.flows) ok = false;
      std::printf(
          "%12s %6zu | %10llu %8.2fs %12.0f %8.3fs | %9.0f %9.0f %9.0f | "
          "%8.0fB %s\n",
          engine_name(r.kind), r.flows,
          static_cast<unsigned long long>(r.events), r.wall_s,
          r.events_per_sec, r.wall_per_virt_s, r.arm_rate, r.cancel_rate,
          r.fire_rate, r.bytes_per_flow,
          r.completed == r.flows ? "" : "(INCOMPLETE)");
      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "%s{\"engine\":\"%s\",\"flows\":%zu,\"completed\":%zu,"
          "\"events\":%llu,\"wall_s\":%.3f,\"virt_s\":%.3f,"
          "\"events_per_sec\":%.0f,\"wall_per_virt_s\":%.3f,"
          "\"armed\":%llu,\"cancelled\":%llu,\"stale_cancels\":%llu,"
          "\"fired\":%llu,\"cascades\":%llu,\"overflow_arms\":%llu,"
          "\"bytes_per_flow\":%.0f}",
          rows_json.empty() ? "" : ",", engine_name(r.kind), r.flows,
          r.completed, static_cast<unsigned long long>(r.events), r.wall_s,
          r.virt_s, r.events_per_sec, r.wall_per_virt_s,
          static_cast<unsigned long long>(r.sched.armed),
          static_cast<unsigned long long>(r.sched.cancelled),
          static_cast<unsigned long long>(r.sched.stale_cancels),
          static_cast<unsigned long long>(r.sched.fired),
          static_cast<unsigned long long>(r.sched.cascades),
          static_cast<unsigned long long>(r.sched.overflow_arms),
          r.bytes_per_flow);
      rows_json += buf;
    }
    // Determinism: the engines must process the exact same schedule.
    if (events_seen[0][si] != events_seen[1][si]) {
      std::printf("DETERMINISM MISMATCH at %zu flows: wheel=%llu heap=%llu\n",
                  sizes[si],
                  static_cast<unsigned long long>(events_seen[0][si]),
                  static_cast<unsigned long long>(events_seen[1][si]));
      ok = false;
    }
  }

  const std::size_t last = sizes.size() - 1;
  const double speedup =
      evps[1][last] > 0 ? evps[0][last] / evps[1][last] : 0;
  const double flatness =
      wheel_flat[0] > 0 ? wheel_flat[1] / wheel_flat[0] : 0;
  std::printf("\nwheel speedup at %zu flows: %.2fx events/sec; wheel pop "
              "cost at max vs zero cancelled husks: %.2fx\n",
              sizes[last], speedup, flatness);

  // ---- Part 3: parallel shard sweep ----
  const std::size_t ring_flows = smoke ? 32 : 4096;
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  std::printf("\nE14.3: %zu flows on an 8-router ring, one router per "
              "shard (%u hardware threads)\n",
              ring_flows, std::thread::hardware_concurrency());
  std::printf("%12s | %10s %9s %12s %9s | %11s %8s\n", "engine", "events",
              "wall s", "events/s", "speedup", "cross-shard", "epochs");
  std::string par_json;
  const ParallelRow base = run_ring(0, ring_flows, per_flow);
  if (base.completed != base.flows) ok = false;
  std::printf("%12s | %10llu %8.2fs %12.0f %8.2fx | %11s %8s %s\n",
              "monolithic", static_cast<unsigned long long>(base.events),
              base.wall_s, base.events_per_sec, 1.0, "-", "-",
              base.completed == base.flows ? "" : "(INCOMPLETE)");
  {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"threads\":0,\"flows\":%zu,\"completed\":%zu,"
                  "\"events\":%llu,\"wall_s\":%.3f,\"events_per_sec\":%.0f,"
                  "\"parallel_speedup\":1.0}",
                  base.flows, base.completed,
                  static_cast<unsigned long long>(base.events), base.wall_s,
                  base.events_per_sec);
    par_json += buf;
  }
  std::uint64_t par_events = 0;
  std::uint64_t par_frames = 0;
  double speedup_at_4_threads = 0;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const ParallelRow r = run_ring(thread_counts[i], ring_flows, per_flow);
    if (r.completed != r.flows) ok = false;
    if (i == 0) {
      par_events = r.events;
      par_frames = r.cross_frames;
    } else if (r.events != par_events || r.cross_frames != par_frames) {
      // The determinism contract: the shard map, not the worker count,
      // fixes the trace.
      std::printf("PARALLEL DETERMINISM MISMATCH at %zu threads: "
                  "events %llu vs %llu, frames %llu vs %llu\n",
                  thread_counts[i],
                  static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(par_events),
                  static_cast<unsigned long long>(r.cross_frames),
                  static_cast<unsigned long long>(par_frames));
      ok = false;
    }
    const double sp =
        base.events_per_sec > 0 ? r.events_per_sec / base.events_per_sec : 0;
    if (r.threads == 4) speedup_at_4_threads = sp;
    char label[32];
    std::snprintf(label, sizeof label, "%zu thread%s", r.threads,
                  r.threads == 1 ? "" : "s");
    std::printf("%12s | %10llu %8.2fs %12.0f %8.2fx | %11llu %8llu %s\n",
                label, static_cast<unsigned long long>(r.events), r.wall_s,
                r.events_per_sec, sp,
                static_cast<unsigned long long>(r.cross_frames),
                static_cast<unsigned long long>(r.epochs),
                r.completed == r.flows ? "" : "(INCOMPLETE)");
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  ",{\"threads\":%zu,\"flows\":%zu,\"completed\":%zu,"
                  "\"events\":%llu,\"wall_s\":%.3f,\"events_per_sec\":%.0f,"
                  "\"cross_shard_frames\":%llu,\"epochs\":%llu,"
                  "\"runahead_shard_epochs\":%llu,"
                  "\"parallel_speedup\":%.2f}",
                  r.threads, r.flows, r.completed,
                  static_cast<unsigned long long>(r.events), r.wall_s,
                  r.events_per_sec,
                  static_cast<unsigned long long>(r.cross_frames),
                  static_cast<unsigned long long>(r.epochs),
                  static_cast<unsigned long long>(r.runahead), sp);
    par_json += buf;
  }

  // ---- Part 4: burst-dequeue budget sweep ----
  // Same ring, fixed thread count, budgets swept: throughput may move,
  // the event trace must not.  events and cross_shard_frames identical
  // across budgets is the burst-ordering contract (DESIGN.md §13).
  const std::size_t burst_flows = smoke ? 32 : 1024;
  const std::size_t burst_threads = smoke ? 1 : 2;
  const std::vector<std::size_t> budgets =
      smoke ? std::vector<std::size_t>{1, 16}
            : std::vector<std::size_t>{1, 4, 16, 64};
  std::printf("\nE14.4: burst-dequeue budget sweep, %zu flows, %zu "
              "thread(s); trace must be budget-invariant\n",
              burst_flows, burst_threads);
  std::printf("%12s | %10s %9s %12s | %11s\n", "budget", "events", "wall s",
              "events/s", "cross-shard");
  std::string burst_json;
  std::uint64_t burst_events = 0;
  std::uint64_t burst_frames = 0;
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const ParallelRow r =
        run_ring(burst_threads, burst_flows, per_flow, budgets[i]);
    if (r.completed != r.flows) ok = false;
    if (i == 0) {
      burst_events = r.events;
      burst_frames = r.cross_frames;
    } else if (r.events != burst_events || r.cross_frames != burst_frames) {
      std::printf("BURST DETERMINISM MISMATCH at budget %zu: "
                  "events %llu vs %llu, frames %llu vs %llu\n",
                  budgets[i], static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(burst_events),
                  static_cast<unsigned long long>(r.cross_frames),
                  static_cast<unsigned long long>(burst_frames));
      ok = false;
    }
    char label[32];
    std::snprintf(label, sizeof label, "burst %zu", budgets[i]);
    std::printf("%12s | %10llu %8.2fs %12.0f | %11llu %s\n", label,
                static_cast<unsigned long long>(r.events), r.wall_s,
                r.events_per_sec,
                static_cast<unsigned long long>(r.cross_frames),
                r.completed == r.flows ? "" : "(INCOMPLETE)");
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s{\"burst_budget\":%zu,\"threads\":%zu,\"flows\":%zu,"
                  "\"completed\":%zu,\"events\":%llu,\"wall_s\":%.3f,"
                  "\"events_per_sec\":%.0f,\"cross_shard_frames\":%llu}",
                  burst_json.empty() ? "" : ",", budgets[i], burst_threads,
                  r.flows, r.completed,
                  static_cast<unsigned long long>(r.events), r.wall_s,
                  r.events_per_sec,
                  static_cast<unsigned long long>(r.cross_frames));
    burst_json += buf;
  }

  // ---- Part 5: fat-tree sweep (E20) ----
  const std::size_t fat_flows = smoke ? 32 : 1024;
  const std::vector<std::size_t> fat_threads =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};
  std::printf("\nE20: %zu flows on a 14-router fat-tree (500us uplinks, "
              "20us pod links), 4 shards\n",
              fat_flows);
  std::printf("%12s %8s | %10s %9s %12s %9s | %9s %8s %9s | %5s %9s\n",
              "partition", "threads", "events", "wall s", "events/s",
              "speedup", "crossing", "epochs", "runahead", "pairs",
              "min-pair");
  std::string fat_json;
  const auto fat_print = [&](const FatRow& r, double sp) {
    std::printf("%12s %8zu | %10llu %8.2fs %12.0f %8.2fx | %9llu %8llu "
                "%9llu | %5lld %7lldns %s\n",
                r.partition.c_str(), r.threads,
                static_cast<unsigned long long>(r.events), r.wall_s,
                r.events_per_sec, sp,
                static_cast<unsigned long long>(r.cross_frames),
                static_cast<unsigned long long>(r.epochs),
                static_cast<unsigned long long>(r.runahead),
                static_cast<long long>(r.shard_pairs),
                static_cast<long long>(r.min_pair_ns),
                r.completed == r.flows ? "" : "(INCOMPLETE)");
    char buf[448];
    std::snprintf(buf, sizeof buf,
                  "%s{\"partition\":\"%s\",\"threads\":%zu,\"flows\":%zu,"
                  "\"completed\":%zu,\"events\":%llu,\"wall_s\":%.3f,"
                  "\"events_per_sec\":%.0f,\"cross_shard_frames\":%llu,"
                  "\"epochs\":%llu,\"runahead_shard_epochs\":%llu,"
                  "\"connected_shard_pairs\":%lld,"
                  "\"min_pair_lookahead_ns\":%lld,"
                  "\"parallel_speedup\":%.2f}",
                  fat_json.empty() ? "" : ",", r.partition.c_str(),
                  r.threads, r.flows, r.completed,
                  static_cast<unsigned long long>(r.events), r.wall_s,
                  r.events_per_sec,
                  static_cast<unsigned long long>(r.cross_frames),
                  static_cast<unsigned long long>(r.epochs),
                  static_cast<unsigned long long>(r.runahead),
                  static_cast<long long>(r.shard_pairs),
                  static_cast<long long>(r.min_pair_ns), sp);
    fat_json += buf;
  };
  const FatRow fat_base = run_fat_tree(0, false, fat_flows, per_flow);
  if (fat_base.completed != fat_base.flows) ok = false;
  fat_print(fat_base, 1.0);
  double fat_topo_best = 0;
  double fat_hash_best = 0;
  for (const bool topo : {false, true}) {
    std::uint64_t fat_events = 0;
    std::uint64_t fat_frames = 0;
    bool first = true;
    for (const std::size_t t : fat_threads) {
      const FatRow r = run_fat_tree(t, topo, fat_flows, per_flow);
      if (r.completed != r.flows) ok = false;
      // Per partition, the trace is thread-count-invariant; the two
      // partitions legitimately differ (different shard maps).
      if (first) {
        fat_events = r.events;
        fat_frames = r.cross_frames;
        first = false;
      } else if (r.events != fat_events || r.cross_frames != fat_frames) {
        std::printf("FAT-TREE DETERMINISM MISMATCH (%s, %zu threads): "
                    "events %llu vs %llu, frames %llu vs %llu\n",
                    r.partition.c_str(), t,
                    static_cast<unsigned long long>(r.events),
                    static_cast<unsigned long long>(fat_events),
                    static_cast<unsigned long long>(r.cross_frames),
                    static_cast<unsigned long long>(fat_frames));
        ok = false;
      }
      const double sp = fat_base.events_per_sec > 0
                            ? r.events_per_sec / fat_base.events_per_sec
                            : 0;
      double& best = topo ? fat_topo_best : fat_hash_best;
      if (r.events_per_sec > best) best = r.events_per_sec;
      fat_print(r, sp);
    }
  }
  const double fat_topo_vs_hash =
      fat_hash_best > 0 ? fat_topo_best / fat_hash_best : 0;
  std::printf("\nfat-tree topology-aware vs hash partition (best "
              "thread count): %.2fx\n",
              fat_topo_vs_hash);

  const unsigned cores = std::thread::hardware_concurrency();
  const bool parallel_effective = cores >= 4;
  std::printf(
      "BENCH_JSON {\"bench\":\"manyflow\",\"per_flow_bytes\":%zu,"
      "\"rows\":[%s],\"cancel_microbench\":[%s],"
      "\"speedup_at_%zu_flows\":%.2f,\"wheel_cancel_flatness\":%.2f,"
      "\"hardware_threads\":%u,\"detected_cores\":%u,"
      "\"parallel_effective\":%s,"
      "\"parallel_speedup_at_4_threads\":%.2f,"
      "\"parallel_ring\":[%s],\"burst_sweep\":[%s],"
      "\"fat_tree\":[%s],\"fat_tree_topo_vs_hash\":%.2f}\n",
      per_flow, rows_json.c_str(), cancel_json.c_str(), sizes[last],
      speedup, flatness, cores, cores,
      parallel_effective ? "true" : "false", speedup_at_4_threads,
      par_json.c_str(), burst_json.c_str(), fat_json.c_str(),
      fat_topo_vs_hash);
  return ok ? 0 : 1;
}
