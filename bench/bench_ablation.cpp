// Ablations over the design choices DESIGN.md calls out: what each
// encapsulated mechanism buys, measured by switching it off (or sweeping
// it) while everything else stays fixed — something the sublayered
// structure makes a one-line config change.
//
//   A1  SACK on/off inside RD          (goodput + retransmissions, lossy path)
//   A2  dup-ack threshold sweep in RD  (how trigger-happy fast retransmit is)
//   A3  router ECN marking on/off      (queue drops vs marks at a bottleneck)
#include <cstdio>

#include "bench/harness.hpp"

using namespace sublayer;
using namespace sublayer::bench;
using namespace sublayer::transport;

namespace {

struct AblationOutcome {
  bool complete = false;
  double goodput_mbps = 0;
  std::uint64_t fast_retx = 0;
  std::uint64_t timeout_retx = 0;
};

AblationOutcome run_ablation(const HostConfig& hc, const sim::LinkConfig& link,
                             Duration ecn_threshold = Duration::nanos(0),
                             std::size_t bytes = 2 << 20) {
  netlayer::RouterConfig rc = NetSetup::router_config();
  rc.ecn_backlog_threshold = ecn_threshold;
  sim::Simulator sim;
  netlayer::Network net(sim, rc, 21);
  const auto r0 = net.add_router();
  const auto r1 = net.add_router();
  net.connect(r0, r1, link);
  net.start();
  sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));

  HostConfig config = hc;
  config.reap_closed = false;
  TcpHost client(sim, net.router(r0), 1, config);
  TcpHost server(sim, net.router(r1), 1, config);

  std::size_t received = 0;
  const TimePoint start = sim.now();
  TimePoint finished = start;
  server.listen(80, [&](Connection& conn) {
    Connection::AppCallbacks cb;
    cb.on_data = [&](Bytes d) {
      received += d.size();
      if (received == bytes) finished = sim.now();
    };
    conn.set_app_callbacks(cb);
  });
  auto& conn = client.connect(server.addr(), 80);
  Rng rng(17);
  conn.send(rng.next_bytes(bytes));
  {
    std::size_t processed = 0;
    while (processed < 30'000'000 && received < bytes) {
      const std::size_t n = sim.run(100'000);
      processed += n;
      if (n == 0) break;
    }
  }

  AblationOutcome out;
  out.complete = received == bytes;
  const double secs = (finished - start).to_seconds();
  if (out.complete && secs > 0) {
    out.goodput_mbps = static_cast<double>(bytes) * 8.0 / secs / 1e6;
  }
  out.fast_retx = conn.rd().stats().fast_retransmits;
  out.timeout_retx = conn.rd().stats().timeout_retransmits;
  return out;
}

sim::LinkConfig lossy_link(double loss) {
  sim::LinkConfig link;
  link.bandwidth_bps = 50e6;
  link.propagation_delay = Duration::millis(5);
  link.loss_rate = loss;
  link.queue_limit = 256;
  return link;
}

}  // namespace

int main() {
  std::puts("A1: SACK ablation (RD), 2 MB transfers");
  std::printf("%-26s | %12s %10s | %12s %10s | %8s\n", "path", "SACK on",
              "fast/to", "SACK off", "fast/to", "delta");
  const auto a1_row = [](const char* label, const sim::LinkConfig& link) {
    HostConfig on;
    HostConfig off;
    off.connection.rd.enable_sack = false;
    const auto with_sack = run_ablation(on, link);
    const auto without = run_ablation(off, link);
    std::printf(
        "%-26s | %9.2f Mbps %4llu/%-4llu | %9.2f Mbps %4llu/%-4llu | %+6.0f%%\n",
        label, with_sack.goodput_mbps, (unsigned long long)with_sack.fast_retx,
        (unsigned long long)with_sack.timeout_retx, without.goodput_mbps,
        (unsigned long long)without.fast_retx,
        (unsigned long long)without.timeout_retx,
        without.goodput_mbps > 0
            ? (with_sack.goodput_mbps / without.goodput_mbps - 1.0) * 100
            : 0.0);
  };
  a1_row("fat pipe, 1% random loss", lossy_link(0.01));
  a1_row("fat pipe, 3% random loss", lossy_link(0.03));
  a1_row("fat pipe, 5% random loss", lossy_link(0.05));
  {
    // The case SACK exists for: a bandwidth-limited bottleneck, where every
    // spurious retransmission steals goodput.
    sim::LinkConfig bottleneck;
    bottleneck.bandwidth_bps = 8e6;
    bottleneck.propagation_delay = Duration::millis(10);
    bottleneck.loss_rate = 0.02;
    bottleneck.queue_limit = 64;
    a1_row("8 Mbps bottleneck, 2% loss", bottleneck);
  }

  std::puts("\nA2: dup-ack threshold sweep (RD), 3% loss");
  std::printf("%10s | %12s %12s %12s\n", "threshold", "goodput", "fast retx",
              "timeout retx");
  for (const int threshold : {2, 3, 5, 8}) {
    HostConfig hc;
    hc.connection.rd.dupack_threshold = threshold;
    const auto out = run_ablation(hc, lossy_link(0.03));
    std::printf("%10d | %9.2f Mbps %12llu %12llu\n", threshold,
                out.goodput_mbps, (unsigned long long)out.fast_retx,
                (unsigned long long)out.timeout_retx);
  }

  std::puts("\nA3: router ECN marking (5 Mbps bottleneck, 60-frame queue)");
  std::printf("%10s | %12s %12s %12s\n", "ECN", "goodput", "fast retx",
              "timeout retx");
  {
    sim::LinkConfig bottleneck;
    bottleneck.bandwidth_bps = 5e6;
    bottleneck.propagation_delay = Duration::millis(5);
    bottleneck.queue_limit = 60;
    HostConfig hc;
    const auto off = run_ablation(hc, bottleneck, Duration::nanos(0), 1 << 20);
    const auto on =
        run_ablation(hc, bottleneck, Duration::millis(10), 1 << 20);
    std::printf("%10s | %9.2f Mbps %12llu %12llu\n", "off", off.goodput_mbps,
                (unsigned long long)off.fast_retx,
                (unsigned long long)off.timeout_retx);
    std::printf("%10s | %9.2f Mbps %12llu %12llu\n", "on", on.goodput_mbps,
                (unsigned long long)on.fast_retx,
                (unsigned long long)on.timeout_retx);
  }

  std::puts(
      "\nshape: SACK's purpose is efficiency — it cuts retransmission "
      "volume 3-6x\nat comparable goodput (under IID random loss, blind "
      "NewReno redundancy can\neven edge ahead in goodput by spraying "
      "copies, exactly the waste SACK\nexists to avoid); a lower dup-ack "
      "threshold trades spurious retransmissions\nfor faster repair; ECN "
      "replaces queue drops with marks at the bottleneck.\nEvery knob "
      "lives in exactly one sublayer and is swept without touching any\n"
      "other — the ablation harness is a few lines per row.");
  return 0;
}
