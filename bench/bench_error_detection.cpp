// Experiment E12 (paper §2.1): "The details of how error detection is
// done can be confined to this sublayer, and the sublayer can be changed
// (to go from say CRC-32 to CRC-64) without changing other sublayers."
//
// Quantifies what the swap buys: undetected-error probability for the
// detector family under random and burst corruption, plus throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "datalink/errordetect/detector.hpp"

using namespace sublayer;
using namespace sublayer::datalink;

namespace {

using DetFactory = std::unique_ptr<ErrorDetector> (*)();

struct DetRow {
  const char* name;
  DetFactory make;
};

constexpr DetRow kDetectors[] = {
    {"crc8", make_crc8},       {"crc16", make_crc16},
    {"crc32", make_crc32},     {"crc64", make_crc64},
    {"inet16", make_internet_checksum},
    {"fletcher16", make_fletcher16},
    {"adler32", make_adler32},
};

/// Flips `flips` random bits in `frame`.
void corrupt_random(Bytes& frame, int flips, Rng& rng) {
  for (int i = 0; i < flips; ++i) {
    const std::size_t bit = rng.next_below(frame.size() * 8);
    frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

/// Applies a burst: flips first and last bit of a window, random interior.
void corrupt_burst(Bytes& frame, int burst_bits, Rng& rng) {
  const std::size_t total = frame.size() * 8;
  const std::size_t start =
      rng.next_below(total - static_cast<std::size_t>(burst_bits));
  const auto flip = [&](std::size_t b) {
    frame[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
  };
  flip(start);
  flip(start + static_cast<std::size_t>(burst_bits) - 1);
  for (int b = 1; b + 1 < burst_bits; ++b) {
    if (rng.chance(0.5)) flip(start + static_cast<std::size_t>(b));
  }
}

void undetected_table() {
  std::puts("E12.1: undetected-error rate, 10^5 corrupted 256 B frames each");
  std::printf("%-12s | %12s %12s %12s %12s\n", "detector", "2 rand flips",
              "8 rand flips", "24b burst", "48b burst");
  Rng data_rng(1);
  const Bytes payload = data_rng.next_bytes(256);
  const int kTrials = 100000;

  for (const auto& det_row : kDetectors) {
    const auto det = det_row.make();
    const Bytes framed = det->protect(payload);
    double rates[4] = {};
    int col = 0;
    for (const int mode : {0, 1, 2, 3}) {
      Rng rng(42 + mode);
      int undetected = 0;
      for (int t = 0; t < kTrials; ++t) {
        Bytes corrupted = framed;
        switch (mode) {
          case 0: corrupt_random(corrupted, 2, rng); break;
          case 1: corrupt_random(corrupted, 8, rng); break;
          case 2: corrupt_burst(corrupted, 24, rng); break;
          case 3: corrupt_burst(corrupted, 48, rng); break;
        }
        if (corrupted != framed && det->check_strip(corrupted).has_value()) {
          ++undetected;
        }
      }
      rates[col++] = static_cast<double>(undetected) / kTrials;
    }
    std::printf("%-12s | %12.2e %12.2e %12.2e %12.2e\n", det_row.name,
                rates[0], rates[1], rates[2], rates[3]);
  }
  std::puts(
      "\nshape vs paper: the detector is swappable behind one interface; "
      "wider\nCRCs drive the undetected rate towards 2^-width while the "
      "additive\nchecksums (inet16/fletcher) leak multi-bit patterns — the "
      "reason one\nwould make exactly the CRC-32 -> CRC-64 swap the paper "
      "mentions, without\ntouching framing or ARQ.");
}

void bench_detector(benchmark::State& state, DetFactory make) {
  const auto det = make();
  Rng rng(3);
  const Bytes payload = rng.next_bytes(1500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(det->compute(payload));
  }
  state.SetBytesProcessed(state.iterations() * 1500);
}

}  // namespace

BENCHMARK_CAPTURE(bench_detector, crc16, make_crc16);
BENCHMARK_CAPTURE(bench_detector, crc32, make_crc32);
BENCHMARK_CAPTURE(bench_detector, crc64, make_crc64);
BENCHMARK_CAPTURE(bench_detector, inet16, make_internet_checksum);
BENCHMARK_CAPTURE(bench_detector, fletcher16, make_fletcher16);
BENCHMARK_CAPTURE(bench_detector, adler32, make_adler32);

int main(int argc, char** argv) {
  undetected_table();
  std::puts("");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
