// Experiment E8 (Challenge 5, "Replace" / test T3): "If each sublayer
// adheres to its API, one could in principle seamlessly replace congestion
// control (by say a rate-based protocol) or connection management (by a
// timer-based scheme)."
//
// Swaps OSR's congestion-control plug-in across four algorithms (including
// the rate-based one the paper names) and CM's ISN provider across the
// three schemes from §3, on an identical bottleneck network — nothing else
// in the stack changes between rows.
#include <cstdio>

#include "bench/harness.hpp"

using namespace sublayer;
using namespace sublayer::bench;
using namespace sublayer::transport;

namespace {

struct CcOutcome {
  bool complete = false;
  double goodput_mbps = 0;
  std::uint64_t retx = 0;
  double retx_ratio = 0;
  std::uint64_t final_cwnd = 0;
};

CcOutcome run_cc(const std::string& cc, IsnKind isn,
                 CmScheme scheme = CmScheme::kHandshake) {
  sim::LinkConfig link;
  link.bandwidth_bps = 20e6;
  link.propagation_delay = Duration::millis(10);
  link.loss_rate = 0.002;
  link.queue_limit = 96;
  NetSetup net(link, 11);

  HostConfig hc;
  hc.connection.osr.cc = cc;
  hc.isn = isn;
  hc.connection.cm.scheme = scheme;
  hc.reap_closed = false;
  TcpHost client(net.sim, net.net.router(net.r0), 1, hc);
  TcpHost server(net.sim, net.net.router(net.r1), 1, hc);

  const std::size_t bytes = 2 << 20;
  std::size_t received = 0;
  const TimePoint start = net.sim.now();
  TimePoint finished = start;
  server.listen(80, [&](Connection& conn) {
    Connection::AppCallbacks cb;
    cb.on_data = [&](Bytes d) {
      received += d.size();
      if (received == bytes) finished = net.sim.now();
    };
    conn.set_app_callbacks(cb);
  });
  auto& conn = client.connect(server.addr(), 80);
  Rng rng(13);
  conn.send(rng.next_bytes(bytes));
  {
    std::size_t processed = 0;
    while (processed < 30'000'000 && received < bytes) {
      const std::size_t n = net.sim.run(100'000);
      processed += n;
      if (n == 0) break;
    }
  }

  CcOutcome out;
  out.complete = received == bytes;
  const double secs = (finished - start).to_seconds();
  if (out.complete && secs > 0) {
    out.goodput_mbps = static_cast<double>(bytes) * 8.0 / secs / 1e6;
  }
  out.retx = conn.rd().stats().fast_retransmits +
             conn.rd().stats().timeout_retransmits;
  out.retx_ratio = conn.rd().stats().segments_sent > 0
                       ? static_cast<double>(out.retx) /
                             static_cast<double>(conn.rd().stats().segments_sent)
                       : 0;
  out.final_cwnd = conn.osr().cwnd();
  return out;
}

}  // namespace

int main() {
  std::puts(
      "E8.1: swapping OSR's congestion control "
      "(20 Mbps bottleneck, 20 ms RTT, 0.2% loss, 2 MB)");
  std::printf("%-8s | %12s %8s %10s %12s\n", "cc", "goodput", "retx",
              "retx%", "final cwnd");
  for (const char* cc : {"reno", "cubic", "aimd", "rate"}) {
    const auto r = run_cc(cc, IsnKind::kRfc1948);
    std::printf("%-8s | %9.2f Mbps %8llu %9.2f%% %10llu B %s\n", cc,
                r.goodput_mbps, (unsigned long long)r.retx,
                r.retx_ratio * 100, (unsigned long long)r.final_cwnd,
                r.complete ? "" : "(INCOMPLETE)");
  }

  std::puts(
      "\nE8.2: swapping CM's ISN provider (same transfer; the point is "
      "that\nnothing else notices the change)");
  std::printf("%-16s | %12s %10s\n", "isn provider", "goodput", "complete");
  for (const auto& [kind, name] :
       {std::pair{IsnKind::kRfc793, "rfc793-clock"},
        std::pair{IsnKind::kRfc1948, "rfc1948-hash"},
        std::pair{IsnKind::kWatson, "watson-timer"}}) {
    const auto r = run_cc("reno", kind);
    std::printf("%-16s | %9.2f Mbps %10s\n", name, r.goodput_mbps,
                r.complete ? "yes" : "NO");
  }

  std::puts(
      "\nE8.3: swapping CM's MECHANISM — handshake vs timer-based "
      "(Watson [31]),\nthe exact replacement Challenge 5 names");
  std::printf("%-14s | %12s %10s\n", "cm mechanism", "goodput", "complete");
  for (const auto& [scheme, name] :
       {std::pair{CmScheme::kHandshake, "handshake"},
        std::pair{CmScheme::kTimerBased, "timer-based"}}) {
    const auto r = run_cc("reno",
                          scheme == CmScheme::kTimerBased ? IsnKind::kWatson
                                                          : IsnKind::kRfc1948,
                          scheme);
    std::printf("%-14s | %9.2f Mbps %10s\n", name, r.goodput_mbps,
                r.complete ? "yes" : "NO");
  }

  std::puts(
      "\nshape vs paper: four congestion controllers (window- and rate-"
      "based),\nthree ISN schemes, and two whole CM mechanisms (handshake "
      "vs timer-based)\ndrop in behind the OSR/CM interfaces with zero "
      "changes to DM, RD, the\nshim, or each other — the replaceability "
      "that tests T1-T3 promise.");
  return 0;
}
