// Experiment E9 (paper §3.1 + Challenge 6): principled hardware offload
// at sublayer boundaries.  "A simple decomposition places RD, CM, and DM
// in hardware; with more finagling and a modest duplication of state,
// only RD can be placed in hardware."
//
// Drives a real 4 MB transfer through the sublayered stack to obtain the
// workload (data/ack segment counts), then evaluates the paper's
// placements under the crossing-cost model, including a crossing-tax
// sweep that locates the crossover where RD-only offload stops paying.
#include <cstdio>

#include "bench/harness.hpp"
#include "offload/offload.hpp"

using namespace sublayer;
using namespace sublayer::bench;
using namespace sublayer::offload;

int main() {
  // Workload from a live run of the sublayered stack.
  sim::LinkConfig link;
  link.bandwidth_bps = 1e9;
  link.propagation_delay = Duration::millis(1);
  const auto transfer = run_transfer(Variant::kSublayered, link, 4 << 20);

  Workload w;
  w.data_segments = transfer.segments_sent;
  w.ack_segments = transfer.segments_sent;  // one ack per data segment
  w.payload_bytes = 4ull << 20;
  std::printf(
      "workload from live stack: %llu data segments (+acks), %.1f MB\n\n",
      (unsigned long long)w.data_segments,
      static_cast<double>(w.payload_bytes) / 1e6);

  std::puts("E9.1: the paper's placements (600 ns crossing tax)");
  std::printf("%-14s | %10s %14s %12s %14s %10s\n", "placement", "crossings",
              "host ns/seg", "host cpu", "host-bound", "vs all-host");
  for (const auto& placement :
       {Placement::all_host(), Placement::nic_dm_cm_rd(),
        Placement::nic_rd_only(), Placement::all_nic()}) {
    const auto r = evaluate(placement, w);
    std::printf("%-14s | %10d %11.0f ns %9.2f ms %9.2f Gbps %9.0f%%\n",
                r.placement.c_str(), r.crossings_per_segment,
                r.host_ns_per_segment, r.host_cpu_seconds * 1e3,
                r.host_bound_bps / 1e9,
                r.host_cpu_fraction_of_all_host * 100);
  }

  std::puts(
      "\nE9.2: crossing-tax sweep — where does RD-only offload stop "
      "paying?");
  std::printf("%12s | %14s %14s %14s\n", "crossing tax", "all-host",
              "nic-dm-cm-rd", "nic-rd-only");
  for (const double tax : {50.0, 200.0, 400.0, 600.0, 1000.0, 2000.0}) {
    CostModel costs;
    costs.crossing_ns = tax;
    const auto base = evaluate(Placement::all_host(), w, costs);
    const auto deep = evaluate(Placement::nic_dm_cm_rd(), w, costs);
    const auto rd_only = evaluate(Placement::nic_rd_only(), w, costs);
    std::printf("%9.0f ns | %11.0f ns %11.0f ns %11.0f ns %s\n", tax,
                base.host_ns_per_segment, deep.host_ns_per_segment,
                rd_only.host_ns_per_segment,
                rd_only.host_ns_per_segment < base.host_ns_per_segment
                    ? ""
                    : "<- RD-only no longer pays");
  }

  std::puts(
      "\nshape vs paper: the sublayer boundaries give exactly the cut "
      "points the\npaper describes — the deep NIC {DM,CM,RD} split always "
      "wins (one\ncrossing at the RD/OSR boundary), while RD-only needs "
      "three crossings\nand pays for them once the crossing tax crosses "
      "the cost of the stages\nit evicts (\"more finagling and a modest "
      "duplication of state\").");
  return 0;
}
