// Experiment E1 (paper §4.1): "We also created a library of stuffing
// protocols that our proof deems valid; it found 66 alternate stuffing
// rules, some of which had less overhead than HDLC."
//
// Regenerates the rule library with our exact automaton verifier over
// several definitions of the candidate space (the paper does not pin its
// space down; we report all of them).  Every surviving rule is certified
// by the no-false-flag automaton argument plus bounded-exhaustive
// round-trip checking.
#include <cstdio>
#include <ctime>

#include "stuffverify/verifier.hpp"

using namespace sublayer;
using namespace sublayer::stuffverify;

namespace {

void report(const char* label, const SearchConfig& config) {
  const auto t0 = std::clock();
  const auto outcome = search_rules(config);
  const double secs = static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC;
  std::printf(
      "%-34s candidates=%6llu valid=%5zu cheaper-than-HDLC=%4llu "
      "rejected(false-flag=%llu degenerate=%llu)  [%.2fs]\n",
      label, (unsigned long long)outcome.candidates, outcome.valid_rules.size(),
      (unsigned long long)outcome.cheaper_than_hdlc,
      (unsigned long long)outcome.rejected_false_flag,
      (unsigned long long)outcome.rejected_degenerate, secs);
}

}  // namespace

int main() {
  std::puts("E1: the library of valid alternate stuffing rules");
  std::puts("paper: 66 alternate rules (Coq; search space unspecified)");
  std::puts("ours : exact automaton certification over explicit spaces\n");

  SearchConfig all;
  report("8-bit flags, all substring triggers", all);

  SearchConfig prefix;
  prefix.prefix_triggers_only = true;
  report("8-bit flags, prefix triggers only", prefix);

  SearchConfig canonical;
  canonical.prefix_triggers_only = true;
  canonical.min_trigger = 7;
  canonical.max_trigger = 7;
  report("canonical (7-bit prefix trigger)", canonical);

  SearchConfig shorter;
  shorter.min_trigger = 3;
  shorter.max_trigger = 5;
  report("short triggers only (3..5 bits)", shorter);

  const auto outcome = search_rules(all);
  std::puts("\ncheapest ten valid rules (all-substring space):");
  std::printf("%-46s %10s %10s\n", "rule", "naive", "true rate");
  for (std::size_t i = 0; i < 10 && i < outcome.valid_rules.size(); ++i) {
    const auto& s = outcome.valid_rules[i];
    std::printf("%-46s 1/%-8.0f 1/%-8.0f\n", s.rule.name().c_str(),
                1.0 / s.overhead.naive, s.overhead.one_in_n());
  }
  std::puts(
      "\nshape vs paper: a mechanically generated library of tens-to-"
      "hundreds of\nvalid alternates exists, a sizable fraction cheaper "
      "than HDLC -- matching\nthe paper's finding; the absolute count "
      "depends on the candidate-space\ndefinition, which the paper leaves "
      "open.");
  return 0;
}
