// Experiment E2 (paper §4.1, lesson 2): "The flag 00000010 and the
// stuffing rule that stuffs a 1 after seeing the string 0000001 has an
// overhead (using a random model) of 1 in 128 compared to 1 in 32 for the
// HDLC rule."
//
// Regenerates the overhead comparison on the random-data model, on both
// measures (the paper's window probability 2^-|T|, and the true stationary
// insertion rate, which differs for self-overlapping triggers like
// HDLC's), plus google-benchmark throughput of the stuffing engine.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.hpp"
#include "stuffverify/verifier.hpp"

using namespace sublayer;
using namespace sublayer::stuffverify;
using datalink::StuffingRule;

namespace {

void print_table() {
  std::puts("E2: stuffing overhead on random data");
  std::printf("%-46s %12s %14s %14s\n", "rule", "naive 2^-|T|",
              "analytic rate", "empirical rate");
  struct Row {
    const char* label;
    StuffingRule rule;
  };
  const Row rows[] = {
      {"HDLC (paper: 1 in 32)", StuffingRule::hdlc()},
      {"paper's 00000010 rule (1 in 128)", StuffingRule::low_overhead()},
      {"4-bit trigger example",
       StuffingRule{BitString::parse("00010010"), BitString::parse("0001"),
                    true}},
  };
  for (const auto& row : rows) {
    const auto est = estimate_overhead(row.rule, 1 << 22);
    std::printf("%-46s 1/%-10.0f 1/%-12.1f 1/%-12.1f\n", row.label,
                1.0 / est.naive, 1.0 / est.analytic, 1.0 / est.empirical);
  }
  std::puts(
      "\npaper-vs-measured: the paper's numbers are the window probability "
      "2^-|T|\n(1/32, 1/128) -- reproduced exactly by the naive column. "
      "The true insertion\nrate for HDLC is 1/62 because its trigger is "
      "fully self-overlapping (a\nstuffed 0 resets the run); for the "
      "non-overlapping 0000001 trigger the two\nmeasures coincide, so the "
      "paper's rule is 2.1x cheaper in practice, 4x on\nthe naive measure.");
}

void bench_stuff(benchmark::State& state, const StuffingRule& rule) {
  Rng rng(5);
  const BitString data = rng.next_bits(1 << 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(datalink::stuff(rule, data));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 14));
}

void bench_roundtrip(benchmark::State& state, const StuffingRule& rule) {
  Rng rng(5);
  const BitString data = rng.next_bits(1 << 12);
  for (auto _ : state) {
    const auto framed = datalink::frame(rule, data);
    benchmark::DoNotOptimize(datalink::deframe(rule, framed));
  }
  state.SetItemsProcessed(state.iterations() * (1 << 12));
}

}  // namespace

BENCHMARK_CAPTURE(bench_stuff, hdlc, StuffingRule::hdlc());
BENCHMARK_CAPTURE(bench_stuff, low_overhead, StuffingRule::low_overhead());
BENCHMARK_CAPTURE(bench_roundtrip, hdlc, StuffingRule::hdlc());
BENCHMARK_CAPTURE(bench_roundtrip, low_overhead, StuffingRule::low_overhead());

int main(int argc, char** argv) {
  print_table();
  std::puts("");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
