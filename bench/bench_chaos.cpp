// Experiment E13: reconvergence after scripted chaos.
//
// Runs every fault script over many seeds on the soak topology (4-router
// ring + chord) and reports the distribution of the two liveness metrics
// the InvariantMonitor records once the last fault heals: time until every
// link's neighbors are re-detected, and time until routing is fully
// reconverged.  Safety violations (which should never occur) are counted
// alongside.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "chaos/controller.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariant_monitor.hpp"
#include "netlayer/router.hpp"

using namespace sublayer;
using namespace sublayer::chaos;

namespace {

constexpr int kSeeds = 30;

struct Sample {
  double redetect_ms = -1;
  double reconverge_ms = -1;
  std::size_t violations = 0;
};

Sample run_one(const std::string& script, std::uint64_t seed) {
  sim::Simulator sim;
  netlayer::RouterConfig rc;
  rc.routing = netlayer::RoutingKind::kLinkState;
  rc.link_fcs = true;
  netlayer::Network net(sim, rc, seed);
  for (int i = 0; i < 4; ++i) net.add_router();
  sim::LinkConfig link;
  link.bandwidth_bps = 20e6;
  link.propagation_delay = Duration::micros(100);
  net.connect(0, 1, link);
  net.connect(1, 2, link);
  net.connect(2, 3, link);
  net.connect(3, 0, link);
  net.connect(1, 3, link);
  net.start();

  MonitorConfig mc;
  mc.reconvergence_bound = Duration::seconds(5.0);
  InvariantMonitor monitor(sim, net, mc);
  ChaosController controller(sim, net);

  sim.run_until(TimePoint::from_ns(Duration::seconds(1.0).ns()));
  monitor.start();

  ScriptParams params;
  params.link_count = net.link_count();
  params.router_count = net.router_count();
  params.start = TimePoint::from_ns(sim.now().ns() + Duration::millis(200).ns());
  const auto plan = make_plan(script, seed, params);
  controller.arm(plan);
  sim.run_until(TimePoint::from_ns(plan.all_healed_by().ns() +
                                   Duration::millis(1).ns()));
  monitor.await_reconvergence(controller.healed_at());
  sim.run_until(TimePoint::from_ns(sim.now().ns() + Duration::seconds(6.0).ns()));

  Sample s;
  if (const auto t = monitor.neighbor_redetect_time()) {
    s.redetect_ms = t->to_seconds() * 1e3;
  }
  if (const auto t = monitor.reconvergence_time()) {
    s.reconverge_ms = t->to_seconds() * 1e3;
  }
  s.violations = monitor.violations().size();
  return s;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return -1;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1) + 0.5);
  return v[idx];
}

}  // namespace

int main() {
  std::puts(
      "E13: reconvergence-time distribution after scripted chaos\n"
      "(4-router ring+chord, link-state routing, 100 ms hellos / 350 ms "
      "dead\ninterval, 30 seeds per script; times measured from last heal)");
  std::printf("%-17s | %26s | %26s | %s\n", "script",
              "neighbor redetect (ms)", "reconvergence (ms)", "viol");
  std::printf("%-17s | %8s %8s %8s | %8s %8s %8s |\n", "", "p50", "p90",
              "max", "p50", "p90", "max");
  for (const auto& script : all_scripts()) {
    std::vector<double> redetect;
    std::vector<double> reconverge;
    std::size_t violations = 0;
    int unconverged = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Sample s = run_one(script, seed);
      if (s.reconverge_ms < 0) {
        ++unconverged;
        continue;
      }
      redetect.push_back(s.redetect_ms);
      reconverge.push_back(s.reconverge_ms);
      violations += s.violations;
    }
    std::printf("%-17s | %8.0f %8.0f %8.0f | %8.0f %8.0f %8.0f | %4zu",
                script.c_str(), percentile(redetect, 0.5),
                percentile(redetect, 0.9), percentile(redetect, 1.0),
                percentile(reconverge, 0.5), percentile(reconverge, 0.9),
                percentile(reconverge, 1.0), violations);
    if (unconverged > 0) std::printf("  (%d DID NOT RECONVERGE)", unconverged);
    std::printf("\n");
  }
  std::puts(
      "\nshape: redetection is bounded by one hello interval once links are\n"
      "back up.  The two clocks are independent — routing happily converges\n"
      "*around* an adjacency that is still dark, so reconvergence can land\n"
      "below redetection on link scripts.  Router-crash scripts sit at the\n"
      "high end of both: the restarted router rebuilds its neighbor table\n"
      "from nothing and re-originates its LSP through the sequence-recovery\n"
      "handshake, yet stays well inside the liveness bound.  Violations\n"
      "must read 0 everywhere: chaos may slow the system, never corrupt it.");
  return 0;
}
