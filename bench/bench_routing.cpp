// Experiment E11 (Figs. 3-4, §2.2): "One can change say route computation
// from distance vector to Link State without changing forwarding."
//
// Swaps the route-computation engine on identical topologies and measures
// what changes (control traffic, convergence after failure) and what does
// not (the forwarding sublayer and the delivered paths).
#include <cstdio>

#include "netlayer/router.hpp"

using namespace sublayer;
using namespace sublayer::netlayer;

namespace {

RouterConfig config_for(RoutingKind kind) {
  RouterConfig c;
  c.routing = kind;
  c.neighbor.hello_interval = Duration::millis(20);
  c.neighbor.dead_interval = Duration::millis(70);
  c.routing_config.advert_interval = Duration::millis(40);
  c.routing_config.route_timeout = Duration::millis(150);
  c.routing_config.lsp_refresh = Duration::millis(100);
  return c;
}

struct Topo {
  const char* name;
  int routers;
  std::vector<std::pair<int, int>> edges;
  std::pair<int, int> failing_edge;  // index into edges
};

std::vector<Topo> topologies() {
  std::vector<Topo> out;
  // line: 0-1-2-3-4-5
  Topo line{"line6", 6, {}, {0, 0}};
  for (int i = 0; i + 1 < 6; ++i) line.edges.push_back({i, i + 1});
  line.failing_edge = line.edges[2];
  out.push_back(line);
  // ring of 8
  Topo ring{"ring8", 8, {}, {0, 0}};
  for (int i = 0; i < 8; ++i) ring.edges.push_back({i, (i + 1) % 8});
  ring.failing_edge = ring.edges[0];
  out.push_back(ring);
  // 3x3 grid
  Topo grid{"grid3x3", 9, {}, {0, 0}};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const int id = r * 3 + c;
      if (c + 1 < 3) grid.edges.push_back({id, id + 1});
      if (r + 1 < 3) grid.edges.push_back({id, id + 3});
    }
  }
  grid.failing_edge = grid.edges[1];
  out.push_back(grid);
  return out;
}

struct RoutingOutcome {
  double initial_convergence_ms = -1;
  std::uint64_t initial_messages = 0;
  std::uint64_t initial_bytes = 0;
  double repair_ms = -1;
  std::uint64_t repair_messages = 0;
};

RoutingOutcome run(const Topo& topo, RoutingKind kind) {
  sim::Simulator sim;
  Network net(sim, config_for(kind), 17);
  for (int i = 0; i < topo.routers; ++i) net.add_router();
  std::size_t failing_index = 0;
  for (const auto& [a, b] : topo.edges) {
    const std::size_t idx = net.connect(static_cast<RouterId>(a),
                                        static_cast<RouterId>(b));
    if (std::pair{a, b} == topo.failing_edge) failing_index = idx;
  }
  net.start();

  RoutingOutcome out;
  const TimePoint start = sim.now();
  for (int step = 0; step < 4000; ++step) {
    sim.run_until(TimePoint::from_ns(sim.now().ns() + Duration::millis(5).ns()));
    if (net.fully_converged()) {
      out.initial_convergence_ms = (sim.now() - start).to_seconds() * 1e3;
      break;
    }
  }
  out.initial_messages = net.total_routing_messages();
  out.initial_bytes = net.total_routing_bytes();
  if (out.initial_convergence_ms < 0) return out;

  // Let things settle, then fail a link and time the repair.
  sim.run_until(TimePoint::from_ns(sim.now().ns() + Duration::millis(500).ns()));
  const std::uint64_t msgs_before = net.total_routing_messages();
  net.fail_link(failing_index);
  const TimePoint failure = sim.now();
  for (int step = 0; step < 4000; ++step) {
    sim.run_until(TimePoint::from_ns(sim.now().ns() + Duration::millis(5).ns()));
    if (net.fully_converged()) {
      out.repair_ms = (sim.now() - failure).to_seconds() * 1e3;
      break;
    }
  }
  out.repair_messages = net.total_routing_messages() - msgs_before;
  return out;
}

}  // namespace

int main() {
  std::puts("E11: route computation swap — distance vector vs link state");
  std::printf("%-9s %-5s | %12s %9s %10s | %11s %9s\n", "topology", "algo",
              "converge", "messages", "bytes", "repair", "messages");
  for (const auto& topo : topologies()) {
    for (const auto& [kind, name] :
         {std::pair{RoutingKind::kDistanceVector, "dv"},
          std::pair{RoutingKind::kLinkState, "ls"}}) {
      const auto out = run(topo, kind);
      std::printf("%-9s %-5s | %9.0f ms %9llu %10llu | %8.0f ms %9llu\n",
                  topo.name, name, out.initial_convergence_ms,
                  (unsigned long long)out.initial_messages,
                  (unsigned long long)out.initial_bytes, out.repair_ms,
                  (unsigned long long)out.repair_messages);
    }
  }
  std::puts(
      "\nshape vs paper: both engines fill the same FIB through the same\n"
      "interface (forwarding is untouched by the swap); link state "
      "converges\nand repairs faster on redundant topologies at the cost "
      "of flooding,\ndistance vector is lighter on lines — the classic "
      "trade the sublayer\nboundary makes swappable.");
  return 0;
}
