// Experiment E10 (Fig. 2): the composed data-link sublayer stack, and the
// independence of its sublayers — every combination of {line code} x
// {error detector} x {ARQ engine} works over the same impaired wire, and
// swapping any one sublayer changes only that sublayer's numbers.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

// Allocation tracking for the data-plane CPU microbench below: every
// operator new in the process is counted, so "allocation churn per frame"
// covers the full pipeline, temporaries included.
#define SUBLAYER_BENCH_TRACK_ALLOCS
#include "bench/harness.hpp"
#include "datalink/stack.hpp"

using namespace sublayer;
using namespace sublayer::datalink;

namespace {

struct StackOutcome {
  bool all_delivered = false;
  double goodput_kbps = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t detector_catches = 0;
  std::uint64_t phy_catches = 0;
};

using CodeFactory = std::unique_ptr<phy::LineCode> (*)();
using DetFactory = std::unique_ptr<ErrorDetector> (*)();

StackOutcome run_stack(CodeFactory code, DetFactory det,
                       const std::string& arq, double corrupt_rate,
                       bool fused = false) {
  sim::Simulator sim;
  Rng rng(99);
  sim::LinkConfig wire;
  wire.corrupt_rate = corrupt_rate;
  wire.corrupt_bit_flips = 2;
  wire.loss_rate = 0.02;
  wire.propagation_delay = Duration::micros(500);
  wire.bandwidth_bps = 10e6;

  StackConfig config;
  config.arq_engine = arq;
  config.arq.rto = Duration::millis(10);
  config.arq.window = 16;
  config.fused = fused;

  DatalinkPair pair(sim, wire, rng, config, code(), det(), code(), det());

  const int kFrames = 200;
  const std::size_t kFrameBytes = 256;
  int delivered = 0;
  const TimePoint start = sim.now();
  TimePoint finished = start;
  pair.b().set_deliver([&](Bytes) {
    if (++delivered == kFrames) finished = sim.now();
  });
  Rng data(5);
  for (int i = 0; i < kFrames; ++i) pair.a().send(data.next_bytes(kFrameBytes));
  sim.run(4'000'000);

  StackOutcome out;
  out.all_delivered = delivered == kFrames;
  const double secs = (finished - start).to_seconds();
  if (out.all_delivered && secs > 0) {
    out.goodput_kbps = kFrames * kFrameBytes * 8.0 / secs / 1e3;
  }
  out.retransmissions = pair.a().arq_stats().retransmissions;
  out.detector_catches = pair.b().stats().checksum_failures;
  out.phy_catches =
      pair.b().stats().phy_decode_failures + pair.b().stats().deframe_failures;
  return out;
}

// ---- Data-plane CPU microbench ---------------------------------------------
//
// Drives DataPlane::down/up back-to-back (no ARQ, no simulator, no wire
// impairment) to measure the CPU cost of the phy-coded path itself: wall
// clock MB/s of round-tripped goodput plus allocation churn per frame.
// This is the number the word-packed BitString refactor moves; the E10
// matrix above runs in virtual time and is invariant to representation.

struct PlaneResult {
  double mbps = 0;
  double alloc_bytes_per_frame = 0;
  double allocs_per_frame = 0;
  std::size_t goodput_bytes = 0;
};

// Pre-refactor baseline, measured with the identical loop (same Rng seed,
// frame count and sizes) on the byte-per-bit BitString data plane.
struct PlaneBaseline {
  const char* label;
  double mbps;
  double alloc_bytes_per_frame;
  double allocs_per_frame;
  std::size_t goodput_bytes;
};
constexpr PlaneBaseline kSeedBaseline[] = {
    {"nrz", 3.96, 53938, 63.9, 522000},
    {"nrzi", 2.88, 65909, 87.9, 522000},
    {"manchester", 2.52, 81545, 88.9, 522000},
    {"4b5b", 2.69, 75490, 1191.3, 522000},
};

// Committed unbatched numbers (BENCH_datalink.json at the time the batched
// path landed) — the anchor for the batched pipeline's 5x acceptance gate,
// frozen here so the gate cannot drift with the per-frame path.
struct CommittedRow {
  const char* label;
  double mbps;
};
constexpr CommittedRow kCommittedUnbatched[] = {
    {"nrz", 44.36}, {"nrzi", 39.28}, {"manchester", 20.90}, {"4b5b", 18.61}};

// Committed per-frame numbers of the DYNAMIC (virtual-dispatch) plane at
// the time compile-time fusion landed — the anchor for the fused path's
// 1.3x acceptance gate (DESIGN.md §15, E19).
constexpr CommittedRow kCommittedDynamicPerFrame[] = {{"nrz", 145.38},
                                                      {"nrzi", 118.71},
                                                      {"manchester", 111.75},
                                                      {"4b5b", 92.91}};

PlaneResult run_dataplane(CodeFactory code, int frames,
                          std::size_t frame_bytes, bool fused = false) {
  auto plane_ptr =
      make_data_plane(code(), make_crc32(), StuffingRule::hdlc(), fused);
  DataPlaneIface& plane = *plane_ptr;
  Rng rng(5);
  std::vector<Bytes> payloads;
  payloads.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    payloads.push_back(rng.next_bytes(frame_bytes));
  }

  PlaneResult out;
  // The round trip is deterministic, so each rep does identical work:
  // report the fastest rep (scheduler noise only ever slows a run down)
  // and the first rep's allocation counters — the same methodology as the
  // batched loop below.  Each rep is only a few ms of work, so a larger
  // rep count than the batched loop keeps the estimator stable.
  const int reps = frames >= 100 ? 9 : 1;
  double best_secs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const std::size_t a0_bytes = bench::total_alloc_bytes();
    const std::size_t a0_count = bench::alloc_count();
    std::size_t goodput = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& p : payloads) {
      Bytes wire = plane.down(Bytes(p));
      const auto checked = plane.up(wire);
      if (!checked || *checked != p) {
        std::fputs("dataplane round-trip MISMATCH\n", stderr);
        std::exit(1);
      }
      goodput += checked->size();
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0) {
      out.goodput_bytes = goodput;
      best_secs = secs;
      out.alloc_bytes_per_frame =
          static_cast<double>(bench::total_alloc_bytes() - a0_bytes) / frames;
      out.allocs_per_frame =
          static_cast<double>(bench::alloc_count() - a0_count) / frames;
    } else if (secs < best_secs) {
      best_secs = secs;
    }
  }
  out.mbps = static_cast<double>(out.goodput_bytes) / best_secs / 1e6;
  return out;
}

// ---- Batched data-plane microbench -----------------------------------------
//
// Same frames, but pushed through down_batch/up_batch in bursts, with every
// buffer drawn from and recycled into the plane's FrameArena — the
// steady-state forwarding loop the batched run-to-completion path runs.
// Heap allocations and arena recycles are reported separately: the former
// must amortize to ~0 per frame once the pools are warm.

struct BatchPlaneResult {
  double mbps = 0;
  double heap_allocs_per_frame = 0;
  double heap_bytes_per_frame = 0;
  double arena_recycles_per_frame = 0;
  double arena_fresh_per_frame = 0;
  std::size_t goodput_bytes = 0;
};

BatchPlaneResult run_dataplane_batched(CodeFactory code, int frames,
                                       std::size_t frame_bytes,
                                       std::size_t burst,
                                       bool fused = false) {
  auto plane_ptr =
      make_data_plane(code(), make_crc32(), StuffingRule::hdlc(), fused);
  DataPlaneIface& plane = *plane_ptr;
  Rng rng(5);
  std::vector<Bytes> payloads;
  payloads.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    payloads.push_back(rng.next_bytes(frame_bytes));
  }

  BatchPlaneResult out;
  std::vector<Bytes> batch_in;
  std::vector<Bytes> wires;
  std::vector<Bytes> checked;
  batch_in.reserve(burst);
  wires.reserve(burst);
  checked.reserve(burst);
  // The round trip is deterministic, so each rep does identical work:
  // report the fastest rep (scheduler noise only ever slows a run down)
  // and the first rep's allocation counters (later reps recycle more, so
  // the first rep is the conservative bound).
  const int reps = frames >= 100 ? 3 : 1;
  double best_secs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const std::size_t a0_bytes = bench::total_alloc_bytes();
    const std::size_t a0_count = bench::alloc_count();
    const auto ar0 = bench::arena_counter_sample();
    std::size_t goodput = 0;
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t i = 0;
    while (i < payloads.size()) {
      const std::size_t n = std::min(burst, payloads.size() - i);
      batch_in.clear();
      for (std::size_t j = 0; j < n; ++j) {
        Bytes f = plane.arena().acquire_bytes();
        const Bytes& p = payloads[i + j];
        f.assign(p.begin(), p.end());
        batch_in.push_back(std::move(f));
      }
      wires.clear();
      plane.down_batch(batch_in, wires);
      checked.clear();
      plane.up_batch(wires, checked);
      if (checked.size() != n) {
        std::fputs("batched dataplane LOST FRAMES\n", stderr);
        std::exit(1);
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (checked[j] != payloads[i + j]) {
          std::fputs("batched dataplane round-trip MISMATCH\n", stderr);
          std::exit(1);
        }
        goodput += checked[j].size();
        plane.arena().recycle(std::move(checked[j]));
      }
      i += n;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0) {
      out.goodput_bytes = goodput;
      best_secs = secs;
      const auto ar1 = bench::arena_counter_sample();
      out.heap_bytes_per_frame =
          static_cast<double>(bench::total_alloc_bytes() - a0_bytes) / frames;
      out.heap_allocs_per_frame =
          static_cast<double>(bench::alloc_count() - a0_count) / frames;
      out.arena_recycles_per_frame =
          static_cast<double>(ar1.recycled - ar0.recycled) / frames;
      out.arena_fresh_per_frame =
          static_cast<double>(ar1.fresh - ar0.fresh) / frames;
    } else if (secs < best_secs) {
      best_secs = secs;
    }
  }
  out.mbps = static_cast<double>(out.goodput_bytes) / best_secs / 1e6;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: one tiny pass of everything, for check.sh's bench-smoke step.
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int plane_frames = smoke ? 20 : 2000;

  std::puts(
      "E10: data-link sublayer matrix over an impaired wire "
      "(2% loss, 5% corrupt, 200 x 256 B frames)");
  std::printf("%-12s %-8s %-18s | %9s %11s %6s %7s %6s\n", "line code",
              "detect", "ARQ", "delivered", "goodput", "retx", "crc-catch",
              "phy");

  struct CodeRow {
    const char* name;
    CodeFactory make;
  };
  struct DetRow {
    const char* name;
    DetFactory make;
  };
  const CodeRow codes[] = {{"nrz", phy::make_nrz},
                           {"nrzi", phy::make_nrzi},
                           {"manchester", phy::make_manchester},
                           {"4b5b", phy::make_4b5b}};
  const DetRow dets[] = {{"crc16", make_crc16}, {"crc32", make_crc32},
                         {"crc64", make_crc64}};
  const char* arqs[] = {"stop-and-wait", "go-back-n", "selective-repeat"};

  // Full sweep of one axis at a time around a baseline, then a diagonal.
  struct MatrixRow {
    std::string label;
    bool all_delivered;
    double goodput_kbps;
  };
  std::vector<MatrixRow> matrix;
  const auto print_row = [&](const char* c, const char* d, const char* a,
                             const StackOutcome& out) {
    std::printf("%-12s %-8s %-18s | %9s %8.0f kbps %6llu %9llu %6llu\n", c, d,
                a, out.all_delivered ? "200/200" : "PARTIAL", out.goodput_kbps,
                (unsigned long long)out.retransmissions,
                (unsigned long long)out.detector_catches,
                (unsigned long long)out.phy_catches);
    matrix.push_back({std::string(c) + "/" + d + "/" + a, out.all_delivered,
                      out.goodput_kbps});
  };

  for (const auto& code : codes) {
    if (smoke && code.make != phy::make_nrz) continue;
    const auto out = run_stack(code.make, make_crc32, "selective-repeat", 0.05);
    print_row(code.name, "crc32", "selective-repeat", out);
  }
  if (!smoke) {
    for (const auto& det : dets) {
      const auto out = run_stack(phy::make_nrz, det.make, "selective-repeat",
                                 0.05);
      print_row("nrz", det.name, "selective-repeat", out);
    }
    for (const char* arq : arqs) {
      const auto out = run_stack(phy::make_nrz, make_crc32, arq, 0.05);
      print_row("nrz", "crc32", arq, out);
    }

    std::puts("\nARQ engine efficiency under loss (same wire, no corruption):");
    for (const char* arq : arqs) {
      const auto out = run_stack(phy::make_nrz, make_crc32, arq, 0.0);
      print_row("nrz", "crc32", arq, out);
    }
  }

  std::puts(
      "\nshape vs paper: every cell of the sublayer matrix composes and "
      "delivers\neverything reliably; goodput varies only along the axis "
      "being swapped\n(Manchester halves the wire efficiency, stop-and-wait "
      "serializes, CRC\nwidth is invisible except in tag bytes) — each "
      "sublayer's mechanism is\nencapsulated exactly as Fig. 2 claims.");

  // ---- Data-plane CPU throughput (word-packed BitString hot path) ----
  std::printf(
      "\nDataPlane CPU microbench (%d x 261 B frames, crc32 + HDLC, "
      "down+up round trip):\n",
      plane_frames);
  std::printf("%-12s %10s %14s %14s | %8s %9s\n", "line code", "MB/s",
              "alloc B/frame", "allocs/frame", "vs seed", "alloc vs");
  std::string plane_json;
  for (const auto& base : kSeedBaseline) {
    CodeFactory make = phy::make_nrz;
    for (const auto& code : codes) {
      if (std::string(code.name) == base.label) make = code.make;
    }
    const auto r = run_dataplane(make, plane_frames, 261);
    const double speedup = r.mbps / base.mbps;
    const double alloc_ratio =
        base.alloc_bytes_per_frame / r.alloc_bytes_per_frame;
    std::printf("%-12s %10.2f %14.0f %14.1f | %7.1fx %8.1fx\n", base.label,
                r.mbps, r.alloc_bytes_per_frame, r.allocs_per_frame, speedup,
                alloc_ratio);
    if (!smoke && r.goodput_bytes != base.goodput_bytes) {
      std::fprintf(stderr, "goodput bytes changed: %zu != seed %zu\n",
                   r.goodput_bytes, base.goodput_bytes);
      return 1;
    }
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"label\":\"%s\",\"mbps\":%.2f,\"alloc_bytes_per_frame\":%.0f,"
        "\"allocs_per_frame\":%.1f,\"goodput_bytes\":%zu,"
        "\"seed\":{\"mbps\":%.2f,\"alloc_bytes_per_frame\":%.0f,"
        "\"allocs_per_frame\":%.1f,\"goodput_bytes\":%zu},"
        "\"speedup\":%.2f,\"alloc_reduction\":%.2f}",
        plane_json.empty() ? "" : ",", base.label, r.mbps,
        r.alloc_bytes_per_frame, r.allocs_per_frame, r.goodput_bytes,
        base.mbps, base.alloc_bytes_per_frame, base.allocs_per_frame,
        base.goodput_bytes, speedup, alloc_ratio);
    plane_json += buf;
  }

  // ---- Batched data-plane sweep (E17): burst budgets over the arena path.
  std::printf(
      "\nBatched DataPlane (arena + stage-major pipeline, burst sweep):\n");
  std::printf("%-12s %6s %10s %12s %13s %13s | %9s\n", "line code", "burst",
              "MB/s", "heap/frame", "heapB/frame", "recycled/f", "vs commit");
  const std::size_t all_bursts[] = {1, 4, 16, 64};
  const std::size_t* bursts = smoke ? &all_bursts[2] : all_bursts;  // {16}
  const std::size_t nbursts = smoke ? 1 : 4;
  std::string batched_json;
  for (const auto& committed : kCommittedUnbatched) {
    if (smoke && std::string(committed.label) != "nrz") continue;
    CodeFactory make = phy::make_nrz;
    for (const auto& code : codes) {
      if (std::string(code.name) == committed.label) make = code.make;
    }
    for (std::size_t bi = 0; bi < nbursts; ++bi) {
      const std::size_t burst = bursts[bi];
      const auto r = run_dataplane_batched(make, plane_frames, 261, burst);
      const double speedup = r.mbps / committed.mbps;
      std::printf("%-12s %6zu %10.2f %12.2f %13.0f %13.2f | %8.1fx\n",
                  committed.label, burst, r.mbps, r.heap_allocs_per_frame,
                  r.heap_bytes_per_frame, r.arena_recycles_per_frame, speedup);
      if (!smoke && r.goodput_bytes != 522000) {
        std::fprintf(stderr, "batched goodput bytes changed: %zu != 522000\n",
                     r.goodput_bytes);
        return 1;
      }
      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "%s{\"label\":\"%s\",\"burst\":%zu,\"mbps\":%.2f,"
          "\"heap_allocs_per_frame\":%.2f,\"heap_bytes_per_frame\":%.0f,"
          "\"arena_recycles_per_frame\":%.2f,\"arena_fresh_per_frame\":%.2f,"
          "\"goodput_bytes\":%zu,\"committed_mbps\":%.2f,"
          "\"speedup_vs_committed\":%.2f}",
          batched_json.empty() ? "" : ",", committed.label, burst, r.mbps,
          r.heap_allocs_per_frame, r.heap_bytes_per_frame,
          r.arena_recycles_per_frame, r.arena_fresh_per_frame,
          r.goodput_bytes, committed.mbps, speedup);
      batched_json += buf;
    }
  }

  // ---- Fused data plane (E19): compile-time composed pipeline ----
  //
  // Same per-frame loop, but the plane is fused::Pipeline<Crc32Detector,
  // StuffingFraming, Code> behind the DataPlaneIface seam: zero virtual
  // hops between sublayers, arena-backed buffers.  The anchor is the
  // committed throughput of the dynamic plane the day fusion landed, so
  // the speedup cannot drift as the dynamic path evolves.
  std::printf(
      "\nFused DataPlane (compile-time composition, same per-frame loop):\n");
  std::printf("%-12s %10s %14s %14s | %11s\n", "line code", "MB/s",
              "alloc B/frame", "allocs/frame", "vs dynamic");
  std::string fused_json;
  for (const auto& committed : kCommittedDynamicPerFrame) {
    if (smoke && std::string(committed.label) != "nrz") continue;
    CodeFactory make = phy::make_nrz;
    for (const auto& code : codes) {
      if (std::string(code.name) == committed.label) make = code.make;
    }
    const auto r = run_dataplane(make, plane_frames, 261, /*fused=*/true);
    const double speedup = r.mbps / committed.mbps;
    std::printf("%-12s %10.2f %14.0f %14.1f | %10.2fx\n", committed.label,
                r.mbps, r.alloc_bytes_per_frame, r.allocs_per_frame, speedup);
    if (!smoke && r.goodput_bytes != 522000) {
      std::fprintf(stderr, "fused goodput bytes changed: %zu != 522000\n",
                   r.goodput_bytes);
      return 1;
    }
    char buf[384];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"label\":\"%s\",\"mbps\":%.2f,\"alloc_bytes_per_frame\":%.0f,"
        "\"allocs_per_frame\":%.1f,\"goodput_bytes\":%zu,"
        "\"committed_dynamic_mbps\":%.2f,\"speedup_vs_dynamic\":%.2f}",
        fused_json.empty() ? "" : ",", committed.label, r.mbps,
        r.alloc_bytes_per_frame, r.allocs_per_frame, r.goodput_bytes,
        committed.mbps, speedup);
    fused_json += buf;
  }

  // Fused drop-in on the E10 impaired wire: virtual-time goodput must be
  // IDENTICAL to the dynamic plane's — StackConfig::fused is a CPU
  // optimization, never a behavior change.
  const auto e10_dyn =
      run_stack(phy::make_nrz, make_crc32, "selective-repeat", 0.05);
  const auto e10_fused =
      run_stack(phy::make_nrz, make_crc32, "selective-repeat", 0.05,
                /*fused=*/true);
  std::printf(
      "\nE10 parity: fused plane on the impaired wire -> %.0f kbps "
      "(dynamic %.0f kbps) %s\n",
      e10_fused.goodput_kbps, e10_dyn.goodput_kbps,
      e10_fused.goodput_kbps == e10_dyn.goodput_kbps &&
              e10_fused.retransmissions == e10_dyn.retransmissions &&
              e10_fused.detector_catches == e10_dyn.detector_catches
          ? "IDENTICAL"
          : "MISMATCH");
  if (e10_fused.goodput_kbps != e10_dyn.goodput_kbps ||
      e10_fused.retransmissions != e10_dyn.retransmissions ||
      e10_fused.detector_catches != e10_dyn.detector_catches ||
      e10_fused.phy_catches != e10_dyn.phy_catches) {
    std::fputs("fused plane changed the E10 virtual-time trace\n", stderr);
    return 1;
  }

  // ---- Fused batched: the same burst loop on the fused plane.  The
  // batched stages were already devirtualized stage-major, so the win here
  // is bounded — this row documents that fusion never regresses the
  // batched path (committed batched-16 anchors).
  constexpr CommittedRow kCommittedBatched16[] = {{"nrz", 220.41},
                                                  {"nrzi", 160.26},
                                                  {"manchester", 147.14},
                                                  {"4b5b", 133.36}};
  std::printf("\nFused batched DataPlane (burst 16):\n");
  std::printf("%-12s %10s %12s | %14s\n", "line code", "MB/s", "heap/frame",
              "vs dyn batched");
  std::string fused_batched_json;
  for (const auto& committed : kCommittedBatched16) {
    if (smoke && std::string(committed.label) != "nrz") continue;
    CodeFactory make = phy::make_nrz;
    for (const auto& code : codes) {
      if (std::string(code.name) == committed.label) make = code.make;
    }
    const auto r =
        run_dataplane_batched(make, plane_frames, 261, 16, /*fused=*/true);
    const double ratio = r.mbps / committed.mbps;
    std::printf("%-12s %10.2f %12.2f | %13.2fx\n", committed.label, r.mbps,
                r.heap_allocs_per_frame, ratio);
    if (!smoke && r.goodput_bytes != 522000) {
      std::fprintf(stderr,
                   "fused batched goodput bytes changed: %zu != 522000\n",
                   r.goodput_bytes);
      return 1;
    }
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"label\":\"%s\",\"burst\":16,\"mbps\":%.2f,"
        "\"heap_allocs_per_frame\":%.2f,\"goodput_bytes\":%zu,"
        "\"committed_dynamic_mbps\":%.2f,\"ratio_vs_dynamic\":%.2f}",
        fused_batched_json.empty() ? "" : ",", committed.label, r.mbps,
        r.heap_allocs_per_frame, r.goodput_bytes, committed.mbps, ratio);
    fused_batched_json += buf;
  }

  std::string matrix_json;
  for (const auto& row : matrix) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s{\"label\":\"%s\",\"delivered\":%s,\"goodput_kbps\":%.0f}",
                  matrix_json.empty() ? "" : ",", row.label.c_str(),
                  row.all_delivered ? "true" : "false", row.goodput_kbps);
    matrix_json += buf;
  }
  std::printf(
      "BENCH_JSON {\"bench\":\"datalink\",\"frames\":%d,"
      "\"frame_bytes\":261,\"dataplane\":[%s],\"dataplane_fused\":[%s],"
      "\"dataplane_batched\":[%s],\"dataplane_fused_batched\":[%s],"
      "\"e10_fused_parity\":%s,\"e10_matrix\":[%s]}\n",
      plane_frames, plane_json.c_str(), fused_json.c_str(),
      batched_json.c_str(), fused_batched_json.c_str(),
      e10_fused.goodput_kbps == e10_dyn.goodput_kbps ? "true" : "false",
      matrix_json.c_str());
  return 0;
}
