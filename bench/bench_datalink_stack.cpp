// Experiment E10 (Fig. 2): the composed data-link sublayer stack, and the
// independence of its sublayers — every combination of {line code} x
// {error detector} x {ARQ engine} works over the same impaired wire, and
// swapping any one sublayer changes only that sublayer's numbers.
#include <chrono>
#include <cstdio>

#include "datalink/stack.hpp"

using namespace sublayer;
using namespace sublayer::datalink;

namespace {

struct StackOutcome {
  bool all_delivered = false;
  double goodput_kbps = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t detector_catches = 0;
  std::uint64_t phy_catches = 0;
};

using CodeFactory = std::unique_ptr<phy::LineCode> (*)();
using DetFactory = std::unique_ptr<ErrorDetector> (*)();

StackOutcome run_stack(CodeFactory code, DetFactory det,
                       const std::string& arq, double corrupt_rate) {
  sim::Simulator sim;
  Rng rng(99);
  sim::LinkConfig wire;
  wire.corrupt_rate = corrupt_rate;
  wire.corrupt_bit_flips = 2;
  wire.loss_rate = 0.02;
  wire.propagation_delay = Duration::micros(500);
  wire.bandwidth_bps = 10e6;

  StackConfig config;
  config.arq_engine = arq;
  config.arq.rto = Duration::millis(10);
  config.arq.window = 16;

  DatalinkPair pair(sim, wire, rng, config, code(), det(), code(), det());

  const int kFrames = 200;
  const std::size_t kFrameBytes = 256;
  int delivered = 0;
  const TimePoint start = sim.now();
  TimePoint finished = start;
  pair.b().set_deliver([&](Bytes) {
    if (++delivered == kFrames) finished = sim.now();
  });
  Rng data(5);
  for (int i = 0; i < kFrames; ++i) pair.a().send(data.next_bytes(kFrameBytes));
  sim.run(4'000'000);

  StackOutcome out;
  out.all_delivered = delivered == kFrames;
  const double secs = (finished - start).to_seconds();
  if (out.all_delivered && secs > 0) {
    out.goodput_kbps = kFrames * kFrameBytes * 8.0 / secs / 1e3;
  }
  out.retransmissions = pair.a().arq_stats().retransmissions;
  out.detector_catches = pair.b().stats().checksum_failures;
  out.phy_catches =
      pair.b().stats().phy_decode_failures + pair.b().stats().deframe_failures;
  return out;
}

}  // namespace

int main() {
  std::puts(
      "E10: data-link sublayer matrix over an impaired wire "
      "(2% loss, 5% corrupt, 200 x 256 B frames)");
  std::printf("%-12s %-8s %-18s | %9s %11s %6s %7s %6s\n", "line code",
              "detect", "ARQ", "delivered", "goodput", "retx", "crc-catch",
              "phy");

  struct CodeRow {
    const char* name;
    CodeFactory make;
  };
  struct DetRow {
    const char* name;
    DetFactory make;
  };
  const CodeRow codes[] = {{"nrz", phy::make_nrz},
                           {"nrzi", phy::make_nrzi},
                           {"manchester", phy::make_manchester},
                           {"4b5b", phy::make_4b5b}};
  const DetRow dets[] = {{"crc16", make_crc16}, {"crc32", make_crc32},
                         {"crc64", make_crc64}};
  const char* arqs[] = {"stop-and-wait", "go-back-n", "selective-repeat"};

  // Full sweep of one axis at a time around a baseline, then a diagonal.
  const auto print_row = [&](const char* c, const char* d, const char* a,
                             const StackOutcome& out) {
    std::printf("%-12s %-8s %-18s | %9s %8.0f kbps %6llu %9llu %6llu\n", c, d,
                a, out.all_delivered ? "200/200" : "PARTIAL", out.goodput_kbps,
                (unsigned long long)out.retransmissions,
                (unsigned long long)out.detector_catches,
                (unsigned long long)out.phy_catches);
  };

  for (const auto& code : codes) {
    const auto out = run_stack(code.make, make_crc32, "selective-repeat", 0.05);
    print_row(code.name, "crc32", "selective-repeat", out);
  }
  for (const auto& det : dets) {
    const auto out = run_stack(phy::make_nrz, det.make, "selective-repeat",
                               0.05);
    print_row("nrz", det.name, "selective-repeat", out);
  }
  for (const char* arq : arqs) {
    const auto out = run_stack(phy::make_nrz, make_crc32, arq, 0.05);
    print_row("nrz", "crc32", arq, out);
  }

  std::puts("\nARQ engine efficiency under loss (same wire, no corruption):");
  for (const char* arq : arqs) {
    const auto out = run_stack(phy::make_nrz, make_crc32, arq, 0.0);
    print_row("nrz", "crc32", arq, out);
  }

  std::puts(
      "\nshape vs paper: every cell of the sublayer matrix composes and "
      "delivers\neverything reliably; goodput varies only along the axis "
      "being swapped\n(Manchester halves the wire efficiency, stop-and-wait "
      "serializes, CRC\nwidth is invisible except in tag bytes) — each "
      "sublayer's mechanism is\nencapsulated exactly as Fig. 2 claims.");
  return 0;
}
