// Experiment E18: snapshot cost and the chaos matrix.
//
// Default mode measures the snapshot container on the ring workload
// (4 routers, 8 sublayered TCP flows) warmed to 1.2 s: image size, save
// time, and restore time (into a freshly constructed identical graph),
// for the monolithic wheel engine and the 4-shard parallel engine, clean
// and with mixed-mayhem chaos armed.  Emits one BENCH_JSON line.
//
// --matrix N forks N alternative fault futures from ONE warmed clean
// snapshot: each future restores the same image, arms a differently
// seeded mixed-mayhem plan, and runs to the deadline.  The run verifies
// the futures genuinely diverge (different event counts), that every
// future heals all its faults, and that re-running a future reproduces
// it exactly — the snapshot is a reusable launch pad, not a one-shot.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/controller.hpp"
#include "chaos/fault_plan.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "netlayer/router.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "transport/sublayered/host.hpp"

using namespace sublayer;

namespace {

constexpr std::size_t kRing = 4;
constexpr std::size_t kFlows = 8;
constexpr std::size_t kPerFlow = 4096;

netlayer::RouterConfig ring_router_config() {
  netlayer::RouterConfig rc;
  rc.routing = netlayer::RoutingKind::kLinkState;
  rc.neighbor.dead_interval = Duration::seconds(3600.0);
  return rc;
}

sim::LinkConfig ring_link_config() {
  sim::LinkConfig link;
  link.bandwidth_bps = 10e9;
  link.propagation_delay = Duration::micros(100);
  link.queue_limit = 4096;
  return link;
}

chaos::FaultPlan mayhem_plan(std::size_t link_count, std::uint64_t seed,
                             TimePoint start) {
  chaos::ScriptParams params;
  params.link_count = link_count;
  params.router_count = kRing;
  params.start = start;
  params.active_window = Duration::seconds(1.5);
  return chaos::make_plan("mixed-mayhem", seed, params);
}

// The same ring-workload graph the snapshot-resume integration suite
// uses; see tests/integration/snapshot_resume_test.cpp for the contract.
struct World {
  World(std::size_t shards, bool with_chaos) : parallel(shards > 0) {
    if (!parallel) {
      telemetry::MetricsRegistry::instance().reset();
      telemetry::SpanTracer::instance().reset();
    }
    if (parallel) {
      sim::ParallelConfig pc;
      pc.shards = shards;
      pc.threads = shards;
      psim = std::make_unique<sim::ParallelSimulator>(pc);
      sim::ShardMap map(shards);
      for (std::size_t i = 0; i < kRing; ++i) map.assign(i, i % shards);
      net = std::make_unique<netlayer::Network>(*psim, ring_router_config(),
                                                /*seed=*/1, map);
    } else {
      mono = std::make_unique<sim::Simulator>(sim::EngineKind::kTimerWheel);
      net = std::make_unique<netlayer::Network>(*mono, ring_router_config(),
                                                /*seed=*/1);
    }
    for (std::size_t i = 0; i < kRing; ++i) {
      routers.push_back(net->add_router());
    }
    for (std::size_t i = 0; i < kRing; ++i) {
      net->connect(routers[i], routers[(i + 1) % kRing], ring_link_config());
    }
    transport::HostConfig hc;
    hc.connection.cm.keepalive_interval = Duration::seconds(2.0);
    for (std::size_t i = 0; i < kRing; ++i) {
      std::optional<sim::ParallelSimulator::ShardScope> scope;
      if (parallel) scope.emplace(*psim, net->shard_of(routers[i]));
      hosts.push_back(std::make_unique<transport::TcpHost>(
          net->router(routers[i]), 1, hc));
      auto* bucket = &received[i];
      hosts.back()->listen(80, [bucket](transport::Connection& c) {
        auto count = std::make_shared<std::size_t>(0);
        bucket->push_back(count);
        transport::Connection::AppCallbacks cb;
        cb.on_data = [count](Bytes data) { *count += data.size(); };
        c.set_app_callbacks(cb);
      });
    }
    if (with_chaos) {
      if (parallel) {
        chaos_ctl.emplace(*psim, *net);
      } else {
        chaos_ctl.emplace(*mono, *net);
      }
    }
  }

  void begin() {
    net->start();
    const auto warmup = TimePoint::from_ns(Duration::millis(500).ns());
    run_until(warmup);
    if (chaos_ctl) {
      chaos_ctl->arm(mayhem_plan(net->link_count(), 3,
                                 TimePoint::from_ns(Duration::millis(600).ns())));
    }
    Rng rng(7);
    const Bytes payload = rng.next_bytes(kPerFlow);
    for (std::size_t f = 0; f < kFlows; ++f) {
      transport::TcpHost* client = hosts[f % kRing].get();
      transport::TcpHost* server = hosts[(f % kRing + 2) % kRing].get();
      const auto at =
          warmup + Duration::micros(static_cast<std::int64_t>(10 * (f + 1)));
      const auto go = [client, server, payload] {
        client->connect(server->addr(), 80).send(payload);
      };
      if (parallel) {
        psim->shard(net->shard_of(routers[f % kRing])).schedule_at(at, go);
      } else {
        mono->schedule_at(at, go);
      }
    }
  }

  void run_until(TimePoint t) {
    if (parallel) {
      psim->run_until(t);
    } else {
      mono->run_until(t);
    }
  }

  std::uint64_t events_processed() const {
    return parallel ? psim->events_processed() : mono->events_processed();
  }

  Bytes save_world() const {
    sim::SnapshotWriter w;
    if (parallel) {
      psim->save(w);
    } else {
      mono->save(w);
      sim::save_metrics(w, telemetry::MetricsRegistry::instance());
      sim::save_spans(w, telemetry::SpanTracer::instance());
    }
    net->save(w);
    for (const auto& h : hosts) h->save(w);
    if (chaos_ctl) chaos_ctl->save(w);
    return w.finish();
  }

  void restore_from(const Bytes& image) {
    sim::SnapshotReader r(image);
    if (parallel) {
      psim->restore(r);
    } else {
      mono->restore(r);
      sim::restore_metrics(r, telemetry::MetricsRegistry::instance());
      sim::restore_spans(r, telemetry::SpanTracer::instance());
    }
    net->restore(r);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      std::optional<sim::ParallelSimulator::ShardScope> scope;
      if (parallel) scope.emplace(*psim, net->shard_of(routers[i]));
      hosts[i]->restore(r);
    }
    if (chaos_ctl) chaos_ctl->restore(r);
    if (parallel) {
      psim->finish_restore();
    } else {
      mono->finish_restore();
    }
  }

  std::vector<std::size_t> host_sums() const {
    std::vector<std::size_t> out;
    for (const auto& bucket : received) {
      std::size_t total = 0;
      for (const auto& c : bucket) total += *c;
      out.push_back(total);
    }
    return out;
  }

  bool parallel;
  std::unique_ptr<sim::Simulator> mono;
  std::unique_ptr<sim::ParallelSimulator> psim;
  std::unique_ptr<netlayer::Network> net;
  std::vector<netlayer::RouterId> routers;
  std::vector<std::unique_ptr<transport::TcpHost>> hosts;
  std::vector<std::vector<std::shared_ptr<std::size_t>>> received{
      std::vector<std::vector<std::shared_ptr<std::size_t>>>(kRing)};
  std::optional<chaos::ChaosController> chaos_ctl;
};

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::uint64_t median(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

struct Row {
  std::string label;
  std::size_t shards = 0;
  bool chaos = false;
  std::size_t image_bytes = 0;
  std::uint64_t save_ns = 0;     // median
  std::uint64_t restore_ns = 0;  // median
};

Row measure(const std::string& label, std::size_t shards, bool with_chaos,
            int reps) {
  const auto mid = TimePoint::from_ns(Duration::millis(1200).ns());
  World w(shards, with_chaos);
  w.begin();
  w.run_until(mid);

  Row row;
  row.label = label;
  row.shards = shards;
  row.chaos = with_chaos;

  std::vector<std::uint64_t> save_ns;
  Bytes image;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    image = w.save_world();
    save_ns.push_back(elapsed_ns(t0));
  }
  row.image_bytes = image.size();
  row.save_ns = median(save_ns);

  // Each restore sample needs a fresh, never-run graph; construction is
  // outside the timed region.
  std::vector<std::uint64_t> restore_ns;
  for (int i = 0; i < reps; ++i) {
    World fresh(shards, with_chaos);
    const auto t0 = std::chrono::steady_clock::now();
    fresh.restore_from(image);
    restore_ns.push_back(elapsed_ns(t0));
  }
  row.restore_ns = median(restore_ns);
  return row;
}

int run_matrix(int futures) {
  // One warmed clean snapshot; every future starts from it.
  const auto mid = TimePoint::from_ns(Duration::millis(1200).ns());
  const auto end = TimePoint::from_ns(Duration::seconds(5.0).ns());
  World warm(0, /*with_chaos=*/false);
  warm.begin();
  warm.run_until(mid);
  const Bytes image = warm.save_world();
  std::printf("chaos matrix: %d futures from one %zu-byte snapshot @1.2s\n",
              futures, image.size());

  struct Future {
    std::uint64_t events = 0;
    std::uint64_t applied = 0;
    std::uint64_t healed = 0;
    std::vector<std::size_t> sums;
  };
  const auto run_future = [&](std::uint64_t seed) {
    // The restore graph carries no controller (the image has none); the
    // future's plan is armed on a fresh controller over the restored,
    // running network — the restart path that re-derives baselines from
    // the live configs.
    World w(0, /*with_chaos=*/false);
    w.restore_from(image);
    chaos::ChaosController ctl(*w.mono, *w.net);
    ctl.arm(mayhem_plan(w.net->link_count(), seed,
                        TimePoint::from_ns(Duration::millis(1300).ns())));
    w.run_until(end);
    Future f;
    f.events = w.events_processed();
    f.applied = ctl.stats().faults_applied;
    f.healed = ctl.stats().faults_healed;
    f.sums = w.host_sums();
    if (!ctl.all_healed()) {
      std::fprintf(stderr, "future seed %llu: faults not healed\n",
                   static_cast<unsigned long long>(seed));
      std::exit(1);
    }
    return f;
  };

  std::vector<Future> runs;
  for (int i = 0; i < futures; ++i) {
    runs.push_back(run_future(static_cast<std::uint64_t>(i + 1)));
    std::printf(
        "  seed %2d: events=%llu faults=%llu/%llu\n", i + 1,
        static_cast<unsigned long long>(runs.back().events),
        static_cast<unsigned long long>(runs.back().applied),
        static_cast<unsigned long long>(runs.back().healed));
  }
  bool diverged = false;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].events != runs[0].events) diverged = true;
  }
  if (!diverged && futures > 1) {
    std::fprintf(stderr, "futures did not diverge\n");
    return 1;
  }
  // Forking is repeatable: the same seed from the same image reproduces
  // the future exactly.
  const Future again = run_future(1);
  if (again.events != runs[0].events || again.sums != runs[0].sums ||
      again.applied != runs[0].applied) {
    std::fprintf(stderr, "future seed 1 did not reproduce\n");
    return 1;
  }
  std::puts("CHAOS_MATRIX_OK");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int matrix = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--matrix") == 0 && i + 1 < argc) {
      matrix = std::atoi(argv[++i]);
    }
  }
  if (matrix > 0) return run_matrix(matrix);

  const int reps = smoke ? 1 : 7;
  std::puts(
      "E18: snapshot cost on the ring workload (4 routers, 8 flows, warmed "
      "to 1.2s)\nimage size, median save / restore wall time");
  std::vector<Row> rows;
  rows.push_back(measure("mono-clean", 0, false, reps));
  rows.push_back(measure("mono-chaos", 0, true, reps));
  rows.push_back(measure("par4-clean", 4, false, reps));
  rows.push_back(measure("par4-chaos", 4, true, reps));

  std::printf("%-12s | %10s | %10s | %10s\n", "workload", "bytes", "save us",
              "restore us");
  std::string json = "{\"workloads\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%-12s | %10zu | %10.1f | %10.1f\n", r.label.c_str(),
                r.image_bytes, r.save_ns / 1e3, r.restore_ns / 1e3);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s{\"label\":\"%s\",\"shards\":%zu,\"chaos\":%s,"
                  "\"image_bytes\":%zu,\"save_ns\":%llu,\"restore_ns\":%llu}",
                  i ? "," : "", r.label.c_str(), r.shards,
                  r.chaos ? "true" : "false", r.image_bytes,
                  static_cast<unsigned long long>(r.save_ns),
                  static_cast<unsigned long long>(r.restore_ns));
    json += buf;
  }
  json += "]}";
  std::printf("BENCH_JSON %s\n", json.c_str());
  return 0;
}
