// Experiment E6 (paper §3.1 + Challenge 2): interoperability through the
// shim.  "Adding a shim sublayer that converts the sublayered header ...
// to a standard TCP header, together with replicating all existing TCP
// functionality in some sublayer, should allow interoperability."
//
// Measures: (1) header isomorphism round-trip rate over randomized
// segments, and (2) full transfers sublayered<->monolithic in both
// directions under loss, with goodput relative to the homogeneous pairs.
#include <cstdio>

#include "bench/harness.hpp"
#include "transport/monolithic/mono_tcp.hpp"
#include "transport/sublayered/shim.hpp"

using namespace sublayer;
using namespace sublayer::bench;
using namespace sublayer::transport;

namespace {

void isomorphism_fuzz() {
  std::puts("E6.1: header isomorphism, randomized round trips");
  HeaderShim tx;
  HeaderShim rx;
  // Handshake priming for tuple (1000, 80) to peer address 9.
  SublayeredSegment syn;
  syn.dm = {1000, 80};
  syn.cm.kind = CmKind::kSyn;
  syn.cm.isn_local = 777;
  rx.incoming(9, tx.outgoing(9, syn));
  SublayeredSegment synack;
  synack.dm = {80, 1000};
  synack.cm.kind = CmKind::kSynAck;
  synack.cm.isn_local = 888;
  synack.cm.isn_peer = 777;
  tx.incoming(9, rx.outgoing(9, synack));

  Rng rng(31);
  int ok = 0;
  const int kTrials = 100000;
  for (int t = 0; t < kTrials; ++t) {
    SublayeredSegment s;
    s.dm = {1000, 80};
    s.cm.kind = CmKind::kData;
    s.cm.isn_local = 777;
    s.cm.isn_peer = 888;
    s.rd.seq_offset = static_cast<std::uint32_t>(rng.next_below(1 << 24));
    s.rd.ack_offset = static_cast<std::uint32_t>(rng.next_below(1 << 24));
    const std::uint32_t sack_start =
        static_cast<std::uint32_t>(rng.next_below(1 << 24));
    if (rng.chance(0.5)) {
      s.rd.sack = {{sack_start, sack_start + 1200}};
    }
    s.osr.recv_window = static_cast<std::uint32_t>(rng.next_below(65536));
    s.osr.ecn_echo = rng.chance(0.2);
    s.payload = rng.next_bytes(rng.next_below(64));

    const auto back = rx.incoming(9, tx.outgoing(9, s));
    if (back.size() == 1 && back[0].cm.kind == CmKind::kData &&
        back[0].rd.seq_offset == s.rd.seq_offset &&
        back[0].rd.ack_offset == s.rd.ack_offset &&
        back[0].rd.sack == s.rd.sack &&
        back[0].osr.recv_window == s.osr.recv_window &&
        back[0].osr.ecn_echo == s.osr.ecn_echo &&
        back[0].payload == s.payload) {
      ++ok;
    }
  }
  std::printf("  %d/%d randomized data segments survive native->793->native "
              "intact\n\n", ok, kTrials);
}

struct InteropOutcome {
  bool complete = false;
  double goodput_mbps = 0;
};

InteropOutcome run_interop(bool sub_is_client, double loss) {
  sim::LinkConfig link;
  link.bandwidth_bps = 50e6;
  link.propagation_delay = Duration::millis(2);
  link.loss_rate = loss;
  NetSetup net(link, 3);

  HostConfig hc;
  hc.wire_rfc793 = true;
  TcpHost sub(net.sim, net.net.router(net.r0), 1, hc);
  MonoHost mono(net.sim, net.net.router(net.r1), 1);

  const std::size_t bytes = 1 << 20;
  std::size_t received = 0;
  const TimePoint start = net.sim.now();
  TimePoint finished = start;
  const auto on_bytes = [&](std::size_t n) {
    received += n;
    if (received == bytes) finished = net.sim.now();
  };
  Rng rng(5);
  const Bytes payload = rng.next_bytes(bytes);

  if (sub_is_client) {
    mono.listen(80, [&](MonoConnection& conn) {
      MonoConnection::AppCallbacks cb;
      cb.on_data = [&](Bytes d) { on_bytes(d.size()); };
      conn.set_app_callbacks(cb);
    });
    auto& conn = sub.connect(mono.addr(), 80);
    conn.send(payload);
  } else {
    sub.listen(80, [&](Connection& conn) {
      Connection::AppCallbacks cb;
      cb.on_data = [&](Bytes d) { on_bytes(d.size()); };
      conn.set_app_callbacks(cb);
    });
    auto& conn = mono.connect(sub.addr(), 80);
    conn.send(payload);
  }
  {
    std::size_t processed = 0;
    while (processed < 30'000'000 && received < bytes) {
      const std::size_t n = net.sim.run(100'000);
      processed += n;
      if (n == 0) break;
    }
  }

  InteropOutcome out;
  out.complete = received == bytes;
  const double secs = (finished - start).to_seconds();
  if (out.complete && secs > 0) {
    out.goodput_mbps = static_cast<double>(bytes) * 8.0 / secs / 1e6;
  }
  return out;
}

}  // namespace

int main() {
  isomorphism_fuzz();

  std::puts("E6.2: 1 MB transfers across implementations (50 Mbps, 4 ms RTT)");
  std::printf("%-34s %8s | %12s %12s\n", "pairing", "loss", "complete",
              "goodput");
  for (const double loss : {0.0, 0.01}) {
    const auto sub_sub =
        run_transfer(Variant::kSublayered,
                     [&] {
                       sim::LinkConfig l;
                       l.bandwidth_bps = 50e6;
                       l.propagation_delay = Duration::millis(2);
                       l.loss_rate = loss;
                       return l;
                     }(),
                     1 << 20);
    const auto mono_mono =
        run_transfer(Variant::kMonolithic,
                     [&] {
                       sim::LinkConfig l;
                       l.bandwidth_bps = 50e6;
                       l.propagation_delay = Duration::millis(2);
                       l.loss_rate = loss;
                       return l;
                     }(),
                     1 << 20);
    const auto s_client = run_interop(true, loss);
    const auto s_server = run_interop(false, loss);
    if (loss == 0.0) print_metrics_json("interop_sub_sub_lossless", sub_sub);
    std::printf("%-34s %7.1f%% | %12s %9.2f Mbps\n",
                "sublayered <-> sublayered", loss * 100,
                sub_sub.complete ? "yes" : "NO", sub_sub.goodput_mbps);
    std::printf("%-34s %7.1f%% | %12s %9.2f Mbps\n",
                "monolithic <-> monolithic", loss * 100,
                mono_mono.complete ? "yes" : "NO", mono_mono.goodput_mbps);
    std::printf("%-34s %7.1f%% | %12s %9.2f Mbps\n",
                "sublayered(shim) -> monolithic", loss * 100,
                s_client.complete ? "yes" : "NO", s_client.goodput_mbps);
    std::printf("%-34s %7.1f%% | %12s %9.2f Mbps\n",
                "monolithic -> sublayered(shim)", loss * 100,
                s_server.complete ? "yes" : "NO", s_server.goodput_mbps);
  }
  std::puts(
      "\nshape vs paper: the shim makes the re-architected header fully\n"
      "interoperable with standard TCP in both roles, at goodput comparable "
      "to\nthe homogeneous pairings — the isomorphism claim of §3.1 holds.");
  return 0;
}
