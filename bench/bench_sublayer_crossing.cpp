// Experiment E5 (paper §3.1): "Sublayered TCP performance will be poor?
// Most performance issues in networking are due to protection, control
// overhead, and copying.  We have already learned to finesse those for
// layer crossings, so why not for sublayer crossings?"
//
// Measures the CPU cost of sublayer crossings directly:
//  (1) google-benchmark micro: header encode+decode for the monolithic
//      RFC 793 header, the sublayered Fig. 6 header, and the shim
//      translation (the extra cost of interoperating).
//  (2) macro: host CPU nanoseconds per segment for a full simulated 4 MB
//      transfer through each transport variant (identical network, zero
//      loss, so the segment counts match).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/harness.hpp"
#include "transport/sublayered/shim.hpp"
#include "transport/wire/fused_segment.hpp"

using namespace sublayer;
using namespace sublayer::bench;
using namespace sublayer::transport;

namespace {

SublayeredSegment sample_segment() {
  SublayeredSegment s;
  s.dm = {43210, 80};
  s.cm.kind = CmKind::kData;
  s.cm.isn_local = 0x12345678;
  s.cm.isn_peer = 0x9abcdef0;
  s.rd.seq_offset = 144000;
  s.rd.ack_offset = 96000;
  s.rd.sack = {{150000, 151200}};
  s.osr.recv_window = 1 << 20;
  Rng rng(1);
  s.payload = rng.next_bytes(1200);
  return s;
}

TcpHeader sample_tcp_header() {
  TcpHeader h;
  h.src_port = 43210;
  h.dst_port = 80;
  h.seq = 0x12345678;
  h.ack = 0x9abcdef0;
  h.flag_ack = true;
  h.window = 65535;
  h.sack = {{0x12350000, 0x12350400}};
  return h;
}

void bench_rfc793_header(benchmark::State& state) {
  const TcpHeader h = sample_tcp_header();
  Rng rng(1);
  const Bytes payload = rng.next_bytes(1200);
  for (auto _ : state) {
    const Bytes wire = h.encode(payload);
    benchmark::DoNotOptimize(decode_tcp_segment(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_rfc793_header);

void bench_sublayered_header(benchmark::State& state) {
  const SublayeredSegment s = sample_segment();
  for (auto _ : state) {
    const Bytes wire = s.encode();
    benchmark::DoNotOptimize(SublayeredSegment::decode(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_sublayered_header);

// The sublayer-crossing cost in isolation: the four header sublayers
// (DM -> CM -> RD -> OSR) composed at compile time (fold expression, the
// product path) vs the same four stages behind per-stage function pointers
// (one indirect call per crossing — the moral equivalent of virtual
// wiring).  The delta between these two rows IS the cost of a dynamic
// sublayer crossing; the fused row shows it can be compiled away entirely.
// No payload copy in the loop, so the numbers are pure header work.
void bench_fused_header_chain(benchmark::State& state) {
  const SublayeredSegment s = sample_segment();
  Bytes out;
  out.reserve(64);
  for (auto _ : state) {
    out.clear();
    ByteWriter w(out);
    SublayeredHeaderChain::write(s, w);
    benchmark::DoNotOptimize(out.data());
    ByteReader r(out);
    SublayeredSegment parsed;
    const bool ok = SublayeredHeaderChain::read(r, parsed);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_fused_header_chain);

void bench_dynamic_header_chain(benchmark::State& state) {
  const SublayeredSegment s = sample_segment();
  const DynamicHeaderChain* chain = &DynamicHeaderChain::instance();
  benchmark::DoNotOptimize(chain);  // keep the indirect calls indirect
  Bytes out;
  out.reserve(64);
  for (auto _ : state) {
    out.clear();
    ByteWriter w(out);
    chain->write(s, w);
    benchmark::DoNotOptimize(out.data());
    ByteReader r(out);
    SublayeredSegment parsed;
    const bool ok = chain->read(r, parsed);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_dynamic_header_chain);

void bench_shim_translation(benchmark::State& state) {
  HeaderShim tx;
  HeaderShim rx;
  const SublayeredSegment s = sample_segment();
  // Prime the rx shim with a handshake so data segments translate.
  SublayeredSegment syn;
  syn.dm = s.dm;
  syn.cm.kind = CmKind::kSyn;
  syn.cm.isn_local = s.cm.isn_local;
  rx.incoming(1, tx.outgoing(1, syn));
  SublayeredSegment synack;
  synack.dm = {s.dm.dst_port, s.dm.src_port};
  synack.cm.kind = CmKind::kSynAck;
  synack.cm.isn_local = s.cm.isn_peer;
  synack.cm.isn_peer = s.cm.isn_local;
  rx.outgoing(1, synack);
  for (auto _ : state) {
    const Bytes wire = tx.outgoing(1, s);
    benchmark::DoNotOptimize(rx.incoming(1, wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bench_shim_translation);

void macro_table() {
  std::puts("E5 macro: host CPU per segment, full simulated 4 MB transfer");
  std::printf("%-18s %10s %12s %14s %12s\n", "variant", "segments",
              "sim events", "cpu/segment", "vs mono");
  sim::LinkConfig link;
  link.bandwidth_bps = 1e9;
  link.propagation_delay = Duration::millis(1);

  double mono_ns = 0;
  for (const Variant v :
       {Variant::kMonolithic, Variant::kSublayered, Variant::kSublayeredShim}) {
    // Warm-up run then a measured run.
    run_transfer(v, link, 1 << 20);
    const auto out = run_transfer(v, link, 4 << 20);
    const double ns_per_segment =
        out.segments_sent > 0
            ? out.cpu_seconds * 1e9 / static_cast<double>(out.segments_sent)
            : 0;
    if (v == Variant::kMonolithic) mono_ns = ns_per_segment;
    std::printf("%-18s %10llu %12llu %11.0f ns %11.2fx %s\n", variant_name(v),
                (unsigned long long)out.segments_sent,
                (unsigned long long)out.events, ns_per_segment,
                mono_ns > 0 ? ns_per_segment / mono_ns : 1.0,
                out.complete ? "" : "(INCOMPLETE)");
  }
  std::puts(
      "\nshape vs paper: the sublayered stack costs a small constant factor "
      "over\nthe monolithic one per segment (narrow-interface crossings, no "
      "copies),\nand the shim adds one more header translation — consistent "
      "with the\npaper's position that sublayer crossings are as "
      "finessable as layer\ncrossings (Challenge 3, \"Tune\").");
}

}  // namespace

int main(int argc, char** argv) {
  macro_table();
  std::puts("");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
