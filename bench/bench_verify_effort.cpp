// Experiment E4 (paper §4.2): verification effort, monolithic vs
// sublayered.  The paper verified ONE property of a monolithic lwIP TCP in
// Dafny at the cost of 30 lemmas / ~3500 lines of annotation, and
// conjectures that "sublayering breaks up layer modules in principled,
// not ad hoc ways, and the state is segregated within sublayers ... once
// a sublayer is proved, we can forget the details".
//
// Operational analogue: model-check in-order exactly-once delivery with
// an initially-empty network (the same property, the same assumption),
// (a) on one flat monolithic model and (b) compositionally per sublayer.
// States explored and wall time stand in for annotation burden.
#include <chrono>
#include <cstdio>

#include "verify/models.hpp"

using namespace sublayer::verify;

namespace {

double run_timed(const Model& model, CheckResult& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = check(model);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::puts("E4: verification effort — monolithic vs compositional");
  std::puts(
      "property: in-order exactly-once delivery, network initially empty "
      "(paper §4.2)\n");
  std::printf("%4s %6s | %14s %9s | %8s %10s %8s %9s | %7s\n", "N", "W",
              "monolithic", "time", "cm", "rd", "osr", "sum", "ratio");

  for (const int n : {3, 4, 5, 6}) {
    for (const int w : {2, 3}) {
      EffortComparison cmp;
      CheckResult mono;
      const double mono_secs =
          run_timed(*make_monolithic_tcp_model({n, w, MonoBug::kNone}), mono);
      CheckResult cm;
      CheckResult rd;
      CheckResult osr;
      double sub_secs = run_timed(*make_cm_model({}), cm);
      sub_secs += run_timed(*make_rd_model({n, w, RdBug::kNone}), rd);
      sub_secs += run_timed(*make_osr_model({n, OsrBug::kNone}), osr);

      const std::uint64_t sum = cm.states_explored + rd.states_explored +
                                osr.states_explored;
      std::printf(
          "%4d %6d | %14llu %8.2fs | %8llu %10llu %8llu %9llu | %6.1fx\n", n,
          w, (unsigned long long)mono.states_explored, mono_secs,
          (unsigned long long)cm.states_explored,
          (unsigned long long)rd.states_explored,
          (unsigned long long)osr.states_explored, (unsigned long long)sum,
          static_cast<double>(mono.states_explored) /
              static_cast<double>(sum));
      if (!mono.ok || !cm.ok || !rd.ok || !osr.ok) {
        std::puts("  UNEXPECTED VIOLATION — models are broken");
        return 1;
      }
      (void)cmp;
      (void)sub_secs;
    }
  }

  std::puts("\nbug-detection check (each seeded bug must be caught):");
  struct BugRow {
    const char* label;
    CheckResult result;
  };
  BugRow rows[] = {
      {"monolithic: accept out-of-order",
       check(*make_monolithic_tcp_model({4, 2, MonoBug::kAcceptOutOfOrder}))},
      {"monolithic: ack beyond received",
       check(*make_monolithic_tcp_model({4, 2, MonoBug::kAckBeyondReceived}))},
      {"cm: missing ISN validation",
       check(*make_cm_model({CmBug::kNoIsnValidation}))},
      {"rd: duplicate delivery",
       check(*make_rd_model({4, 2, RdBug::kDeliverDuplicates}))},
      {"osr: release past hole",
       check(*make_osr_model({4, OsrBug::kReleasePastHole}))},
  };
  for (const auto& row : rows) {
    std::printf("  %-36s %s (depth %llu, %llu states to find)\n", row.label,
                row.result.ok ? "MISSED!" : "caught",
                (unsigned long long)row.result.violation_depth,
                (unsigned long long)row.result.states_explored);
  }

  std::puts(
      "\nshape vs paper: checking the flat monolithic model costs 1-2 "
      "orders of\nmagnitude more states than the sum of the three sublayer "
      "checks, and the\ngap widens with stream length — the state-space "
      "form of the paper's\n30-lemmas-for-one-property experience, and of "
      "its conjecture that\nsublayer contracts let you \"forget the details\" "
      "of what sits below.");
  return 0;
}
