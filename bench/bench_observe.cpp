// Observability overhead bench: what the export-grade telemetry layer
// costs when it is off (the product configuration), when it is counting,
// and when it is streaming to real export formats.
//
// Four measurements:
//   1. The bench_datalink_stack dataplane loop (same seed, frame count and
//      sizes) with the boundary taps compiled in: no hub installed, hub
//      installed but disabled, counting sink, and full pcapng capture.
//      The "no hub" row is directly comparable to BENCH_datalink.json;
//      the acceptance bar is <= 5% overhead with taps present but off.
//   2. FlightRecorder: raw record() cost, and the same dataplane loop with
//      a recorder installed (every span crossing becomes a ring write).
//   3. HDR histogram observe() cost.
//   4. A sharded parallel ring workload with and without a Chrome-trace
//      writer attached (epoch spans, counters, barrier profiling).
//
// --smoke additionally writes observe_smoke.pcapng and
// observe_smoke.trace.json for scripts/check.sh to validate structurally.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "datalink/stack.hpp"
#include "sim/parallel.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/frame_tap.hpp"
#include "telemetry/pcapng.hpp"

using namespace sublayer;
using namespace sublayer::datalink;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- 1. dataplane tap overhead ---------------------------------------------

/// The bench_datalink_stack CPU loop: nrz + crc32 + HDLC, down+up round
/// trip.  Returns wall-clock MB/s of round-tripped goodput.
double run_dataplane(int frames, std::size_t frame_bytes) {
  DataPlane plane(phy::make_nrz(), make_crc32(), StuffingRule::hdlc());
  Rng rng(5);
  std::vector<Bytes> payloads;
  payloads.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) {
    payloads.push_back(rng.next_bytes(frame_bytes));
  }
  std::size_t goodput = 0;
  const double t0 = now_seconds();
  for (const auto& p : payloads) {
    Bytes wire = plane.down(Bytes(p));
    const auto checked = plane.up(wire);
    if (!checked || *checked != p) {
      std::fputs("dataplane round-trip MISMATCH\n", stderr);
      std::exit(1);
    }
    goodput += checked->size();
  }
  const double secs = now_seconds() - t0;
  return static_cast<double>(goodput) / secs / 1e6;
}

/// Best of `reps` runs: the loop is short, so take the least-disturbed one.
template <typename F>
double best_of(int reps, F f) {
  double best = 0;
  for (int i = 0; i < reps; ++i) best = std::max(best, f());
  return best;
}

struct TapOverhead {
  double base_mbps = 0;       // taps compiled in, no hub (product config)
  double disabled_mbps = 0;   // hub installed, every point off
  double counting_mbps = 0;   // points on, no sink (count + bytes only)
  double pcap_mbps = 0;       // full pcapng capture
  std::uint64_t pcap_frames = 0;
  std::uint64_t pcap_bytes = 0;
};

TapOverhead measure_taps(int frames, int reps, telemetry::PcapngWriter* keep) {
  TapOverhead out;
  run_dataplane(frames, 261);  // warm-up: the first pass pays cold caches

  // The four configurations are interleaved round-robin so slow drift
  // (thermal, scheduler) hits them all equally; the best rep of each then
  // compares least-disturbed runs.  Two hubs: one counting-only, one
  // streaming to the pcapng writer.
  telemetry::TapHub counting_hub;
  counting_hub.enable_all();
  telemetry::TapHub disabled_hub;
  telemetry::TapHub pcap_hub;
  telemetry::PcapngWriter scratch;
  telemetry::PcapngWriter& writer = keep != nullptr ? *keep : scratch;
  telemetry::attach_pcap_sink(pcap_hub, writer);
  for (int i = 0; i < reps; ++i) {
    out.base_mbps = std::max(out.base_mbps, run_dataplane(frames, 261));

    telemetry::TapHub* prev = telemetry::TapHub::set_current(&disabled_hub);
    out.disabled_mbps = std::max(out.disabled_mbps, run_dataplane(frames, 261));

    telemetry::TapHub::set_current(&counting_hub);
    out.counting_mbps = std::max(out.counting_mbps, run_dataplane(frames, 261));

    telemetry::TapHub::set_current(&pcap_hub);
    writer.clear_packets();
    pcap_hub.reset_counters();
    out.pcap_mbps = std::max(out.pcap_mbps, run_dataplane(frames, 261));
    telemetry::TapHub::set_current(prev);
  }
  for (std::size_t p = 0; p < telemetry::kTapPointCount; ++p) {
    out.pcap_frames += pcap_hub.frames(static_cast<telemetry::TapPoint>(p));
    out.pcap_bytes += pcap_hub.bytes(static_cast<telemetry::TapPoint>(p));
  }
  return out;
}

// ---- 2. flight recorder -----------------------------------------------------

struct FlightCost {
  double record_ns = 0;        // raw ring write
  double plane_mbps = 0;       // dataplane loop with a recorder installed
};

FlightCost measure_flight(int frames, int reps) {
  FlightCost out;
  telemetry::FlightRecorder rec;
  constexpr int kOps = 2'000'000;
  const double t0 = now_seconds();
  for (int i = 0; i < kOps; ++i) {
    rec.record(telemetry::FlightType::kCrossing, "datalink.arq",
               TimePoint::from_ns(i), 256, 1, 0);
  }
  out.record_ns = (now_seconds() - t0) / kOps * 1e9;

  telemetry::FlightRecorder* prev = telemetry::FlightRecorder::set_current(&rec);
  out.plane_mbps = best_of(reps, [&] { return run_dataplane(frames, 261); });
  telemetry::FlightRecorder::set_current(prev);
  return out;
}

// ---- 3. HDR histogram -------------------------------------------------------

double measure_histogram_ns() {
  telemetry::MetricsRegistry::instance().reset();
  telemetry::Histogram h;
  h.bind("bench.observe.hist");
  constexpr int kOps = 4'000'000;
  // Mixed magnitudes: small sizes through multi-megabyte latencies.
  const double t0 = now_seconds();
  for (int i = 0; i < kOps; ++i) {
    h.observe(static_cast<std::uint64_t>(i) * 2654435761u % 50'000'000u);
  }
  return (now_seconds() - t0) / kOps * 1e9;
}

// ---- 4. parallel ring with Chrome profiling ---------------------------------

struct RingRun {
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::size_t chrome_events = 0;
  std::size_t flight_records = 0;
  telemetry::MetricsSnapshot metrics;
  std::string chrome_json;
};

RingRun run_ring(bool with_chrome, std::size_t flows, std::size_t per_flow) {
  constexpr std::size_t kRing = 4;
  sim::ParallelConfig pc;
  pc.shards = kRing;
  pc.threads = 2;
  sim::ParallelSimulator psim(pc);
  std::optional<telemetry::ChromeTraceWriter> chrome;
  if (with_chrome) {
    chrome.emplace(psim.chrome_lane_count());
    psim.attach_chrome_trace(&*chrome);
  }

  sim::ShardMap map(kRing);
  for (std::size_t i = 0; i < kRing; ++i) map.assign(i, i);
  netlayer::RouterConfig rc;
  rc.routing = netlayer::RoutingKind::kLinkState;
  rc.neighbor.dead_interval = Duration::seconds(3600.0);
  netlayer::Network net(psim, rc, /*seed=*/1, map);
  std::vector<netlayer::RouterId> routers;
  for (std::size_t i = 0; i < kRing; ++i) routers.push_back(net.add_router());
  sim::LinkConfig link;
  link.bandwidth_bps = 10e9;
  link.propagation_delay = Duration::micros(100);
  link.queue_limit = 4096;
  for (std::size_t i = 0; i < kRing; ++i) {
    net.connect(routers[i], routers[(i + 1) % kRing], link);
  }
  net.start();
  const double t0 = now_seconds();
  const auto warmup = TimePoint::from_ns(Duration::millis(500).ns());
  psim.run_until(warmup);

  transport::HostConfig hc;
  std::vector<std::unique_ptr<transport::TcpHost>> hosts;
  for (std::size_t i = 0; i < kRing; ++i) {
    sim::ParallelSimulator::ShardScope scope(psim, net.shard_of(routers[i]));
    hosts.push_back(std::make_unique<transport::TcpHost>(
        net.router(routers[i]), 1, hc));
    hosts.back()->listen(80, [](transport::Connection& c) {
      transport::Connection::AppCallbacks cb;
      cb.on_data = [](Bytes) {};
      c.set_app_callbacks(cb);
    });
  }
  Rng rng(7);
  const Bytes payload = rng.next_bytes(per_flow);
  for (std::size_t f = 0; f < flows; ++f) {
    transport::TcpHost* client = hosts[f % kRing].get();
    transport::TcpHost* server = hosts[(f % kRing + 2) % kRing].get();
    const auto at =
        warmup + Duration::micros(static_cast<std::int64_t>(10 * (f + 1)));
    psim.shard(net.shard_of(routers[f % kRing]))
        .schedule_at(at, [client, server, payload] {
          client->connect(server->addr(), 80).send(payload);
        });
  }
  psim.run_until(TimePoint::from_ns(Duration::seconds(2.0).ns()));

  RingRun out;
  out.wall_seconds = now_seconds() - t0;
  out.events = psim.events_processed();
  out.metrics = psim.merged_metrics();
  const auto flight = psim.merged_flight_records();
  out.flight_records = flight.size();
  if (with_chrome) {
    telemetry::export_flow_spans(flight, *chrome);
    out.chrome_events = chrome->event_count();
    out.chrome_json = chrome->to_json();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const int frames = smoke ? 50 : 2000;
  const int reps = smoke ? 1 : 5;

  bench::print_header("observability overhead");

  telemetry::PcapngWriter capture;
  const TapOverhead taps = measure_taps(frames, reps, &capture);
  const auto pct = [](double with, double base) {
    return base > 0 ? (base / with - 1.0) * 100.0 : 0.0;
  };
  std::printf(
      "dataplane loop (%d x 261 B frames, nrz+crc32+HDLC, taps compiled in)\n"
      "  %-28s %8.2f MB/s\n"
      "  %-28s %8.2f MB/s  (%+.1f%% vs no hub)\n"
      "  %-28s %8.2f MB/s  (%+.1f%% vs no hub)\n"
      "  %-28s %8.2f MB/s  (%+.1f%% vs no hub, %llu frames, %llu B captured)\n",
      frames, "no hub installed", taps.base_mbps, "hub installed, points off",
      taps.disabled_mbps, pct(taps.disabled_mbps, taps.base_mbps),
      "counting (no sink)", taps.counting_mbps,
      pct(taps.counting_mbps, taps.base_mbps), "pcapng capture",
      taps.pcap_mbps, pct(taps.pcap_mbps, taps.base_mbps),
      (unsigned long long)taps.pcap_frames, (unsigned long long)taps.pcap_bytes);

  const FlightCost flight = measure_flight(frames, reps);
  std::printf(
      "flight recorder\n"
      "  %-28s %8.1f ns/record\n"
      "  %-28s %8.2f MB/s  (%+.1f%% vs no recorder)\n",
      "ring write", flight.record_ns, "dataplane w/ recorder",
      flight.plane_mbps, pct(flight.plane_mbps, taps.base_mbps));

  const double hist_ns = measure_histogram_ns();
  std::printf("hdr histogram observe         %8.1f ns/op\n", hist_ns);

  const std::size_t flows = smoke ? 2 : 8;
  const std::size_t per_flow = smoke ? 2048 : 65536;
  const RingRun plain = run_ring(false, flows, per_flow);
  const RingRun traced = run_ring(true, flows, per_flow);
  std::printf(
      "parallel ring (4 shards, 2 threads, %zu flows x %zu B)\n"
      "  %-28s %8.3f s wall, %llu events\n"
      "  %-28s %8.3f s wall, %zu trace events, %zu flight records\n",
      flows, per_flow, "no chrome writer", plain.wall_seconds,
      (unsigned long long)plain.events, "chrome writer attached",
      traced.wall_seconds, traced.chrome_events, traced.flight_records);

  // The merged registry of the ring run — sim.trace.dropped included, so
  // the trace-eviction counter is visible in the machine-readable stream.
  std::printf("METRICS {\"label\":\"observe-ring\",\"metrics\":%s}\n",
              plain.metrics.to_json().c_str());

  if (smoke) {
    if (!capture.write_file("observe_smoke.pcapng")) {
      std::fputs("failed to write observe_smoke.pcapng\n", stderr);
      return 1;
    }
    std::FILE* f = std::fopen("observe_smoke.trace.json", "wb");
    if (f == nullptr) {
      std::fputs("failed to write observe_smoke.trace.json\n", stderr);
      return 1;
    }
    std::fwrite(traced.chrome_json.data(), 1, traced.chrome_json.size(), f);
    std::fclose(f);
    std::printf("smoke artifacts: observe_smoke.pcapng (%zu pkts), "
                "observe_smoke.trace.json (%zu events)\n",
                capture.packet_count(), traced.chrome_events);
  }

  std::printf(
      "BENCH_JSON {\"bench\":\"observe\",\"frames\":%d,"
      "\"dataplane_mbps\":{\"no_hub\":%.2f,\"hub_disabled\":%.2f,"
      "\"counting\":%.2f,\"pcap\":%.2f},"
      "\"tap_disabled_overhead_pct\":%.2f,"
      "\"flight\":{\"record_ns\":%.1f,\"dataplane_mbps\":%.2f,"
      "\"overhead_pct\":%.2f},"
      "\"hdr_observe_ns\":%.1f,"
      "\"ring\":{\"wall_s\":%.3f,\"traced_wall_s\":%.3f,\"events\":%llu,"
      "\"chrome_events\":%zu,\"flight_records\":%zu,"
      "\"trace_dropped\":%llu}}\n",
      frames, taps.base_mbps, taps.disabled_mbps, taps.counting_mbps,
      taps.pcap_mbps,
      taps.base_mbps > 0
          ? (taps.base_mbps / taps.disabled_mbps - 1.0) * 100.0
          : 0.0,
      flight.record_ns, flight.plane_mbps,
      taps.base_mbps > 0 ? (taps.base_mbps / flight.plane_mbps - 1.0) * 100.0
                         : 0.0,
      hist_ns, plain.wall_seconds, traced.wall_seconds,
      (unsigned long long)plain.events, traced.chrome_events,
      traced.flight_records,
      (unsigned long long)plain.metrics.counter("sim.trace.dropped"));
  return 0;
}
