// Experiment E3 (paper §4.1): the verified sublayered bit-stuffing
// implementation.  "Our proof had 57 lemmas and 1800 lines of code...
// The proof uses separate independent correctness lemmas for each
// sublayer which allows us to modularly reason about the distributed
// protocol."
//
// Regenerates the per-sublayer lemma ledger with our decision procedures:
// per-sublayer lemmas for the stuffing and flag sublayers, composed
// end-to-end theorem, counts of automaton states and exhaustive cases,
// and the verifier's verdicts on the subtly broken rules the paper warns
// about.
#include <cstdio>
#include <ctime>

#include "stuffverify/verifier.hpp"

using namespace sublayer;
using namespace sublayer::stuffverify;
using datalink::StuffingRule;

namespace {

void verify_and_report(const char* label, const StuffingRule& rule) {
  const auto t0 = std::clock();
  VerifyConfig config;
  config.exhaustive_max_bits = 16;  // deeper than the unit tests
  const auto result = verify_rule(rule, config);
  const double secs = static_cast<double>(std::clock() - t0) / CLOCKS_PER_SEC;

  std::printf("\n%s\n  rule: %s\n  verdict: %s  [%.2fs]\n", label,
              rule.name().c_str(), result.valid ? "VALID" : "INVALID", secs);
  std::printf("  lemma ledger (%zu lemmas, %llu automaton states, %llu cases):\n",
              result.lemmas.size(),
              (unsigned long long)result.automaton_states,
              (unsigned long long)result.cases_checked);
  for (const auto& lemma : result.lemmas) {
    std::printf("    [%-8s] %-36s %s%s%s\n", lemma.sublayer.c_str(),
                lemma.name.c_str(), lemma.passed ? "proved" : "FAILED",
                lemma.detail.empty() ? "" : "  -- ",
                lemma.detail.c_str());
  }
}

}  // namespace

int main() {
  std::puts("E3: verified bit stuffing — per-sublayer lemma structure");
  std::puts(
      "paper: 57 Coq lemmas / 1800 LoC with independent per-sublayer "
      "lemmas;\nours : a lemma ledger over two decision procedures (exact "
      "automaton\n       argument + bounded-exhaustive checking), same "
      "modular structure");

  verify_and_report("HDLC", StuffingRule::hdlc());
  verify_and_report("paper's low-overhead rule", StuffingRule::low_overhead());

  // The paper's failure subtleties:
  verify_and_report(
      "BROKEN: stuffed bit completes the flag "
      "(\"stuffed bit forms a flag with subsequent data bits\")",
      StuffingRule{BitString::parse("01111110"), BitString::parse("111111"),
                   false});
  verify_and_report(
      "BROKEN: trigger never fires on flag-shaped data "
      "(flag can appear verbatim in the body)",
      StuffingRule{BitString::parse("01111110"), BitString::parse("000"),
                   true});
  verify_and_report(
      "BROKEN: runaway self-triggering stuffing",
      StuffingRule{BitString::parse("11111111"), BitString::parse("111"),
                   true});

  std::puts(
      "\nshape vs paper: sublayering the proof works — the flag-sublayer "
      "lemma\n(F2) is independent of the stuffing round-trip lemmas (S3/S4) "
      "and is\nexactly the lemma that kills both broken rules; the paper's "
      "observation\nthat \"the correctness of stuffing depends on the flag\" "
      "shows up as F2\nbeing the only lemma that reads both sublayers' "
      "parameters.");
  return 0;
}
