// Shared harness for the experiment benchmarks: canned end-to-end
// transfers over the simulated network for each transport variant, with
// goodput measured from connect to last-byte-delivered (virtual time).
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "common/frame_arena.hpp"
#include "netlayer/router.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "transport/monolithic/mono_tcp.hpp"
#include "transport/sublayered/host.hpp"

// ---- optional global allocation tracking -----------------------------------
// Define SUBLAYER_BENCH_TRACK_ALLOCS before including this header (in the
// benchmark's one translation unit) to replace global operator new/delete
// with counting versions.  The counters are atomics: the parallel engine's
// worker threads allocate concurrently (frame buffers, mailboxes, wheel
// nodes), so plain counters would race and tear.  Relaxed ordering — the
// benches read them only between runs, on one thread.
#ifdef SUBLAYER_BENCH_TRACK_ALLOCS

#include <malloc.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace sublayer::bench::alloc_track {
inline std::atomic<std::size_t> live_bytes{0};   // via malloc_usable_size
inline std::atomic<std::size_t> total_bytes{0};  // requested, cumulative
inline std::atomic<std::size_t> count{0};
}  // namespace sublayer::bench::alloc_track

// noinline: once inlined into a new-expression, GCC pairs the visible
// malloc with the sized delete and raises a bogus -Wmismatched-new-delete.
__attribute__((noinline)) inline void* operator new(std::size_t n) {
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc();
  namespace at = sublayer::bench::alloc_track;
  at::live_bytes.fetch_add(malloc_usable_size(p), std::memory_order_relaxed);
  at::total_bytes.fetch_add(n, std::memory_order_relaxed);
  at::count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
__attribute__((noinline)) inline void operator delete(void* p) noexcept {
  if (p) {
    sublayer::bench::alloc_track::live_bytes.fetch_sub(
        malloc_usable_size(p), std::memory_order_relaxed);
  }
  std::free(p);
}
__attribute__((noinline)) inline void operator delete(void* p,
                                                      std::size_t) noexcept {
  if (p) {
    sublayer::bench::alloc_track::live_bytes.fetch_sub(
        malloc_usable_size(p), std::memory_order_relaxed);
  }
  std::free(p);
}

#endif  // SUBLAYER_BENCH_TRACK_ALLOCS

namespace sublayer::bench {

#ifdef SUBLAYER_BENCH_TRACK_ALLOCS
inline std::size_t live_alloc_bytes() {
  return alloc_track::live_bytes.load(std::memory_order_relaxed);
}
inline std::size_t total_alloc_bytes() {
  return alloc_track::total_bytes.load(std::memory_order_relaxed);
}
inline std::size_t alloc_count() {
  return alloc_track::count.load(std::memory_order_relaxed);
}
#endif

/// Split buffer accounting: operator-new tracking above counts every heap
/// allocation; FrameArenaCounters separates how many buffer *acquisitions*
/// the data path made and how many of those were served by recycled pool
/// buffers (no heap traffic) versus fresh ones.  Read as deltas around a
/// measured region, like the alloc counters.
struct ArenaCounterSample {
  std::uint64_t fresh = 0;     // acquisitions that built a new buffer
  std::uint64_t recycled = 0;  // acquisitions served from the pool
};

inline ArenaCounterSample arena_counter_sample() {
  const auto& c = FrameArenaCounters::instance();
  return ArenaCounterSample{c.fresh_total(), c.recycled_total()};
}

struct TransferOutcome {
  bool complete = false;
  double goodput_mbps = 0;      // virtual-time goodput
  double virtual_seconds = 0;   // connect -> last byte
  double cpu_seconds = 0;       // host wall-clock for the whole sim run
  std::uint64_t retransmissions = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t events = 0;
  /// Registry snapshot taken when the transfer finished: every sublayer's
  /// counters/gauges/histograms for THIS run (the registry is reset at the
  /// start of each run_transfer).
  telemetry::MetricsSnapshot metrics;
};

struct NetSetup {
  NetSetup(const sim::LinkConfig& link, std::uint64_t seed = 1)
      : net(sim, router_config(), seed) {
    r0 = net.add_router();
    r1 = net.add_router();
    net.connect(r0, r1, link);
    net.start();
    sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));
  }

  static netlayer::RouterConfig router_config() {
    netlayer::RouterConfig config;
    config.routing = netlayer::RoutingKind::kLinkState;
    // Data-plane impairments must not flap the control plane mid-run.
    config.neighbor.dead_interval = Duration::seconds(3600.0);
    return config;
  }

  sim::Simulator sim;
  netlayer::Network net;
  netlayer::RouterId r0 = 0;
  netlayer::RouterId r1 = 0;
};

enum class Variant { kSublayered, kSublayeredShim, kMonolithic };

inline const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kSublayered: return "sublayered";
    case Variant::kSublayeredShim: return "sublayered+shim";
    case Variant::kMonolithic: return "monolithic";
  }
  return "?";
}

/// One bulk transfer of `bytes` from r0's host to r1's host.
inline TransferOutcome run_transfer(Variant variant,
                                    const sim::LinkConfig& link,
                                    std::size_t bytes,
                                    const std::string& cc = "reno",
                                    std::uint64_t seed = 1,
                                    std::size_t event_budget = 30'000'000) {
  // Delimit this run in the process-wide telemetry: the outcome's snapshot
  // then covers exactly one transfer (NetSetup's warmup included).
  telemetry::MetricsRegistry::instance().reset();
  telemetry::SpanTracer::instance().reset();
  NetSetup net(link, seed);
  TransferOutcome out;

  std::size_t received = 0;
  const TimePoint start = net.sim.now();
  TimePoint finished = start;
  const auto on_bytes = [&](std::size_t n) {
    received += n;
    if (received == bytes) finished = net.sim.now();
  };

  Rng rng(seed + 7);
  const Bytes payload = rng.next_bytes(bytes);
  const auto wall_start = std::chrono::steady_clock::now();

  // Runs the simulation until the transfer completes (or the budget is
  // spent): idle periodic timers after completion must not pollute the
  // CPU-per-segment measurements.
  const auto drive = [&] {
    std::size_t processed = 0;
    while (processed < event_budget && received < bytes) {
      const std::size_t n = net.sim.run(
          std::min<std::size_t>(100'000, event_budget - processed));
      processed += n;
      if (n == 0) break;
    }
    return processed;
  };

  if (variant == Variant::kMonolithic) {
    transport::MonoConfig mc;
    transport::MonoHost client(net.sim, net.net.router(net.r0), 1, mc);
    transport::MonoHost server(net.sim, net.net.router(net.r1), 1, mc);
    server.listen(80, [&](transport::MonoConnection& conn) {
      transport::MonoConnection::AppCallbacks cb;
      cb.on_data = [&](Bytes data) { on_bytes(data.size()); };
      conn.set_app_callbacks(cb);
    });
    auto& conn = client.connect(server.addr(), 80);
    conn.send(payload);
    out.events = drive();
    out.retransmissions = conn.stats().retransmissions;
    out.segments_sent = conn.stats().segments_sent;
  } else {
    transport::HostConfig hc;
    hc.connection.osr.cc = cc;
    hc.wire_rfc793 = variant == Variant::kSublayeredShim;
    transport::TcpHost client(net.sim, net.net.router(net.r0), 1, hc);
    transport::TcpHost server(net.sim, net.net.router(net.r1), 1, hc);
    server.listen(80, [&](transport::Connection& conn) {
      transport::Connection::AppCallbacks cb;
      cb.on_data = [&](Bytes data) { on_bytes(data.size()); };
      conn.set_app_callbacks(cb);
    });
    auto& conn = client.connect(server.addr(), 80);
    conn.send(payload);
    out.events = drive();
    out.retransmissions = conn.rd().stats().fast_retransmits +
                          conn.rd().stats().timeout_retransmits;
    out.segments_sent = conn.rd().stats().segments_sent;
  }

  out.cpu_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  out.complete = received == bytes;
  out.virtual_seconds = (finished - start).to_seconds();
  if (out.complete && out.virtual_seconds > 0) {
    out.goodput_mbps =
        static_cast<double>(bytes) * 8.0 / out.virtual_seconds / 1e6;
  }
  out.metrics = telemetry::MetricsRegistry::instance().snapshot();
  return out;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Emits one machine-readable line: the run label plus the full registry
/// snapshot captured at the end of the transfer.
inline void print_metrics_json(const std::string& label,
                               const TransferOutcome& out) {
  std::printf("METRICS {\"label\":\"%s\",\"goodput_mbps\":%.3f,\"metrics\":%s}\n",
              label.c_str(), out.goodput_mbps, out.metrics.to_json().c_str());
}

}  // namespace sublayer::bench
