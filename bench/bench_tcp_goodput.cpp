// Experiment E7 (Challenge 3, "Tune"): end-to-end goodput parity between
// the sublayered TCP and the monolithic baseline, across loss and RTT
// sweeps on the same simulated network.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/harness.hpp"
#include "transport/wire/fused_segment.hpp"

using namespace sublayer;
using namespace sublayer::bench;

namespace {

sim::LinkConfig make_link(double loss, Duration propagation) {
  sim::LinkConfig link;
  link.bandwidth_bps = 50e6;
  link.propagation_delay = propagation;
  link.loss_rate = loss;
  link.queue_limit = 256;
  return link;
}

// Header-codec round trip (write + read of the DM/CM/RD/OSR chain, no
// payload) for one composer; returns ns per round trip.  The fused chain
// is the product path; the function-pointer chain pays one indirect call
// per sublayer crossing — their delta is the per-segment crossing cost
// the compile-time fusion removes (E5 micro, summarized here so E7's
// committed JSON carries the number).
template <class Chain>
double time_header_codec(const Chain& chain, int iters) {
  transport::SublayeredSegment s;
  s.dm = {43210, 80};
  s.cm.kind = transport::CmKind::kData;
  s.cm.isn_local = 0x12345678;
  s.cm.isn_peer = 0x9abcdef0;
  s.rd.seq_offset = 144000;
  s.rd.ack_offset = 96000;
  s.rd.sack = {{150000, 151200}};
  s.osr.recv_window = 1 << 20;

  Bytes out;
  out.reserve(64);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    out.clear();
    ByteWriter w(out);
    chain.write(s, w);
    ByteReader r(out);
    transport::SublayeredSegment parsed;
    if (!chain.read(r, parsed)) return -1;
    sink += parsed.rd.seq_offset + out.size();
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (sink == 0) std::fputs("", stderr);  // keep the loop observable
  return secs * 1e9 / iters;
}

// Adapter so the compile-time chain can share the timing loop with the
// function-pointer chain without giving the optimizer a new seam.
struct FusedChainAdapter {
  void write(const transport::SublayeredSegment& s,
             ByteWriter& w) const {
    transport::SublayeredHeaderChain::write(s, w);
  }
  bool read(ByteReader& r, transport::SublayeredSegment& s) const {
    return transport::SublayeredHeaderChain::read(r, s);
  }
};

}  // namespace

int main() {
  const std::size_t bytes = 2 << 20;
  std::string rows_json;
  const auto add_row = [&](const char* sweep, double x,
                           const TransferOutcome& sub,
                           const TransferOutcome& mono) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s{\"sweep\":\"%s\",\"x\":%g,\"sublayered_mbps\":%.2f,"
                  "\"monolithic_mbps\":%.2f,\"complete\":%s}",
                  rows_json.empty() ? "" : ",", sweep, x, sub.goodput_mbps,
                  mono.goodput_mbps,
                  sub.complete && mono.complete ? "true" : "false");
    rows_json += buf;
  };

  std::puts("E7.1: goodput vs loss rate (50 Mbps, 4 ms RTT, 2 MB transfer)");
  std::printf("%8s | %14s %14s %14s | %9s\n", "loss", "sublayered",
              "monolithic", "subl+shim", "sub/mono");
  for (const double loss : {0.0, 0.001, 0.01, 0.05}) {
    const auto link = make_link(loss, Duration::millis(2));
    const auto sub = run_transfer(Variant::kSublayered, link, bytes);
    const auto mono = run_transfer(Variant::kMonolithic, link, bytes);
    const auto shim = run_transfer(Variant::kSublayeredShim, link, bytes);
    std::printf("%7.2f%% | %9.2f Mbps %9.2f Mbps %9.2f Mbps | %8.2fx %s\n",
                loss * 100, sub.goodput_mbps, mono.goodput_mbps,
                shim.goodput_mbps,
                mono.goodput_mbps > 0 ? sub.goodput_mbps / mono.goodput_mbps
                                      : 0.0,
                sub.complete && mono.complete && shim.complete
                    ? ""
                    : "(INCOMPLETE)");
    add_row("loss", loss, sub, mono);
  }

  std::puts("\nE7.2: goodput vs RTT (50 Mbps, 1% loss, 2 MB transfer)");
  std::printf("%8s | %14s %14s | %9s\n", "RTT", "sublayered", "monolithic",
              "sub/mono");
  for (const int rtt_ms : {2, 10, 40, 100}) {
    const auto link = make_link(0.01, Duration::millis(rtt_ms / 2));
    const auto sub = run_transfer(Variant::kSublayered, link, bytes);
    const auto mono = run_transfer(Variant::kMonolithic, link, bytes);
    std::printf("%6d ms | %9.2f Mbps %9.2f Mbps | %8.2fx %s\n", rtt_ms,
                sub.goodput_mbps, mono.goodput_mbps,
                mono.goodput_mbps > 0 ? sub.goodput_mbps / mono.goodput_mbps
                                      : 0.0,
                sub.complete && mono.complete ? "" : "(INCOMPLETE)");
    add_row("rtt_ms", rtt_ms, sub, mono);
  }

  std::puts("\nE7.3: retransmission efficiency at 5% loss (SACK in RD)");
  {
    const auto link = make_link(0.05, Duration::millis(5));
    const auto sub = run_transfer(Variant::kSublayered, link, 1 << 20);
    const auto mono = run_transfer(Variant::kMonolithic, link, 1 << 20);
    std::printf("  sublayered: %llu retransmissions (%llu segments)\n",
                (unsigned long long)sub.retransmissions,
                (unsigned long long)sub.segments_sent);
    std::printf("  monolithic: %llu retransmissions (%llu segments)\n",
                (unsigned long long)mono.retransmissions,
                (unsigned long long)mono.segments_sent);
  }

  std::puts("\nE7.4: per-sublayer telemetry for one lossless transfer");
  {
    const auto link = make_link(0.0, Duration::millis(2));
    const auto sub = run_transfer(Variant::kSublayered, link, bytes);
    print_metrics_json("sublayered_lossless_2MB", sub);
  }

  std::puts("\nE7.5: header-codec sublayer-crossing cost (fused vs dynamic)");
  const int codec_iters = 200000;
  // Warm both paths once, then measure.
  time_header_codec(FusedChainAdapter{}, codec_iters / 10);
  time_header_codec(transport::DynamicHeaderChain::instance(),
                    codec_iters / 10);
  const double fused_ns = time_header_codec(FusedChainAdapter{}, codec_iters);
  const double dynamic_ns = time_header_codec(
      transport::DynamicHeaderChain::instance(), codec_iters);
  std::printf(
      "  fused chain %7.1f ns/segment, function-pointer chain %7.1f "
      "ns/segment\n  -> dynamic sublayer crossings cost %+.1f ns/segment "
      "(4 crossings)\n",
      fused_ns, dynamic_ns, dynamic_ns - fused_ns);

  std::puts(
      "\nshape vs paper: the sublayered implementation tracks (and at high "
      "loss\nbeats, thanks to SACK living cleanly inside RD) the monolithic "
      "baseline\nacross the sweep — performance is not the casualty the "
      "§3.1 objection\nfeared, matching the paper's position.");
  std::printf(
      "BENCH_JSON {\"bench\":\"tcp_goodput\",\"transfer_bytes\":%zu,"
      "\"header_codec\":{\"fused_ns\":%.1f,\"dynamic_ns\":%.1f,"
      "\"crossing_overhead_ns\":%.1f},\"rows\":[%s]}\n",
      bytes, fused_ns, dynamic_ns, dynamic_ns - fused_ns, rows_json.c_str());
  return 0;
}
