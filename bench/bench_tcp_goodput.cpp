// Experiment E7 (Challenge 3, "Tune"): end-to-end goodput parity between
// the sublayered TCP and the monolithic baseline, across loss and RTT
// sweeps on the same simulated network.
#include <cstdio>
#include <string>

#include "bench/harness.hpp"

using namespace sublayer;
using namespace sublayer::bench;

namespace {

sim::LinkConfig make_link(double loss, Duration propagation) {
  sim::LinkConfig link;
  link.bandwidth_bps = 50e6;
  link.propagation_delay = propagation;
  link.loss_rate = loss;
  link.queue_limit = 256;
  return link;
}

}  // namespace

int main() {
  const std::size_t bytes = 2 << 20;
  std::string rows_json;
  const auto add_row = [&](const char* sweep, double x,
                           const TransferOutcome& sub,
                           const TransferOutcome& mono) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s{\"sweep\":\"%s\",\"x\":%g,\"sublayered_mbps\":%.2f,"
                  "\"monolithic_mbps\":%.2f,\"complete\":%s}",
                  rows_json.empty() ? "" : ",", sweep, x, sub.goodput_mbps,
                  mono.goodput_mbps,
                  sub.complete && mono.complete ? "true" : "false");
    rows_json += buf;
  };

  std::puts("E7.1: goodput vs loss rate (50 Mbps, 4 ms RTT, 2 MB transfer)");
  std::printf("%8s | %14s %14s %14s | %9s\n", "loss", "sublayered",
              "monolithic", "subl+shim", "sub/mono");
  for (const double loss : {0.0, 0.001, 0.01, 0.05}) {
    const auto link = make_link(loss, Duration::millis(2));
    const auto sub = run_transfer(Variant::kSublayered, link, bytes);
    const auto mono = run_transfer(Variant::kMonolithic, link, bytes);
    const auto shim = run_transfer(Variant::kSublayeredShim, link, bytes);
    std::printf("%7.2f%% | %9.2f Mbps %9.2f Mbps %9.2f Mbps | %8.2fx %s\n",
                loss * 100, sub.goodput_mbps, mono.goodput_mbps,
                shim.goodput_mbps,
                mono.goodput_mbps > 0 ? sub.goodput_mbps / mono.goodput_mbps
                                      : 0.0,
                sub.complete && mono.complete && shim.complete
                    ? ""
                    : "(INCOMPLETE)");
    add_row("loss", loss, sub, mono);
  }

  std::puts("\nE7.2: goodput vs RTT (50 Mbps, 1% loss, 2 MB transfer)");
  std::printf("%8s | %14s %14s | %9s\n", "RTT", "sublayered", "monolithic",
              "sub/mono");
  for (const int rtt_ms : {2, 10, 40, 100}) {
    const auto link = make_link(0.01, Duration::millis(rtt_ms / 2));
    const auto sub = run_transfer(Variant::kSublayered, link, bytes);
    const auto mono = run_transfer(Variant::kMonolithic, link, bytes);
    std::printf("%6d ms | %9.2f Mbps %9.2f Mbps | %8.2fx %s\n", rtt_ms,
                sub.goodput_mbps, mono.goodput_mbps,
                mono.goodput_mbps > 0 ? sub.goodput_mbps / mono.goodput_mbps
                                      : 0.0,
                sub.complete && mono.complete ? "" : "(INCOMPLETE)");
    add_row("rtt_ms", rtt_ms, sub, mono);
  }

  std::puts("\nE7.3: retransmission efficiency at 5% loss (SACK in RD)");
  {
    const auto link = make_link(0.05, Duration::millis(5));
    const auto sub = run_transfer(Variant::kSublayered, link, 1 << 20);
    const auto mono = run_transfer(Variant::kMonolithic, link, 1 << 20);
    std::printf("  sublayered: %llu retransmissions (%llu segments)\n",
                (unsigned long long)sub.retransmissions,
                (unsigned long long)sub.segments_sent);
    std::printf("  monolithic: %llu retransmissions (%llu segments)\n",
                (unsigned long long)mono.retransmissions,
                (unsigned long long)mono.segments_sent);
  }

  std::puts("\nE7.4: per-sublayer telemetry for one lossless transfer");
  {
    const auto link = make_link(0.0, Duration::millis(2));
    const auto sub = run_transfer(Variant::kSublayered, link, bytes);
    print_metrics_json("sublayered_lossless_2MB", sub);
  }

  std::puts(
      "\nshape vs paper: the sublayered implementation tracks (and at high "
      "loss\nbeats, thanks to SACK living cleanly inside RD) the monolithic "
      "baseline\nacross the sweep — performance is not the casualty the "
      "§3.1 objection\nfeared, matching the paper's position.");
  std::printf(
      "BENCH_JSON {\"bench\":\"tcp_goodput\",\"transfer_bytes\":%zu,"
      "\"rows\":[%s]}\n",
      bytes, rows_json.c_str());
  return 0;
}
