#include "common/time.hpp"

#include <gtest/gtest.h>

namespace sublayer {
namespace {

TEST(Duration, Constructors) {
  EXPECT_EQ(Duration::nanos(5).ns(), 5);
  EXPECT_EQ(Duration::micros(2).ns(), 2000);
  EXPECT_EQ(Duration::millis(3).ns(), 3000000);
  EXPECT_EQ(Duration::seconds(1.5).ns(), 1500000000);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::millis(10);
  const Duration b = Duration::millis(4);
  EXPECT_EQ((a + b).ns(), Duration::millis(14).ns());
  EXPECT_EQ((a - b).ns(), Duration::millis(6).ns());
  EXPECT_EQ((a * 3).ns(), Duration::millis(30).ns());
  EXPECT_EQ((a * 0.5).ns(), Duration::millis(5).ns());
  EXPECT_EQ((a / 2).ns(), Duration::millis(5).ns());
}

TEST(Duration, Comparison) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::micros(1000), Duration::millis(1));
  EXPECT_TRUE(Duration().is_zero());
}

TEST(TimePoint, ArithmeticWithDuration) {
  const TimePoint t0 = TimePoint::from_ns(100);
  const TimePoint t1 = t0 + Duration::nanos(50);
  EXPECT_EQ(t1.ns(), 150);
  EXPECT_EQ((t1 - t0).ns(), 50);
  EXPECT_GT(t1, t0);
}

TEST(TimeToString, HumanReadable) {
  EXPECT_EQ(to_string(Duration::millis(1500)), "1.500s");
  EXPECT_EQ(to_string(Duration::millis(2)), "2.000ms");
  EXPECT_EQ(to_string(Duration::nanos(10)), "10ns");
}

}  // namespace
}  // namespace sublayer
