#include "common/frame_arena.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sublayer {
namespace {

TEST(FrameArena, AcquireArrivesEmptyWithRecycledCapacity) {
  FrameArena arena;
  Bytes b = arena.acquire_bytes();
  EXPECT_TRUE(b.empty());
  b.assign(500, 0x5a);
  const std::size_t cap = b.capacity();
  arena.recycle(std::move(b));
  ASSERT_EQ(arena.pooled_bytes_buffers(), 1u);

  Bytes again = arena.acquire_bytes();
  EXPECT_TRUE(again.empty());
  // The whole point of the pool: the retired buffer's capacity survives.
  EXPECT_GE(again.capacity(), cap);
  EXPECT_EQ(arena.pooled_bytes_buffers(), 0u);
}

TEST(FrameArena, BitStringRecycleDoesNotLeakOldBits) {
  FrameArena arena;
  Rng rng(3);
  BitString first = arena.acquire_bits();
  const BitString pattern = rng.next_bits(777);
  first.append(pattern);
  arena.recycle(std::move(first));

  // A recycled word store must behave exactly like a fresh BitString:
  // the "bits past size are zero" invariant holds, so appends and
  // comparisons see no trace of the previous life (hardened builds poison
  // the store on recycle to make violations loud).
  BitString reused = arena.acquire_bits();
  EXPECT_EQ(reused.size(), 0u);
  const BitString fresh_pattern = Rng(4).next_bits(777);
  reused.append(fresh_pattern);
  BitString fresh;
  fresh.append(fresh_pattern);
  EXPECT_EQ(reused, fresh);
}

TEST(FrameArena, CountersSplitFreshFromRecycled) {
  auto& c = FrameArenaCounters::instance();
  c.reset();
  FrameArena arena;
  std::vector<Bytes> held;
  for (int i = 0; i < 3; ++i) {
    Bytes b = arena.acquire_bytes();
    b.assign(64, 0x11);  // capacity > 0, so recycle pools it
    held.push_back(std::move(b));
  }
  EXPECT_EQ(c.bytes_fresh, 3u);
  EXPECT_EQ(c.bytes_recycled, 0u);
  for (auto& b : held) arena.recycle(std::move(b));
  held.clear();
  for (int i = 0; i < 3; ++i) held.push_back(arena.acquire_bytes());
  EXPECT_EQ(c.bytes_fresh, 3u);
  EXPECT_EQ(c.bytes_recycled, 3u);
  EXPECT_EQ(c.fresh_total(), 3u);
  EXPECT_EQ(c.recycled_total(), 3u);
  c.reset();
  EXPECT_EQ(c.fresh_total() + c.recycled_total(), 0u);
}

TEST(FrameArena, PoolCapBoundsRetention) {
  FrameArena arena(/*pool_cap=*/2);
  for (int i = 0; i < 5; ++i) {
    Bytes b;
    b.assign(32, 0x22);
    arena.recycle(std::move(b));
  }
  EXPECT_EQ(arena.pooled_bytes_buffers(), 2u);
  for (int i = 0; i < 5; ++i) arena.recycle(BitString::parse("1010"));
  EXPECT_EQ(arena.pooled_bit_buffers(), 2u);
}

TEST(FrameArena, ZeroCapacityBytesAreNotPooled) {
  FrameArena arena;
  arena.recycle(Bytes());  // nothing to reuse; pooling it would be a slot
  EXPECT_EQ(arena.pooled_bytes_buffers(), 0u);
}

}  // namespace
}  // namespace sublayer
