#include "common/siphash.hpp"

#include <gtest/gtest.h>

namespace sublayer {
namespace {

// Reference vector from the SipHash paper (Aumasson & Bernstein):
// key = 00 01 ... 0f, input = 00 01 ... 0e (15 bytes),
// output = a129ca6149be45e5.
TEST(SipHash, MatchesReferenceVector) {
  SipHashKey key{};
  // Key bytes 00..0f little-endian packed into two u64s.
  key[0] = 0x0706050403020100ull;
  key[1] = 0x0f0e0d0c0b0a0908ull;
  Bytes input;
  for (std::uint8_t i = 0; i < 15; ++i) input.push_back(i);
  EXPECT_EQ(siphash24(key, input), 0xa129ca6149be45e5ull);
}

TEST(SipHash, EmptyInputReferenceVector) {
  SipHashKey key{0x0706050403020100ull, 0x0f0e0d0c0b0a0908ull};
  // From the reference test vectors: output for empty input.
  EXPECT_EQ(siphash24(key, Bytes{}), 0x726fdb47dd0e0e31ull);
}

TEST(SipHash, KeySensitivity) {
  const Bytes msg = bytes_from_string("connection four-tuple");
  const std::uint64_t h1 = siphash24({1, 2}, msg);
  const std::uint64_t h2 = siphash24({1, 3}, msg);
  EXPECT_NE(h1, h2);
}

TEST(SipHash, MessageSensitivity) {
  const SipHashKey key{11, 22};
  EXPECT_NE(siphash24(key, bytes_from_string("10.0.0.1:80")),
            siphash24(key, bytes_from_string("10.0.0.1:81")));
}

TEST(SipHash, DeterministicAcrossCalls) {
  const SipHashKey key{5, 6};
  const Bytes msg = bytes_from_string("deterministic");
  EXPECT_EQ(siphash24(key, msg), siphash24(key, msg));
}

TEST(SipHash, AllBlockBoundaryLengths) {
  // Exercise the partial-block tail path for every length mod 8.
  const SipHashKey key{99, 100};
  Bytes msg;
  std::uint64_t prev = siphash24(key, msg);
  for (int len = 1; len <= 24; ++len) {
    msg.push_back(static_cast<std::uint8_t>(len));
    const std::uint64_t h = siphash24(key, msg);
    EXPECT_NE(h, prev);
    prev = h;
  }
}

}  // namespace
}  // namespace sublayer
