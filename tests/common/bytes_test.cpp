#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sublayer {
namespace {

TEST(ByteWriterReader, RoundTripsAllWidths) {
  Bytes buf;
  ByteWriter w(buf);
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.bytes(Bytes{1, 2, 3});

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.bytes(3), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteWriterReader, BigEndianOnTheWire) {
  Bytes buf;
  ByteWriter(buf).u16(0x0102);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(ByteReader, ThrowsOnUnderrun) {
  const Bytes buf{1, 2};
  ByteReader r(buf);
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(ByteReader, RestConsumesEverything) {
  const Bytes buf{9, 8, 7};
  ByteReader r(buf);
  r.u8();
  EXPECT_EQ(r.rest(), (Bytes{8, 7}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesStrings, RoundTrip) {
  const std::string s = "hello sublayer";
  EXPECT_EQ(string_from_bytes(bytes_from_string(s)), s);
}

TEST(BitString, ParseAndToString) {
  const BitString b = BitString::parse("0111 1110");
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b.to_string(), "01111110");
  EXPECT_THROW(BitString::parse("01x"), std::invalid_argument);
}

TEST(BitString, FromBytesMsbFirst) {
  const BitString b = BitString::from_bytes(Bytes{0x80, 0x01});
  EXPECT_EQ(b.to_string(), "1000000000000001");
}

TEST(BitString, FromUintWidth) {
  EXPECT_EQ(BitString::from_uint(0b101, 3).to_string(), "101");
  EXPECT_EQ(BitString::from_uint(1, 4).to_string(), "0001");
  EXPECT_EQ(BitString::from_uint(0, 0).size(), 0u);
}

TEST(BitString, ToBytesInverseOfFromBytes) {
  const Bytes original{0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(BitString::from_bytes(original).to_bytes(), original);
}

TEST(BitString, ToBytesRejectsUnaligned) {
  BitString b = BitString::parse("1010101");
  EXPECT_THROW(b.to_bytes(), std::logic_error);
}

TEST(BitString, SliceAndAppend) {
  BitString b = BitString::parse("110010");
  EXPECT_EQ(b.slice(1, 3).to_string(), "100");
  BitString c = BitString::parse("01");
  b.append(c);
  EXPECT_EQ(b.to_string(), "11001001");
  EXPECT_THROW(b.slice(5, 9), std::out_of_range);
}

TEST(BitString, FindAndCount) {
  const BitString hay = BitString::parse("0110110");
  const BitString needle = BitString::parse("11");
  EXPECT_EQ(hay.find(needle), 1u);
  EXPECT_EQ(hay.find(needle, 2), 4u);
  EXPECT_EQ(hay.find(BitString::parse("111")), BitString::npos);
  EXPECT_EQ(hay.count_overlapping(needle), 2u);
  EXPECT_EQ(BitString::parse("1111").count_overlapping(needle), 3u);
}

TEST(BitString, ToUint) {
  EXPECT_EQ(BitString::parse("101").to_uint(), 0b101u);
  EXPECT_EQ(BitString::parse("").to_uint(), 0u);
}

TEST(BitString, MatchesAtBoundary) {
  const BitString hay = BitString::parse("1010");
  EXPECT_TRUE(hay.matches_at(2, BitString::parse("10")));
  EXPECT_FALSE(hay.matches_at(3, BitString::parse("10")));
}

TEST(HexDump, FormatsBytes) {
  EXPECT_EQ(hex_dump(Bytes{0x00, 0xff}), "00 ff");
}

}  // namespace
}  // namespace sublayer
