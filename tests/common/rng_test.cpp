#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sublayer {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  bool seen[5] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.next_below(5)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, BitsAndBytesLengths) {
  Rng rng(19);
  EXPECT_EQ(rng.next_bits(13).size(), 13u);
  EXPECT_EQ(rng.next_bytes(7).size(), 7u);
}

TEST(Rng, RandomBitsAreRoughlyBalanced) {
  Rng rng(23);
  const BitString bits = rng.next_bits(100000);
  std::size_t ones = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) ones += bits[i] ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / 100000.0, 0.5, 0.01);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng a(31);
  Rng fork = a.fork();
  // Forked stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == fork.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace sublayer
