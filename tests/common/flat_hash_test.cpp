// Unit tests for the open-addressing FlatHashMap behind the demux and
// host connection tables.
#include "common/flat_hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>

namespace sublayer {
namespace {

using Map = FlatHashMap<std::uint64_t, std::string, IntHash>;

TEST(FlatHash, EmptyMapFindsNothing) {
  Map m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_FALSE(m.contains(7));
  EXPECT_FALSE(m.erase(7));
}

TEST(FlatHash, InsertFindErase) {
  Map m;
  auto [v, inserted] = m.try_emplace(1, "one");
  ASSERT_TRUE(inserted);
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(m.size(), 1u);
  // Existing key: value untouched, inserted == false.
  auto [v2, again] = m.try_emplace(1, "uno");
  EXPECT_FALSE(again);
  EXPECT_EQ(*v2, "one");
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), "one");
  EXPECT_TRUE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 0u);
}

TEST(FlatHash, GrowthKeepsEveryEntry) {
  Map m;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    m.try_emplace(k, std::to_string(k));
  }
  EXPECT_EQ(m.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), std::to_string(k));
  }
  EXPECT_EQ(m.find(1000), nullptr);
}

TEST(FlatHash, TombstoneChurnDoesNotGrowUnbounded) {
  // Insert/erase the same small working set far more times than any
  // capacity: tombstone recycling and same-size rehash must keep lookups
  // working with a bounded table.
  Map m;
  for (int round = 0; round < 10000; ++round) {
    const std::uint64_t k = static_cast<std::uint64_t>(round);
    m.try_emplace(k, "x");
    ASSERT_TRUE(m.contains(k));
    ASSERT_TRUE(m.erase(k));
  }
  EXPECT_EQ(m.size(), 0u);
  m.try_emplace(42, "answer");
  EXPECT_EQ(*m.find(42), "answer");
}

TEST(FlatHash, MoveOnlyValues) {
  FlatHashMap<std::uint64_t, std::unique_ptr<int>, IntHash> m;
  for (std::uint64_t k = 0; k < 100; ++k) {
    m.try_emplace(k, std::make_unique<int>(static_cast<int>(k)));
  }
  for (std::uint64_t k = 0; k < 100; ++k) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(**m.find(k), static_cast<int>(k));
  }
  // erase() must release the owned object immediately (value reset), not
  // merely tombstone the slot.
  EXPECT_TRUE(m.erase(3));
  EXPECT_EQ(m.find(3), nullptr);
}

TEST(FlatHash, ForEachVisitsExactlyLiveEntries) {
  Map m;
  for (std::uint64_t k = 0; k < 50; ++k) m.try_emplace(k, "v");
  for (std::uint64_t k = 0; k < 50; k += 2) m.erase(k);
  std::set<std::uint64_t> seen;
  m.for_each([&](const std::uint64_t& k, std::string&) { seen.insert(k); });
  EXPECT_EQ(seen.size(), 25u);
  for (const auto k : seen) EXPECT_EQ(k % 2, 1u) << k;
}

TEST(FlatHash, ClearResets) {
  Map m;
  for (std::uint64_t k = 0; k < 20; ++k) m.try_emplace(k, "v");
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), nullptr);
  m.try_emplace(1, "back");
  EXPECT_EQ(*m.find(1), "back");
}

TEST(FlatHash, TryEmplaceOnExistingKeyKeepsPointersStable) {
  // Fill to one insertion below the growth threshold (capacity 16 grows
  // once full+tombstone load reaches 3/4): a try_emplace that FINDS its
  // key inserts nothing, so it must not rehash and previously returned
  // pointers must stay valid.
  Map m;
  for (std::uint64_t k = 0; k < 11; ++k) m.try_emplace(k, "v");
  std::string* const p = m.find(5);
  ASSERT_NE(p, nullptr);
  const auto [same, inserted] = m.try_emplace(5, "ignored");
  EXPECT_FALSE(inserted);
  EXPECT_EQ(same, p);
  EXPECT_EQ(m.find(5), p);
  EXPECT_EQ(*p, "v");
  // The 12th distinct key is a real insertion and may rehash freely.
  m.try_emplace(99, "new");
  EXPECT_EQ(*m.find(5), "v");
}

// Adversarial probe-chain shape: keys that all hash into one cluster
// (IntHash is fixed, so craft collisions by brute force) must still
// resolve through linear probing, including across an erase in the middle
// of the chain.
TEST(FlatHash, CollidingKeysProbeThroughTombstones) {
  // Find 8 keys whose hash shares the low 4 bits (kMinCapacity = 16).
  std::vector<std::uint64_t> cluster;
  const std::size_t want = IntHash{}(0) & 15u;
  for (std::uint64_t k = 0; cluster.size() < 8; ++k) {
    if ((IntHash{}(k) & 15u) == want) cluster.push_back(k);
  }
  Map m;
  for (const auto k : cluster) m.try_emplace(k, std::to_string(k));
  // Erase one from the middle of the probe chain; the rest must remain
  // reachable through its tombstone.
  m.erase(cluster[3]);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (i == 3) {
      EXPECT_EQ(m.find(cluster[i]), nullptr);
    } else {
      ASSERT_NE(m.find(cluster[i]), nullptr) << i;
    }
  }
  // Reinsertion reuses the tombstone slot rather than lengthening chains.
  m.try_emplace(cluster[3], "back");
  EXPECT_EQ(*m.find(cluster[3]), "back");
}

}  // namespace
}  // namespace sublayer
