// Pins the word-wise BitString bulk operations (shift-and-compare find /
// count_overlapping, packed to_bytes/from_bytes/from_uint) against naive
// per-bit reference implementations on randomized inputs, with patterns
// deliberately straddling 64-bit word boundaries.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace sublayer {
namespace {

BitString random_bits(Rng& rng, std::size_t n) {
  BitString out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.next_below(2) != 0);
  return out;
}

bool naive_matches_at(const BitString& hay, std::size_t pos,
                      const BitString& pat) {
  if (pos + pat.size() > hay.size()) return false;
  for (std::size_t i = 0; i < pat.size(); ++i) {
    if (hay[pos + i] != pat[i]) return false;
  }
  return true;
}

std::size_t naive_find(const BitString& hay, const BitString& pat,
                       std::size_t from) {
  if (pat.size() > hay.size()) return BitString::npos;
  for (std::size_t pos = from; pos + pat.size() <= hay.size(); ++pos) {
    if (naive_matches_at(hay, pos, pat)) return pos;
  }
  return BitString::npos;
}

std::size_t naive_count(const BitString& hay, const BitString& pat) {
  std::size_t count = 0;
  for (std::size_t pos = 0; pos + pat.size() <= hay.size(); ++pos) {
    if (naive_matches_at(hay, pos, pat)) ++count;
  }
  return count;
}

TEST(BitStringWordOps, FindAndCountMatchNaiveOnRandomInputs) {
  Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    // Haystack sizes around word boundaries; pattern lengths 1..63.
    const std::size_t hay_len = 1 + rng.next_below(300);
    const std::size_t pat_len =
        1 + rng.next_below(std::min<std::size_t>(63, hay_len));
    const BitString hay = random_bits(rng, hay_len);
    // Half the time take the pattern out of the haystack itself, so
    // occurrences (including word-straddling ones) are guaranteed.
    const BitString pat =
        round % 2 == 0
            ? random_bits(rng, pat_len)
            : hay.slice(rng.next_below(hay_len - pat_len + 1), pat_len);

    EXPECT_EQ(hay.find(pat), naive_find(hay, pat, 0));
    const std::size_t from = rng.next_below(hay_len);
    EXPECT_EQ(hay.find(pat, from), naive_find(hay, pat, from));
    EXPECT_EQ(hay.count_overlapping(pat), naive_count(hay, pat));
    for (int probe = 0; probe < 8; ++probe) {
      const std::size_t pos = rng.next_below(hay_len);
      EXPECT_EQ(hay.matches_at(pos, pat), naive_matches_at(hay, pos, pat));
    }
  }
}

TEST(BitStringWordOps, WordStraddlingPatternsAllLengths) {
  // One deterministic haystack; for every pattern length 1..63, slice a
  // pattern that straddles the word 0 / word 1 boundary and check the
  // word-wise scan finds that exact occurrence.
  Rng rng(7);
  const BitString hay = random_bits(rng, 256);
  for (std::size_t len = 1; len <= 63; ++len) {
    const std::size_t pos = 64 - len / 2 - 1;  // straddles bit 64
    const BitString pat = hay.slice(pos, len);
    EXPECT_TRUE(hay.matches_at(pos, pat)) << "len=" << len;
    EXPECT_EQ(hay.find(pat), naive_find(hay, pat, 0)) << "len=" << len;
    EXPECT_EQ(hay.count_overlapping(pat), naive_count(hay, pat))
        << "len=" << len;
  }
}

TEST(BitStringWordOps, PackedBytesAgreeWithPerBitPacking) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    const std::size_t nbytes = 1 + rng.next_below(40);
    const Bytes raw = rng.next_bytes(nbytes);
    const BitString bits = BitString::from_bytes(raw);
    ASSERT_EQ(bits.size(), 8 * nbytes);
    // Per-bit reference: MSB-first within each byte.
    for (std::size_t i = 0; i < bits.size(); ++i) {
      EXPECT_EQ(bits[i], ((raw[i / 8] >> (7 - i % 8)) & 1) != 0);
    }
    EXPECT_EQ(bits.to_bytes(), raw);
    Bytes copied;
    bits.copy_bytes_into(copied);
    EXPECT_EQ(copied, raw);
  }
}

TEST(BitStringWordOps, FromUintAgreesWithPushBack) {
  Rng rng(123);
  for (int width = 0; width <= 64; ++width) {
    const std::uint64_t v =
        width == 64 ? rng.next_u64() : rng.next_u64() & ((1ull << width) - 1);
    const BitString bulk = BitString::from_uint(v, width);
    BitString perbit;
    for (int i = width - 1; i >= 0; --i) perbit.push_back((v >> i) & 1);
    EXPECT_EQ(bulk, perbit) << "width=" << width;
    if (width > 0) {
      EXPECT_EQ(bulk.to_uint(), v) << "width=" << width;
    }
    // append_word must behave identically at unaligned starting offsets.
    BitString offset_bulk;
    offset_bulk.push_back(true);
    offset_bulk.append_word(v, width);
    BitString offset_perbit;
    offset_perbit.push_back(true);
    offset_perbit.append(perbit);
    EXPECT_EQ(offset_bulk, offset_perbit) << "width=" << width;
  }
}

}  // namespace
}  // namespace sublayer
