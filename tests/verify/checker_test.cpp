#include "verify/checker.hpp"

#include <gtest/gtest.h>

#include "verify/models.hpp"

namespace sublayer::verify {
namespace {

/// A trivial counter model for checker mechanics: states 0..9, bad at 7
/// (optional), goal at 9.
class CounterModel final : public Model {
 public:
  explicit CounterModel(bool with_bad) : with_bad_(with_bad) {}
  std::string name() const override { return "counter"; }
  Bytes initial_state() const override { return Bytes{0}; }
  std::vector<Bytes> successors(const Bytes& s) const override {
    if (s[0] >= 9) return {};
    return {Bytes{static_cast<std::uint8_t>(s[0] + 1)}};
  }
  std::optional<std::string> violation(const Bytes& s) const override {
    if (with_bad_ && s[0] == 7) return "reached seven";
    return std::nullopt;
  }
  bool is_goal(const Bytes& s) const override { return s[0] == 9; }

 private:
  bool with_bad_;
};

TEST(Checker, ExploresToCompletion) {
  const auto result = check(CounterModel(false));
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.goal_reached);
  EXPECT_EQ(result.states_explored, 10u);
  EXPECT_EQ(result.transitions, 9u);
}

TEST(Checker, FindsViolationAtCorrectDepth) {
  const auto result = check(CounterModel(true));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.violation_depth, 7u);
  EXPECT_EQ(*result.violation, "reached seven");
}

TEST(Checker, RespectsStateBudget) {
  CheckOptions opts;
  opts.max_states = 3;
  const auto result = check(CounterModel(false), opts);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.states_explored, 3u);
}

// ---- Monolithic TCP model ---------------------------------------------------

TEST(MonoModel, CorrectVersionIsSafeAndReachesGoal) {
  const auto result = check(*make_monolithic_tcp_model({3, 2, MonoBug::kNone}));
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.goal_reached);
  EXPECT_GT(result.states_explored, 1000u);
}

TEST(MonoModel, OutOfOrderBugIsCaught) {
  const auto result =
      check(*make_monolithic_tcp_model({3, 2, MonoBug::kAcceptOutOfOrder}));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation->find("gap"), std::string::npos);
}

TEST(MonoModel, AckBeyondBugIsCaught) {
  const auto result =
      check(*make_monolithic_tcp_model({3, 2, MonoBug::kAckBeyondReceived}));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation->find("unreceived"), std::string::npos);
}

TEST(MonoModel, StateSpaceGrowsWithSegments) {
  const auto small = check(*make_monolithic_tcp_model({3, 2, MonoBug::kNone}));
  const auto large = check(*make_monolithic_tcp_model({5, 2, MonoBug::kNone}));
  EXPECT_GT(large.states_explored, 4 * small.states_explored);
}

TEST(MonoModel, RejectsAbsurdParameters) {
  EXPECT_THROW(make_monolithic_tcp_model({0, 2, MonoBug::kNone}),
               std::invalid_argument);
  EXPECT_THROW(make_monolithic_tcp_model({99, 2, MonoBug::kNone}),
               std::invalid_argument);
}

// ---- Compositional models ---------------------------------------------------

TEST(CmModel, ValidationPreventsIncarnationConfusion) {
  const auto result = check(*make_cm_model({CmBug::kNone}));
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.goal_reached);
}

TEST(CmModel, MissingValidationIsCaught) {
  const auto result = check(*make_cm_model({CmBug::kNoIsnValidation}));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation->find("incarnation"), std::string::npos);
}

TEST(RdModel, ExactlyOnceHolds) {
  const auto result = check(*make_rd_model({4, 2, RdBug::kNone}));
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.goal_reached);
}

TEST(RdModel, DuplicateDeliveryBugIsCaught) {
  const auto result = check(*make_rd_model({4, 2, RdBug::kDeliverDuplicates}));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation->find("twice"), std::string::npos);
}

TEST(OsrModel, ReassemblyIsOrdered) {
  const auto result = check(*make_osr_model({6, OsrBug::kNone}));
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.goal_reached);
  // The OSR space is exactly the lattice of arrival subsets.
  EXPECT_EQ(result.states_explored, 64u);
}

TEST(OsrModel, HoleReleaseBugIsCaught) {
  const auto result = check(*make_osr_model({4, OsrBug::kReleasePastHole}));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation->find("hole"), std::string::npos);
}

// ---- The paper's effort claim (E4) ------------------------------------------

class EffortAtSize : public ::testing::TestWithParam<int> {};

TEST_P(EffortAtSize, CompositionalCheckingIsMuchCheaper) {
  const int n = GetParam();
  const auto cmp = compare_verification_effort(n, 2);
  ASSERT_TRUE(cmp.monolithic.ok && cmp.monolithic.complete);
  ASSERT_TRUE(cmp.cm.ok && cmp.rd.ok && cmp.osr.ok);
  EXPECT_TRUE(cmp.monolithic.goal_reached);
  EXPECT_TRUE(cmp.rd.goal_reached);
  // The monolithic product dwarfs the compositional sum.
  EXPECT_GT(cmp.monolithic.states_explored, 10 * cmp.compositional_states())
      << "mono=" << cmp.monolithic.states_explored
      << " sum=" << cmp.compositional_states();
}

INSTANTIATE_TEST_SUITE_P(Sizes, EffortAtSize, ::testing::Values(3, 4, 5),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Effort, GapWidensWithStreamLength) {
  const auto small = compare_verification_effort(3, 2);
  const auto large = compare_verification_effort(5, 2);
  const double ratio_small =
      static_cast<double>(small.monolithic.states_explored) /
      static_cast<double>(small.compositional_states());
  const double ratio_large =
      static_cast<double>(large.monolithic.states_explored) /
      static_cast<double>(large.compositional_states());
  EXPECT_GE(ratio_large, ratio_small * 0.9);
  EXPECT_GT(large.monolithic.states_explored,
            10 * small.monolithic.states_explored);
}

}  // namespace
}  // namespace sublayer::verify
