#include "phy/linecode.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sublayer::phy {
namespace {

// ---- Parameterized sublayer-contract sweep: decode ∘ encode = id ----------

struct CodecCase {
  const char* name;
  std::unique_ptr<LineCode> (*make)();
};

class LineCodeRoundTrip : public ::testing::TestWithParam<CodecCase> {};

TEST_P(LineCodeRoundTrip, RoundTripsAlignedRandomData) {
  const auto code = GetParam().make();
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t align = code->input_alignment_bits();
    const std::size_t len = align * (1 + rng.next_below(64));
    const BitString data = rng.next_bits(len);
    const BitString symbols = code->encode(data);
    EXPECT_NEAR(static_cast<double>(symbols.size()),
                static_cast<double>(len) * code->symbols_per_bit(), 1e-9);
    const auto back = code->decode(symbols);
    ASSERT_TRUE(back.has_value()) << code->name() << " trial " << trial;
    EXPECT_EQ(*back, data);
  }
}

TEST_P(LineCodeRoundTrip, EmptyInputEncodesEmpty) {
  const auto code = GetParam().make();
  const BitString empty;
  EXPECT_EQ(code->encode(empty).size(), 0u);
  const auto back = code->decode(empty);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, LineCodeRoundTrip,
    ::testing::Values(CodecCase{"nrz", make_nrz}, CodecCase{"nrzi", make_nrzi},
                      CodecCase{"manchester", make_manchester},
                      CodecCase{"fourbfiveb", make_4b5b}),
    [](const auto& info) { return info.param.name; });

// ---- Code-specific behaviour ------------------------------------------------

TEST(Nrzi, TransitionEncodesOne) {
  const auto code = make_nrzi();
  // 1 1 0 1: toggles at bits 0,1,3 from initial level 0 -> 1,0,0,1
  EXPECT_EQ(code->encode(BitString::parse("1101")).to_string(), "1001");
}

TEST(Manchester, KnownWaveform) {
  const auto code = make_manchester();
  EXPECT_EQ(code->encode(BitString::parse("10")).to_string(), "1001");
}

TEST(Manchester, RejectsInvalidMidBit) {
  const auto code = make_manchester();
  EXPECT_FALSE(code->decode(BitString::parse("11")).has_value());
  EXPECT_FALSE(code->decode(BitString::parse("100")).has_value());
}

TEST(FourBFiveB, RejectsNonDataSymbol) {
  const auto code = make_4b5b();
  // 00000 is not a 4B/5B data symbol.
  EXPECT_FALSE(code->decode(BitString::parse("00000")).has_value());
}

TEST(FourBFiveB, RejectsUnalignedInput) {
  const auto code = make_4b5b();
  EXPECT_THROW(code->encode(BitString::parse("101")), std::invalid_argument);
  EXPECT_FALSE(code->decode(BitString::parse("1010")).has_value());
}

TEST(FourBFiveB, NoLongZeroRuns) {
  // The whole point of 4B/5B: bounded run length for clock recovery.
  const auto code = make_4b5b();
  Rng rng(7);
  const BitString data = rng.next_bits(4 * 256);
  const BitString symbols = code->encode(data);
  int zero_run = 0;
  int max_run = 0;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    zero_run = symbols[i] ? 0 : zero_run + 1;
    max_run = std::max(max_run, zero_run);
  }
  EXPECT_LE(max_run, 3);
}

TEST(Manchester, SingleBitFlipIsDetectedOrRoundTrips) {
  // Manchester decode either fails (invalid mid-bit) or yields wrong data;
  // a flip never crashes. Detectability of the flip itself is the error-
  // detection sublayer's job.
  const auto code = make_manchester();
  Rng rng(11);
  const BitString data = rng.next_bits(64);
  BitString symbols = code->encode(data);
  BitString corrupted;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    corrupted.push_back(i == 10 ? !symbols[i] : symbols[i]);
  }
  const auto back = code->decode(corrupted);
  if (back) {
    EXPECT_NE(*back, data);
  }
}

}  // namespace
}  // namespace sublayer::phy
