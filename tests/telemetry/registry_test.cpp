// Unit tests for the telemetry substrate: counter/gauge/histogram
// semantics, name interning, snapshot determinism, and the span tracer's
// exact totals across ring wrap.
#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sublayer::telemetry {
namespace {

TEST(Counter, UnboundCountsLocally) {
  Counter c;
  ++c;
  c++;
  c += 3;
  c.add(5);
  EXPECT_EQ(c.value(), 10u);
  // Implicit conversion keeps legacy stats reads compiling.
  const std::uint64_t v = c;
  EXPECT_EQ(v, 10u);
}

TEST(Counter, BoundAggregatesAcrossInstances) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Counter a;
  Counter b;
  a.bind("test.counter.shared");
  b.bind("test.counter.shared");
  a += 2;
  b += 3;
  // Each instance sees only its own increments...
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(b.value(), 3u);
  // ...while the registry sees the sum under the one interned name.
  EXPECT_EQ(reg.counter_value("test.counter.shared"), 5u);
}

TEST(Counter, ComparisonsAreValueBased) {
  Counter a;
  Counter b;
  a += 4;
  b += 4;
  EXPECT_EQ(a, b);
  ++b;
  EXPECT_LT(a, b);
  EXPECT_GT(b.value(), 4u);
  std::ostringstream os;
  os << b;
  EXPECT_EQ(os.str(), "5");
}

TEST(Gauge, SetForwardsDeltaSoGlobalIsSumOfInstances) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Gauge a;
  Gauge b;
  a.bind("test.gauge.depth");
  b.bind("test.gauge.depth");
  a.set(10);
  b.set(7);
  EXPECT_EQ(reg.gauge_value("test.gauge.depth"), 17);
  a.set(4);  // shrink: global must follow the delta, not the raw value
  EXPECT_EQ(reg.gauge_value("test.gauge.depth"), 11);
  b.add(-7);
  EXPECT_EQ(reg.gauge_value("test.gauge.depth"), 4);
  EXPECT_EQ(a.value(), 4);
  EXPECT_EQ(b.value(), 0);
}

TEST(Gauge, SetMaxIsARatchet) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Gauge g;
  g.bind("test.gauge.peak");
  g.set_max(5);
  g.set_max(3);  // below the high-water mark: no effect
  EXPECT_EQ(g.value(), 5);
  g.set_max(9);
  EXPECT_EQ(g.value(), 9);
  EXPECT_EQ(reg.gauge_value("test.gauge.peak"), 9);
}

TEST(Histogram, HdrBucketsAndMoments) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Histogram h;
  h.bind("test.hist.sizes");
  // Values below 2^4 are exact: one bucket per integer.
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(1024);  // exponent 10, sub-bucket 0 -> (10-3)*16 + 0 = 112
  const auto snap = reg.snapshot();
  const HistogramData* data = snap.histogram("test.hist.sizes");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->count, 5u);
  EXPECT_EQ(data->sum, 1030u);
  EXPECT_EQ(data->min, 0u);
  EXPECT_EQ(data->max, 1024u);
  EXPECT_EQ(data->buckets[0], 1u);
  EXPECT_EQ(data->buckets[1], 1u);
  EXPECT_EQ(data->buckets[2], 1u);
  EXPECT_EQ(data->buckets[3], 1u);
  EXPECT_EQ(data->buckets[112], 1u);
}

TEST(Registry, InterningIsIdempotent) {
  auto& reg = MetricsRegistry::instance();
  const MetricId a = reg.intern_counter("test.intern.once");
  const MetricId b = reg.intern_counter("test.intern.once");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.counter_slot(a), reg.counter_slot(b));
}

TEST(Registry, ResetZeroesValuesButKeepsBoundSlots) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Counter c;
  c.bind("test.reset.survivor");
  c += 7;
  EXPECT_EQ(reg.counter_value("test.reset.survivor"), 7u);
  reg.reset();
  EXPECT_EQ(reg.counter_value("test.reset.survivor"), 0u);
  // The handle bound before the reset still reaches the (zeroed) slot.
  c += 2;
  EXPECT_EQ(reg.counter_value("test.reset.survivor"), 2u);
  // Instance-local value is untouched by registry reset.
  EXPECT_EQ(c.value(), 9u);
}

TEST(Registry, SnapshotIsSortedAndDeterministic) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Counter z;
  Counter a;
  z.bind("test.zzz.last");
  a.bind("test.aaa.first");
  ++z;
  ++a;
  const auto s1 = reg.snapshot();
  const auto s2 = reg.snapshot();
  ASSERT_GE(s1.counters.size(), 2u);
  for (std::size_t i = 1; i < s1.counters.size(); ++i) {
    EXPECT_LT(s1.counters[i - 1].first, s1.counters[i].first);
  }
  EXPECT_EQ(s1.counters, s2.counters);
  EXPECT_EQ(s1.to_json(), s2.to_json());
  EXPECT_EQ(s1.counter("test.aaa.first"), 1u);
  EXPECT_EQ(s1.counter("test.never.interned"), 0u);
}

TEST(Registry, JsonContainsInstrumentedNames) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Counter c;
  c.bind("test.json.visible");
  c += 42;
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"test.json.visible\":42"), std::string::npos);
}

TEST(SpanTracer, InternIsIdempotentAndTotalsAreExact) {
  auto& tracer = SpanTracer::instance();
  tracer.reset();
  const std::uint32_t id = tracer.intern("test.boundary");
  EXPECT_EQ(tracer.intern("test.boundary"), id);
  tracer.crossing(id, Dir::kDown, 100);
  tracer.crossing(id, Dir::kDown, 50);
  tracer.crossing(id, Dir::kUp, 100);
  EXPECT_EQ(tracer.crossings("test.boundary", Dir::kDown), 2u);
  EXPECT_EQ(tracer.crossings("test.boundary", Dir::kUp), 1u);
  EXPECT_EQ(tracer.crossing_bytes("test.boundary", Dir::kDown), 150u);
  EXPECT_EQ(tracer.crossing_bytes("test.boundary", Dir::kUp), 100u);
  EXPECT_EQ(tracer.crossings("test.no.such.boundary", Dir::kUp), 0u);
}

TEST(SpanTracer, TotalsSurviveRingWrap) {
  auto& tracer = SpanTracer::instance();
  tracer.reset();
  tracer.set_capacity(16);
  const std::uint32_t id = tracer.intern("test.wrap");
  for (int i = 0; i < 100; ++i) tracer.crossing(id, Dir::kDown, 1);
  EXPECT_EQ(tracer.size(), 16u);
  EXPECT_EQ(tracer.dropped(), 84u);
  // The ring forgot the early spans; the totals did not.
  EXPECT_EQ(tracer.crossings("test.wrap", Dir::kDown), 100u);
  EXPECT_EQ(tracer.crossing_bytes("test.wrap", Dir::kDown), 100u);
  tracer.set_capacity(SpanTracer::kDefaultCapacity);
}

TEST(SpanTracer, JsonListsRecentSpans) {
  auto& tracer = SpanTracer::instance();
  tracer.reset();
  const std::uint32_t id = tracer.intern("test.json.span");
  tracer.crossing(id, Dir::kUp, 64);
  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("test.json.span"), std::string::npos);
  EXPECT_NE(json.find("\"up\""), std::string::npos);
}

}  // namespace
}  // namespace sublayer::telemetry
