// pcapng writer/reader round-trip: block structure, interface blocks,
// nanosecond timestamps, direction flags, structural fault rejection, and
// the TapHub -> PcapngWriter wiring that scripts/check.sh validates on
// real captures.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "telemetry/frame_tap.hpp"
#include "telemetry/pcapng.hpp"

namespace sublayer::telemetry {
namespace {

TEST(Pcapng, EmptyCaptureIsAValidSection) {
  PcapngWriter w;
  const auto image = w.encode();
  // A Section Header Block alone: type, length, magic at the right spots.
  ASSERT_GE(image.size(), 28u);
  EXPECT_EQ(image[0], 0x0Au);
  EXPECT_EQ(image[1], 0x0Du);
  EXPECT_EQ(image[2], 0x0Du);
  EXPECT_EQ(image[3], 0x0Au);
  // Byte-order magic, little-endian.
  EXPECT_EQ(image[8], 0x4Du);
  EXPECT_EQ(image[9], 0x3Cu);
  EXPECT_EQ(image[10], 0x2Bu);
  EXPECT_EQ(image[11], 0x1Au);
  const auto parsed = parse_pcapng(image.data(), image.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->interfaces.empty());
  EXPECT_TRUE(parsed->packets.empty());
}

TEST(Pcapng, RoundTripPreservesEverything) {
  PcapngWriter w;
  const auto wire = w.add_interface("phy.wire", 147);
  const auto seg = w.add_interface("transport.segment", 152);
  EXPECT_EQ(wire, 0u);
  EXPECT_EQ(seg, 1u);

  const Bytes f1 = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};  // odd length: padded
  const Bytes f2 = {0x42};
  const Bytes f3 = {};  // empty frame must survive too
  w.packet(wire, TimePoint::from_ns(1000), ByteView(f1), Dir::kDown);
  w.packet(seg, TimePoint::from_ns(1500), ByteView(f2), Dir::kUp);
  w.packet(wire, TimePoint::from_ns(2000), ByteView(f3), Dir::kUp);
  EXPECT_EQ(w.interface_count(), 2u);
  EXPECT_EQ(w.packet_count(), 3u);

  const auto image = w.encode();
  const auto parsed = parse_pcapng(image.data(), image.size());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->interfaces.size(), 2u);
  EXPECT_EQ(parsed->interfaces[0].first, "phy.wire");
  EXPECT_EQ(parsed->interfaces[0].second, 147u);
  EXPECT_EQ(parsed->interfaces[1].first, "transport.segment");
  EXPECT_EQ(parsed->interfaces[1].second, 152u);

  ASSERT_EQ(parsed->packets.size(), 3u);
  EXPECT_EQ(parsed->packets[0].iface, 0u);
  EXPECT_EQ(parsed->packets[0].ts_ns, 1000);
  EXPECT_EQ(parsed->packets[0].data, f1);
  EXPECT_EQ(parsed->packets[0].flags, 2u);  // kDown = outbound
  EXPECT_EQ(parsed->packets[1].iface, 1u);
  EXPECT_EQ(parsed->packets[1].ts_ns, 1500);
  EXPECT_EQ(parsed->packets[1].data, f2);
  EXPECT_EQ(parsed->packets[1].flags, 1u);  // kUp = inbound
  EXPECT_EQ(parsed->packets[2].ts_ns, 2000);
  EXPECT_TRUE(parsed->packets[2].data.empty());
}

TEST(Pcapng, NanosecondTimestampsSurviveThe32BitSplit) {
  PcapngWriter w;
  const auto id = w.add_interface("t", 147);
  // A timestamp whose high and low 32-bit halves are both nonzero.
  const std::int64_t big = (std::int64_t{7} << 32) + 123456789;
  const Bytes f = {1, 2, 3, 4};
  w.packet(id, TimePoint::from_ns(big), ByteView(f), Dir::kDown);
  const auto image = w.encode();
  const auto parsed = parse_pcapng(image.data(), image.size());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->packets.size(), 1u);
  EXPECT_EQ(parsed->packets[0].ts_ns, big);
}

TEST(Pcapng, RejectsStructuralFaults) {
  PcapngWriter w;
  const auto id = w.add_interface("t", 147);
  const Bytes f = {1, 2, 3};
  w.packet(id, TimePoint::from_ns(5), ByteView(f), Dir::kUp);
  auto image = w.encode();

  // Truncation anywhere inside a block.
  for (std::size_t cut : {std::size_t{1}, std::size_t{11}, image.size() - 1}) {
    EXPECT_FALSE(parse_pcapng(image.data(), cut).has_value()) << cut;
  }
  // Corrupted SHB magic.
  auto bad_magic = image;
  bad_magic[0] = 0xFF;
  EXPECT_FALSE(parse_pcapng(bad_magic.data(), bad_magic.size()).has_value());
  // Big-endian byte-order magic: structurally fine, but this reader is
  // little-endian only and must refuse rather than misparse.
  auto be = image;
  be[8] = 0x1A;
  be[9] = 0x2B;
  be[10] = 0x3C;
  be[11] = 0x4D;
  EXPECT_FALSE(parse_pcapng(be.data(), be.size()).has_value());
  // Mismatched trailing block length.
  auto bad_len = image;
  bad_len[image.size() - 4] ^= 0x01;
  EXPECT_FALSE(parse_pcapng(bad_len.data(), bad_len.size()).has_value());
}

TEST(Pcapng, RejectsPacketOnUnknownInterface) {
  PcapngWriter with_iface;
  const auto id = with_iface.add_interface("t", 147);
  const Bytes f = {9};
  with_iface.packet(id, TimePoint::from_ns(1), ByteView(f), Dir::kUp);
  const auto good = with_iface.encode();
  // Splice the EPB (last block) onto a section with no IDB at all.
  PcapngWriter empty;
  auto image = empty.encode();
  // Find the EPB: it starts right after SHB + IDB in the good image.
  // SHB length sits at bytes 4..8.
  const auto block_len = [&](std::size_t off) {
    return static_cast<std::size_t>(good[off + 4]) |
           static_cast<std::size_t>(good[off + 5]) << 8 |
           static_cast<std::size_t>(good[off + 6]) << 16 |
           static_cast<std::size_t>(good[off + 7]) << 24;
  };
  const std::size_t shb = block_len(0);
  const std::size_t idb = block_len(shb);
  image.insert(image.end(), good.begin() + static_cast<std::ptrdiff_t>(shb + idb),
               good.end());
  EXPECT_FALSE(parse_pcapng(image.data(), image.size()).has_value());
}

TEST(PcapSink, TapHubFeedsOneInterfacePerTapPoint) {
  TapHub hub;
  PcapngWriter w;
  attach_pcap_sink(hub, w);
  ASSERT_EQ(w.interface_count(), kTapPointCount);

  const Bytes wire = {0xAA, 0xBB};
  const Bytes seg = {0x01, 0x02, 0x03};
  hub.tap(TapPoint::kPhyWire, Dir::kDown, ByteView(wire));
  hub.tap(TapPoint::kNetTransport, Dir::kUp, ByteView(seg));
  hub.tap(TapPoint::kPhyWire, Dir::kUp, ByteView(wire));
  EXPECT_EQ(hub.frames(TapPoint::kPhyWire), 2u);
  EXPECT_EQ(hub.bytes(TapPoint::kPhyWire), 4u);

  const auto image = w.encode();
  const auto parsed = parse_pcapng(image.data(), image.size());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->interfaces.size(), kTapPointCount);
  for (std::size_t p = 0; p < kTapPointCount; ++p) {
    EXPECT_EQ(parsed->interfaces[p].first,
              to_string(static_cast<TapPoint>(p)));
    EXPECT_EQ(parsed->interfaces[p].second,
              tap_link_type(static_cast<TapPoint>(p)));
  }
  ASSERT_EQ(parsed->packets.size(), 3u);
  EXPECT_EQ(parsed->packets[0].iface,
            static_cast<std::uint32_t>(TapPoint::kPhyWire));
  EXPECT_EQ(parsed->packets[1].iface,
            static_cast<std::uint32_t>(TapPoint::kNetTransport));
  EXPECT_EQ(parsed->packets[1].data, seg);
}

TEST(PcapSink, TimestampsAreMonotonePerInterface) {
  // Simulated time only moves forward, so a capture's packets must carry
  // non-decreasing timestamps within each interface — the property a
  // Wireshark user relies on when following one tap point.
  TapHub hub;
  PcapngWriter w;
  attach_pcap_sink(hub, w);
  TimePoint now;
  simclock::attach(&now);
  const Bytes f = {0x55};
  for (int i = 0; i < 50; ++i) {
    now = TimePoint::from_ns(i * 100);
    hub.tap(static_cast<TapPoint>(i % kTapPointCount),
            i % 2 == 0 ? Dir::kDown : Dir::kUp, ByteView(f));
  }
  simclock::detach(&now);
  const auto image = w.encode();
  const auto parsed = parse_pcapng(image.data(), image.size());
  ASSERT_TRUE(parsed.has_value());
  std::map<std::uint32_t, std::int64_t> last;
  for (const auto& p : parsed->packets) {
    const auto it = last.find(p.iface);
    if (it != last.end()) {
      EXPECT_GE(p.ts_ns, it->second);
    }
    last[p.iface] = p.ts_ns;
  }
  EXPECT_EQ(last.size(), kTapPointCount);
}

TEST(TapMacro, NoHubMeansNoCaptureAndNoCrash) {
  ASSERT_EQ(TapHub::current(), nullptr);
  const Bytes f = {1};
  // Both macro forms must be inert without an installed hub.
  SUBLAYER_TAP(TapPoint::kArq, Dir::kDown, ByteView(f));
  EXPECT_FALSE(SUBLAYER_TAP_ACTIVE(TapPoint::kArq));

  TapHub hub;
  TapHub* prev = TapHub::set_current(&hub);
  EXPECT_EQ(prev, nullptr);
  // Installed but with every point disabled: still inert.
  SUBLAYER_TAP(TapPoint::kArq, Dir::kDown, ByteView(f));
  EXPECT_EQ(hub.frames(TapPoint::kArq), 0u);
  EXPECT_FALSE(SUBLAYER_TAP_ACTIVE(TapPoint::kArq));
  hub.enable(TapPoint::kArq);
  SUBLAYER_TAP(TapPoint::kArq, Dir::kDown, ByteView(f));
  EXPECT_EQ(hub.frames(TapPoint::kArq), 1u);
  EXPECT_TRUE(SUBLAYER_TAP_ACTIVE(TapPoint::kArq));
  TapHub::set_current(prev);
  EXPECT_EQ(TapHub::current(), nullptr);
}

}  // namespace
}  // namespace sublayer::telemetry
