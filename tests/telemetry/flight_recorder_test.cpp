// FlightRecorder: ring wraparound semantics, SLFR dump encode/parse
// round-trip, cross-shard merge ordering, the thread-local install
// convention, and the dump-on-violation path the chaos monitor triggers.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/invariant_monitor.hpp"
#include "common/time.hpp"
#include "netlayer/router.hpp"
#include "telemetry/flight_recorder.hpp"

namespace sublayer::telemetry {
namespace {

FlightRecord make(std::int64_t t, std::uint16_t shard, std::uint32_t seq) {
  FlightRecord r;
  r.t_ns = t;
  r.shard = shard;
  r.seq = seq;
  r.type = static_cast<std::uint16_t>(FlightType::kMark);
  return r;
}

TEST(FlightRecorder, DisabledByDefault) {
  EXPECT_EQ(FlightRecorder::current(), nullptr);
  FlightRecorder r(8);
  FlightRecorder* prev = FlightRecorder::set_current(&r);
  EXPECT_EQ(prev, nullptr);
  EXPECT_EQ(FlightRecorder::current(), &r);
  FlightRecorder::set_current(prev);
  EXPECT_EQ(FlightRecorder::current(), nullptr);
}

TEST(FlightRecorder, RecordsCarryTagTimeAndPayload) {
  FlightRecorder r(16);
  r.set_shard(3);
  r.record(FlightType::kCrossing, "datalink.arq", TimePoint::from_ns(42),
           128, 1, 7);
  ASSERT_EQ(r.size(), 1u);
  const auto recs = r.recent();
  EXPECT_EQ(recs[0].t_ns, 42);
  EXPECT_EQ(recs[0].a, 128u);
  EXPECT_EQ(recs[0].b, 1u);
  EXPECT_EQ(recs[0].c, 7u);
  EXPECT_EQ(recs[0].shard, 3u);
  EXPECT_EQ(recs[0].seq, 0u);
  EXPECT_EQ(recs[0].tag_view(), "datalink.arq");
  EXPECT_EQ(recs[0].type, static_cast<std::uint16_t>(FlightType::kCrossing));
}

TEST(FlightRecorder, OverlongTagsTruncateWithoutOverflow) {
  FlightRecorder r(4);
  r.record(FlightType::kMark,
           "a-tag-much-longer-than-the-24-byte-field-allows",
           TimePoint::from_ns(1));
  const auto recs = r.recent();
  ASSERT_EQ(recs.size(), 1u);
  // 23 characters survive; the field always keeps a terminating NUL.
  EXPECT_EQ(recs[0].tag_view(), "a-tag-much-longer-than-");
  EXPECT_EQ(recs[0].tag_view().size(), 23u);
}

TEST(FlightRecorder, RingKeepsTheLastCapacityRecordsOldestFirst) {
  constexpr std::size_t kCap = 8;
  FlightRecorder r(kCap);
  for (int i = 0; i < 20; ++i) {
    r.record(FlightType::kEvent, "e", TimePoint::from_ns(i),
             static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(r.total_records(), 20u);
  EXPECT_EQ(r.size(), kCap);
  EXPECT_EQ(r.capacity(), kCap);
  const auto recs = r.recent();
  ASSERT_EQ(recs.size(), kCap);
  for (std::size_t i = 0; i < kCap; ++i) {
    // The ring forgot records 0..11; 12..19 survive in order, and seq
    // still counts from the recorder's birth.
    EXPECT_EQ(recs[i].a, 12 + i);
    EXPECT_EQ(recs[i].seq, 12 + i);
    EXPECT_EQ(recs[i].t_ns, static_cast<std::int64_t>(12 + i));
  }
  r.reset();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.total_records(), 0u);
}

TEST(FlightRecorder, MergeOrdersByTimeShardSeq) {
  FlightRecorder a(8);
  a.set_shard(1);
  FlightRecorder b(8);
  b.set_shard(0);
  a.record(FlightType::kMark, "a0", TimePoint::from_ns(10));
  a.record(FlightType::kMark, "a1", TimePoint::from_ns(30));
  b.record(FlightType::kMark, "b0", TimePoint::from_ns(10));
  b.record(FlightType::kMark, "b1", TimePoint::from_ns(20));
  const auto merged = FlightRecorder::merge({&a, &b});
  ASSERT_EQ(merged.size(), 4u);
  // t=10 ties break by shard: shard 0's record first.
  EXPECT_EQ(merged[0].tag_view(), "b0");
  EXPECT_EQ(merged[1].tag_view(), "a0");
  EXPECT_EQ(merged[2].tag_view(), "b1");
  EXPECT_EQ(merged[3].tag_view(), "a1");
}

TEST(FlightDump, EncodeParseRoundTrip) {
  std::vector<FlightRecord> recs = {make(5, 0, 0), make(6, 1, 0)};
  recs[0].type = static_cast<std::uint16_t>(FlightType::kViolation);
  const auto image = encode_flight_dump(recs, "unit-test");
  // Header: magic "SLFR", version, count, reason.
  ASSERT_GE(image.size(), 48u + 2 * sizeof(FlightRecord));
  EXPECT_EQ(image[0], 'S');
  EXPECT_EQ(image[1], 'L');
  EXPECT_EQ(image[2], 'F');
  EXPECT_EQ(image[3], 'R');
  const auto parsed = parse_flight_dump(image.data(), image.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->reason, "unit-test");
  ASSERT_EQ(parsed->records.size(), 2u);
  EXPECT_EQ(parsed->records[0], recs[0]);
  EXPECT_EQ(parsed->records[1], recs[1]);

  // Structural faults: truncation and bad magic.
  EXPECT_FALSE(parse_flight_dump(image.data(), 10).has_value());
  EXPECT_FALSE(
      parse_flight_dump(image.data(), image.size() - 1).has_value());
  auto bad = image;
  bad[0] = 'X';
  EXPECT_FALSE(parse_flight_dump(bad.data(), bad.size()).has_value());
}

TEST(FlightDump, SerializeIsTheRawRingImage) {
  FlightRecorder r(4);
  r.record(FlightType::kMark, "m", TimePoint::from_ns(1));
  r.record(FlightType::kMark, "n", TimePoint::from_ns(2));
  const auto bytes = r.serialize();
  ASSERT_EQ(bytes.size(), 2 * sizeof(FlightRecord));
  FlightRecord first;
  std::memcpy(&first, bytes.data(), sizeof(first));
  EXPECT_EQ(first.tag_view(), "m");
}

// A violation observed by the chaos monitor must dump every live recorder
// to the configured directory — the black-box retrieval path.
TEST(FlightDump, InvariantViolationDumpsTheBlackBox) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "flight-dump-test")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  set_flight_dump_dir(dir);

  FlightRecorder rec(64);
  FlightRecorder* prev = FlightRecorder::set_current(&rec);

  {
    sim::Simulator sim;
    netlayer::Network net(sim, {}, 5);
    chaos::InvariantMonitor monitor(sim, net);
    const int id = monitor.register_transfer("t");
    const Bytes sent = {1, 2, 3};
    monitor.record_sent(id, sent);
    monitor.record_delivered(id, Bytes{9});  // prefix violation
    ASSERT_EQ(monitor.violations().size(), 1u);
  }

  FlightRecorder::set_current(prev);
  set_flight_dump_dir("");

  // Exactly one dump, named for the reason, parseable, and holding the
  // violation record that triggered it.
  std::vector<std::filesystem::path> dumps;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    dumps.push_back(e.path());
  }
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].filename().string().find("violation"),
            std::string::npos);
  EXPECT_EQ(dumps[0].extension(), ".slfr");
  std::ifstream in(dumps[0], std::ios::binary);
  std::vector<std::uint8_t> image((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  const auto parsed = parse_flight_dump(image.data(), image.size());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->reason, "violation");
  bool saw_violation = false;
  for (const auto& r : parsed->records) {
    if (r.type == static_cast<std::uint16_t>(FlightType::kViolation)) {
      saw_violation = true;
      EXPECT_NE(std::string(r.tag_view()).find("prefix"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_violation);
  std::filesystem::remove_all(dir);
}

TEST(FlightDump, DumpIsANoOpWithoutADirectory) {
  set_flight_dump_dir("");
  FlightRecorder rec(8);
  FlightRecorder* prev = FlightRecorder::set_current(&rec);
  rec.record(FlightType::kMark, "m", TimePoint::from_ns(1));
  EXPECT_EQ(dump_all_flight_recorders("nowhere"), "");
  FlightRecorder::set_current(prev);
}

}  // namespace
}  // namespace sublayer::telemetry
