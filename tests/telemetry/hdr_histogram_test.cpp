// HDR histogram layout and accuracy: bucket index math, the bounded
// relative error the log-linear layout promises, quantile reconstruction,
// and the bucketwise cross-shard merge path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::telemetry {
namespace {

using detail::histogram_bucket;
using detail::histogram_bucket_lower;
using detail::histogram_bucket_width;

TEST(HdrLayout, UnitBucketsAreExact) {
  for (std::uint64_t v = 0; v < kHdrSubBuckets; ++v) {
    EXPECT_EQ(histogram_bucket(v), v);
    EXPECT_EQ(histogram_bucket_lower(v), v);
    EXPECT_EQ(histogram_bucket_width(v), 1u);
  }
}

TEST(HdrLayout, KnownIndices) {
  // First value past the unit range opens the first split octave.
  EXPECT_EQ(histogram_bucket(16), 16u);
  // 1024 = 2^10, sub-bucket 0 of octave 10: (10-4+1)*16 = 112.
  EXPECT_EQ(histogram_bucket(1024), 112u);
  EXPECT_EQ(histogram_bucket_lower(112), 1024u);
  // Octave 10 sub-buckets are 64 wide: 1024+64-1 stays, 1024+64 moves on.
  EXPECT_EQ(histogram_bucket_width(112), 64u);
  EXPECT_EQ(histogram_bucket(1024 + 63), 112u);
  EXPECT_EQ(histogram_bucket(1024 + 64), 113u);
  // The top of uint64 still lands inside the table.
  EXPECT_LT(histogram_bucket(~std::uint64_t{0}), kHistogramBuckets);
}

TEST(HdrLayout, EveryValueLandsInsideItsBucket) {
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform coverage: random bit width, then random bits below it.
    const auto bits = 1 + rng.next_below(64);
    const std::uint64_t mask =
        bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
    const std::uint64_t v = rng.next_u64() & mask;
    const std::size_t b = histogram_bucket(v);
    ASSERT_LT(b, kHistogramBuckets);
    EXPECT_LE(histogram_bucket_lower(b), v);
    // Overflow-safe form of v < lower + width: the top sub-bucket of the
    // 2^63 octave ends exactly at 2^64.
    EXPECT_LT(v - histogram_bucket_lower(b), histogram_bucket_width(b));
    // Relative bucket width (the quantile error bound): <= 1/16 of the
    // bucket's lower bound, exact below the unit range.
    if (v >= kHdrSubBuckets) {
      EXPECT_LE(histogram_bucket_width(b) * kHdrSubBuckets,
                histogram_bucket_lower(b));
    }
  }
}

TEST(HdrLayout, LowerBoundsAreStrictlyMonotone) {
  for (std::size_t i = 1; i < kHistogramBuckets; ++i) {
    EXPECT_LT(histogram_bucket_lower(i - 1), histogram_bucket_lower(i)) << i;
    EXPECT_EQ(histogram_bucket_lower(i),
              histogram_bucket_lower(i - 1) + histogram_bucket_width(i - 1))
        << i;
  }
}

TEST(HdrQuantile, ExactOnSmallSets) {
  Histogram h;
  HistogramData* data = nullptr;
  {
    auto& reg = MetricsRegistry::instance();
    reg.reset();
    h.bind("test.hdr.small");
    data = reg.histogram_slot(reg.intern_histogram("test.hdr.small"));
  }
  for (std::uint64_t v : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u}) {
    h.observe(v);
  }
  // Values <= 15 sit in exact unit buckets, so quantiles are exact.
  EXPECT_EQ(data->quantile(0.0), 1u);
  EXPECT_EQ(data->quantile(0.5), 5u);
  EXPECT_EQ(data->quantile(0.9), 9u);
  EXPECT_EQ(data->quantile(1.0), 10u);
}

TEST(HdrQuantile, BoundedRelativeErrorOnWideDistribution) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Histogram h;
  h.bind("test.hdr.wide");
  std::vector<std::uint64_t> values;
  Rng rng(11);
  for (int i = 0; i < 50000; ++i) {
    // Latency-shaped: log-uniform between 100ns and ~100ms.
    const double log = 2.0 + 6.0 * rng.next_double();
    values.push_back(static_cast<std::uint64_t>(std::pow(10.0, log)));
    h.observe(values.back());
  }
  std::sort(values.begin(), values.end());
  const HistogramData* data =
      reg.snapshot().histogram("test.hdr.wide");
  ASSERT_NE(data, nullptr);
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact = values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))];
    const auto approx = data->quantile(q);
    const double rel =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LE(rel, 0.0625) << "q=" << q << " exact=" << exact
                           << " approx=" << approx;
  }
}

TEST(HdrMerge, MergedDataEqualsUnifiedObservation) {
  // Two "shards" observe disjoint streams; bucketwise merge must equal the
  // histogram that saw everything.
  MetricsRegistry shard_a;
  MetricsRegistry shard_b;
  MetricsRegistry all;
  const auto observe = [](MetricsRegistry& reg, std::uint64_t v) {
    ++reg.histogram_slot(reg.intern_histogram("m"))->buckets
        [detail::histogram_bucket(v)];
    auto* d = reg.histogram_slot(reg.intern_histogram("m"));
    if (d->count == 0 || v < d->min) d->min = v;
    if (v > d->max) d->max = v;
    ++d->count;
    d->sum += v;
  };
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t v = rng.next_below(1000000);
    observe(i % 2 == 0 ? shard_a : shard_b, v);
    observe(all, v);
  }
  HistogramData merged =
      *shard_a.histogram_slot(shard_a.intern_histogram("m"));
  merged.merge(*shard_b.histogram_slot(shard_b.intern_histogram("m")));
  const HistogramData& want = *all.histogram_slot(all.intern_histogram("m"));
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum, want.sum);
  EXPECT_EQ(merged.min, want.min);
  EXPECT_EQ(merged.max, want.max);
  EXPECT_EQ(merged.buckets, want.buckets);
  for (double q : {0.5, 0.99}) {
    EXPECT_EQ(merged.quantile(q), want.quantile(q));
  }
}

TEST(HdrMerge, MergeIntoEmptyAdoptsMinMax) {
  MetricsRegistry reg;
  auto* src = reg.histogram_slot(reg.intern_histogram("src"));
  ++src->buckets[detail::histogram_bucket(42)];
  src->count = 1;
  src->sum = 42;
  src->min = 42;
  src->max = 42;
  HistogramData dst;
  dst.merge(*src);
  EXPECT_EQ(dst.count, 1u);
  EXPECT_EQ(dst.min, 42u);
  EXPECT_EQ(dst.max, 42u);
  EXPECT_EQ(dst.quantile(0.5), 42u);
}

TEST(HdrJson, SnapshotEmitsQuantilesAndSparseBuckets) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  Histogram h;
  h.bind("test.hdr.json");
  h.observe(7);
  h.observe(1024);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("test.hdr.json"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  // Sparse [index, count] pairs — two observations, two pairs.
  EXPECT_NE(json.find("[7,1]"), std::string::npos);
  EXPECT_NE(json.find("[112,1]"), std::string::npos);
}

}  // namespace
}  // namespace sublayer::telemetry
