// ChromeTraceWriter: Trace Event Format structure, lane-as-tid layout,
// the canonical (deterministic-only) rendering, and flow-span export from
// flight records.
#include <gtest/gtest.h>

#include <string>

#include "telemetry/chrome_trace.hpp"

namespace sublayer::telemetry {
namespace {

// A structural JSON checker sufficient for the Trace Event Format we emit
// (no string escapes of braces/brackets inside names — ours are fixed).
bool balanced_json(const std::string& s) {
  int depth_obj = 0;
  int depth_arr = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    if (depth_obj < 0 || depth_arr < 0) return false;
  }
  return depth_obj == 0 && depth_arr == 0 && !in_string;
}

TEST(ChromeTrace, EmptyWriterIsAValidDocument) {
  ChromeTraceWriter w(2);
  EXPECT_EQ(w.lane_count(), 2u);
  EXPECT_EQ(w.event_count(), 0u);
  const std::string json = w.to_json();
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, EventsRenderWithLaneAsTid) {
  ChromeTraceWriter w(3);
  w.complete(0, "epoch", 1000, 2000, "\"events\":5");
  w.instant(1, "task", 1500);
  w.counter(2, "mailbox_drained", 3000, 7);
  EXPECT_EQ(w.event_count(), 3u);
  const std::string json = w.to_json();
  EXPECT_TRUE(balanced_json(json));
  // Microsecond timestamps with fixed sub-microsecond decimals.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"events\":5"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
}

TEST(ChromeTrace, AsyncPairsShareCatFlowAndId) {
  ChromeTraceWriter w(1);
  w.async_begin(0, "flow", 100, 0xABCD);
  w.async_end(0, "flow", 900, 0xABCD);
  const std::string json = w.to_json();
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flow\""), std::string::npos);
  // Both events carry the matching id.
  const auto first = json.find("\"id\":43981");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(json.find("\"id\":43981", first + 1), std::string::npos);
}

TEST(ChromeTrace, CanonicalDropsWallClockEventsAndArgs) {
  ChromeTraceWriter w(2);
  w.complete(0, "epoch", 1000, 500, "\"events\":3,\"wall_us\":17.250");
  w.complete(1, "barrier_wait", 1000, 12345, {}, /*deterministic=*/false);
  w.counter(0, "mailbox_drained", 2000, 4);
  const std::string full = w.to_json();
  const std::string canon = w.canonical_json();
  EXPECT_TRUE(balanced_json(canon));
  // The wall-clock span exists for humans, not for replay comparison.
  EXPECT_NE(full.find("barrier_wait"), std::string::npos);
  EXPECT_EQ(canon.find("barrier_wait"), std::string::npos);
  // Deterministic events survive, their args stripped...
  EXPECT_NE(canon.find("\"epoch\""), std::string::npos);
  EXPECT_EQ(canon.find("wall_us"), std::string::npos);
  EXPECT_EQ(canon.find("\"events\":3"), std::string::npos);
  // ...except counter values, which are part of the deterministic payload.
  EXPECT_NE(canon.find("\"value\":4"), std::string::npos);
}

TEST(ChromeTrace, RenderOrderIsTimeThenLaneNotInsertionOrder) {
  ChromeTraceWriter w(2);
  // Lane 1 written first, but lane 0's event is earlier.
  w.instant(1, "later", 500);
  w.instant(0, "earlier", 100);
  w.instant(0, "tie-lane0", 500);
  const std::string json = w.canonical_json();
  const auto a = json.find("earlier");
  const auto b = json.find("tie-lane0");
  const auto c = json.find("later");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // equal ts: lane 0 before lane 1
}

TEST(ChromeTrace, ClearEmptiesAllLanes) {
  ChromeTraceWriter w(1);
  w.instant(0, "x", 1);
  ASSERT_EQ(w.event_count(), 1u);
  w.clear();
  EXPECT_EQ(w.event_count(), 0u);
  EXPECT_EQ(w.lane_count(), 1u);
}

TEST(ChromeTrace, FlowSpansComeFromFlightRecords) {
  std::vector<FlightRecord> recs;
  FlightRecord open;
  open.type = static_cast<std::uint16_t>(FlightType::kFlowOpen);
  open.t_ns = 1000;
  open.a = 77;
  open.shard = 1;
  FlightRecord close = open;
  close.type = static_cast<std::uint16_t>(FlightType::kFlowClose);
  close.t_ns = 9000;
  FlightRecord noise;
  noise.type = static_cast<std::uint16_t>(FlightType::kEvent);
  recs.push_back(open);
  recs.push_back(noise);
  recs.push_back(close);

  ChromeTraceWriter w(4);
  export_flow_spans(recs, w);
  EXPECT_EQ(w.event_count(), 2u);
  const std::string json = w.canonical_json();
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":77"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

}  // namespace
}  // namespace sublayer::telemetry
