#include "offload/offload.hpp"

#include <gtest/gtest.h>

namespace sublayer::offload {
namespace {

Workload typical_workload() {
  Workload w;
  w.data_segments = 1000;
  w.ack_segments = 1000;
  w.payload_bytes = 1200 * 1000;
  return w;
}

TEST(Crossings, AllHostHasExactlyTheWireCrossing) {
  EXPECT_EQ(crossings_per_segment(Placement::all_host()), 1);
}

TEST(Crossings, SimpleDecompositionHasOneCrossing) {
  // NIC {DM, CM, RD}: the only boundary is RD -> OSR.
  EXPECT_EQ(crossings_per_segment(Placement::nic_dm_cm_rd()), 1);
}

TEST(Crossings, RdOnlyNeedsThreeCrossings) {
  // wire(N) -> DM(H) -> CM(H) -> RD(N) -> OSR(H): the paper's "more
  // finagling" case.
  EXPECT_EQ(crossings_per_segment(Placement::nic_rd_only()), 3);
}

TEST(Crossings, AllNicHasOnlyTheAppHandoff) {
  EXPECT_EQ(crossings_per_segment(Placement::all_nic()), 1);
}

TEST(Evaluate, OffloadingReducesHostCpu) {
  const auto w = typical_workload();
  const auto base = evaluate(Placement::all_host(), w);
  const auto off = evaluate(Placement::nic_dm_cm_rd(), w);
  EXPECT_LT(off.host_cpu_seconds, base.host_cpu_seconds);
  EXPECT_LT(off.host_cpu_fraction_of_all_host, 1.0);
  EXPECT_GT(off.host_bound_bps, base.host_bound_bps);
}

TEST(Evaluate, RdOnlyPaysCrossingTax) {
  // RD-only removes the most expensive stage but pays 3 crossings; with a
  // high crossing tax it can be WORSE than all-host — the quantitative
  // version of the paper's "modest duplication of state / finagling".
  const auto w = typical_workload();
  CostModel expensive;
  expensive.crossing_ns = 2000;
  const auto base = evaluate(Placement::all_host(), w, expensive);
  const auto rd_only = evaluate(Placement::nic_rd_only(), w, expensive);
  EXPECT_GT(rd_only.host_ns_per_segment, base.host_ns_per_segment);

  CostModel cheap;
  cheap.crossing_ns = 50;
  const auto base2 = evaluate(Placement::all_host(), w, cheap);
  const auto rd_only2 = evaluate(Placement::nic_rd_only(), w, cheap);
  EXPECT_LT(rd_only2.host_ns_per_segment, base2.host_ns_per_segment);
}

TEST(Evaluate, PlacementOrderingUnderDefaultCosts) {
  const auto w = typical_workload();
  const auto all_host = evaluate(Placement::all_host(), w);
  const auto deep = evaluate(Placement::nic_dm_cm_rd(), w);
  const auto rd_only = evaluate(Placement::nic_rd_only(), w);
  // Under the default 600 ns crossing tax: deep offload clearly wins, and
  // RD-only actually LOSES to all-host (its three crossings outweigh the
  // saved RD cycles) — the quantitative form of the paper's "with more
  // finagling ... only RD can be placed in hardware".
  EXPECT_LT(deep.host_ns_per_segment, all_host.host_ns_per_segment);
  EXPECT_GT(rd_only.host_ns_per_segment, all_host.host_ns_per_segment);
}

TEST(Evaluate, NicTimeAccountsOffloadedStages) {
  const auto w = typical_workload();
  const auto deep = evaluate(Placement::nic_dm_cm_rd(), w);
  CostModel costs;
  EXPECT_DOUBLE_EQ(deep.nic_ns_per_segment,
                   costs.nic_ns[0] + costs.nic_ns[1] + costs.nic_ns[2]);
  const auto none = evaluate(Placement::all_host(), w);
  EXPECT_DOUBLE_EQ(none.nic_ns_per_segment, 0.0);
}

TEST(Evaluate, EmptyWorkloadIsWellDefined) {
  const auto r = evaluate(Placement::all_host(), Workload{});
  EXPECT_DOUBLE_EQ(r.host_cpu_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.host_bound_bps, 0.0);
}

}  // namespace
}  // namespace sublayer::offload
