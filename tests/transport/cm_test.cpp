// Unit tests for the CM sublayer in isolation: scripted segments instead
// of a live network, so every state transition and validation rule is
// pinned down.
#include <gtest/gtest.h>

#include "transport/sublayered/cm.hpp"

namespace sublayer::transport {
namespace {

struct CmHarness {
  explicit CmHarness(CmConfig config = fast_config())
      : isn(make_rfc793_isn(sim)),
        cm(sim, *isn, config,
           ConnectionManager::Callbacks{
               [this](std::uint32_t l, std::uint32_t p) {
                 established = true;
                 isn_local = l;
                 isn_peer = p;
               },
               [this](std::uint64_t len) { peer_fin_length = len; },
               [this] { local_fin_acked = true; },
               [this] { closed = true; },
               [this](std::string r) { reset_reason = std::move(r); },
               [this](SublayeredSegment s) { sent.push_back(std::move(s)); },
               [this](SublayeredSegment s) { data.push_back(std::move(s)); },
               [this] { ++ack_requests; },
           }) {}

  static CmConfig fast_config() {
    CmConfig c;
    c.handshake_rto = Duration::millis(10);
    c.max_handshake_retries = 3;
    c.time_wait = Duration::millis(20);
    return c;
  }

  void run_for(Duration d) {
    sim.run_until(TimePoint::from_ns(sim.now().ns() + d.ns()));
  }

  SublayeredSegment make(CmKind kind, std::uint32_t isn_l, std::uint32_t isn_p,
                         std::uint32_t fin_offset = 0) {
    SublayeredSegment s;
    s.cm.kind = kind;
    s.cm.isn_local = isn_l;
    s.cm.isn_peer = isn_p;
    s.cm.fin_offset = fin_offset;
    return s;
  }

  /// Drives the handshake to ESTABLISHED from the active side.
  std::uint32_t establish_active(std::uint32_t peer_isn = 999) {
    cm.open_active(FourTuple{1, 1000, 2, 80});
    const std::uint32_t our_isn = sent.back().cm.isn_local;
    cm.on_segment(make(CmKind::kSynAck, peer_isn, our_isn));
    return our_isn;
  }

  sim::Simulator sim;
  std::unique_ptr<IsnProvider> isn;
  ConnectionManager cm;
  std::vector<SublayeredSegment> sent;
  std::vector<SublayeredSegment> data;
  bool established = false;
  bool local_fin_acked = false;
  bool closed = false;
  std::uint32_t isn_local = 0;
  std::uint32_t isn_peer = 0;
  std::uint64_t peer_fin_length = 0;
  std::string reset_reason;
  int ack_requests = 0;
};

TEST(Cm, ActiveOpenSendsSynAndEstablishesOnSynAck) {
  CmHarness h;
  h.cm.open_active(FourTuple{1, 1000, 2, 80});
  EXPECT_EQ(h.cm.state(), CmState::kSynSent);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].cm.kind, CmKind::kSyn);
  EXPECT_EQ(h.sent[0].cm.isn_peer, 0u);

  const std::uint32_t our_isn = h.sent[0].cm.isn_local;
  h.cm.on_segment(h.make(CmKind::kSynAck, 5555, our_isn));
  EXPECT_EQ(h.cm.state(), CmState::kEstablished);
  EXPECT_TRUE(h.established);
  EXPECT_EQ(h.isn_peer, 5555u);
  EXPECT_EQ(h.cm.isn_peer(), 5555u);
}

TEST(Cm, SynAckForWrongIsnIgnored) {
  CmHarness h;
  h.cm.open_active(FourTuple{1, 1000, 2, 80});
  const std::uint32_t our_isn = h.sent[0].cm.isn_local;
  h.cm.on_segment(h.make(CmKind::kSynAck, 5555, our_isn + 1));
  EXPECT_EQ(h.cm.state(), CmState::kSynSent);
  EXPECT_FALSE(h.established);
}

TEST(Cm, SynRetransmittedWithBackoffThenAborts) {
  CmHarness h;
  h.cm.open_active(FourTuple{1, 1000, 2, 80});
  h.run_for(Duration::millis(500));
  // 1 original + 3 retries, then abort (RST emitted).
  int syns = 0;
  int rsts = 0;
  for (const auto& s : h.sent) {
    if (s.cm.kind == CmKind::kSyn) ++syns;
    if (s.cm.kind == CmKind::kRst) ++rsts;
  }
  EXPECT_EQ(syns, 4);
  EXPECT_EQ(rsts, 1);
  EXPECT_EQ(h.cm.state(), CmState::kAborted);
  EXPECT_FALSE(h.reset_reason.empty());
  EXPECT_EQ(h.cm.stats().syn_retransmits, 3u);
}

TEST(Cm, PassiveOpenAnswersSynAckAndEstablishesOnData) {
  CmHarness h;
  SublayeredSegment syn = h.make(CmKind::kSyn, 7777, 0);
  h.cm.open_passive(FourTuple{2, 80, 1, 1000}, syn);
  EXPECT_EQ(h.cm.state(), CmState::kSynRcvd);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].cm.kind, CmKind::kSynAck);
  EXPECT_EQ(h.sent[0].cm.isn_peer, 7777u);

  // Handshake-completing pure ack (a DATA segment from the right pair).
  SublayeredSegment ack = h.make(CmKind::kData, 7777, h.cm.isn_local());
  h.cm.on_segment(ack);
  EXPECT_EQ(h.cm.state(), CmState::kEstablished);
  EXPECT_EQ(h.data.size(), 1u);  // and the segment reached RD
}

TEST(Cm, DuplicateSynTriggersSynAckRetransmit) {
  CmHarness h;
  SublayeredSegment syn = h.make(CmKind::kSyn, 7777, 0);
  h.cm.open_passive(FourTuple{2, 80, 1, 1000}, syn);
  const auto sent_before = h.sent.size();
  h.cm.on_segment(syn);  // duplicate SYN
  EXPECT_EQ(h.sent.size(), sent_before + 1);
  EXPECT_EQ(h.sent.back().cm.kind, CmKind::kSynAck);
}

TEST(Cm, DataFromWrongIncarnationRejected) {
  CmHarness h;
  h.establish_active(999);
  // Delayed duplicate from an older incarnation: wrong ISNs.
  h.cm.on_segment(h.make(CmKind::kData, 111, 222));
  EXPECT_TRUE(h.data.empty());
  EXPECT_EQ(h.cm.stats().bad_incarnation, 1u);
}

TEST(Cm, ValidDataFlowsToRd) {
  CmHarness h;
  const std::uint32_t our_isn = h.establish_active(999);
  h.cm.on_segment(h.make(CmKind::kData, 999, our_isn));
  ASSERT_EQ(h.data.size(), 1u);
}

TEST(Cm, DuplicateSynAckAfterEstablishRequestsAck) {
  CmHarness h;
  const std::uint32_t our_isn = h.establish_active(999);
  h.cm.on_segment(h.make(CmKind::kSynAck, 999, our_isn));
  EXPECT_EQ(h.ack_requests, 1);
}

TEST(Cm, StampDataFillsIsnPair) {
  CmHarness h;
  h.establish_active(999);
  SublayeredSegment s;
  h.cm.stamp_data(s);
  EXPECT_EQ(s.cm.kind, CmKind::kData);
  EXPECT_EQ(s.cm.isn_local, h.cm.isn_local());
  EXPECT_EQ(s.cm.isn_peer, 999u);
}

TEST(Cm, PeerFinReportsStreamLengthAndIsAcked) {
  CmHarness h;
  const std::uint32_t our_isn = h.establish_active(999);
  h.cm.on_segment(h.make(CmKind::kFin, 999, our_isn, 123456));
  EXPECT_EQ(h.peer_fin_length, 123456u);
  EXPECT_EQ(h.sent.back().cm.kind, CmKind::kFinAck);
  EXPECT_TRUE(h.cm.peer_fin_seen());
  // Duplicate FIN re-acks but does not re-notify.
  h.peer_fin_length = 0;
  h.cm.on_segment(h.make(CmKind::kFin, 999, our_isn, 123456));
  EXPECT_EQ(h.peer_fin_length, 0u);
  EXPECT_EQ(h.sent.back().cm.kind, CmKind::kFinAck);
}

TEST(Cm, CloseRetransmitsFinUntilAcked) {
  CmHarness h;
  const std::uint32_t our_isn = h.establish_active(999);
  h.cm.close(5000);
  h.run_for(Duration::millis(25));
  int fins = 0;
  for (const auto& s : h.sent) {
    if (s.cm.kind == CmKind::kFin) ++fins;
  }
  EXPECT_GE(fins, 2);  // original + at least one retransmit
  h.cm.on_segment(h.make(CmKind::kFinAck, 999, our_isn));
  EXPECT_TRUE(h.local_fin_acked);
  const int fins_now = fins;
  h.run_for(Duration::millis(100));
  fins = 0;
  for (const auto& s : h.sent) {
    if (s.cm.kind == CmKind::kFin) ++fins;
  }
  EXPECT_EQ(fins, fins_now);  // retransmission stopped
}

TEST(Cm, FullCloseEntersTimeWaitThenCloses) {
  CmHarness h;
  const std::uint32_t our_isn = h.establish_active(999);
  h.cm.close(100);
  h.cm.on_segment(h.make(CmKind::kFinAck, 999, our_isn));
  h.cm.on_segment(h.make(CmKind::kFin, 999, our_isn, 200));
  EXPECT_EQ(h.cm.state(), CmState::kTimeWait);
  EXPECT_FALSE(h.closed);
  h.run_for(Duration::millis(50));
  EXPECT_TRUE(h.closed);
  EXPECT_EQ(h.cm.state(), CmState::kClosed);
}

TEST(Cm, DataStillAcceptedInTimeWait) {
  // The peer may retransmit its last segments while we linger.
  CmHarness h;
  const std::uint32_t our_isn = h.establish_active(999);
  h.cm.close(100);
  h.cm.on_segment(h.make(CmKind::kFinAck, 999, our_isn));
  h.cm.on_segment(h.make(CmKind::kFin, 999, our_isn, 200));
  ASSERT_EQ(h.cm.state(), CmState::kTimeWait);
  h.cm.on_segment(h.make(CmKind::kData, 999, our_isn));
  EXPECT_EQ(h.data.size(), 1u);
}

TEST(Cm, RstWithMatchingIsnAborts) {
  CmHarness h;
  const std::uint32_t our_isn = h.establish_active(999);
  h.cm.on_segment(h.make(CmKind::kRst, 999, our_isn));
  EXPECT_EQ(h.cm.state(), CmState::kAborted);
  EXPECT_EQ(h.reset_reason, "peer reset");
}

TEST(Cm, BlindRstRejected) {
  CmHarness h;
  h.establish_active(999);
  h.cm.on_segment(h.make(CmKind::kRst, 1, 2));  // attacker guesses wrong
  EXPECT_EQ(h.cm.state(), CmState::kEstablished);
  EXPECT_EQ(h.cm.stats().bad_incarnation, 1u);
}

TEST(Cm, CloseBeforeEstablishIsIgnored) {
  CmHarness h;
  h.cm.open_active(FourTuple{1, 1000, 2, 80});
  h.cm.close(0);
  for (const auto& s : h.sent) {
    EXPECT_NE(s.cm.kind, CmKind::kFin);
  }
}

TEST(Cm, StateNamesAreHuman) {
  EXPECT_STREQ(to_string(CmState::kEstablished), "ESTABLISHED");
  EXPECT_STREQ(to_string(CmState::kTimeWait), "TIME_WAIT");
}

}  // namespace
}  // namespace sublayer::transport
