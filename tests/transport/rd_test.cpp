// Unit tests for the RD sublayer in isolation: a scripted "peer" feeds
// acks and data so retransmission, RTO estimation, SACK, and exactly-once
// receive semantics are pinned down without a network in the loop.
#include <gtest/gtest.h>

#include <map>

#include "transport/sublayered/rd.hpp"

namespace sublayer::transport {
namespace {

struct RdHarness {
  explicit RdHarness(RdConfig config = fast_config())
      : rd(sim, config,
           ReliableDelivery::Callbacks{
               [this](SublayeredSegment s) { wire.push_back(std::move(s)); },
               [this](std::uint64_t offset, Bytes data) {
                 delivered[offset] = std::move(data);
                 ++deliveries;
               },
               [this](const AckFeedback& fb) { feedback.push_back(fb); },
               [this](LossKind kind) { losses.push_back(kind); },
               [] { return OsrHeader{}; },
               [this] { peer_dead = true; },
           }) {}

  static RdConfig fast_config() {
    RdConfig c;
    c.initial_rto = Duration::millis(10);
    c.min_rto = Duration::millis(5);
    c.max_rto = Duration::millis(500);
    c.max_retransmits = 4;
    return c;
  }

  void run_for(Duration d) {
    sim.run_until(TimePoint::from_ns(sim.now().ns() + d.ns()));
  }

  /// Builds a pure ack from the peer.
  SublayeredSegment ack(std::uint32_t ack_offset,
                        std::vector<SackBlock> sack = {}) {
    SublayeredSegment s;
    s.cm.kind = CmKind::kData;
    s.rd.ack_offset = ack_offset;
    s.rd.sack = std::move(sack);
    s.osr.recv_window = 1 << 20;
    return s;
  }

  /// Builds a data segment from the peer.
  SublayeredSegment data(std::uint32_t seq_offset, Bytes payload) {
    SublayeredSegment s = ack(0);
    s.rd.seq_offset = seq_offset;
    s.payload = std::move(payload);
    return s;
  }

  sim::Simulator sim;
  ReliableDelivery rd;
  std::vector<SublayeredSegment> wire;
  std::map<std::uint64_t, Bytes> delivered;
  int deliveries = 0;
  std::vector<AckFeedback> feedback;
  std::vector<LossKind> losses;
  bool peer_dead = false;
};

Bytes seg_bytes(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

// ---- sender side -------------------------------------------------------------

TEST(Rd, SendTransmitsWithOffsets) {
  RdHarness h;
  h.rd.send_segment(0, seg_bytes(100, 1));
  h.rd.send_segment(100, seg_bytes(100, 2));
  ASSERT_EQ(h.wire.size(), 2u);
  EXPECT_EQ(h.wire[0].rd.seq_offset, 0u);
  EXPECT_EQ(h.wire[1].rd.seq_offset, 100u);
  EXPECT_EQ(h.rd.highest_sent(), 200u);
  EXPECT_FALSE(h.rd.all_acked());
}

TEST(Rd, CumulativeAckAdvancesAndFeedsBack) {
  RdHarness h;
  h.rd.send_segment(0, seg_bytes(100, 1));
  h.rd.send_segment(100, seg_bytes(100, 2));
  h.rd.on_data_segment(h.ack(200));
  EXPECT_EQ(h.rd.acked(), 200u);
  EXPECT_TRUE(h.rd.all_acked());
  ASSERT_EQ(h.feedback.size(), 1u);
  EXPECT_EQ(h.feedback[0].acked_through, 200u);
  EXPECT_EQ(h.feedback[0].bytes_newly_acked, 200u);
  ASSERT_TRUE(h.feedback[0].rtt.has_value());
}

TEST(Rd, TimeoutRetransmitsFirstOutstanding) {
  RdHarness h;
  h.rd.send_segment(0, seg_bytes(100, 1));
  h.rd.send_segment(100, seg_bytes(100, 2));
  h.run_for(Duration::millis(15));
  ASSERT_GE(h.wire.size(), 3u);
  EXPECT_EQ(h.wire[2].rd.seq_offset, 0u);  // the oldest one
  ASSERT_GE(h.losses.size(), 1u);
  EXPECT_EQ(h.losses[0], LossKind::kTimeout);
  EXPECT_EQ(h.rd.stats().timeout_retransmits, 1u);
}

TEST(Rd, RtoBacksOffExponentiallyThenPeerDead) {
  RdHarness h;
  h.rd.send_segment(0, seg_bytes(10, 1));
  h.run_for(Duration::seconds(5.0));
  EXPECT_TRUE(h.peer_dead);
  // 1 original + max_retransmits timeout attempts.
  EXPECT_EQ(h.rd.stats().timeout_retransmits, 4u);
}

TEST(Rd, ProgressResetsRtoBackoff) {
  RdHarness h;
  h.rd.send_segment(0, seg_bytes(10, 1));
  // Let the RTO back off a couple of times.
  h.run_for(Duration::millis(40));
  const Duration backed_off = h.rd.current_rto();
  EXPECT_GT(backed_off, Duration::millis(15));
  h.rd.on_data_segment(h.ack(10));
  EXPECT_LE(h.rd.current_rto(), RdHarness::fast_config().initial_rto);
  EXPECT_FALSE(h.peer_dead);
}

TEST(Rd, KarnRuleSkipsRetransmittedRttSamples) {
  RdHarness h;
  h.rd.send_segment(0, seg_bytes(10, 1));
  h.run_for(Duration::millis(15));  // forces a retransmission
  h.rd.on_data_segment(h.ack(10));
  ASSERT_EQ(h.feedback.size(), 1u);
  EXPECT_FALSE(h.feedback[0].rtt.has_value());
}

TEST(Rd, TripleDupAckTriggersFastRetransmitOnce) {
  RdHarness h;
  for (int i = 0; i < 5; ++i) {
    h.rd.send_segment(static_cast<std::uint64_t>(i) * 100,
                      seg_bytes(100, static_cast<std::uint8_t>(i)));
  }
  const auto wire_before = h.wire.size();
  for (int d = 0; d < 3; ++d) h.rd.on_data_segment(h.ack(0));
  EXPECT_EQ(h.rd.stats().fast_retransmits, 1u);
  ASSERT_EQ(h.wire.size(), wire_before + 1);
  EXPECT_EQ(h.wire.back().rd.seq_offset, 0u);
  ASSERT_EQ(h.losses.size(), 1u);
  EXPECT_EQ(h.losses[0], LossKind::kFastRetransmit);
  // More duplicates inside the same episode must not refire immediately
  // (hole pacing is per-RTT).
  for (int d = 0; d < 6; ++d) h.rd.on_data_segment(h.ack(0));
  EXPECT_EQ(h.losses.size(), 1u);
}

TEST(Rd, SackMarksSegmentsAndSparesThemFromTimeout) {
  RdHarness h;
  for (int i = 0; i < 3; ++i) {
    h.rd.send_segment(static_cast<std::uint64_t>(i) * 100,
                      seg_bytes(100, static_cast<std::uint8_t>(i)));
  }
  // Peer got segments 1 and 2, missing 0.
  h.rd.on_data_segment(h.ack(0, {{100, 300}}));
  EXPECT_EQ(h.rd.stats().sacked_segments_spared, 2u);
  const auto wire_before = h.wire.size();
  h.run_for(Duration::millis(15));  // RTO fires
  ASSERT_EQ(h.wire.size(), wire_before + 1);
  EXPECT_EQ(h.wire.back().rd.seq_offset, 0u);  // only the hole, not 100/200
}

TEST(Rd, SackBytesCountedOnceInFeedback) {
  RdHarness h;
  h.rd.send_segment(0, seg_bytes(100, 1));
  h.rd.send_segment(100, seg_bytes(100, 2));
  h.rd.on_data_segment(h.ack(0, {{100, 200}}));  // SACK the second
  ASSERT_EQ(h.feedback.size(), 1u);
  EXPECT_EQ(h.feedback[0].bytes_newly_acked, 100u);
  h.rd.on_data_segment(h.ack(200));  // now cumulative
  ASSERT_EQ(h.feedback.size(), 2u);
  // Only the first segment is new; the SACKed one was already credited.
  EXPECT_EQ(h.feedback[1].bytes_newly_acked, 100u);
}

TEST(Rd, PeerWindowAndEcnPropagate) {
  RdHarness h;
  h.rd.send_segment(0, seg_bytes(10, 1));
  SublayeredSegment a = h.ack(10);
  a.osr.recv_window = 4321;
  a.osr.ecn_echo = true;
  h.rd.on_data_segment(a);
  ASSERT_EQ(h.feedback.size(), 1u);
  EXPECT_EQ(h.feedback[0].peer_recv_window, 4321u);
  EXPECT_TRUE(h.feedback[0].ecn_echo);
}

TEST(Rd, TailProbeFiresBeforeRtoWithoutCongestionVerdict) {
  RdHarness h;
  // Establish an RTT estimate first (10 ms round trip).
  h.rd.send_segment(0, seg_bytes(10, 1));
  h.run_for(Duration::millis(2));
  h.rd.on_data_segment(h.ack(10));
  // Now a tail segment whose ack never comes.
  h.rd.send_segment(10, seg_bytes(10, 2));
  const auto wire_before = h.wire.size();
  h.run_for(Duration::millis(5));  // ~1.5 * srtt < rto
  EXPECT_EQ(h.rd.stats().tail_probes, 1u);
  EXPECT_EQ(h.rd.stats().timeout_retransmits, 0u);
  EXPECT_TRUE(h.losses.empty());  // a probe is not a congestion signal
  EXPECT_EQ(h.wire.size(), wire_before + 1);
  // The RTO backstop still fires if the probe goes unanswered too.
  h.run_for(Duration::millis(60));
  EXPECT_GE(h.rd.stats().timeout_retransmits, 1u);
}

TEST(Rd, TailProbeCanBeDisabled) {
  RdConfig config = RdHarness::fast_config();
  config.enable_tail_probe = false;
  RdHarness h(config);
  h.rd.send_segment(0, seg_bytes(10, 1));
  h.run_for(Duration::millis(2));
  h.rd.on_data_segment(h.ack(10));
  h.rd.send_segment(10, seg_bytes(10, 2));
  h.run_for(Duration::millis(8));
  EXPECT_EQ(h.rd.stats().tail_probes, 0u);
}

// ---- receiver side -----------------------------------------------------------

TEST(Rd, DeliversNewBytesExactlyOnce) {
  RdHarness h;
  h.rd.on_data_segment(h.data(0, seg_bytes(100, 7)));
  EXPECT_EQ(h.deliveries, 1);
  EXPECT_EQ(h.rd.rcv_next(), 100u);
  // Exact duplicate: nothing delivered, but re-acked.
  const auto acks_before = h.rd.stats().acks_sent;
  h.rd.on_data_segment(h.data(0, seg_bytes(100, 7)));
  EXPECT_EQ(h.deliveries, 1);
  EXPECT_EQ(h.rd.stats().acks_sent, acks_before + 1);
  EXPECT_EQ(h.rd.stats().duplicate_bytes_dropped, 100u);
}

TEST(Rd, OutOfOrderDeliveredImmediatelyButFrontierWaits) {
  // The paper's point: RD may deliver out of order; OSR reorders.
  RdHarness h;
  h.rd.on_data_segment(h.data(100, seg_bytes(100, 2)));
  EXPECT_EQ(h.deliveries, 1);
  EXPECT_TRUE(h.delivered.contains(100));
  EXPECT_EQ(h.rd.rcv_next(), 0u);  // cumulative frontier still at 0
  h.rd.on_data_segment(h.data(0, seg_bytes(100, 1)));
  EXPECT_EQ(h.deliveries, 2);
  EXPECT_EQ(h.rd.rcv_next(), 200u);
}

TEST(Rd, OverlappingSegmentDeliversOnlyTheGap) {
  RdHarness h;
  h.rd.on_data_segment(h.data(0, seg_bytes(150, 1)));
  // Overlaps [100,150), new range [150,250).
  h.rd.on_data_segment(h.data(100, seg_bytes(150, 2)));
  EXPECT_EQ(h.rd.rcv_next(), 250u);
  ASSERT_TRUE(h.delivered.contains(150));
  EXPECT_EQ(h.delivered[150].size(), 100u);
  EXPECT_EQ(h.rd.stats().duplicate_bytes_dropped, 50u);
}

TEST(Rd, SegmentBridgingTwoRangesDeliversMiddle) {
  RdHarness h;
  h.rd.on_data_segment(h.data(0, seg_bytes(100, 1)));
  h.rd.on_data_segment(h.data(200, seg_bytes(100, 3)));
  // Bridge covers [50, 250): only [100, 200) is new.
  h.rd.on_data_segment(h.data(50, seg_bytes(200, 2)));
  EXPECT_EQ(h.rd.rcv_next(), 300u);
  ASSERT_TRUE(h.delivered.contains(100));
  EXPECT_EQ(h.delivered[100].size(), 100u);
}

TEST(Rd, AcksCarrySackForHoles) {
  RdHarness h;
  h.rd.on_data_segment(h.data(100, seg_bytes(100, 2)));
  h.rd.on_data_segment(h.data(300, seg_bytes(100, 4)));
  // The acks emitted must describe both islands.
  ASSERT_FALSE(h.wire.empty());
  const auto& last_ack = h.wire.back();
  EXPECT_EQ(last_ack.rd.ack_offset, 0u);
  ASSERT_EQ(last_ack.rd.sack.size(), 2u);
  EXPECT_EQ(last_ack.rd.sack[0], (SackBlock{100, 200}));
  EXPECT_EQ(last_ack.rd.sack[1], (SackBlock{300, 400}));
}

TEST(Rd, PureAcksAreNotAckedBack) {
  RdHarness h;
  const auto before = h.rd.stats().acks_sent;
  h.rd.on_data_segment(h.ack(0));
  EXPECT_EQ(h.rd.stats().acks_sent, before);  // no ack war
}

TEST(Rd, EmptySegmentListStatsCoherent) {
  RdHarness h;
  h.rd.send_segment(0, seg_bytes(500, 1));
  EXPECT_EQ(h.rd.stats().segments_sent, 1u);
  EXPECT_EQ(h.rd.stats().bytes_sent, 500u);
  h.rd.on_data_segment(h.ack(500));
  EXPECT_EQ(h.rd.stats().acks_received, 1u);
}

}  // namespace
}  // namespace sublayer::transport
