// End-to-end tests of the sublayered TCP between two hosts across the
// simulated network: the paper's headline property ("the byte stream
// received is the same as the sent byte stream") under a matrix of
// impairments, congestion controllers, and ISN providers.
#include <gtest/gtest.h>

#include "tests/transport/harness.hpp"

namespace sublayer::transport {
namespace {

using testing::pattern_bytes;
using testing::StreamLog;
using testing::TwoNodeNet;

struct E2eParam {
  std::string label;
  double loss = 0;
  double duplicate = 0;
  Duration jitter = Duration::nanos(0);
  std::string cc = "reno";
  IsnKind isn = IsnKind::kRfc1948;
  std::size_t bytes = 200000;
};

class SublayeredE2e : public ::testing::TestWithParam<E2eParam> {};

TEST_P(SublayeredE2e, ByteStreamIntegrityAndCleanClose) {
  const auto& p = GetParam();
  sim::LinkConfig link;
  link.loss_rate = p.loss;
  link.duplicate_rate = p.duplicate;
  link.jitter = p.jitter;
  link.propagation_delay = Duration::millis(2);
  link.bandwidth_bps = 50e6;
  TwoNodeNet net(link);

  HostConfig config;
  config.connection.osr.cc = p.cc;
  config.isn = p.isn;
  TcpHost client(net.sim, net.router0(), 1, config);
  TcpHost server(net.sim, net.router1(), 1, config);

  StreamLog client_log;
  StreamLog server_log;
  Connection* server_conn = nullptr;
  server.listen(80, [&](Connection& c) {
    server_conn = &c;
    c.set_app_callbacks(server_log.callbacks());
  });

  Connection& conn = client.connect(server.addr(), 80);
  conn.set_app_callbacks(client_log.callbacks());

  const Bytes payload = pattern_bytes(p.bytes);
  conn.send(payload);
  conn.close();

  // Server echoes a short response then closes once it has everything.
  net.sim.run(4000000);
  ASSERT_TRUE(client_log.established) << p.label;
  ASSERT_TRUE(server_log.established) << p.label;
  ASSERT_NE(server_conn, nullptr);
  EXPECT_TRUE(server_log.stream_ended) << p.label;
  ASSERT_EQ(server_log.received.size(), payload.size()) << p.label;
  EXPECT_EQ(server_log.received, payload) << p.label;

  server_conn->send(bytes_from_string("ok"));
  server_conn->close();
  net.sim.run(4000000);
  EXPECT_EQ(string_from_bytes(client_log.received), "ok") << p.label;
  EXPECT_TRUE(client_log.stream_ended) << p.label;
  EXPECT_TRUE(client_log.closed) << p.label;
  EXPECT_TRUE(server_log.closed) << p.label;

  // Hosts reap closed connections.
  net.sim.run(1000);
  EXPECT_EQ(client.live_connections(), 0u) << p.label;
  EXPECT_EQ(server.live_connections(), 0u) << p.label;
}

std::vector<E2eParam> e2e_matrix() {
  std::vector<E2eParam> out;
  out.push_back({"clean"});
  out.push_back({"lossy_1pct", 0.01});
  out.push_back({"lossy_5pct", 0.05});
  out.push_back({"dup_10pct", 0.0, 0.1});
  out.push_back({"reorder", 0.0, 0.0, Duration::millis(3)});
  out.push_back({"loss_dup_reorder", 0.02, 0.05, Duration::millis(2)});
  for (const char* cc : {"cubic", "aimd", "rate"}) {
    E2eParam p;
    p.label = std::string("cc_") + cc;
    p.loss = 0.02;
    p.cc = cc;
    out.push_back(p);
  }
  for (const auto& [kind, name] :
       {std::pair{IsnKind::kRfc793, "isn793"},
        std::pair{IsnKind::kWatson, "isnwatson"}}) {
    E2eParam p;
    p.label = name;
    p.isn = kind;
    p.bytes = 50000;
    out.push_back(p);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Matrix, SublayeredE2e,
                         ::testing::ValuesIn(e2e_matrix()),
                         [](const auto& info) { return info.param.label; });

TEST(SublayeredTcp, BidirectionalSimultaneousTransfer) {
  TwoNodeNet net;
  TcpHost a(net.sim, net.router0(), 1);
  TcpHost b(net.sim, net.router1(), 1);

  StreamLog log_a;
  StreamLog log_b;
  const Bytes data_ab = pattern_bytes(80000, 1);
  const Bytes data_ba = pattern_bytes(120000, 2);

  b.listen(9000, [&](Connection& c) {
    c.set_app_callbacks(log_b.callbacks());
    c.send(data_ba);
    c.close();
  });
  Connection& conn = a.connect(b.addr(), 9000);
  conn.set_app_callbacks(log_a.callbacks());
  conn.send(data_ab);
  conn.close();

  net.sim.run(4000000);
  EXPECT_EQ(log_b.received, data_ab);
  EXPECT_EQ(log_a.received, data_ba);
  EXPECT_TRUE(log_a.closed);
  EXPECT_TRUE(log_b.closed);
}

TEST(SublayeredTcp, ConnectionToClosedPortIsReset) {
  TwoNodeNet net;
  TcpHost a(net.sim, net.router0(), 1);
  TcpHost b(net.sim, net.router1(), 1);  // not listening

  StreamLog log;
  Connection& conn = a.connect(b.addr(), 4444);
  conn.set_app_callbacks(log.callbacks());
  net.sim.run(1000000);
  EXPECT_FALSE(log.established);
  EXPECT_FALSE(log.reset_reason.empty());
  EXPECT_EQ(a.live_connections(), 0u);
}

TEST(SublayeredTcp, HandshakeSurvivesSynLoss) {
  sim::LinkConfig link;
  TwoNodeNet net(link);
  // Force the first SYN (and its retry) to be lost, then heal the path.
  HostConfig config;
  TcpHost a(net.sim, net.router0(), 1, config);
  TcpHost b(net.sim, net.router1(), 1, config);

  StreamLog log;
  b.listen(80, [](Connection&) {});

  net.net.fail_link(net.link_index);
  Connection& conn = a.connect(b.addr(), 80);
  conn.set_app_callbacks(log.callbacks());
  net.sim.run_until(TimePoint::from_ns(net.sim.now().ns() +
                                       Duration::millis(300).ns()));
  EXPECT_FALSE(log.established);
  net.net.restore_link(net.link_index);
  net.sim.run(1000000);
  EXPECT_TRUE(log.established);
}

TEST(SublayeredTcp, HandshakeGivesUpOnDeadPeer) {
  TwoNodeNet net;
  TcpHost a(net.sim, net.router0(), 1);
  TcpHost b(net.sim, net.router1(), 1);
  b.listen(80, [](Connection&) {});

  net.net.fail_link(net.link_index);
  StreamLog log;
  Connection& conn = a.connect(b.addr(), 80);
  conn.set_app_callbacks(log.callbacks());
  net.sim.run(2000000);
  EXPECT_FALSE(log.established);
  EXPECT_FALSE(log.reset_reason.empty());
}

TEST(SublayeredTcp, FlowControlStallsAndResumes) {
  TwoNodeNet net;
  HostConfig server_config;
  server_config.connection.osr.manual_consume = true;
  server_config.connection.osr.recv_buffer = 16000;
  TcpHost client(net.sim, net.router0(), 1);
  TcpHost server(net.sim, net.router1(), 1, server_config);

  StreamLog server_log;
  Connection* server_conn = nullptr;
  server.listen(80, [&](Connection& c) {
    server_conn = &c;
    c.set_app_callbacks(server_log.callbacks());
  });
  Connection& conn = client.connect(server.addr(), 80);
  StreamLog client_log;
  conn.set_app_callbacks(client_log.callbacks());

  const Bytes payload = pattern_bytes(100000);
  conn.send(payload);
  net.sim.run(4000000);

  // Receiver never consumed: the transfer must stall well short of done,
  // bounded by the advertised buffer.
  EXPECT_LT(server_log.received.size(), payload.size());
  EXPECT_LE(server_log.received.size(), 16000u + 2400u);
  EXPECT_GT(conn.osr().stats().flow_control_stalls, 0u);

  // Consume everything as it arrives from now on: transfer completes.
  ASSERT_NE(server_conn, nullptr);
  std::uint64_t consumed = server_log.received.size();
  server_conn->consume(consumed);
  for (int rounds = 0; rounds < 200; ++rounds) {
    net.sim.run(200000);
    if (server_log.received.size() > consumed) {
      server_conn->consume(server_log.received.size() - consumed);
      consumed = server_log.received.size();
    }
    if (server_log.received.size() == payload.size()) break;
  }
  EXPECT_EQ(server_log.received, payload);
}

TEST(SublayeredTcp, SackAvoidsSpuriousRetransmissions) {
  sim::LinkConfig link;
  link.loss_rate = 0.03;
  link.propagation_delay = Duration::millis(5);
  TwoNodeNet net(link);
  TcpHost a(net.sim, net.router0(), 1);
  TcpHost b(net.sim, net.router1(), 1);

  StreamLog log;
  b.listen(80, [&](Connection& c) { c.set_app_callbacks(log.callbacks()); });
  Connection& conn = a.connect(b.addr(), 80);
  StreamLog client_log;
  conn.set_app_callbacks(client_log.callbacks());
  const Bytes payload = pattern_bytes(300000);
  conn.send(payload);
  net.sim.run(6000000);
  EXPECT_EQ(log.received, payload);
  // SACK must have spared at least some segments from retransmission.
  EXPECT_GT(conn.rd().stats().sacked_segments_spared, 0u);
}

TEST(SublayeredTcp, StatsAreCoherent) {
  TwoNodeNet net;
  TcpHost a(net.sim, net.router0(), 1);
  TcpHost b(net.sim, net.router1(), 1);
  StreamLog log;
  b.listen(80, [&](Connection& c) { c.set_app_callbacks(log.callbacks()); });
  Connection& conn = a.connect(b.addr(), 80);
  const Bytes payload = pattern_bytes(60000);
  conn.send(payload);
  net.sim.run(2000000);
  const auto& rd = conn.rd().stats();
  const auto& osr = conn.osr().stats();
  EXPECT_EQ(osr.bytes_from_app, payload.size());
  EXPECT_EQ(rd.bytes_sent, payload.size());  // no loss -> no retransmits
  EXPECT_EQ(rd.fast_retransmits + rd.timeout_retransmits, 0u);
  EXPECT_EQ(conn.cm().stats().syn_retransmits, 0u);
}

}  // namespace
}  // namespace sublayer::transport
