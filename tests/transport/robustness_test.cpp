// Failure injection and adversarial-input robustness: hosts fed garbage,
// truncated segments, blind RSTs, and handshake-time chaos must neither
// crash nor corrupt established connections.
#include <gtest/gtest.h>

#include "tests/transport/harness.hpp"

namespace sublayer::transport {
namespace {

using testing::pattern_bytes;
using testing::StreamLog;
using testing::TwoNodeNet;

/// Sends raw bytes as an IP datagram from router r0's "attacker host".
void inject_raw(TwoNodeNet& net, netlayer::IpAddr target,
                netlayer::IpProto proto, Bytes payload) {
  netlayer::IpHeader h;
  h.protocol = proto;
  h.src = netlayer::host_addr(net.r0, 99);  // spoofed-ish source
  h.dst = target;
  net.router0().send_datagram(h, payload);
}

TEST(Robustness, GarbageDatagramsDontCrashSublayeredHost) {
  TwoNodeNet net;
  TcpHost server(net.sim, net.router1(), 1);
  server.listen(80, [](Connection&) {});
  Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    inject_raw(net, server.addr(), netlayer::IpProto::kSublayered,
               rng.next_bytes(rng.next_below(80)));
  }
  net.sim.run(500000);
  EXPECT_EQ(server.live_connections(), 0u);
}

TEST(Robustness, GarbageDatagramsDontCrashMonoHost) {
  TwoNodeNet net;
  MonoHost server(net.sim, net.router1(), 1);
  server.listen(80, [](MonoConnection&) {});
  Rng rng(321);
  for (int i = 0; i < 500; ++i) {
    inject_raw(net, server.addr(), netlayer::IpProto::kTcp,
               rng.next_bytes(rng.next_below(80)));
  }
  net.sim.run(500000);
  EXPECT_EQ(server.live_connections(), 0u);
}

TEST(Robustness, GarbageDoesNotDisturbEstablishedTransfer) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1);
  TcpHost server(net.sim, net.router1(), 1);
  StreamLog log;
  server.listen(80, [&](Connection& c) { c.set_app_callbacks(log.callbacks()); });
  auto& conn = client.connect(server.addr(), 80);
  const Bytes payload = pattern_bytes(80000);
  conn.send(payload);

  // Interleave junk while the transfer runs.
  Rng rng(55);
  for (int burst = 0; burst < 20; ++burst) {
    net.sim.run(20000);
    for (int i = 0; i < 20; ++i) {
      inject_raw(net, server.addr(), netlayer::IpProto::kSublayered,
                 rng.next_bytes(rng.next_below(60)));
    }
  }
  net.sim.run(2'000'000);
  EXPECT_EQ(log.received, payload);
}

TEST(Robustness, BlindRstWithWrongIsnsDoesNotKillConnection) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1);
  TcpHost server(net.sim, net.router1(), 1);
  StreamLog log;
  Connection* server_conn = nullptr;
  server.listen(80, [&](Connection& c) {
    server_conn = &c;
    c.set_app_callbacks(log.callbacks());
  });
  auto& conn = client.connect(server.addr(), 80);
  net.sim.run(100000);
  ASSERT_NE(server_conn, nullptr);
  ASSERT_EQ(conn.state(), CmState::kEstablished);

  // Forge RSTs at the server's tuple with guessed (wrong) ISNs.
  for (std::uint32_t guess = 0; guess < 32; ++guess) {
    SublayeredSegment rst;
    rst.cm.kind = CmKind::kRst;
    rst.cm.isn_local = guess * 1000003u;
    rst.cm.isn_peer = guess * 7919u;
    rst.dm.src_port = conn.tuple().local_port;
    rst.dm.dst_port = 80;
    inject_raw(net, server.addr(), netlayer::IpProto::kSublayered,
               rst.encode());
  }
  net.sim.run(200000);
  // CM's incarnation validation (the RFC 1948 motivation) holds.
  EXPECT_EQ(server_conn->state(), CmState::kEstablished);
  conn.send(bytes_from_string("still here"));
  net.sim.run(200000);
  EXPECT_EQ(string_from_bytes(log.received), "still here");
}

TEST(Robustness, SynFloodLeavesServerFunctional) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1);
  TcpHost server(net.sim, net.router1(), 1);
  StreamLog log;
  server.listen(80, [&](Connection& c) { c.set_app_callbacks(log.callbacks()); });

  const auto run_for = [&](Duration d) {
    net.sim.run_until(TimePoint::from_ns(net.sim.now().ns() + d.ns()));
  };

  // A burst of SYNs from distinct fake ports; none completes a handshake.
  for (std::uint16_t port = 2000; port < 2100; ++port) {
    SublayeredSegment syn;
    syn.cm.kind = CmKind::kSyn;
    syn.cm.isn_local = port;
    syn.dm.src_port = port;
    syn.dm.dst_port = 80;
    inject_raw(net, server.addr(), netlayer::IpProto::kSublayered,
               syn.encode());
  }
  run_for(Duration::millis(50));
  EXPECT_GE(server.live_connections(), 90u);  // half-open, pending timeout

  // A real client still gets through.
  auto& conn = client.connect(server.addr(), 80);
  conn.send(bytes_from_string("legit"));
  run_for(Duration::millis(300));
  EXPECT_EQ(string_from_bytes(log.received), "legit");

  // The half-open connections eventually exhaust their handshake retries
  // (8 doublings of the 200 ms RTO ~ 102 s) and are reaped.
  run_for(Duration::seconds(180.0));
  EXPECT_LE(server.live_connections(), 1u);
}

TEST(Robustness, TruncatedShimSegmentsCounted) {
  TwoNodeNet net;
  HostConfig hc;
  hc.wire_rfc793 = true;
  TcpHost server(net.sim, net.router1(), 1, hc);
  server.listen(80, [](Connection&) {});
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    inject_raw(net, server.addr(), netlayer::IpProto::kTcp,
               rng.next_bytes(rng.next_below(19)));  // all < min header
  }
  net.sim.run(200000);
  EXPECT_EQ(server.shim().stats().untranslatable, 200u);
}

TEST(Robustness, HalfOpenPeerVanishesMidTransfer) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1);
  TcpHost server(net.sim, net.router1(), 1);
  StreamLog client_log;
  server.listen(80, [](Connection&) {});
  auto& conn = client.connect(server.addr(), 80);
  conn.set_app_callbacks(client_log.callbacks());
  net.sim.run(100000);
  ASSERT_EQ(conn.state(), CmState::kEstablished);

  net.net.fail_link(net.link_index);
  conn.send(pattern_bytes(50000));
  net.sim.run_until(TimePoint::from_ns(net.sim.now().ns() +
                                       Duration::seconds(120.0).ns()));
  // RD's retransmission budget expires and CM aborts the connection.
  EXPECT_FALSE(client_log.reset_reason.empty());
  net.sim.run(1000);
  EXPECT_EQ(client.live_connections(), 0u);
}

}  // namespace
}  // namespace sublayer::transport
