#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "transport/wire/sublayered_header.hpp"
#include "transport/wire/tcp_header.hpp"

namespace sublayer::transport {
namespace {

TEST(SeqArithmetic, ModularComparisons) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_TRUE(seq_lt(0xfffffff0u, 0x10u));  // across the wrap
  EXPECT_FALSE(seq_lt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_le(5, 5));
  EXPECT_TRUE(seq_gt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(seq_ge(5, 5));
}

TEST(TcpHeader, BaseRoundTrip) {
  TcpHeader h;
  h.src_port = 1234;
  h.dst_port = 80;
  h.seq = 0xdeadbeef;
  h.ack = 0x01020304;
  h.flag_ack = true;
  h.flag_psh = true;
  h.window = 4321;
  const Bytes payload = bytes_from_string("hello tcp");
  const auto parsed = decode_tcp_segment(h.encode(payload));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.src_port, 1234);
  EXPECT_EQ(parsed->header.dst_port, 80);
  EXPECT_EQ(parsed->header.seq, 0xdeadbeefu);
  EXPECT_EQ(parsed->header.ack, 0x01020304u);
  EXPECT_TRUE(parsed->header.flag_ack);
  EXPECT_TRUE(parsed->header.flag_psh);
  EXPECT_FALSE(parsed->header.flag_syn);
  EXPECT_EQ(parsed->header.window, 4321);
  EXPECT_EQ(string_from_bytes(parsed->payload), "hello tcp");
}

TEST(TcpHeader, AllFlagsRoundTrip) {
  TcpHeader h;
  h.flag_fin = h.flag_syn = h.flag_rst = h.flag_psh = h.flag_ack =
      h.flag_urg = h.flag_ece = h.flag_cwr = true;
  const auto parsed = decode_tcp_segment(h.encode({}));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->header.flag_fin);
  EXPECT_TRUE(parsed->header.flag_syn);
  EXPECT_TRUE(parsed->header.flag_rst);
  EXPECT_TRUE(parsed->header.flag_psh);
  EXPECT_TRUE(parsed->header.flag_ack);
  EXPECT_TRUE(parsed->header.flag_urg);
  EXPECT_TRUE(parsed->header.flag_ece);
  EXPECT_TRUE(parsed->header.flag_cwr);
}

TEST(TcpHeader, MssOptionRoundTrip) {
  TcpHeader h;
  h.flag_syn = true;
  h.mss = 1460;
  const auto parsed = decode_tcp_segment(h.encode({}));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->header.mss.has_value());
  EXPECT_EQ(*parsed->header.mss, 1460);
}

TEST(TcpHeader, SackOptionRoundTrip) {
  TcpHeader h;
  h.flag_ack = true;
  h.sack = {{100, 200}, {300, 400}, {500, 600}};
  const auto parsed = decode_tcp_segment(h.encode(bytes_from_string("x")));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->header.sack.size(), 3u);
  EXPECT_EQ(parsed->header.sack[1], (SackBlock{300, 400}));
  EXPECT_EQ(string_from_bytes(parsed->payload), "x");
}

TEST(TcpHeader, HeaderLenIsFourByteAligned) {
  TcpHeader h;
  h.sack = {{1, 2}};
  const Bytes raw = h.encode({});
  EXPECT_EQ(raw.size() % 4, 0u);
  EXPECT_GT(raw.size(), TcpHeader::kBaseSize);
}

TEST(TcpHeader, RejectsTruncated) {
  TcpHeader h;
  Bytes raw = h.encode({});
  raw.resize(10);
  EXPECT_FALSE(decode_tcp_segment(raw).has_value());
  EXPECT_FALSE(decode_tcp_segment(Bytes{}).has_value());
}

TEST(TcpHeader, RejectsBogusDataOffset) {
  TcpHeader h;
  Bytes raw = h.encode({});
  raw[12] = 0xf0;  // data offset 15 words = 60 bytes > segment size
  EXPECT_FALSE(decode_tcp_segment(raw).has_value());
}

TEST(TcpHeader, UnknownOptionSkipped) {
  // Hand-craft a header with a 4-byte unknown option (kind 99).
  TcpHeader h;
  Bytes raw = h.encode({});
  Bytes with_opt(raw.begin(), raw.begin() + 20);
  with_opt.push_back(99);
  with_opt.push_back(4);
  with_opt.push_back(0xab);
  with_opt.push_back(0xcd);
  with_opt[12] = static_cast<std::uint8_t>((24 / 4) << 4);
  const auto parsed = decode_tcp_segment(with_opt);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(SublayeredSegment, DataRoundTrip) {
  SublayeredSegment s;
  s.dm = {1111, 2222};
  s.cm.kind = CmKind::kData;
  s.cm.isn_local = 0xaaaa0000;
  s.cm.isn_peer = 0xbbbb0000;
  s.rd.seq_offset = 4800;
  s.rd.ack_offset = 2400;
  s.rd.sack = {{6000, 7200}};
  s.osr.recv_window = 123456;
  s.osr.ecn_echo = true;
  s.payload = bytes_from_string("sublayered payload");

  const auto back = SublayeredSegment::decode(s.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dm.src_port, 1111);
  EXPECT_EQ(back->dm.dst_port, 2222);
  EXPECT_EQ(back->cm.kind, CmKind::kData);
  EXPECT_EQ(back->cm.isn_local, 0xaaaa0000u);
  EXPECT_EQ(back->cm.isn_peer, 0xbbbb0000u);
  EXPECT_EQ(back->rd.seq_offset, 4800u);
  EXPECT_EQ(back->rd.ack_offset, 2400u);
  ASSERT_EQ(back->rd.sack.size(), 1u);
  EXPECT_EQ(back->rd.sack[0], (SackBlock{6000, 7200}));
  EXPECT_EQ(back->osr.recv_window, 123456u);
  EXPECT_TRUE(back->osr.ecn_echo);
  EXPECT_EQ(string_from_bytes(back->payload), "sublayered payload");
}

TEST(SublayeredSegment, ControlKindsRoundTrip) {
  for (const CmKind kind : {CmKind::kSyn, CmKind::kSynAck, CmKind::kFin,
                            CmKind::kFinAck, CmKind::kRst}) {
    SublayeredSegment s;
    s.dm = {10, 20};
    s.cm.kind = kind;
    s.cm.isn_local = 42;
    s.cm.isn_peer = 43;
    s.cm.fin_offset = kind == CmKind::kFin ? 9999 : 0;
    const auto back = SublayeredSegment::decode(s.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->cm.kind, kind);
    EXPECT_EQ(back->cm.isn_local, 42u);
    if (kind == CmKind::kFin) {
      EXPECT_EQ(back->cm.fin_offset, 9999u);
    }
  }
}

TEST(SublayeredSegment, ControlSegmentsCarryNoPayload) {
  SublayeredSegment s;
  s.cm.kind = CmKind::kSyn;
  Bytes raw = s.encode();
  raw.push_back(0x55);  // junk after a control segment
  EXPECT_FALSE(SublayeredSegment::decode(raw).has_value());
}

TEST(SublayeredSegment, RejectsMalformed) {
  EXPECT_FALSE(SublayeredSegment::decode(Bytes{}).has_value());
  EXPECT_FALSE(SublayeredSegment::decode(Bytes{1, 2, 3}).has_value());
  SublayeredSegment s;
  s.cm.kind = CmKind::kData;
  Bytes raw = s.encode();
  raw[4] = 99;  // invalid kind
  EXPECT_FALSE(SublayeredSegment::decode(raw).has_value());
}

TEST(SublayeredSegment, HeaderBitsArePartitionedBySublayer) {
  // T3 structural check: flipping DM's bits never changes what CM/RD/OSR
  // decode, and vice versa — each sublayer's fields occupy disjoint bytes.
  SublayeredSegment s;
  s.cm.kind = CmKind::kData;
  s.dm = {1, 2};
  s.rd.seq_offset = 77;
  s.osr.recv_window = 88;
  Bytes raw = s.encode();
  Bytes tweaked = raw;
  tweaked[0] ^= 0xff;  // DM src_port byte
  const auto a = SublayeredSegment::decode(raw);
  const auto b = SublayeredSegment::decode(tweaked);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->dm.src_port, b->dm.src_port);
  EXPECT_EQ(a->cm.isn_local, b->cm.isn_local);
  EXPECT_EQ(a->rd.seq_offset, b->rd.seq_offset);
  EXPECT_EQ(a->osr.recv_window, b->osr.recv_window);
}

TEST(SublayeredSegment, FuzzDecodeNeverCrashes) {
  Rng rng(2025);
  for (int t = 0; t < 2000; ++t) {
    const Bytes junk = rng.next_bytes(rng.next_below(64));
    (void)SublayeredSegment::decode(junk);  // must not throw or crash
    (void)decode_tcp_segment(junk);
  }
  SUCCEED();
}

}  // namespace
}  // namespace sublayer::transport
