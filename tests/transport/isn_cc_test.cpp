#include <gtest/gtest.h>

#include <set>

#include "transport/sublayered/cc.hpp"
#include "transport/sublayered/isn.hpp"

namespace sublayer::transport {
namespace {

FourTuple tuple_a() { return FourTuple{0x0a000001, 1000, 0x0a000002, 80}; }
FourTuple tuple_b() { return FourTuple{0x0a000001, 1001, 0x0a000002, 80}; }

TEST(Isn, Rfc793TracksClock) {
  sim::Simulator sim;
  const auto isn = make_rfc793_isn(sim);
  const std::uint32_t a = isn->isn(tuple_a());
  sim.schedule(Duration::millis(4), [] {});
  sim.run();
  const std::uint32_t b = isn->isn(tuple_a());
  // 4 ms at one tick per 4 us = 1000 ticks.
  EXPECT_EQ(b - a, 1000u);
}

TEST(Isn, Rfc793IsPredictable_ThatIsThePoint) {
  // Two providers (two hosts) at the same clock produce the same ISN —
  // the predictability weakness RFC 1948 fixes.
  sim::Simulator sim;
  const auto p1 = make_rfc793_isn(sim);
  const auto p2 = make_rfc793_isn(sim);
  EXPECT_EQ(p1->isn(tuple_a()), p2->isn(tuple_b()));
}

TEST(Isn, Rfc1948DependsOnTuple) {
  sim::Simulator sim;
  const auto isn = make_rfc1948_isn(sim, SipHashKey{1, 2});
  EXPECT_NE(isn->isn(tuple_a()), isn->isn(tuple_b()));
}

TEST(Isn, Rfc1948DependsOnKey) {
  sim::Simulator sim;
  const auto k1 = make_rfc1948_isn(sim, SipHashKey{1, 2});
  const auto k2 = make_rfc1948_isn(sim, SipHashKey{1, 3});
  EXPECT_NE(k1->isn(tuple_a()), k2->isn(tuple_a()));
}

TEST(Isn, Rfc1948SameTupleStableAtSameClock) {
  sim::Simulator sim;
  const auto isn = make_rfc1948_isn(sim, SipHashKey{7, 8});
  EXPECT_EQ(isn->isn(tuple_a()), isn->isn(tuple_a()));
}

TEST(Isn, WatsonStrictlyMonotonic) {
  sim::Simulator sim;
  const auto isn = make_watson_isn(sim);
  std::uint32_t prev = isn->isn(tuple_a());
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t next = isn->isn(tuple_a());
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(Isn, AllProvidersDistinctAcrossRapidConnections) {
  sim::Simulator sim;
  for (const IsnKind kind :
       {IsnKind::kRfc1948, IsnKind::kWatson}) {
    const auto isn = make_isn(kind, sim);
    std::set<std::uint32_t> seen;
    for (std::uint16_t port = 1; port <= 200; ++port) {
      FourTuple t = tuple_a();
      t.local_port = port;
      EXPECT_TRUE(seen.insert(isn->isn(t)).second) << isn->name();
    }
  }
}

// ---- Congestion-control algorithms -----------------------------------------

CcConfig cc_config() {
  CcConfig c;
  c.mss = 1000;
  c.initial_cwnd_segments = 4;
  return c;
}

AckEvent ack(std::uint64_t bytes, std::int64_t ms = 0) {
  AckEvent e;
  e.now = TimePoint::from_ns(ms * 1000000);
  e.bytes_newly_acked = bytes;
  e.rtt = Duration::millis(10);
  return e;
}

LossEvent loss(LossKind kind, std::int64_t ms = 0) {
  LossEvent e;
  e.now = TimePoint::from_ns(ms * 1000000);
  e.kind = kind;
  return e;
}

TEST(Reno, SlowStartDoublesPerRtt) {
  const auto cc = make_reno(cc_config());
  const std::uint64_t start = cc->cwnd_bytes();
  // Ack a full window: slow start grows cwnd by the acked amount.
  cc->on_ack(ack(start));
  EXPECT_EQ(cc->cwnd_bytes(), 2 * start);
}

TEST(Reno, FastRetransmitHalves) {
  const auto cc = make_reno(cc_config());
  for (int i = 0; i < 10; ++i) cc->on_ack(ack(4000));
  const std::uint64_t before = cc->cwnd_bytes();
  cc->on_loss(loss(LossKind::kFastRetransmit));
  EXPECT_EQ(cc->cwnd_bytes(), before / 2);
  EXPECT_EQ(cc->ssthresh_bytes(), before / 2);
}

TEST(Reno, TimeoutCollapsesToOneMss) {
  const auto cc = make_reno(cc_config());
  for (int i = 0; i < 10; ++i) cc->on_ack(ack(4000));
  cc->on_loss(loss(LossKind::kTimeout));
  EXPECT_EQ(cc->cwnd_bytes(), 1000u);
}

TEST(Reno, CongestionAvoidanceIsLinear) {
  const auto cc = make_reno(cc_config());
  cc->on_loss(loss(LossKind::kFastRetransmit));  // set a finite ssthresh
  const std::uint64_t base = cc->cwnd_bytes();
  // One window's worth of acks in CA adds about one MSS.
  std::uint64_t acked = 0;
  while (acked < base) {
    cc->on_ack(ack(1000));
    acked += 1000;
  }
  EXPECT_NEAR(static_cast<double>(cc->cwnd_bytes() - base), 1000.0, 1000.0);
  EXPECT_LT(cc->cwnd_bytes(), 2 * base);  // definitely not slow start
}

TEST(Reno, EcnEchoActsLikeLoss) {
  const auto cc = make_reno(cc_config());
  for (int i = 0; i < 10; ++i) cc->on_ack(ack(4000));
  const std::uint64_t before = cc->cwnd_bytes();
  AckEvent marked = ack(1000);
  marked.ecn_echo = true;
  cc->on_ack(marked);
  EXPECT_LT(cc->cwnd_bytes(), before);
}

TEST(Cubic, RecoversTowardWmax) {
  const auto cc = make_cubic(cc_config());
  for (int i = 0; i < 20; ++i) cc->on_ack(ack(4000, i));
  const std::uint64_t wmax = cc->cwnd_bytes();
  cc->on_loss(loss(LossKind::kFastRetransmit, 20));
  const std::uint64_t floor = cc->cwnd_bytes();
  EXPECT_LT(floor, wmax);
  // Ack steadily for "seconds": the cubic function approaches w_max.
  std::uint64_t w = floor;
  for (int ms = 21; ms < 2000; ms += 10) {
    cc->on_ack(ack(4000, ms));
    w = cc->cwnd_bytes();
  }
  EXPECT_GT(w, floor);
  EXPECT_GT(w, wmax * 8 / 10);
}

TEST(Aimd, AdditiveIncreaseMultiplicativeDecrease) {
  CcConfig config = cc_config();
  config.aimd_beta = 0.5;
  const auto cc = make_aimd(config);
  const std::uint64_t base = cc->cwnd_bytes();
  std::uint64_t acked = 0;
  while (acked < base) {
    cc->on_ack(ack(1000));
    acked += 1000;
  }
  EXPECT_GT(cc->cwnd_bytes(), base);
  const std::uint64_t grown = cc->cwnd_bytes();
  cc->on_loss(loss(LossKind::kFastRetransmit));
  EXPECT_EQ(cc->cwnd_bytes(), grown / 2);
}

TEST(RateBased, PacingRateRespondsToLoss) {
  const auto cc = make_rate_based(cc_config());
  ASSERT_TRUE(cc->pacing_bps().has_value());
  const double before = *cc->pacing_bps();
  cc->on_loss(loss(LossKind::kTimeout));
  EXPECT_LT(*cc->pacing_bps(), before);
  const double floored = *cc->pacing_bps();
  for (int i = 0; i < 50; ++i) cc->on_ack(ack(1000));
  EXPECT_GT(*cc->pacing_bps(), floored);
}

TEST(CcFactory, AllNamesResolve) {
  for (const char* name : {"reno", "cubic", "aimd", "rate"}) {
    const auto cc = make_cc(name, cc_config());
    EXPECT_EQ(cc->name(), name);
    EXPECT_GT(cc->cwnd_bytes(), 0u);
  }
  EXPECT_THROW(make_cc("bbr9000", cc_config()), std::invalid_argument);
}

}  // namespace
}  // namespace sublayer::transport
