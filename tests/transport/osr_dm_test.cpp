// Unit tests for the OSR and DM sublayers in isolation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "transport/sublayered/dm.hpp"
#include "transport/sublayered/osr.hpp"

namespace sublayer::transport {
namespace {

// ---- OSR --------------------------------------------------------------------

struct OsrHarness {
  explicit OsrHarness(OsrConfig config = default_config())
      : osr(sim, config,
            Osr::Callbacks{
                [this](std::uint64_t offset, Bytes data) {
                  released.emplace_back(offset, std::move(data));
                },
                [this](Bytes data) {
                  app.insert(app.end(), data.begin(), data.end());
                },
                [this] { stream_ended = true; },
                [this] { ++window_updates; },
            }) {}

  static OsrConfig default_config() {
    OsrConfig c;
    c.mss = 100;
    c.cc_config.mss = 100;
    c.cc_config.initial_cwnd_segments = 2;
    return c;
  }

  void ack_through(std::uint64_t offset, std::uint32_t window = 1 << 20) {
    AckFeedback fb;
    fb.now = sim.now();
    fb.acked_through = offset;
    fb.bytes_newly_acked = offset - last_acked;
    fb.peer_recv_window = window;
    last_acked = offset;
    osr.on_ack_feedback(fb);
  }

  sim::Simulator sim;
  Osr osr;
  std::vector<std::pair<std::uint64_t, Bytes>> released;
  Bytes app;
  bool stream_ended = false;
  int window_updates = 0;
  std::uint64_t last_acked = 0;
};

TEST(Osr, NothingSentBeforeEstablished) {
  OsrHarness h;
  h.osr.send(Bytes(500, 1));
  EXPECT_TRUE(h.released.empty());
  h.osr.set_established();
  EXPECT_FALSE(h.released.empty());
}

TEST(Osr, SegmentsAtMssBoundaries) {
  OsrHarness h;
  h.osr.set_established();
  h.osr.send(Bytes(250, 1));  // cwnd = 2 segments -> releases 2 of 3
  ASSERT_EQ(h.released.size(), 2u);
  EXPECT_EQ(h.released[0].second.size(), 100u);
  EXPECT_EQ(h.released[1].second.size(), 100u);
  EXPECT_EQ(h.released[0].first, 0u);
  EXPECT_EQ(h.released[1].first, 100u);
  // Ack opens the window; the 50-byte tail goes out.
  h.ack_through(200);
  ASSERT_EQ(h.released.size(), 3u);
  EXPECT_EQ(h.released[2].second.size(), 50u);
}

TEST(Osr, CwndGatesRelease) {
  OsrHarness h;
  h.osr.set_established();
  h.osr.send(Bytes(1000, 1));
  EXPECT_EQ(h.released.size(), 2u);  // initial cwnd = 2 segments
  EXPECT_EQ(h.osr.in_flight(), 200u);
  EXPECT_GT(h.osr.stats().cwnd_stalls, 0u);
}

TEST(Osr, PeerWindowGatesRelease) {
  OsrHarness h;
  h.osr.set_established();
  h.osr.send(Bytes(1000, 1));
  h.ack_through(200, /*window=*/100);  // peer buffer nearly full
  // in_flight now 0; only one more segment fits the peer window.
  EXPECT_EQ(h.released.size(), 3u);
  EXPECT_GT(h.osr.stats().flow_control_stalls, 0u);
}

TEST(Osr, LossEventShrinksWindow) {
  OsrHarness h;
  h.osr.set_established();
  h.osr.send(Bytes(2000, 1));
  for (int i = 1; i <= 8; ++i) h.ack_through(static_cast<std::uint64_t>(i) * 100);
  const auto cwnd_before = h.osr.cwnd();
  h.osr.on_loss(LossKind::kFastRetransmit);
  EXPECT_LT(h.osr.cwnd(), cwnd_before);
}

TEST(Osr, ReassemblyReordersForApp) {
  OsrHarness h;
  h.osr.on_rd_deliver(100, Bytes(100, 2));
  EXPECT_TRUE(h.app.empty());  // hole at 0
  h.osr.on_rd_deliver(0, Bytes(100, 1));
  ASSERT_EQ(h.app.size(), 200u);
  EXPECT_EQ(h.app[0], 1);
  EXPECT_EQ(h.app[150], 2);
}

TEST(Osr, DeepReorderingDrainsInOrder) {
  OsrHarness h;
  for (int i = 9; i >= 1; --i) {
    h.osr.on_rd_deliver(static_cast<std::uint64_t>(i) * 10,
                        Bytes(10, static_cast<std::uint8_t>(i)));
  }
  EXPECT_TRUE(h.app.empty());
  h.osr.on_rd_deliver(0, Bytes(10, 0));
  ASSERT_EQ(h.app.size(), 100u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(h.app[static_cast<std::size_t>(i) * 10],
              static_cast<std::uint8_t>(i));
  }
}

TEST(Osr, StreamEndSignalledWhenFinLengthReached) {
  OsrHarness h;
  h.osr.on_rd_deliver(0, Bytes(100, 1));
  h.osr.set_peer_stream_length(200);
  EXPECT_FALSE(h.stream_ended);
  h.osr.on_rd_deliver(100, Bytes(100, 2));
  EXPECT_TRUE(h.stream_ended);
}

TEST(Osr, StreamEndWorksIfFinArrivesAfterAllData) {
  OsrHarness h;
  h.osr.on_rd_deliver(0, Bytes(50, 1));
  h.osr.set_peer_stream_length(50);
  EXPECT_TRUE(h.stream_ended);
}

TEST(Osr, ManualConsumeShrinksAdvertisedWindow) {
  OsrConfig config = OsrHarness::default_config();
  config.manual_consume = true;
  config.recv_buffer = 1000;
  OsrHarness h(config);
  EXPECT_EQ(h.osr.current_header().recv_window, 1000u);
  h.osr.on_rd_deliver(0, Bytes(400, 1));
  EXPECT_EQ(h.osr.current_header().recv_window, 600u);
  h.osr.consume(150);
  EXPECT_EQ(h.osr.current_header().recv_window, 750u);
  EXPECT_EQ(h.window_updates, 1);
}

TEST(Osr, ReassemblyBufferChargesWindow) {
  OsrConfig config = OsrHarness::default_config();
  config.recv_buffer = 1000;
  OsrHarness h(config);
  h.osr.on_rd_deliver(500, Bytes(300, 1));  // out of order: buffered
  EXPECT_EQ(h.osr.current_header().recv_window, 700u);
  h.osr.on_rd_deliver(0, Bytes(500, 1));  // drains the buffer
  EXPECT_EQ(h.osr.current_header().recv_window, 1000u);
}

TEST(Osr, PacingReleasesOverTime) {
  OsrConfig config = OsrHarness::default_config();
  config.cc = "rate";
  config.cc_config.fixed_rate_bps = 80e3;  // 100 B per 10 ms
  OsrHarness h(config);
  h.osr.set_established();
  h.osr.send(Bytes(500, 1));
  EXPECT_EQ(h.released.size(), 1u);  // first goes immediately
  h.sim.run_until(TimePoint::from_ns(Duration::millis(25).ns()));
  EXPECT_EQ(h.released.size(), 3u);  // two pacing intervals later
  h.sim.run_until(TimePoint::from_ns(Duration::millis(45).ns()));
  EXPECT_EQ(h.released.size(), 5u);
}

TEST(Osr, AllSentAndAckedTracksCompletion) {
  OsrHarness h;
  h.osr.set_established();
  EXPECT_TRUE(h.osr.all_sent_and_acked());
  h.osr.send(Bytes(150, 1));
  EXPECT_FALSE(h.osr.all_sent_and_acked());
  h.ack_through(150);
  EXPECT_TRUE(h.osr.all_sent_and_acked());
  EXPECT_EQ(h.osr.stream_written(), 150u);
}

// ---- DM ---------------------------------------------------------------------

TEST(Dm, RoutesByFourTuple) {
  Demux dm(0x0a000001);
  std::vector<SublayeredSegment> for_a;
  std::vector<SublayeredSegment> for_b;
  const FourTuple ta{0x0a000001, 80, 0x0a000002, 1000};
  const FourTuple tb{0x0a000001, 80, 0x0a000003, 1000};  // different remote
  ASSERT_TRUE(dm.bind(ta, [&](SublayeredSegment s) { for_a.push_back(s); }));
  ASSERT_TRUE(dm.bind(tb, [&](SublayeredSegment s) { for_b.push_back(s); }));

  SublayeredSegment s;
  s.cm.kind = CmKind::kData;
  s.dm = {1000, 80};
  dm.route(0x0a000002, s);
  dm.route(0x0a000003, s);
  dm.route(0x0a000003, s);
  EXPECT_EQ(for_a.size(), 1u);
  EXPECT_EQ(for_b.size(), 2u);
  EXPECT_EQ(dm.stats().to_connections, 3u);
}

TEST(Dm, DoubleBindRejected) {
  Demux dm(1);
  const FourTuple t{1, 80, 2, 1000};
  EXPECT_TRUE(dm.bind(t, [](SublayeredSegment) {}));
  EXPECT_FALSE(dm.bind(t, [](SublayeredSegment) {}));
  dm.unbind(t);
  EXPECT_TRUE(dm.bind(t, [](SublayeredSegment) {}));
}

TEST(Dm, ListenerCatchesUnboundTuples) {
  Demux dm(1);
  int listener_hits = 0;
  dm.listen(80, [&](const FourTuple&, SublayeredSegment) { ++listener_hits; });
  SublayeredSegment s;
  s.dm = {1000, 80};
  dm.route(2, s);
  EXPECT_EQ(listener_hits, 1);
  // A bound connection takes precedence over the listener.
  const FourTuple t{1, 80, 2, 1000};
  int conn_hits = 0;
  dm.bind(t, [&](SublayeredSegment) { ++conn_hits; });
  dm.route(2, s);
  EXPECT_EQ(conn_hits, 1);
  EXPECT_EQ(listener_hits, 1);
}

TEST(Dm, UnmatchedHandlerFires) {
  Demux dm(1);
  int unmatched = 0;
  dm.set_unmatched_handler(
      [&](const FourTuple&, const SublayeredSegment&) { ++unmatched; });
  SublayeredSegment s;
  s.dm = {1000, 4444};
  dm.route(2, s);
  EXPECT_EQ(unmatched, 1);
  EXPECT_EQ(dm.stats().unmatched, 1u);
}

TEST(Dm, SendStampsPortsOnly) {
  Demux dm(1);
  SublayeredSegment captured;
  netlayer::IpAddr dst = 0;
  dm.set_datagram_sink(
      [&](netlayer::IpAddr d, const SublayeredSegment& s) {
        dst = d;
        captured = s;
      });
  const FourTuple t{1, 80, 9, 1000};
  SublayeredSegment s;
  s.cm.kind = CmKind::kSyn;
  s.cm.isn_local = 42;  // DM must not touch other sublayers' fields (T3)
  dm.send(t, s);
  EXPECT_EQ(dst, 9u);
  EXPECT_EQ(captured.dm.src_port, 80);
  EXPECT_EQ(captured.dm.dst_port, 1000);
  EXPECT_EQ(captured.cm.isn_local, 42u);
}

TEST(Dm, EphemeralPortsAvoidCollisions) {
  Demux dm(1);
  dm.listen(49152, [](const FourTuple&, SublayeredSegment) {});
  const std::uint16_t p1 = dm.allocate_port();
  EXPECT_NE(p1, 49152);
  const FourTuple t{1, p1, 2, 80};
  dm.bind(t, [](SublayeredSegment) {});
  const std::uint16_t p2 = dm.allocate_port();
  EXPECT_NE(p2, p1);
}

TEST(Dm, AllocatePortSurvivesWraparound) {
  Demux dm(1);
  // Walk the allocator to the top of the range; the next allocations must
  // wrap back to 49152, never past 65535 into the registered ports.
  for (int i = 0; i < 16383; ++i) dm.allocate_port();
  EXPECT_EQ(dm.allocate_port(), 65535);
  const std::uint16_t wrapped = dm.allocate_port();
  EXPECT_EQ(wrapped, 49152);
}

TEST(Dm, AllocatePortExhaustionIsAClearFailure) {
  Demux dm(1);
  // Occupy the whole ephemeral range: even ports as listeners, odd ports
  // as bound connections, so both collision kinds are exercised.
  for (std::uint32_t port = 49152; port <= 65535; ++port) {
    if (port % 2 == 0) {
      ASSERT_TRUE(dm.listen(static_cast<std::uint16_t>(port),
                            [](const FourTuple&, SublayeredSegment) {}));
    } else {
      const FourTuple t{1, static_cast<std::uint16_t>(port), 2, 80};
      ASSERT_TRUE(dm.bind(t, [](SublayeredSegment) {}));
    }
  }
  EXPECT_FALSE(dm.try_allocate_port().has_value());
  EXPECT_THROW(dm.allocate_port(), std::runtime_error);
  // Freeing a single port (either kind) makes allocation succeed again —
  // and hands back exactly the freed port.
  dm.unbind(FourTuple{1, 50001, 2, 80});
  const auto freed = dm.try_allocate_port();
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(*freed, 50001);
  // Two connections can share a local port (distinct remote endpoints);
  // the port stays unavailable until BOTH are unbound.
  ASSERT_TRUE(dm.bind(FourTuple{1, 50001, 2, 80}, [](SublayeredSegment) {}));
  ASSERT_TRUE(dm.bind(FourTuple{1, 50001, 3, 80}, [](SublayeredSegment) {}));
  dm.unbind(FourTuple{1, 50001, 2, 80});
  EXPECT_FALSE(dm.try_allocate_port().has_value());
  dm.unbind(FourTuple{1, 50001, 3, 80});
  EXPECT_TRUE(dm.try_allocate_port().has_value());
}

TEST(Dm, SelfConnectionReentrantDeliveryRecurses) {
  // A self-connection with mirrored equal ports: the handler's send loops
  // straight back into route() for the SAME tuple while the handler is
  // still on the stack (Router::forward delivers local-destination
  // datagrams synchronously).  The re-entrant lookup must find a live
  // handler — not a moved-from husk — and recurse.
  Demux dm(1);
  dm.set_datagram_sink([&](netlayer::IpAddr, const SublayeredSegment& s) {
    dm.route(1, s);  // loopback: destination is the local address
  });
  const FourTuple self{1, 7777, 1, 7777};
  int delivered = 0;
  ASSERT_TRUE(dm.bind(self, [&](SublayeredSegment s) {
    if (++delivered == 1) dm.send(self, std::move(s));
  }));
  SublayeredSegment s;
  s.dm = {7777, 7777};
  dm.route(1, s);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(dm.stats().to_connections, 2u);
  EXPECT_EQ(dm.stats().unmatched, 0u);
}

TEST(Dm, ListenerReentrantDeliveryRecurses) {
  // Same re-entrancy shape one table over: a listener whose handler
  // routes another segment to its own port before returning.
  Demux dm(1);
  int hits = 0;
  dm.listen(80, [&](const FourTuple&, SublayeredSegment seg) {
    if (++hits == 1) dm.route(2, std::move(seg));
  });
  SublayeredSegment s;
  s.dm = {1000, 80};
  dm.route(2, s);
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(dm.stats().to_listeners, 2u);
}

TEST(Dm, MalformedDatagramCounted) {
  Demux dm(1);
  dm.on_datagram(2, Bytes{1, 2, 3});
  EXPECT_EQ(dm.stats().malformed, 1u);
}

}  // namespace
}  // namespace sublayer::transport
