// Transport idle keepalives: PROBE/PROBE-ACK on an idle established
// connection, dead-peer abort after the probe budget, for both CM schemes.
#include <gtest/gtest.h>

#include "tests/transport/harness.hpp"

namespace sublayer::transport {
namespace {

using testing::pattern_bytes;
using testing::StreamLog;
using testing::TwoNodeNet;

/// Advances sim time by `d` (the harness's periodic hello timers keep the
/// event queue alive forever, so an event-count run() never returns).
void run_for(sim::Simulator& sim, Duration d) {
  sim.run_until(TimePoint::from_ns(sim.now().ns() + d.ns()));
}

HostConfig keepalive_config(CmScheme scheme = CmScheme::kHandshake) {
  HostConfig hc;
  hc.connection.cm.scheme = scheme;
  hc.connection.cm.keepalive_interval = Duration::millis(100);
  hc.connection.cm.max_keepalive_probes = 3;
  hc.reap_closed = false;  // keep aborted connections for stats inspection
  return hc;
}

TEST(Keepalive, DisabledByDefaultStaysSilent) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1);
  TcpHost server(net.sim, net.router1(), 1);
  server.listen(80, [](Connection&) {});
  auto& conn = client.connect(server.addr(), 80);
  run_for(net.sim, Duration::seconds(10.0));
  EXPECT_EQ(conn.state(), CmState::kEstablished);
  EXPECT_EQ(conn.cm().stats().keepalive_probes_sent, 0u);
}

TEST(Keepalive, IdleConnectionStaysAliveOverHealthyPath) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1, keepalive_config());
  TcpHost server(net.sim, net.router1(), 1, keepalive_config());
  Connection* server_conn = nullptr;
  server.listen(80, [&](Connection& c) { server_conn = &c; });
  auto& conn = client.connect(server.addr(), 80);
  run_for(net.sim, Duration::seconds(5.0));

  // Dozens of probe rounds later, both ends are still established: each
  // probe drew a reply that reset the dead-peer budget.
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(conn.state(), CmState::kEstablished);
  EXPECT_EQ(server_conn->state(), CmState::kEstablished);
  EXPECT_GT(conn.cm().stats().keepalive_probes_sent, 10u);
  EXPECT_GT(server_conn->cm().stats().keepalive_replies_sent, 10u);
  EXPECT_EQ(conn.cm().stats().keepalive_aborts, 0u);
}

TEST(Keepalive, DeadPeerAbortsAfterProbeBudget) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1, keepalive_config());
  TcpHost server(net.sim, net.router1(), 1, keepalive_config());
  StreamLog client_log;
  server.listen(80, [](Connection&) {});
  auto& conn = client.connect(server.addr(), 80);
  conn.set_app_callbacks(client_log.callbacks());
  run_for(net.sim, Duration::millis(300));
  ASSERT_EQ(conn.state(), CmState::kEstablished);

  // Sever the path for good: a crashed peer and a permanent partition
  // look identical from here, and nothing else would ever clean up the
  // half-open connection.
  net.net.fail_link(net.link_index);
  run_for(net.sim, Duration::seconds(10.0));

  EXPECT_EQ(conn.state(), CmState::kAborted);
  EXPECT_EQ(client_log.reset_reason, "keepalive timeout: peer is dead");
  EXPECT_EQ(conn.cm().stats().keepalive_aborts, 1u);
  EXPECT_GE(conn.cm().stats().keepalive_probes_sent, 3u);
}

TEST(Keepalive, TimerCmDeadPeerAborts) {
  TwoNodeNet net;
  const auto hc = keepalive_config(CmScheme::kTimerBased);
  TcpHost client(net.sim, net.router0(), 1, hc);
  TcpHost server(net.sim, net.router1(), 1, hc);
  StreamLog client_log;
  server.listen(80, [](Connection&) {});
  auto& conn = client.connect(server.addr(), 80);
  conn.set_app_callbacks(client_log.callbacks());
  conn.send(pattern_bytes(2000));  // open the peer's state before the cut
  run_for(net.sim, Duration::millis(300));
  ASSERT_EQ(conn.state(), CmState::kEstablished);

  net.net.fail_link(net.link_index);
  run_for(net.sim, Duration::seconds(10.0));
  EXPECT_EQ(conn.state(), CmState::kAborted);
  EXPECT_EQ(client_log.reset_reason, "keepalive timeout: peer is dead");
}

TEST(Keepalive, ForgedSegmentsDoNotFeedTheDeadPeerBudget) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1, keepalive_config());
  TcpHost server(net.sim, net.router1(), 1, keepalive_config());
  server.listen(80, [](Connection&) {});
  auto& conn = client.connect(server.addr(), 80);
  run_for(net.sim, Duration::millis(300));
  ASSERT_EQ(conn.state(), CmState::kEstablished);

  net.net.fail_link(net.link_index);
  // A blind attacker floods the client with well-formed probe replies for
  // the right four-tuple but the wrong incarnation.  Only *validated*
  // inbound traffic may reset the budget, so the abort must still fire.
  for (int i = 0; i < 200; ++i) {
    SublayeredSegment forged;
    forged.dm.src_port = conn.tuple().remote_port;
    forged.dm.dst_port = conn.tuple().local_port;
    forged.cm.kind = CmKind::kProbeAck;
    forged.cm.isn_local = conn.cm().isn_peer() + 12345;  // wrong incarnation
    forged.cm.isn_peer = conn.cm().isn_local() + 999;
    netlayer::IpHeader h;
    h.protocol = netlayer::IpProto::kSublayered;
    h.src = conn.tuple().remote_addr;
    h.dst = conn.tuple().local_addr;
    net.sim.schedule(Duration::millis(i * 40), [&net, h, forged] {
      net.router0().send_datagram(h, forged.encode());
    });
  }
  run_for(net.sim, Duration::seconds(10.0));

  EXPECT_EQ(conn.state(), CmState::kAborted);
  EXPECT_GT(conn.cm().stats().bad_incarnation, 0u);
}

TEST(Keepalive, ResumesAfterTransientOutageShorterThanBudget) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1, keepalive_config());
  TcpHost server(net.sim, net.router1(), 1, keepalive_config());
  server.listen(80, [](Connection&) {});
  auto& conn = client.connect(server.addr(), 80);
  run_for(net.sim, Duration::millis(300));
  ASSERT_EQ(conn.state(), CmState::kEstablished);

  // Outage shorter than the probe schedule: the first reply after heal
  // zeroes the budget and the connection survives.
  net.net.fail_link(net.link_index);
  run_for(net.sim, Duration::millis(250));
  net.net.restore_link(net.link_index);
  run_for(net.sim, Duration::seconds(5.0));

  EXPECT_EQ(conn.state(), CmState::kEstablished);
  EXPECT_EQ(conn.cm().stats().keepalive_aborts, 0u);
}

}  // namespace
}  // namespace sublayer::transport
