// The timer-based CM mechanism (Challenge 5's named swap): same
// CmInterface, no opening handshake, timer-bounded state.
#include <gtest/gtest.h>

#include "tests/transport/harness.hpp"

namespace sublayer::transport {
namespace {

using testing::pattern_bytes;
using testing::StreamLog;
using testing::TwoNodeNet;

HostConfig timer_config() {
  HostConfig hc;
  hc.connection.cm.scheme = CmScheme::kTimerBased;
  // Watson's scheme leans on clock-monotonic ISNs.
  hc.isn = IsnKind::kWatson;
  return hc;
}

TEST(TimerCm, TransferWorksWithoutHandshake) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1, timer_config());
  TcpHost server(net.sim, net.router1(), 1, timer_config());
  StreamLog log;
  server.listen(80, [&](Connection& c) { c.set_app_callbacks(log.callbacks()); });
  auto& conn = client.connect(server.addr(), 80);
  EXPECT_EQ(conn.state(), CmState::kEstablished);  // immediately, no SYN
  const Bytes payload = pattern_bytes(120000);
  conn.send(payload);
  conn.close();
  net.sim.run(3'000'000);
  EXPECT_EQ(log.received, payload);
  EXPECT_TRUE(log.stream_ended);
  // No handshake traffic at all.
  EXPECT_EQ(conn.cm().stats().syn_sent, 0u);
}

TEST(TimerCm, FirstByteArrivesOneRttEarlierThanHandshake) {
  // Measure time-to-first-byte under both schemes on an identical 20 ms
  // RTT path: the timer scheme saves the handshake round trip.
  const auto ttfb = [](HostConfig hc) {
    sim::LinkConfig link;
    link.propagation_delay = Duration::millis(10);
    TwoNodeNet net(link);
    TcpHost client(net.sim, net.router0(), 1, hc);
    TcpHost server(net.sim, net.router1(), 1, hc);
    TimePoint first_byte;
    bool got = false;
    server.listen(80, [&](Connection& c) {
      Connection::AppCallbacks cb;
      cb.on_data = [&](Bytes) {
        if (!got) {
          got = true;
          first_byte = net.sim.now();
        }
      };
      c.set_app_callbacks(cb);
    });
    const TimePoint start = net.sim.now();
    auto& conn = client.connect(server.addr(), 80);
    conn.send(bytes_from_string("first byte"));
    net.sim.run(500000);
    EXPECT_TRUE(got);
    return (first_byte - start).to_seconds() * 1e3;  // ms
  };
  const double handshake_ms = ttfb(HostConfig{});
  const double timer_ms = ttfb(timer_config());
  // Handshake: SYN over (10ms) + SYNACK back (10ms) + data over (10ms).
  // Timer-based: data over (10ms).
  EXPECT_NEAR(handshake_ms - timer_ms, 20.0, 2.0)
      << "handshake=" << handshake_ms << " timer=" << timer_ms;
}

TEST(TimerCm, LossyBidirectionalTransferIntact) {
  sim::LinkConfig link;
  link.loss_rate = 0.03;
  link.propagation_delay = Duration::millis(2);
  TwoNodeNet net(link);
  TcpHost a(net.sim, net.router0(), 1, timer_config());
  TcpHost b(net.sim, net.router1(), 1, timer_config());
  StreamLog log_a;
  StreamLog log_b;
  const Bytes data_ab = pattern_bytes(60000, 1);
  const Bytes data_ba = pattern_bytes(90000, 2);
  b.listen(80, [&](Connection& c) {
    c.set_app_callbacks(log_b.callbacks());
    c.send(data_ba);
    c.close();
  });
  auto& conn = a.connect(b.addr(), 80);
  conn.set_app_callbacks(log_a.callbacks());
  conn.send(data_ab);
  conn.close();
  net.sim.run(8'000'000);
  EXPECT_EQ(log_b.received, data_ab);
  EXPECT_EQ(log_a.received, data_ba);
  EXPECT_TRUE(log_a.stream_ended);
  EXPECT_TRUE(log_b.stream_ended);
}

TEST(TimerCm, ConnectionsAreReclaimedAfterQuietTime) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1, timer_config());
  TcpHost server(net.sim, net.router1(), 1, timer_config());
  server.listen(80, [](Connection& c) {
    Connection::AppCallbacks cb;
    cb.on_stream_end = [&c] { c.close(); };
    c.set_app_callbacks(cb);
  });
  auto& conn = client.connect(server.addr(), 80);
  conn.send(bytes_from_string("brief"));
  conn.close();
  net.sim.run_until(TimePoint::from_ns(net.sim.now().ns() +
                                       Duration::seconds(5.0).ns()));
  EXPECT_EQ(client.live_connections(), 0u);
  EXPECT_EQ(server.live_connections(), 0u);
}

TEST(TimerCm, StaleIncarnationSegmentsRejected) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1, timer_config());
  TcpHost server(net.sim, net.router1(), 1, timer_config());
  StreamLog log;
  Connection* server_conn = nullptr;
  server.listen(80, [&](Connection& c) {
    server_conn = &c;
    c.set_app_callbacks(log.callbacks());
  });
  auto& conn = client.connect(server.addr(), 80);
  conn.send(bytes_from_string("real"));
  net.sim.run(300000);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(string_from_bytes(log.received), "real");

  // A delayed duplicate from an older incarnation (smaller ISN) arrives at
  // the same tuple: rejected by the pinned-ISN check.
  SublayeredSegment stale;
  stale.cm.kind = CmKind::kData;
  stale.cm.isn_local = conn.cm().isn_local() - 10000;
  stale.cm.isn_peer = 0;
  stale.rd.seq_offset = 0;
  stale.payload = bytes_from_string("GHOST");
  stale.dm.src_port = conn.tuple().local_port;
  stale.dm.dst_port = 80;
  netlayer::IpHeader h;
  h.protocol = netlayer::IpProto::kSublayered;
  h.src = client.addr();
  h.dst = server.addr();
  net.router0().send_datagram(h, stale.encode());
  net.sim.run(300000);
  EXPECT_EQ(string_from_bytes(log.received), "real");  // no GHOST bytes
  EXPECT_GT(server_conn->cm().stats().bad_incarnation, 0u);
}

TEST(TimerCm, HandshakeSegmentOnTimerConnectionIsRejected) {
  // Mechanisms must match within a deployment; a SYN against a timer-based
  // endpoint's established connection aborts it loudly rather than
  // limping along.
  TwoNodeNet net;
  HostConfig hc = timer_config();
  hc.reap_closed = false;  // keep the aborted connection inspectable
  TcpHost client(net.sim, net.router0(), 1, hc);
  TcpHost server(net.sim, net.router1(), 1, timer_config());
  server.listen(80, [](Connection&) {});
  auto& conn = client.connect(server.addr(), 80);
  conn.send(bytes_from_string("x"));
  net.sim.run(300000);

  SublayeredSegment syn;
  syn.cm.kind = CmKind::kSyn;
  syn.cm.isn_local = 1;
  syn.dm.src_port = 80;
  syn.dm.dst_port = conn.tuple().local_port;
  netlayer::IpHeader h;
  h.protocol = netlayer::IpProto::kSublayered;
  h.src = server.addr();
  h.dst = client.addr();
  net.router1().send_datagram(h, syn.encode());
  net.sim.run(300000);
  EXPECT_EQ(conn.state(), CmState::kAborted);
}

}  // namespace
}  // namespace sublayer::transport
