// Shared harness for transport tests: two routers joined by a configurable
// link, with link-state routing pre-converged so TCP traffic has a stable
// data plane.  Neighbor death detection is effectively disabled so that
// heavy data-plane loss cannot flap the control plane mid-test.
#pragma once

#include "netlayer/router.hpp"
#include "transport/monolithic/mono_tcp.hpp"
#include "transport/sublayered/host.hpp"

namespace sublayer::transport::testing {

struct TwoNodeNet {
  explicit TwoNodeNet(const sim::LinkConfig& link_config = {},
                      std::uint64_t seed = 1)
      : net(sim, router_config(), seed) {
    r0 = net.add_router();
    r1 = net.add_router();
    link_index = net.connect(r0, r1, link_config);
    net.start();
    // Let routing converge on a clean control plane before impairments
    // matter (hellos + LSP flood complete well within this horizon).
    sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));
  }

  static netlayer::RouterConfig router_config() {
    netlayer::RouterConfig config;
    config.routing = netlayer::RoutingKind::kLinkState;
    config.neighbor.dead_interval = Duration::seconds(3600.0);
    return config;
  }

  netlayer::Router& router0() { return net.router(r0); }
  netlayer::Router& router1() { return net.router(r1); }

  sim::Simulator sim;
  netlayer::Network net;
  netlayer::RouterId r0 = 0;
  netlayer::RouterId r1 = 0;
  std::size_t link_index = 0;
};

/// Collects the classic transfer-test bookkeeping for one endpoint.
struct StreamLog {
  Bytes received;
  bool established = false;
  bool stream_ended = false;
  bool closed = false;
  std::string reset_reason;

  Connection::AppCallbacks callbacks() {
    Connection::AppCallbacks cb;
    cb.on_established = [this] { established = true; };
    cb.on_data = [this](Bytes b) {
      received.insert(received.end(), b.begin(), b.end());
    };
    cb.on_stream_end = [this] { stream_ended = true; };
    cb.on_closed = [this] { closed = true; };
    cb.on_reset = [this](std::string r) { reset_reason = std::move(r); };
    return cb;
  }

  MonoConnection::AppCallbacks mono_callbacks() {
    MonoConnection::AppCallbacks cb;
    cb.on_established = [this] { established = true; };
    cb.on_data = [this](Bytes b) {
      received.insert(received.end(), b.begin(), b.end());
    };
    cb.on_stream_end = [this] { stream_ended = true; };
    cb.on_closed = [this] { closed = true; };
    cb.on_reset = [this](std::string r) { reset_reason = std::move(r); };
    return cb;
  }
};

inline Bytes pattern_bytes(std::size_t n, std::uint64_t seed = 5) {
  Rng rng(seed);
  return rng.next_bytes(n);
}

}  // namespace sublayer::transport::testing
