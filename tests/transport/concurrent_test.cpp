// Multiple simultaneous connections: demux correctness under concurrency,
// bottleneck sharing, and host lifecycle when many connections come and go.
#include <gtest/gtest.h>

#include "tests/transport/harness.hpp"

namespace sublayer::transport {
namespace {

using testing::pattern_bytes;
using testing::TwoNodeNet;

TEST(Concurrent, ManyParallelTransfersAllIntact) {
  sim::LinkConfig link;
  link.bandwidth_bps = 100e6;
  link.propagation_delay = Duration::millis(2);
  link.loss_rate = 0.01;
  TwoNodeNet net(link);
  TcpHost client(net.sim, net.router0(), 1);
  TcpHost server(net.sim, net.router1(), 1);

  constexpr int kConns = 8;
  constexpr std::size_t kBytes = 60000;
  std::map<std::uint16_t, Bytes> received;  // keyed by client port
  server.listen(80, [&](Connection& c) {
    const std::uint16_t port = c.tuple().remote_port;
    Connection::AppCallbacks cb;
    cb.on_data = [&received, port](Bytes d) {
      auto& buf = received[port];
      buf.insert(buf.end(), d.begin(), d.end());
    };
    c.set_app_callbacks(cb);
  });

  std::vector<std::pair<std::uint16_t, Bytes>> sent;
  for (int i = 0; i < kConns; ++i) {
    Connection& conn = client.connect(server.addr(), 80);
    Bytes payload = pattern_bytes(kBytes, static_cast<std::uint64_t>(i) + 1);
    conn.send(payload);
    sent.emplace_back(conn.tuple().local_port, std::move(payload));
  }
  net.sim.run(10'000'000);

  for (const auto& [port, payload] : sent) {
    ASSERT_TRUE(received.contains(port)) << port;
    EXPECT_EQ(received[port], payload) << port;
  }
}

TEST(Concurrent, BottleneckIsSharedReasonably) {
  // Two Reno flows over one 10 Mbps bottleneck: neither starves (weak
  // fairness — within 4x of each other by completion).
  sim::LinkConfig link;
  link.bandwidth_bps = 10e6;
  link.propagation_delay = Duration::millis(10);
  link.queue_limit = 64;
  TwoNodeNet net(link);
  TcpHost client(net.sim, net.router0(), 1);
  TcpHost server(net.sim, net.router1(), 1);

  std::map<std::uint16_t, std::size_t> progress;
  server.listen(80, [&](Connection& c) {
    const std::uint16_t port = c.tuple().remote_port;
    Connection::AppCallbacks cb;
    cb.on_data = [&progress, port](Bytes d) { progress[port] += d.size(); };
    c.set_app_callbacks(cb);
  });

  Connection& a = client.connect(server.addr(), 80);
  Connection& b = client.connect(server.addr(), 80);
  const Bytes big = pattern_bytes(4 << 20);
  a.send(big);
  b.send(big);
  // Run for a fixed virtual horizon: both flows should be mid-transfer.
  net.sim.run_until(TimePoint::from_ns(net.sim.now().ns() +
                                       Duration::seconds(2.0).ns()));
  const double pa = static_cast<double>(progress[a.tuple().local_port]);
  const double pb = static_cast<double>(progress[b.tuple().local_port]);
  ASSERT_GT(pa, 0);
  ASSERT_GT(pb, 0);
  const double ratio = pa > pb ? pa / pb : pb / pa;
  EXPECT_LT(ratio, 4.0) << "a=" << pa << " b=" << pb;
}

TEST(Concurrent, SequentialConnectionsReusePortsCleanly) {
  TwoNodeNet net;
  TcpHost client(net.sim, net.router0(), 1);
  TcpHost server(net.sim, net.router1(), 1);
  int completed = 0;
  server.listen(80, [&](Connection& c) {
    Connection::AppCallbacks cb;
    cb.on_stream_end = [&completed, &c] {
      ++completed;
      c.close();
    };
    c.set_app_callbacks(cb);
  });
  for (int round = 0; round < 5; ++round) {
    Connection& conn = client.connect(server.addr(), 80);
    conn.send(pattern_bytes(5000, static_cast<std::uint64_t>(round)));
    conn.close();
    net.sim.run(500000);
  }
  EXPECT_EQ(completed, 5);
  net.sim.run(200000);
  EXPECT_EQ(client.live_connections(), 0u);
  EXPECT_EQ(server.live_connections(), 0u);
}

TEST(Concurrent, TwoHostsOnDifferentRoutersDoNotCrosstalk) {
  // Connections between (clientA->server) and (server->clientA) ports are
  // isolated per tuple even with identical port numbers on both sides.
  TwoNodeNet net;
  TcpHost a(net.sim, net.router0(), 1);
  TcpHost b(net.sim, net.router1(), 1);
  Bytes got_x;
  Bytes got_y;
  b.listen(80, [&](Connection& c) {
    Connection::AppCallbacks cb;
    // First connection fills X, second fills Y.
    static int index = 0;
    Bytes* target = index++ == 0 ? &got_x : &got_y;
    cb.on_data = [target](Bytes d) {
      target->insert(target->end(), d.begin(), d.end());
    };
    c.set_app_callbacks(cb);
  });
  Connection& c1 = a.connect(b.addr(), 80);
  Connection& c2 = a.connect(b.addr(), 80);
  c1.send(bytes_from_string("XXXX"));
  c2.send(bytes_from_string("YYYY"));
  net.sim.run(500000);
  EXPECT_EQ(string_from_bytes(got_x), "XXXX");
  EXPECT_EQ(string_from_bytes(got_y), "YYYY");
}

}  // namespace
}  // namespace sublayer::transport
