// Interoperability tests (paper §3.1, Challenge 2): the sublayered TCP,
// speaking RFC 793 wire format through the shim sublayer, against the
// monolithic baseline — both directions, with and without impairments.
// Plus unit tests of the header isomorphism itself.
#include <gtest/gtest.h>

#include "tests/transport/harness.hpp"

namespace sublayer::transport {
namespace {

using testing::pattern_bytes;
using testing::StreamLog;
using testing::TwoNodeNet;

HostConfig shimmed_config() {
  HostConfig config;
  config.wire_rfc793 = true;
  return config;
}

struct InteropParam {
  std::string label;
  bool sublayered_is_client = true;
  double loss = 0;
  Duration jitter = Duration::nanos(0);
  std::size_t bytes = 150000;
};

class Interop : public ::testing::TestWithParam<InteropParam> {};

TEST_P(Interop, SublayeredTalksToMonolithic) {
  const auto& p = GetParam();
  sim::LinkConfig link;
  link.loss_rate = p.loss;
  link.jitter = p.jitter;
  link.propagation_delay = Duration::millis(2);
  TwoNodeNet net(link);

  TcpHost sub_host(net.sim, net.router0(), 1, shimmed_config());
  MonoHost mono_host(net.sim, net.router1(), 1);

  StreamLog sub_log;
  StreamLog mono_log;
  const Bytes payload = pattern_bytes(p.bytes);

  if (p.sublayered_is_client) {
    MonoConnection* mono_conn = nullptr;
    mono_host.listen(80, [&](MonoConnection& c) {
      mono_conn = &c;
      c.set_app_callbacks(mono_log.mono_callbacks());
    });
    Connection& conn = sub_host.connect(mono_host.addr(), 80);
    conn.set_app_callbacks(sub_log.callbacks());
    conn.send(payload);
    conn.close();
    net.sim.run(8000000);
    ASSERT_TRUE(sub_log.established) << p.label;
    ASSERT_TRUE(mono_log.established) << p.label;
    EXPECT_TRUE(mono_log.stream_ended) << p.label;
    ASSERT_EQ(mono_log.received.size(), payload.size()) << p.label;
    EXPECT_EQ(mono_log.received, payload) << p.label;

    ASSERT_NE(mono_conn, nullptr);
    mono_conn->send(bytes_from_string("pong"));
    mono_conn->close();
    net.sim.run(8000000);
    EXPECT_EQ(string_from_bytes(sub_log.received), "pong") << p.label;
    EXPECT_TRUE(sub_log.stream_ended) << p.label;
  } else {
    Connection* sub_conn = nullptr;
    sub_host.listen(80, [&](Connection& c) {
      sub_conn = &c;
      c.set_app_callbacks(sub_log.callbacks());
    });
    MonoConnection& conn = mono_host.connect(sub_host.addr(), 80);
    conn.set_app_callbacks(mono_log.mono_callbacks());
    conn.send(payload);
    conn.close();
    net.sim.run(8000000);
    ASSERT_TRUE(mono_log.established) << p.label;
    ASSERT_TRUE(sub_log.established) << p.label;
    EXPECT_TRUE(sub_log.stream_ended) << p.label;
    ASSERT_EQ(sub_log.received.size(), payload.size()) << p.label;
    EXPECT_EQ(sub_log.received, payload) << p.label;

    ASSERT_NE(sub_conn, nullptr);
    sub_conn->send(bytes_from_string("pong"));
    sub_conn->close();
    net.sim.run(8000000);
    EXPECT_EQ(string_from_bytes(mono_log.received), "pong") << p.label;
    EXPECT_TRUE(mono_log.stream_ended) << p.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Interop,
    ::testing::Values(
        InteropParam{"sub_client_clean", true, 0.0},
        InteropParam{"sub_server_clean", false, 0.0},
        InteropParam{"sub_client_lossy", true, 0.02},
        InteropParam{"sub_server_lossy", false, 0.02},
        InteropParam{"sub_client_reorder", true, 0.0, Duration::millis(3)},
        InteropParam{"sub_server_reorder", false, 0.0, Duration::millis(3)}),
    [](const auto& info) { return info.param.label; });

TEST(Interop, SublayeredToSublayeredOverRfc793Wire) {
  // Both ends shimmed: the wire carries pure RFC 793, and everything works
  // — the strongest form of the isomorphism claim.
  TwoNodeNet net;
  TcpHost a(net.sim, net.router0(), 1, shimmed_config());
  TcpHost b(net.sim, net.router1(), 1, shimmed_config());

  StreamLog log;
  b.listen(80, [&](Connection& c) { c.set_app_callbacks(log.callbacks()); });
  Connection& conn = a.connect(b.addr(), 80);
  const Bytes payload = pattern_bytes(100000);
  conn.send(payload);
  conn.close();
  net.sim.run(4000000);
  EXPECT_EQ(log.received, payload);
  EXPECT_TRUE(log.stream_ended);
  EXPECT_GT(a.shim().stats().translated_out, 0u);
  EXPECT_GT(a.shim().stats().translated_in, 0u);
}

// ---- Header isomorphism unit tests ------------------------------------------

TEST(HeaderShim, DataSegmentRoundTripsThroughBothDirections) {
  // outgoing(native) -> 793 bytes -> incoming -> native again.
  HeaderShim tx;
  HeaderShim rx;
  const netlayer::IpAddr peer = 0x0a000002;

  // Prime both shims with the handshake so ISNs are known.
  SublayeredSegment syn;
  syn.dm = {1000, 80};
  syn.cm.kind = CmKind::kSyn;
  syn.cm.isn_local = 5000;
  const Bytes syn_wire = tx.outgoing(peer, syn);
  // rx sees the SYN arriving (ports swap perspective at the receiver).
  const auto syn_in = rx.incoming(peer, syn_wire);
  ASSERT_EQ(syn_in.size(), 1u);
  EXPECT_EQ(syn_in[0].cm.kind, CmKind::kSyn);
  EXPECT_EQ(syn_in[0].cm.isn_local, 5000u);

  SublayeredSegment synack;
  synack.dm = {80, 1000};
  synack.cm.kind = CmKind::kSynAck;
  synack.cm.isn_local = 9000;
  synack.cm.isn_peer = 5000;
  const auto synack_in = tx.incoming(peer, rx.outgoing(peer, synack));
  ASSERT_EQ(synack_in.size(), 1u);
  EXPECT_EQ(synack_in[0].cm.kind, CmKind::kSynAck);
  EXPECT_EQ(synack_in[0].cm.isn_local, 9000u);
  EXPECT_EQ(synack_in[0].cm.isn_peer, 5000u);

  // Now a data segment with SACK and window.
  SublayeredSegment data;
  data.dm = {1000, 80};
  data.cm.kind = CmKind::kData;
  data.cm.isn_local = 5000;
  data.cm.isn_peer = 9000;
  data.rd.seq_offset = 2400;
  data.rd.ack_offset = 1200;
  data.rd.sack = {{3600, 4800}};
  data.osr.recv_window = 32000;
  data.osr.ecn_echo = true;
  data.payload = bytes_from_string("isomorphic");

  const Bytes wire = tx.outgoing(peer, data);
  const auto parsed = decode_tcp_segment(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.seq, 5000u + 1 + 2400);
  EXPECT_EQ(parsed->header.ack, 9000u + 1 + 1200);
  ASSERT_EQ(parsed->header.sack.size(), 1u);
  EXPECT_EQ(parsed->header.sack[0].start, 9000u + 1 + 3600);

  const auto back = rx.incoming(peer, wire);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].cm.kind, CmKind::kData);
  EXPECT_EQ(back[0].rd.seq_offset, 2400u);
  EXPECT_EQ(back[0].rd.ack_offset, 1200u);
  ASSERT_EQ(back[0].rd.sack.size(), 1u);
  EXPECT_EQ(back[0].rd.sack[0], (SackBlock{3600, 4800}));
  EXPECT_EQ(back[0].osr.recv_window, 32000u);
  EXPECT_TRUE(back[0].osr.ecn_echo);
  EXPECT_EQ(back[0].payload, data.payload);
}

TEST(HeaderShim, FinTranslationCarriesStreamLength) {
  HeaderShim tx;
  const netlayer::IpAddr peer = 0x0a000002;
  SublayeredSegment fin;
  fin.dm = {1000, 80};
  fin.cm.kind = CmKind::kFin;
  fin.cm.isn_local = 5000;
  fin.cm.isn_peer = 9000;
  fin.cm.fin_offset = 77777;
  const auto parsed = decode_tcp_segment(tx.outgoing(peer, fin));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->header.flag_fin);
  EXPECT_EQ(parsed->header.seq, 5000u + 1 + 77777);
}

TEST(HeaderShim, PiggybackedFinSplitsIntoDataPlusFin) {
  HeaderShim rx;
  const netlayer::IpAddr peer = 0x0a000002;
  // Prime with a handshake.
  TcpHeader syn;
  syn.src_port = 80;
  syn.dst_port = 1000;
  syn.flag_syn = true;
  syn.seq = 700;
  rx.incoming(peer, syn.encode({}));
  TcpHeader synack_out;  // we pretend our side's ISN is 300 via outgoing SYNACK
  SublayeredSegment native_synack;
  native_synack.dm = {1000, 80};
  native_synack.cm.kind = CmKind::kSynAck;
  native_synack.cm.isn_local = 300;
  native_synack.cm.isn_peer = 700;
  rx.outgoing(peer, native_synack);

  TcpHeader h;
  h.src_port = 80;
  h.dst_port = 1000;
  h.flag_ack = true;
  h.flag_fin = true;
  h.seq = 700 + 1 + 50;  // data at offset 50
  h.ack = 300 + 1;
  const Bytes payload = bytes_from_string("tail");
  const auto segs = rx.incoming(peer, h.encode(payload));
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].cm.kind, CmKind::kData);
  EXPECT_EQ(segs[0].rd.seq_offset, 50u);
  EXPECT_EQ(segs[0].payload, payload);
  EXPECT_EQ(segs[1].cm.kind, CmKind::kFin);
  EXPECT_EQ(segs[1].cm.fin_offset, 54u);
}

TEST(HeaderShim, AckOfFinSynthesizesFinAck) {
  HeaderShim shim;
  const netlayer::IpAddr peer = 0x0a000002;
  // Handshake priming.
  SublayeredSegment syn;
  syn.dm = {1000, 80};
  syn.cm.kind = CmKind::kSyn;
  syn.cm.isn_local = 400;
  shim.outgoing(peer, syn);
  TcpHeader synack;
  synack.src_port = 80;
  synack.dst_port = 1000;
  synack.flag_syn = synack.flag_ack = true;
  synack.seq = 900;
  synack.ack = 401;
  shim.incoming(peer, synack.encode({}));

  // Our FIN at stream offset 10.
  SublayeredSegment fin;
  fin.dm = {1000, 80};
  fin.cm.kind = CmKind::kFin;
  fin.cm.isn_local = 400;
  fin.cm.isn_peer = 900;
  fin.cm.fin_offset = 10;
  shim.outgoing(peer, fin);

  // Peer acks past the FIN.
  TcpHeader ack;
  ack.src_port = 80;
  ack.dst_port = 1000;
  ack.flag_ack = true;
  ack.seq = 901;
  ack.ack = 400 + 1 + 10 + 1;
  const auto segs = shim.incoming(peer, ack.encode({}));
  ASSERT_GE(segs.size(), 2u);
  EXPECT_EQ(segs[0].cm.kind, CmKind::kFinAck);
  EXPECT_EQ(segs[1].cm.kind, CmKind::kData);  // the pure-ack content
  // Clamped: the ack offset never exceeds our stream length.
  EXPECT_EQ(segs[1].rd.ack_offset, 10u);
  EXPECT_GT(shim.stats().synthesized_finacks, 0u);
}

TEST(HeaderShim, DataBeforeHandshakeIsUntranslatable) {
  HeaderShim shim;
  TcpHeader h;
  h.flag_ack = true;
  h.seq = 123;
  h.ack = 456;
  const auto segs = shim.incoming(0x0a000002, h.encode({}));
  EXPECT_TRUE(segs.empty());
  EXPECT_GT(shim.stats().untranslatable, 0u);
}

}  // namespace
}  // namespace sublayer::transport
