// End-to-end tests of the monolithic baseline TCP — it must meet the same
// byte-stream contract as the sublayered stack, since it is the control
// in every comparison benchmark.
#include <gtest/gtest.h>

#include "tests/transport/harness.hpp"

namespace sublayer::transport {
namespace {

using testing::pattern_bytes;
using testing::StreamLog;
using testing::TwoNodeNet;

struct MonoParam {
  std::string label;
  double loss = 0;
  double duplicate = 0;
  Duration jitter = Duration::nanos(0);
  std::size_t bytes = 200000;
};

class MonoE2e : public ::testing::TestWithParam<MonoParam> {};

TEST_P(MonoE2e, ByteStreamIntegrityAndCleanClose) {
  const auto& p = GetParam();
  sim::LinkConfig link;
  link.loss_rate = p.loss;
  link.duplicate_rate = p.duplicate;
  link.jitter = p.jitter;
  link.propagation_delay = Duration::millis(2);
  link.bandwidth_bps = 50e6;
  TwoNodeNet net(link);

  MonoHost client(net.sim, net.router0(), 1);
  MonoHost server(net.sim, net.router1(), 1);

  StreamLog client_log;
  StreamLog server_log;
  MonoConnection* server_conn = nullptr;
  server.listen(80, [&](MonoConnection& c) {
    server_conn = &c;
    c.set_app_callbacks(server_log.mono_callbacks());
  });

  MonoConnection& conn = client.connect(server.addr(), 80);
  conn.set_app_callbacks(client_log.mono_callbacks());
  const Bytes payload = pattern_bytes(p.bytes);
  conn.send(payload);
  conn.close();

  net.sim.run(6000000);
  ASSERT_TRUE(client_log.established) << p.label;
  ASSERT_TRUE(server_log.established) << p.label;
  ASSERT_NE(server_conn, nullptr);
  EXPECT_TRUE(server_log.stream_ended) << p.label;
  ASSERT_EQ(server_log.received.size(), payload.size()) << p.label;
  EXPECT_EQ(server_log.received, payload) << p.label;

  server_conn->send(bytes_from_string("ok"));
  server_conn->close();
  net.sim.run(6000000);
  EXPECT_EQ(string_from_bytes(client_log.received), "ok") << p.label;
  EXPECT_TRUE(client_log.stream_ended) << p.label;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MonoE2e,
    ::testing::Values(MonoParam{"clean"}, MonoParam{"lossy_1pct", 0.01},
                      MonoParam{"lossy_5pct", 0.05},
                      MonoParam{"dup_10pct", 0.0, 0.1},
                      MonoParam{"reorder", 0.0, 0.0, Duration::millis(3)},
                      MonoParam{"mixed", 0.02, 0.05, Duration::millis(2),
                                100000}),
    [](const auto& info) { return info.param.label; });

TEST(MonoTcp, StateMachineWalksTheClassicPath) {
  TwoNodeNet net;
  MonoHost client(net.sim, net.router0(), 1);
  MonoHost server(net.sim, net.router1(), 1);
  MonoConnection* server_conn = nullptr;
  server.listen(80, [&](MonoConnection& c) { server_conn = &c; });

  MonoConnection& conn = client.connect(server.addr(), 80);
  EXPECT_EQ(conn.state(), MonoState::kSynSent);
  net.sim.run(100000);
  EXPECT_EQ(conn.state(), MonoState::kEstablished);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->state(), MonoState::kEstablished);

  const auto run_for = [&](Duration d) {
    net.sim.run_until(TimePoint::from_ns(net.sim.now().ns() + d.ns()));
  };
  conn.close();
  run_for(Duration::millis(50));
  // Our FIN is out; the server acked and sits in CLOSE_WAIT.
  EXPECT_EQ(server_conn->state(), MonoState::kCloseWait);
  EXPECT_EQ(conn.state(), MonoState::kFinWait2);

  server_conn->close();
  run_for(Duration::millis(50));
  // Both FINs exchanged: the active closer lingers in TIME_WAIT.
  EXPECT_EQ(conn.state(), MonoState::kTimeWait);
}

TEST(MonoTcp, ConnectionToClosedPortIsReset) {
  TwoNodeNet net;
  MonoHost client(net.sim, net.router0(), 1);
  MonoHost server(net.sim, net.router1(), 1);  // no listener

  StreamLog log;
  MonoConnection& conn = client.connect(server.addr(), 4444);
  conn.set_app_callbacks(log.mono_callbacks());
  net.sim.run(500000);
  EXPECT_FALSE(log.established);
  EXPECT_FALSE(log.reset_reason.empty());
}

TEST(MonoTcp, RetransmissionLimitAborts) {
  TwoNodeNet net;
  MonoHost client(net.sim, net.router0(), 1);
  MonoHost server(net.sim, net.router1(), 1);
  server.listen(80, [](MonoConnection&) {});
  StreamLog log;
  net.net.fail_link(net.link_index);
  MonoConnection& conn = client.connect(server.addr(), 80);
  conn.set_app_callbacks(log.mono_callbacks());
  net.sim.run(20000000);
  EXPECT_FALSE(log.established);
  EXPECT_FALSE(log.reset_reason.empty());
}

TEST(MonoTcp, CongestionWindowGrowsThenReactsToLoss) {
  sim::LinkConfig link;
  link.loss_rate = 0.02;
  link.propagation_delay = Duration::millis(3);
  TwoNodeNet net(link);
  MonoHost client(net.sim, net.router0(), 1);
  MonoHost server(net.sim, net.router1(), 1);
  StreamLog log;
  server.listen(80, [&](MonoConnection& c) {
    c.set_app_callbacks(log.mono_callbacks());
  });
  MonoConnection& conn = client.connect(server.addr(), 80);
  const Bytes payload = pattern_bytes(400000);
  conn.send(payload);
  net.sim.run(8000000);
  EXPECT_EQ(log.received, payload);
  EXPECT_GT(conn.stats().retransmissions, 0u);
  EXPECT_GT(conn.stats().duplicate_acks_seen, 0u);
}

}  // namespace
}  // namespace sublayer::transport
