// Tests for the two stack extensions: end-to-end ECN (Fig. 6's OSR
// subheader field, driven by router AQM marking) and the stream-mux
// sublayer (the paper's §5 QUIC-style stream layer).
#include <gtest/gtest.h>

#include "tests/transport/harness.hpp"
#include "transport/streams/mux.hpp"

namespace sublayer::transport {
namespace {

using testing::pattern_bytes;
using testing::StreamLog;
using testing::TwoNodeNet;

// ---- ECN --------------------------------------------------------------------

struct EcnNet {
  explicit EcnNet(bool ecn_enabled) : net(sim, config(ecn_enabled)) {
    r0 = net.add_router();
    r1 = net.add_router();
    sim::LinkConfig link;
    link.bandwidth_bps = 5e6;  // slow: queues build fast
    link.propagation_delay = Duration::millis(5);
    // Small enough that an ECN-blind sender overflows it (tail drops);
    // with marking at 10 ms of backlog the sender backs off well before.
    link.queue_limit = 60;
    net.connect(r0, r1, link);
    net.start();
    sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));
  }

  static netlayer::RouterConfig config(bool ecn_enabled) {
    auto c = TwoNodeNet::router_config();
    if (ecn_enabled) c.ecn_backlog_threshold = Duration::millis(10);
    return c;
  }

  sim::Simulator sim;
  netlayer::Network net;
  netlayer::RouterId r0 = 0;
  netlayer::RouterId r1 = 0;
};

TEST(Ecn, RouterMarksWhenBacklogDeep) {
  EcnNet net(true);
  bool saw_mark = false;
  net.net.router(net.r1).set_protocol_handler(
      netlayer::IpProto::kPing,
      [&](const netlayer::IpHeader& h, Bytes) { saw_mark |= h.ecn_ce; });
  // Blast enough back-to-back datagrams to build a serialization backlog.
  netlayer::IpHeader ping;
  ping.protocol = netlayer::IpProto::kPing;
  ping.src = netlayer::host_addr(net.r0, 1);
  ping.dst = netlayer::host_addr(net.r1, 1);
  for (int i = 0; i < 100; ++i) {
    net.net.router(net.r0).send_datagram(ping, Bytes(1000, 0xaa));
  }
  net.sim.run(100000);
  EXPECT_TRUE(saw_mark);
  EXPECT_GT(net.net.router(net.r0).stats().ecn_marked, 0u);
}

TEST(Ecn, NoMarkingWhenDisabled) {
  EcnNet net(false);
  bool saw_mark = false;
  net.net.router(net.r1).set_protocol_handler(
      netlayer::IpProto::kPing,
      [&](const netlayer::IpHeader& h, Bytes) { saw_mark |= h.ecn_ce; });
  netlayer::IpHeader ping;
  ping.protocol = netlayer::IpProto::kPing;
  ping.src = netlayer::host_addr(net.r0, 1);
  ping.dst = netlayer::host_addr(net.r1, 1);
  for (int i = 0; i < 100; ++i) {
    net.net.router(net.r0).send_datagram(ping, Bytes(1000, 0xaa));
  }
  net.sim.run(100000);
  EXPECT_FALSE(saw_mark);
}

TEST(Ecn, SenderCongestionControlReactsToEcho) {
  // With ECN on, the congestion controller backs off from marks instead of
  // waiting for queue drops: fewer retransmissions for the same transfer.
  const auto run_one = [](bool ecn) {
    EcnNet net(ecn);
    TcpHost client(net.sim, net.net.router(net.r0), 1);
    TcpHost server(net.sim, net.net.router(net.r1), 1);
    StreamLog log;
    server.listen(80, [&](Connection& c) {
      c.set_app_callbacks(log.callbacks());
    });
    auto& conn = client.connect(server.addr(), 80);
    const Bytes payload = pattern_bytes(400000);
    conn.send(payload);
    net.sim.run(20'000'000);
    EXPECT_EQ(log.received.size(), payload.size()) << "ecn=" << ecn;
    return conn.rd().stats().fast_retransmits +
           conn.rd().stats().timeout_retransmits;
  };
  const auto retx_with_ecn = run_one(true);
  const auto retx_without = run_one(false);
  EXPECT_LT(retx_with_ecn, retx_without);
}

TEST(Ecn, EchoIsOneShotInOsrHeader) {
  sim::Simulator sim;
  OsrConfig config;
  Osr osr(sim, config, Osr::Callbacks{});
  EXPECT_FALSE(osr.current_header().ecn_echo);
  osr.note_ecn_mark();
  EXPECT_TRUE(osr.current_header().ecn_echo);
  EXPECT_FALSE(osr.current_header().ecn_echo);  // consumed
}

TEST(Ecn, CcHoldoffLimitsReactionToOncePerWindow) {
  CcConfig config;
  config.mss = 1000;
  const auto cc = make_reno(config);
  for (int i = 0; i < 10; ++i) {
    AckEvent e;
    e.bytes_newly_acked = 4000;
    cc->on_ack(e);
  }
  const auto before = cc->cwnd_bytes();
  AckEvent marked;
  marked.ecn_echo = true;
  marked.bytes_newly_acked = 1000;
  cc->on_ack(marked);
  const auto after_first = cc->cwnd_bytes();
  EXPECT_LT(after_first, before);
  // A burst of further echoes within the same window must not collapse it.
  for (int i = 0; i < 5; ++i) cc->on_ack(marked);
  EXPECT_EQ(cc->cwnd_bytes(), after_first);
}

// ---- SACK ablation switch ----------------------------------------------------

TEST(SackAblation, DisablingSackRemovesBlocksFromAcks) {
  TwoNodeNet net;
  HostConfig hc;
  hc.connection.rd.enable_sack = false;
  TcpHost a(net.sim, net.net.router(net.r0), 1, hc);
  TcpHost b(net.sim, net.net.router(net.r1), 1, hc);
  StreamLog log;
  b.listen(80, [&](Connection& c) { c.set_app_callbacks(log.callbacks()); });
  auto& conn = a.connect(b.addr(), 80);
  const Bytes payload = pattern_bytes(100000);
  conn.send(payload);
  net.sim.run(2'000'000);
  EXPECT_EQ(log.received, payload);
  EXPECT_EQ(conn.rd().stats().sacked_segments_spared, 0u);
}

TEST(SackAblation, LossyTransferStillCompletesWithoutSack) {
  sim::LinkConfig link;
  link.loss_rate = 0.05;
  link.propagation_delay = Duration::millis(3);
  TwoNodeNet net(link);
  HostConfig hc;
  hc.connection.rd.enable_sack = false;
  TcpHost a(net.sim, net.net.router(net.r0), 1, hc);
  TcpHost b(net.sim, net.net.router(net.r1), 1, hc);
  StreamLog log;
  b.listen(80, [&](Connection& c) { c.set_app_callbacks(log.callbacks()); });
  auto& conn = a.connect(b.addr(), 80);
  const Bytes payload = pattern_bytes(150000);
  conn.send(payload);
  net.sim.run(8'000'000);
  EXPECT_EQ(log.received, payload);
}

// ---- Stream mux ---------------------------------------------------------------

struct MuxPair {
  MuxPair() {
    server_host = std::make_unique<TcpHost>(net.sim, net.net.router(net.r1), 1);
    client_host = std::make_unique<TcpHost>(net.sim, net.net.router(net.r0), 1);
    server_host->listen(80, [&](Connection& c) {
      server = std::make_unique<StreamMux>(c, /*initiator=*/false);
      server->set_on_stream([&](Stream& s) { accepted.push_back(&s); });
    });
    Connection& conn = client_host->connect(server_host->addr(), 80);
    client = std::make_unique<StreamMux>(conn, /*initiator=*/true);
    net.sim.run(200000);  // establish
  }

  TwoNodeNet net;
  std::unique_ptr<TcpHost> client_host;
  std::unique_ptr<TcpHost> server_host;
  std::unique_ptr<StreamMux> client;
  std::unique_ptr<StreamMux> server;
  std::vector<Stream*> accepted;
};

TEST(StreamMux, SingleStreamRoundTrip) {
  MuxPair m;
  ASSERT_NE(m.server, nullptr);
  Stream& s = m.client->open();
  EXPECT_EQ(s.id(), 1u);  // initiator opens odd ids
  s.send(bytes_from_string("stream hello"));
  m.net.sim.run(500000);
  ASSERT_EQ(m.accepted.size(), 1u);
  // Late-bound handler misses already-delivered data, so resend pattern:
  Bytes got;
  m.accepted[0]->set_on_data([&](Bytes b) {
    got.insert(got.end(), b.begin(), b.end());
  });
  s.send(bytes_from_string(" again"));
  m.net.sim.run(500000);
  EXPECT_EQ(string_from_bytes(got), " again");
}

TEST(StreamMux, ManyStreamsInterleaveIndependently) {
  MuxPair m;
  constexpr int kStreams = 5;
  constexpr std::size_t kBytes = 40000;
  std::vector<Stream*> locals;
  std::vector<Bytes> sent(kStreams);
  for (int i = 0; i < kStreams; ++i) {
    locals.push_back(&m.client->open());
    sent[static_cast<std::size_t>(i)] =
        pattern_bytes(kBytes, static_cast<std::uint64_t>(i) + 1);
  }
  std::map<std::uint32_t, Bytes> received;
  std::map<std::uint32_t, bool> ended;
  m.server->set_on_stream([&](Stream& s) {
    s.set_on_data([&received, &s](Bytes b) {
      auto& buf = received[s.id()];
      buf.insert(buf.end(), b.begin(), b.end());
    });
    s.set_on_end([&ended, &s] { ended[s.id()] = true; });
  });
  // Interleave sends across streams in small pieces.
  for (std::size_t at = 0; at < kBytes; at += 1000) {
    for (int i = 0; i < kStreams; ++i) {
      const auto& data = sent[static_cast<std::size_t>(i)];
      locals[static_cast<std::size_t>(i)]->send(
          Bytes(data.begin() + static_cast<std::ptrdiff_t>(at),
                data.begin() + static_cast<std::ptrdiff_t>(at + 1000)));
    }
  }
  for (auto* s : locals) s->finish();
  m.net.sim.run(6'000'000);

  for (int i = 0; i < kStreams; ++i) {
    const std::uint32_t id = locals[static_cast<std::size_t>(i)]->id();
    EXPECT_EQ(received[id], sent[static_cast<std::size_t>(i)]) << id;
    EXPECT_TRUE(ended[id]) << id;
  }
  EXPECT_EQ(m.server->stats().streams_opened_remote,
            static_cast<std::uint64_t>(kStreams));
}

TEST(StreamMux, BidirectionalStreams) {
  MuxPair m;
  // Client stream ->, server stream <-.
  Stream& c2s = m.client->open();
  Bytes server_got;
  m.server->set_on_stream([&](Stream& s) {
    s.set_on_data([&server_got](Bytes b) {
      server_got.insert(server_got.end(), b.begin(), b.end());
    });
  });
  Bytes client_got;
  m.client->set_on_stream([&](Stream& s) {
    s.set_on_data([&client_got](Bytes b) {
      client_got.insert(client_got.end(), b.begin(), b.end());
    });
  });
  c2s.send(bytes_from_string("to server"));
  Stream& s2c = m.server->open();
  EXPECT_EQ(s2c.id(), 2u);  // acceptor opens even ids
  s2c.send(bytes_from_string("to client"));
  m.net.sim.run(500000);
  EXPECT_EQ(string_from_bytes(server_got), "to server");
  EXPECT_EQ(string_from_bytes(client_got), "to client");
}

TEST(StreamMux, LargeRecordSplitAtChunkBoundary) {
  MuxPair m;
  Stream& s = m.client->open();
  Bytes got;
  bool end = false;
  m.server->set_on_stream([&](Stream& in) {
    in.set_on_data([&got](Bytes b) {
      got.insert(got.end(), b.begin(), b.end());
    });
    in.set_on_end([&end] { end = true; });
  });
  const Bytes big = pattern_bytes(200000);  // > 3 max-size records
  s.send(big);
  s.finish();
  m.net.sim.run(6'000'000);
  EXPECT_EQ(got, big);
  EXPECT_TRUE(end);
  EXPECT_GE(m.client->stats().records_sent, 4u);
}

TEST(StreamMux, FinishIsPerStreamNotPerConnection) {
  MuxPair m;
  Stream& s1 = m.client->open();
  Stream& s2 = m.client->open();
  std::map<std::uint32_t, bool> ended;
  Bytes late;
  m.server->set_on_stream([&](Stream& s) {
    s.set_on_end([&ended, &s] { ended[s.id()] = true; });
    s.set_on_data([&late](Bytes b) {
      late.insert(late.end(), b.begin(), b.end());
    });
  });
  s1.send(bytes_from_string("x"));
  s1.finish();
  m.net.sim.run(300000);
  EXPECT_TRUE(ended[s1.id()]);
  EXPECT_FALSE(ended[s2.id()]);
  // The sibling stream keeps working after s1 ended.
  s2.send(bytes_from_string("still alive"));
  m.net.sim.run(300000);
  EXPECT_NE(string_from_bytes(late).find("still alive"), std::string::npos);
  // Writes after finish are dropped locally.
  s1.send(bytes_from_string("ignored"));
  m.net.sim.run(300000);
  EXPECT_EQ(string_from_bytes(late).find("ignored"), std::string::npos);
}

TEST(StreamMux, LowerSublayersUntouchedByMuxTraffic) {
  // T3 for the recursive sublayer: RD/OSR see only opaque bytes; the mux
  // adds its own header and nothing below changes behaviour.
  MuxPair m;
  Stream& s = m.client->open();
  const Bytes payload = pattern_bytes(50000);
  s.send(payload);
  m.net.sim.run(2'000'000);
  EXPECT_EQ(m.client->stats().bytes_sent, payload.size());
  EXPECT_GT(m.client->stats().records_sent, 0u);
}

}  // namespace
}  // namespace sublayer::transport
