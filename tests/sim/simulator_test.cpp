#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace sublayer::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now().ns(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Duration::millis(3), [&] { order.push_back(3); });
  sim.schedule(Duration::millis(1), [&] { order.push_back(1); });
  sim.schedule(Duration::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::from_ns(Duration::millis(3).ns()));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(Duration::millis(1), [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule(Duration::micros(250), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.ns(), 250000);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10) sim.schedule(Duration::millis(1), chain);
  };
  sim.schedule(Duration::millis(1), chain);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.now().ns(), Duration::millis(10).ns());
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(Duration::millis(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIsNoOp) {
  Simulator sim;
  sim.cancel(EventId{9999});
  sim.cancel(EventId{});
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::millis(1), [&] { ++fired; });
  sim.schedule(Duration::millis(5), [&] { ++fired; });
  sim.run_until(TimePoint::from_ns(Duration::millis(2).ns()));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), Duration::millis(2).ns());
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithNoEvents) {
  Simulator sim;
  sim.run_until(TimePoint::from_ns(123456));
  EXPECT_EQ(sim.now().ns(), 123456);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule(Duration::millis(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::from_ns(0), [] {}),
               std::logic_error);
}

TEST(Simulator, MaxEventsBudget) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule(Duration::millis(i + 1), [] {});
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(sim.pending_events(), 6u);
}

// Regression (PR 4): cancelling an already-fired event used to leak the
// id into the heap engine's cancellation list forever, permanently
// skewing pending_events().  The wheel engine must make it a true no-op.
TEST(Simulator, StaleCancelAfterFireKeepsPendingExact) {
  Simulator sim;
  const EventId id = sim.schedule(Duration::millis(1), [] {});
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.cancel(id);  // stale: the event already fired
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule(Duration::millis(1), [] {});
  sim.schedule(Duration::millis(2), [] {});
  sim.schedule(Duration::millis(3), [] {});
  EXPECT_EQ(sim.pending_events(), 3u);
  sim.cancel(id);  // still a no-op, no matter how often
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.sched_stats().stale_cancels, 2u);
}

TEST(Simulator, RepeatedCancelRemovesOnlyOnce) {
  Simulator sim;
  const EventId id = sim.schedule(Duration::millis(1), [] {});
  sim.schedule(Duration::millis(2), [] {});
  sim.cancel(id);
  sim.cancel(id);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(sim.sched_stats().cancelled, 1u);
  EXPECT_EQ(sim.sched_stats().stale_cancels, 2u);
}

// The wheel recycles event slots; a stale EventId whose slot now hosts a
// different event must not cancel the new occupant (generation tag).
TEST(Simulator, StaleIdCannotCancelRecycledSlot) {
  Simulator sim;
  const EventId old_id = sim.schedule(Duration::millis(1), [] {});
  EXPECT_EQ(sim.run(), 1u);  // fires; its slot returns to the freelist
  bool fired = false;
  sim.schedule(Duration::millis(1), [&] { fired = true; });
  sim.cancel(old_id);  // must not hit the recycled slot
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(fired);
}

TEST(Simulator, SchedStatsBalance) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule(Duration::millis(i + 1), [] {}));
  }
  for (int i = 0; i < 100; i += 3) sim.cancel(ids[i]);
  sim.run();
  const SchedStats& s = sim.sched_stats();
  EXPECT_EQ(s.armed, 100u);
  EXPECT_EQ(s.cancelled, 34u);
  EXPECT_EQ(s.fired, 66u);
  EXPECT_EQ(s.armed, s.cancelled + s.fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Timer, FiresAfterDelay) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.restart(Duration::millis(2));
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RestartReplacesPendingFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.restart(Duration::millis(2));
  t.restart(Duration::millis(10));
  sim.run_until(TimePoint::from_ns(Duration::millis(5).ns()));
  EXPECT_EQ(fired, 0);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Timer, StopPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.restart(Duration::millis(1));
  t.stop();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanRearmFromItsOwnCallback) {
  Simulator sim;
  int fired = 0;
  Timer* tp = nullptr;
  Timer t(sim, [&] {
    if (++fired < 3) tp->restart(Duration::millis(1));
  });
  tp = &t;
  t.restart(Duration::millis(1));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Timer, DestructorCancelsCleanly) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.restart(Duration::millis(1));
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace sublayer::sim
