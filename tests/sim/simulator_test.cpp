#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace sublayer::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now().ns(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Duration::millis(3), [&] { order.push_back(3); });
  sim.schedule(Duration::millis(1), [&] { order.push_back(1); });
  sim.schedule(Duration::millis(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::from_ns(Duration::millis(3).ns()));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(Duration::millis(1), [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.schedule(Duration::micros(250), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen.ns(), 250000);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10) sim.schedule(Duration::millis(1), chain);
  };
  sim.schedule(Duration::millis(1), chain);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.now().ns(), Duration::millis(10).ns());
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule(Duration::millis(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIsNoOp) {
  Simulator sim;
  sim.cancel(EventId{9999});
  sim.cancel(EventId{});
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration::millis(1), [&] { ++fired; });
  sim.schedule(Duration::millis(5), [&] { ++fired; });
  sim.run_until(TimePoint::from_ns(Duration::millis(2).ns()));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns(), Duration::millis(2).ns());
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithNoEvents) {
  Simulator sim;
  sim.run_until(TimePoint::from_ns(123456));
  EXPECT_EQ(sim.now().ns(), 123456);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule(Duration::millis(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::from_ns(0), [] {}),
               std::logic_error);
}

TEST(Simulator, MaxEventsBudget) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule(Duration::millis(i + 1), [] {});
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(sim.pending_events(), 6u);
}

TEST(Timer, FiresAfterDelay) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.restart(Duration::millis(2));
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RestartReplacesPendingFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.restart(Duration::millis(2));
  t.restart(Duration::millis(10));
  sim.run_until(TimePoint::from_ns(Duration::millis(5).ns()));
  EXPECT_EQ(fired, 0);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Timer, StopPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.restart(Duration::millis(1));
  t.stop();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanRearmFromItsOwnCallback) {
  Simulator sim;
  int fired = 0;
  Timer* tp = nullptr;
  Timer t(sim, [&] {
    if (++fired < 3) tp->restart(Duration::millis(1));
  });
  tp = &t;
  t.restart(Duration::millis(1));
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Timer, DestructorCancelsCleanly) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.restart(Duration::millis(1));
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace sublayer::sim
