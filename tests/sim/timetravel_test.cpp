// TimeTravel bisection: given periodic snapshots of a straight run that
// eventually trips a violation, bisect() must isolate the exact first
// offending event — deterministically, and despite poisoned checkpoints
// taken after the (not yet detected) violation.
#include "sim/timetravel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::sim {
namespace {

constexpr std::uint64_t kPoisonTick = 137;

// A minimal restorable world: one self-rescheduling ticker (one event per
// tick), with a planted corruption at tick kPoisonTick.  The violation
// flag is part of the saved state, so a checkpoint taken after the flip
// restores already-poisoned — exactly how a lagging monitor sees it.
class TickWorld final : public TimeTravel::World {
 public:
  TickWorld() : ticker_(sim_, [this] { tick(); }) {}

  void start() { ticker_.restart(Duration::micros(10)); }

  Bytes save() const {
    SnapshotWriter w;
    sim_.save(w);
    w.begin_section("test.world");
    w.u64(ticks_);
    w.b(violated_);
    ticker_.save(w);
    w.end_section();
    return w.finish();
  }

  void restore_from(const Bytes& image) {
    SnapshotReader r(image);
    sim_.restore(r);
    r.begin_section("test.world");
    ticks_ = r.u64();
    violated_ = r.b();
    ticker_.restore(r);
    r.end_section();
    sim_.finish_restore();
  }

  std::size_t run_events(std::size_t n) override { return sim_.run(n); }
  bool violated() const override { return violated_; }
  std::uint64_t events_processed() const override {
    return sim_.events_processed();
  }
  TimePoint now() const override { return sim_.now(); }
  std::string dump_flight(const std::string&) override { return ""; }

 private:
  void tick() {
    ++ticks_;
    if (ticks_ == kPoisonTick) violated_ = true;
    ticker_.restart(Duration::micros(10));
  }

  Simulator sim_;
  std::uint64_t ticks_ = 0;
  bool violated_ = false;
  Timer ticker_;
};

TimeTravel::Factory tick_world_factory() {
  return [](const Bytes& image) -> std::unique_ptr<TimeTravel::World> {
    auto w = std::make_unique<TickWorld>();
    w->restore_from(image);
    return w;
  };
}

TEST(TimeTravel, IsolatesPlantedViolationEvent) {
  TimeTravel tt;
  TickWorld world;
  world.start();
  tt.add_checkpoint(world.save(), world.events_processed(), world.now());

  // Straight run, one event at a time, checkpointing every 25 events.
  // Record the exact event whose execution flipped the predicate.
  std::uint64_t exact = 0;
  while (!world.violated()) {
    world.run_events(1);
    if (world.violated() && exact == 0) exact = world.events_processed();
    if (world.events_processed() % 25 == 0) {
      tt.add_checkpoint(world.save(), world.events_processed(), world.now());
    }
  }
  ASSERT_EQ(exact, kPoisonTick);  // one event per tick

  // Detection lags cause: the monitor "notices" 40 events later, by which
  // time another (poisoned) checkpoint has been taken.
  world.run_events(40);
  tt.add_checkpoint(world.save(), world.events_processed(), world.now());
  const std::uint64_t violated_by = world.events_processed();

  const auto res = tt.bisect(tick_world_factory(), violated_by);
  ASSERT_TRUE(res.isolated);
  EXPECT_EQ(res.offending_event, exact);
  EXPECT_EQ(res.offending_time,
            TimePoint::from_ns(Duration::micros(10).ns() *
                               static_cast<std::int64_t>(kPoisonTick)));
  EXPECT_EQ(res.base_events, 125u);  // latest clean checkpoint before 137
  EXPECT_GT(res.reexecutions, 0u);

  // Bisection is a pure function of the checkpoints: re-running it gives
  // the same isolation.
  const auto again = tt.bisect(tick_world_factory(), violated_by);
  EXPECT_EQ(again.offending_event, res.offending_event);
  EXPECT_EQ(again.base_events, res.base_events);
  EXPECT_EQ(again.reexecutions, res.reexecutions);
}

TEST(TimeTravel, WalksBackPastPoisonedCheckpoints) {
  TimeTravel tt;
  TickWorld world;
  world.start();
  tt.add_checkpoint(world.save(), world.events_processed(), world.now());
  world.run_events(100);
  tt.add_checkpoint(world.save(), world.events_processed(), world.now());
  // These two checkpoints restore already-violated; bisect must skip them
  // and base from event 100.
  world.run_events(50);
  tt.add_checkpoint(world.save(), world.events_processed(), world.now());
  world.run_events(50);
  tt.add_checkpoint(world.save(), world.events_processed(), world.now());

  const auto res = tt.bisect(tick_world_factory(), world.events_processed());
  ASSERT_TRUE(res.isolated);
  EXPECT_EQ(res.base_events, 100u);
  EXPECT_EQ(res.offending_event, kPoisonTick);
}

TEST(TimeTravel, NoCleanCheckpointReportsUnisolated) {
  TimeTravel tt;
  TickWorld world;
  world.start();
  world.run_events(200);  // violated at 137: every checkpoint is poisoned
  tt.add_checkpoint(world.save(), world.events_processed(), world.now());

  const auto res = tt.bisect(tick_world_factory(), world.events_processed());
  EXPECT_FALSE(res.isolated);
}

TEST(TimeTravel, RejectsOutOfOrderCheckpoints) {
  TimeTravel tt;
  TickWorld world;
  world.start();
  world.run_events(10);
  tt.add_checkpoint(world.save(), world.events_processed(), world.now());
  EXPECT_THROW(tt.add_checkpoint(Bytes{}, 5, TimePoint::from_ns(0)),
               std::logic_error);
}

}  // namespace
}  // namespace sublayer::sim
