#include <gtest/gtest.h>

#include "sim/trace.hpp"
#include "tests/transport/harness.hpp"

namespace sublayer {
namespace {

TEST(Trace, RecordsAndCounts) {
  sim::Trace trace;
  trace.record(TimePoint::from_ns(1000), "tcp.tx", "seq=0", 1200);
  trace.record(TimePoint::from_ns(2000), "tcp.tx", "seq=1200", 1200);
  trace.record(TimePoint::from_ns(3000), "tcp.rx", "ack=1200", 20);
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.count("tcp.tx"), 2u);
  EXPECT_EQ(trace.count("tcp.rx"), 1u);
  EXPECT_EQ(trace.count("nope"), 0u);
  EXPECT_EQ(trace.total_bytes("tcp.tx"), 2400u);
}

TEST(Trace, ToStringTruncates) {
  sim::Trace trace;
  for (int i = 0; i < 10; ++i) {
    trace.record(TimePoint::from_ns(i), "ev", std::to_string(i));
  }
  const std::string s = trace.to_string(3);
  EXPECT_NE(s.find("... (7 more)"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

// The whole stack — simulator, links, routing, TCP — must be bit-for-bit
// deterministic for a given seed: identical transfers, identical stats.
TEST(Determinism, IdenticalSeedsProduceIdenticalRuns) {
  const auto run_once = [] {
    sim::LinkConfig link;
    link.loss_rate = 0.03;
    link.duplicate_rate = 0.02;
    link.jitter = Duration::millis(2);
    link.propagation_delay = Duration::millis(1);
    transport::testing::TwoNodeNet net(link, /*seed=*/77);
    transport::TcpHost a(net.sim, net.router0(), 1);
    transport::TcpHost b(net.sim, net.router1(), 1);
    transport::testing::StreamLog log;
    b.listen(80, [&](transport::Connection& c) {
      c.set_app_callbacks(log.callbacks());
    });
    auto& conn = a.connect(b.addr(), 80);
    conn.send(transport::testing::pattern_bytes(100000));
    net.sim.run(2'000'000);
    return std::tuple{log.received.size(), net.sim.events_processed(),
                      net.sim.now().ns(),
                      conn.rd().stats().fast_retransmits,
                      conn.rd().stats().timeout_retransmits,
                      conn.rd().stats().segments_sent};
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto run_once = [](std::uint64_t seed) {
    sim::LinkConfig link;
    link.loss_rate = 0.05;
    link.propagation_delay = Duration::millis(1);
    transport::testing::TwoNodeNet net(link, seed);
    transport::TcpHost a(net.sim, net.router0(), 1);
    transport::TcpHost b(net.sim, net.router1(), 1);
    transport::testing::StreamLog log;
    b.listen(80, [&](transport::Connection& c) {
      c.set_app_callbacks(log.callbacks());
    });
    auto& conn = a.connect(b.addr(), 80);
    conn.send(transport::testing::pattern_bytes(100000));
    net.sim.run(2'000'000);
    // run() drains a fixed event budget, so compare loss-sensitive stats.
    return std::pair{conn.rd().stats().fast_retransmits,
                     conn.rd().stats().segments_sent};
  };
  EXPECT_NE(run_once(1), run_once(2));
}

}  // namespace
}  // namespace sublayer
