// Burst-dequeue replay suite: the scheduler's burst budget and the
// batched link/stack wiring are pure mechanics — they may change how many
// events one engine visit drains and how frames cross the sublayers, but
// they must never change the event trace.  Asserted three ways:
//
//   1. batched wire vs classic per-frame wire, same budget — identical
//      deliveries, retransmissions, link stats, event count, final time;
//   2. burst budgets {1, 4, 16, 64} on BOTH event engines (timer wheel
//      and legacy heap), over an impaired link with deterministic fault
//      windows (down/up flaps, loss spikes) — identical everything;
//   3. the parallel engine at 1/2/4 shards with per-shard batched stacks
//      and cross-shard mail — events and cross-shard frames invariant
//      across budgets.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <tuple>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "datalink/stack.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"

namespace sublayer::sim {
namespace {

struct ReplaySignature {
  std::vector<Bytes> delivered;
  std::uint64_t events = 0;
  std::int64_t end_ns = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks = 0;
  std::uint64_t checksum_failures = 0;
  std::uint64_t deframe_failures = 0;
  std::uint64_t frames_up = 0;
  // Per-direction link stats: every impairment draw must land identically.
  std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
             std::uint64_t>
      link_ab;

  friend bool operator==(const ReplaySignature&,
                         const ReplaySignature&) = default;
};

std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
           std::uint64_t>
stats_tuple(const LinkStats& s) {
  return {s.frames_offered, s.frames_delivered, s.frames_lost,
          s.frames_corrupted, s.frames_duplicated};
}

/// 40 payloads through a lossy, corrupting, duplicating wire, with two
/// deterministic chaos windows: a loss spike at 40 ms and a hard a->b
/// down/up flap at 80/95 ms.  Every variant must replay this bit for bit.
ReplaySignature run_impaired(EngineKind engine, std::size_t burst_budget,
                             bool batched_wire, bool fused = false) {
  Simulator sim(engine);
  sim.set_burst_budget(burst_budget);
  Rng rng(99);
  LinkConfig link;
  link.loss_rate = 0.02;
  link.corrupt_rate = 0.05;
  link.corrupt_bit_flips = 3;
  link.duplicate_rate = 0.02;
  link.jitter = Duration::micros(300);
  link.propagation_delay = Duration::millis(1);
  link.bandwidth_bps = 5e6;

  datalink::StackConfig cfg;
  cfg.batched_wire = batched_wire;
  cfg.fused = fused;
  cfg.arq.rto = Duration::millis(25);
  cfg.arq.window = 8;
  datalink::DatalinkPair pair(sim, link, rng, cfg, phy::make_nrz(),
                              datalink::make_crc32(), phy::make_nrz(),
                              datalink::make_crc32());

  ReplaySignature out;
  pair.b().set_deliver(
      [&out](Bytes payload) { out.delivered.push_back(std::move(payload)); });

  Rng data_rng(7);
  for (int i = 0; i < 40; ++i) {
    Bytes payload = data_rng.next_bytes(1 + data_rng.next_below(200));
    EXPECT_TRUE(pair.a().send(std::move(payload)));
  }
  // Chaos windows, scheduled in virtual time so they replay exactly.
  sim.schedule_at(TimePoint::from_ns(Duration::millis(40).ns()),
                  [&pair] { pair.link().a_to_b().set_loss_rate(0.30); });
  sim.schedule_at(TimePoint::from_ns(Duration::millis(60).ns()),
                  [&pair] { pair.link().a_to_b().set_loss_rate(0.02); });
  sim.schedule_at(TimePoint::from_ns(Duration::millis(80).ns()),
                  [&pair] { pair.link().a_to_b().set_down(true); });
  sim.schedule_at(TimePoint::from_ns(Duration::millis(95).ns()),
                  [&pair] { pair.link().a_to_b().set_down(false); });

  sim.run(4000000);
  out.events = sim.events_processed();
  out.end_ns = sim.now().ns();
  out.retransmissions = pair.a().arq_stats().retransmissions.value();
  out.acks = pair.b().arq_stats().acks_sent.value();
  out.checksum_failures = pair.b().stats().checksum_failures.value();
  out.deframe_failures = pair.b().stats().deframe_failures.value();
  out.frames_up = pair.b().stats().frames_up.value();
  out.link_ab = stats_tuple(pair.link().a_to_b().stats());
  return out;
}

TEST(BatchReplay, BatchedWireMatchesClassicWire) {
  const ReplaySignature classic =
      run_impaired(EngineKind::kTimerWheel, 1, /*batched_wire=*/false);
  const ReplaySignature batched =
      run_impaired(EngineKind::kTimerWheel, 1, /*batched_wire=*/true);
  EXPECT_EQ(classic.delivered.size(), 40u);
  EXPECT_EQ(batched, classic);
}

// StackConfig::fused is trace-invisible by contract: swapping the data
// plane for the compile-time fused pipeline must not move a single event,
// impairment draw, retransmission, or failure counter — on either wire
// style and on both event engines.
TEST(BatchReplay, FusedPlaneNeverChangesTheTrace) {
  const ReplaySignature classic =
      run_impaired(EngineKind::kTimerWheel, 1, /*batched_wire=*/false);
  EXPECT_EQ(classic.delivered.size(), 40u);
  EXPECT_EQ(run_impaired(EngineKind::kTimerWheel, 1, /*batched_wire=*/false,
                         /*fused=*/true),
            classic);
  const ReplaySignature batched =
      run_impaired(EngineKind::kTimerWheel, 16, /*batched_wire=*/true);
  EXPECT_EQ(run_impaired(EngineKind::kTimerWheel, 16, /*batched_wire=*/true,
                         /*fused=*/true),
            batched);
  const ReplaySignature heap =
      run_impaired(EngineKind::kLegacyHeap, 4, /*batched_wire=*/true);
  EXPECT_EQ(run_impaired(EngineKind::kLegacyHeap, 4, /*batched_wire=*/true,
                         /*fused=*/true),
            heap);
}

class BatchReplayEngines : public ::testing::TestWithParam<EngineKind> {};

TEST_P(BatchReplayEngines, BurstBudgetNeverChangesTheTrace) {
  const EngineKind engine = GetParam();
  const ReplaySignature base =
      run_impaired(engine, 1, /*batched_wire=*/true);
  EXPECT_EQ(base.delivered.size(), 40u);
  // The chaos windows actually bit: the run exercised loss recovery.
  EXPECT_GT(base.retransmissions, 0u);
  for (std::size_t budget : {4u, 16u, 64u}) {
    const ReplaySignature r =
        run_impaired(engine, budget, /*batched_wire=*/true);
    EXPECT_EQ(r, base) << "budget " << budget;
  }
}

INSTANTIATE_TEST_SUITE_P(BothEngines, BatchReplayEngines,
                         ::testing::Values(EngineKind::kTimerWheel,
                                           EngineKind::kLegacyHeap),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           return info.param == EngineKind::kTimerWheel
                                      ? "TimerWheel"
                                      : "LegacyHeap";
                         });

struct ParallelSignature {
  std::uint64_t events = 0;
  std::uint64_t cross_frames = 0;
  std::vector<std::size_t> delivered_per_shard;
  std::vector<std::size_t> mail_per_shard;

  friend bool operator==(const ParallelSignature&,
                         const ParallelSignature&) = default;
};

/// One batched DatalinkPair per shard (lossy link, chaos-free: shard-local
/// determinism is covered above) plus a ring of cross-shard channels, so
/// burst dequeue interleaves shard-local bursts with mailbox drains.
ParallelSignature run_sharded(std::size_t shards, std::size_t threads,
                              std::size_t burst_budget, bool fused = false) {
  ParallelConfig pc;
  pc.shards = shards;
  pc.threads = threads;
  pc.burst_budget = burst_budget;
  ParallelSimulator psim(pc);

  datalink::StackConfig cfg;
  cfg.batched_wire = true;
  cfg.fused = fused;
  cfg.arq.rto = Duration::millis(25);
  cfg.arq.window = 8;
  LinkConfig link;
  link.loss_rate = 0.05;
  link.propagation_delay = Duration::millis(1);
  link.bandwidth_bps = 10e6;

  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<std::unique_ptr<datalink::DatalinkPair>> pairs;
  std::vector<std::size_t> delivered(shards, 0);
  std::vector<std::size_t> mail(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    ParallelSimulator::ShardScope scope(psim, s);
    rngs.push_back(std::make_unique<Rng>(100 + s));
    pairs.push_back(std::make_unique<datalink::DatalinkPair>(
        psim.shard(s), link, *rngs.back(), cfg, phy::make_nrz(),
        datalink::make_crc32(), phy::make_nrz(), datalink::make_crc32()));
    pairs.back()->b().set_deliver(
        [&delivered, s](Bytes) { ++delivered[s]; });
  }
  // Cross-shard mail ring: shard s posts to s+1 every 2 ms.
  std::vector<std::uint32_t> ring;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t dst = (s + 1) % shards;
    ring.push_back(psim.add_channel(
        s, dst, Duration::millis(1), "ring",
        [&mail, dst](Bytes) { ++mail[dst]; }));
  }
  for (std::size_t s = 0; s < shards; ++s) {
    datalink::DatalinkPair* pair = pairs[s].get();
    for (int i = 0; i < 20; ++i) {
      const auto at =
          TimePoint::from_ns(Duration::millis(1 + 2 * i).ns());
      psim.shard(s).schedule_at(at, [pair, s, i, &psim, &ring] {
        Rng payload_rng(1000 + 40 * s + i);
        pair->a().send(payload_rng.next_bytes(32 + 8 * (i % 5)));
        psim.post(ring[s], simclock::now() + Duration::millis(2),
                  Bytes{static_cast<std::uint8_t>(i)});
      });
    }
  }
  psim.run_until(TimePoint::from_ns(Duration::seconds(2.0).ns()));

  ParallelSignature out;
  out.events = psim.events_processed();
  out.cross_frames = psim.cross_shard_frames();
  out.delivered_per_shard = delivered;
  out.mail_per_shard = mail;
  return out;
}

TEST(BatchReplay, ParallelShardsAreBudgetInvariant) {
  for (std::size_t shards : {1u, 2u, 4u}) {
    const ParallelSignature base = run_sharded(shards, 2, 1);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(base.delivered_per_shard[s], 20u)
          << shards << " shards, shard " << s;
      EXPECT_EQ(base.mail_per_shard[s], 20u)
          << shards << " shards, shard " << s;
    }
    for (std::size_t budget : {4u, 16u, 64u}) {
      const ParallelSignature r = run_sharded(shards, 2, budget);
      EXPECT_EQ(r, base) << shards << " shards, budget " << budget;
    }
    // Worker count must not interact with the budget either.
    EXPECT_EQ(run_sharded(shards, 4, 16), base) << shards << " shards";
    // Nor must the fused data plane: per-shard stacks swap to the
    // compile-time pipeline without moving an event or a mailbox frame.
    EXPECT_EQ(run_sharded(shards, 2, 16, /*fused=*/true), base)
        << shards << " shards (fused)";
  }
}

}  // namespace
}  // namespace sublayer::sim
