#include "sim/link.hpp"

#include <gtest/gtest.h>

namespace sublayer::sim {
namespace {

Bytes make_frame(std::size_t n, std::uint8_t fill = 0xaa) {
  return Bytes(n, fill);
}

TEST(Link, DeliversAfterPropagationDelay) {
  Simulator sim;
  LinkConfig cfg;
  cfg.propagation_delay = Duration::millis(5);
  Link link(sim, cfg, Rng(1));
  TimePoint delivered_at;
  link.set_receiver([&](Bytes) { delivered_at = sim.now(); });
  link.send(make_frame(10));
  sim.run();
  EXPECT_EQ(delivered_at.ns(), Duration::millis(5).ns());
  EXPECT_EQ(link.stats().frames_delivered, 1u);
}

TEST(Link, SerializationDelayFromBandwidth) {
  Simulator sim;
  LinkConfig cfg;
  cfg.bandwidth_bps = 8000;  // 1 byte per ms
  cfg.propagation_delay = Duration::nanos(0);
  Link link(sim, cfg, Rng(1));
  TimePoint delivered_at;
  link.set_receiver([&](Bytes) { delivered_at = sim.now(); });
  link.send(make_frame(100));
  sim.run();
  EXPECT_EQ(delivered_at.ns(), Duration::millis(100).ns());
}

TEST(Link, BackToBackFramesQueueBehindEachOther) {
  Simulator sim;
  LinkConfig cfg;
  cfg.bandwidth_bps = 8000;
  cfg.propagation_delay = Duration::nanos(0);
  Link link(sim, cfg, Rng(1));
  std::vector<TimePoint> deliveries;
  link.set_receiver([&](Bytes) { deliveries.push_back(sim.now()); });
  link.send(make_frame(10));  // 10 ms
  link.send(make_frame(10));  // finishes at 20 ms
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].ns(), Duration::millis(10).ns());
  EXPECT_EQ(deliveries[1].ns(), Duration::millis(20).ns());
}

TEST(Link, LossRateDropsRoughlyThatFraction) {
  Simulator sim;
  LinkConfig cfg;
  cfg.loss_rate = 0.3;
  Link link(sim, cfg, Rng(99));
  int received = 0;
  link.set_receiver([&](Bytes) { ++received; });
  const int kFrames = 10000;
  for (int i = 0; i < kFrames; ++i) link.send(make_frame(4));
  sim.run();
  EXPECT_NEAR(received / static_cast<double>(kFrames), 0.7, 0.02);
  EXPECT_EQ(link.stats().frames_lost + link.stats().frames_delivered,
            static_cast<std::uint64_t>(kFrames));
}

TEST(Link, ZeroLossDeliversEverything) {
  Simulator sim;
  Link link(sim, LinkConfig{}, Rng(5));
  int received = 0;
  link.set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 100; ++i) link.send(make_frame(4));
  sim.run();
  EXPECT_EQ(received, 100);
}

TEST(Link, CorruptionFlipsBits) {
  Simulator sim;
  LinkConfig cfg;
  cfg.corrupt_rate = 1.0;
  cfg.corrupt_bit_flips = 1;
  Link link(sim, cfg, Rng(3));
  Bytes got;
  link.set_receiver([&](Bytes f) { got = std::move(f); });
  const Bytes sent = make_frame(16, 0x00);
  link.send(sent);
  sim.run();
  ASSERT_EQ(got.size(), sent.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    flipped_bits += __builtin_popcount(got[i] ^ sent[i]);
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(link.stats().frames_corrupted, 1u);
}

TEST(Link, DuplicationDeliversTwice) {
  Simulator sim;
  LinkConfig cfg;
  cfg.duplicate_rate = 1.0;
  Link link(sim, cfg, Rng(3));
  int received = 0;
  link.set_receiver([&](Bytes) { ++received; });
  link.send(make_frame(4));
  sim.run();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(link.stats().frames_duplicated, 1u);
}

TEST(Link, JitterCanReorder) {
  Simulator sim;
  LinkConfig cfg;
  cfg.propagation_delay = Duration::micros(1);
  cfg.jitter = Duration::millis(10);
  Link link(sim, cfg, Rng(17));
  std::vector<std::uint8_t> order;
  link.set_receiver([&](Bytes f) { order.push_back(f[0]); });
  for (std::uint8_t i = 0; i < 50; ++i) link.send(Bytes{i});
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(Link, QueueLimitTailDrops) {
  Simulator sim;
  LinkConfig cfg;
  cfg.queue_limit = 5;
  cfg.propagation_delay = Duration::millis(1);
  Link link(sim, cfg, Rng(1));
  int received = 0;
  link.set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 20; ++i) link.send(make_frame(4));
  sim.run();
  EXPECT_EQ(received, 5);
  EXPECT_EQ(link.stats().frames_queue_dropped, 15u);
}

TEST(Link, DuplicateRateProducesRoughlyThatFractionOfExtras) {
  Simulator sim;
  LinkConfig cfg;
  cfg.duplicate_rate = 0.25;
  Link link(sim, cfg, Rng(7));
  int received = 0;
  link.set_receiver([&](Bytes) { ++received; });
  const int kFrames = 10000;
  for (int i = 0; i < kFrames; ++i) link.send(make_frame(4));
  sim.run();
  EXPECT_NEAR(link.stats().frames_duplicated / static_cast<double>(kFrames),
              0.25, 0.02);
  // Every duplicate is one extra delivery, and nothing else is lost.
  EXPECT_EQ(static_cast<std::uint64_t>(received),
            kFrames + link.stats().frames_duplicated);
  EXPECT_EQ(link.stats().frames_delivered,
            kFrames + link.stats().frames_duplicated);
}

TEST(Link, QueueDrainsAndAdmitsLaterTraffic) {
  Simulator sim;
  LinkConfig cfg;
  cfg.queue_limit = 3;
  cfg.propagation_delay = Duration::millis(1);
  Link link(sim, cfg, Rng(1));
  int received = 0;
  link.set_receiver([&](Bytes) { ++received; });
  for (int i = 0; i < 10; ++i) link.send(make_frame(4));
  sim.run();
  EXPECT_EQ(received, 3);
  EXPECT_EQ(link.stats().frames_queue_dropped, 7u);
  // Tail drop is about instantaneous occupancy, not a death sentence: once
  // the queue drains, later traffic is admitted again.
  for (int i = 0; i < 2; ++i) link.send(make_frame(4));
  sim.run();
  EXPECT_EQ(received, 5);
  EXPECT_EQ(link.stats().frames_queue_dropped, 7u);
}

TEST(Link, LiveImpairmentSettersApplyToSubsequentFramesOnly) {
  Simulator sim;
  LinkConfig cfg;
  cfg.propagation_delay = Duration::millis(1);
  Link link(sim, cfg, Rng(11));
  std::vector<Bytes> got;
  link.set_receiver([&](Bytes f) { got.push_back(std::move(f)); });

  link.send(make_frame(8, 0x00));  // drawn clean, still in flight
  link.set_corrupt_rate(1.0);
  link.set_duplicate_rate(1.0);
  link.set_jitter(Duration::micros(50));
  link.set_queue_limit(64);
  link.send(make_frame(8, 0x00));  // drawn under the new impairments
  sim.run();

  // Impairments are drawn at send time: the in-flight frame stays clean and
  // single, the later one is corrupted and delivered twice.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], make_frame(8, 0x00));
  EXPECT_NE(got[1], make_frame(8, 0x00));
  EXPECT_EQ(got[1], got[2]);
  EXPECT_EQ(link.stats().frames_corrupted, 1u);
  EXPECT_EQ(link.stats().frames_duplicated, 1u);
  EXPECT_EQ(link.config().jitter.ns(), Duration::micros(50).ns());
  EXPECT_EQ(link.config().queue_limit, 64u);
}

TEST(Link, SetConfigRestoresTheBaselineSnapshot) {
  Simulator sim;
  Link link(sim, LinkConfig{}, Rng(2));
  int received = 0;
  link.set_receiver([&](Bytes) { ++received; });

  const LinkConfig baseline = link.config();  // the chaos-heal idiom
  link.set_loss_rate(1.0);
  link.send(make_frame(4));
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(link.stats().frames_lost, 1u);

  link.set_config(baseline);
  link.send(make_frame(4));
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(link.stats().frames_lost, 1u);
}

TEST(Link, DownLinkDropsEverything) {
  Simulator sim;
  Link link(sim, LinkConfig{}, Rng(1));
  int received = 0;
  link.set_receiver([&](Bytes) { ++received; });
  link.set_down(true);
  link.send(make_frame(4));
  sim.run();
  EXPECT_EQ(received, 0);
  link.set_down(false);
  link.send(make_frame(4));
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST(DuplexLink, BothDirectionsIndependent) {
  Simulator sim;
  Rng rng(42);
  DuplexLink duplex(sim, LinkConfig{}, rng);
  Bytes at_a;
  Bytes at_b;
  duplex.a_to_b().set_receiver([&](Bytes f) { at_b = std::move(f); });
  duplex.b_to_a().set_receiver([&](Bytes f) { at_a = std::move(f); });
  duplex.a_to_b().send(Bytes{1});
  duplex.b_to_a().send(Bytes{2});
  sim.run();
  EXPECT_EQ(at_b, Bytes{1});
  EXPECT_EQ(at_a, Bytes{2});
}

TEST(Link, StatsCountBytes) {
  Simulator sim;
  Link link(sim, LinkConfig{}, Rng(1));
  link.set_receiver([](Bytes) {});
  link.send(make_frame(100));
  link.send(make_frame(23));
  sim.run();
  EXPECT_EQ(link.stats().bytes_delivered, 123u);
}

}  // namespace
}  // namespace sublayer::sim
