// Cross-thread-count replay suite: the same seeded workload, run on the
// single-threaded Simulator and on the ParallelSimulator at 1, 2, and 4
// worker threads, must produce identical results — events processed,
// per-flow final byte counts, merged telemetry, span-crossing totals, and
// the cross-shard delivery trace.  This is the determinism contract of
// sim/parallel.hpp, asserted end to end through the real stack (routers,
// links with FCS, sublayered TCP hosts), including a chaos mixed-mayhem
// run where faults land as barrier tasks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "chaos/controller.hpp"
#include "chaos/fault_plan.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "netlayer/router.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "transport/sublayered/host.hpp"

namespace sublayer {
namespace {

constexpr std::size_t kRing = 4;     // routers, one per shard
constexpr std::size_t kFlows = 8;    // client on f%4 -> server on (f%4+2)%4
constexpr std::size_t kPerFlow = 4096;

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t cross_frames = 0;  // 0 for the monolithic run
  std::size_t completed = 0;
  /// Bytes received per accepted connection, per server host, in accept
  /// order — the "final per-flow byte counts" artifact.
  std::vector<std::vector<std::size_t>> per_host_bytes;
  telemetry::MetricsSnapshot metrics;
  std::string metrics_json;
  /// (layer, down-crossings, up-crossings, down-bytes) over all shards.
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t,
                         std::uint64_t>>
      crossings;
  std::string trace_log;  // parallel only: merged cross-shard deliveries
  /// Parallel only: the merged flight-recorder stream as an SLFR image and
  /// the deterministic slice of the Chrome trace.  Both are replay
  /// artifacts: byte-identical across thread counts.
  std::vector<std::uint8_t> flight_dump;
  std::string chrome_canonical;
  std::uint64_t faults_applied = 0;
  std::uint64_t faults_healed = 0;
};

netlayer::RouterConfig ring_router_config() {
  netlayer::RouterConfig rc;
  rc.routing = netlayer::RoutingKind::kLinkState;
  rc.neighbor.dead_interval = Duration::seconds(3600.0);
  return rc;
}

sim::LinkConfig ring_link_config() {
  sim::LinkConfig link;
  link.bandwidth_bps = 10e9;
  link.propagation_delay = Duration::micros(100);
  link.queue_limit = 4096;
  return link;
}

chaos::FaultPlan mayhem_plan(std::size_t link_count) {
  chaos::ScriptParams params;
  params.link_count = link_count;
  params.router_count = kRing;
  params.start = TimePoint::from_ns(Duration::millis(600).ns());
  params.active_window = Duration::seconds(1.5);
  return chaos::make_plan("mixed-mayhem", 3, params);
}

/// Runs the ring workload to a FIXED deadline (so every variant covers the
/// identical virtual window).  `threads` 0 = monolithic Simulator.
RunResult run_workload(std::size_t threads, bool with_chaos) {
  telemetry::MetricsRegistry::instance().reset();
  telemetry::SpanTracer::instance().reset();
  const bool parallel = threads > 0;

  std::unique_ptr<sim::Simulator> mono;
  std::unique_ptr<sim::ParallelSimulator> psim;
  std::unique_ptr<telemetry::ChromeTraceWriter> chrome;
  std::unique_ptr<netlayer::Network> net;
  if (parallel) {
    sim::ParallelConfig pc;
    pc.shards = kRing;
    pc.threads = threads;
    psim = std::make_unique<sim::ParallelSimulator>(pc);
    chrome = std::make_unique<telemetry::ChromeTraceWriter>(
        psim->chrome_lane_count());
    psim->attach_chrome_trace(chrome.get());
    sim::ShardMap map(kRing);
    for (std::size_t i = 0; i < kRing; ++i) map.assign(i, i);
    net = std::make_unique<netlayer::Network>(*psim, ring_router_config(),
                                              /*seed=*/1, map);
  } else {
    mono = std::make_unique<sim::Simulator>(sim::EngineKind::kTimerWheel);
    net = std::make_unique<netlayer::Network>(*mono, ring_router_config(),
                                              /*seed=*/1);
  }

  std::vector<netlayer::RouterId> routers;
  for (std::size_t i = 0; i < kRing; ++i) routers.push_back(net->add_router());
  for (std::size_t i = 0; i < kRing; ++i) {
    net->connect(routers[i], routers[(i + 1) % kRing], ring_link_config());
  }
  net->start();
  const auto warmup = TimePoint::from_ns(Duration::millis(500).ns());
  if (parallel) {
    psim->run_until(warmup);
  } else {
    mono->run_until(warmup);
  }

  transport::HostConfig hc;
  hc.connection.cm.keepalive_interval = Duration::seconds(2.0);
  std::vector<std::unique_ptr<transport::TcpHost>> hosts;
  // One byte-counter per accepted connection, per host, in accept order.
  // Each vector is only ever touched by its host's owning shard.
  std::vector<std::vector<std::shared_ptr<std::size_t>>> received(kRing);
  std::atomic<std::size_t> completed{0};
  for (std::size_t i = 0; i < kRing; ++i) {
    std::optional<sim::ParallelSimulator::ShardScope> scope;
    if (parallel) scope.emplace(*psim, net->shard_of(routers[i]));
    hosts.push_back(std::make_unique<transport::TcpHost>(
        net->router(routers[i]), 1, hc));
    auto* bucket = &received[i];
    hosts.back()->listen(80, [bucket, &completed](transport::Connection& c) {
      auto count = std::make_shared<std::size_t>(0);
      bucket->push_back(count);
      transport::Connection::AppCallbacks cb;
      cb.on_data = [count, &completed](Bytes data) {
        *count += data.size();
        if (*count == kPerFlow) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      };
      c.set_app_callbacks(cb);
    });
  }

  std::optional<chaos::ChaosController> chaos_ctl;
  if (with_chaos) {
    if (parallel) {
      chaos_ctl.emplace(*psim, *net);
    } else {
      chaos_ctl.emplace(*mono, *net);
    }
    chaos_ctl->arm(mayhem_plan(net->link_count()));
  }

  Rng rng(7);
  const Bytes payload = rng.next_bytes(kPerFlow);
  for (std::size_t f = 0; f < kFlows; ++f) {
    transport::TcpHost* client = hosts[f % kRing].get();
    transport::TcpHost* server = hosts[(f % kRing + 2) % kRing].get();
    const auto at =
        warmup + Duration::micros(static_cast<std::int64_t>(10 * (f + 1)));
    const auto go = [client, server, payload] {
      client->connect(server->addr(), 80).send(payload);
    };
    if (parallel) {
      psim->shard(net->shard_of(routers[f % kRing])).schedule_at(at, go);
    } else {
      mono->schedule_at(at, go);
    }
  }

  // Chaos windows all close by ~3.3 s; keepalives tick at 2 s.  A fixed
  // deadline makes the covered virtual window identical across variants.
  const auto deadline = TimePoint::from_ns(
      Duration::seconds(with_chaos ? 5.0 : 3.0).ns());
  RunResult out;
  if (parallel) {
    psim->run_until(deadline);
    out.events = psim->events_processed();
    out.cross_frames = psim->cross_shard_frames();
    out.metrics = psim->merged_metrics();
    out.trace_log = psim->cross_shard_trace_log();
    const auto flight = psim->merged_flight_records();
    out.flight_dump = telemetry::encode_flight_dump(flight, "replay");
    telemetry::export_flow_spans(flight, *chrome);
    out.chrome_canonical = chrome->canonical_json();
    for (const auto& layer : psim->merged_span_layers()) {
      out.crossings.emplace_back(
          layer, psim->merged_crossings(layer, telemetry::Dir::kDown),
          psim->merged_crossings(layer, telemetry::Dir::kUp),
          psim->merged_crossing_bytes(layer, telemetry::Dir::kDown));
    }
  } else {
    mono->run_until(deadline);
    out.events = mono->events_processed();
    out.metrics = telemetry::MetricsRegistry::instance().snapshot();
    auto& tracer = telemetry::SpanTracer::instance();
    for (const auto& layer : tracer.layers()) {
      out.crossings.emplace_back(
          layer, tracer.crossings(layer, telemetry::Dir::kDown),
          tracer.crossings(layer, telemetry::Dir::kUp),
          tracer.crossing_bytes(layer, telemetry::Dir::kDown));
    }
  }
  // merged_span_layers() is sorted; the monolithic tracer lists layers in
  // registration order.  Normalize so the two are comparable.
  std::sort(out.crossings.begin(), out.crossings.end());
  out.metrics_json = out.metrics.to_json();
  out.completed = completed.load(std::memory_order_relaxed);
  for (const auto& bucket : received) {
    std::vector<std::size_t> totals;
    for (const auto& c : bucket) totals.push_back(*c);
    out.per_host_bytes.push_back(std::move(totals));
  }
  if (chaos_ctl) {
    out.faults_applied = chaos_ctl->stats().faults_applied;
    out.faults_healed = chaos_ctl->stats().faults_healed;
  }
  return out;
}

/// Metric equality robust to stale zero-valued names interned into the
/// process-wide registry by earlier runs in the same process: every metric
/// present in `a` must read identically in `b` and vice versa, ignoring
/// zero-valued counters/gauges absent from the other side.
void expect_metrics_equal(const telemetry::MetricsSnapshot& a,
                          const telemetry::MetricsSnapshot& b,
                          const std::string& label) {
  for (const auto& [name, value] : a.counters) {
    if (value != 0) {
      EXPECT_EQ(b.counter(name), value) << label << " counter " << name;
    }
  }
  for (const auto& [name, value] : b.counters) {
    if (value != 0) {
      EXPECT_EQ(a.counter(name), value) << label << " counter " << name;
    }
  }
  for (const auto& [name, value] : a.gauges) {
    if (value != 0) {
      EXPECT_EQ(b.gauge(name), value) << label << " gauge " << name;
    }
  }
  for (const auto& h : a.histograms) {
    if (h.data.count == 0) continue;
    const auto* other = b.histogram(h.name);
    ASSERT_NE(other, nullptr) << label << " histogram " << h.name;
    EXPECT_EQ(other->count, h.data.count) << label << " " << h.name;
    EXPECT_EQ(other->sum, h.data.sum) << label << " " << h.name;
    EXPECT_EQ(other->min, h.data.min) << label << " " << h.name;
    EXPECT_EQ(other->max, h.data.max) << label << " " << h.name;
    EXPECT_EQ(other->buckets, h.data.buckets) << label << " " << h.name;
  }
}

void expect_runs_equal(const RunResult& a, const RunResult& b,
                       const std::string& label, bool compare_trace) {
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.per_host_bytes, b.per_host_bytes) << label;
  EXPECT_EQ(a.crossings, b.crossings) << label;
  EXPECT_EQ(a.faults_applied, b.faults_applied) << label;
  EXPECT_EQ(a.faults_healed, b.faults_healed) << label;
  expect_metrics_equal(a.metrics, b.metrics, label);
  if (compare_trace) {
    EXPECT_EQ(a.cross_frames, b.cross_frames) << label;
    EXPECT_EQ(a.trace_log, b.trace_log) << label;
    // The observability exports are part of the determinism contract:
    // merged black-box stream and the deterministic Chrome-trace slice.
    EXPECT_EQ(a.flight_dump, b.flight_dump) << label;
    EXPECT_EQ(a.chrome_canonical, b.chrome_canonical) << label;
  }
}

TEST(ParallelReplayTest, CleanWorkloadIdenticalAtEveryThreadCount) {
  const RunResult mono = run_workload(0, /*with_chaos=*/false);
  const RunResult t1 = run_workload(1, false);
  const RunResult t2 = run_workload(2, false);
  const RunResult t4 = run_workload(4, false);

  // The workload actually ran: all flows complete, telemetry is non-empty,
  // and traffic genuinely crossed shards.
  EXPECT_EQ(mono.completed, kFlows);
  EXPECT_GT(t1.cross_frames, 0u);
  EXPECT_FALSE(t1.trace_log.empty());
  EXPECT_GT(t1.metrics.counters.size(), 0u);
  // The exports actually observed the run: the black box holds records
  // beyond its header, and the Chrome trace carries epoch and flow spans.
  EXPECT_GT(t1.flight_dump.size(), 48u);
  EXPECT_NE(t1.chrome_canonical.find("\"epoch\""), std::string::npos);
  EXPECT_NE(t1.chrome_canonical.find("\"cat\":\"flow\""), std::string::npos);

  // Worker count is invisible: bit-identical everything, trace included.
  expect_runs_equal(t1, t2, "t1-vs-t2", /*compare_trace=*/true);
  expect_runs_equal(t1, t4, "t1-vs-t4", true);
  // Parallel JSON snapshots come from fresh per-shard registries: the
  // serialized form must match byte for byte.
  EXPECT_EQ(t1.metrics_json, t2.metrics_json);
  EXPECT_EQ(t1.metrics_json, t4.metrics_json);

  // And the sharded engine reproduces the single-threaded Simulator.
  expect_runs_equal(mono, t1, "mono-vs-t1", /*compare_trace=*/false);
}

TEST(ParallelReplayTest, ChaosMixedMayhemIdenticalAtEveryThreadCount) {
  const RunResult mono = run_workload(0, /*with_chaos=*/true);
  const RunResult t1 = run_workload(1, true);
  const RunResult t2 = run_workload(2, true);
  const RunResult t4 = run_workload(4, true);

  // The plan actually injected faults and every window closed.
  EXPECT_GT(t1.faults_applied, 0u);
  EXPECT_EQ(t1.faults_applied, t1.faults_healed);

  expect_runs_equal(t1, t2, "chaos-t1-vs-t2", /*compare_trace=*/true);
  expect_runs_equal(t1, t4, "chaos-t1-vs-t4", true);
  EXPECT_EQ(t1.metrics_json, t2.metrics_json);
  EXPECT_EQ(t1.metrics_json, t4.metrics_json);

  expect_runs_equal(mono, t1, "chaos-mono-vs-t1", /*compare_trace=*/false);
}

}  // namespace
}  // namespace sublayer
