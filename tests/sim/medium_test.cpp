#include "sim/medium.hpp"

#include <gtest/gtest.h>

namespace sublayer::sim {
namespace {

TEST(BroadcastMedium, SoleTransmissionReachesAllOtherStations) {
  Simulator sim;
  BroadcastMedium medium(sim, 1e6);
  int rx1 = 0;
  int rx2 = 0;
  bool tx_collided = true;
  const int s0 = medium.attach(nullptr, [&](bool c) { tx_collided = c; });
  medium.attach([&](Bytes) { ++rx1; }, nullptr);
  medium.attach([&](Bytes) { ++rx2; }, nullptr);

  medium.transmit(s0, Bytes(125, 0xff));  // 1000 bits = 1 ms at 1 Mbps
  EXPECT_TRUE(medium.carrier_busy());
  sim.run();
  EXPECT_FALSE(medium.carrier_busy());
  EXPECT_EQ(rx1, 1);
  EXPECT_EQ(rx2, 1);
  EXPECT_FALSE(tx_collided);
  EXPECT_EQ(medium.stats().collisions, 0u);
}

TEST(BroadcastMedium, OverlappingTransmissionsCollide) {
  Simulator sim;
  BroadcastMedium medium(sim, 1e6);
  int delivered = 0;
  bool c0 = false;
  bool c1 = false;
  const int s0 = medium.attach([&](Bytes) { ++delivered; },
                               [&](bool c) { c0 = c; });
  const int s1 = medium.attach([&](Bytes) { ++delivered; },
                               [&](bool c) { c1 = c; });

  medium.transmit(s0, Bytes(125, 1));
  medium.transmit(s1, Bytes(125, 2));  // overlaps in time
  sim.run();
  EXPECT_TRUE(c0);
  EXPECT_TRUE(c1);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(medium.stats().collisions, 2u);
}

TEST(BroadcastMedium, SequentialTransmissionsDoNotCollide) {
  Simulator sim;
  BroadcastMedium medium(sim, 1e6);
  int delivered = 0;
  const int s0 = medium.attach([&](Bytes) { ++delivered; }, nullptr);
  const int s1 = medium.attach([&](Bytes) { ++delivered; }, nullptr);

  medium.transmit(s0, Bytes(125, 1));
  sim.run();  // first finishes
  medium.transmit(s1, Bytes(125, 2));
  sim.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(medium.stats().collisions, 0u);
}

TEST(BroadcastMedium, SenderDoesNotHearItself) {
  Simulator sim;
  BroadcastMedium medium(sim, 1e6);
  int self_rx = 0;
  const int s0 = medium.attach([&](Bytes) { ++self_rx; }, nullptr);
  medium.attach([](Bytes) {}, nullptr);
  medium.transmit(s0, Bytes(10, 1));
  sim.run();
  EXPECT_EQ(self_rx, 0);
}

TEST(BroadcastMedium, LatecomerCollidesBothEvenIfFirstNearlyDone) {
  Simulator sim;
  BroadcastMedium medium(sim, 1e6);
  int delivered = 0;
  const int s0 = medium.attach([&](Bytes) { ++delivered; }, nullptr);
  const int s1 = medium.attach([&](Bytes) { ++delivered; }, nullptr);

  medium.transmit(s0, Bytes(125, 1));  // 1 ms
  sim.run_until(TimePoint::from_ns(Duration::micros(900).ns()));
  medium.transmit(s1, Bytes(125, 2));  // overlaps the tail
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(medium.stats().collisions, 2u);
}

}  // namespace
}  // namespace sublayer::sim
