// Topology-aware ShardMap partitioner: edge-cut never worse than hash
// placement on canonical fixtures (ring, star, fat-tree), deterministic
// output for a fixed graph, assign-override precedence, and the balance /
// non-empty-shard guarantees the parallel engine relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/parallel.hpp"

namespace sublayer::sim {
namespace {

std::vector<TopoEdge> ring_edges(std::uint64_t n, std::int64_t lat = 1000) {
  std::vector<TopoEdge> edges;
  for (std::uint64_t i = 0; i < n; ++i) {
    edges.push_back(TopoEdge{i, (i + 1) % n, lat});
  }
  return edges;
}

std::vector<TopoEdge> star_edges(std::uint64_t leaves,
                                 std::int64_t lat = 1000) {
  std::vector<TopoEdge> edges;  // hub is node 0
  for (std::uint64_t i = 1; i <= leaves; ++i) {
    edges.push_back(TopoEdge{0, i, lat});
  }
  return edges;
}

// A small fat-tree-ish fixture: 2 cores, 4 aggregations, 8 edge routers.
// Core<->agg uplinks are long-haul (high latency), agg<->edge links are
// short — the partitioner should keep each agg with its edge routers and
// cut the wide uplinks.
std::vector<TopoEdge> fat_tree_edges() {
  std::vector<TopoEdge> edges;
  // nodes: 0-1 cores, 2-5 aggs, 6-13 edges
  for (std::uint64_t agg = 2; agg <= 5; ++agg) {
    edges.push_back(TopoEdge{0, agg, 50000});
    edges.push_back(TopoEdge{1, agg, 50000});
  }
  for (std::uint64_t agg = 2; agg <= 5; ++agg) {
    const std::uint64_t e0 = 6 + (agg - 2) * 2;
    edges.push_back(TopoEdge{agg, e0, 1000});
    edges.push_back(TopoEdge{agg, e0 + 1, 1000});
  }
  return edges;
}

std::vector<std::size_t> placement(const ShardMap& map, std::uint64_t n) {
  std::vector<std::size_t> out;
  for (std::uint64_t id = 0; id < n; ++id) out.push_back(map.of(id));
  return out;
}

std::vector<std::size_t> shard_sizes(const ShardMap& map, std::uint64_t n) {
  std::vector<std::size_t> sizes(map.shards(), 0);
  for (std::uint64_t id = 0; id < n; ++id) ++sizes[map.of(id)];
  return sizes;
}

TEST(PartitionerTest, RingCutNeverWorseThanHashAndContiguous) {
  const auto edges = ring_edges(16);
  const ShardMap hash(4);
  const ShardMap topo = ShardMap::topology_aware(4, 16, edges);
  EXPECT_LE(ShardMap::edge_cut(topo, edges), ShardMap::edge_cut(hash, edges));
  // A 16-ring over 4 shards has an optimal cut of 4 (one per block seam);
  // greedy BFS growth along the ring finds it exactly.
  EXPECT_EQ(ShardMap::edge_cut(topo, edges), 4u);
  EXPECT_EQ(topo.method(), "greedy-kl");
}

TEST(PartitionerTest, StarCutNeverWorseThanHash) {
  const auto edges = star_edges(12);
  const ShardMap hash(3);
  const ShardMap topo = ShardMap::topology_aware(3, 13, edges);
  EXPECT_LE(ShardMap::edge_cut(topo, edges), ShardMap::edge_cut(hash, edges));
  // Every edge touches the hub, so any balanced split cuts the leaves on
  // other shards: the floor is leaves - (hub shard's leaf count).
  const auto sizes = shard_sizes(topo, 13);
  for (const std::size_t s : sizes) EXPECT_GE(s, 1u);
}

TEST(PartitionerTest, FatTreeCutNeverWorseThanHashAndKeepsPodsTogether) {
  const auto edges = fat_tree_edges();
  const ShardMap hash(4);
  const ShardMap topo = ShardMap::topology_aware(4, 14, edges);
  EXPECT_LE(ShardMap::edge_cut(topo, edges), ShardMap::edge_cut(hash, edges));
  // The low-latency agg<->edge pod links must survive: each agg shares a
  // shard with both of its edge routers (cutting a pod would trade a cheap
  // 1 us horizon for an expensive one).
  for (std::uint64_t agg = 2; agg <= 5; ++agg) {
    const std::uint64_t e0 = 6 + (agg - 2) * 2;
    EXPECT_EQ(topo.of(agg), topo.of(e0)) << "agg " << agg;
    EXPECT_EQ(topo.of(agg), topo.of(e0 + 1)) << "agg " << agg;
  }
}

TEST(PartitionerTest, DeterministicForAFixedGraph) {
  const auto edges = fat_tree_edges();
  const ShardMap a = ShardMap::topology_aware(4, 14, edges);
  const ShardMap b = ShardMap::topology_aware(4, 14, edges);
  EXPECT_EQ(placement(a, 14), placement(b, 14));
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(ShardMap::edge_cut(a, edges), ShardMap::edge_cut(b, edges));
}

TEST(PartitionerTest, AssignOverridesThePlan) {
  const auto edges = ring_edges(8);
  ShardMap topo = ShardMap::topology_aware(4, 8, edges);
  const std::size_t planned = topo.of(3);
  const std::size_t forced = (planned + 1) % 4;
  topo.assign(3, forced);
  EXPECT_EQ(topo.of(3), forced);
  // edge_cut uses of(), so the override's (likely worse) cut is what gets
  // reported — the metric reflects the placement actually in force.
  const ShardMap clean = ShardMap::topology_aware(4, 8, edges);
  EXPECT_GE(ShardMap::edge_cut(topo, edges),
            ShardMap::edge_cut(clean, edges));
}

TEST(PartitionerTest, BalancedCeilingAndNoEmptyShards) {
  const auto edges = ring_edges(10);
  const ShardMap topo = ShardMap::topology_aware(4, 10, edges);
  const auto sizes = shard_sizes(topo, 10);
  std::size_t total = 0;
  for (const std::size_t s : sizes) {
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 3u);  // ceil(10 / 4)
    total += s;
  }
  EXPECT_EQ(total, 10u);
}

TEST(PartitionerTest, DisconnectedComponentsLandOnDistinctShards) {
  // Two 4-cliques with no edge between them: the natural 2-shard split.
  std::vector<TopoEdge> edges;
  for (std::uint64_t base : {0ull, 4ull}) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      for (std::uint64_t j = i + 1; j < 4; ++j) {
        edges.push_back(TopoEdge{base + i, base + j, 1000});
      }
    }
  }
  const ShardMap topo = ShardMap::topology_aware(2, 8, edges);
  EXPECT_EQ(ShardMap::edge_cut(topo, edges), 0u);
  EXPECT_NE(topo.of(0), topo.of(4));
}

TEST(PartitionerTest, HashMapDescribesItself) {
  ShardMap hash(4);
  hash.assign(7, 2);
  EXPECT_EQ(hash.method(), "hash");
  EXPECT_EQ(hash.describe(), "hash(shards=4,overrides=1)");
  const ShardMap topo = ShardMap::topology_aware(4, 16, ring_edges(16));
  EXPECT_EQ(topo.describe(),
            "greedy-kl(shards=4,nodes=16,edge_cut=4,overrides=0)");
}

TEST(PartitionerTest, DescribeReportsTheCutInForce) {
  const auto edges = ring_edges(16);
  ShardMap topo = ShardMap::topology_aware(4, 16, edges);
  EXPECT_EQ(topo.describe(),
            "greedy-kl(shards=4,nodes=16,edge_cut=4,overrides=0)");
  // Pin a node off its planned block: the describe() string (stamped into
  // Chrome-trace metadata at Network construction) must report the
  // override's cut, not the stale plan-time cut.
  topo.assign(0, (topo.of(0) + 1) % 4);
  const std::size_t live_cut = ShardMap::edge_cut(topo, edges);
  EXPECT_GT(live_cut, 4u);
  EXPECT_EQ(topo.describe(), "greedy-kl(shards=4,nodes=16,edge_cut=" +
                                 std::to_string(live_cut) + ",overrides=1)");
}

TEST(PartitionerTest, SingleShardAndEmptyGraphDegenerate) {
  const ShardMap one = ShardMap::topology_aware(1, 8, ring_edges(8));
  for (std::uint64_t id = 0; id < 8; ++id) EXPECT_EQ(one.of(id), 0u);
  const ShardMap empty = ShardMap::topology_aware(4, 0, {});
  EXPECT_EQ(empty.method(), "hash");
  EXPECT_THROW(ShardMap::topology_aware(2, 4, {TopoEdge{0, 9, 1}}),
               std::out_of_range);
}

}  // namespace
}  // namespace sublayer::sim
