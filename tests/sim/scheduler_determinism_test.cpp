// Determinism regression suite for the event-engine swap (PR 4).
//
// The simulator's contract — same seed ⇒ identical replay, FIFO among
// same-time events, run_until horizon semantics — must hold for BOTH
// engines, and the two engines must replay byte-identical schedules:
// the wheel is only a faster data structure, never a different order.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/controller.hpp"
#include "chaos/fault_plan.hpp"
#include "common/rng.hpp"
#include "netlayer/router.hpp"
#include "sim/simulator.hpp"
#include "transport/sublayered/host.hpp"

namespace sublayer::sim {
namespace {

class SchedulerDeterminism : public ::testing::TestWithParam<EngineKind> {};

INSTANTIATE_TEST_SUITE_P(Engines, SchedulerDeterminism,
                         ::testing::Values(EngineKind::kTimerWheel,
                                           EngineKind::kLegacyHeap),
                         [](const auto& info) {
                           return info.param == EngineKind::kTimerWheel
                                      ? "wheel"
                                      : "legacy_heap";
                         });

TEST_P(SchedulerDeterminism, SameTimeEventsFireInInsertionOrder) {
  Simulator sim(GetParam());
  std::vector<int> order;
  // A large same-time batch, inserted out of any convenient order.
  for (int i = 0; i < 64; ++i) {
    sim.schedule(Duration::millis(5), [&, i] { order.push_back(i); });
  }
  sim.schedule(Duration::millis(1), [&] { order.push_back(-1); });
  sim.run();
  ASSERT_EQ(order.size(), 65u);
  EXPECT_EQ(order.front(), -1);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i + 1], i) << i;
}

TEST_P(SchedulerDeterminism, ZeroDelayFromCallbackRunsAfterQueuedPeers) {
  // An event that schedules a 0-delay follow-up: the follow-up fires at
  // the same timestamp but AFTER everything already queued there (higher
  // insertion seq), in both engines.
  Simulator sim(GetParam());
  std::vector<std::string> order;
  sim.schedule(Duration::millis(1), [&] {
    order.push_back("first");
    sim.schedule(Duration::nanos(0), [&] { order.push_back("follow-up"); });
  });
  sim.schedule(Duration::millis(1), [&] { order.push_back("second"); });
  sim.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"first", "second", "follow-up"}));
}

TEST_P(SchedulerDeterminism, RunUntilParksInsideAnOccupiedWindow) {
  // The deadline falls between now and the earliest event (inside the
  // same wheel window): nothing fires, the clock parks exactly at the
  // deadline, and events scheduled after parking still fire in time
  // order ahead of the original one.
  Simulator sim(GetParam());
  std::vector<int> order;
  sim.schedule_at(TimePoint::from_ns(300), [&] { order.push_back(300); });
  sim.run_until(TimePoint::from_ns(260));
  EXPECT_EQ(sim.now().ns(), 260);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(order.empty());
  sim.schedule_at(TimePoint::from_ns(270), [&] { order.push_back(270); });
  sim.schedule_at(TimePoint::from_ns(280), [&] { order.push_back(280); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{270, 280, 300}));
}

TEST_P(SchedulerDeterminism, RunUntilFiresEventsExactlyAtDeadline) {
  Simulator sim(GetParam());
  int fired = 0;
  sim.schedule(Duration::millis(2), [&] { ++fired; });
  sim.schedule(Duration::millis(2), [&] { ++fired; });
  sim.schedule_at(TimePoint::from_ns(Duration::millis(2).ns() + 1),
                  [&] { ++fired; });
  sim.run_until(TimePoint::from_ns(Duration::millis(2).ns()));
  EXPECT_EQ(fired, 2);  // at-deadline fires, beyond-deadline waits
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST_P(SchedulerDeterminism, LongDelaysInterleaveWithShortOnes) {
  // Delays beyond the wheel's 2^32 ns (~4.29 s) horizon take the overflow
  // path; ordering across the horizon boundary must be seamless, and a
  // same-time tie that straddles the arm-order must stay FIFO.
  Simulator sim(GetParam());
  std::vector<int> order;
  const auto at = [&](double seconds, int label) {
    sim.schedule(Duration::seconds(seconds), [&, label] {
      order.push_back(label);
    });
  };
  at(9.0, 90);
  at(0.001, 1);
  at(5.0, 50);
  at(4.0, 40);   // inside the horizon
  at(5.0, 51);   // ties with 50: FIFO
  at(10.0, 100);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 40, 50, 51, 90, 100}));
}

TEST_P(SchedulerDeterminism, ParkInsideOverflowBlockKeepsTimeOrder) {
  // Regression: run_until parks the cursor at a deadline that lies INSIDE
  // an overflow event's 2^32 ns block (both 4.5 s and 5 s have bit 32
  // set).  An event then armed in the same block files straight into the
  // wheel; it must NOT fire ahead of the earlier still-parked overflow
  // event, and the clock must never rewind.
  Simulator sim(GetParam());
  std::vector<std::int64_t> fired_at;
  const auto record = [&] { fired_at.push_back(sim.now().ns()); };
  sim.schedule(Duration::seconds(5.0), record);  // beyond the wheel horizon
  sim.run_until(TimePoint::from_ns(Duration::seconds(4.5).ns()));
  EXPECT_TRUE(fired_at.empty());
  EXPECT_EQ(sim.now().ns(), Duration::seconds(4.5).ns());
  sim.schedule(Duration::seconds(1.0), record);  // 5.5 s, same 2^32 block
  sim.run_until(TimePoint::from_ns(Duration::seconds(10.0).ns()));
  EXPECT_EQ(fired_at, (std::vector<std::int64_t>{
                          Duration::seconds(5.0).ns(),
                          Duration::seconds(5.5).ns()}));
  EXPECT_EQ(sim.now().ns(), Duration::seconds(10.0).ns());
}

TEST_P(SchedulerDeterminism, CancelBeyondHorizonIsHonoured) {
  Simulator sim(GetParam());
  bool fired = false;
  const EventId id =
      sim.schedule(Duration::seconds(100.0), [&] { fired = true; });
  sim.schedule(Duration::seconds(200.0), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now().ns(), Duration::seconds(200.0).ns());
}

TEST_P(SchedulerDeterminism, TimerRestartChurnKeepsOneEventPending) {
  Simulator sim(GetParam());
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  for (int i = 0; i < 1000; ++i) t.restart(Duration::millis(10));
  // The heap engine counts cancelled husks out of pending(); the wheel
  // unlinks them outright.  Both must report exactly one pending firing.
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 1);
}

// ---- Cross-engine replay ----------------------------------------------------

/// One (time, label) pair per fired event: the observable schedule.
using Trace = std::vector<std::pair<std::int64_t, std::uint32_t>>;

/// Drives a randomized schedule/cancel/restart workload and records the
/// firing order.  Everything is derived from `seed`, so two engines fed
/// the same seed must produce identical traces.
Trace run_workload(EngineKind kind, std::uint64_t seed) {
  Simulator sim(kind);
  Rng rng(seed);
  Trace trace;
  std::vector<EventId> cancellable;
  std::uint32_t next_label = 0;

  const auto arm = [&](auto&& self) -> void {
    const std::uint32_t label = next_label++;
    // Mix of sub-tick, in-wheel, and overflow delays, with heavy ties.
    const std::uint64_t pick = rng.next_below(100);
    Duration delay = Duration::nanos(0);
    if (pick < 30) {
      delay = Duration::nanos(static_cast<std::int64_t>(rng.next_below(4)));
    } else if (pick < 85) {
      delay = Duration::micros(static_cast<std::int64_t>(rng.next_below(500)));
    } else if (pick < 95) {
      delay = Duration::millis(static_cast<std::int64_t>(rng.next_below(200)));
    } else {
      delay = Duration::seconds(4.0 + rng.next_double() * 4.0);
    }
    const EventId id = sim.schedule(delay, [&, label, self] {
      trace.emplace_back(sim.now().ns(), label);
      // Fired events re-arm a few successors and cancel a random victim,
      // so cancellation interleaves with firing throughout the run.
      if (next_label < 4000) {
        const std::uint64_t n = rng.next_below(3);
        for (std::uint64_t i = 0; i < n; ++i) self(self);
        if (!cancellable.empty() && rng.next_below(2) == 0) {
          const std::size_t victim = rng.next_below(cancellable.size());
          sim.cancel(cancellable[victim]);
          cancellable.erase(cancellable.begin() +
                            static_cast<std::ptrdiff_t>(victim));
        }
      }
    });
    if (rng.next_below(3) == 0) cancellable.push_back(id);
  };

  for (int i = 0; i < 200; ++i) arm(arm);
  sim.run();
  return trace;
}

TEST(SchedulerCrossEngine, RandomizedWorkloadsReplayIdentically) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
    const Trace wheel = run_workload(EngineKind::kTimerWheel, seed);
    const Trace heap = run_workload(EngineKind::kLegacyHeap, seed);
    ASSERT_FALSE(wheel.empty());
    ASSERT_EQ(wheel, heap) << "seed " << seed;
  }
}

// ---- Full-stack chaos soak replay -------------------------------------------

struct SoakOutcome {
  std::uint64_t events_processed = 0;
  std::size_t bytes_received = 0;
  std::int64_t finished_ns = 0;
  std::uint64_t faults_applied = 0;
};

/// A seeded chaos transfer — 3-router line, lossy middle links, a
/// link-flap fault script — run to a fixed virtual horizon.  The whole
/// run is a function of (engine, seed); swapping the engine must not
/// change a single observable.
SoakOutcome run_chaos_soak(EngineKind kind, std::uint64_t seed) {
  Simulator sim(kind);
  netlayer::RouterConfig rc;
  rc.routing = netlayer::RoutingKind::kLinkState;
  netlayer::Network net(sim, rc, seed);
  const auto r0 = net.add_router();
  const auto r1 = net.add_router();
  const auto r2 = net.add_router();
  LinkConfig link;
  link.bandwidth_bps = 10e6;
  link.propagation_delay = Duration::micros(200);
  link.loss_rate = 0.005;
  net.connect(r0, r1, link);
  net.connect(r1, r2, link);
  transport::TcpHost client(sim, net.router(r0), 1);
  transport::TcpHost server(sim, net.router(r2), 1);
  net.start();
  sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));

  SoakOutcome out;
  server.listen(80, [&](transport::Connection& conn) {
    transport::Connection::AppCallbacks cb;
    cb.on_data = [&](Bytes data) {
      out.bytes_received += data.size();
      out.finished_ns = sim.now().ns();
    };
    conn.set_app_callbacks(cb);
  });
  Rng payload_rng(seed + 99);
  auto& conn = client.connect(server.addr(), 80);
  conn.send(payload_rng.next_bytes(96 * 1024));

  chaos::ScriptParams params;
  params.link_count = net.link_count();
  params.router_count = net.router_count();
  params.start = sim.now() + Duration::millis(100);
  params.active_window = Duration::seconds(2.0);
  chaos::ChaosController controller(sim, net);
  controller.arm(chaos::make_plan("link-flap", seed, params));

  sim.run_until(TimePoint::from_ns(Duration::seconds(12.0).ns()));
  out.events_processed = sim.events_processed();
  out.faults_applied = controller.stats().faults_applied;
  return out;
}

TEST(SchedulerCrossEngine, ChaosSoakReplaysIdentically) {
  for (const std::uint64_t seed : {3ull, 11ull}) {
    const SoakOutcome wheel = run_chaos_soak(EngineKind::kTimerWheel, seed);
    const SoakOutcome heap = run_chaos_soak(EngineKind::kLegacyHeap, seed);
    EXPECT_EQ(wheel.bytes_received, 96u * 1024) << "seed " << seed;
    EXPECT_EQ(wheel.bytes_received, heap.bytes_received) << "seed " << seed;
    EXPECT_EQ(wheel.finished_ns, heap.finished_ns) << "seed " << seed;
    EXPECT_EQ(wheel.faults_applied, heap.faults_applied) << "seed " << seed;
    EXPECT_EQ(wheel.events_processed, heap.events_processed)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace sublayer::sim
