// Snapshot container and per-module round-trip properties: the writer/
// reader pair rejects corrupt images, and every core-module save/restore
// resumes bit-identically to the straight-through run (same firing order,
// same re-saved image bytes).
#include "sim/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::sim {
namespace {

// ---- container ------------------------------------------------------------

Bytes make_image() {
  SnapshotWriter w;
  w.begin_section("alpha");
  w.u8(7);
  w.b(true);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.25);
  w.time(TimePoint::from_ns(1'000'000));
  w.dur(Duration::micros(250));
  w.str("hello snapshot");
  w.blob(Bytes{1, 2, 3, 4, 5});
  w.end_section();
  w.begin_section("beta");
  w.u32(99);
  w.end_section();
  return w.finish();
}

TEST(SnapshotContainer, RoundTripsPrimitives) {
  const Bytes image = make_image();
  SnapshotReader r(image);
  EXPECT_EQ(r.section_names(),
            (std::vector<std::string>{"alpha", "beta"}));
  r.begin_section("alpha");
  EXPECT_EQ(r.u8(), 7);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.time(), TimePoint::from_ns(1'000'000));
  EXPECT_EQ(r.dur(), Duration::micros(250));
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_EQ(r.blob(), (Bytes{1, 2, 3, 4, 5}));
  r.end_section();
  r.begin_section("beta");
  EXPECT_EQ(r.u32(), 99u);
  r.end_section();
}

TEST(SnapshotContainer, RejectsBitFlip) {
  Bytes image = make_image();
  // Flip one payload bit somewhere in the middle of the image.
  image[image.size() / 2] ^= 0x10;
  EXPECT_THROW(SnapshotReader r(image), SnapshotError);
}

TEST(SnapshotContainer, RejectsTruncation) {
  Bytes image = make_image();
  image.resize(image.size() - 3);
  EXPECT_THROW(SnapshotReader r(image), SnapshotError);
  Bytes tiny(image.begin(), image.begin() + 4);
  EXPECT_THROW(SnapshotReader r2(tiny), SnapshotError);
}

TEST(SnapshotContainer, RejectsBadMagic) {
  Bytes image = make_image();
  image[0] ^= 0xFF;
  EXPECT_THROW(SnapshotReader r(image), SnapshotError);
}

TEST(SnapshotContainer, RejectsWrongSectionName) {
  const Bytes image = make_image();
  SnapshotReader r(image);
  EXPECT_THROW(r.begin_section("beta"), SnapshotError);  // "alpha" is first
}

TEST(SnapshotContainer, RejectsUnderConsumedSection) {
  const Bytes image = make_image();
  SnapshotReader r(image);
  r.begin_section("alpha");
  r.u8();
  EXPECT_THROW(r.end_section(), SnapshotError);
}

TEST(SnapshotContainer, RejectsReadPastSectionEnd) {
  const Bytes image = make_image();
  SnapshotReader r(image);
  r.begin_section("alpha");
  for (;;) {
    // Drain the section one byte at a time; the read past the end throws.
    try {
      r.u8();
    } catch (const SnapshotError&) {
      SUCCEED();
      return;
    }
  }
}

// ---- simulator + timers ---------------------------------------------------

// A module owning three timers: two self-rescheduling tickers and one
// far-future one-shot that lands in the wheel engine's overflow heap
// (the 4x8-bit wheel spans ~4.3 virtual seconds).
struct Ticker {
  Ticker(Simulator& sim, std::vector<std::pair<std::int64_t, int>>& log)
      : sim_(sim),
        log_(log),
        fast_(sim, [this] { fire(1, Duration::micros(7), &fast_); }),
        slow_(sim, [this] { fire(2, Duration::micros(50), &slow_); }),
        far_(sim, [this] { fire(3, Duration::nanos(0), nullptr); }) {}

  void start() {
    fast_.restart(Duration::micros(7));
    slow_.restart(Duration::micros(50));
    far_.restart(Duration::seconds(30));
  }

  void fire(int id, Duration period, Timer* timer) {
    log_.push_back({sim_.now().ns(), id});
    if (timer != nullptr) timer->restart(period);
  }

  void save(SnapshotWriter& w) const {
    w.begin_section("test.ticker");
    fast_.save(w);
    slow_.save(w);
    far_.save(w);
    w.end_section();
  }
  void restore(SnapshotReader& r) {
    r.begin_section("test.ticker");
    fast_.restore(r);
    slow_.restore(r);
    far_.restore(r);
    r.end_section();
  }

  Simulator& sim_;
  std::vector<std::pair<std::int64_t, int>>& log_;
  Timer fast_;
  Timer slow_;
  Timer far_;
};

Bytes save_world(const Simulator& sim, const Ticker& ticker) {
  SnapshotWriter w;
  sim.save(w);
  ticker.save(w);
  return w.finish();
}

class SimSnapshot : public ::testing::TestWithParam<EngineKind> {};

INSTANTIATE_TEST_SUITE_P(Engines, SimSnapshot,
                         ::testing::Values(EngineKind::kTimerWheel,
                                           EngineKind::kLegacyHeap),
                         [](const auto& info) {
                           return info.param == EngineKind::kTimerWheel
                                      ? "wheel"
                                      : "heap";
                         });

TEST_P(SimSnapshot, ResumesBitIdentically) {
  const TimePoint mid = TimePoint::from_ns(Duration::micros(200).ns());
  const TimePoint end = TimePoint::from_ns(Duration::millis(1).ns());

  // Straight-through run, snapshotting at the mid park point.
  std::vector<std::pair<std::int64_t, int>> log_a;
  Simulator sim_a(GetParam());
  Ticker ticker_a(sim_a, log_a);
  ticker_a.start();
  sim_a.run_until(mid);
  const Bytes image = save_world(sim_a, ticker_a);
  const std::size_t mid_count = log_a.size();
  const std::uint64_t mid_processed = sim_a.events_processed();
  sim_a.run_until(end);
  const Bytes final_a = save_world(sim_a, ticker_a);

  // Resume from the mid image in a fresh, identically configured graph.
  std::vector<std::pair<std::int64_t, int>> log_b;
  Simulator sim_b(GetParam());
  Ticker ticker_b(sim_b, log_b);  // not started: restore re-arms
  SnapshotReader r(image);
  sim_b.restore(r);
  ticker_b.restore(r);
  sim_b.finish_restore();
  EXPECT_EQ(sim_b.now(), mid);
  EXPECT_EQ(sim_b.events_processed(), mid_processed);
  sim_b.run_until(end);

  // Post-snapshot firings must match the straight-through suffix exactly.
  const std::vector<std::pair<std::int64_t, int>> suffix(
      log_a.begin() + static_cast<std::ptrdiff_t>(mid_count), log_a.end());
  EXPECT_EQ(log_b, suffix);

  // Strongest check: re-saving both worlds at the common end time yields
  // byte-identical images (clock, counters, sched stats, pending tables).
  const Bytes final_b = save_world(sim_b, ticker_b);
  EXPECT_EQ(final_a, final_b);
}

TEST(SimSnapshot, CrossEngineRestoreMatchesFiringOrder) {
  const TimePoint mid = TimePoint::from_ns(Duration::micros(200).ns());
  const TimePoint end = TimePoint::from_ns(Duration::millis(1).ns());

  std::vector<std::pair<std::int64_t, int>> log_a;
  Simulator sim_a(EngineKind::kTimerWheel);
  Ticker ticker_a(sim_a, log_a);
  ticker_a.start();
  sim_a.run_until(mid);
  const Bytes image = save_world(sim_a, ticker_a);
  const std::size_t mid_count = log_a.size();
  sim_a.run_until(end);

  // The image is engine-agnostic: restore it into the legacy heap engine.
  std::vector<std::pair<std::int64_t, int>> log_b;
  Simulator sim_b(EngineKind::kLegacyHeap);
  Ticker ticker_b(sim_b, log_b);
  SnapshotReader r(image);
  sim_b.restore(r);
  ticker_b.restore(r);
  sim_b.finish_restore();
  sim_b.run_until(end);

  const std::vector<std::pair<std::int64_t, int>> suffix(
      log_a.begin() + static_cast<std::ptrdiff_t>(mid_count), log_a.end());
  EXPECT_EQ(log_b, suffix);
  EXPECT_EQ(sim_b.events_processed(), sim_a.events_processed());
  EXPECT_EQ(sim_b.now(), sim_a.now());
}

TEST(SimSnapshot, FinishRestoreRejectsUnownedClosure) {
  // An ad-hoc one-shot closure has no restoring owner: the quiescent-point
  // rule says snapshots taken while one is pending must fail on restore.
  Simulator sim_a;
  sim_a.schedule(Duration::micros(5), [] {});
  sim_a.run_until(TimePoint::from_ns(Duration::micros(1).ns()));
  SnapshotWriter w;
  sim_a.save(w);
  const Bytes image = w.finish();

  Simulator sim_b;
  SnapshotReader r(image);
  sim_b.restore(r);
  EXPECT_THROW(sim_b.finish_restore(), SnapshotError);
}

TEST(SimSnapshot, FinishRestoreRejectsDivergentRearm) {
  Simulator sim_a;
  std::vector<std::pair<std::int64_t, int>> unused;
  Ticker ticker_a(sim_a, unused);
  ticker_a.start();
  sim_a.run_until(TimePoint::from_ns(Duration::micros(1).ns()));
  const Bytes image = save_world(sim_a, ticker_a);

  // Re-arm one event under the wrong seq: finish_restore names the
  // divergence instead of silently changing the firing order.
  Simulator sim_b;
  SnapshotReader r(image);
  sim_b.restore(r);
  r.begin_section("test.ticker");
  for (int i = 0; i < 3; ++i) {
    if (r.b()) {
      const TimePoint deadline = r.time();
      const std::uint64_t seq = r.u64();
      sim_b.schedule_restored_at(deadline, seq + 1000, [] {});
    }
  }
  r.end_section();
  EXPECT_THROW(sim_b.finish_restore(), SnapshotError);
}

TEST(SimSnapshot, RestoreIntoUsedSimulatorThrows) {
  Simulator sim_a;
  sim_a.run_until(TimePoint::from_ns(100));
  SnapshotWriter w;
  sim_a.save(w);
  const Bytes image = w.finish();

  Simulator sim_b;
  sim_b.schedule(Duration::nanos(10), [] {});
  sim_b.run();
  SnapshotReader r(image);
  EXPECT_THROW(sim_b.restore(r), SnapshotError);
}

// ---- link in-flight frames ------------------------------------------------

TEST(LinkSnapshot, InFlightFramesResumeBitIdentically) {
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.propagation_delay = Duration::micros(200);
  cfg.jitter = Duration::micros(100);  // reordering pressure
  cfg.loss_rate = 0.1;
  cfg.duplicate_rate = 0.05;

  const TimePoint mid = TimePoint::from_ns(Duration::millis(1).ns());
  const TimePoint end = TimePoint::from_ns(Duration::millis(20).ns());
  auto frame = [](int i) {
    return Bytes(static_cast<std::size_t>(100 + i * 7),
                 static_cast<std::uint8_t>(i));
  };
  using DeliveryLog = std::vector<std::pair<std::int64_t, Bytes>>;

  // Straight through.
  DeliveryLog log_a;
  Simulator sim_a;
  Link link_a(sim_a, cfg, Rng(42), "snap");
  link_a.set_receiver(
      [&](Bytes f) { log_a.emplace_back(sim_a.now().ns(), std::move(f)); });
  for (int i = 0; i < 40; ++i) link_a.send(frame(i));
  sim_a.run_until(mid);
  ASSERT_GT(link_a.stats().frames_delivered, 0u);
  ASSERT_LT(link_a.stats().frames_delivered + link_a.stats().frames_lost +
                link_a.stats().frames_queue_dropped,
            40u)
      << "snapshot instant should catch frames in flight";
  SnapshotWriter wa;
  sim_a.save(wa);
  wa.begin_section("test.link");
  link_a.save(wa);
  wa.end_section();
  const Bytes image = wa.finish();
  const std::size_t mid_count = log_a.size();
  sim_a.run_until(end);
  SnapshotWriter wa2;
  sim_a.save(wa2);
  wa2.begin_section("test.link");
  link_a.save(wa2);
  wa2.end_section();
  const Bytes final_a = wa2.finish();

  // Resume: a differently seeded Rng proves the stream is restored too.
  DeliveryLog log_b;
  Simulator sim_b;
  Link link_b(sim_b, LinkConfig{}, Rng(999), "snap");
  link_b.set_receiver(
      [&](Bytes f) { log_b.emplace_back(sim_b.now().ns(), std::move(f)); });
  SnapshotReader r(image);
  sim_b.restore(r);
  r.begin_section("test.link");
  link_b.restore(r);
  r.end_section();
  sim_b.finish_restore();
  EXPECT_EQ(link_b.config(), cfg);
  sim_b.run_until(end);

  const DeliveryLog suffix(
      log_a.begin() + static_cast<std::ptrdiff_t>(mid_count), log_a.end());
  EXPECT_EQ(log_b, suffix);

  SnapshotWriter wb;
  sim_b.save(wb);
  wb.begin_section("test.link");
  link_b.save(wb);
  wb.end_section();
  EXPECT_EQ(wb.finish(), final_a);
}

// ---- flight recorder ------------------------------------------------------

TEST(FlightSnapshot, SeqsContinueMonotonicallyAcrossRestore) {
  telemetry::FlightRecorder fr(8);
  fr.set_shard(3);
  for (int i = 0; i < 5; ++i) {
    fr.record(telemetry::FlightType::kMark, "pre", TimePoint::from_ns(i), i);
  }
  SnapshotWriter w;
  save_flight(w, fr);
  const Bytes image = w.finish();

  telemetry::FlightRecorder fresh(8);
  SnapshotReader r(image);
  restore_flight(r, fresh);
  EXPECT_EQ(fresh.total_records(), 5u);
  EXPECT_EQ(fresh.shard(), 3);
  EXPECT_EQ(fresh.recent(), fr.recent());
  EXPECT_EQ(fresh.serialize(), fr.serialize());

  // Post-resume records continue the straight-through numbering: the merge
  // key (time, shard, seq) stays stable across the restore.
  fresh.record(telemetry::FlightType::kMark, "post", TimePoint::from_ns(100));
  fresh.record(telemetry::FlightType::kMark, "post", TimePoint::from_ns(101));
  const auto records = fresh.recent();
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[5].seq, 5u);
  EXPECT_EQ(records[6].seq, 6u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LT(records[i - 1].seq, records[i].seq);
  }
}

TEST(FlightSnapshot, WrappedRingRoundTrips) {
  telemetry::FlightRecorder fr(4);
  for (int i = 0; i < 11; ++i) {
    fr.record(telemetry::FlightType::kMark, "wrap", TimePoint::from_ns(i), i);
  }
  SnapshotWriter w;
  save_flight(w, fr);
  SnapshotReader r(w.finish());
  telemetry::FlightRecorder fresh(4);
  restore_flight(r, fresh);
  EXPECT_EQ(fresh.total_records(), 11u);
  EXPECT_EQ(fresh.recent(), fr.recent());
  fresh.record(telemetry::FlightType::kMark, "next", TimePoint::from_ns(99));
  EXPECT_EQ(fresh.recent().back().seq, 11u);
}

// ---- metrics registry -----------------------------------------------------

TEST(MetricsSnapshot, RegistryRoundTripsByName) {
  telemetry::MetricsRegistry reg;
  auto* prev = telemetry::MetricsRegistry::set_current(&reg);
  telemetry::Counter c;
  c.bind("snaptest.counter");
  c.add(7);
  telemetry::Gauge g;
  g.bind("snaptest.gauge");
  g.add(5);
  g.add(-2);
  telemetry::Histogram h;
  h.bind("snaptest.hist");
  h.observe(3);
  h.observe(70'000);
  telemetry::MetricsRegistry::set_current(prev);

  SnapshotWriter w;
  save_metrics(w, reg);
  const Bytes image = w.finish();

  telemetry::MetricsRegistry fresh;
  SnapshotReader r(image);
  restore_metrics(r, fresh);
  EXPECT_EQ(fresh.to_json(), reg.to_json());
  EXPECT_EQ(fresh.counter_value("snaptest.counter"), 7u);
  EXPECT_EQ(fresh.gauge_value("snaptest.gauge"), 3);
}

// ---- FlatHashMap tombstones -----------------------------------------------

TEST(FlatHashSnapshot, TombstoneHeavyMapRoundTrips) {
  // The transport flow tables snapshot via for_each; a map full of
  // tombstones (reaped connections) must round-trip to the same contents
  // and keep behaving after more churn.
  FlatHashMap<std::uint64_t, std::uint64_t, IntHash> m;
  for (std::uint64_t k = 1; k <= 200; ++k) m.try_emplace(k, k * 3);
  for (std::uint64_t k = 1; k <= 200; k += 3) m.erase(k);  // tombstones

  SnapshotWriter w;
  w.begin_section("test.map");
  w.u64(m.size());
  m.for_each([&](const std::uint64_t& k, const std::uint64_t& v) {
    w.u64(k);
    w.u64(v);
  });
  w.end_section();
  const Bytes image = w.finish();

  FlatHashMap<std::uint64_t, std::uint64_t, IntHash> fresh;
  SnapshotReader r(image);
  r.begin_section("test.map");
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t k = r.u64();
    const std::uint64_t v = r.u64();
    fresh.try_emplace(k, v);
  }
  r.end_section();

  ASSERT_EQ(fresh.size(), m.size());
  std::map<std::uint64_t, std::uint64_t> want;
  m.for_each([&](const std::uint64_t& k, const std::uint64_t& v) {
    want.emplace(k, v);
  });
  std::map<std::uint64_t, std::uint64_t> got;
  fresh.for_each([&](const std::uint64_t& k, const std::uint64_t& v) {
    got.emplace(k, v);
  });
  EXPECT_EQ(got, want);
  for (std::uint64_t k = 1; k <= 200; k += 3) {
    EXPECT_EQ(fresh.find(k), nullptr);
  }

  // Post-restore churn behaves: erased keys are re-insertable, lookups of
  // survivors stay intact.
  for (std::uint64_t k = 1; k <= 200; k += 3) fresh.try_emplace(k, k * 5);
  for (std::uint64_t k = 2; k <= 200; k += 3) {
    ASSERT_NE(fresh.find(k), nullptr);
    EXPECT_EQ(*fresh.find(k), k * 3);
  }
  EXPECT_EQ(*fresh.find(7), 35u);
}

}  // namespace
}  // namespace sublayer::sim
