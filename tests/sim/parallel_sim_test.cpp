// Unit tests for the conservative barrier-synchronous parallel engine:
// mailbox merge order, barrier tasks, lookahead safety, idle fast-forward,
// shard-local telemetry/clock publication, and error propagation — plus
// the Timer restart-racing-its-own-firing regression the parallel epoch
// barrier makes easy to hit (an event on the far side of the barrier runs
// at the same tick as the firing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::sim {
namespace {

TimePoint at_ms(double ms) {
  return TimePoint::from_ns(Duration::millis(ms).ns());
}
TimePoint at_us(std::int64_t us) {
  return TimePoint::from_ns(Duration::micros(us).ns());
}

TEST(ShardMapTest, HashIsDeterministicAndInRange) {
  ShardMap a(7);
  ShardMap b(7);
  for (std::uint64_t id = 0; id < 200; ++id) {
    EXPECT_LT(a.of(id), 7u);
    EXPECT_EQ(a.of(id), b.of(id));
  }
  // The hash actually spreads ids (not everything on one shard).
  std::vector<int> hits(7, 0);
  for (std::uint64_t id = 0; id < 200; ++id) ++hits[a.of(id)];
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(ShardMapTest, AssignOverridesHash) {
  ShardMap map(4);
  const std::size_t hashed = map.of(42);
  const std::size_t other = (hashed + 1) % 4;
  map.assign(42, other);
  EXPECT_EQ(map.of(42), other);
  EXPECT_THROW(map.assign(1, 4), std::out_of_range);
  EXPECT_THROW(ShardMap(0), std::invalid_argument);
}

TEST(ParallelSimTest, RegistrationValidation) {
  ParallelConfig pc;
  pc.shards = 2;
  ParallelSimulator psim(pc);
  EXPECT_THROW(
      psim.add_channel(0, 2, Duration::millis(1), "bad", [](Bytes) {}),
      std::out_of_range);
  EXPECT_THROW(
      psim.add_channel(0, 1, Duration::nanos(0), "zero", [](Bytes) {}),
      std::logic_error);
  EXPECT_THROW(psim.schedule_task(at_ms(1), [] {}, 2), std::out_of_range);
  // A task at or before the completed time is "into the past".
  psim.run_until(at_ms(5));
  EXPECT_THROW(psim.schedule_task(at_ms(5), [] {}), std::logic_error);
}

// Cross-shard mail posted out of order and from two sources is delivered
// in (delivery time, source shard, per-source sequence) order — the merge
// rule the determinism contract rests on.
TEST(ParallelSimTest, MailboxMergeOrder) {
  ParallelConfig pc;
  pc.shards = 3;
  pc.threads = 1;
  ParallelSimulator psim(pc);
  std::vector<int> order;
  const auto tag = [&order](Bytes frame) {
    order.push_back(static_cast<int>(frame.at(0)));
  };
  const auto c10 =
      psim.add_channel(1, 0, Duration::millis(1), "c10", tag);
  const auto c20 =
      psim.add_channel(2, 0, Duration::millis(1), "c20", tag);

  // Source shard 1 posts for 5 ms twice, THEN for 4 ms: the 4 ms mail must
  // still deliver first, and the 5 ms pair must keep post order.
  psim.shard(1).schedule_at(at_ms(1), [&psim, c10] {
    psim.post(c10, at_ms(5), Bytes{1});
    psim.post(c10, at_ms(5), Bytes{2});
    psim.post(c10, at_ms(4), Bytes{0});
  });
  // Source shard 2 ties shard 1's 5 ms mails: higher shard id drains last.
  psim.shard(2).schedule_at(at_ms(1), [&psim, c20] {
    psim.post(c20, at_ms(5), Bytes{3});
  });
  psim.run_until(at_ms(10));

  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(psim.cross_shard_frames(), 4u);
  EXPECT_EQ(psim.shard_trace(0).events().size(), 4u);
  // The merged log is one line per frame, in the same order.
  const std::string log = psim.cross_shard_trace_log();
  EXPECT_NE(log.find("c10"), std::string::npos);
  EXPECT_NE(log.find("c20"), std::string::npos);
  EXPECT_EQ(std::count(log.begin(), log.end(), '\n'), 4);
}

// The shard map — not the worker count — fixes the delivery order.
TEST(ParallelSimTest, MergeOrderIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    ParallelConfig pc;
    pc.shards = 4;
    pc.threads = threads;
    ParallelSimulator psim(pc);
    auto order = std::make_shared<std::vector<int>>();
    std::vector<std::uint32_t> to0;
    for (std::size_t src = 1; src < 4; ++src) {
      to0.push_back(psim.add_channel(
          src, 0, Duration::millis(1), std::string("c") + std::to_string(src),
          [order](Bytes f) { order->push_back(static_cast<int>(f.at(0))); }));
    }
    for (std::size_t src = 1; src < 4; ++src) {
      const auto ch = to0[src - 1];
      psim.shard(src).schedule_at(at_ms(1), [&psim, ch, src] {
        for (int k = 0; k < 3; ++k) {
          psim.post(ch, at_ms(3 + k),
                    Bytes{static_cast<std::uint8_t>(src * 10 + k)});
        }
      });
    }
    psim.run_until(at_ms(10));
    return std::make_pair(*order, psim.cross_shard_trace_log());
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto four = run(4);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one.first.size(), 9u);
}

// Barrier tasks run single-threaded at their exact virtual time with every
// shard's clock advanced to it, and are counted like events.
TEST(ParallelSimTest, BarrierTasksRunAtExactTimeInOrder) {
  ParallelConfig pc;
  pc.shards = 2;
  pc.threads = 2;
  ParallelSimulator psim(pc);
  std::vector<std::string> seq;
  std::vector<std::pair<std::int64_t, std::int64_t>> clocks;
  psim.schedule_task(at_ms(2), [&] {
    seq.push_back("task2");
    clocks.emplace_back(psim.shard(0).now().ns(), psim.shard(1).now().ns());
  });
  psim.schedule_task(at_ms(5), [&] {
    seq.push_back("task5");
    clocks.emplace_back(psim.shard(0).now().ns(), psim.shard(1).now().ns());
  });
  psim.shard(0).schedule_at(at_ms(3), [&seq] { seq.push_back("ev3"); });
  psim.run_until(at_ms(10));

  EXPECT_EQ(seq, (std::vector<std::string>{"task2", "ev3", "task5"}));
  ASSERT_EQ(clocks.size(), 2u);
  EXPECT_EQ(clocks[0].first, at_ms(2).ns());
  EXPECT_EQ(clocks[0].second, at_ms(2).ns());
  EXPECT_EQ(clocks[1].first, at_ms(5).ns());
  EXPECT_EQ(clocks[1].second, at_ms(5).ns());
  EXPECT_EQ(psim.tasks_run(), 2u);
  EXPECT_EQ(psim.events_processed(), 3u);  // 1 event + 2 tasks
  EXPECT_EQ(psim.now().ns(), at_ms(10).ns());
}

// A post whose delivery time does not clear the epoch horizon is a
// lookahead violation and must fail loudly, not silently misorder.
TEST(ParallelSimTest, PostInsideEpochHorizonThrows) {
  ParallelConfig pc;
  pc.shards = 2;
  pc.threads = 1;
  ParallelSimulator psim(pc);
  const auto ch =
      psim.add_channel(0, 1, Duration::millis(1), "c", [](Bytes) {});
  psim.shard(0).schedule_at(at_ms(1), [&psim, ch] {
    psim.post(ch, psim.shard(0).now(), Bytes{1});  // due "now": too early
  });
  EXPECT_THROW(psim.run_until(at_ms(10)), std::logic_error);
}

// Empty stretches are skipped in O(1) epochs, not walked in lookahead
// steps: one event a full second out must not cost a million 1 us epochs.
TEST(ParallelSimTest, IdleFastForwardSkipsEmptyTime) {
  ParallelConfig pc;
  pc.shards = 2;
  pc.threads = 1;
  ParallelSimulator psim(pc);
  psim.add_channel(0, 1, Duration::micros(1), "c", [](Bytes) {});
  int fired = 0;
  psim.shard(1).schedule_at(TimePoint::from_ns(Duration::seconds(1.0).ns()),
                            [&fired] { ++fired; });
  psim.run_until(TimePoint::from_ns(Duration::seconds(2.0).ns()));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(psim.now().ns(), Duration::seconds(2.0).ns());
  EXPECT_LT(psim.epochs(), 50u);
}

// run_until with a stop predicate parks at an epoch boundary and can be
// resumed with a later deadline.
TEST(ParallelSimTest, StopPredicateParksAtBoundaryAndResumes) {
  ParallelConfig pc;
  pc.shards = 2;
  pc.threads = 2;
  ParallelSimulator psim(pc);
  // Channels both ways: a sink-only shard 0 would run ahead to the
  // deadline in one epoch and fire all ten events before the first stop
  // check — the reverse channel gives it a 1 ms inbound horizon.
  psim.add_channel(0, 1, Duration::millis(1), "c", [](Bytes) {});
  psim.add_channel(1, 0, Duration::millis(1), "c.rev", [](Bytes) {});
  int n = 0;
  for (int i = 1; i <= 10; ++i) {
    psim.shard(0).schedule_at(at_ms(i), [&n] { ++n; });
  }
  psim.run_until(at_ms(20), [&n] { return n >= 3; });
  EXPECT_GE(n, 3);
  EXPECT_LT(n, 10);
  EXPECT_LT(psim.now().ns(), at_ms(20).ns());

  psim.run_until(at_ms(20));
  EXPECT_EQ(n, 10);
  EXPECT_EQ(psim.now().ns(), at_ms(20).ns());
}

// An exception thrown inside a shard event winds the run down at the next
// barrier and resurfaces from run_until on the calling thread.
TEST(ParallelSimTest, WorkerExceptionPropagates) {
  ParallelConfig pc;
  pc.shards = 2;
  pc.threads = 2;
  ParallelSimulator psim(pc);
  psim.shard(1).schedule_at(at_ms(1), [] {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(psim.run_until(at_ms(10)), std::runtime_error);
}

TEST(ParallelSimTest, TaskExceptionPropagates) {
  ParallelConfig pc;
  pc.shards = 2;
  ParallelSimulator psim(pc);
  psim.schedule_task(at_ms(1), [] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(psim.run_until(at_ms(10)), std::runtime_error);
}

// Satellite regression: the published simclock is shard-local.  Two shards
// running concurrently each see exactly their own event times through
// simclock::now() — a process-global published clock would interleave the
// two shards' timestamps.
TEST(ParallelSimTest, SimclockIsShardLocalUnderConcurrency) {
  ParallelConfig pc;
  pc.shards = 2;
  pc.threads = 2;  // no channels: one epoch, maximal overlap
  ParallelSimulator psim(pc);
  std::vector<std::int64_t> seen[2];
  for (int k = 0; k < 50; ++k) {
    psim.shard(0).schedule_at(at_us(10 + 20 * k), [&psim, &seen] {
      seen[0].push_back(simclock::now().ns());
      seen[0].push_back(psim.shard(0).now().ns());
    });
    psim.shard(1).schedule_at(at_us(20 + 20 * k), [&psim, &seen] {
      seen[1].push_back(simclock::now().ns());
      seen[1].push_back(psim.shard(1).now().ns());
    });
  }
  psim.run_until(at_ms(5));
  ASSERT_EQ(seen[0].size(), 100u);
  ASSERT_EQ(seen[1].size(), 100u);
  for (int k = 0; k < 50; ++k) {
    // Published clock == own shard's clock == the event's own due time,
    // never the other shard's (whose events sit 10 us out of phase).
    EXPECT_EQ(seen[0][2 * k], at_us(10 + 20 * k).ns());
    EXPECT_EQ(seen[0][2 * k + 1], seen[0][2 * k]);
    EXPECT_EQ(seen[1][2 * k], at_us(20 + 20 * k).ns());
    EXPECT_EQ(seen[1][2 * k + 1], seen[1][2 * k]);
  }
}

// Telemetry recorded during shard runs lands in shard-private registries;
// merged_metrics() sums counters/gauges by name and merges histograms
// bucketwise.
TEST(ParallelSimTest, ShardRegistriesMergeDeterministically) {
  ParallelConfig pc;
  pc.shards = 2;
  pc.threads = 2;
  ParallelSimulator psim(pc);
  psim.shard(0).schedule_at(at_ms(1), [] {
    telemetry::Counter c;
    c.bind("test.parallel.hits");
    c.add(2);
    telemetry::Histogram h;
    h.bind("test.parallel.sizes");
    h.observe(100);
  });
  psim.shard(1).schedule_at(at_ms(1), [] {
    telemetry::Counter c;
    c.bind("test.parallel.hits");
    c.add(3);
    telemetry::Histogram h;
    h.bind("test.parallel.sizes");
    h.observe(1000);
  });
  psim.run_until(at_ms(2));

  // Each shard saw only its own increments...
  EXPECT_EQ(psim.shard_metrics(0).counter_value("test.parallel.hits"), 2u);
  EXPECT_EQ(psim.shard_metrics(1).counter_value("test.parallel.hits"), 3u);
  // ...and the merge is their sum, with histogram extrema combined.
  const auto merged = psim.merged_metrics();
  EXPECT_EQ(merged.counter("test.parallel.hits"), 5u);
  const auto* h = merged.histogram("test.parallel.sizes");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum, 1100u);
  EXPECT_EQ(h->min, 100u);
  EXPECT_EQ(h->max, 1000u);
}

// ---- Timer restart/firing race regressions (satellite) ---------------------
//
// The dangerous shape: the timer fires at tick T, and other code running at
// the same tick (after the firing, e.g. an event on the far side of a
// parallel-epoch barrier) calls restart() or stop().  Before the hardening,
// Timer still held the fired event's id: stop() could cancel a recycled
// event, and restart() could leave the timer double-armed.

class TimerRaceTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(TimerRaceTest, RestartFromSameTickAfterFiringFiresExactlyOnceMore) {
  Simulator sim(GetParam());
  int fires = 0;
  Timer timer(sim, [&fires] { ++fires; });
  timer.restart(Duration::millis(1));
  // Scheduled after the arm at the same due tick => runs after the firing.
  sim.schedule_at(at_ms(1), [&timer] { timer.restart(Duration::millis(1)); });
  sim.run_until(at_ms(10));
  EXPECT_EQ(fires, 2);  // once at 1 ms, once at 2 ms — never three
  EXPECT_FALSE(timer.armed());
}

TEST_P(TimerRaceTest, RestartFromInsideOwnFiringRearmsCleanly) {
  Simulator sim(GetParam());
  int fires = 0;
  std::unique_ptr<Timer> timer;
  timer = std::make_unique<Timer>(sim, [&] {
    if (++fires < 3) timer->restart(Duration::millis(1));
  });
  timer->restart(Duration::millis(1));
  sim.run_until(at_ms(20));
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer->armed());
}

TEST_P(TimerRaceTest, StopAtFiringTickCannotCancelRecycledEvent) {
  Simulator sim(GetParam());
  int fires = 0;
  int bystander = 0;
  Timer timer(sim, [&fires] { ++fires; });
  timer.restart(Duration::millis(1));
  sim.schedule_at(at_ms(1), [&] {
    // The timer already fired this tick; its pending id is dead.  stop()
    // must be a no-op — in particular it must not cancel whatever event
    // now occupies the recycled slot.
    timer.stop();
    sim.schedule_at(at_ms(2), [&bystander] { ++bystander; });
  });
  sim.run_until(at_ms(10));
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(bystander, 1);
  EXPECT_FALSE(timer.armed());
}

TEST_P(TimerRaceTest, RestartBeforeFiringAtSameTickReplacesIt) {
  Simulator sim(GetParam());
  int fires = 0;
  Timer timer(sim, [&fires] { ++fires; });
  // Event inserted BEFORE the arm at the same tick runs first: this
  // restart replaces a still-pending firing, so only the new one runs.
  sim.schedule_at(at_ms(1), [&timer] { timer.restart(Duration::millis(5)); });
  timer.restart(Duration::millis(1));
  sim.run_until(at_ms(20));
  EXPECT_EQ(fires, 1);
}

INSTANTIATE_TEST_SUITE_P(Engines, TimerRaceTest,
                         ::testing::Values(EngineKind::kTimerWheel,
                                           EngineKind::kLegacyHeap),
                         [](const auto& info) {
                           return info.param == EngineKind::kTimerWheel
                                      ? std::string("wheel")
                                      : std::string("legacy_heap");
                         });

// next_event_bound: a non-destructive lower bound on the next due time —
// never later than the true next event, and absent only when nothing at
// all is pending.  (The parallel engine's idle fast-forward relies on the
// "never later" half.)
class NextBoundTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(NextBoundTest, BoundNeverOverestimates) {
  Simulator sim(GetParam());
  TimePoint bound;
  EXPECT_FALSE(sim.next_event_bound(bound));

  sim.schedule_at(at_us(700), [] {});
  const EventId early = sim.schedule_at(at_us(300), [] {});
  ASSERT_TRUE(sim.next_event_bound(bound));
  EXPECT_LE(bound.ns(), at_us(300).ns());

  // Cancelling the earlier event may leave a husk: the bound may stay
  // conservative (early) but must never pass the true next event.
  sim.cancel(early);
  ASSERT_TRUE(sim.next_event_bound(bound));
  EXPECT_LE(bound.ns(), at_us(700).ns());

  sim.run_until(at_ms(1));
  EXPECT_FALSE(sim.next_event_bound(bound));
}

INSTANTIATE_TEST_SUITE_P(Engines, NextBoundTest,
                         ::testing::Values(EngineKind::kTimerWheel,
                                           EngineKind::kLegacyHeap),
                         [](const auto& info) {
                           return info.param == EngineKind::kTimerWheel
                                      ? std::string("wheel")
                                      : std::string("legacy_heap");
                         });

}  // namespace
}  // namespace sublayer::sim
