// Run-ahead determinism suite: shards that the per-pair horizon algebra
// leaves unthrottled — a sink-only shard fed through a one-directional
// channel, and a fully disconnected "island" shard — must run ahead of
// the barrier (fewer, fatter epochs) while staying bit-identical across
// worker thread counts, clean and under mixed-mayhem chaos, and across a
// snapshot taken mid-run-ahead, i.e. at a parked instant where the
// committed-horizon vector is *unequal*.  Complements the ring replay
// suite in parallel_replay_test.cpp, whose symmetric topology never
// exposes unequal horizons.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "chaos/controller.hpp"
#include "chaos/fault_plan.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "netlayer/router.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "transport/sublayered/host.hpp"

namespace sublayer {
namespace {

// ---------------------------------------------------------------------
// Raw-engine fixtures: the horizon algebra observed directly.
// ---------------------------------------------------------------------

TEST(RunAheadTest, PairLookaheadMatrixTracksMinimumChannelLatency) {
  sim::ParallelConfig pc;
  pc.shards = 3;
  pc.threads = 1;
  sim::ParallelSimulator psim(pc);
  const auto sink = [](Bytes) {};
  psim.add_channel(0, 1, Duration::millis(1), "a.b", sink);
  psim.add_channel(1, 2, Duration::millis(2), "b.c.slow", sink);
  psim.add_channel(1, 2, Duration::micros(500), "b.c.fast", sink);
  psim.add_channel(2, 2, Duration::micros(250), "c.self", sink);

  // The per-pair minimum over registered channels, directional.
  EXPECT_EQ(psim.pair_lookahead(0, 1).ns(), Duration::millis(1).ns());
  EXPECT_EQ(psim.pair_lookahead(1, 2).ns(), Duration::micros(500).ns());
  EXPECT_EQ(psim.pair_lookahead(2, 2).ns(), Duration::micros(250).ns());
  // Pairs with no channel never throttle their destination.
  EXPECT_EQ(psim.pair_lookahead(1, 0).ns(), 0);
  EXPECT_EQ(psim.pair_lookahead(2, 0).ns(), 0);
  EXPECT_EQ(psim.pair_lookahead(0, 2).ns(), 0);
  // The legacy global bound is the worst-case pair.
  EXPECT_EQ(psim.lookahead().ns(), Duration::micros(250).ns());
}

struct RawRun {
  std::string deliveries;  // "when_ns:size;" per delivery, in fire order
  std::uint64_t events = 0;
  std::uint64_t epochs = 0;
  std::uint64_t runahead = 0;
  std::uint64_t cross = 0;
  std::string trace;
};

/// One-directional pipeline: shard 0 (no inbound pairs — a pure source)
/// ticks every 100 us to 50 ms and posts every tenth tick to shard 1 (a
/// pure sink) over a 1 ms channel.  The source's horizon is infinite, so
/// the whole tick train runs in a single run-ahead epoch; the sink then
/// drains the 50 deliveries.  Under the old global-min-lookahead barrier
/// this workload needed ~60 one-millisecond epochs.
RawRun run_sink_only(std::size_t threads) {
  RawRun out;
  sim::ParallelConfig pc;
  pc.shards = 2;
  pc.threads = threads;
  sim::ParallelSimulator psim(pc);
  const std::uint32_t ch = psim.add_channel(
      0, 1, Duration::millis(1), "src.sink", [&](Bytes frame) {
        out.deliveries += std::to_string(psim.shard(1).now().ns()) + ":" +
                          std::to_string(frame.size()) + ";";
      });
  EXPECT_EQ(psim.pair_lookahead(0, 1).ns(), Duration::millis(1).ns());
  EXPECT_EQ(psim.pair_lookahead(1, 0).ns(), 0);

  std::uint64_t ticks = 0;
  const auto stop_at = TimePoint::from_ns(Duration::millis(50).ns());
  std::function<void()> tick;
  tick = [&] {
    auto& src = psim.shard(0);
    ++ticks;
    if (ticks % 10 == 0) {
      psim.post(ch, src.now() + Duration::millis(1), Bytes{0xab, 0xcd});
    }
    if (src.now() < stop_at) {
      src.schedule_at(src.now() + Duration::micros(100), tick);
    }
  };
  psim.shard(0).schedule_at(TimePoint::from_ns(Duration::micros(100).ns()),
                            tick);
  psim.run_until(TimePoint::from_ns(Duration::millis(60).ns()));

  EXPECT_EQ(ticks, 500u);
  out.events = psim.events_processed();
  out.epochs = psim.epochs();
  out.runahead = psim.runahead_shard_epochs();
  out.cross = psim.cross_shard_frames();
  out.trace = psim.cross_shard_trace_log();
  return out;
}

TEST(RunAheadTest, SinkOnlyShardRunsAheadAndStaysDeterministic) {
  const RawRun t1 = run_sink_only(1);
  const RawRun t2 = run_sink_only(2);

  // The source genuinely ran ahead: the 50 ms tick train collapses into a
  // handful of epochs instead of one per millisecond of lookahead.
  EXPECT_GT(t1.runahead, 0u);
  EXPECT_LE(t1.epochs, 6u);
  EXPECT_EQ(t1.cross, 50u);
  EXPECT_EQ(t1.events, 550u);  // 500 ticks + 50 deliveries
  EXPECT_FALSE(t1.deliveries.empty());

  // Worker count is invisible, run-ahead accounting included.
  EXPECT_EQ(t1.deliveries, t2.deliveries);
  EXPECT_EQ(t1.events, t2.events);
  EXPECT_EQ(t1.epochs, t2.epochs);
  EXPECT_EQ(t1.runahead, t2.runahead);
  EXPECT_EQ(t1.cross, t2.cross);
  EXPECT_EQ(t1.trace, t2.trace);
}

// A stop predicate parks the engine with an *unequal* committed vector:
// the source shard (no inbound pairs) runs ahead to the deadline in its
// first epoch while the sink is still throttled near zero.  A task
// scheduled inside that window — after now() but at or before the
// run-ahead shard's committed horizon — would mutate state the source
// already simulated through, so schedule_task must reject it loudly
// instead of silently rewinding the committed horizon (the pre-fix
// behavior).  Tasks beyond the whole frontier stay accepted.
TEST(RunAheadTest, TaskInsideCommittedFrontierIsRejected) {
  sim::ParallelConfig pc;
  pc.shards = 2;
  pc.threads = 1;
  sim::ParallelSimulator psim(pc);
  std::size_t delivered = 0;
  const std::uint32_t ch = psim.add_channel(
      0, 1, Duration::millis(1), "src.sink", [&](Bytes) { ++delivered; });

  std::uint64_t ticks = 0;
  const auto stop_at = TimePoint::from_ns(Duration::millis(50).ns());
  std::function<void()> tick;
  tick = [&] {
    auto& src = psim.shard(0);
    ++ticks;
    if (ticks % 10 == 0) {
      psim.post(ch, src.now() + Duration::millis(1), Bytes{0xab, 0xcd});
    }
    if (src.now() < stop_at) {
      src.schedule_at(src.now() + Duration::micros(100), tick);
    }
  };
  psim.shard(0).schedule_at(TimePoint::from_ns(Duration::micros(100).ns()),
                            tick);

  const auto end = TimePoint::from_ns(Duration::millis(60).ns());
  psim.run_until(end, [&] { return psim.shard_committed(0).ns() >= end.ns(); });
  ASSERT_EQ(psim.shard_committed(0).ns(), end.ns());  // source ran ahead
  ASSERT_LT(psim.now().ns(), end.ns());               // sink still lags

  // Inside the hole: beyond now() (the old check) but inside the source's
  // committed horizon.
  const auto hole = psim.now() + Duration::micros(1);
  ASSERT_LT(hole.ns(), psim.shard_committed(0).ns());
  EXPECT_THROW(psim.schedule_task(hole, [] {}), std::logic_error);
  // At the frontier exactly: still inside simulated time, still rejected.
  EXPECT_THROW(psim.schedule_task(TimePoint::from_ns(end.ns()), [] {}),
               std::logic_error);

  // Strictly beyond every committed horizon: accepted, and the resumed
  // run executes it with all clocks aligned.
  bool ran = false;
  psim.schedule_task(end + Duration::millis(1), [&] { ran = true; });
  psim.run_until(end + Duration::millis(2));
  EXPECT_TRUE(ran);
  EXPECT_EQ(delivered, 50u);
}

// ---------------------------------------------------------------------
// Full-stack fixture: a three-router line (0-1-2, one router per shard)
// carrying TCP flows between its end hosts, plus router 3 on shard 3 with
// no links at all — a disconnected island whose only load is a finite
// timer train.  The island has no inbound pairs, so every epoch it takes
// is a run-ahead epoch; the line shards throttle each other through the
// 100 us link propagation.
// ---------------------------------------------------------------------

constexpr std::size_t kShards = 4;  // three line shards + the island
constexpr std::size_t kIslandTicks = 64;
constexpr std::size_t kFlows = 4;  // alternating host0 -> host2 / back
constexpr std::size_t kPerFlow = 4096;
constexpr std::size_t kHostRouter[2] = {0, 2};

netlayer::RouterConfig line_router_config() {
  netlayer::RouterConfig rc;
  rc.routing = netlayer::RoutingKind::kLinkState;
  rc.neighbor.dead_interval = Duration::seconds(3600.0);
  return rc;
}

sim::LinkConfig line_link_config() {
  sim::LinkConfig link;
  link.bandwidth_bps = 10e9;
  link.propagation_delay = Duration::micros(100);
  link.queue_limit = 4096;
  return link;
}

chaos::FaultPlan island_plan(std::size_t link_count) {
  chaos::ScriptParams params;
  params.link_count = link_count;
  params.router_count = 3;  // faults land on the line, not the island
  params.start = TimePoint::from_ns(Duration::millis(600).ns());
  params.active_window = Duration::seconds(1.5);
  return chaos::make_plan("mixed-mayhem", 3, params);
}

TimePoint warmup_instant() {
  return TimePoint::from_ns(Duration::millis(500).ns());
}

/// Buildable twice, like the snapshot-resume worlds: the straight world
/// calls begin() (start, warmup, island train, chaos arm, flow connects);
/// a restore graph is constructed identically but never started — hosts
/// listen() and then the image overwrites everything.
struct IslandWorld {
  explicit IslandWorld(std::size_t threads, bool with_chaos = false) {
    sim::ParallelConfig pc;
    pc.shards = kShards;
    pc.threads = threads;
    psim = std::make_unique<sim::ParallelSimulator>(pc);
    chrome = std::make_unique<telemetry::ChromeTraceWriter>(
        psim->chrome_lane_count());
    psim->attach_chrome_trace(chrome.get());
    sim::ShardMap map(kShards);
    for (std::size_t i = 0; i < kShards; ++i) map.assign(i, i);
    net = std::make_unique<netlayer::Network>(*psim, line_router_config(),
                                              /*seed=*/1, map);
    for (std::size_t i = 0; i < kShards; ++i) {
      routers.push_back(net->add_router());
    }
    net->connect(routers[0], routers[1], line_link_config());
    net->connect(routers[1], routers[2], line_link_config());
    // Router 3 stays unlinked: shard 3 is a disconnected island.
    transport::HostConfig hc;
    hc.connection.cm.keepalive_interval = Duration::seconds(2.0);
    for (std::size_t h = 0; h < 2; ++h) {
      const std::size_t r = kHostRouter[h];
      sim::ParallelSimulator::ShardScope scope(*psim,
                                               net->shard_of(routers[r]));
      hosts.push_back(std::make_unique<transport::TcpHost>(
          net->router(routers[r]), 1, hc));
      auto* bucket = &received[h];
      auto* done = &completed;
      hosts.back()->listen(80, [bucket, done](transport::Connection& c) {
        auto count = std::make_shared<std::size_t>(0);
        bucket->push_back(count);
        transport::Connection::AppCallbacks cb;
        cb.on_data = [count, done](Bytes data) {
          *count += data.size();
          if (*count == kPerFlow) {
            done->fetch_add(1, std::memory_order_relaxed);
          }
        };
        c.set_app_callbacks(cb);
      });
    }
    if (with_chaos) chaos_ctl.emplace(*psim, *net);
  }

  /// Straight-world only.  The island train is finite and fires entirely
  /// within ~516 ms — long before any snapshot instant — so a restore
  /// graph never needs to re-arm island events.
  void begin() {
    net->start();
    psim->run_until(warmup_instant());
    if (chaos_ctl) chaos_ctl->arm(island_plan(net->link_count()));
    for (std::size_t k = 0; k < kIslandTicks; ++k) {
      const auto at = warmup_instant() +
                      Duration::nanos(10'000 + 250'000 *
                                                   static_cast<std::int64_t>(k));
      psim->shard(3).schedule_at(at, [this] {
        ++island_hits;
        island_log += std::to_string(psim->shard(3).now().ns()) + ";";
      });
    }
    Rng rng(7);
    const Bytes payload = rng.next_bytes(kPerFlow);
    for (std::size_t f = 0; f < kFlows; ++f) {
      transport::TcpHost* client = hosts[f % 2].get();
      transport::TcpHost* server = hosts[(f + 1) % 2].get();
      const auto at = warmup_instant() +
                      Duration::micros(static_cast<std::int64_t>(10 * (f + 1)));
      const auto go = [client, server, payload] {
        client->connect(server->addr(), 80).send(payload);
      };
      psim->shard(net->shard_of(routers[kHostRouter[f % 2]]))
          .schedule_at(at, go);
    }
  }

  Bytes save_world() const {
    sim::SnapshotWriter w;
    psim->save(w);
    net->save(w);
    for (const auto& h : hosts) h->save(w);
    if (chaos_ctl) chaos_ctl->save(w);
    return w.finish();
  }

  void restore_from(const Bytes& image) {
    sim::SnapshotReader r(image);
    psim->restore(r);
    net->restore(r);
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      sim::ParallelSimulator::ShardScope scope(
          *psim, net->shard_of(routers[kHostRouter[h]]));
      hosts[h]->restore(r);
    }
    if (chaos_ctl) chaos_ctl->restore(r);
    psim->finish_restore();
  }

  std::vector<std::size_t> host_sums() const {
    std::vector<std::size_t> out;
    for (const auto& bucket : received) {
      std::size_t total = 0;
      for (const auto& c : bucket) total += *c;
      out.push_back(total);
    }
    return out;
  }

  std::unique_ptr<sim::ParallelSimulator> psim;
  std::unique_ptr<telemetry::ChromeTraceWriter> chrome;
  std::unique_ptr<netlayer::Network> net;
  std::vector<netlayer::RouterId> routers;
  std::vector<std::unique_ptr<transport::TcpHost>> hosts;
  std::vector<std::vector<std::shared_ptr<std::size_t>>> received{
      std::vector<std::vector<std::shared_ptr<std::size_t>>>(2)};
  std::atomic<std::size_t> completed{0};
  std::optional<chaos::ChaosController> chaos_ctl;
  // Touched only by shard 3's run phase; read after the run parks.
  std::size_t island_hits = 0;
  std::string island_log;
};

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t cross_frames = 0;
  std::uint64_t epochs = 0;
  std::uint64_t runahead = 0;
  std::size_t completed = 0;
  std::size_t island_hits = 0;
  std::string island_log;
  std::vector<std::size_t> host_sums;
  telemetry::MetricsSnapshot metrics;
  std::string metrics_json;
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t,
                         std::uint64_t>>
      crossings;
  std::string trace_log;
  std::vector<std::uint8_t> flight_dump;
  std::string chrome_canonical;
  std::uint64_t faults_applied = 0;
  std::uint64_t faults_healed = 0;
};

RunResult run_island_workload(std::size_t threads, bool with_chaos) {
  IslandWorld w(threads, with_chaos);

  // The latency matrix mirrors the wiring: line neighbors couple through
  // the 100 us propagation; non-adjacent and island pairs are unthrottled.
  EXPECT_EQ(w.psim->pair_lookahead(0, 1).ns(), Duration::micros(100).ns());
  EXPECT_EQ(w.psim->pair_lookahead(1, 0).ns(), Duration::micros(100).ns());
  EXPECT_EQ(w.psim->pair_lookahead(1, 2).ns(), Duration::micros(100).ns());
  EXPECT_EQ(w.psim->pair_lookahead(2, 1).ns(), Duration::micros(100).ns());
  EXPECT_EQ(w.psim->pair_lookahead(0, 2).ns(), 0);
  EXPECT_EQ(w.psim->pair_lookahead(2, 0).ns(), 0);
  EXPECT_EQ(w.psim->pair_lookahead(0, 3).ns(), 0);
  EXPECT_EQ(w.psim->pair_lookahead(3, 0).ns(), 0);

  w.begin();
  const auto deadline =
      TimePoint::from_ns(Duration::seconds(with_chaos ? 5.0 : 3.0).ns());
  w.psim->run_until(deadline);

  RunResult out;
  out.events = w.psim->events_processed();
  out.cross_frames = w.psim->cross_shard_frames();
  out.epochs = w.psim->epochs();
  out.runahead = w.psim->runahead_shard_epochs();
  out.completed = w.completed.load(std::memory_order_relaxed);
  out.island_hits = w.island_hits;
  out.island_log = w.island_log;
  out.host_sums = w.host_sums();
  out.metrics = w.psim->merged_metrics();
  out.metrics_json = out.metrics.to_json();
  out.trace_log = w.psim->cross_shard_trace_log();
  const auto flight = w.psim->merged_flight_records();
  out.flight_dump = telemetry::encode_flight_dump(flight, "runahead");
  telemetry::export_flow_spans(flight, *w.chrome);
  out.chrome_canonical = w.chrome->canonical_json();
  for (const auto& layer : w.psim->merged_span_layers()) {
    out.crossings.emplace_back(
        layer, w.psim->merged_crossings(layer, telemetry::Dir::kDown),
        w.psim->merged_crossings(layer, telemetry::Dir::kUp),
        w.psim->merged_crossing_bytes(layer, telemetry::Dir::kDown));
  }
  std::sort(out.crossings.begin(), out.crossings.end());
  if (w.chaos_ctl) {
    out.faults_applied = w.chaos_ctl->stats().faults_applied;
    out.faults_healed = w.chaos_ctl->stats().faults_healed;
  }
  return out;
}

void expect_metrics_equal(const telemetry::MetricsSnapshot& a,
                          const telemetry::MetricsSnapshot& b,
                          const std::string& label) {
  for (const auto& [name, value] : a.counters) {
    if (value != 0) {
      EXPECT_EQ(b.counter(name), value) << label << " counter " << name;
    }
  }
  for (const auto& [name, value] : b.counters) {
    if (value != 0) {
      EXPECT_EQ(a.counter(name), value) << label << " counter " << name;
    }
  }
  for (const auto& [name, value] : a.gauges) {
    if (value != 0) {
      EXPECT_EQ(b.gauge(name), value) << label << " gauge " << name;
    }
  }
  for (const auto& h : a.histograms) {
    if (h.data.count == 0) continue;
    const auto* other = b.histogram(h.name);
    ASSERT_NE(other, nullptr) << label << " histogram " << h.name;
    EXPECT_EQ(other->count, h.data.count) << label << " " << h.name;
    EXPECT_EQ(other->sum, h.data.sum) << label << " " << h.name;
    EXPECT_EQ(other->buckets, h.data.buckets) << label << " " << h.name;
  }
}

void expect_runs_equal(const RunResult& a, const RunResult& b,
                       const std::string& label) {
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.cross_frames, b.cross_frames) << label;
  EXPECT_EQ(a.epochs, b.epochs) << label;
  EXPECT_EQ(a.runahead, b.runahead) << label;
  EXPECT_EQ(a.completed, b.completed) << label;
  EXPECT_EQ(a.island_hits, b.island_hits) << label;
  EXPECT_EQ(a.island_log, b.island_log) << label;
  EXPECT_EQ(a.host_sums, b.host_sums) << label;
  EXPECT_EQ(a.crossings, b.crossings) << label;
  EXPECT_EQ(a.trace_log, b.trace_log) << label;
  EXPECT_EQ(a.flight_dump, b.flight_dump) << label;
  EXPECT_EQ(a.chrome_canonical, b.chrome_canonical) << label;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << label;
  EXPECT_EQ(a.faults_applied, b.faults_applied) << label;
  EXPECT_EQ(a.faults_healed, b.faults_healed) << label;
  expect_metrics_equal(a.metrics, b.metrics, label);
}

TEST(RunAheadTest, DisconnectedIslandBitIdenticalAcrossThreadCounts) {
  const RunResult t1 = run_island_workload(1, /*with_chaos=*/false);
  const RunResult t2 = run_island_workload(2, false);
  const RunResult t4 = run_island_workload(4, false);

  // The workload genuinely ran and genuinely ran ahead.
  EXPECT_EQ(t1.completed, kFlows);
  EXPECT_EQ(t1.island_hits, kIslandTicks);
  EXPECT_GT(t1.cross_frames, 0u);
  EXPECT_GT(t1.runahead, 0u);

  // Satellite contract: the wiring diagnostics live in merged_metrics and
  // in the deterministic Chrome-trace slice.
  EXPECT_EQ(t1.metrics.gauge("parallel.shards"), 4);
  EXPECT_EQ(t1.metrics.gauge("parallel.connected_shard_pairs"), 2);
  EXPECT_EQ(t1.metrics.gauge("parallel.min_pair_lookahead"),
            Duration::micros(100).ns());
  EXPECT_EQ(t1.metrics.gauge("parallel.runahead_shard_epochs"),
            static_cast<std::int64_t>(t1.runahead));
  EXPECT_NE(t1.chrome_canonical.find("parallel_partition"), std::string::npos);
  EXPECT_NE(t1.chrome_canonical.find("parallel_pair_lookahead"),
            std::string::npos);
  EXPECT_NE(t1.chrome_canonical.find("hash(shards=4,overrides=4)"),
            std::string::npos);

  expect_runs_equal(t1, t2, "island-t1-vs-t2");
  expect_runs_equal(t1, t4, "island-t1-vs-t4");
}

TEST(RunAheadTest, DisconnectedIslandChaosBitIdenticalAcrossThreadCounts) {
  const RunResult t1 = run_island_workload(1, /*with_chaos=*/true);
  const RunResult t2 = run_island_workload(2, true);
  const RunResult t4 = run_island_workload(4, true);

  ASSERT_GT(t1.faults_applied, 0u);
  EXPECT_EQ(t1.faults_applied, t1.faults_healed);
  EXPECT_EQ(t1.island_hits, kIslandTicks);

  expect_runs_equal(t1, t2, "island-chaos-t1-vs-t2");
  expect_runs_equal(t1, t4, "island-chaos-t1-vs-t4");
}

// Snapshot taken mid-run-ahead: the island commits clear to the deadline
// in its first post-warmup epoch while the line shards are barely past
// warmup, so the stop predicate parks the engine with an *unequal*
// committed-horizon vector.  The v2 image carries that vector; a fresh
// graph (at a different worker thread count) restores it, resumes, and
// re-saves byte-identical to the straight run.
TEST(RunAheadTest, SnapshotMidRunAheadRestoresAcrossThreadCounts) {
  const auto end = TimePoint::from_ns(Duration::seconds(3.0).ns());

  IslandWorld wa(1);
  wa.begin();
  wa.psim->run_until(end, [&] {
    return wa.psim->shard_committed(3).ns() >= end.ns();
  });
  ASSERT_EQ(wa.psim->shard_committed(3).ns(), end.ns());
  ASSERT_LT(wa.psim->now().ns(), end.ns());
  EXPECT_GT(wa.psim->runahead_shard_epochs(), 0u);
  EXPECT_EQ(wa.island_hits, kIslandTicks);  // train fully ran pre-snapshot

  const Bytes image = wa.save_world();
  const auto mid_sums = wa.host_sums();
  wa.psim->run_until(end);
  const Bytes final_a = wa.save_world();
  const auto end_sums = wa.host_sums();
  std::size_t total = 0;
  for (const std::size_t s : end_sums) total += s;
  ASSERT_EQ(total, kFlows * kPerFlow);

  IslandWorld wb(4);
  wb.restore_from(image);
  EXPECT_LT(wb.psim->now().ns(), end.ns());
  EXPECT_EQ(wb.psim->shard_committed(3).ns(), end.ns());
  wb.psim->run_until(end);

  // The resumed graph sees exactly the straight run's suffix; the island,
  // already beyond the deadline at snapshot time, contributes nothing.
  const auto resumed_sums = wb.host_sums();
  ASSERT_EQ(resumed_sums.size(), end_sums.size());
  for (std::size_t i = 0; i < resumed_sums.size(); ++i) {
    EXPECT_EQ(resumed_sums[i], end_sums[i] - mid_sums[i]) << "host " << i;
  }
  EXPECT_EQ(wb.island_hits, 0u);
  EXPECT_EQ(wb.psim->events_processed(), wa.psim->events_processed());
  EXPECT_EQ(wb.psim->runahead_shard_epochs(),
            wa.psim->runahead_shard_epochs());
  EXPECT_EQ(wb.save_world(), final_a) << "re-saved images differ";
}

}  // namespace
}  // namespace sublayer
