#include "netlayer/neighbor.hpp"

#include <gtest/gtest.h>

namespace sublayer::netlayer {
namespace {

struct TwoNeighbors {
  TwoNeighbors() : a(sim, 1, config()), b(sim, 2, config()) {
    a.add_interface(0, 1.0);
    b.add_interface(0, 1.0);
    // Cross-wire the hello sinks, with an on/off switch per direction.
    a.set_hello_sink([this](int, Bytes hello) {
      if (a_to_b_up) b.on_hello(0, hello);
    });
    b.set_hello_sink([this](int, Bytes hello) {
      if (b_to_a_up) a.on_hello(0, hello);
    });
    a.set_change_callback([this] { ++a_changes; });
    b.set_change_callback([this] { ++b_changes; });
  }

  static NeighborConfig config() {
    NeighborConfig c;
    c.hello_interval = Duration::millis(10);
    c.dead_interval = Duration::millis(35);
    return c;
  }

  void run_for(Duration d) {
    sim.run_until(TimePoint::from_ns(sim.now().ns() + d.ns()));
  }

  sim::Simulator sim;
  NeighborTable a;
  NeighborTable b;
  bool a_to_b_up = true;
  bool b_to_a_up = true;
  int a_changes = 0;
  int b_changes = 0;
};

TEST(NeighborTable, DiscoversPeerAfterFirstHello) {
  TwoNeighbors t;
  t.a.start();
  t.b.start();
  t.run_for(Duration::millis(15));
  ASSERT_EQ(t.a.neighbors().size(), 1u);
  EXPECT_EQ(t.a.neighbors()[0].id, 2u);
  EXPECT_EQ(t.a.neighbors()[0].interface, 0);
  EXPECT_EQ(t.a.neighbors()[0].cost, 1.0);
  ASSERT_EQ(t.b.neighbors().size(), 1u);
  EXPECT_EQ(t.b.neighbors()[0].id, 1u);
  EXPECT_GE(t.a_changes, 1);
}

TEST(NeighborTable, NoNeighborsBeforeStart) {
  TwoNeighbors t;
  t.run_for(Duration::millis(50));
  EXPECT_TRUE(t.a.neighbors().empty());
}

TEST(NeighborTable, DeclaresDeathAfterSilence) {
  TwoNeighbors t;
  t.a.start();
  t.b.start();
  t.run_for(Duration::millis(20));
  ASSERT_EQ(t.a.neighbors().size(), 1u);
  const int changes_before = t.a_changes;
  t.b_to_a_up = false;  // b's hellos stop reaching a
  t.run_for(Duration::millis(100));
  EXPECT_TRUE(t.a.neighbors().empty());
  EXPECT_GT(t.a_changes, changes_before);
  // b still hears a, so b keeps its neighbor.
  EXPECT_EQ(t.b.neighbors().size(), 1u);
}

TEST(NeighborTable, RecoversAfterLinkHeals) {
  TwoNeighbors t;
  t.a.start();
  t.b.start();
  t.run_for(Duration::millis(20));
  t.b_to_a_up = false;
  t.run_for(Duration::millis(100));
  ASSERT_TRUE(t.a.neighbors().empty());
  t.b_to_a_up = true;
  t.run_for(Duration::millis(30));
  ASSERT_EQ(t.a.neighbors().size(), 1u);
  EXPECT_EQ(t.a.neighbors()[0].id, 2u);
}

TEST(NeighborTable, MalformedHelloIgnored) {
  TwoNeighbors t;
  t.a.start();
  t.a.on_hello(0, Bytes{1, 2});      // too short
  t.a.on_hello(0, Bytes(12, 0xff));  // too long
  EXPECT_TRUE(t.a.neighbors().empty());
}

TEST(NeighborTable, HelloOnUnknownInterfaceIgnored) {
  TwoNeighbors t;
  t.a.start();
  Bytes hello;
  ByteWriter(hello).u32(9);
  t.a.on_hello(5, hello);  // no such interface
  EXPECT_TRUE(t.a.neighbors().empty());
}

TEST(NeighborTable, StatsCountHellos) {
  TwoNeighbors t;
  t.a.start();
  t.b.start();
  t.run_for(Duration::millis(100));
  EXPECT_GE(t.a.stats().hellos_sent, 9u);
  EXPECT_GE(t.a.stats().hellos_received, 9u);
  EXPECT_EQ(t.a.stats().neighbors_up, 1u);
}

TEST(NeighborTable, NeighborOnQueriesByInterface) {
  TwoNeighbors t;
  t.a.start();
  t.b.start();
  t.run_for(Duration::millis(15));
  EXPECT_TRUE(t.a.neighbor_on(0).has_value());
  EXPECT_FALSE(t.a.neighbor_on(1).has_value());
}

}  // namespace
}  // namespace sublayer::netlayer
