// Route computation and forwarding tests over real topologies: the §2.2
// claims — DV and LS are swappable behind one interface, forwarding is
// untouched by the swap, and the control plane repairs around failures.
#include <gtest/gtest.h>

#include "netlayer/router.hpp"

namespace sublayer::netlayer {
namespace {

RouterConfig config_for(RoutingKind kind) {
  RouterConfig c;
  c.routing = kind;
  c.neighbor.hello_interval = Duration::millis(20);
  c.neighbor.dead_interval = Duration::millis(70);
  c.routing_config.advert_interval = Duration::millis(40);
  c.routing_config.route_timeout = Duration::millis(150);
  c.routing_config.lsp_refresh = Duration::millis(100);
  return c;
}

void run_for(sim::Simulator& sim, Duration d) {
  sim.run_until(TimePoint::from_ns(sim.now().ns() + d.ns()));
}

struct PingCounter {
  int received = 0;
  void attach(Router& r) {
    r.set_protocol_handler(IpProto::kPing,
                           [this](const IpHeader&, Bytes) { ++received; });
  }
};

class RoutingEngines : public ::testing::TestWithParam<RoutingKind> {};

TEST_P(RoutingEngines, LineTopologyConverges) {
  sim::Simulator sim;
  Network net(sim, config_for(GetParam()));
  const RouterId a = net.add_router();
  const RouterId b = net.add_router();
  const RouterId c = net.add_router();
  net.connect(a, b);
  net.connect(b, c);
  net.start();
  run_for(sim, Duration::millis(600));
  ASSERT_TRUE(net.fully_converged());

  // a's route to c goes through b.
  const auto& route = net.router(a).routes().at(c);
  EXPECT_EQ(route.next_hop, b);
  EXPECT_DOUBLE_EQ(route.metric, 2.0);
}

TEST_P(RoutingEngines, ForwardingDeliversAcrossMultipleHops) {
  sim::Simulator sim;
  Network net(sim, config_for(GetParam()));
  std::vector<RouterId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(net.add_router());
  for (int i = 0; i + 1 < 5; ++i) net.connect(ids[i], ids[i + 1]);
  net.start();
  run_for(sim, Duration::millis(1200));
  ASSERT_TRUE(net.fully_converged());

  PingCounter counter;
  counter.attach(net.router(ids[4]));
  IpHeader ping;
  ping.protocol = IpProto::kPing;
  ping.src = host_addr(ids[0], 1);
  ping.dst = host_addr(ids[4], 1);
  for (int i = 0; i < 10; ++i) {
    net.router(ids[0]).send_datagram(ping, bytes_from_string("ping"));
  }
  run_for(sim, Duration::millis(100));
  EXPECT_EQ(counter.received, 10);
  EXPECT_GT(net.router(ids[1]).stats().datagrams_forwarded, 0u);
}

TEST_P(RoutingEngines, PrefersCheaperPath) {
  // Triangle with an expensive direct edge: a->c direct cost 5, via b cost 2.
  sim::Simulator sim;
  Network net(sim, config_for(GetParam()));
  const RouterId a = net.add_router();
  const RouterId b = net.add_router();
  const RouterId c = net.add_router();
  net.connect(a, b, {}, 1.0);
  net.connect(b, c, {}, 1.0);
  net.connect(a, c, {}, 5.0);
  net.start();
  run_for(sim, Duration::millis(800));
  ASSERT_TRUE(net.fully_converged());
  EXPECT_EQ(net.router(a).routes().at(c).next_hop, b);
  EXPECT_DOUBLE_EQ(net.router(a).routes().at(c).metric, 2.0);
}

TEST_P(RoutingEngines, ReroutesAroundLinkFailure) {
  // Square: a-b-d and a-c-d.  Kill a-b; traffic a->d must shift via c.
  sim::Simulator sim;
  Network net(sim, config_for(GetParam()));
  const RouterId a = net.add_router();
  const RouterId b = net.add_router();
  const RouterId c = net.add_router();
  const RouterId d = net.add_router();
  const std::size_t ab = net.connect(a, b);
  net.connect(b, d);
  net.connect(a, c);
  net.connect(c, d);
  net.start();
  run_for(sim, Duration::millis(1000));
  ASSERT_TRUE(net.fully_converged());

  net.fail_link(ab);
  run_for(sim, Duration::millis(1500));
  ASSERT_TRUE(net.router(a).routes().contains(d));
  EXPECT_EQ(net.router(a).routes().at(d).next_hop, c);

  PingCounter counter;
  counter.attach(net.router(d));
  IpHeader ping;
  ping.protocol = IpProto::kPing;
  ping.src = host_addr(a, 1);
  ping.dst = host_addr(d, 1);
  net.router(a).send_datagram(ping, {});
  run_for(sim, Duration::millis(100));
  EXPECT_EQ(counter.received, 1);
}

TEST_P(RoutingEngines, RecoversWhenLinkRestored) {
  sim::Simulator sim;
  Network net(sim, config_for(GetParam()));
  const RouterId a = net.add_router();
  const RouterId b = net.add_router();
  const std::size_t ab = net.connect(a, b);
  net.start();
  run_for(sim, Duration::millis(500));
  ASSERT_TRUE(net.fully_converged());

  net.fail_link(ab);
  run_for(sim, Duration::millis(1000));
  EXPECT_FALSE(net.router(a).routes().contains(b));

  net.restore_link(ab);
  run_for(sim, Duration::millis(1000));
  EXPECT_TRUE(net.router(a).routes().contains(b));
}

TEST_P(RoutingEngines, RingTopologyShortestWay) {
  // 6-ring: route to the node 2 hops clockwise must not go the 4-hop way.
  sim::Simulator sim;
  Network net(sim, config_for(GetParam()));
  std::vector<RouterId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(net.add_router());
  for (int i = 0; i < 6; ++i) net.connect(ids[i], ids[(i + 1) % 6]);
  net.start();
  run_for(sim, Duration::millis(1500));
  ASSERT_TRUE(net.fully_converged());
  EXPECT_DOUBLE_EQ(net.router(ids[0]).routes().at(ids[2]).metric, 2.0);
  EXPECT_DOUBLE_EQ(net.router(ids[0]).routes().at(ids[3]).metric, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Engines, RoutingEngines,
                         ::testing::Values(RoutingKind::kDistanceVector,
                                           RoutingKind::kLinkState),
                         [](const auto& info) {
                           return info.param == RoutingKind::kDistanceVector
                                      ? "dv"
                                      : "ls";
                         });

TEST(Forwarding, TtlExpiryDropsPacket) {
  sim::Simulator sim;
  Network net(sim, config_for(RoutingKind::kLinkState));
  std::vector<RouterId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(net.add_router());
  for (int i = 0; i + 1 < 4; ++i) net.connect(ids[i], ids[i + 1]);
  net.start();
  run_for(sim, Duration::millis(1000));
  ASSERT_TRUE(net.fully_converged());

  PingCounter counter;
  counter.attach(net.router(ids[3]));
  IpHeader ping;
  ping.protocol = IpProto::kPing;
  ping.ttl = 2;  // needs 3 hops
  ping.src = host_addr(ids[0], 1);
  ping.dst = host_addr(ids[3], 1);
  net.router(ids[0]).send_datagram(ping, {});
  run_for(sim, Duration::millis(100));
  EXPECT_EQ(counter.received, 0);
  const std::uint64_t expired = net.router(ids[1]).stats().ttl_expired +
                                net.router(ids[2]).stats().ttl_expired;
  EXPECT_EQ(expired, 1u);
}

TEST(Forwarding, NoRouteCountsDrop) {
  sim::Simulator sim;
  Network net(sim, config_for(RoutingKind::kLinkState));
  const RouterId a = net.add_router();
  net.start();
  run_for(sim, Duration::millis(100));
  IpHeader ping;
  ping.protocol = IpProto::kPing;
  ping.src = host_addr(a, 1);
  ping.dst = host_addr(99, 1);  // nowhere
  net.router(a).send_datagram(ping, {});
  EXPECT_EQ(net.router(a).stats().no_route, 1u);
}

TEST(Routing, DvCountsToInfinityIsBounded) {
  // Two nodes; kill the link; DV must withdraw the route (not count up
  // forever) thanks to poison reverse + the finite infinity.
  sim::Simulator sim;
  Network net(sim, config_for(RoutingKind::kDistanceVector));
  const RouterId a = net.add_router();
  const RouterId b = net.add_router();
  const RouterId c = net.add_router();
  net.connect(a, b);
  const std::size_t bc = net.connect(b, c);
  net.start();
  run_for(sim, Duration::millis(800));
  ASSERT_TRUE(net.fully_converged());

  net.fail_link(bc);
  run_for(sim, Duration::millis(2000));
  EXPECT_FALSE(net.router(a).routes().contains(c));
  EXPECT_FALSE(net.router(b).routes().contains(c));
}

TEST(Routing, SwapEngineWithoutTouchingForwarding) {
  // The replaceability claim, structurally: run the same topology and the
  // same forwarding code under both engines; the FIB interface is
  // identical and both deliver the same pings.
  for (const RoutingKind kind :
       {RoutingKind::kDistanceVector, RoutingKind::kLinkState}) {
    sim::Simulator sim;
    Network net(sim, config_for(kind));
    const RouterId a = net.add_router();
    const RouterId b = net.add_router();
    const RouterId c = net.add_router();
    net.connect(a, b);
    net.connect(b, c);
    net.start();
    run_for(sim, Duration::millis(800));
    ASSERT_TRUE(net.fully_converged());
    PingCounter counter;
    counter.attach(net.router(c));
    IpHeader ping;
    ping.protocol = IpProto::kPing;
    ping.src = host_addr(a, 1);
    ping.dst = host_addr(c, 1);
    net.router(a).send_datagram(ping, {});
    run_for(sim, Duration::millis(50));
    EXPECT_EQ(counter.received, 1);
    // The FIB is populated the same way regardless of the engine.
    EXPECT_TRUE(net.router(a).fib().lookup(host_addr(c, 9)).has_value());
  }
}

TEST(Routing, ControlMessagesAreCounted) {
  sim::Simulator sim;
  Network net(sim, config_for(RoutingKind::kLinkState));
  const RouterId a = net.add_router();
  const RouterId b = net.add_router();
  net.connect(a, b);
  net.start();
  run_for(sim, Duration::millis(500));
  EXPECT_GT(net.total_routing_messages(), 0u);
  EXPECT_GT(net.total_routing_bytes(), 0u);
}

}  // namespace
}  // namespace sublayer::netlayer
