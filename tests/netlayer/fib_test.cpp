#include "netlayer/fib.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sublayer::netlayer {
namespace {

IpAddr ip(int a, int b, int c, int d) {
  return static_cast<IpAddr>(a) << 24 | static_cast<IpAddr>(b) << 16 |
         static_cast<IpAddr>(c) << 8 | static_cast<IpAddr>(d);
}

TEST(Prefix, Contains) {
  const Prefix p{ip(10, 1, 2, 0), 24};
  EXPECT_TRUE(p.contains(ip(10, 1, 2, 0)));
  EXPECT_TRUE(p.contains(ip(10, 1, 2, 255)));
  EXPECT_FALSE(p.contains(ip(10, 1, 3, 0)));
  EXPECT_TRUE((Prefix{0, 0}).contains(ip(1, 2, 3, 4)));
  const Prefix host{ip(10, 1, 2, 3), 32};
  EXPECT_TRUE(host.contains(ip(10, 1, 2, 3)));
  EXPECT_FALSE(host.contains(ip(10, 1, 2, 4)));
}

TEST(Prefix, RouterLanConvention) {
  const Prefix p = Prefix::router_lan(7);
  EXPECT_TRUE(p.contains(host_addr(7, 0)));
  EXPECT_TRUE(p.contains(host_addr(7, 255)));
  EXPECT_FALSE(p.contains(host_addr(8, 0)));
  EXPECT_EQ(router_of(host_addr(7, 3)), 7u);
}

TEST(Fib, EmptyLookupMisses) {
  Fib fib;
  EXPECT_FALSE(fib.lookup(ip(1, 2, 3, 4)).has_value());
  EXPECT_EQ(fib.size(), 0u);
}

TEST(Fib, ExactInsertLookupRemove) {
  Fib fib;
  fib.insert(Prefix{ip(10, 0, 0, 0), 8}, RouteEntry{1, 2, 3});
  EXPECT_EQ(fib.size(), 1u);
  const auto hit = fib.lookup(ip(10, 9, 9, 9));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->interface, 1);
  EXPECT_FALSE(fib.lookup(ip(11, 0, 0, 1)).has_value());
  EXPECT_TRUE(fib.remove(Prefix{ip(10, 0, 0, 0), 8}));
  EXPECT_FALSE(fib.remove(Prefix{ip(10, 0, 0, 0), 8}));
  EXPECT_EQ(fib.size(), 0u);
}

TEST(Fib, LongestPrefixWins) {
  Fib fib;
  fib.insert(Prefix{0, 0}, RouteEntry{0, 0, 0});                    // default
  fib.insert(Prefix{ip(10, 0, 0, 0), 8}, RouteEntry{1, 0, 0});
  fib.insert(Prefix{ip(10, 1, 0, 0), 16}, RouteEntry{2, 0, 0});
  fib.insert(Prefix{ip(10, 1, 2, 0), 24}, RouteEntry{3, 0, 0});
  fib.insert(Prefix{ip(10, 1, 2, 3), 32}, RouteEntry{4, 0, 0});

  EXPECT_EQ(fib.lookup(ip(9, 9, 9, 9))->interface, 0);
  EXPECT_EQ(fib.lookup(ip(10, 9, 9, 9))->interface, 1);
  EXPECT_EQ(fib.lookup(ip(10, 1, 9, 9))->interface, 2);
  EXPECT_EQ(fib.lookup(ip(10, 1, 2, 9))->interface, 3);
  EXPECT_EQ(fib.lookup(ip(10, 1, 2, 3))->interface, 4);
}

TEST(Fib, RemovingSpecificFallsBackToCovering) {
  Fib fib;
  fib.insert(Prefix{ip(10, 0, 0, 0), 8}, RouteEntry{1, 0, 0});
  fib.insert(Prefix{ip(10, 1, 0, 0), 16}, RouteEntry{2, 0, 0});
  EXPECT_EQ(fib.lookup(ip(10, 1, 5, 5))->interface, 2);
  fib.remove(Prefix{ip(10, 1, 0, 0), 16});
  EXPECT_EQ(fib.lookup(ip(10, 1, 5, 5))->interface, 1);
}

TEST(Fib, InsertOverwritesSamePrefix) {
  Fib fib;
  fib.insert(Prefix{ip(10, 0, 0, 0), 8}, RouteEntry{1, 0, 0});
  fib.insert(Prefix{ip(10, 0, 0, 0), 8}, RouteEntry{7, 0, 0});
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib.lookup(ip(10, 0, 0, 1))->interface, 7);
}

TEST(Fib, ClearEmptiesEverything) {
  Fib fib;
  for (int i = 0; i < 50; ++i) {
    fib.insert(Prefix::router_lan(static_cast<RouterId>(i)),
               RouteEntry{i, 0, 0});
  }
  EXPECT_EQ(fib.size(), 50u);
  fib.clear();
  EXPECT_EQ(fib.size(), 0u);
  EXPECT_FALSE(fib.lookup(host_addr(3, 1)).has_value());
}

TEST(Fib, EntriesEnumeratesAll) {
  Fib fib;
  fib.insert(Prefix{ip(10, 0, 0, 0), 8}, RouteEntry{1, 0, 0});
  fib.insert(Prefix{ip(192, 168, 0, 0), 16}, RouteEntry{2, 0, 0});
  const auto all = fib.entries();
  EXPECT_EQ(all.size(), 2u);
}

TEST(Fib, RandomizedAgainstLinearScan) {
  // Property: trie LPM == brute-force longest matching prefix.
  Rng rng(99);
  Fib fib;
  std::vector<std::pair<Prefix, RouteEntry>> table;
  for (int i = 0; i < 300; ++i) {
    const int len = static_cast<int>(rng.next_below(33));
    const IpAddr addr =
        len == 0 ? 0
                 : static_cast<IpAddr>(rng.next_u64()) &
                       (len == 32 ? ~0u : ~((1u << (32 - len)) - 1));
    const Prefix p{addr, len};
    const RouteEntry e{i, 0, 0};
    fib.insert(p, e);
    std::erase_if(table, [&](const auto& kv) { return kv.first == p; });
    table.emplace_back(p, e);
  }
  for (int t = 0; t < 2000; ++t) {
    const IpAddr probe = static_cast<IpAddr>(rng.next_u64());
    const auto got = fib.lookup(probe);
    const std::pair<Prefix, RouteEntry>* best = nullptr;
    for (const auto& kv : table) {
      if (kv.first.contains(probe) &&
          (best == nullptr || kv.first.len > best->first.len)) {
        best = &kv;
      }
    }
    if (best == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->interface, best->second.interface);
    }
  }
}

TEST(IpHeader, EncodeDecodeRoundTrip) {
  IpHeader h;
  h.ttl = 17;
  h.protocol = IpProto::kTcp;
  h.src = ip(10, 0, 0, 1);
  h.dst = ip(10, 0, 1, 1);
  h.ecn_ce = true;
  const Bytes payload = bytes_from_string("datagram");
  const auto parsed = decode_datagram(h.encode(payload));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.ttl, 17);
  EXPECT_EQ(parsed->header.protocol, IpProto::kTcp);
  EXPECT_EQ(parsed->header.src, h.src);
  EXPECT_EQ(parsed->header.dst, h.dst);
  EXPECT_TRUE(parsed->header.ecn_ce);
  EXPECT_FALSE(decode_datagram(IpHeader{}.encode({}))->header.ecn_ce);
  EXPECT_EQ(string_from_bytes(parsed->payload), "datagram");
}

TEST(IpHeader, RejectsMalformed) {
  EXPECT_FALSE(decode_datagram(Bytes{}).has_value());
  IpHeader h;
  Bytes raw = h.encode(bytes_from_string("abc"));
  raw[0] = 9;  // wrong version
  EXPECT_FALSE(decode_datagram(raw).has_value());
  Bytes truncated = h.encode(bytes_from_string("abc"));
  truncated.pop_back();  // length field now lies
  EXPECT_FALSE(decode_datagram(truncated).has_value());
}

TEST(AddrToString, DottedQuad) {
  EXPECT_EQ(addr_to_string(ip(10, 1, 2, 3)), "10.1.2.3");
  EXPECT_EQ((Prefix{ip(10, 1, 2, 0), 24}).to_string(), "10.1.2.0/24");
}

}  // namespace
}  // namespace sublayer::netlayer
