// Cross-configuration snapshot resume for the fused data plane: the
// snapshot format is plane-implementation-agnostic, so an image saved
// while running the dynamic DataPlane must restore into a stack running
// the compile-time fused pipeline (and vice versa) and resume
// bit-identically — same delivered suffix, same re-saved image, same
// per-sublayer counters for the resumed traffic.  This is the strongest
// form of the "StackConfig::fused is trace-invisible" contract: the flag
// can change across a checkpoint boundary mid-connection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "datalink/stack.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::datalink {
namespace {

constexpr int kPayloads = 40;

sim::LinkConfig impaired_link() {
  sim::LinkConfig cfg;
  cfg.propagation_delay = Duration::millis(1);
  cfg.jitter = Duration::micros(400);
  cfg.loss_rate = 0.10;
  cfg.corrupt_rate = 0.05;
  cfg.corrupt_bit_flips = 3;
  cfg.duplicate_rate = 0.03;
  cfg.bandwidth_bps = 5e6;
  return cfg;
}

Bytes payload(int i) {
  Rng rng(5000 + i);
  return rng.next_bytes(24 + rng.next_below(180));
}

// A full datalink stack (plane + ARQ) over an impaired duplex link; the
// plane implementation is picked by cfg.fused.
struct StackWorld {
  explicit StackWorld(bool fused, bool batched_wire)
      : rng(0xF0D5u), pair(sim, impaired_link(), rng,
                           make_config(fused, batched_wire),
                           phy::make_nrzi(), make_crc32(), phy::make_nrzi(),
                           make_crc32()) {
    pair.b().set_deliver(
        [this](Bytes p) { delivered.push_back(std::move(p)); });
  }

  static StackConfig make_config(bool fused, bool batched_wire) {
    StackConfig cfg;
    cfg.fused = fused;
    cfg.batched_wire = batched_wire;
    cfg.arq.window = 6;
    cfg.arq.rto = Duration::millis(20);
    return cfg;
  }

  Bytes save() const {
    sim::SnapshotWriter w;
    sim.save(w);
    w.begin_section("datalink.stack.pair");
    pair.save(w);
    w.end_section();
    return w.finish();
  }

  void restore_from(const Bytes& image) {
    sim::SnapshotReader r(image);
    sim.restore(r);
    r.begin_section("datalink.stack.pair");
    pair.restore(r);
    r.end_section();
    sim.finish_restore();
  }

  std::vector<std::uint64_t> plane_counters() {
    const StackStats& s = pair.a().stats();
    const StackStats& t = pair.b().stats();
    return {s.frames_tagged.value(),   s.frames_up.value(),
            s.checksum_failures.value(), t.frames_tagged.value(),
            t.frames_up.value(),       t.checksum_failures.value(),
            t.deframe_failures.value(), t.phy_decode_failures.value()};
  }

  sim::Simulator sim;
  Rng rng;
  DatalinkPair pair;
  std::vector<Bytes> delivered;
};

class FusedSnapshotResume
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    Directions, FusedSnapshotResume,
    ::testing::Values(std::make_tuple(false, true),
                      std::make_tuple(true, false)),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool>>& info) {
      return std::get<0>(info.param) ? std::string("FusedToDynamic")
                                     : std::string("DynamicToFused");
    });

TEST_P(FusedSnapshotResume, MidStreamImageRestoresAcrossPlaneSwap) {
  const auto [save_fused, restore_fused] = GetParam();
  const TimePoint mid = TimePoint::from_ns(Duration::millis(30).ns());
  const TimePoint end = TimePoint::from_ns(Duration::seconds(5).ns());

  // Straight-through reference under the save-side configuration.
  StackWorld wa(save_fused, /*batched_wire=*/false);
  ASSERT_EQ(wa.pair.a().plane().fused(), save_fused);
  for (int i = 0; i < kPayloads; ++i) {
    ASSERT_TRUE(wa.pair.a().send(payload(i)));
  }
  wa.sim.run_until(mid);
  ASSERT_FALSE(wa.pair.a().idle())
      << "snapshot should catch frames in flight";
  ASSERT_LT(wa.delivered.size(), static_cast<std::size_t>(kPayloads));
  const Bytes image = wa.save();
  const std::size_t mid_delivered = wa.delivered.size();
  wa.sim.run_until(end);
  const Bytes final_image = wa.save();
  ASSERT_EQ(wa.delivered.size(), static_cast<std::size_t>(kPayloads));
  for (int i = 0; i < kPayloads; ++i) {
    ASSERT_EQ(wa.delivered[i], payload(i)) << "payload " << i;
  }

  // Resume the image under the OPPOSITE plane implementation.
  StackWorld wb(restore_fused, /*batched_wire=*/false);
  ASSERT_EQ(wb.pair.a().plane().fused(), restore_fused);
  wb.restore_from(image);
  EXPECT_EQ(wb.sim.now(), mid);
  wb.sim.run_until(end);

  // The resumed run's deliveries are exactly the straight-through suffix,
  // and the re-saved image is bit-identical to the reference's.
  const std::vector<Bytes> suffix(
      wa.delivered.begin() + static_cast<std::ptrdiff_t>(mid_delivered),
      wa.delivered.end());
  EXPECT_EQ(wb.delivered, suffix);
  EXPECT_EQ(wb.save(), final_image);

  // A same-config restore processes identical resumed traffic: its plane
  // counters (which are NOT in the image — they restart at zero in each
  // fresh world) must agree with the cross-config restore's.
  StackWorld wc(save_fused, /*batched_wire=*/false);
  wc.restore_from(image);
  wc.sim.run_until(end);
  EXPECT_EQ(wc.delivered, wb.delivered);
  EXPECT_EQ(wc.save(), final_image);
  EXPECT_EQ(wb.plane_counters(), wc.plane_counters());
}

// The batched wire composes with the plane swap: save batched+dynamic,
// restore batched+fused.
TEST(FusedSnapshotResumeBatched, BatchedWireSurvivesPlaneSwap) {
  const TimePoint mid = TimePoint::from_ns(Duration::millis(25).ns());
  const TimePoint end = TimePoint::from_ns(Duration::seconds(5).ns());

  StackWorld wa(/*fused=*/false, /*batched_wire=*/true);
  for (int i = 0; i < kPayloads; ++i) {
    ASSERT_TRUE(wa.pair.a().send(payload(i)));
  }
  wa.sim.run_until(mid);
  const Bytes image = wa.save();
  const std::size_t mid_delivered = wa.delivered.size();
  wa.sim.run_until(end);
  const Bytes final_image = wa.save();
  ASSERT_EQ(wa.delivered.size(), static_cast<std::size_t>(kPayloads));

  StackWorld wb(/*fused=*/true, /*batched_wire=*/true);
  ASSERT_TRUE(wb.pair.a().plane().fused());
  wb.restore_from(image);
  wb.sim.run_until(end);
  const std::vector<Bytes> suffix(
      wa.delivered.begin() + static_cast<std::ptrdiff_t>(mid_delivered),
      wa.delivered.end());
  EXPECT_EQ(wb.delivered, suffix);
  EXPECT_EQ(wb.save(), final_image);
}

}  // namespace
}  // namespace sublayer::datalink
