// Snapshot-resume through the full stack: the ring workload (routers,
// links with FCS, sublayered TCP hosts, optional mixed-mayhem chaos) is
// snapshotted mid-run, restored into a freshly constructed identical
// graph, and run to the same deadline as the straight-through run.  The
// resumed world must be indistinguishable: the application sees exactly
// the straight run's post-snapshot deliveries, the merged telemetry
// matches, and — the strongest check — re-saving both worlds at the
// common end instant yields byte-identical images.  Covered: both
// monolithic engines (plus a wheel-image-to-heap-engine cross restore),
// the parallel engine at 1/2/4 shards, clean and mixed-mayhem, and
// worker-thread-count invisibility of the image.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/controller.hpp"
#include "chaos/fault_plan.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "netlayer/router.hpp"
#include "sim/parallel.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "transport/sublayered/host.hpp"

namespace sublayer {
namespace {

constexpr std::size_t kRing = 4;   // routers
constexpr std::size_t kFlows = 8;  // client on f%4 -> server on (f%4+2)%4
constexpr std::size_t kPerFlow = 4096;

netlayer::RouterConfig ring_router_config() {
  netlayer::RouterConfig rc;
  rc.routing = netlayer::RoutingKind::kLinkState;
  rc.neighbor.dead_interval = Duration::seconds(3600.0);
  return rc;
}

sim::LinkConfig ring_link_config() {
  sim::LinkConfig link;
  link.bandwidth_bps = 10e9;
  link.propagation_delay = Duration::micros(100);
  link.queue_limit = 4096;
  return link;
}

chaos::FaultPlan mayhem_plan(std::size_t link_count) {
  chaos::ScriptParams params;
  params.link_count = link_count;
  params.router_count = kRing;
  params.start = TimePoint::from_ns(Duration::millis(600).ns());
  params.active_window = Duration::seconds(1.5);
  return chaos::make_plan("mixed-mayhem", 3, params);
}

/// The full ring-workload graph, buildable twice: the straight world calls
/// begin() (start, warmup, arm, schedule connects); the restore graph is
/// constructed identically but never started — hosts listen() (required
/// before TcpHost::restore) and then the image overwrites everything.
/// `shards` 0 = monolithic Simulator on `engine`.
struct World {
  World(std::size_t shards, std::size_t threads, sim::EngineKind engine,
        bool with_chaos)
      : parallel(shards > 0) {
    if (!parallel) {
      // Monolithic runs use the process-wide registries; each world starts
      // them fresh (restore_metrics resets again before applying).
      telemetry::MetricsRegistry::instance().reset();
      telemetry::SpanTracer::instance().reset();
    }
    if (parallel) {
      sim::ParallelConfig pc;
      pc.shards = shards;
      pc.threads = threads;
      psim = std::make_unique<sim::ParallelSimulator>(pc);
      sim::ShardMap map(shards);
      for (std::size_t i = 0; i < kRing; ++i) map.assign(i, i % shards);
      net = std::make_unique<netlayer::Network>(*psim, ring_router_config(),
                                                /*seed=*/1, map);
    } else {
      mono = std::make_unique<sim::Simulator>(engine);
      net = std::make_unique<netlayer::Network>(*mono, ring_router_config(),
                                                /*seed=*/1);
    }
    for (std::size_t i = 0; i < kRing; ++i) {
      routers.push_back(net->add_router());
    }
    for (std::size_t i = 0; i < kRing; ++i) {
      net->connect(routers[i], routers[(i + 1) % kRing], ring_link_config());
    }
    transport::HostConfig hc;
    hc.connection.cm.keepalive_interval = Duration::seconds(2.0);
    for (std::size_t i = 0; i < kRing; ++i) {
      std::optional<sim::ParallelSimulator::ShardScope> scope;
      if (parallel) scope.emplace(*psim, net->shard_of(routers[i]));
      hosts.push_back(std::make_unique<transport::TcpHost>(
          net->router(routers[i]), 1, hc));
      auto* bucket = &received[i];
      hosts.back()->listen(80, [bucket](transport::Connection& c) {
        auto count = std::make_shared<std::size_t>(0);
        bucket->push_back(count);
        transport::Connection::AppCallbacks cb;
        cb.on_data = [count](Bytes data) { *count += data.size(); };
        c.set_app_callbacks(cb);
      });
    }
    if (with_chaos) {
      if (parallel) {
        chaos_ctl.emplace(*psim, *net);
      } else {
        chaos_ctl.emplace(*mono, *net);
      }
    }
  }

  /// Straight-world only: start routing, converge, arm the plan, and
  /// schedule the flow connects.  The connect closures are ad-hoc
  /// one-shots; they all fire by warmup+80us, well before any snapshot.
  void begin() {
    net->start();
    const auto warmup = TimePoint::from_ns(Duration::millis(500).ns());
    run_until(warmup);
    if (chaos_ctl) chaos_ctl->arm(mayhem_plan(net->link_count()));
    Rng rng(7);
    const Bytes payload = rng.next_bytes(kPerFlow);
    for (std::size_t f = 0; f < kFlows; ++f) {
      transport::TcpHost* client = hosts[f % kRing].get();
      transport::TcpHost* server = hosts[(f % kRing + 2) % kRing].get();
      const auto at =
          warmup + Duration::micros(static_cast<std::int64_t>(10 * (f + 1)));
      const auto go = [client, server, payload] {
        client->connect(server->addr(), 80).send(payload);
      };
      if (parallel) {
        psim->shard(net->shard_of(routers[f % kRing])).schedule_at(at, go);
      } else {
        mono->schedule_at(at, go);
      }
    }
  }

  void run_until(TimePoint t) {
    if (parallel) {
      psim->run_until(t);
    } else {
      mono->run_until(t);
    }
  }

  TimePoint now() const { return parallel ? psim->now() : mono->now(); }
  std::uint64_t events_processed() const {
    return parallel ? psim->events_processed() : mono->events_processed();
  }
  telemetry::MetricsSnapshot metrics() const {
    return parallel ? psim->merged_metrics()
                    : telemetry::MetricsRegistry::instance().snapshot();
  }

  /// World save order — fixed, identical on both graphs.  The parallel
  /// engine embeds its per-shard telemetry; the monolithic world saves the
  /// process-wide registries alongside the simulator.
  Bytes save_world() const {
    sim::SnapshotWriter w;
    if (parallel) {
      psim->save(w);
    } else {
      mono->save(w);
      sim::save_metrics(w, telemetry::MetricsRegistry::instance());
      sim::save_spans(w, telemetry::SpanTracer::instance());
    }
    net->save(w);
    for (const auto& h : hosts) h->save(w);
    if (chaos_ctl) chaos_ctl->save(w);
    return w.finish();
  }

  void restore_from(const Bytes& image) {
    sim::SnapshotReader r(image);
    if (parallel) {
      psim->restore(r);
    } else {
      mono->restore(r);
      sim::restore_metrics(r, telemetry::MetricsRegistry::instance());
      sim::restore_spans(r, telemetry::SpanTracer::instance());
    }
    net->restore(r);
    // Host restore re-creates Connection objects, whose telemetry handles
    // bind to the registry current at construction — under the parallel
    // engine that must be the owning shard's, exactly as in live accepts.
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      std::optional<sim::ParallelSimulator::ShardScope> scope;
      if (parallel) scope.emplace(*psim, net->shard_of(routers[i]));
      hosts[i]->restore(r);
    }
    if (chaos_ctl) chaos_ctl->restore(r);  // re-submits pending fault phases
    if (parallel) {
      psim->finish_restore();
    } else {
      mono->finish_restore();
    }
  }

  /// Bytes the application saw, summed per server host.  Accept order can
  /// differ on a restore graph (re-announcement walks tuples in sorted
  /// order), so only the per-host totals are comparable.
  std::vector<std::size_t> host_sums() const {
    std::vector<std::size_t> out;
    for (const auto& bucket : received) {
      std::size_t total = 0;
      for (const auto& c : bucket) total += *c;
      out.push_back(total);
    }
    return out;
  }

  bool parallel;
  std::unique_ptr<sim::Simulator> mono;
  std::unique_ptr<sim::ParallelSimulator> psim;
  std::unique_ptr<netlayer::Network> net;
  std::vector<netlayer::RouterId> routers;
  std::vector<std::unique_ptr<transport::TcpHost>> hosts;
  std::vector<std::vector<std::shared_ptr<std::size_t>>> received{
      std::vector<std::vector<std::shared_ptr<std::size_t>>>(kRing)};
  std::optional<chaos::ChaosController> chaos_ctl;
};

/// Same robustness as the replay suite: every metric present in one
/// snapshot must read identically in the other, ignoring zero-valued
/// names interned by earlier runs in the same process.
void expect_metrics_equal(const telemetry::MetricsSnapshot& a,
                          const telemetry::MetricsSnapshot& b,
                          const std::string& label) {
  for (const auto& [name, value] : a.counters) {
    if (value != 0) {
      EXPECT_EQ(b.counter(name), value) << label << " counter " << name;
    }
  }
  for (const auto& [name, value] : b.counters) {
    if (value != 0) {
      EXPECT_EQ(a.counter(name), value) << label << " counter " << name;
    }
  }
  for (const auto& [name, value] : a.gauges) {
    if (value != 0) {
      EXPECT_EQ(b.gauge(name), value) << label << " gauge " << name;
    }
  }
  for (const auto& h : a.histograms) {
    if (h.data.count == 0) continue;
    const auto* other = b.histogram(h.name);
    ASSERT_NE(other, nullptr) << label << " histogram " << h.name;
    EXPECT_EQ(other->count, h.data.count) << label << " " << h.name;
    EXPECT_EQ(other->sum, h.data.sum) << label << " " << h.name;
    EXPECT_EQ(other->buckets, h.data.buckets) << label << " " << h.name;
  }
}

/// The full resume contract for one variant: snapshot at `mid`, restore
/// into a fresh graph, run both to the deadline, compare the application
/// suffix, telemetry, event counts, chaos bookkeeping, and the re-saved
/// images byte for byte.
void run_case(std::size_t shards, std::size_t threads, sim::EngineKind engine,
              bool with_chaos, const std::string& label) {
  SCOPED_TRACE(label);
  const auto mid = TimePoint::from_ns(Duration::millis(1200).ns());
  const auto end =
      TimePoint::from_ns(Duration::seconds(with_chaos ? 5.0 : 3.0).ns());

  World wa(shards, threads, engine, with_chaos);
  wa.begin();
  wa.run_until(mid);
  const Bytes image = wa.save_world();
  const auto mid_sums = wa.host_sums();
  wa.run_until(end);
  const Bytes final_a = wa.save_world();
  const auto end_sums = wa.host_sums();
  const auto final_metrics = wa.metrics();
  const std::uint64_t final_events = wa.events_processed();

  // The straight run is a real workload: clean runs complete every flow;
  // chaos runs apply faults and heal every window.
  if (with_chaos) {
    ASSERT_GT(wa.chaos_ctl->stats().faults_applied, 0u);
    ASSERT_EQ(wa.chaos_ctl->stats().faults_applied,
              wa.chaos_ctl->stats().faults_healed);
  } else {
    std::size_t total = 0;
    for (const auto s : end_sums) total += s;
    ASSERT_EQ(total, kFlows * kPerFlow);
  }

  World wb(shards, threads, engine, with_chaos);
  wb.restore_from(image);
  EXPECT_EQ(wb.now(), mid);
  wb.run_until(end);

  // The application sees exactly the straight run's post-snapshot
  // deliveries (the resumed graph's counters start at zero).
  const auto resumed_sums = wb.host_sums();
  ASSERT_EQ(resumed_sums.size(), end_sums.size());
  for (std::size_t i = 0; i < resumed_sums.size(); ++i) {
    EXPECT_EQ(resumed_sums[i], end_sums[i] - mid_sums[i]) << "host " << i;
  }
  EXPECT_EQ(wb.events_processed(), final_events);
  expect_metrics_equal(wb.metrics(), final_metrics, label);
  if (with_chaos) {
    EXPECT_EQ(wb.chaos_ctl->stats().faults_applied,
              wa.chaos_ctl->stats().faults_applied);
    EXPECT_EQ(wb.chaos_ctl->stats().faults_healed,
              wa.chaos_ctl->stats().faults_healed);
    EXPECT_TRUE(wb.chaos_ctl->all_healed());
  }

  EXPECT_EQ(wb.save_world(), final_a) << label << ": re-saved images differ";
}

TEST(SnapshotResume, MonoWheelCleanResumesBitIdentically) {
  run_case(0, 0, sim::EngineKind::kTimerWheel, false, "mono-wheel-clean");
}

TEST(SnapshotResume, MonoWheelChaosResumesBitIdentically) {
  run_case(0, 0, sim::EngineKind::kTimerWheel, true, "mono-wheel-chaos");
}

TEST(SnapshotResume, MonoHeapCleanResumesBitIdentically) {
  run_case(0, 0, sim::EngineKind::kLegacyHeap, false, "mono-heap-clean");
}

TEST(SnapshotResume, MonoHeapChaosResumesBitIdentically) {
  run_case(0, 0, sim::EngineKind::kLegacyHeap, true, "mono-heap-chaos");
}

TEST(SnapshotResume, ParallelOneShardCleanResumesBitIdentically) {
  run_case(1, 1, sim::EngineKind::kTimerWheel, false, "par-1shard-clean");
}

TEST(SnapshotResume, ParallelTwoShardsChaosResumesBitIdentically) {
  run_case(2, 2, sim::EngineKind::kTimerWheel, true, "par-2shard-chaos");
}

TEST(SnapshotResume, ParallelFourShardsCleanResumesBitIdentically) {
  run_case(4, 4, sim::EngineKind::kTimerWheel, false, "par-4shard-clean");
}

TEST(SnapshotResume, ParallelFourShardsChaosResumesBitIdentically) {
  run_case(4, 4, sim::EngineKind::kTimerWheel, true, "par-4shard-chaos");
}

// A wheel-engine image restores into a heap-engine world: the image is
// engine-agnostic (pending (deadline, seq) triples, not wheel slots).
// Re-saved images are NOT byte-comparable across engines (engine stats
// differ), so the contract here is the observable one: same deliveries,
// same event count, same clock.
TEST(SnapshotResume, CrossEngineWheelImageResumesOnHeapEngine) {
  const auto mid = TimePoint::from_ns(Duration::millis(1200).ns());
  const auto end = TimePoint::from_ns(Duration::seconds(3.0).ns());

  World wa(0, 0, sim::EngineKind::kTimerWheel, false);
  wa.begin();
  wa.run_until(mid);
  const Bytes image = wa.save_world();
  const auto mid_sums = wa.host_sums();
  wa.run_until(end);
  const auto end_sums = wa.host_sums();
  const std::uint64_t final_events = wa.events_processed();

  World wb(0, 0, sim::EngineKind::kLegacyHeap, false);
  wb.restore_from(image);
  EXPECT_EQ(wb.now(), mid);
  wb.run_until(end);

  const auto resumed_sums = wb.host_sums();
  for (std::size_t i = 0; i < resumed_sums.size(); ++i) {
    EXPECT_EQ(resumed_sums[i], end_sums[i] - mid_sums[i]) << "host " << i;
  }
  EXPECT_EQ(wb.events_processed(), final_events);
  EXPECT_EQ(wb.now(), end);
}

// Worker-thread count is invisible to the snapshot: an image saved from a
// 1-thread run restores into a 4-thread engine and re-saves byte-identical
// to the 1-thread straight-through run.
TEST(SnapshotResume, ThreadCountInvisibleToSnapshotImage) {
  const auto mid = TimePoint::from_ns(Duration::millis(1200).ns());
  const auto end = TimePoint::from_ns(Duration::seconds(3.0).ns());

  World wa(4, 1, sim::EngineKind::kTimerWheel, false);
  wa.begin();
  wa.run_until(mid);
  const Bytes image = wa.save_world();
  wa.run_until(end);
  const Bytes final_a = wa.save_world();

  World wb(4, 4, sim::EngineKind::kTimerWheel, false);
  wb.restore_from(image);
  wb.run_until(end);
  EXPECT_EQ(wb.save_world(), final_a);
}

}  // namespace
}  // namespace sublayer
