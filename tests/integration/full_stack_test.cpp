// The whole tower at once: sublayered TCP over IP forwarding over the
// composed data-link sublayer stack (ARQ over CRC over bit-stuffed framing
// over a line code) over a corrupting bit pipe.
//
// This is the paper's Fig. 1 picture made executable: every layer in the
// stack is itself sublayered, and each sublayer boundary holds while the
// layers stack three deep.
#include <gtest/gtest.h>

#include <algorithm>

#include "datalink/stack.hpp"
#include "netlayer/router.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "transport/sublayered/host.hpp"

namespace sublayer {
namespace {

/// Two routers joined not by a raw sim::Link but by the full data-link
/// sublayer stack of Fig. 2 running over a noisy wire.
struct FullStack {
  FullStack(double corrupt_rate, double loss_rate, std::uint64_t seed = 3)
      : net(sim, router_config(), seed) {
    r0 = net.add_router();
    r1 = net.add_router();

    sim::LinkConfig wire;
    wire.corrupt_rate = corrupt_rate;
    wire.corrupt_bit_flips = 2;
    wire.loss_rate = loss_rate;
    wire.propagation_delay = Duration::micros(200);
    wire.bandwidth_bps = 50e6;

    datalink::StackConfig dl;
    dl.arq_engine = "selective-repeat";
    dl.arq.rto = Duration::millis(10);
    dl.arq.window = 32;
    dl.arq.max_send_queue = 1 << 14;

    Rng rng(seed);
    pair = std::make_unique<datalink::DatalinkPair>(
        sim, wire, rng, dl, phy::make_nrzi(), datalink::make_crc32(),
        phy::make_nrzi(), datalink::make_crc32());

    // Wire the routers through the data link's *reliable frame service*
    // instead of a raw link: the network layer neither knows nor cares.
    netlayer::Router& ra = net.router(r0);
    netlayer::Router& rb = net.router(r1);
    const int ia = ra.add_interface(
        [this](Bytes frame) { pair->a().send(std::move(frame)); });
    const int ib = rb.add_interface(
        [this](Bytes frame) { pair->b().send(std::move(frame)); });
    pair->a().set_deliver(
        [&ra, ia](Bytes frame) { ra.on_link_frame(ia, std::move(frame)); });
    pair->b().set_deliver(
        [&rb, ib](Bytes frame) { rb.on_link_frame(ib, std::move(frame)); });

    net.start();
    sim.run_until(TimePoint::from_ns(Duration::millis(500).ns()));
  }

  static netlayer::RouterConfig router_config() {
    netlayer::RouterConfig config;
    config.neighbor.dead_interval = Duration::seconds(3600.0);
    return config;
  }

  sim::Simulator sim;
  netlayer::Network net;
  netlayer::RouterId r0 = 0;
  netlayer::RouterId r1 = 0;
  std::unique_ptr<datalink::DatalinkPair> pair;
};

TEST(FullStack, RoutingConvergesOverTheDatalinkTower) {
  FullStack stack(0.02, 0.02);
  EXPECT_TRUE(stack.net.fully_converged());
  // The data link did real repair work for the control plane already.
  EXPECT_GT(stack.pair->a().arq_stats().data_frames_sent, 0u);
}

TEST(FullStack, TcpByteStreamSurvivesCorruptingWire) {
  FullStack stack(0.05, 0.02);
  transport::TcpHost client(stack.sim, stack.net.router(stack.r0), 1);
  transport::TcpHost server(stack.sim, stack.net.router(stack.r1), 1);

  Bytes received;
  bool ended = false;
  server.listen(80, [&](transport::Connection& c) {
    transport::Connection::AppCallbacks cb;
    cb.on_data = [&](Bytes d) {
      received.insert(received.end(), d.begin(), d.end());
    };
    cb.on_stream_end = [&] { ended = true; };
    c.set_app_callbacks(cb);
  });

  auto& conn = client.connect(server.addr(), 80);
  Rng rng(11);
  const Bytes payload = rng.next_bytes(120000);
  conn.send(payload);
  conn.close();
  stack.sim.run(8'000'000);

  ASSERT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
  EXPECT_TRUE(ended);

  // Division of labour: the data link repaired wire damage, so TCP's RD
  // saw a clean (if slow) network — corruption never reached it.
  const auto& dl_rx = stack.pair->b().stats();
  EXPECT_GT(dl_rx.checksum_failures + dl_rx.phy_decode_failures +
                dl_rx.deframe_failures,
            0u);
  // TCP retransmissions only from residual frame loss latencies, not data
  // corruption: the byte stream above was never corrupted.
}

TEST(FullStack, EverySublayerReportsWork) {
  FullStack stack(0.05, 0.05);
  transport::TcpHost client(stack.sim, stack.net.router(stack.r0), 1);
  transport::TcpHost server(stack.sim, stack.net.router(stack.r1), 1);
  std::size_t received = 0;
  server.listen(80, [&](transport::Connection& c) {
    transport::Connection::AppCallbacks cb;
    cb.on_data = [&](Bytes d) { received += d.size(); };
    c.set_app_callbacks(cb);
  });
  auto& conn = client.connect(server.addr(), 80);
  Rng rng(13);
  conn.send(rng.next_bytes(60000));
  stack.sim.run(8'000'000);
  ASSERT_EQ(received, 60000u);

  // Transport sublayers.
  EXPECT_EQ(conn.cm().state(), transport::CmState::kEstablished);
  EXPECT_GT(conn.rd().stats().segments_sent, 0u);
  EXPECT_GT(conn.osr().stats().segments_released, 0u);
  // Network sublayers.
  EXPECT_GT(stack.net.router(stack.r0).neighbor_stats().hellos_received, 0u);
  EXPECT_GT(stack.net.router(stack.r0).routing_stats().messages_sent, 0u);
  EXPECT_GT(stack.net.router(stack.r1).stats().delivered_local, 0u);
  // Data-link sublayers.
  EXPECT_GT(stack.pair->a().arq_stats().data_frames_sent, 0u);
  EXPECT_GT(stack.pair->a().arq_stats().retransmissions, 0u);
}

// The span tracer's core invariant, asserted at every instrumented
// boundary at once: on a lossless path, each PDU pushed down through a
// sublayer boundary surfaces up through the same boundary at the peer, so
// down-crossings and up-crossings (summed over both endpoints) match
// exactly — in count and in bytes.
TEST(FullStack, TelemetryCrossingsBalance) {
  FullStack stack(0.0, 0.0);
  transport::TcpHost client(stack.sim, stack.net.router(stack.r0), 1);
  transport::TcpHost server(stack.sim, stack.net.router(stack.r1), 1);

  // Settle the control plane past the 500 ms warmup so no hello or LSP is
  // in flight, then zero the telemetry: the tracer now covers exactly the
  // transfer (plus fully-completed periodic control rounds).
  stack.sim.run_until(TimePoint::from_ns(Duration::millis(550).ns()));
  telemetry::MetricsRegistry::instance().reset();
  telemetry::SpanTracer::instance().reset();

  std::size_t received = 0;
  bool ended = false;
  server.listen(80, [&](transport::Connection& c) {
    transport::Connection::AppCallbacks cb;
    cb.on_data = [&](Bytes d) { received += d.size(); };
    cb.on_stream_end = [&] { ended = true; };
    c.set_app_callbacks(cb);
  });
  auto& conn = client.connect(server.addr(), 80);
  Rng rng(17);
  const Bytes payload = rng.next_bytes(60000);
  conn.send(payload);
  conn.close();
  stack.sim.run(8'000'000);
  ASSERT_EQ(received, payload.size());
  ASSERT_TRUE(ended);

  // Measure at a quiet instant: past the next 500 ms LSP refresh (so the
  // routing boundary has post-reset traffic), offset 50 ms into a hello
  // period so every periodic round has fully landed (hello_interval is
  // 100 ms, propagation 200 us).
  const std::int64_t period = Duration::millis(100).ns();
  const std::int64_t base =
      std::max(stack.sim.now().ns(), Duration::millis(1000).ns());
  stack.sim.run_until(TimePoint::from_ns(
      (base / period + 1) * period + Duration::millis(50).ns()));

  const auto& tracer = telemetry::SpanTracer::instance();
  const char* boundaries[] = {
      "transport.dm",        "transport.cm",      "transport.rd",
      "transport.osr",       "netlayer.fwd",      "netlayer.routing",
      "netlayer.neighbor",   "datalink.link",     "datalink.arq",
      "datalink.errordetect", "datalink.framing", "datalink.phy",
  };
  for (const char* boundary : boundaries) {
    const auto down = tracer.crossings(boundary, telemetry::Dir::kDown);
    const auto up = tracer.crossings(boundary, telemetry::Dir::kUp);
    EXPECT_GT(down, 0u) << boundary;
    EXPECT_EQ(down, up) << boundary;
    EXPECT_EQ(tracer.crossing_bytes(boundary, telemetry::Dir::kDown),
              tracer.crossing_bytes(boundary, telemetry::Dir::kUp))
        << boundary;
  }

  // And the registry saw real work in every instrumented sublayer.
  const auto& reg = telemetry::MetricsRegistry::instance();
  const char* counters[] = {
      "datalink.phy.frames_encoded",
      "datalink.framing.frames_framed",
      "datalink.errordetect.frames_tagged",
      "datalink.arq.data_frames_sent",
      "netlayer.neighbor.hellos_sent",
      "netlayer.routing.messages_sent",
      "netlayer.fib.lookups",
      "netlayer.fwd.delivered_local",
      "transport.dm.segments_out",
      "transport.cm.syn_sent",
      "transport.rd.segments_sent",
      "transport.osr.segments_released",
  };
  for (const char* name : counters) {
    EXPECT_GT(reg.counter_value(name), 0u) << name;
  }
}

}  // namespace
}  // namespace sublayer
