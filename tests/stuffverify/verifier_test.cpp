#include "stuffverify/verifier.hpp"

#include <gtest/gtest.h>

namespace sublayer::stuffverify {
namespace {

using datalink::StuffingRule;

VerifyConfig fast_config() {
  VerifyConfig cfg;
  cfg.exhaustive_max_bits = 11;  // keep unit tests quick; bench goes deeper
  cfg.random_trials = 16;
  cfg.random_bits = 256;
  return cfg;
}

TEST(VerifyRule, HdlcIsValid) {
  const auto result = verify_rule(StuffingRule::hdlc(), fast_config());
  EXPECT_TRUE(result.valid) << result.summary();
  EXPECT_GT(result.automaton_states, 0u);
  EXPECT_GT(result.cases_checked, 1000u);
}

TEST(VerifyRule, PaperLowOverheadRuleIsValid) {
  const auto result = verify_rule(StuffingRule::low_overhead(), fast_config());
  EXPECT_TRUE(result.valid) << result.summary();
}

TEST(VerifyRule, LemmaLedgerHasPerSublayerStructure) {
  const auto result = verify_rule(StuffingRule::hdlc(), fast_config());
  int stuffing = 0;
  int flags = 0;
  int composed = 0;
  for (const auto& l : result.lemmas) {
    EXPECT_TRUE(l.passed) << l.name << ": " << l.detail;
    if (l.sublayer == "stuffing") ++stuffing;
    if (l.sublayer == "flags") ++flags;
    if (l.sublayer == "composed") ++composed;
  }
  EXPECT_GE(stuffing, 2);
  EXPECT_GE(flags, 2);
  EXPECT_GE(composed, 2);
}

TEST(VerifyRule, RejectsRuleWhoseStuffBitCompletesTheFlag) {
  // Flag 01111110 with trigger 111111 (six ones) and stuff bit 0: the data
  // 0111111 becomes 01111110 after stuffing -- the stuffed 0 completes a
  // false flag ("the stuffed bit forms a flag with subsequent data bits",
  // one of the paper's failure subtleties).
  const StuffingRule bad{BitString::parse("01111110"),
                         BitString::parse("111111"), false};
  const auto result = verify_rule(bad, fast_config());
  EXPECT_FALSE(result.valid);
  ASSERT_NE(result.first_failure(), nullptr);
  EXPECT_EQ(result.first_failure()->name, "F2.no_false_flag_any_length");
}

TEST(VerifyRule, RejectsRuleThatDoesNotPreventTheFlag) {
  // Trigger 000 never fires on flag-shaped data 01111110, so the flag can
  // appear verbatim inside the body.
  const StuffingRule bad{BitString::parse("01111110"), BitString::parse("000"),
                         true};
  const auto result = verify_rule(bad, fast_config());
  EXPECT_FALSE(result.valid);
}

TEST(VerifyRule, RejectsDegenerateSelfTriggeringRule) {
  const StuffingRule bad{BitString::parse("11111111"), BitString::parse("111"),
                         true};
  const auto result = verify_rule(bad, fast_config());
  EXPECT_FALSE(result.valid);
  ASSERT_NE(result.first_failure(), nullptr);
}

TEST(VerifyRule, RejectsMalformedRules) {
  EXPECT_FALSE(verify_rule(StuffingRule{BitString{}, BitString::parse("1"),
                                        false},
                           fast_config())
                   .valid);
  EXPECT_FALSE(
      verify_rule(StuffingRule{BitString::parse("01"),
                               BitString::parse("0101"), false},
                  fast_config())
          .valid);
}

TEST(QuickCheck, AgreesWithFullVerifierOnKnownRules) {
  EXPECT_TRUE(quick_check(StuffingRule::hdlc()));
  EXPECT_TRUE(quick_check(StuffingRule::low_overhead()));
  EXPECT_FALSE(quick_check(StuffingRule{BitString::parse("01111110"),
                                        BitString::parse("111111"), false}));
  EXPECT_FALSE(quick_check(StuffingRule{BitString::parse("11111111"),
                                        BitString::parse("111"), true}));
}

TEST(QuickCheck, ReportsAutomatonStates) {
  std::uint64_t states = 0;
  EXPECT_TRUE(quick_check(StuffingRule::hdlc(), &states));
  EXPECT_GT(states, 1u);
  EXPECT_LE(states, 256u * 6u);
}

// ---- Overhead (paper §4.1, lesson 2) ---------------------------------------

TEST(Overhead, HdlcNaiveMeasureIsOneInThirtyTwo) {
  // The paper's "1 in 32" is the window probability 2^-5.
  const auto est = estimate_overhead(StuffingRule::hdlc(), 1 << 18);
  EXPECT_DOUBLE_EQ(est.naive, 1.0 / 32.0);
}

TEST(Overhead, HdlcTrueInsertionRateIsOneInSixtyTwo) {
  // HDLC's trigger 11111 is fully self-overlapping, so a stuffed 0 resets
  // the run: the true insertion rate is 1/(2+4+8+16+32) = 1/62.
  const auto est = estimate_overhead(StuffingRule::hdlc(), 1 << 18);
  EXPECT_NEAR(est.analytic, 1.0 / 62.0, 0.0005);
  EXPECT_NEAR(est.empirical, 1.0 / 62.0, 0.001);
}

TEST(Overhead, PaperRuleIsOneInOneTwentyEight) {
  // 0000001 is non-self-overlapping: naive and true rates coincide.
  const auto est = estimate_overhead(StuffingRule::low_overhead(), 1 << 18);
  EXPECT_DOUBLE_EQ(est.naive, 1.0 / 128.0);
  EXPECT_NEAR(est.analytic, 1.0 / 128.0, 0.0005);
  EXPECT_NEAR(est.empirical, 1.0 / 128.0, 0.002);
}

TEST(Overhead, PaperRuleCheaperThanHdlcOnBothMeasures) {
  const auto hdlc = estimate_overhead(StuffingRule::hdlc(), 0);
  const auto alt = estimate_overhead(StuffingRule::low_overhead(), 0);
  EXPECT_LT(alt.naive, hdlc.naive);
  EXPECT_LT(alt.analytic, hdlc.analytic);
}

TEST(Overhead, AnalyticMatchesEmpiricalAcrossRules) {
  for (const auto& rule : {StuffingRule::hdlc(), StuffingRule::low_overhead()}) {
    const auto est = estimate_overhead(rule, 1 << 18);
    EXPECT_NEAR(est.analytic, est.empirical, 0.01) << rule.name();
  }
}

TEST(Overhead, OneInNInversion) {
  const auto est = estimate_overhead(StuffingRule::hdlc(), 0);
  EXPECT_NEAR(est.one_in_n(), 62.0, 1.0);
}

// ---- Rule search (paper §4.1: "66 alternate stuffing rules") ----------------

TEST(Search, FindsManyValidAlternateRules) {
  SearchConfig cfg;
  const auto outcome = search_rules(cfg);
  EXPECT_GT(outcome.candidates, 1000u);
  // The paper's library found 66 alternates; our space is defined slightly
  // differently, but there must be *many* valid rules, and some cheaper
  // than HDLC.
  EXPECT_GE(outcome.valid_rules.size(), 20u);
  EXPECT_GT(outcome.cheaper_than_hdlc, 0u);
}

TEST(Search, HdlcAndPaperRuleAreInTheValidSet) {
  const auto outcome = search_rules(SearchConfig{});
  bool found_hdlc = false;
  bool found_paper = false;
  for (const auto& s : outcome.valid_rules) {
    if (s.rule == StuffingRule::hdlc()) found_hdlc = true;
    if (s.rule == StuffingRule::low_overhead()) found_paper = true;
  }
  EXPECT_TRUE(found_hdlc);
  EXPECT_TRUE(found_paper);
}

TEST(Search, ResultsSortedByOverhead) {
  const auto outcome = search_rules(SearchConfig{});
  for (std::size_t i = 1; i < outcome.valid_rules.size(); ++i) {
    EXPECT_LE(outcome.valid_rules[i - 1].overhead.analytic,
              outcome.valid_rules[i].overhead.analytic);
  }
}

TEST(Search, EverySurvivorPassesTheFullVerifier) {
  const auto outcome = search_rules(SearchConfig{});
  VerifyConfig cfg;
  cfg.exhaustive_max_bits = 9;
  cfg.random_trials = 8;
  // Spot-check a spread of survivors (full sweep is the bench's job).
  for (std::size_t i = 0; i < outcome.valid_rules.size();
       i += std::max<std::size_t>(1, outcome.valid_rules.size() / 16)) {
    const auto result = verify_rule(outcome.valid_rules[i].rule, cfg);
    EXPECT_TRUE(result.valid)
        << outcome.valid_rules[i].rule.name() << ": " << result.summary();
  }
}

TEST(Search, PrefixOnlySpaceIsSmaller) {
  SearchConfig all;
  SearchConfig prefix;
  prefix.prefix_triggers_only = true;
  const auto a = search_rules(all);
  const auto p = search_rules(prefix);
  EXPECT_LT(p.candidates, a.candidates);
  EXPECT_LE(p.valid_rules.size(), a.valid_rules.size());
}

TEST(Search, RejectionReasonsAccounted) {
  const auto outcome = search_rules(SearchConfig{});
  EXPECT_EQ(outcome.candidates,
            outcome.valid_rules.size() + outcome.rejected_degenerate +
                outcome.rejected_false_flag);
}

}  // namespace
}  // namespace sublayer::stuffverify
