#include "datalink/framing/stuffing.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sublayer::datalink {
namespace {

TEST(StuffingRule, HdlcDefinition) {
  const StuffingRule r = StuffingRule::hdlc();
  EXPECT_EQ(r.flag.to_string(), "01111110");
  EXPECT_EQ(r.trigger.to_string(), "11111");
  EXPECT_FALSE(r.stuff_bit);
}

TEST(Stuff, HdlcInsertsZeroAfterFiveOnes) {
  const StuffingRule r = StuffingRule::hdlc();
  EXPECT_EQ(stuff(r, BitString::parse("11111")).to_string(), "111110");
  // Stuffing happens after five ones even when a 0 follows anyway.
  EXPECT_EQ(stuff(r, BitString::parse("0111110")).to_string(), "01111100");
  // The stuffed 0 resets the run: 8 ones need only one stuff.
  EXPECT_EQ(stuff(r, BitString::parse("11111111")).to_string(), "111110111");
}

TEST(Stuff, HdlcCounterResetsAfterStuff) {
  // Ten ones: stuff after first five, the stuffed 0 resets the run, then
  // stuff again after the next five.
  const StuffingRule r = StuffingRule::hdlc();
  EXPECT_EQ(stuff(r, BitString::parse("1111111111")).to_string(),
            "111110111110");
}

TEST(Stuff, NoTriggerMeansIdentity) {
  const StuffingRule r = StuffingRule::hdlc();
  const BitString d = BitString::parse("0101010101000");
  EXPECT_EQ(stuff(r, d), d);
}

TEST(Unstuff, InverseOfStuffExhaustiveSmall) {
  const StuffingRule r = StuffingRule::hdlc();
  for (int len = 0; len <= 12; ++len) {
    for (std::uint64_t v = 0; v < (1ull << len); ++v) {
      const BitString d = BitString::from_uint(v, len);
      const auto back = unstuff(r, stuff(r, d));
      ASSERT_TRUE(back.has_value()) << d.to_string();
      ASSERT_EQ(*back, d) << d.to_string();
    }
  }
}

TEST(Unstuff, RejectsTriggerFollowedByWrongBit) {
  const StuffingRule r = StuffingRule::hdlc();
  // 111111 = five ones followed by a 1 (not the stuffed 0): malformed.
  EXPECT_FALSE(unstuff(r, BitString::parse("111111")).has_value());
}

TEST(Unstuff, TrailingTriggerWithNothingAfterIsAccepted) {
  // A corrupted stream may end right after a trigger; unstuff treats the
  // missing stuffed bit as stream end (error detection catches the damage).
  const StuffingRule r = StuffingRule::hdlc();
  const auto out = unstuff(r, BitString::parse("11111"));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->to_string(), "11111");
}

TEST(Flags, AddRemoveRoundTrip) {
  const BitString flag = BitString::parse("01111110");
  const BitString body = BitString::parse("0011010");
  const BitString framed = add_flags(flag, body);
  EXPECT_EQ(framed.size(), body.size() + 16);
  const auto back = remove_flags(flag, framed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, body);
}

TEST(Flags, RemoveRejectsMissingFlags) {
  const BitString flag = BitString::parse("01111110");
  EXPECT_FALSE(remove_flags(flag, BitString::parse("0000000000000000")));
  EXPECT_FALSE(remove_flags(flag, BitString::parse("0111111")));  // too short
  BitString only_start = flag;
  only_start.append(BitString::parse("10101010"));
  EXPECT_FALSE(remove_flags(flag, only_start).has_value());
}

TEST(Flags, EmptyBodyFramesToTwoFlags) {
  const BitString flag = BitString::parse("01111110");
  const auto back = remove_flags(flag, add_flags(flag, BitString{}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

// The paper's main specification: Unstuff(RemoveFlags(AddFlags(Stuff(D)))) = D.
TEST(Framing, PaperSpecificationExhaustive) {
  const StuffingRule r = StuffingRule::hdlc();
  for (int len = 0; len <= 12; ++len) {
    for (std::uint64_t v = 0; v < (1ull << len); ++v) {
      const BitString d = BitString::from_uint(v, len);
      const auto back = deframe(r, frame(r, d));
      ASSERT_TRUE(back.has_value()) << d.to_string();
      ASSERT_EQ(*back, d) << d.to_string();
    }
  }
}

TEST(Framing, PaperSpecificationLowOverheadRule) {
  const StuffingRule r = StuffingRule::low_overhead();
  for (int len = 0; len <= 12; ++len) {
    for (std::uint64_t v = 0; v < (1ull << len); ++v) {
      const BitString d = BitString::from_uint(v, len);
      const auto back = deframe(r, frame(r, d));
      ASSERT_TRUE(back.has_value()) << d.to_string();
      ASSERT_EQ(*back, d) << d.to_string();
    }
  }
}

TEST(Framing, FlagNeverAppearsInsideFramedBody) {
  const StuffingRule r = StuffingRule::hdlc();
  Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    const BitString d = rng.next_bits(rng.next_below(200));
    const BitString framed = frame(r, d);
    EXPECT_EQ(framed.find(r.flag), 0u);
    EXPECT_EQ(framed.find(r.flag, 1), framed.size() - r.flag.size());
  }
}

TEST(Framing, RandomLongRoundTrip) {
  Rng rng(6);
  for (const auto& r : {StuffingRule::hdlc(), StuffingRule::low_overhead()}) {
    for (int t = 0; t < 50; ++t) {
      const BitString d = rng.next_bits(1000 + rng.next_below(1000));
      const auto back = deframe(r, frame(r, d));
      ASSERT_TRUE(back.has_value());
      ASSERT_EQ(*back, d);
    }
  }
}

TEST(Stuff, RunawayRuleThrows) {
  // Trigger 000 with stuff bit 0: stuffing retriggers itself forever.
  const StuffingRule bad{BitString::parse("00000000"), BitString::parse("000"),
                         false};
  EXPECT_THROW(stuff(bad, BitString::parse("000")), std::invalid_argument);
}

TEST(StreamDeframer, RecoversSingleFrame) {
  const StuffingRule r = StuffingRule::hdlc();
  StreamDeframer d(r);
  const BitString data = BitString::parse("1111101010");
  const auto frames = d.push_all(frame(r, data));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], data);
}

TEST(StreamDeframer, RecoversBackToBackFramesSharedFlags) {
  const StuffingRule r = StuffingRule::hdlc();
  StreamDeframer d(r);
  Rng rng(8);
  std::vector<BitString> sent;
  BitString wire;
  // Leading noise that is not a flag.
  wire.append(BitString::parse("0000"));
  for (int i = 0; i < 10; ++i) {
    const BitString data = rng.next_bits(1 + rng.next_below(64));
    sent.push_back(data);
    wire.append(frame(r, data));
  }
  const auto frames = d.push_all(wire);
  EXPECT_EQ(frames, sent);
}

TEST(StreamDeframer, IdleFlagsBetweenFramesIgnored) {
  const StuffingRule r = StuffingRule::hdlc();
  StreamDeframer d(r);
  const BitString data = BitString::parse("110011");
  BitString wire = frame(r, data);
  wire.append(r.flag);  // idle fill
  wire.append(r.flag);
  wire.append(frame(r, data));
  const auto frames = d.push_all(wire);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], data);
  EXPECT_EQ(frames[1], data);
}

TEST(StreamDeframer, CountsMalformedBodies) {
  const StuffingRule r = StuffingRule::hdlc();
  StreamDeframer d(r);
  // Body "111111 01" (trigger followed by 1, not the stuffed 0): malformed.
  BitString wire = r.flag;
  wire.append(BitString::parse("11111101"));
  wire.append(r.flag);
  const auto frames = d.push_all(wire);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(d.malformed_frames(), 1u);
}

}  // namespace
}  // namespace sublayer::datalink
