#include "datalink/arq/arq.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace sublayer::datalink {
namespace {

/// Harness: two ARQ endpoints wired through an impaired duplex link.
struct ArqHarness {
  ArqHarness(const std::string& engine, const sim::LinkConfig& link_config,
             ArqConfig arq_config = {}, std::uint64_t seed = 42)
      : rng(seed), link(sim, link_config, rng, "arq") {
    auto factory = arq_factory(engine);
    a = factory(sim, arq_config);
    b = factory(sim, arq_config);
    a->set_frame_sink([this](Bytes f) { link.a_to_b().send(std::move(f)); });
    b->set_frame_sink([this](Bytes f) { link.b_to_a().send(std::move(f)); });
    link.a_to_b().set_receiver([this](Bytes f) { b->on_frame(std::move(f)); });
    link.b_to_a().set_receiver([this](Bytes f) { a->on_frame(std::move(f)); });
    b->set_deliver([this](Bytes p) { delivered_at_b.push_back(std::move(p)); });
    a->set_deliver([this](Bytes p) { delivered_at_a.push_back(std::move(p)); });
  }

  sim::Simulator sim;
  Rng rng;
  sim::DuplexLink link;
  std::unique_ptr<ArqEndpoint> a;
  std::unique_ptr<ArqEndpoint> b;
  std::vector<Bytes> delivered_at_b;
  std::vector<Bytes> delivered_at_a;
};

std::vector<Bytes> numbered_payloads(int n) {
  std::vector<Bytes> out;
  for (int i = 0; i < n; ++i) {
    Bytes p;
    ByteWriter(p).u32(static_cast<std::uint32_t>(i));
    out.push_back(std::move(p));
  }
  return out;
}

// ---- Contract sweep: engine x channel impairment ----------------------------

struct ArqParam {
  std::string engine;
  double loss;
  double duplicate;
  Duration jitter;
  std::string label;
};

class ArqContract : public ::testing::TestWithParam<ArqParam> {};

TEST_P(ArqContract, DeliversInOrderExactlyOnce) {
  const auto& p = GetParam();
  sim::LinkConfig link;
  link.loss_rate = p.loss;
  link.duplicate_rate = p.duplicate;
  link.jitter = p.jitter;
  link.propagation_delay = Duration::millis(1);
  ArqConfig arq;
  arq.rto = Duration::millis(20);
  arq.window = 8;
  ArqHarness h(p.engine, link, arq);

  const auto payloads = numbered_payloads(200);
  for (const auto& payload : payloads) {
    ASSERT_TRUE(h.a->send(payload));
  }
  h.sim.run(2000000);
  EXPECT_EQ(h.delivered_at_b, payloads) << p.label;
  EXPECT_TRUE(h.a->idle());
}

TEST_P(ArqContract, BidirectionalTrafficDoesNotInterfere) {
  const auto& p = GetParam();
  sim::LinkConfig link;
  link.loss_rate = p.loss;
  link.duplicate_rate = p.duplicate;
  link.jitter = p.jitter;
  link.propagation_delay = Duration::millis(1);
  ArqConfig arq;
  arq.rto = Duration::millis(20);
  ArqHarness h(p.engine, link, arq);

  const auto a_to_b = numbered_payloads(60);
  auto b_to_a = numbered_payloads(60);
  for (auto& payload : b_to_a) payload.push_back(0xbb);
  for (const auto& payload : a_to_b) ASSERT_TRUE(h.a->send(payload));
  for (const auto& payload : b_to_a) ASSERT_TRUE(h.b->send(payload));
  h.sim.run(2000000);
  EXPECT_EQ(h.delivered_at_b, a_to_b) << p.label;
  EXPECT_EQ(h.delivered_at_a, b_to_a) << p.label;
}

std::string label_safe(std::string s) {
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

std::vector<ArqParam> arq_matrix() {
  std::vector<ArqParam> params;
  for (const char* engine :
       {"stop-and-wait", "go-back-n", "selective-repeat"}) {
    const std::string safe = label_safe(engine);
    params.push_back({engine, 0.0, 0.0, Duration::nanos(0), safe + "_clean"});
    params.push_back({engine, 0.2, 0.0, Duration::nanos(0), safe + "_lossy"});
    params.push_back({engine, 0.0, 0.3, Duration::nanos(0), safe + "_dup"});
    params.push_back({engine, 0.1, 0.1, Duration::nanos(0), safe + "_lossdup"});
    // Reordering (jitter): GBN and S&W tolerate reordered acks and
    // duplicates, and reordered data just causes retransmissions, so all
    // engines must still meet the contract.
    params.push_back({engine, 0.05, 0.0, Duration::millis(3),
                      safe + "_reorder"});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Matrix, ArqContract, ::testing::ValuesIn(arq_matrix()),
                         [](const auto& info) { return info.param.label; });

// ---- Engine-specific behaviour ----------------------------------------------

TEST(StopAndWait, OnlyOneFrameInFlight) {
  sim::LinkConfig link;
  link.propagation_delay = Duration::millis(10);
  ArqHarness h("stop-and-wait", link);
  for (const auto& p : numbered_payloads(5)) h.a->send(p);
  // After a tiny step, only the first DATA frame should have been offered.
  h.sim.run_until(TimePoint::from_ns(Duration::millis(1).ns()));
  EXPECT_EQ(h.a->stats().data_frames_sent, 1u);
  h.sim.run();
  EXPECT_EQ(h.delivered_at_b.size(), 5u);
}

TEST(GoBackN, WindowLimitsInFlightFrames) {
  sim::LinkConfig link;
  link.propagation_delay = Duration::millis(10);
  ArqConfig arq;
  arq.window = 4;
  ArqHarness h("go-back-n", link, arq);
  for (const auto& p : numbered_payloads(20)) h.a->send(p);
  h.sim.run_until(TimePoint::from_ns(Duration::millis(1).ns()));
  EXPECT_EQ(h.a->stats().data_frames_sent, 4u);
  h.sim.run();
  EXPECT_EQ(h.delivered_at_b.size(), 20u);
}

TEST(GoBackN, TimeoutResendsWholeWindow) {
  sim::LinkConfig link;
  ArqConfig arq;
  arq.window = 4;
  arq.rto = Duration::millis(20);
  ArqHarness h("go-back-n", link, arq);
  // Break the forward path so the first transmissions all die.
  h.link.a_to_b().set_loss_rate(1.0);
  for (const auto& p : numbered_payloads(4)) h.a->send(p);
  h.sim.run_until(TimePoint::from_ns(Duration::millis(30).ns()));
  EXPECT_GE(h.a->stats().retransmissions, 4u);
  h.link.a_to_b().set_loss_rate(0.0);
  h.sim.run();
  EXPECT_EQ(h.delivered_at_b.size(), 4u);
}

TEST(SelectiveRepeat, RetransmitsOnlyTheLostFrame) {
  sim::LinkConfig link;
  link.propagation_delay = Duration::millis(1);
  ArqConfig arq;
  arq.window = 8;
  arq.rto = Duration::millis(50);
  ArqHarness h("selective-repeat", link, arq);

  // Drop exactly the first DATA frame by toggling loss around it.
  h.link.a_to_b().set_loss_rate(1.0);
  auto payloads = numbered_payloads(8);
  h.a->send(payloads[0]);
  h.sim.run_until(TimePoint::from_ns(Duration::micros(100).ns()));
  h.link.a_to_b().set_loss_rate(0.0);
  for (int i = 1; i < 8; ++i) h.a->send(payloads[i]);
  h.sim.run();
  EXPECT_EQ(h.delivered_at_b, payloads);
  // Only the one lost frame should have been retransmitted.
  EXPECT_EQ(h.a->stats().retransmissions, 1u);
  EXPECT_EQ(h.b->stats().out_of_order_buffered, 7u);
}

TEST(GoBackN, LossCausesMoreRetransmissionsThanSelectiveRepeat) {
  // The classic efficiency ordering that motivates swappable ARQ engines.
  sim::LinkConfig link;
  link.loss_rate = 0.1;
  link.propagation_delay = Duration::millis(5);
  ArqConfig arq;
  arq.window = 16;
  arq.rto = Duration::millis(40);

  std::uint64_t retx_gbn = 0;
  std::uint64_t retx_sr = 0;
  {
    ArqHarness h("go-back-n", link, arq, 7);
    for (const auto& p : numbered_payloads(300)) h.a->send(p);
    h.sim.run(3000000);
    EXPECT_EQ(h.delivered_at_b.size(), 300u);
    retx_gbn = h.a->stats().retransmissions;
  }
  {
    ArqHarness h("selective-repeat", link, arq, 7);
    for (const auto& p : numbered_payloads(300)) h.a->send(p);
    h.sim.run(3000000);
    EXPECT_EQ(h.delivered_at_b.size(), 300u);
    retx_sr = h.a->stats().retransmissions;
  }
  EXPECT_GT(retx_gbn, retx_sr);
}

TEST(Arq, SendQueueBackpressure) {
  sim::LinkConfig link;
  ArqConfig arq;
  arq.max_send_queue = 10;
  arq.window = 1;
  ArqHarness h("go-back-n", link, arq);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (h.a->send(Bytes{static_cast<std::uint8_t>(i)})) ++accepted;
  }
  // Window slot takes one immediately; queue holds 10 more.
  EXPECT_LE(accepted, 12);
  EXPECT_GT(h.a->stats().send_queue_rejects, 0u);
}

TEST(Arq, GarbageFramesIgnored) {
  ArqHarness h("selective-repeat", sim::LinkConfig{});
  h.a->on_frame(Bytes{});
  h.a->on_frame(Bytes{0x77, 1, 2});
  h.a->on_frame(Bytes{0x01});  // DATA kind but truncated header
  h.sim.run();
  EXPECT_TRUE(h.delivered_at_a.empty());
}

TEST(Arq, EmptyPayloadDeliverable) {
  ArqHarness h("go-back-n", sim::LinkConfig{});
  h.a->send(Bytes{});
  h.sim.run();
  ASSERT_EQ(h.delivered_at_b.size(), 1u);
  EXPECT_TRUE(h.delivered_at_b[0].empty());
}

TEST(Arq, StatsAccounting) {
  sim::LinkConfig link;
  ArqHarness h("selective-repeat", link);
  for (const auto& p : numbered_payloads(10)) h.a->send(p);
  h.sim.run();
  const auto& s = h.a->stats();
  EXPECT_EQ(s.payloads_accepted, 10u);
  EXPECT_EQ(s.data_frames_sent, 10u);
  EXPECT_EQ(s.retransmissions, 0u);
  EXPECT_EQ(h.b->stats().delivered, 10u);
  EXPECT_EQ(h.b->stats().acks_sent, 10u);
}

}  // namespace
}  // namespace sublayer::datalink
