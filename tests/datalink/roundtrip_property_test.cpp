// Property tests for the data-plane sublayer round trips after the
// zero-copy refactor: unstuff(stuff(x)) == x and check_strip(protect(x))
// == x over randomized payloads, and the in-place variants must agree
// bit-for-bit with the copying ones.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "datalink/errordetect/detector.hpp"
#include "datalink/framing/stuffing.hpp"

namespace sublayer::datalink {
namespace {

BitString random_bits(Rng& rng, std::size_t n) {
  BitString out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.next_below(2) != 0);
  return out;
}

TEST(RoundTripProperty, StuffUnstuffIsIdentity) {
  const StuffingRule rules[] = {StuffingRule::hdlc(),
                                StuffingRule::low_overhead()};
  Rng rng(42);
  for (const auto& rule : rules) {
    for (int round = 0; round < 300; ++round) {
      const std::size_t n = rng.next_below(600);  // bit-granular, incl. empty
      const BitString data = random_bits(rng, n);
      const BitString stuffed = stuff(rule, data);
      const auto back = unstuff(rule, stuffed);
      ASSERT_TRUE(back.has_value()) << rule.name() << " round " << round;
      EXPECT_EQ(*back, data) << rule.name() << " round " << round;

      const auto framed_back = deframe(rule, frame(rule, data));
      ASSERT_TRUE(framed_back.has_value()) << rule.name();
      EXPECT_EQ(*framed_back, data) << rule.name();
    }
  }
}

TEST(RoundTripProperty, StuffHandlesTriggerSaturatedPayloads) {
  // All-ones (HDLC) / the low-overhead trigger repeated: maximum stuffing
  // density, where the word-wise fast path degenerates to per-position.
  const StuffingRule rules[] = {StuffingRule::hdlc(),
                                StuffingRule::low_overhead()};
  for (const auto& rule : rules) {
    for (const std::size_t n : {1u, 63u, 64u, 65u, 128u, 400u}) {
      BitString ones, zeros, triggers;
      for (std::size_t i = 0; i < n; ++i) {
        ones.push_back(true);
        zeros.push_back(false);
        triggers.push_back(rule.trigger[i % rule.trigger.size()]);
      }
      for (const BitString* data : {&ones, &zeros, &triggers}) {
        const auto back = unstuff(rule, stuff(rule, *data));
        ASSERT_TRUE(back.has_value()) << rule.name() << " n=" << n;
        EXPECT_EQ(*back, *data) << rule.name() << " n=" << n;
      }
    }
  }
}

TEST(RoundTripProperty, ProtectCheckStripIsIdentity) {
  const auto detectors = {make_crc8(),  make_crc16(),     make_crc32(),
                          make_crc64(), make_fletcher16(), make_adler32(),
                          make_internet_checksum()};
  Rng rng(7);
  for (const auto& det : detectors) {
    for (int round = 0; round < 100; ++round) {
      const Bytes payload = rng.next_bytes(rng.next_below(500));
      const Bytes protected_frame = det->protect(payload);
      ASSERT_EQ(protected_frame.size(), payload.size() + det->tag_bytes());
      const auto back = det->check_strip(protected_frame);
      ASSERT_TRUE(back.has_value()) << det->name();
      EXPECT_EQ(*back, payload) << det->name();
    }
  }
}

TEST(RoundTripProperty, InPlaceVariantsAgreeWithCopying) {
  const auto detectors = {make_crc32(), make_adler32()};
  Rng rng(19);
  for (const auto& det : detectors) {
    for (int round = 0; round < 100; ++round) {
      const Bytes payload = rng.next_bytes(rng.next_below(300));

      // protect_in_place(x) must produce exactly protect(x).
      Bytes in_place = payload;
      det->protect_in_place(in_place);
      EXPECT_EQ(in_place, det->protect(payload)) << det->name();

      // check_strip_in_place must accept it and restore the payload...
      Bytes stripped = in_place;
      ASSERT_TRUE(det->check_strip_in_place(stripped)) << det->name();
      EXPECT_EQ(stripped, payload) << det->name();

      // ...and reject a corrupted frame, leaving it untouched.
      Bytes corrupted = in_place;
      corrupted[rng.next_below(corrupted.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
      const Bytes corrupted_before = corrupted;
      EXPECT_EQ(det->check_strip_in_place(corrupted),
                det->check_strip(corrupted_before).has_value())
          << det->name();
      if (corrupted == corrupted_before) {
        EXPECT_FALSE(det->check_strip(corrupted_before).has_value());
      }
    }
  }
}

}  // namespace
}  // namespace sublayer::datalink
