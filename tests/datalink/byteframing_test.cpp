#include "datalink/framing/byteframing.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sublayer::datalink {
namespace {

struct FramerCase {
  const char* name;
  std::unique_ptr<ByteFramer> (*make)();
};

class ByteFramerContract : public ::testing::TestWithParam<FramerCase> {};

TEST_P(ByteFramerContract, RoundTripsRandomPayloads) {
  const auto framer = GetParam().make();
  Rng rng(100);
  for (int t = 0; t < 100; ++t) {
    const Bytes payload = rng.next_bytes(rng.next_below(600));
    const Bytes framed = framer->frame(payload);
    EXPECT_LE(framed.size(), framer->max_framed_size(payload.size()));
    const auto back = framer->deframe(framed);
    ASSERT_TRUE(back.has_value()) << framer->name() << " trial " << t;
    EXPECT_EQ(*back, payload);
  }
}

TEST_P(ByteFramerContract, RoundTripsAllSingleBytes) {
  const auto framer = GetParam().make();
  for (int b = 0; b < 256; ++b) {
    const Bytes payload{static_cast<std::uint8_t>(b)};
    const auto back = framer->deframe(framer->frame(payload));
    ASSERT_TRUE(back.has_value()) << b;
    EXPECT_EQ(*back, payload);
  }
}

TEST_P(ByteFramerContract, EmptyPayload) {
  const auto framer = GetParam().make();
  const auto back = framer->deframe(framer->frame(Bytes{}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST_P(ByteFramerContract, RejectsEmptyInput) {
  const auto framer = GetParam().make();
  EXPECT_FALSE(framer->deframe(Bytes{}).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllFramers, ByteFramerContract,
                         ::testing::Values(FramerCase{"ppp", make_ppp_framer},
                                           FramerCase{"cobs",
                                                      make_cobs_framer}),
                         [](const auto& info) { return info.param.name; });

TEST(PppFramer, DelimiterNeverInBody) {
  const auto framer = make_ppp_framer();
  Bytes payload;
  for (int i = 0; i < 64; ++i) payload.push_back(0x7e);
  const Bytes framed = framer->frame(payload);
  for (std::size_t i = 1; i + 1 < framed.size(); ++i) {
    EXPECT_NE(framed[i], 0x7e);
  }
}

TEST(PppFramer, EscapesWorstCasePayloadAtTwoX) {
  const auto framer = make_ppp_framer();
  const Bytes payload(100, 0x7d);
  EXPECT_EQ(framer->frame(payload).size(), 202u);
}

TEST(PppFramer, RejectsDanglingEscape) {
  const auto framer = make_ppp_framer();
  EXPECT_FALSE(framer->deframe(Bytes{0x7e, 0x7d, 0x7e}).has_value());
}

TEST(CobsFramer, ZeroNeverInBody) {
  const auto framer = make_cobs_framer();
  Rng rng(3);
  Bytes payload = rng.next_bytes(1000);
  for (std::size_t i = 0; i < payload.size(); i += 3) payload[i] = 0;
  const Bytes framed = framer->frame(payload);
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    EXPECT_NE(framed[i], 0);
  }
  EXPECT_EQ(framed.back(), 0);
}

TEST(CobsFramer, BoundedOverheadOnLongRuns) {
  const auto framer = make_cobs_framer();
  const Bytes payload(254 * 4, 0x11);  // no zeros: worst case for COBS
  const Bytes framed = framer->frame(payload);
  EXPECT_LE(framed.size(), payload.size() + payload.size() / 254 + 2);
}

TEST(CobsFramer, ExactBlockBoundaries) {
  const auto framer = make_cobs_framer();
  for (std::size_t n : {253u, 254u, 255u, 508u, 509u}) {
    const Bytes payload(n, 0x42);
    const auto back = framer->deframe(framer->frame(payload));
    ASSERT_TRUE(back.has_value()) << n;
    EXPECT_EQ(*back, payload) << n;
  }
}

TEST(CobsFramer, RejectsTruncatedBlock) {
  const auto framer = make_cobs_framer();
  // Code byte promises 4 data bytes but only 2 follow before the delimiter.
  EXPECT_FALSE(framer->deframe(Bytes{5, 1, 2, 0}).has_value());
}

}  // namespace
}  // namespace sublayer::datalink
