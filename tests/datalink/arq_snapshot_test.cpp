// ARQ snapshot round-trips: all three engines, snapshotted mid-stream with
// retransmit windows open and frames in flight, must resume bit-identically
// to the straight-through run (same delivered stream, same re-saved image).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "datalink/arq/arq.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::datalink {
namespace {

constexpr int kPayloads = 60;

sim::LinkConfig lossy_link() {
  sim::LinkConfig cfg;
  cfg.propagation_delay = Duration::millis(1);
  cfg.jitter = Duration::micros(500);  // reordering for selective repeat
  cfg.loss_rate = 0.15;
  cfg.duplicate_rate = 0.05;
  return cfg;
}

ArqConfig arq_config() {
  ArqConfig cfg;
  cfg.window = 4;
  cfg.rto = Duration::millis(20);
  return cfg;
}

Bytes payload(int i) {
  return Bytes(static_cast<std::size_t>(32 + i % 7),
               static_cast<std::uint8_t>(i));
}

// A <-> B over a lossy duplex link; B records delivered payloads.
struct ArqWorld {
  explicit ArqWorld(const std::string& engine)
      : rng(0xA12Cu), links(sim, lossy_link(), rng, "arq") {
    a = arq_factory(engine)(sim, arq_config());
    b = arq_factory(engine)(sim, arq_config());
    a->set_frame_sink([this](Bytes f) { links.a_to_b().send(std::move(f)); });
    b->set_frame_sink([this](Bytes f) { links.b_to_a().send(std::move(f)); });
    links.a_to_b().set_receiver([this](Bytes f) { b->on_frame(std::move(f)); });
    links.b_to_a().set_receiver([this](Bytes f) { a->on_frame(std::move(f)); });
    b->set_deliver([this](Bytes p) { delivered.push_back(std::move(p)); });
  }

  Bytes save() const {
    sim::SnapshotWriter w;
    sim.save(w);
    w.begin_section("datalink.arq.pair");
    a->save(w);
    b->save(w);
    links.save(w);
    w.end_section();
    return w.finish();
  }

  void restore_from(const Bytes& image) {
    sim::SnapshotReader r(image);
    sim.restore(r);
    r.begin_section("datalink.arq.pair");
    a->restore(r);
    b->restore(r);
    links.restore(r);
    r.end_section();
    sim.finish_restore();
  }

  sim::Simulator sim;
  Rng rng;
  sim::DuplexLink links;
  std::unique_ptr<ArqEndpoint> a;
  std::unique_ptr<ArqEndpoint> b;
  std::vector<Bytes> delivered;
};

class ArqSnapshot : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Engines, ArqSnapshot,
                         ::testing::Values("stop-and-wait", "go-back-n",
                                           "selective-repeat"),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST_P(ArqSnapshot, MidRetransmitWindowResumesBitIdentically) {
  const TimePoint mid =
      TimePoint::from_ns(Duration::millis(30).ns());
  const TimePoint end = TimePoint::from_ns(Duration::seconds(5).ns());

  // Straight through, snapshotting mid-stream.
  ArqWorld wa(GetParam());
  for (int i = 0; i < kPayloads; ++i) ASSERT_TRUE(wa.a->send(payload(i)));
  wa.sim.run_until(mid);
  ASSERT_FALSE(wa.a->idle()) << "snapshot should catch an open window";
  ASSERT_GT(wa.a->stats().retransmissions.value(), 0u)
      << "snapshot should catch mid-retransmit state";
  ASSERT_LT(wa.delivered.size(), static_cast<std::size_t>(kPayloads));
  const Bytes image = wa.save();
  const std::size_t mid_delivered = wa.delivered.size();
  const std::uint64_t mid_retx = wa.a->stats().retransmissions.value();
  wa.sim.run_until(end);
  const Bytes final_a = wa.save();

  // Resume in a freshly constructed, identically configured pair.
  ArqWorld wb(GetParam());
  wb.restore_from(image);
  EXPECT_EQ(wb.sim.now(), mid);
  EXPECT_FALSE(wb.a->idle());
  EXPECT_EQ(wb.a->stats().retransmissions.value(), mid_retx);
  wb.sim.run_until(end);

  // The reliable-delivery contract holds across the splice: B's delivered
  // stream is exactly payloads 0..N in order, and the resumed run's
  // deliveries are exactly the straight-through suffix.
  ASSERT_EQ(wa.delivered.size(), static_cast<std::size_t>(kPayloads));
  for (int i = 0; i < kPayloads; ++i) EXPECT_EQ(wa.delivered[i], payload(i));
  const std::vector<Bytes> suffix(
      wa.delivered.begin() + static_cast<std::ptrdiff_t>(mid_delivered),
      wa.delivered.end());
  EXPECT_EQ(wb.delivered, suffix);

  EXPECT_EQ(wb.save(), final_a);
}

TEST_P(ArqSnapshot, ResyncStateRoundTrips) {
  // Snapshot while a resync handshake is pending (request sent, ack not
  // yet processed): the epoch/nonce machine and its retry timer must
  // resume exactly.
  ArqWorld wa(GetParam());
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(wa.a->send(payload(i)));
  wa.sim.run_until(TimePoint::from_ns(Duration::millis(10).ns()));
  wa.a->resync();  // pending until the peer's ack arrives (1ms away)
  const Bytes image = wa.save();
  const std::size_t mid_delivered = wa.delivered.size();
  const TimePoint end =
      TimePoint::from_ns(Duration::seconds(5).ns());
  wa.sim.run_until(end);
  const Bytes final_a = wa.save();

  ArqWorld wb(GetParam());
  wb.restore_from(image);
  EXPECT_GE(wb.a->stats().resyncs.value(), 1u);
  wb.sim.run_until(end);

  // Across a resync the service is at-least-once: duplicates are legal.
  ASSERT_GE(wa.delivered.size(), 8u);
  const std::vector<Bytes> suffix(
      wa.delivered.begin() + static_cast<std::ptrdiff_t>(mid_delivered),
      wa.delivered.end());
  EXPECT_EQ(wb.delivered, suffix);
  EXPECT_EQ(wb.save(), final_a);
}

}  // namespace
}  // namespace sublayer::datalink
