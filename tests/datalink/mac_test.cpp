#include "datalink/mac/mac.hpp"

#include <gtest/gtest.h>

namespace sublayer::datalink {
namespace {

struct MacHarness {
  explicit MacHarness(int n_stations, MacConfig config, std::uint64_t seed = 1)
      : medium(sim, 1e6) {
    Rng rng(seed);
    received.resize(static_cast<std::size_t>(n_stations));
    for (int i = 0; i < n_stations; ++i) {
      stations.push_back(std::make_unique<MacStation>(
          sim, medium, rng.fork(), config, "st" + std::to_string(i)));
      auto& sink = received[static_cast<std::size_t>(i)];
      stations.back()->set_deliver([&sink](Bytes f) { sink.push_back(f); });
    }
  }

  sim::Simulator sim;
  sim::BroadcastMedium medium;
  std::vector<std::unique_ptr<MacStation>> stations;
  std::vector<std::vector<Bytes>> received;
};

class MacEngines : public ::testing::TestWithParam<MacEngine> {};

TEST_P(MacEngines, SingleStationAlwaysSucceeds) {
  MacConfig cfg;
  cfg.engine = GetParam();
  MacHarness h(2, cfg);
  for (int i = 0; i < 20; ++i) {
    h.stations[0]->send(Bytes{static_cast<std::uint8_t>(i)});
  }
  h.sim.run();
  EXPECT_EQ(h.received[1].size(), 20u);
  EXPECT_EQ(h.stations[0]->stats().collisions, 0u);
  EXPECT_TRUE(h.stations[0]->idle());
}

TEST_P(MacEngines, ContendingStationsAllEventuallyDeliver) {
  MacConfig cfg;
  cfg.engine = GetParam();
  const int kStations = 5;
  const int kFramesEach = 20;
  MacHarness h(kStations, cfg, 77);
  for (int s = 0; s < kStations; ++s) {
    for (int i = 0; i < kFramesEach; ++i) {
      h.stations[static_cast<std::size_t>(s)]->send(
          Bytes{static_cast<std::uint8_t>(s), static_cast<std::uint8_t>(i)});
    }
  }
  h.sim.run(4000000);
  for (int s = 0; s < kStations; ++s) {
    // Everyone hears every other station's frames (no drops configured).
    std::uint64_t dropped_total = 0;
    for (int o = 0; o < kStations; ++o) {
      dropped_total += h.stations[static_cast<std::size_t>(o)]->stats().dropped;
    }
    const std::size_t expect_frames =
        static_cast<std::size_t>((kStations - 1) * kFramesEach);
    EXPECT_GE(h.received[static_cast<std::size_t>(s)].size() + dropped_total,
              expect_frames);
  }
}

TEST_P(MacEngines, FramesFromOneStationArriveInOrder) {
  MacConfig cfg;
  cfg.engine = GetParam();
  MacHarness h(3, cfg, 5);
  for (int i = 0; i < 30; ++i) {
    h.stations[0]->send(Bytes{static_cast<std::uint8_t>(i)});
  }
  h.sim.run(1000000);
  const auto& got = h.received[1];
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LT(got[i - 1][0], got[i][0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, MacEngines,
                         ::testing::Values(MacEngine::kSlottedAloha,
                                           MacEngine::kCsma),
                         [](const auto& info) {
                           return info.param == MacEngine::kSlottedAloha
                                      ? "aloha"
                                      : "csma";
                         });

TEST(Mac, CsmaDefersWhileCarrierBusy) {
  MacConfig cfg;
  cfg.engine = MacEngine::kCsma;
  MacHarness h(3, cfg, 9);
  // Station 0 sends a long frame; station 1 tries mid-transmission.
  h.stations[0]->send(Bytes(2000, 0xaa));  // 16 ms at 1 Mbps
  h.sim.run_until(TimePoint::from_ns(Duration::millis(1).ns()));
  h.stations[1]->send(Bytes{1});
  h.sim.run();
  EXPECT_GT(h.stations[1]->stats().deferrals, 0u);
  // Deferral avoided the collision entirely.
  EXPECT_EQ(h.stations[1]->stats().collisions, 0u);
  EXPECT_EQ(h.received[2].size(), 2u);
}

TEST(Mac, CollisionsTriggerBackoffAndEventualSuccess) {
  MacConfig cfg;
  cfg.engine = MacEngine::kSlottedAloha;
  MacHarness h(4, cfg, 13);
  // All stations transmit in the same slot: guaranteed initial collisions.
  for (auto& st : h.stations) st->send(Bytes{0x55});
  h.sim.run(1000000);
  std::uint64_t collisions = 0;
  std::uint64_t delivered = 0;
  for (auto& st : h.stations) {
    collisions += st->stats().collisions;
    delivered += st->stats().delivered_tx;
  }
  EXPECT_GT(collisions, 0u);
  EXPECT_EQ(delivered, 4u);
}

TEST(Mac, GivesUpAfterMaxAttempts) {
  MacConfig cfg;
  cfg.engine = MacEngine::kSlottedAloha;
  cfg.max_attempts = 2;
  cfg.max_backoff_exponent = 0;  // backoff always 0 slots: keep colliding
  MacHarness h(2, cfg, 21);
  h.stations[0]->send(Bytes{1});
  h.stations[1]->send(Bytes{2});
  h.sim.run(100000);
  const std::uint64_t dropped =
      h.stations[0]->stats().dropped + h.stations[1]->stats().dropped;
  EXPECT_GT(dropped, 0u);
}

}  // namespace
}  // namespace sublayer::datalink
