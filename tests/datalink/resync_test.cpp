// ARQ resynchronization: the RESYNC/RESYNC-ACK re-baseline that heals
// sequence-state divergence (endpoint restart with state loss, or any
// chaos the RTO alone cannot recover from), for all three engines.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "datalink/arq/arq.hpp"
#include "datalink/arq/frame.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace sublayer::datalink {
namespace {

struct ResyncHarness {
  ResyncHarness(const std::string& engine, const sim::LinkConfig& link_config,
                ArqConfig arq_config = {}, std::uint64_t seed = 7)
      : engine(engine),
        factory(arq_factory(engine)),
        arq_config(arq_config),
        rng(seed),
        link(sim, link_config, rng, "resync") {
    a = factory(sim, arq_config);
    b = factory(sim, arq_config);
    // The receiver lambdas go through the unique_ptrs at call time, so
    // either endpoint can be replaced mid-run (state-loss simulation).
    a->set_frame_sink([this](Bytes f) { link.a_to_b().send(std::move(f)); });
    b->set_frame_sink([this](Bytes f) { link.b_to_a().send(std::move(f)); });
    link.a_to_b().set_receiver([this](Bytes f) { b->on_frame(std::move(f)); });
    link.b_to_a().set_receiver([this](Bytes f) { a->on_frame(std::move(f)); });
    a->set_deliver([this](Bytes p) { at_a.push_back(std::move(p)); });
    b->set_deliver([this](Bytes p) { at_b.push_back(std::move(p)); });
  }

  /// Replaces endpoint B with a fresh instance: total ARQ state loss.
  void reboot_b() {
    b = factory(sim, arq_config);
    b->set_frame_sink([this](Bytes f) { link.b_to_a().send(std::move(f)); });
    b->set_deliver([this](Bytes p) { at_b.push_back(std::move(p)); });
  }

  std::string engine;
  ArqFactory factory;
  ArqConfig arq_config;
  sim::Simulator sim;
  Rng rng;
  sim::DuplexLink link;
  std::unique_ptr<ArqEndpoint> a;
  std::unique_ptr<ArqEndpoint> b;
  std::vector<Bytes> at_a;
  std::vector<Bytes> at_b;
};

void run_for(sim::Simulator& sim, Duration d) {
  sim.run_until(TimePoint::from_ns(sim.now().ns() + d.ns()));
}

Bytes numbered(int i) {
  Bytes p;
  ByteWriter(p).u32(static_cast<std::uint32_t>(i));
  return p;
}

class ResyncContract : public ::testing::TestWithParam<std::string> {
 protected:
  static sim::LinkConfig clean_link() {
    sim::LinkConfig link;
    link.propagation_delay = Duration::millis(1);
    return link;
  }
  static ArqConfig fast_arq() {
    ArqConfig arq;
    arq.rto = Duration::millis(20);
    return arq;
  }
};

TEST_P(ResyncContract, MidStreamResyncContinuesExactlyOnceWhenQuiescent) {
  ResyncHarness h(GetParam(), clean_link(), fast_arq());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(h.a->send(numbered(i)));
  h.sim.run(1'000'000);
  ASSERT_TRUE(h.a->idle());
  ASSERT_EQ(h.at_b.size(), 5u);

  h.a->resync();
  h.sim.run(1'000'000);
  for (int i = 5; i < 10; ++i) ASSERT_TRUE(h.a->send(numbered(i)));
  h.sim.run(1'000'000);

  // Nothing was in flight at resync time, so the service stays
  // exactly-once: ten payloads, in order, no duplicates.
  ASSERT_EQ(h.at_b.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(h.at_b[i], numbered(i));
  EXPECT_EQ(h.a->stats().resyncs, 1u);
}

TEST_P(ResyncContract, HealsPeerStateLossThatRtoAloneCannot) {
  ResyncHarness h(GetParam(), clean_link(), fast_arq());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(h.a->send(numbered(i)));
  h.sim.run(1'000'000);
  ASSERT_EQ(h.at_b.size(), 6u);

  // B reboots with total state loss: it now expects sequence 0 while A's
  // send sequence is at 6 — a divergence no retransmission timer heals.
  h.reboot_b();
  h.at_b.clear();
  // The rebooted side re-baselines the connection.
  h.b->resync();
  h.sim.run(1'000'000);

  for (int i = 6; i < 12; ++i) ASSERT_TRUE(h.a->send(numbered(i)));
  h.sim.run(1'000'000);
  ASSERT_EQ(h.at_b.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(h.at_b[i], numbered(i + 6));
  EXPECT_TRUE(h.a->idle());
}

TEST_P(ResyncContract, ResyncDuringLinkOutageRetriesUntilHealed) {
  ResyncHarness h(GetParam(), clean_link(), fast_arq());
  ASSERT_TRUE(h.a->send(numbered(0)));
  h.sim.run(1'000'000);
  ASSERT_EQ(h.at_b.size(), 1u);

  h.link.set_down(true);
  h.a->resync();
  ASSERT_TRUE(h.a->send(numbered(1)));
  run_for(h.sim, Duration::millis(500));  // RESYNC retries into the void
  ASSERT_EQ(h.at_b.size(), 1u);

  h.link.set_down(false);
  h.sim.run(1'000'000);
  ASSERT_EQ(h.at_b.size(), 2u);
  EXPECT_EQ(h.at_b[1], numbered(1));
}

TEST_P(ResyncContract, UnackedPayloadsSurviveResyncAtLeastOnce) {
  sim::LinkConfig lossy = clean_link();
  lossy.loss_rate = 0.2;
  ResyncHarness h(GetParam(), lossy, fast_arq());
  const int n = 20;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(h.a->send(numbered(i)));
  h.sim.run(30'000);  // mid-flight: some payloads still unacknowledged
  h.a->resync();
  h.sim.run(5'000'000);

  ASSERT_TRUE(h.a->idle());
  // At-least-once across the resync: every payload arrives (requeued
  // under the new epoch), but one whose ack was lost may arrive twice.
  EXPECT_GE(h.at_b.size(), static_cast<std::size_t>(n));
  std::vector<bool> seen(n, false);
  for (const auto& p : h.at_b) {
    ASSERT_EQ(p.size(), 4u);
    seen[ByteReader(p).u32()] = true;
  }
  for (int i = 0; i < n; ++i) EXPECT_TRUE(seen[i]) << "payload " << i;
}

TEST_P(ResyncContract, ConcurrentResyncsFromBothEndsConverge) {
  ResyncHarness h(GetParam(), clean_link(), fast_arq());
  ASSERT_TRUE(h.a->send(numbered(0)));
  ASSERT_TRUE(h.b->send(numbered(100)));
  h.sim.run(1'000'000);
  h.a->resync();
  h.b->resync();
  h.sim.run(1'000'000);

  ASSERT_TRUE(h.a->send(numbered(1)));
  ASSERT_TRUE(h.b->send(numbered(101)));
  h.sim.run(1'000'000);
  ASSERT_TRUE(h.a->idle());
  ASSERT_TRUE(h.b->idle());
  EXPECT_EQ(h.at_b.back(), numbered(1));
  EXPECT_EQ(h.at_a.back(), numbered(101));
}

TEST_P(ResyncContract, StaleEpochFramesAreDroppedNotDelivered) {
  ResyncHarness h(GetParam(), clean_link(), fast_arq());
  h.a->resync();
  h.sim.run(1'000'000);  // b adopted epoch 1

  // A straggler from epoch 0 — e.g. released by a healing link — must not
  // enter the new sequence space.
  detail::ArqFrame stale;
  stale.kind = detail::ArqKind::kData;
  stale.epoch = 0;
  stale.seq = 0;
  stale.payload = numbered(9);
  h.b->on_frame(stale.encode());
  h.sim.run(100'000);

  EXPECT_TRUE(h.at_b.empty());
  EXPECT_EQ(h.b->stats().stale_epoch_dropped, 1u);
}

INSTANTIATE_TEST_SUITE_P(Engines, ResyncContract,
                         ::testing::Values("stop-and-wait", "go-back-n",
                                           "selective-repeat"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sublayer::datalink
