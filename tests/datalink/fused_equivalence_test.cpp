// The fused-pipeline contract (DESIGN.md §15): a compile-time fused plane
// is observably IDENTICAL to the dynamic DataPlane — wire bytes, recovered
// payloads, tap sequences (point, direction, image), span-crossing deltas,
// and per-sublayer counters, on clean and corrupted traffic, per-frame and
// batched — across every registered line-code x stuffing x CRC
// combination.  StackConfig::fused must never be distinguishable from the
// outside.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "datalink/stack.hpp"
#include "telemetry/frame_tap.hpp"
#include "telemetry/span.hpp"

namespace sublayer::datalink {
namespace {

struct FusedCase {
  std::string label;
  std::unique_ptr<phy::LineCode> (*code)();
  std::unique_ptr<ErrorDetector> (*detector)();
  bool low_overhead = false;
};

StuffingRule rule_of(const FusedCase& p) {
  return p.low_overhead ? StuffingRule::low_overhead() : StuffingRule::hdlc();
}

std::unique_ptr<DataPlaneIface> plane_of(const FusedCase& p, bool fused) {
  return make_data_plane(p.code(), p.detector(), rule_of(p), fused);
}

std::vector<FusedCase> all_cases() {
  struct Code {
    const char* label;
    std::unique_ptr<phy::LineCode> (*make)();
  };
  struct Det {
    const char* label;
    std::unique_ptr<ErrorDetector> (*make)();
  };
  static constexpr Code kCodes[] = {{"nrz", phy::make_nrz},
                                    {"nrzi", phy::make_nrzi},
                                    {"manchester", phy::make_manchester},
                                    {"4b5b", phy::make_4b5b}};
  static constexpr Det kDets[] = {
      {"crc16", make_crc16}, {"crc32", make_crc32}, {"crc64", make_crc64}};
  std::vector<FusedCase> cases;
  for (const auto& c : kCodes) {
    for (const auto& d : kDets) {
      for (const bool lo : {false, true}) {
        cases.push_back({std::string(c.label) + "_" + d.label +
                             (lo ? "_lo" : "_hdlc"),
                         c.make, d.make, lo});
      }
    }
  }
  return cases;
}

std::vector<Bytes> varied_payloads(std::size_t n, std::uint64_t seed = 17) {
  Rng rng(seed);
  std::vector<Bytes> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes p = rng.next_bytes(1 + rng.next_below(400));
    if (i % 5 == 0) p.assign(p.size(), 0xff);
    out.push_back(std::move(p));
  }
  return out;
}

/// A corruption burst over already-encoded wires: bit flips, truncations,
/// and length-prefix damage, deterministic per seed.  Some victims die in
/// phy decode, some in deframing, some at the checksum — the mix is the
/// point: every failure counter gets traffic.
std::vector<Bytes> corrupt_wires(const std::vector<Bytes>& wires,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> out;
  out.reserve(wires.size());
  for (std::size_t i = 0; i < wires.size(); ++i) {
    Bytes w = wires[i];
    switch (i % 4) {
      case 0:  // single bit flip somewhere in the body
        if (w.size() > 5) {
          const std::size_t pos = 4 + rng.next_below(w.size() - 4);
          w[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      case 1:  // burst of flips
        for (int k = 0; k < 8 && w.size() > 5; ++k) {
          const std::size_t pos = 4 + rng.next_below(w.size() - 4);
          w[pos] ^= static_cast<std::uint8_t>(rng.next_below(256));
        }
        break;
      case 2:  // truncation (may cut into the length-prefixed region)
        w.resize(rng.next_below(w.size()));
        break;
      default:  // length-prefix damage
        w[3] ^= 0x01;
        break;
    }
    out.push_back(std::move(w));
  }
  return out;
}

struct TapEvent {
  telemetry::TapPoint point;
  telemetry::Dir dir;
  Bytes image;
  bool operator==(const TapEvent&) const = default;
};

/// All six span-total cells the plane can touch (3 sublayer seams x 2
/// directions), as (crossings, bytes) pairs read off the global tracer.
std::vector<std::pair<std::uint64_t, std::uint64_t>> span_totals() {
  auto& tracer = telemetry::SpanTracer::instance();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const char* layer :
       {"datalink.errordetect", "datalink.framing", "datalink.phy"}) {
    for (const auto dir : {telemetry::Dir::kDown, telemetry::Dir::kUp}) {
      out.emplace_back(tracer.crossings(layer, dir),
                       tracer.crossing_bytes(layer, dir));
    }
  }
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> span_delta(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& before) {
  auto after = span_totals();
  for (std::size_t i = 0; i < after.size(); ++i) {
    after[i].first -= before[i].first;
    after[i].second -= before[i].second;
  }
  return after;
}

std::vector<std::uint64_t> counter_snapshot(const StackStats& s) {
  return {s.phy_decode_failures.value(), s.deframe_failures.value(),
          s.checksum_failures.value(),   s.frames_up.value(),
          s.frames_encoded.value(),      s.frames_decoded.value(),
          s.frames_framed.value(),       s.frames_deframed.value(),
          s.frames_tagged.value(),       s.frames_checked.value()};
}

/// Drives one plane through a full clean round trip plus a corrupted
/// receive burst — per-frame or batched — recording every observable.
struct Observed {
  std::vector<Bytes> wires;
  std::vector<Bytes> recovered;
  std::vector<TapEvent> taps;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  std::vector<std::uint64_t> counters;
};

Observed drive(DataPlaneIface& plane, const std::vector<Bytes>& payloads,
               bool batched) {
  Observed obs;
  telemetry::TapHub hub;
  hub.enable_all();
  hub.set_sink([&](telemetry::TapPoint p, telemetry::Dir d,
                   TimePoint, ByteView frame) {
    obs.taps.push_back({p, d, Bytes(frame.begin(), frame.end())});
  });
  telemetry::TapHub* prev = telemetry::TapHub::set_current(&hub);
  const auto spans_before = span_totals();

  if (batched) {
    std::vector<Bytes> burst;
    std::size_t i = 0;
    while (i < payloads.size()) {
      const std::size_t n = std::min<std::size_t>(7, payloads.size() - i);
      burst.clear();
      for (std::size_t j = 0; j < n; ++j) burst.push_back(payloads[i + j]);
      plane.down_batch(burst, obs.wires);
      i += n;
    }
  } else {
    for (const Bytes& pay : payloads) {
      obs.wires.push_back(plane.down(Bytes(pay)));
    }
  }

  const auto corrupted = corrupt_wires(obs.wires, 23);
  if (batched) {
    std::vector<Bytes> burst;
    const std::vector<Bytes>* sources[] = {&obs.wires, &corrupted};
    for (const std::vector<Bytes>* source : sources) {
      std::size_t i = 0;
      while (i < source->size()) {
        const std::size_t n = std::min<std::size_t>(7, source->size() - i);
        burst.clear();
        for (std::size_t j = 0; j < n; ++j) {
          burst.push_back((*source)[i + j]);
        }
        plane.up_batch(burst, obs.recovered);
        i += n;
      }
    }
  } else {
    const std::vector<Bytes>* sources[] = {&obs.wires, &corrupted};
    for (const std::vector<Bytes>* source : sources) {
      for (const Bytes& w : *source) {
        auto up = plane.up(w);
        if (up) obs.recovered.push_back(std::move(*up));
      }
    }
  }

  obs.spans = span_delta(spans_before);
  obs.counters = counter_snapshot(plane.stats());
  telemetry::TapHub::set_current(prev);
  return obs;
}

class FusedEquivalence : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedEquivalence, RegisteredCombinationFusesAndFallbackStaysDynamic) {
  const auto& p = GetParam();
  auto dynamic = plane_of(p, false);
  auto fused = plane_of(p, true);
  EXPECT_FALSE(dynamic->fused());
  ASSERT_TRUE(fused->fused()) << p.label << " has no fused instantiation";
  EXPECT_EQ(fused->code_name(), dynamic->code_name());
  EXPECT_EQ(fused->detector_name(), dynamic->detector_name());
}

TEST_P(FusedEquivalence, PerFrameObservablesIdentical) {
  const auto& p = GetParam();
  const auto payloads = varied_payloads(40);
  auto dynamic = plane_of(p, false);
  auto fused = plane_of(p, true);
  const Observed d = drive(*dynamic, payloads, /*batched=*/false);
  const Observed f = drive(*fused, payloads, /*batched=*/false);

  ASSERT_EQ(f.wires.size(), d.wires.size());
  for (std::size_t k = 0; k < d.wires.size(); ++k) {
    ASSERT_EQ(f.wires[k], d.wires[k]) << p.label << " frame " << k;
  }
  ASSERT_EQ(f.recovered, d.recovered) << p.label;
  ASSERT_EQ(f.recovered.size(), payloads.size()) << p.label;
  for (std::size_t k = 0; k < payloads.size(); ++k) {
    ASSERT_EQ(f.recovered[k], payloads[k]) << p.label << " frame " << k;
  }
  ASSERT_EQ(f.taps.size(), d.taps.size()) << p.label;
  for (std::size_t k = 0; k < d.taps.size(); ++k) {
    ASSERT_EQ(f.taps[k], d.taps[k]) << p.label << " tap " << k;
  }
  EXPECT_EQ(f.spans, d.spans) << p.label;
  EXPECT_EQ(f.counters, d.counters) << p.label;
  // The corruption burst must actually have exercised the failure paths.
  const std::uint64_t failures =
      d.counters[0] + d.counters[1] + d.counters[2];
  EXPECT_GT(failures, 0u) << p.label;
}

TEST_P(FusedEquivalence, BatchedObservablesIdentical) {
  const auto& p = GetParam();
  const auto payloads = varied_payloads(40);
  auto dynamic = plane_of(p, false);
  auto fused = plane_of(p, true);
  const Observed d = drive(*dynamic, payloads, /*batched=*/true);
  const Observed f = drive(*fused, payloads, /*batched=*/true);
  ASSERT_EQ(f.wires, d.wires) << p.label;
  ASSERT_EQ(f.recovered, d.recovered) << p.label;
  ASSERT_EQ(f.taps.size(), d.taps.size()) << p.label;
  for (std::size_t k = 0; k < d.taps.size(); ++k) {
    ASSERT_EQ(f.taps[k], d.taps[k]) << p.label << " tap " << k;
  }
  EXPECT_EQ(f.spans, d.spans) << p.label;
  EXPECT_EQ(f.counters, d.counters) << p.label;
}

// The satellite-6 regression: all four receive paths (per-frame and
// batched, dynamic and fused) bump failure counters through the shared
// count_up_failure helper; under an identical corruption burst every
// counter must agree across all four, and failures + survivors must
// account for every frame fed in.
TEST_P(FusedEquivalence, CorruptionBurstCountersAgreeAcrossAllPaths) {
  const auto& p = GetParam();
  const auto payloads = varied_payloads(48, 31);
  auto reference = plane_of(p, false);
  std::vector<Bytes> wires;
  for (const Bytes& pay : payloads) {
    wires.push_back(reference->down(Bytes(pay)));
  }
  const auto corrupted = corrupt_wires(wires, 77);

  std::vector<std::vector<std::uint64_t>> snapshots;
  std::vector<std::uint64_t> survivors;
  for (const bool fused : {false, true}) {
    for (const bool batched : {false, true}) {
      auto plane = plane_of(p, fused);
      std::size_t delivered = 0;
      if (batched) {
        std::vector<Bytes> burst;
        std::vector<Bytes> out;
        const std::vector<Bytes>* sources[] = {&wires, &corrupted};
        for (const std::vector<Bytes>* source : sources) {
          std::size_t i = 0;
          while (i < source->size()) {
            const std::size_t n =
                std::min<std::size_t>(5, source->size() - i);
            burst.clear();
            for (std::size_t j = 0; j < n; ++j) {
              burst.push_back((*source)[i + j]);
            }
            plane->up_batch(burst, out);
            i += n;
          }
        }
        delivered = out.size();
      } else {
        const std::vector<Bytes>* sources[] = {&wires, &corrupted};
        for (const std::vector<Bytes>* source : sources) {
          for (const Bytes& w : *source) {
            if (plane->up(w)) ++delivered;
          }
        }
      }
      const auto snap = counter_snapshot(plane->stats());
      // Conservation: every frame either survived or bumped exactly one
      // failure counter.
      EXPECT_EQ(snap[0] + snap[1] + snap[2] + snap[3],
                wires.size() + corrupted.size())
          << p.label << " fused=" << fused << " batched=" << batched;
      EXPECT_EQ(snap[3], delivered)
          << p.label << " fused=" << fused << " batched=" << batched;
      snapshots.push_back(snap);
      survivors.push_back(delivered);
    }
  }
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i], snapshots[0]) << p.label << " path " << i;
    EXPECT_EQ(survivors[i], survivors[0]) << p.label << " path " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, FusedEquivalence,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<FusedCase>& info) {
                           return info.param.label;
                         });

// Combinations without a registered instantiation (non-CRC detectors)
// quietly fall back to the dynamic plane — fusion is a performance choice,
// never a correctness cliff.
TEST(FusedRegistry, UnregisteredComboFallsBackToDynamic) {
  auto plane = make_data_plane(phy::make_nrz(), make_internet_checksum(),
                               StuffingRule::hdlc(), /*fused=*/true);
  EXPECT_FALSE(plane->fused());
  const Bytes payload{1, 2, 3, 4, 5};
  auto up = plane->up(plane->down(Bytes(payload)));
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(*up, payload);
}

}  // namespace
}  // namespace sublayer::datalink
