#include "datalink/stack.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sublayer::datalink {
namespace {

TEST(PackBits, RoundTripsArbitraryLengths) {
  Rng rng(1);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    const BitString bits = rng.next_bits(len);
    const auto back = unpack_bits(pack_bits(bits));
    ASSERT_TRUE(back.has_value()) << len;
    EXPECT_EQ(*back, bits) << len;
  }
}

TEST(PackBits, RejectsTruncatedAndOversized) {
  EXPECT_FALSE(unpack_bits(Bytes{0, 0}).has_value());
  Bytes packed = pack_bits(BitString::parse("10101010"));
  packed.pop_back();
  EXPECT_FALSE(unpack_bits(packed).has_value());
  packed = pack_bits(BitString::parse("10101010"));
  packed.push_back(0xff);
  EXPECT_FALSE(unpack_bits(packed).has_value());
}

struct StackCase {
  std::string label;
  std::unique_ptr<phy::LineCode> (*code)();
  std::unique_ptr<ErrorDetector> (*detector)();
  std::string arq;
  double loss;
  double corrupt;
};

class DatalinkStackMatrix : public ::testing::TestWithParam<StackCase> {};

TEST_P(DatalinkStackMatrix, ReliableInOrderDeliveryOverImpairedWire) {
  const auto& p = GetParam();
  sim::Simulator sim;
  Rng rng(99);
  sim::LinkConfig link;
  link.loss_rate = p.loss;
  link.corrupt_rate = p.corrupt;
  link.corrupt_bit_flips = 3;
  link.propagation_delay = Duration::millis(1);

  StackConfig cfg;
  cfg.arq_engine = p.arq;
  cfg.arq.rto = Duration::millis(25);
  cfg.arq.window = 8;

  DatalinkPair pair(sim, link, rng, cfg, p.code(), p.detector(), p.code(),
                    p.detector());

  std::vector<Bytes> got;
  pair.b().set_deliver([&](Bytes payload) { got.push_back(std::move(payload)); });

  Rng data_rng(7);
  std::vector<Bytes> sent;
  for (int i = 0; i < 40; ++i) {
    Bytes payload = data_rng.next_bytes(1 + data_rng.next_below(120));
    sent.push_back(payload);
    ASSERT_TRUE(pair.a().send(std::move(payload)));
  }
  sim.run(2000000);
  EXPECT_EQ(got, sent) << p.label;
  // Corruption must be caught below ARQ: every frame that reached the ARQ
  // sublayer was clean, so no checksum failure can be attributed upward.
  if (p.corrupt > 0) {
    const auto& stats = pair.b().stats();
    EXPECT_GT(stats.checksum_failures + stats.deframe_failures +
                  stats.phy_decode_failures,
              0u)
        << p.label;
  }
}

std::vector<StackCase> stack_matrix() {
  return {
      {"nrz_crc16_gbn", phy::make_nrz,
       []() -> std::unique_ptr<ErrorDetector> { return make_crc16(); },
       "go-back-n", 0.05, 0.05},
      {"nrzi_crc32_sr", phy::make_nrzi,
       []() -> std::unique_ptr<ErrorDetector> { return make_crc32(); },
       "selective-repeat", 0.05, 0.05},
      {"manchester_crc32_sr", phy::make_manchester,
       []() -> std::unique_ptr<ErrorDetector> { return make_crc32(); },
       "selective-repeat", 0.0, 0.1},
      {"fourbfiveb_crc64_sr", phy::make_4b5b,
       []() -> std::unique_ptr<ErrorDetector> { return make_crc64(); },
       "selective-repeat", 0.05, 0.0},
      {"nrz_crc8_saw", phy::make_nrz,
       []() -> std::unique_ptr<ErrorDetector> { return make_crc8(); },
       "stop-and-wait", 0.1, 0.0},
      {"clean_baseline", phy::make_nrz,
       []() -> std::unique_ptr<ErrorDetector> { return make_crc32(); },
       "selective-repeat", 0.0, 0.0},
  };
}

INSTANTIATE_TEST_SUITE_P(Matrix, DatalinkStackMatrix,
                         ::testing::ValuesIn(stack_matrix()),
                         [](const auto& info) { return info.param.label; });

TEST(DatalinkStack, CleanWireHasNoFailuresOrRetransmissions) {
  sim::Simulator sim;
  Rng rng(1);
  StackConfig cfg;
  DatalinkPair pair(sim, sim::LinkConfig{}, rng, cfg, phy::make_nrz(),
                    make_crc32(), phy::make_nrz(), make_crc32());
  int got = 0;
  pair.b().set_deliver([&](Bytes) { ++got; });
  for (int i = 0; i < 25; ++i) pair.a().send(Bytes(100, 0x5a));
  sim.run();
  EXPECT_EQ(got, 25);
  EXPECT_EQ(pair.a().arq_stats().retransmissions, 0u);
  EXPECT_EQ(pair.b().stats().checksum_failures, 0u);
  EXPECT_EQ(pair.b().stats().frames_up, 25u);
}

TEST(DatalinkStack, SwappingStuffingRuleIsTransparent) {
  // Challenge 5 ("Replace") at the framing sublayer: the low-overhead rule
  // from the paper drops in without touching ARQ, CRC, or the line code.
  sim::Simulator sim;
  Rng rng(1);
  StackConfig cfg;
  cfg.stuffing = StuffingRule::low_overhead();
  DatalinkPair pair(sim, sim::LinkConfig{}, rng, cfg, phy::make_nrz(),
                    make_crc32(), phy::make_nrz(), make_crc32());
  Bytes got;
  pair.b().set_deliver([&](Bytes payload) { got = std::move(payload); });
  pair.a().send(bytes_from_string("sublayer swap"));
  sim.run();
  EXPECT_EQ(string_from_bytes(got), "sublayer swap");
}

TEST(DatalinkStack, CorruptionNeverDeliversWrongBytes) {
  // Failure injection: heavy corruption may slow the link down, but the
  // composed stack must never hand corrupted bytes upward.
  sim::Simulator sim;
  Rng rng(31);
  sim::LinkConfig link;
  link.corrupt_rate = 0.4;
  link.corrupt_bit_flips = 8;
  link.propagation_delay = Duration::millis(1);
  StackConfig cfg;
  cfg.arq.rto = Duration::millis(30);
  DatalinkPair pair(sim, link, rng, cfg, phy::make_nrz(), make_crc32(),
                    phy::make_nrz(), make_crc32());
  std::vector<Bytes> got;
  pair.b().set_deliver([&](Bytes payload) { got.push_back(std::move(payload)); });
  std::vector<Bytes> sent;
  Rng data_rng(3);
  for (int i = 0; i < 20; ++i) {
    sent.push_back(data_rng.next_bytes(200));
    pair.a().send(sent.back());
  }
  sim.run(4000000);
  EXPECT_EQ(got, sent);
}

}  // namespace
}  // namespace sublayer::datalink
