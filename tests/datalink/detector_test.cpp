#include "datalink/errordetect/detector.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sublayer::datalink {
namespace {

const Bytes kCheckInput = bytes_from_string("123456789");

// Published check values for the standard test string "123456789".
TEST(Crc, Crc8CheckValue) {
  CrcDetector crc(CrcSpec::crc8());
  EXPECT_EQ(crc.value(kCheckInput), 0xf4u);
}

TEST(Crc, Crc16CcittCheckValue) {
  CrcDetector crc(CrcSpec::crc16_ccitt());
  EXPECT_EQ(crc.value(kCheckInput), 0x29b1u);
}

TEST(Crc, Crc32CheckValue) {
  CrcDetector crc(CrcSpec::crc32());
  EXPECT_EQ(crc.value(kCheckInput), 0xcbf43926u);
}

TEST(Crc, Crc64XzCheckValue) {
  CrcDetector crc(CrcSpec::crc64());
  EXPECT_EQ(crc.value(kCheckInput), 0x995dc9bbdf1939faull);
}

TEST(Crc, RejectsBadWidth) {
  CrcSpec spec = CrcSpec::crc32();
  spec.width = 12;
  EXPECT_THROW(CrcDetector{spec}, std::invalid_argument);
}

struct DetectorCase {
  const char* name;
  std::unique_ptr<ErrorDetector> (*make)();
};

class DetectorContract : public ::testing::TestWithParam<DetectorCase> {};

TEST_P(DetectorContract, ProtectCheckStripRoundTrip) {
  const auto det = GetParam().make();
  Rng rng(1);
  for (int t = 0; t < 50; ++t) {
    const Bytes data = rng.next_bytes(rng.next_below(300));
    const Bytes framed = det->protect(data);
    EXPECT_EQ(framed.size(), data.size() + det->tag_bytes());
    const auto back = det->check_strip(framed);
    ASSERT_TRUE(back.has_value()) << det->name();
    EXPECT_EQ(*back, data);
  }
}

TEST_P(DetectorContract, DetectsEverySingleBitFlip) {
  const auto det = GetParam().make();
  Rng rng(2);
  const Bytes data = rng.next_bytes(32);
  const Bytes framed = det->protect(data);
  for (std::size_t bit = 0; bit < framed.size() * 8; ++bit) {
    Bytes corrupted = framed;
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(det->check_strip(corrupted).has_value())
        << det->name() << " missed flip at bit " << bit;
  }
}

TEST_P(DetectorContract, RejectsTruncation) {
  const auto det = GetParam().make();
  const Bytes framed = det->protect(bytes_from_string("hello"));
  const ByteView view(framed);
  EXPECT_FALSE(det->check_strip(view.first(framed.size() - 1)).has_value());
  EXPECT_FALSE(det->check_strip(view.first(det->tag_bytes() - 1)).has_value());
}

TEST_P(DetectorContract, EmptyPayloadSupported) {
  const auto det = GetParam().make();
  const auto back = det->check_strip(det->protect(Bytes{}));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectors, DetectorContract,
    ::testing::Values(DetectorCase{"crc8", make_crc8},
                      DetectorCase{"crc16", make_crc16},
                      DetectorCase{"crc32", make_crc32},
                      DetectorCase{"crc64", make_crc64},
                      DetectorCase{"inet16", make_internet_checksum},
                      DetectorCase{"fletcher16", make_fletcher16},
                      DetectorCase{"adler32", make_adler32}),
    [](const auto& info) { return info.param.name; });

TEST(Crc, BurstErrorsWithinWidthAlwaysDetected) {
  // A CRC of width w detects all burst errors of length <= w.
  CrcDetector crc(CrcSpec::crc16_ccitt());
  Rng rng(3);
  const Bytes data = rng.next_bytes(64);
  const Bytes framed = crc.protect(data);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes corrupted = framed;
    const std::size_t total_bits = corrupted.size() * 8;
    const std::size_t burst_len = 2 + rng.next_below(15);  // <= 16 bits
    const std::size_t start = rng.next_below(total_bits - burst_len);
    // A burst flips the first and last bit and a random interior pattern.
    corrupted[start / 8] ^= static_cast<std::uint8_t>(1u << (start % 8));
    const std::size_t end = start + burst_len - 1;
    corrupted[end / 8] ^= static_cast<std::uint8_t>(1u << (end % 8));
    for (std::size_t b = start + 1; b < end; ++b) {
      if (rng.chance(0.5)) {
        corrupted[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
      }
    }
    EXPECT_FALSE(crc.check_strip(corrupted).has_value()) << trial;
  }
}

TEST(InternetChecksum, KnownWeakness_ReorderedWordsPass) {
  // Documents why CRC replaced simple sums: the Internet checksum is
  // commutative, so swapping 16-bit words is undetectable.
  const auto det = make_internet_checksum();
  const Bytes a{0x12, 0x34, 0x56, 0x78};
  const Bytes b{0x56, 0x78, 0x12, 0x34};
  EXPECT_EQ(det->compute(a), det->compute(b));
}

TEST(Detectors, SwappingDetectorIsTransparentToCaller) {
  // The sublayer-replaceability claim (§2.1): CRC-32 -> CRC-64 without any
  // protocol change, only tag width differs.
  const Bytes data = bytes_from_string("substrate payload");
  for (const auto& make : {make_crc32, make_crc64}) {
    const auto det = make();
    const auto back = det->check_strip(det->protect(data));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
  }
}

}  // namespace
}  // namespace sublayer::datalink
