// The batched data-plane contract (DESIGN.md §13): down_batch/up_batch
// push a burst through the sublayers stage-major, but every observable —
// wire bytes, recovered payloads, per-sublayer counters, tap frames —
// must be identical to N unbatched down()/up() calls.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "datalink/stack.hpp"
#include "sim/simulator.hpp"
#include "telemetry/frame_tap.hpp"
#include "telemetry/pcapng.hpp"

namespace sublayer::datalink {
namespace {

struct PipelineCase {
  std::string label;
  std::unique_ptr<phy::LineCode> (*code)();
  bool low_overhead = false;
};

StuffingRule rule_of(const PipelineCase& p) {
  return p.low_overhead ? StuffingRule::low_overhead() : StuffingRule::hdlc();
}

std::vector<Bytes> varied_payloads(std::size_t n) {
  Rng rng(17);
  std::vector<Bytes> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Lengths sweep tiny to multi-block so stuffing crosses word and
    // 64-word-block boundaries; 0xff runs provoke maximal stuffing.
    Bytes p = rng.next_bytes(1 + rng.next_below(400));
    if (i % 5 == 0) p.assign(p.size(), 0xff);
    out.push_back(std::move(p));
  }
  return out;
}

class BatchPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(BatchPipeline, BatchedWireBytesAndCountersMatchSingle) {
  const auto& p = GetParam();
  const auto payloads = varied_payloads(50);

  DataPlane single(p.code(), make_crc32(), rule_of(p));
  std::vector<Bytes> wires_single;
  for (const Bytes& pay : payloads) {
    wires_single.push_back(single.down(Bytes(pay)));
  }

  DataPlane batched(p.code(), make_crc32(), rule_of(p));
  std::vector<Bytes> wires_batched;
  std::vector<Bytes> burst_in;
  std::size_t i = 0;
  while (i < payloads.size()) {
    const std::size_t n = std::min<std::size_t>(7, payloads.size() - i);
    burst_in.clear();
    for (std::size_t j = 0; j < n; ++j) burst_in.push_back(payloads[i + j]);
    batched.down_batch(burst_in, wires_batched);
    i += n;
  }
  ASSERT_EQ(wires_batched.size(), wires_single.size());
  for (std::size_t k = 0; k < wires_single.size(); ++k) {
    EXPECT_EQ(wires_batched[k], wires_single[k]) << p.label << " frame " << k;
  }

  // Up: the batched receive path recovers the identical payloads.
  std::vector<Bytes> up_out;
  i = 0;
  while (i < wires_batched.size()) {
    const std::size_t n =
        std::min<std::size_t>(7, wires_batched.size() - i);
    burst_in.clear();
    for (std::size_t j = 0; j < n; ++j) burst_in.push_back(wires_batched[i + j]);
    batched.up_batch(burst_in, up_out);
    i += n;
  }
  ASSERT_EQ(up_out.size(), payloads.size());
  for (std::size_t k = 0; k < payloads.size(); ++k) {
    EXPECT_EQ(up_out[k], payloads[k]) << p.label << " frame " << k;
  }

  // Per-sublayer activity counters agree exactly with the unbatched plane.
  std::vector<std::optional<Bytes>> single_up;
  for (const Bytes& w : wires_single) single_up.push_back(single.up(w));
  for (const auto& u : single_up) ASSERT_TRUE(u.has_value());
  const StackStats& s = single.stats();
  const StackStats& b = batched.stats();
  EXPECT_EQ(b.frames_tagged.value(), s.frames_tagged.value()) << p.label;
  EXPECT_EQ(b.frames_framed.value(), s.frames_framed.value()) << p.label;
  EXPECT_EQ(b.frames_encoded.value(), s.frames_encoded.value()) << p.label;
  EXPECT_EQ(b.frames_decoded.value(), s.frames_decoded.value()) << p.label;
  EXPECT_EQ(b.frames_deframed.value(), s.frames_deframed.value()) << p.label;
  EXPECT_EQ(b.frames_checked.value(), s.frames_checked.value()) << p.label;
  EXPECT_EQ(b.frames_up.value(), s.frames_up.value()) << p.label;
}

TEST_P(BatchPipeline, TapsFireOncePerFrameInsideABurst) {
  const auto& p = GetParam();
  const auto payloads = varied_payloads(21);

  telemetry::TapHub hub;
  hub.enable_all();
  telemetry::TapHub* prev = telemetry::TapHub::set_current(&hub);

  DataPlane plane(p.code(), make_crc32(), rule_of(p));
  std::vector<Bytes> wires;
  std::vector<Bytes> burst(payloads);
  plane.down_batch(burst, wires);
  EXPECT_EQ(hub.frames(telemetry::TapPoint::kFcs), payloads.size());
  EXPECT_EQ(hub.frames(telemetry::TapPoint::kFraming), payloads.size());
  EXPECT_EQ(hub.frames(telemetry::TapPoint::kPhyWire), payloads.size());

  hub.reset_counters();
  std::vector<Bytes> up_out;
  plane.up_batch(wires, up_out);
  EXPECT_EQ(up_out.size(), payloads.size());
  EXPECT_EQ(hub.frames(telemetry::TapPoint::kPhyWire), payloads.size());
  EXPECT_EQ(hub.frames(telemetry::TapPoint::kFraming), payloads.size());
  EXPECT_EQ(hub.frames(telemetry::TapPoint::kFcs), payloads.size());

  telemetry::TapHub::set_current(prev);
}

// The same batched-vs-single contract holds on the compile-time fused
// plane (DESIGN.md §15): both of its paths must match the dynamic
// per-frame baseline bit-for-bit.  The cross-path matrix (wires, taps,
// spans, corrupted traffic) lives in fused_equivalence_test.cpp; this leg
// pins the batch contract specifically on the fused implementation.
TEST_P(BatchPipeline, FusedBatchedWireBytesAndCountersMatchSingle) {
  const auto& p = GetParam();
  const auto payloads = varied_payloads(50);

  DataPlane single(p.code(), make_crc32(), rule_of(p));
  std::vector<Bytes> wires_single;
  for (const Bytes& pay : payloads) {
    wires_single.push_back(single.down(Bytes(pay)));
  }

  auto fused = make_data_plane(p.code(), make_crc32(), rule_of(p),
                               /*fused=*/true);
  ASSERT_TRUE(fused->fused());
  std::vector<Bytes> wires_fused;
  std::vector<Bytes> burst_in;
  std::size_t i = 0;
  while (i < payloads.size()) {
    const std::size_t n = std::min<std::size_t>(7, payloads.size() - i);
    burst_in.clear();
    for (std::size_t j = 0; j < n; ++j) burst_in.push_back(payloads[i + j]);
    fused->down_batch(burst_in, wires_fused);
    i += n;
  }
  ASSERT_EQ(wires_fused.size(), wires_single.size());
  for (std::size_t k = 0; k < wires_single.size(); ++k) {
    EXPECT_EQ(wires_fused[k], wires_single[k]) << p.label << " frame " << k;
  }

  std::vector<Bytes> up_out;
  i = 0;
  while (i < wires_fused.size()) {
    const std::size_t n = std::min<std::size_t>(7, wires_fused.size() - i);
    burst_in.clear();
    for (std::size_t j = 0; j < n; ++j) {
      burst_in.push_back(wires_fused[i + j]);
    }
    fused->up_batch(burst_in, up_out);
    i += n;
  }
  ASSERT_EQ(up_out.size(), payloads.size());
  for (std::size_t k = 0; k < payloads.size(); ++k) {
    EXPECT_EQ(up_out[k], payloads[k]) << p.label << " frame " << k;
  }

  std::vector<std::optional<Bytes>> single_up;
  for (const Bytes& w : wires_single) single_up.push_back(single.up(w));
  for (const auto& u : single_up) ASSERT_TRUE(u.has_value());
  const StackStats& s = single.stats();
  const StackStats& f = fused->stats();
  EXPECT_EQ(f.frames_tagged.value(), s.frames_tagged.value()) << p.label;
  EXPECT_EQ(f.frames_framed.value(), s.frames_framed.value()) << p.label;
  EXPECT_EQ(f.frames_encoded.value(), s.frames_encoded.value()) << p.label;
  EXPECT_EQ(f.frames_decoded.value(), s.frames_decoded.value()) << p.label;
  EXPECT_EQ(f.frames_deframed.value(), s.frames_deframed.value()) << p.label;
  EXPECT_EQ(f.frames_checked.value(), s.frames_checked.value()) << p.label;
  EXPECT_EQ(f.frames_up.value(), s.frames_up.value()) << p.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodesAndRules, BatchPipeline,
    ::testing::Values(PipelineCase{"nrz-hdlc", phy::make_nrz, false},
                      PipelineCase{"nrzi-hdlc", phy::make_nrzi, false},
                      PipelineCase{"manchester-hdlc", phy::make_manchester,
                                   false},
                      PipelineCase{"4b5b-hdlc", phy::make_4b5b, false},
                      PipelineCase{"nrz-lo", phy::make_nrz, true},
                      PipelineCase{"nrzi-lo", phy::make_nrzi, true},
                      PipelineCase{"manchester-lo", phy::make_manchester,
                                   true},
                      PipelineCase{"4b5b-lo", phy::make_4b5b, true}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// A pcapng capture attached in the middle of a batched run: per-interface
// timestamps must still be monotonically non-decreasing — bursts defer
// receiver flushes, but every tapped frame carries its own sim-time stamp.
TEST(BatchPipelinePcap, MidBurstAttachKeepsPerInterfaceTimestampsMonotone) {
  sim::Simulator sim;
  sim.set_burst_budget(16);
  Rng rng(5);
  sim::LinkConfig link;
  link.propagation_delay = Duration::millis(1);
  link.bandwidth_bps = 10e6;

  StackConfig cfg;
  cfg.batched_wire = true;
  cfg.arq.rto = Duration::millis(25);
  cfg.arq.window = 8;
  DatalinkPair pair(sim, link, rng, cfg, phy::make_nrz(), make_crc32(),
                    phy::make_nrz(), make_crc32());
  std::size_t delivered = 0;
  pair.b().set_deliver([&](Bytes) { ++delivered; });

  Rng data(9);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pair.a().send(data.next_bytes(64 + data.next_below(200))));
  }
  sim.run(200);  // part of the burst is already in flight, untapped

  telemetry::TapHub hub;
  telemetry::PcapngWriter writer;
  telemetry::attach_pcap_sink(hub, writer);
  telemetry::TapHub* prev = telemetry::TapHub::set_current(&hub);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pair.a().send(data.next_bytes(64 + data.next_below(200))));
  }
  sim.run(2000000);
  telemetry::TapHub::set_current(prev);

  EXPECT_EQ(delivered, 20u);
  EXPECT_GT(writer.packet_count(), 0u);
  const auto image = writer.encode();
  const auto parsed = telemetry::parse_pcapng(image.data(), image.size());
  ASSERT_TRUE(parsed.has_value());
  std::vector<std::int64_t> last(parsed->interfaces.size(), -1);
  for (const auto& pkt : parsed->packets) {
    ASSERT_LT(pkt.iface, last.size());
    EXPECT_GE(pkt.ts_ns, last[pkt.iface]) << "iface " << pkt.iface;
    last[pkt.iface] = pkt.ts_ns;
  }
}

}  // namespace
}  // namespace sublayer::datalink
