// Chaos subsystem snapshot round-trips: a controller snapshotted with
// fault windows open must resume with the faults still active and heal on
// schedule; a restore graph whose link configs drifted from the saved run
// is rejected; the invariant monitor's sweeps and violation log survive a
// restore.
#include <gtest/gtest.h>

#include "chaos/controller.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariant_monitor.hpp"
#include "netlayer/router.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::chaos {
namespace {

TimePoint at_ms(std::int64_t ms) {
  return TimePoint::from_ns(Duration::millis(ms).ns());
}

// Triangle topology with a controller; begin() is only called on the
// straight world — the restore graph stays unstarted and un-armed.
struct ChaosWorld {
  ChaosWorld() : net(sim, {}, 9), controller(sim, net) {
    r0 = net.add_router();
    r1 = net.add_router();
    r2 = net.add_router();
    net.connect(r0, r1, {});
    net.connect(r1, r2, {});
    net.connect(r2, r0, {});
  }

  void begin() { net.start(); }

  Bytes save() const {
    sim::SnapshotWriter w;
    sim.save(w);
    net.save(w);
    controller.save(w);
    return w.finish();
  }

  void restore_from(const Bytes& image) {
    sim::SnapshotReader r(image);
    sim.restore(r);
    net.restore(r);
    controller.restore(r);
    sim.finish_restore();
  }

  sim::Simulator sim;
  netlayer::Network net;
  netlayer::RouterId r0 = 0, r1 = 0, r2 = 0;
  ChaosController controller;
};

FaultPlan mid_window_plan() {
  FaultPlan plan;
  plan.script = "manual";
  FaultEvent corrupt;
  corrupt.at = at_ms(1100);
  corrupt.duration = Duration::millis(400);
  corrupt.kind = FaultKind::kCorruptionBurst;
  corrupt.link = 0;
  corrupt.magnitude = 0.25;
  FaultEvent down;
  down.at = at_ms(1200);
  down.duration = Duration::millis(150);
  down.kind = FaultKind::kLinkDown;
  down.link = 1;
  FaultEvent crash;
  crash.at = at_ms(1150);
  crash.duration = Duration::millis(200);
  crash.kind = FaultKind::kRouterCrash;
  crash.router = 2;
  plan.events = {corrupt, down, crash};
  return plan;
}

TEST(ChaosSnapshot, MidWindowRestoreKeepsFaultsActiveAndHealsOnSchedule) {
  // Straight run: converge, arm, stop inside all three fault windows.
  ChaosWorld wa;
  wa.begin();
  wa.sim.run_until(at_ms(1000));
  wa.controller.arm(mid_window_plan());
  wa.sim.run_until(at_ms(1250));
  ASSERT_EQ(wa.controller.active_faults(), 3);
  ASSERT_EQ(wa.net.link(0).a_to_b().config().corrupt_rate, 0.25);
  ASSERT_TRUE(wa.net.link(1).is_down());
  ASSERT_FALSE(wa.net.router(wa.r2).is_up());
  const Bytes image = wa.save();
  wa.sim.run_until(at_ms(2500));
  ASSERT_TRUE(wa.controller.all_healed());
  const Bytes final_a = wa.save();

  // Resume: faults still active immediately after restore, then the heals
  // fire at their original times.
  ChaosWorld wb;
  wb.restore_from(image);
  EXPECT_EQ(wb.controller.active_faults(), 3);
  EXPECT_EQ(wb.net.link(0).a_to_b().config().corrupt_rate, 0.25);
  EXPECT_TRUE(wb.net.link(1).is_down());
  EXPECT_FALSE(wb.net.router(wb.r2).is_up());
  wb.sim.run_until(at_ms(2500));
  EXPECT_TRUE(wb.controller.all_healed());
  EXPECT_EQ(wb.controller.healed_at(), wa.controller.healed_at());
  EXPECT_EQ(wb.controller.stats().faults_applied,
            wa.controller.stats().faults_applied);
  EXPECT_EQ(wb.controller.stats().faults_healed,
            wa.controller.stats().faults_healed);
  // Heals restored the pre-fault baselines, not the faulted configs.
  EXPECT_EQ(wb.net.link(0).a_to_b().config().corrupt_rate, 0.0);
  EXPECT_FALSE(wb.net.link(1).is_down());
  EXPECT_TRUE(wb.net.router(wb.r2).is_up());

  EXPECT_EQ(wb.save(), final_a);
}

TEST(ChaosSnapshot, RestoreGraphLinkConfigMismatchIsRejected) {
  // Snapshot with NO open windows: every baseline is re-derived from the
  // restored link's live config.  A restore graph whose link drifted from
  // the saved run must be caught, not silently adopted as the new
  // baseline.
  ChaosWorld wa;
  wa.begin();
  wa.sim.run_until(at_ms(1000));
  wa.controller.arm(mid_window_plan());  // windows open at 1100ms
  wa.sim.run_until(at_ms(1050));
  ASSERT_EQ(wa.controller.active_faults(), 0);
  const Bytes image = wa.save();

  ChaosWorld wb;
  sim::SnapshotReader r(image);
  wb.sim.restore(r);
  wb.net.restore(r);
  // Simulate a drifted restore graph: one link's config differs from the
  // run that saved the snapshot.
  sim::LinkConfig drifted = wb.net.link(2).a_to_b().config();
  drifted.propagation_delay = drifted.propagation_delay + Duration::micros(5);
  wb.net.link(2).set_config(drifted);
  EXPECT_THROW(wb.controller.restore(r), sim::SnapshotError);
}

TEST(ChaosSnapshot, RestoreOnArmedControllerThrows) {
  ChaosWorld wa;
  wa.begin();
  wa.sim.run_until(at_ms(1000));
  wa.controller.arm(mid_window_plan());
  const Bytes image = wa.save();

  ChaosWorld wb;
  wb.begin();
  wb.sim.run_until(at_ms(1000));
  wb.controller.arm(mid_window_plan());
  sim::SnapshotReader r(image);
  EXPECT_THROW(wb.sim.restore(r), sim::SnapshotError);  // used simulator
}

// ---- invariant monitor -----------------------------------------------------

struct MonitorWorld {
  MonitorWorld() : net(sim, {}, 5), monitor(sim, net) {
    r0 = net.add_router();
    r1 = net.add_router();
    net.connect(r0, r1, {});
  }

  Bytes save() const {
    sim::SnapshotWriter w;
    sim.save(w);
    net.save(w);
    monitor.save(w);
    return w.finish();
  }

  void restore_from(const Bytes& image) {
    sim::SnapshotReader r(image);
    sim.restore(r);
    net.restore(r);
    monitor.restore(r);  // do NOT start(): the sweep timer is restored
    sim.finish_restore();
  }

  sim::Simulator sim;
  netlayer::Network net;
  netlayer::RouterId r0 = 0, r1 = 0;
  InvariantMonitor monitor;
};

TEST(ChaosSnapshot, MonitorSweepsAndViolationsSurviveRestore) {
  MonitorWorld wa;
  wa.net.start();
  wa.sim.run_until(at_ms(500));
  wa.monitor.start();
  const int transfer = wa.monitor.register_transfer("t");
  wa.monitor.record_sent(transfer, Bytes{1, 2, 3, 4});
  wa.monitor.record_delivered(transfer, Bytes{1, 2});
  // Plant one violation pre-snapshot: it must survive the restore.
  wa.monitor.record_delivered(transfer, Bytes{9});
  ASSERT_EQ(wa.monitor.violations().size(), 1u);
  wa.sim.run_until(at_ms(700));
  ASSERT_GT(wa.monitor.checks_run(), 0u);
  const Bytes image = wa.save();
  const std::uint64_t mid_checks = wa.monitor.checks_run();
  wa.sim.run_until(at_ms(1200));
  const Bytes final_a = wa.save();

  MonitorWorld wb;
  wb.restore_from(image);
  EXPECT_EQ(wb.monitor.checks_run(), mid_checks);
  EXPECT_EQ(wb.monitor.violations(), wa.monitor.violations());
  EXPECT_EQ(wb.monitor.delivered_bytes(transfer), 2u);  // diverging byte uncounted
  wb.sim.run_until(at_ms(1200));

  // The restored sweep timer kept the saved cadence.
  EXPECT_EQ(wb.monitor.checks_run(), wa.monitor.checks_run());
  EXPECT_GT(wb.monitor.checks_run(), mid_checks);
  EXPECT_EQ(wb.save(), final_a);
}

}  // namespace
}  // namespace sublayer::chaos
