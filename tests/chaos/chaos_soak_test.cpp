// The chaos soak: every fault script x 20 seeds against a 4-router ring
// (plus a chord) carrying live sublayered-TCP transfers, judged by the
// InvariantMonitor.
//
// Per run: converge, start transfers, unleash the script, let it heal,
// demand reconvergence within the bound, then open fresh post-heal
// transfers that MUST complete — while the monitor asserts the safety
// invariants (stream-prefix integrity, no resurrection, FIB liveness,
// OSR crossing balance) at every sweep throughout.
#include <gtest/gtest.h>

#include "chaos/controller.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariant_monitor.hpp"
#include "common/rng.hpp"
#include "netlayer/router.hpp"
#include "transport/sublayered/host.hpp"

namespace sublayer::chaos {
namespace {

void run_for(sim::Simulator& sim, Duration d) {
  sim.run_until(TimePoint::from_ns(sim.now().ns() + d.ns()));
}

struct SoakParam {
  std::string script;
  std::uint64_t seed;
};

/// 4 routers: a ring r0-r1-r2-r3-r0 plus the r1-r3 chord, so every single
/// link (and every single router among r1..r3) has an alternative path.
class ChaosSoak : public ::testing::TestWithParam<SoakParam> {
 protected:
  static netlayer::RouterConfig router_config() {
    netlayer::RouterConfig config;
    config.routing = netlayer::RoutingKind::kLinkState;
    // Defaults otherwise: 100 ms hellos, 350 ms dead interval — chaos
    // runs with *real* failure detection, unlike the transport tests.
    config.link_fcs = true;  // corruption bursts become loss, not garbage
    return config;
  }

  static sim::LinkConfig link_config() {
    sim::LinkConfig link;
    link.bandwidth_bps = 20e6;  // finite, so queue squeezes have a queue
    link.propagation_delay = Duration::micros(100);
    return link;
  }

  static transport::HostConfig host_config() {
    transport::HostConfig hc;
    // Keepalives on: connections orphaned by a crash+partition must
    // self-destruct instead of lingering half-open forever.
    hc.connection.cm.keepalive_interval = Duration::seconds(1.0);
    hc.connection.cm.max_keepalive_probes = 5;
    return hc;
  }
};

struct SoakHarness {
  explicit SoakHarness(std::uint64_t seed,
                       const netlayer::RouterConfig& router_config,
                       const sim::LinkConfig& link,
                       const transport::HostConfig& host_config)
      : net(sim, router_config, seed),
        monitor(sim, net, monitor_config()),
        controller(sim, net) {
    for (int i = 0; i < 4; ++i) routers.push_back(net.add_router());
    net.connect(routers[0], routers[1], link);
    net.connect(routers[1], routers[2], link);
    net.connect(routers[2], routers[3], link);
    net.connect(routers[3], routers[0], link);
    net.connect(routers[1], routers[3], link);
    // Transfer endpoints on r0 (never crashed) and r2 (crashable): every
    // r0<->r2 path crosses at least one crashable router.
    client = std::make_unique<transport::TcpHost>(sim, net.router(routers[0]),
                                                  1, host_config);
    server = std::make_unique<transport::TcpHost>(sim, net.router(routers[2]),
                                                  1, host_config);
    net.start();
  }

  static MonitorConfig monitor_config() {
    MonitorConfig mc;
    mc.check_interval = Duration::millis(50);
    // Post-heal liveness bound: one dead interval to notice whatever died
    // right before the heal, a hello round to re-detect, an LSP exchange
    // to reconverge, and slack.
    mc.reconvergence_bound = Duration::seconds(2.0);
    return mc;
  }

  struct Transfer {
    int monitor_id = -1;
    bool ended = false;
    bool reset = false;         // server-side death (counts for the monitor)
    bool client_reset = false;  // client-side death (handshake may never
                                // have reached the server at all)
    std::size_t size = 0;
  };

  /// Starts a client->server transfer of `size` bytes on its own port.
  int start_transfer(const std::string& label, std::size_t size,
                     std::uint64_t payload_seed) {
    const int tid = static_cast<int>(transfers.size());
    const auto port = static_cast<std::uint16_t>(5000 + tid);
    Transfer t;
    t.monitor_id = monitor.register_transfer(label);
    t.size = size;
    transfers.push_back(t);
    server->listen(port, [this, tid](transport::Connection& c) {
      transport::Connection::AppCallbacks cb;
      cb.on_data = [this, tid](Bytes d) {
        monitor.record_delivered(transfers[tid].monitor_id, d);
      };
      cb.on_stream_end = [this, tid] { transfers[tid].ended = true; };
      cb.on_reset = [this, tid](std::string) {
        transfers[tid].reset = true;
        monitor.record_dead(transfers[tid].monitor_id);
      };
      c.set_app_callbacks(cb);
    });
    Rng rng(payload_seed);
    const Bytes payload = rng.next_bytes(size);
    monitor.record_sent(transfers[tid].monitor_id, payload);
    auto& conn = client->connect(server->addr(), port);
    // Client-side death is tracked separately from record_dead: the two
    // ends abort at different times, and data still draining into the
    // server after a *client* keepalive abort is not a resurrection.
    transport::Connection::AppCallbacks ccb;
    ccb.on_reset = [this, tid](std::string) {
      transfers[static_cast<std::size_t>(tid)].client_reset = true;
    };
    conn.set_app_callbacks(ccb);
    conn.send(payload);
    conn.close();
    return tid;
  }

  sim::Simulator sim;
  netlayer::Network net;
  InvariantMonitor monitor;
  ChaosController controller;
  std::vector<netlayer::RouterId> routers;
  std::unique_ptr<transport::TcpHost> client;
  std::unique_ptr<transport::TcpHost> server;
  std::vector<Transfer> transfers;
};

TEST_P(ChaosSoak, InvariantsHoldAndSystemHeals) {
  const auto& [script, seed] = GetParam();
  SoakHarness h(seed, router_config(), link_config(), host_config());

  // Phase 1: converge clean, then arm the monitor.
  run_for(h.sim, Duration::seconds(1.0));
  ASSERT_TRUE(h.net.fully_converged()) << "pre-chaos convergence failed";
  h.monitor.start();

  // Phase 2: chaos, with live transfers riding through it.
  ScriptParams params;
  params.link_count = h.net.link_count();
  params.router_count = h.net.router_count();
  params.start = TimePoint::from_ns(h.sim.now().ns() +
                                    Duration::millis(200).ns());
  const auto plan = make_plan(script, seed, params);
  h.controller.arm(plan);
  h.start_transfer("in-chaos-early", 24000, seed * 7 + 1);
  h.sim.schedule(Duration::seconds(2.0), [&h, seed] {
    h.start_transfer("in-chaos-late", 16000, seed * 7 + 2);
  });

  run_for(h.sim, Duration::nanos(plan.all_healed_by().ns() - h.sim.now().ns() +
                                 Duration::millis(1).ns()));
  ASSERT_TRUE(h.controller.all_healed());
  ASSERT_EQ(h.controller.stats().faults_applied, plan.events.size());

  // Phase 3: liveness — the control plane must reconverge within the
  // bound (the monitor records a violation if it misses it).
  h.monitor.await_reconvergence(h.controller.healed_at());
  run_for(h.sim, SoakHarness::monitor_config().reconvergence_bound +
                     Duration::millis(100));
  ASSERT_TRUE(h.monitor.reconverged())
      << "no reconvergence after " << script << "/" << seed;

  // Phase 4: post-heal service — fresh transfers across the healed
  // network MUST complete, and the in-chaos transfers must by now have
  // either completed or died cleanly (keepalive/RST), never hung.
  const int post1 = h.start_transfer("post-heal-1", 20000, seed * 7 + 3);
  const int post2 = h.start_transfer("post-heal-2", 12000, seed * 7 + 4);
  run_for(h.sim, Duration::seconds(8.0));

  for (const int tid : {post1, post2}) {
    const auto& t = h.transfers[static_cast<std::size_t>(tid)];
    EXPECT_TRUE(t.ended) << "post-heal transfer " << tid << " did not finish";
    EXPECT_FALSE(t.reset);
    EXPECT_EQ(h.monitor.delivered_bytes(t.monitor_id), t.size);
  }
  for (const auto& t : h.transfers) {
    EXPECT_TRUE(t.ended || t.reset || t.client_reset)
        << "a transfer hung past full heal";
  }

  // The verdict: every safety sweep, the whole run long, stayed clean.
  EXPECT_GT(h.monitor.checks_run(), 100u);
  EXPECT_TRUE(h.monitor.violations().empty())
      << "first violation: " << h.monitor.violations().front();
}

std::vector<SoakParam> soak_matrix() {
  std::vector<SoakParam> out;
  for (const auto& script : all_scripts()) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      out.push_back(SoakParam{script, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Scripts, ChaosSoak, ::testing::ValuesIn(soak_matrix()),
                         [](const auto& info) {
                           std::string name = info.param.script;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name + "_seed" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace sublayer::chaos
