// Unit coverage for the chaos subsystem's three parts — fault plans,
// controller, invariant monitor — plus the router crash/restart and FIB
// flush capabilities they drive.
#include <gtest/gtest.h>

#include "chaos/controller.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariant_monitor.hpp"
#include "netlayer/router.hpp"
#include "telemetry/span.hpp"

namespace sublayer::chaos {
namespace {

void run_for(sim::Simulator& sim, Duration d) {
  sim.run_until(TimePoint::from_ns(sim.now().ns() + d.ns()));
}

ScriptParams params_for(std::size_t links, std::size_t routers) {
  ScriptParams p;
  p.link_count = links;
  p.router_count = routers;
  p.start = TimePoint::from_ns(Duration::seconds(1.0).ns());
  return p;
}

// ---- fault plans ------------------------------------------------------------

TEST(FaultPlan, SameSeedSameScriptIsDeterministic) {
  const auto p = params_for(5, 4);
  for (const auto& script : all_scripts()) {
    const auto x = make_plan(script, 42, p);
    const auto y = make_plan(script, 42, p);
    ASSERT_EQ(x.events.size(), y.events.size()) << script;
    for (std::size_t i = 0; i < x.events.size(); ++i) {
      EXPECT_EQ(x.events[i].at.ns(), y.events[i].at.ns()) << script;
      EXPECT_EQ(x.events[i].kind, y.events[i].kind) << script;
      EXPECT_EQ(x.events[i].link, y.events[i].link) << script;
      EXPECT_EQ(x.events[i].router, y.events[i].router) << script;
      EXPECT_EQ(x.events[i].magnitude, y.events[i].magnitude) << script;
    }
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const auto p = params_for(5, 4);
  const auto x = make_plan("link-flap", 1, p);
  const auto y = make_plan("link-flap", 2, p);
  bool any_difference = x.events.size() != y.events.size();
  for (std::size_t i = 0; !any_difference && i < x.events.size(); ++i) {
    any_difference = x.events[i].at.ns() != y.events[i].at.ns() ||
                     x.events[i].link != y.events[i].link;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlan, EveryScriptStaysInsideTheActiveWindow) {
  const auto p = params_for(5, 4);
  for (const auto& script : all_scripts()) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto plan = make_plan(script, seed, p);
      ASSERT_FALSE(plan.events.empty()) << script;
      for (const auto& e : plan.events) {
        EXPECT_GE(e.at.ns(), p.start.ns()) << script;
        EXPECT_LE(e.at.ns() + e.duration.ns(),
                  p.start.ns() + p.active_window.ns())
            << script;
        if (e.kind == FaultKind::kRouterCrash) {
          EXPECT_GE(e.router, 1u) << script;  // router 0 is spared
          EXPECT_LT(e.router, p.router_count) << script;
        } else {
          EXPECT_LT(e.link, p.link_count) << script;
        }
      }
      EXPECT_LE(plan.all_healed_by().ns(),
                p.start.ns() + p.active_window.ns());
    }
  }
}

TEST(FaultPlan, UnknownScriptThrows) {
  EXPECT_THROW(make_plan("meteor-strike", 1, params_for(2, 2)),
               std::invalid_argument);
}

// ---- controller -------------------------------------------------------------

struct TriangleNet {
  explicit TriangleNet(netlayer::RouterConfig config = {}, std::uint64_t seed = 9)
      : net(sim, config, seed) {
    r0 = net.add_router();
    r1 = net.add_router();
    r2 = net.add_router();
    net.connect(r0, r1, {});
    net.connect(r1, r2, {});
    net.connect(r2, r0, {});
    net.start();
    run_for(sim, Duration::seconds(1.0));  // converge
  }

  sim::Simulator sim;
  netlayer::Network net;
  netlayer::RouterId r0 = 0, r1 = 0, r2 = 0;
};

TEST(ChaosController, AppliesAndRestoresLinkImpairments) {
  TriangleNet t;
  const auto baseline = t.net.link(0).a_to_b().config();
  ASSERT_EQ(baseline.corrupt_rate, 0.0);

  FaultPlan plan;
  plan.script = "manual";
  FaultEvent e;
  e.at = TimePoint::from_ns(t.sim.now().ns() + Duration::millis(100).ns());
  e.duration = Duration::millis(200);
  e.kind = FaultKind::kCorruptionBurst;
  e.link = 0;
  e.magnitude = 0.25;
  plan.events.push_back(e);

  ChaosController controller(t.sim, t.net);
  controller.arm(plan);

  run_for(t.sim, Duration::millis(200));  // inside the window
  EXPECT_EQ(t.net.link(0).a_to_b().config().corrupt_rate, 0.25);
  EXPECT_EQ(t.net.link(0).b_to_a().config().corrupt_rate, 0.25);
  EXPECT_EQ(controller.active_faults(), 1);

  run_for(t.sim, Duration::millis(200));  // past the heal
  EXPECT_EQ(t.net.link(0).a_to_b().config().corrupt_rate, 0.0);
  EXPECT_TRUE(controller.all_healed());
  EXPECT_EQ(controller.stats().faults_applied, 1u);
  EXPECT_EQ(controller.stats().faults_healed, 1u);
}

TEST(ChaosController, OverlappingFaultsOnOneLinkHealTogether) {
  TriangleNet t;
  FaultPlan plan;
  const auto base = t.sim.now().ns();
  FaultEvent down;
  down.at = TimePoint::from_ns(base + Duration::millis(100).ns());
  down.duration = Duration::millis(200);
  down.kind = FaultKind::kLinkDown;
  down.link = 0;
  FaultEvent jitter;
  jitter.at = TimePoint::from_ns(base + Duration::millis(200).ns());
  jitter.duration = Duration::millis(300);
  jitter.kind = FaultKind::kJitterStorm;
  jitter.link = 0;
  jitter.magnitude = 0.01;
  plan.events = {down, jitter};

  ChaosController controller(t.sim, t.net);
  controller.arm(plan);

  // After the down window closes, the jitter window still holds the link's
  // fault refcount, so the restore waits for it.
  run_for(t.sim, Duration::millis(350));
  EXPECT_TRUE(t.net.link(0).is_down());
  run_for(t.sim, Duration::millis(300));
  EXPECT_FALSE(t.net.link(0).is_down());
  EXPECT_EQ(t.net.link(0).a_to_b().config().jitter.ns(), 0);
  EXPECT_TRUE(controller.all_healed());
}

// ---- router crash / restart -------------------------------------------------

TEST(RouterCrash, LosesAllControlPlaneStateAndDropsFrames) {
  TriangleNet t;
  auto& victim = t.net.router(t.r1);
  ASSERT_TRUE(victim.is_up());
  ASSERT_FALSE(victim.fib().entries().empty());
  ASSERT_FALSE(victim.routes().empty());

  victim.crash();
  EXPECT_FALSE(victim.is_up());
  EXPECT_TRUE(victim.fib().entries().empty());
  EXPECT_TRUE(victim.routes().empty());
  EXPECT_TRUE(victim.neighbors().neighbors().empty());

  // Frames arriving while down are counted and dropped; the FIB must not
  // repopulate from them.
  run_for(t.sim, Duration::millis(500));
  EXPECT_GT(victim.stats().dropped_while_down, 0u);
  EXPECT_TRUE(victim.fib().entries().empty());
}

TEST(RouterCrash, RestartRejoinsAndReconverges) {
  TriangleNet t;
  auto& victim = t.net.router(t.r1);
  victim.crash();
  run_for(t.sim, Duration::seconds(1.0));
  ASSERT_FALSE(t.net.fully_converged());

  victim.restart();
  // The restarted router floods LSPs from sequence 1 while peers hold its
  // pre-crash LSP at a high sequence; recovery (peers answer stale floods
  // with their newer copy, origin jumps its sequence past it) must bring
  // the network back well within one dead interval — not after the ~20 s
  // of refresh cycles a naive restart would need.
  run_for(t.sim, Duration::millis(500));
  EXPECT_TRUE(t.net.fully_converged());
  EXPECT_FALSE(victim.fib().entries().empty());
}

TEST(RouterCrash, CrashAndRestartAreIdempotent) {
  TriangleNet t;
  auto& victim = t.net.router(t.r2);
  victim.crash();
  victim.crash();
  EXPECT_FALSE(victim.is_up());
  victim.restart();
  victim.restart();
  EXPECT_TRUE(victim.is_up());
  run_for(t.sim, Duration::seconds(1.0));
  EXPECT_TRUE(t.net.fully_converged());
}

TEST(RouterCrash, SendDatagramWhileDownIsDropped) {
  TriangleNet t;
  auto& victim = t.net.router(t.r1);
  victim.crash();
  netlayer::IpHeader h;
  h.src = netlayer::host_addr(t.r1, 1);
  h.dst = netlayer::host_addr(t.r0, 1);
  const auto before = static_cast<std::uint64_t>(victim.stats().dropped_while_down);
  victim.send_datagram(h, Bytes{1, 2, 3});
  EXPECT_EQ(victim.stats().dropped_while_down, before + 1);
}

// ---- FIB flush on neighbor death -------------------------------------------

TEST(FibFlush, NeighborDeathWithdrawsRoutesThroughTheDeadInterface) {
  netlayer::RouterConfig config;  // default 100 ms hello / 350 ms dead
  TriangleNet t(config);
  auto& r0 = t.net.router(t.r0);
  ASSERT_EQ(r0.fib().entries().size(), 2u);

  // Cut both of r1's links: r0 must drop its route *via* r1 once the dead
  // interval expires, and no FIB entry may ever point at the dead
  // interface afterwards.
  t.net.fail_link(0);  // r0-r1
  t.net.fail_link(1);  // r1-r2
  run_for(t.sim, Duration::seconds(1.0));

  EXPECT_GT(r0.stats().routes_flushed, 0u);
  for (const auto& [prefix, route] : r0.fib().entries()) {
    EXPECT_TRUE(r0.neighbors().neighbor_on(route.interface).has_value());
  }
  // r2 stays reachable over the surviving triangle edge.
  EXPECT_TRUE(r0.routes().contains(t.r2));
  EXPECT_FALSE(r0.routes().contains(t.r1));
}

// ---- invariant monitor ------------------------------------------------------

struct MonitorFixture {
  MonitorFixture() : net(sim, {}, 5), monitor(sim, net) {
    r0 = net.add_router();
    r1 = net.add_router();
    net.connect(r0, r1, {});
    net.start();
    run_for(sim, Duration::millis(500));
  }

  void run_one_sweep() {
    monitor.start();
    run_for(sim, Duration::millis(100));
  }

  sim::Simulator sim;
  netlayer::Network net;
  netlayer::RouterId r0 = 0, r1 = 0;
  InvariantMonitor monitor;
};

TEST(InvariantMonitor, CleanNetworkProducesNoViolations) {
  MonitorFixture f;
  f.run_one_sweep();
  EXPECT_GT(f.monitor.checks_run(), 0u);
  EXPECT_TRUE(f.monitor.violations().empty());
}

TEST(InvariantMonitor, CatchesDeliveredBytesDivergingFromSent) {
  MonitorFixture f;
  const int id = f.monitor.register_transfer("t");
  const Bytes sent = {1, 2, 3, 4};
  f.monitor.record_sent(id, sent);
  f.monitor.record_delivered(id, Bytes{1, 2});
  EXPECT_TRUE(f.monitor.violations().empty());
  f.monitor.record_delivered(id, Bytes{9});  // diverges at offset 2
  ASSERT_EQ(f.monitor.violations().size(), 1u);
  EXPECT_NE(f.monitor.violations()[0].find("prefix"), std::string::npos);
}

TEST(InvariantMonitor, CatchesDeliveryBeyondSentStream) {
  MonitorFixture f;
  const int id = f.monitor.register_transfer("t");
  f.monitor.record_sent(id, Bytes{1});
  f.monitor.record_delivered(id, Bytes{1, 2});
  ASSERT_EQ(f.monitor.violations().size(), 1u);
}

TEST(InvariantMonitor, CatchesResurrectionAfterDeath) {
  MonitorFixture f;
  const int id = f.monitor.register_transfer("t");
  f.monitor.record_sent(id, Bytes{1, 2});
  f.monitor.record_delivered(id, Bytes{1});
  f.monitor.record_dead(id);
  f.monitor.record_delivered(id, Bytes{2});
  ASSERT_EQ(f.monitor.violations().size(), 1u);
  EXPECT_NE(f.monitor.violations()[0].find("resurrection"), std::string::npos);
}

TEST(InvariantMonitor, CatchesOsrImbalance) {
  MonitorFixture f;
  f.monitor.start();
  // Forge an impossible tracer state: bytes surfacing above the
  // ordered-stream boundary that nobody submitted below it.
  auto& tracer = telemetry::SpanTracer::instance();
  tracer.crossing(tracer.intern("transport.osr"), telemetry::Dir::kUp, 1000);
  run_for(f.sim, Duration::millis(100));
  ASSERT_FALSE(f.monitor.violations().empty());
  EXPECT_NE(f.monitor.violations()[0].find("osr-balance"), std::string::npos);
}

TEST(InvariantMonitor, CrashRestartCycleSatisfiesTheStateLossInvariant) {
  MonitorFixture f;
  auto& r = f.net.router(f.r0);
  ASSERT_FALSE(r.fib().entries().empty());
  f.monitor.start();
  r.crash();
  run_for(f.sim, Duration::millis(300));  // sweeps see the empty-FIB crash
  r.restart();
  run_for(f.sim, Duration::seconds(1.0));
  EXPECT_TRUE(f.monitor.violations().empty());
}

TEST(InvariantMonitor, MeasuresReconvergenceAfterHeal) {
  MonitorFixture f;
  f.monitor.start();
  f.net.fail_link(0);
  run_for(f.sim, Duration::seconds(1.0));  // neighbors die, routes flushed
  f.net.restore_link(0);
  f.monitor.await_reconvergence(f.sim.now());
  run_for(f.sim, Duration::seconds(2.0));

  ASSERT_TRUE(f.monitor.reconverged());
  ASSERT_TRUE(f.monitor.neighbor_redetect_time().has_value());
  ASSERT_TRUE(f.monitor.reconvergence_time().has_value());
  // Bounded by hello + dead-interval machinery: with 100 ms hellos the
  // neighbor is re-detected within ~2 hello periods of the heal.
  EXPECT_LE(f.monitor.neighbor_redetect_time()->ns(),
            Duration::millis(300).ns());
  EXPECT_LE(f.monitor.reconvergence_time()->ns(),
            f.monitor.neighbor_redetect_time()->ns() +
                Duration::millis(300).ns());
  EXPECT_TRUE(f.monitor.violations().empty());
}

// ---- network chaos accessors ------------------------------------------------

TEST(NetworkChaosAccess, LinkEndsMapLinksToRouterInterfaces) {
  TriangleNet t;
  ASSERT_EQ(t.net.link_count(), 3u);
  const auto& e0 = t.net.link_ends(0);
  EXPECT_EQ(e0.a, t.r0);
  EXPECT_EQ(e0.b, t.r1);
  // The recorded interfaces really are the ones facing each other.
  const auto n = t.net.router(e0.a).neighbors().neighbor_on(e0.iface_a);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->id, e0.b);
}

TEST(NetworkChaosAccess, LinkFcsDropsCorruptedFramesInsteadOfDeliveringThem) {
  sim::Simulator sim;
  netlayer::RouterConfig config;
  config.link_fcs = true;
  config.neighbor.dead_interval = Duration::seconds(3600.0);
  netlayer::Network net(sim, config, 21);
  const auto a = net.add_router();
  const auto b = net.add_router();
  sim::LinkConfig noisy;
  noisy.corrupt_rate = 0.2;
  noisy.corrupt_bit_flips = 3;
  net.connect(a, b, noisy);
  net.start();
  run_for(sim, Duration::seconds(2.0));

  // Corruption became loss at the FCS check: plenty of drops, yet the
  // malformed counter stays untouched because damaged frames never reach
  // the router, and the periodic control plane still converged.
  EXPECT_GT(net.fcs_dropped_frames(), 0u);
  EXPECT_EQ(net.router(a).stats().malformed, 0u);
  EXPECT_EQ(net.router(b).stats().malformed, 0u);
  EXPECT_TRUE(net.fully_converged());
}

}  // namespace
}  // namespace sublayer::chaos
