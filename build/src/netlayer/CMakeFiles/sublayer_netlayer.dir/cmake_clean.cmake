file(REMOVE_RECURSE
  "CMakeFiles/sublayer_netlayer.dir/distance_vector.cpp.o"
  "CMakeFiles/sublayer_netlayer.dir/distance_vector.cpp.o.d"
  "CMakeFiles/sublayer_netlayer.dir/fib.cpp.o"
  "CMakeFiles/sublayer_netlayer.dir/fib.cpp.o.d"
  "CMakeFiles/sublayer_netlayer.dir/ip.cpp.o"
  "CMakeFiles/sublayer_netlayer.dir/ip.cpp.o.d"
  "CMakeFiles/sublayer_netlayer.dir/link_state.cpp.o"
  "CMakeFiles/sublayer_netlayer.dir/link_state.cpp.o.d"
  "CMakeFiles/sublayer_netlayer.dir/neighbor.cpp.o"
  "CMakeFiles/sublayer_netlayer.dir/neighbor.cpp.o.d"
  "CMakeFiles/sublayer_netlayer.dir/router.cpp.o"
  "CMakeFiles/sublayer_netlayer.dir/router.cpp.o.d"
  "libsublayer_netlayer.a"
  "libsublayer_netlayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_netlayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
