
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlayer/distance_vector.cpp" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/distance_vector.cpp.o" "gcc" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/distance_vector.cpp.o.d"
  "/root/repo/src/netlayer/fib.cpp" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/fib.cpp.o" "gcc" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/fib.cpp.o.d"
  "/root/repo/src/netlayer/ip.cpp" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/ip.cpp.o" "gcc" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/ip.cpp.o.d"
  "/root/repo/src/netlayer/link_state.cpp" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/link_state.cpp.o" "gcc" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/link_state.cpp.o.d"
  "/root/repo/src/netlayer/neighbor.cpp" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/neighbor.cpp.o" "gcc" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/neighbor.cpp.o.d"
  "/root/repo/src/netlayer/router.cpp" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/router.cpp.o" "gcc" "src/netlayer/CMakeFiles/sublayer_netlayer.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sublayer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sublayer_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
