file(REMOVE_RECURSE
  "libsublayer_netlayer.a"
)
