# Empty dependencies file for sublayer_netlayer.
# This may be replaced when dependencies are built.
