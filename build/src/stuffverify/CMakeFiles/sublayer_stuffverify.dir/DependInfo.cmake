
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stuffverify/verifier.cpp" "src/stuffverify/CMakeFiles/sublayer_stuffverify.dir/verifier.cpp.o" "gcc" "src/stuffverify/CMakeFiles/sublayer_stuffverify.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datalink/CMakeFiles/sublayer_datalink.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sublayer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/sublayer_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sublayer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
