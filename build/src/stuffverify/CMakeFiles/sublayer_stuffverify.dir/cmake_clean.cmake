file(REMOVE_RECURSE
  "CMakeFiles/sublayer_stuffverify.dir/verifier.cpp.o"
  "CMakeFiles/sublayer_stuffverify.dir/verifier.cpp.o.d"
  "libsublayer_stuffverify.a"
  "libsublayer_stuffverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_stuffverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
