# Empty compiler generated dependencies file for sublayer_stuffverify.
# This may be replaced when dependencies are built.
