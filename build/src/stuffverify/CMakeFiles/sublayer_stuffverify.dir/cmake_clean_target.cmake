file(REMOVE_RECURSE
  "libsublayer_stuffverify.a"
)
