# Empty compiler generated dependencies file for sublayer_verify.
# This may be replaced when dependencies are built.
