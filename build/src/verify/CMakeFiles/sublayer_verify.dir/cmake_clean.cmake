file(REMOVE_RECURSE
  "CMakeFiles/sublayer_verify.dir/checker.cpp.o"
  "CMakeFiles/sublayer_verify.dir/checker.cpp.o.d"
  "CMakeFiles/sublayer_verify.dir/models.cpp.o"
  "CMakeFiles/sublayer_verify.dir/models.cpp.o.d"
  "libsublayer_verify.a"
  "libsublayer_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
