file(REMOVE_RECURSE
  "libsublayer_verify.a"
)
