
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/checker.cpp" "src/verify/CMakeFiles/sublayer_verify.dir/checker.cpp.o" "gcc" "src/verify/CMakeFiles/sublayer_verify.dir/checker.cpp.o.d"
  "/root/repo/src/verify/models.cpp" "src/verify/CMakeFiles/sublayer_verify.dir/models.cpp.o" "gcc" "src/verify/CMakeFiles/sublayer_verify.dir/models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sublayer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
