file(REMOVE_RECURSE
  "CMakeFiles/sublayer_sim.dir/link.cpp.o"
  "CMakeFiles/sublayer_sim.dir/link.cpp.o.d"
  "CMakeFiles/sublayer_sim.dir/medium.cpp.o"
  "CMakeFiles/sublayer_sim.dir/medium.cpp.o.d"
  "CMakeFiles/sublayer_sim.dir/simulator.cpp.o"
  "CMakeFiles/sublayer_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sublayer_sim.dir/trace.cpp.o"
  "CMakeFiles/sublayer_sim.dir/trace.cpp.o.d"
  "libsublayer_sim.a"
  "libsublayer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
