# Empty dependencies file for sublayer_sim.
# This may be replaced when dependencies are built.
