file(REMOVE_RECURSE
  "libsublayer_sim.a"
)
