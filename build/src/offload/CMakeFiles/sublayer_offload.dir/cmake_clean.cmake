file(REMOVE_RECURSE
  "CMakeFiles/sublayer_offload.dir/offload.cpp.o"
  "CMakeFiles/sublayer_offload.dir/offload.cpp.o.d"
  "libsublayer_offload.a"
  "libsublayer_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
