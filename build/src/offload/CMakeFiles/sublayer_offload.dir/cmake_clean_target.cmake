file(REMOVE_RECURSE
  "libsublayer_offload.a"
)
