# Empty compiler generated dependencies file for sublayer_offload.
# This may be replaced when dependencies are built.
