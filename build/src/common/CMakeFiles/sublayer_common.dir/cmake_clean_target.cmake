file(REMOVE_RECURSE
  "libsublayer_common.a"
)
