file(REMOVE_RECURSE
  "CMakeFiles/sublayer_common.dir/bytes.cpp.o"
  "CMakeFiles/sublayer_common.dir/bytes.cpp.o.d"
  "CMakeFiles/sublayer_common.dir/logging.cpp.o"
  "CMakeFiles/sublayer_common.dir/logging.cpp.o.d"
  "CMakeFiles/sublayer_common.dir/rng.cpp.o"
  "CMakeFiles/sublayer_common.dir/rng.cpp.o.d"
  "CMakeFiles/sublayer_common.dir/siphash.cpp.o"
  "CMakeFiles/sublayer_common.dir/siphash.cpp.o.d"
  "CMakeFiles/sublayer_common.dir/time.cpp.o"
  "CMakeFiles/sublayer_common.dir/time.cpp.o.d"
  "libsublayer_common.a"
  "libsublayer_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
