# Empty compiler generated dependencies file for sublayer_common.
# This may be replaced when dependencies are built.
