# Empty dependencies file for sublayer_datalink.
# This may be replaced when dependencies are built.
