file(REMOVE_RECURSE
  "libsublayer_datalink.a"
)
