
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalink/arq/go_back_n.cpp" "src/datalink/CMakeFiles/sublayer_datalink.dir/arq/go_back_n.cpp.o" "gcc" "src/datalink/CMakeFiles/sublayer_datalink.dir/arq/go_back_n.cpp.o.d"
  "/root/repo/src/datalink/arq/selective_repeat.cpp" "src/datalink/CMakeFiles/sublayer_datalink.dir/arq/selective_repeat.cpp.o" "gcc" "src/datalink/CMakeFiles/sublayer_datalink.dir/arq/selective_repeat.cpp.o.d"
  "/root/repo/src/datalink/arq/stop_and_wait.cpp" "src/datalink/CMakeFiles/sublayer_datalink.dir/arq/stop_and_wait.cpp.o" "gcc" "src/datalink/CMakeFiles/sublayer_datalink.dir/arq/stop_and_wait.cpp.o.d"
  "/root/repo/src/datalink/errordetect/detector.cpp" "src/datalink/CMakeFiles/sublayer_datalink.dir/errordetect/detector.cpp.o" "gcc" "src/datalink/CMakeFiles/sublayer_datalink.dir/errordetect/detector.cpp.o.d"
  "/root/repo/src/datalink/framing/byteframing.cpp" "src/datalink/CMakeFiles/sublayer_datalink.dir/framing/byteframing.cpp.o" "gcc" "src/datalink/CMakeFiles/sublayer_datalink.dir/framing/byteframing.cpp.o.d"
  "/root/repo/src/datalink/framing/stuffing.cpp" "src/datalink/CMakeFiles/sublayer_datalink.dir/framing/stuffing.cpp.o" "gcc" "src/datalink/CMakeFiles/sublayer_datalink.dir/framing/stuffing.cpp.o.d"
  "/root/repo/src/datalink/mac/mac.cpp" "src/datalink/CMakeFiles/sublayer_datalink.dir/mac/mac.cpp.o" "gcc" "src/datalink/CMakeFiles/sublayer_datalink.dir/mac/mac.cpp.o.d"
  "/root/repo/src/datalink/stack.cpp" "src/datalink/CMakeFiles/sublayer_datalink.dir/stack.cpp.o" "gcc" "src/datalink/CMakeFiles/sublayer_datalink.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sublayer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sublayer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/sublayer_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
