file(REMOVE_RECURSE
  "CMakeFiles/sublayer_datalink.dir/arq/go_back_n.cpp.o"
  "CMakeFiles/sublayer_datalink.dir/arq/go_back_n.cpp.o.d"
  "CMakeFiles/sublayer_datalink.dir/arq/selective_repeat.cpp.o"
  "CMakeFiles/sublayer_datalink.dir/arq/selective_repeat.cpp.o.d"
  "CMakeFiles/sublayer_datalink.dir/arq/stop_and_wait.cpp.o"
  "CMakeFiles/sublayer_datalink.dir/arq/stop_and_wait.cpp.o.d"
  "CMakeFiles/sublayer_datalink.dir/errordetect/detector.cpp.o"
  "CMakeFiles/sublayer_datalink.dir/errordetect/detector.cpp.o.d"
  "CMakeFiles/sublayer_datalink.dir/framing/byteframing.cpp.o"
  "CMakeFiles/sublayer_datalink.dir/framing/byteframing.cpp.o.d"
  "CMakeFiles/sublayer_datalink.dir/framing/stuffing.cpp.o"
  "CMakeFiles/sublayer_datalink.dir/framing/stuffing.cpp.o.d"
  "CMakeFiles/sublayer_datalink.dir/mac/mac.cpp.o"
  "CMakeFiles/sublayer_datalink.dir/mac/mac.cpp.o.d"
  "CMakeFiles/sublayer_datalink.dir/stack.cpp.o"
  "CMakeFiles/sublayer_datalink.dir/stack.cpp.o.d"
  "libsublayer_datalink.a"
  "libsublayer_datalink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_datalink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
