file(REMOVE_RECURSE
  "libsublayer_phy.a"
)
