file(REMOVE_RECURSE
  "CMakeFiles/sublayer_phy.dir/linecode.cpp.o"
  "CMakeFiles/sublayer_phy.dir/linecode.cpp.o.d"
  "libsublayer_phy.a"
  "libsublayer_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
