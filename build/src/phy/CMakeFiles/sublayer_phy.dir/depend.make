# Empty dependencies file for sublayer_phy.
# This may be replaced when dependencies are built.
