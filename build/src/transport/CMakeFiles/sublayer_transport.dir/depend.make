# Empty dependencies file for sublayer_transport.
# This may be replaced when dependencies are built.
