file(REMOVE_RECURSE
  "CMakeFiles/sublayer_transport.dir/monolithic/mono_tcp.cpp.o"
  "CMakeFiles/sublayer_transport.dir/monolithic/mono_tcp.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/streams/mux.cpp.o"
  "CMakeFiles/sublayer_transport.dir/streams/mux.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/cc.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/cc.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/cm.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/cm.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/connection.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/connection.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/dm.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/dm.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/host.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/host.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/isn.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/isn.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/osr.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/osr.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/rd.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/rd.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/shim.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/shim.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/sublayered/timer_cm.cpp.o"
  "CMakeFiles/sublayer_transport.dir/sublayered/timer_cm.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/wire/sublayered_header.cpp.o"
  "CMakeFiles/sublayer_transport.dir/wire/sublayered_header.cpp.o.d"
  "CMakeFiles/sublayer_transport.dir/wire/tcp_header.cpp.o"
  "CMakeFiles/sublayer_transport.dir/wire/tcp_header.cpp.o.d"
  "libsublayer_transport.a"
  "libsublayer_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
