file(REMOVE_RECURSE
  "libsublayer_transport.a"
)
