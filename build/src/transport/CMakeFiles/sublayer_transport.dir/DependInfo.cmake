
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/monolithic/mono_tcp.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/monolithic/mono_tcp.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/monolithic/mono_tcp.cpp.o.d"
  "/root/repo/src/transport/streams/mux.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/streams/mux.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/streams/mux.cpp.o.d"
  "/root/repo/src/transport/sublayered/cc.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/cc.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/cc.cpp.o.d"
  "/root/repo/src/transport/sublayered/cm.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/cm.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/cm.cpp.o.d"
  "/root/repo/src/transport/sublayered/connection.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/connection.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/connection.cpp.o.d"
  "/root/repo/src/transport/sublayered/dm.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/dm.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/dm.cpp.o.d"
  "/root/repo/src/transport/sublayered/host.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/host.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/host.cpp.o.d"
  "/root/repo/src/transport/sublayered/isn.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/isn.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/isn.cpp.o.d"
  "/root/repo/src/transport/sublayered/osr.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/osr.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/osr.cpp.o.d"
  "/root/repo/src/transport/sublayered/rd.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/rd.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/rd.cpp.o.d"
  "/root/repo/src/transport/sublayered/shim.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/shim.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/shim.cpp.o.d"
  "/root/repo/src/transport/sublayered/timer_cm.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/timer_cm.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/sublayered/timer_cm.cpp.o.d"
  "/root/repo/src/transport/wire/sublayered_header.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/wire/sublayered_header.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/wire/sublayered_header.cpp.o.d"
  "/root/repo/src/transport/wire/tcp_header.cpp" "src/transport/CMakeFiles/sublayer_transport.dir/wire/tcp_header.cpp.o" "gcc" "src/transport/CMakeFiles/sublayer_transport.dir/wire/tcp_header.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sublayer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sublayer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlayer/CMakeFiles/sublayer_netlayer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
