# Empty dependencies file for test_datalink.
# This may be replaced when dependencies are built.
