file(REMOVE_RECURSE
  "CMakeFiles/test_datalink.dir/datalink/arq_test.cpp.o"
  "CMakeFiles/test_datalink.dir/datalink/arq_test.cpp.o.d"
  "CMakeFiles/test_datalink.dir/datalink/byteframing_test.cpp.o"
  "CMakeFiles/test_datalink.dir/datalink/byteframing_test.cpp.o.d"
  "CMakeFiles/test_datalink.dir/datalink/detector_test.cpp.o"
  "CMakeFiles/test_datalink.dir/datalink/detector_test.cpp.o.d"
  "CMakeFiles/test_datalink.dir/datalink/mac_test.cpp.o"
  "CMakeFiles/test_datalink.dir/datalink/mac_test.cpp.o.d"
  "CMakeFiles/test_datalink.dir/datalink/stack_test.cpp.o"
  "CMakeFiles/test_datalink.dir/datalink/stack_test.cpp.o.d"
  "CMakeFiles/test_datalink.dir/datalink/stuffing_test.cpp.o"
  "CMakeFiles/test_datalink.dir/datalink/stuffing_test.cpp.o.d"
  "test_datalink"
  "test_datalink.pdb"
  "test_datalink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datalink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
