file(REMOVE_RECURSE
  "CMakeFiles/test_phy.dir/phy/linecode_test.cpp.o"
  "CMakeFiles/test_phy.dir/phy/linecode_test.cpp.o.d"
  "test_phy"
  "test_phy.pdb"
  "test_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
