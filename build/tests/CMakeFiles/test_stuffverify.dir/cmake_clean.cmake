file(REMOVE_RECURSE
  "CMakeFiles/test_stuffverify.dir/stuffverify/verifier_test.cpp.o"
  "CMakeFiles/test_stuffverify.dir/stuffverify/verifier_test.cpp.o.d"
  "test_stuffverify"
  "test_stuffverify.pdb"
  "test_stuffverify[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stuffverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
