# Empty compiler generated dependencies file for test_stuffverify.
# This may be replaced when dependencies are built.
