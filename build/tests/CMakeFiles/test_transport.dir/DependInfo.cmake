
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transport/cm_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/cm_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/cm_test.cpp.o.d"
  "/root/repo/tests/transport/concurrent_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/concurrent_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/concurrent_test.cpp.o.d"
  "/root/repo/tests/transport/ecn_streams_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/ecn_streams_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/ecn_streams_test.cpp.o.d"
  "/root/repo/tests/transport/interop_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/interop_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/interop_test.cpp.o.d"
  "/root/repo/tests/transport/isn_cc_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/isn_cc_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/isn_cc_test.cpp.o.d"
  "/root/repo/tests/transport/mono_e2e_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/mono_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/mono_e2e_test.cpp.o.d"
  "/root/repo/tests/transport/osr_dm_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/osr_dm_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/osr_dm_test.cpp.o.d"
  "/root/repo/tests/transport/rd_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/rd_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/rd_test.cpp.o.d"
  "/root/repo/tests/transport/robustness_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/robustness_test.cpp.o.d"
  "/root/repo/tests/transport/sublayered_e2e_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/sublayered_e2e_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/sublayered_e2e_test.cpp.o.d"
  "/root/repo/tests/transport/timer_cm_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/timer_cm_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/timer_cm_test.cpp.o.d"
  "/root/repo/tests/transport/wire_test.cpp" "tests/CMakeFiles/test_transport.dir/transport/wire_test.cpp.o" "gcc" "tests/CMakeFiles/test_transport.dir/transport/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sublayer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sublayer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/sublayer_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/datalink/CMakeFiles/sublayer_datalink.dir/DependInfo.cmake"
  "/root/repo/build/src/stuffverify/CMakeFiles/sublayer_stuffverify.dir/DependInfo.cmake"
  "/root/repo/build/src/netlayer/CMakeFiles/sublayer_netlayer.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/sublayer_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/sublayer_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/sublayer_offload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
