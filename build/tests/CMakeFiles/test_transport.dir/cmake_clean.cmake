file(REMOVE_RECURSE
  "CMakeFiles/test_transport.dir/transport/cm_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/cm_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/concurrent_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/concurrent_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/ecn_streams_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/ecn_streams_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/interop_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/interop_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/isn_cc_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/isn_cc_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/mono_e2e_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/mono_e2e_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/osr_dm_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/osr_dm_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/rd_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/rd_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/robustness_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/robustness_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/sublayered_e2e_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/sublayered_e2e_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/timer_cm_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/timer_cm_test.cpp.o.d"
  "CMakeFiles/test_transport.dir/transport/wire_test.cpp.o"
  "CMakeFiles/test_transport.dir/transport/wire_test.cpp.o.d"
  "test_transport"
  "test_transport.pdb"
  "test_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
