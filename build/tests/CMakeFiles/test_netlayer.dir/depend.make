# Empty dependencies file for test_netlayer.
# This may be replaced when dependencies are built.
