file(REMOVE_RECURSE
  "CMakeFiles/test_netlayer.dir/netlayer/fib_test.cpp.o"
  "CMakeFiles/test_netlayer.dir/netlayer/fib_test.cpp.o.d"
  "CMakeFiles/test_netlayer.dir/netlayer/neighbor_test.cpp.o"
  "CMakeFiles/test_netlayer.dir/netlayer/neighbor_test.cpp.o.d"
  "CMakeFiles/test_netlayer.dir/netlayer/routing_test.cpp.o"
  "CMakeFiles/test_netlayer.dir/netlayer/routing_test.cpp.o.d"
  "test_netlayer"
  "test_netlayer.pdb"
  "test_netlayer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netlayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
