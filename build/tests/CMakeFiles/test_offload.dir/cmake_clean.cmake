file(REMOVE_RECURSE
  "CMakeFiles/test_offload.dir/offload/offload_test.cpp.o"
  "CMakeFiles/test_offload.dir/offload/offload_test.cpp.o.d"
  "test_offload"
  "test_offload.pdb"
  "test_offload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
