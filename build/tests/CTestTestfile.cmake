# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_phy[1]_include.cmake")
include("/root/repo/build/tests/test_datalink[1]_include.cmake")
include("/root/repo/build/tests/test_stuffverify[1]_include.cmake")
include("/root/repo/build/tests/test_netlayer[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_verify[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_offload[1]_include.cmake")
