file(REMOVE_RECURSE
  "CMakeFiles/bench_stuffing_verify.dir/bench_stuffing_verify.cpp.o"
  "CMakeFiles/bench_stuffing_verify.dir/bench_stuffing_verify.cpp.o.d"
  "bench_stuffing_verify"
  "bench_stuffing_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stuffing_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
