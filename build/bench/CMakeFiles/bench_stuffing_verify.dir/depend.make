# Empty dependencies file for bench_stuffing_verify.
# This may be replaced when dependencies are built.
