# Empty compiler generated dependencies file for bench_stuffing_search.
# This may be replaced when dependencies are built.
