file(REMOVE_RECURSE
  "CMakeFiles/bench_stuffing_search.dir/bench_stuffing_search.cpp.o"
  "CMakeFiles/bench_stuffing_search.dir/bench_stuffing_search.cpp.o.d"
  "bench_stuffing_search"
  "bench_stuffing_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stuffing_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
