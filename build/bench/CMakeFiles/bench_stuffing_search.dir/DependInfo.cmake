
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_stuffing_search.cpp" "bench/CMakeFiles/bench_stuffing_search.dir/bench_stuffing_search.cpp.o" "gcc" "bench/CMakeFiles/bench_stuffing_search.dir/bench_stuffing_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sublayer_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sublayer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/sublayer_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/datalink/CMakeFiles/sublayer_datalink.dir/DependInfo.cmake"
  "/root/repo/build/src/stuffverify/CMakeFiles/sublayer_stuffverify.dir/DependInfo.cmake"
  "/root/repo/build/src/netlayer/CMakeFiles/sublayer_netlayer.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/sublayer_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/sublayer_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/sublayer_offload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
