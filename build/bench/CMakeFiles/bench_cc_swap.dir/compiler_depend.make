# Empty compiler generated dependencies file for bench_cc_swap.
# This may be replaced when dependencies are built.
