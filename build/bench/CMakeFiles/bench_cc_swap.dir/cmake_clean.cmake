file(REMOVE_RECURSE
  "CMakeFiles/bench_cc_swap.dir/bench_cc_swap.cpp.o"
  "CMakeFiles/bench_cc_swap.dir/bench_cc_swap.cpp.o.d"
  "bench_cc_swap"
  "bench_cc_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cc_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
