file(REMOVE_RECURSE
  "CMakeFiles/bench_stuffing_overhead.dir/bench_stuffing_overhead.cpp.o"
  "CMakeFiles/bench_stuffing_overhead.dir/bench_stuffing_overhead.cpp.o.d"
  "bench_stuffing_overhead"
  "bench_stuffing_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stuffing_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
