# Empty dependencies file for bench_sublayer_crossing.
# This may be replaced when dependencies are built.
