file(REMOVE_RECURSE
  "CMakeFiles/bench_sublayer_crossing.dir/bench_sublayer_crossing.cpp.o"
  "CMakeFiles/bench_sublayer_crossing.dir/bench_sublayer_crossing.cpp.o.d"
  "bench_sublayer_crossing"
  "bench_sublayer_crossing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sublayer_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
