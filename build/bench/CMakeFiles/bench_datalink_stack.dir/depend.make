# Empty dependencies file for bench_datalink_stack.
# This may be replaced when dependencies are built.
