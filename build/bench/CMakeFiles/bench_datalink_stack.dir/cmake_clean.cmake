file(REMOVE_RECURSE
  "CMakeFiles/bench_datalink_stack.dir/bench_datalink_stack.cpp.o"
  "CMakeFiles/bench_datalink_stack.dir/bench_datalink_stack.cpp.o.d"
  "bench_datalink_stack"
  "bench_datalink_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datalink_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
