file(REMOVE_RECURSE
  "CMakeFiles/bench_tcp_goodput.dir/bench_tcp_goodput.cpp.o"
  "CMakeFiles/bench_tcp_goodput.dir/bench_tcp_goodput.cpp.o.d"
  "bench_tcp_goodput"
  "bench_tcp_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcp_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
