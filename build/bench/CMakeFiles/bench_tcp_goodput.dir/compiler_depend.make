# Empty compiler generated dependencies file for bench_tcp_goodput.
# This may be replaced when dependencies are built.
