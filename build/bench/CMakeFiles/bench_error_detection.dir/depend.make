# Empty dependencies file for bench_error_detection.
# This may be replaced when dependencies are built.
