file(REMOVE_RECURSE
  "CMakeFiles/bench_error_detection.dir/bench_error_detection.cpp.o"
  "CMakeFiles/bench_error_detection.dir/bench_error_detection.cpp.o.d"
  "bench_error_detection"
  "bench_error_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
