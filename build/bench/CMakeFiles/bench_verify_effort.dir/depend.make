# Empty dependencies file for bench_verify_effort.
# This may be replaced when dependencies are built.
