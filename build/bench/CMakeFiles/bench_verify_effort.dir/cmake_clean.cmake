file(REMOVE_RECURSE
  "CMakeFiles/bench_verify_effort.dir/bench_verify_effort.cpp.o"
  "CMakeFiles/bench_verify_effort.dir/bench_verify_effort.cpp.o.d"
  "bench_verify_effort"
  "bench_verify_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verify_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
