# Empty dependencies file for bench_routing.
# This may be replaced when dependencies are built.
