file(REMOVE_RECURSE
  "CMakeFiles/datalink_demo.dir/datalink_demo.cpp.o"
  "CMakeFiles/datalink_demo.dir/datalink_demo.cpp.o.d"
  "datalink_demo"
  "datalink_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalink_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
