# Empty compiler generated dependencies file for datalink_demo.
# This may be replaced when dependencies are built.
