file(REMOVE_RECURSE
  "CMakeFiles/streams_demo.dir/streams_demo.cpp.o"
  "CMakeFiles/streams_demo.dir/streams_demo.cpp.o.d"
  "streams_demo"
  "streams_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streams_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
