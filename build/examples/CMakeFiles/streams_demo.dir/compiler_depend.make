# Empty compiler generated dependencies file for streams_demo.
# This may be replaced when dependencies are built.
