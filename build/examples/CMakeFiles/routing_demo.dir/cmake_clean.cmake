file(REMOVE_RECURSE
  "CMakeFiles/routing_demo.dir/routing_demo.cpp.o"
  "CMakeFiles/routing_demo.dir/routing_demo.cpp.o.d"
  "routing_demo"
  "routing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
