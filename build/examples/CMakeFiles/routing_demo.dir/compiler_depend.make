# Empty compiler generated dependencies file for routing_demo.
# This may be replaced when dependencies are built.
