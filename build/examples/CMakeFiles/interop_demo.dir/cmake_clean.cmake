file(REMOVE_RECURSE
  "CMakeFiles/interop_demo.dir/interop_demo.cpp.o"
  "CMakeFiles/interop_demo.dir/interop_demo.cpp.o.d"
  "interop_demo"
  "interop_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interop_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
