# Empty dependencies file for interop_demo.
# This may be replaced when dependencies are built.
