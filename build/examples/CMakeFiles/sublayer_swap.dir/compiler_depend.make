# Empty compiler generated dependencies file for sublayer_swap.
# This may be replaced when dependencies are built.
