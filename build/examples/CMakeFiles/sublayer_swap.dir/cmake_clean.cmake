file(REMOVE_RECURSE
  "CMakeFiles/sublayer_swap.dir/sublayer_swap.cpp.o"
  "CMakeFiles/sublayer_swap.dir/sublayer_swap.cpp.o.d"
  "sublayer_swap"
  "sublayer_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sublayer_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
