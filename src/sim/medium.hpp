// Shared broadcast medium — the substrate for the MAC sublayer.
//
// Models a single-segment shared channel (classic Ethernet / 802.11-like):
// any station's transmission is heard by every other station; transmissions
// that overlap in time collide and destroy each other.  Stations can sense
// carrier and are told when their own transmission ended in a collision
// (CSMA/CD-style feedback).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace sublayer::sim {

struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t collisions = 0;  // transmissions destroyed by overlap
  std::uint64_t deliveries = 0;  // frame copies handed to stations
};

class BroadcastMedium {
 public:
  /// Called on every station other than the sender when a frame survives.
  using FrameHandler = std::function<void(Bytes)>;
  /// Called on the *sender* when its transmission ends; `collided` reports
  /// whether the frame was destroyed.
  using TxDoneHandler = std::function<void(bool collided)>;

  explicit BroadcastMedium(Simulator& sim, double bandwidth_bps = 1e6)
      : sim_(sim), bandwidth_bps_(bandwidth_bps) {}

  /// The simulator this medium schedules on.  A broadcast segment is
  /// shard-confined under the parallel engine: every attached station must
  /// live on this simulator's shard (collision arbitration cannot span a
  /// lookahead boundary).
  Simulator& sim() { return sim_; }

  /// Attaches a station; returns its station id.
  int attach(FrameHandler on_frame, TxDoneHandler on_tx_done);

  /// True while any transmission is in flight (carrier sense).
  bool carrier_busy() const { return !ongoing_.empty(); }

  /// Begins transmitting `frame` from `station`.  The transmission occupies
  /// the channel for frame_size*8/bandwidth; overlap with any other
  /// transmission collides both.
  void transmit(int station, Bytes frame);

  const MediumStats& stats() const { return stats_; }

 private:
  struct Station {
    FrameHandler on_frame;
    TxDoneHandler on_tx_done;
  };
  struct Ongoing {
    std::uint64_t tx_id;
    int station;
    bool collided;
  };

  void finish(std::uint64_t tx_id, Bytes frame);

  Simulator& sim_;
  double bandwidth_bps_;
  std::vector<Station> stations_;
  std::vector<Ongoing> ongoing_;
  std::uint64_t next_tx_id_ = 1;
  MediumStats stats_;
};

}  // namespace sublayer::sim
