#include "sim/link.hpp"

#include <utility>

#include "common/logging.hpp"

namespace sublayer::sim {
namespace {
const Logger kLog("sim.link");
}

Link::Link(Simulator& sim, LinkConfig config, Rng rng, std::string name)
    : sim_(sim),
      config_(config),
      rng_(rng),
      name_(std::move(name)),
      tx_free_at_(sim.now()) {}

Duration Link::serialization_delay(std::size_t bytes) const {
  if (config_.bandwidth_bps <= 0) return Duration::nanos(0);
  const double seconds =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return Duration::seconds(seconds);
}

void Link::send(Bytes frame) {
  ++stats_.frames_offered;
  if (down_) {
    ++stats_.frames_lost;
    return;
  }
  // Remote mode: no local delivery event decrements queued_, so expire
  // recorded delivery times against the sender clock here instead.
  while (!inflight_.empty() && inflight_.top() <= sim_.now().ns()) {
    inflight_.pop();
    --queued_;
  }
  if (queued_ >= config_.queue_limit) {
    ++stats_.frames_queue_dropped;
    return;
  }

  // Serialization: the transmitter is busy until tx_free_at_; this frame
  // occupies it for its own serialization time after that.
  const TimePoint start = std::max(sim_.now(), tx_free_at_);
  const Duration ser = serialization_delay(frame.size());
  tx_free_at_ = start + ser;
  const Duration until_wire_done = tx_free_at_ - sim_.now();

  if (rng_.chance(config_.loss_rate)) {
    ++stats_.frames_lost;
    return;
  }

  Bytes delivered = std::move(frame);
  if (!delivered.empty() && rng_.chance(config_.corrupt_rate)) {
    ++stats_.frames_corrupted;
    for (int i = 0; i < config_.corrupt_bit_flips; ++i) {
      const std::size_t bit = rng_.next_below(delivered.size() * 8);
      delivered[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }

  const bool dup = rng_.chance(config_.duplicate_rate);
  if (dup) ++stats_.frames_duplicated;

  deliver(delivered, until_wire_done);
  if (dup) deliver(delivered, until_wire_done);
}

void Link::deliver(Bytes frame, Duration extra_delay) {
  Duration jitter = Duration::nanos(0);
  if (!config_.jitter.is_zero()) {
    jitter = Duration::nanos(static_cast<std::int64_t>(
        rng_.next_below(static_cast<std::uint64_t>(config_.jitter.ns()) + 1)));
  }
  const Duration total = extra_delay + config_.propagation_delay + jitter;
  ++queued_;
  if (remote_sink_) {
    // Cross-shard: account the delivery now (it is certain to happen at
    // `at`, just on another shard) and hand (time, frame) to the sink.
    const TimePoint at = sim_.now() + total;
    inflight_.push(at.ns());
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.size();
    remote_sink_(at, std::move(frame));
    return;
  }
  if (batch_receiver_) {
    // Batchable delivery: per-frame accounting stays in the event (one
    // gauge/counter update per frame, exactly as unbatched); only the
    // receiver hand-off is deferred, once per burst, to the flush.
    sim_.schedule_batchable(total, [this, f = std::move(frame)]() mutable {
      --queued_;
      ++stats_.frames_delivered;
      stats_.bytes_delivered += f.size();
      if (rx_pending_.empty()) {
        sim_.defer_flush([this] { flush_rx(); });
      }
      rx_pending_.push_back(std::move(f));
    });
    return;
  }
  sim_.schedule(total, [this, f = std::move(frame)]() mutable {
    --queued_;
    ++stats_.frames_delivered;
    stats_.bytes_delivered += f.size();
    if (receiver_) {
      receiver_(std::move(f));
    } else {
      kLog.warn("%s: frame delivered with no receiver attached", name_.c_str());
    }
  });
}

void Link::flush_rx() {
  if (rx_pending_.empty()) return;
  // Swap to a local: the receiver may trigger sends whose deliveries (in a
  // nested drain) start a fresh accumulation with its own flush.
  FrameBatch batch;
  batch.swap(rx_pending_);
  batch_receiver_(batch);
  batch.clear();
}

}  // namespace sublayer::sim
