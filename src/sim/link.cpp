#include "sim/link.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "common/logging.hpp"
#include "sim/snapshot.hpp"

namespace sublayer::sim {
namespace {
const Logger kLog("sim.link");
}

Link::Link(Simulator& sim, LinkConfig config, Rng rng, std::string name)
    : sim_(sim),
      config_(config),
      rng_(rng),
      name_(std::move(name)),
      tx_free_at_(sim.now()) {}

Duration Link::serialization_delay(std::size_t bytes) const {
  if (config_.bandwidth_bps <= 0) return Duration::nanos(0);
  const double seconds =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return Duration::seconds(seconds);
}

void Link::send(Bytes frame) {
  ++stats_.frames_offered;
  if (down_) {
    ++stats_.frames_lost;
    return;
  }
  // Remote mode: no local delivery event decrements queued_, so expire
  // recorded delivery times against the sender clock here instead.
  while (!inflight_.empty() && inflight_.top() <= sim_.now().ns()) {
    inflight_.pop();
    --queued_;
  }
  if (queued_ >= config_.queue_limit) {
    ++stats_.frames_queue_dropped;
    return;
  }

  // Serialization: the transmitter is busy until tx_free_at_; this frame
  // occupies it for its own serialization time after that.
  const TimePoint start = std::max(sim_.now(), tx_free_at_);
  const Duration ser = serialization_delay(frame.size());
  tx_free_at_ = start + ser;
  const Duration until_wire_done = tx_free_at_ - sim_.now();

  if (rng_.chance(config_.loss_rate)) {
    ++stats_.frames_lost;
    return;
  }

  Bytes delivered = std::move(frame);
  if (!delivered.empty() && rng_.chance(config_.corrupt_rate)) {
    ++stats_.frames_corrupted;
    for (int i = 0; i < config_.corrupt_bit_flips; ++i) {
      const std::size_t bit = rng_.next_below(delivered.size() * 8);
      delivered[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }

  const bool dup = rng_.chance(config_.duplicate_rate);
  if (dup) ++stats_.frames_duplicated;

  deliver(delivered, until_wire_done);
  if (dup) deliver(delivered, until_wire_done);
}

std::uint32_t Link::alloc_flight(Bytes frame, std::int64_t at_ns, bool batch) {
  std::uint32_t slot;
  if (flight_free_ != kNilSlot) {
    slot = flight_free_;
    flight_free_ = flights_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(flights_.size());
    flights_.emplace_back();
  }
  FlightSlot& s = flights_[slot];
  s.frame = std::move(frame);
  s.at_ns = at_ns;
  s.ev = EventId{};
  s.next_free = kNilSlot;
  s.batch = batch;
  s.in_use = true;
  return slot;
}

void Link::deliver(Bytes frame, Duration extra_delay) {
  Duration jitter = Duration::nanos(0);
  if (!config_.jitter.is_zero()) {
    jitter = Duration::nanos(static_cast<std::int64_t>(
        rng_.next_below(static_cast<std::uint64_t>(config_.jitter.ns()) + 1)));
  }
  const Duration total = extra_delay + config_.propagation_delay + jitter;
  ++queued_;
  if (remote_sink_) {
    // Cross-shard: account the delivery now (it is certain to happen at
    // `at`, just on another shard) and hand (time, frame) to the sink.
    const TimePoint at = sim_.now() + total;
    inflight_.push(at.ns());
    ++stats_.frames_delivered;
    stats_.bytes_delivered += frame.size();
    remote_sink_(at, std::move(frame));
    return;
  }
  // Local delivery: the frame parks in the slot pool (not inside the event
  // closure) so a snapshot can enumerate and re-arm it; the event only
  // carries the slot index.
  const TimePoint at = sim_.now() + total;
  const bool batch = static_cast<bool>(batch_receiver_);
  const std::uint32_t slot = alloc_flight(std::move(frame), at.ns(), batch);
  flights_[slot].ev =
      batch ? sim_.schedule_batchable(total, [this, slot] { deliver_local(slot); })
            : sim_.schedule(total, [this, slot] { deliver_local(slot); });
}

void Link::deliver_local(std::uint32_t slot) {
  FlightSlot& s = flights_[slot];
  Bytes f = std::move(s.frame);
  const bool batch = s.batch;
  s.in_use = false;
  s.ev = EventId{};
  s.next_free = flight_free_;
  flight_free_ = slot;
  --queued_;
  ++stats_.frames_delivered;
  stats_.bytes_delivered += f.size();
  if (batch) {
    // Batchable delivery: per-frame accounting stays in the event (one
    // gauge/counter update per frame, exactly as unbatched); only the
    // receiver hand-off is deferred, once per burst, to the flush.
    if (rx_pending_.empty()) {
      sim_.defer_flush([this] { flush_rx(); });
    }
    rx_pending_.push_back(std::move(f));
    return;
  }
  if (receiver_) {
    receiver_(std::move(f));
  } else {
    kLog.warn("%s: frame delivered with no receiver attached", name_.c_str());
  }
}

void Link::save(SnapshotWriter& w) const {
  const auto rng_state = rng_.state();
  for (std::uint64_t word : rng_state) w.u64(word);
  save_link_config(w, config_);
  w.u64(stats_.frames_offered);
  w.u64(stats_.frames_delivered);
  w.u64(stats_.frames_lost);
  w.u64(stats_.frames_corrupted);
  w.u64(stats_.frames_duplicated);
  w.u64(stats_.frames_queue_dropped);
  w.u64(stats_.bytes_delivered);
  w.time(tx_free_at_);
  w.u64(queued_);
  w.b(down_);
  // Remote-mode accounting heap, ascending (a heap copy pops sorted).
  auto heap = inflight_;
  w.u64(heap.size());
  while (!heap.empty()) {
    w.i64(heap.top());
    heap.pop();
  }
  // Local deliveries in flight, in (deadline, seq) order.
  struct SavedFlight {
    std::int64_t at_ns;
    std::uint64_t seq;
    const FlightSlot* slot;
  };
  std::vector<SavedFlight> live;
  for (const FlightSlot& s : flights_) {
    if (s.in_use) live.push_back({s.at_ns, sim_.seq_of(s.ev), &s});
  }
  std::sort(live.begin(), live.end(),
            [](const SavedFlight& a, const SavedFlight& b) {
              return a.at_ns != b.at_ns ? a.at_ns < b.at_ns : a.seq < b.seq;
            });
  w.u64(live.size());
  for (const SavedFlight& f : live) {
    w.i64(f.at_ns);
    w.u64(f.seq);
    w.b(f.slot->batch);
    w.blob(f.slot->frame);
  }
}

void Link::restore(SnapshotReader& r) {
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = r.u64();
  rng_.set_state(rng_state);
  config_ = restore_link_config(r);
  stats_.frames_offered = r.u64();
  stats_.frames_delivered = r.u64();
  stats_.frames_lost = r.u64();
  stats_.frames_corrupted = r.u64();
  stats_.frames_duplicated = r.u64();
  stats_.frames_queue_dropped = r.u64();
  stats_.bytes_delivered = r.u64();
  tx_free_at_ = r.time();
  queued_ = r.u64();
  down_ = r.b();
  inflight_ = {};
  const std::uint64_t remote = r.u64();
  for (std::uint64_t i = 0; i < remote; ++i) inflight_.push(r.i64());
  const std::uint64_t local = r.u64();
  for (std::uint64_t i = 0; i < local; ++i) {
    const std::int64_t at_ns = r.i64();
    const std::uint64_t seq = r.u64();
    const bool batch = r.b();
    const std::uint32_t slot = alloc_flight(r.blob(), at_ns, batch);
    flights_[slot].ev = sim_.schedule_restored_at(
        TimePoint::from_ns(at_ns), seq, [this, slot] { deliver_local(slot); },
        batch);
  }
}

void Link::flush_rx() {
  if (rx_pending_.empty()) return;
  // Swap to a local: the receiver may trigger sends whose deliveries (in a
  // nested drain) start a fresh accumulation with its own flush.
  FrameBatch batch;
  batch.swap(rx_pending_);
  batch_receiver_(batch);
  batch.clear();
}

}  // namespace sublayer::sim
