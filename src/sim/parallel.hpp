// ParallelSimulator: conservative parallel simulation over sharded
// topologies with adaptive per-pair lookahead.
//
// The topology is split into S shards, each owning a private Simulator
// (its own timer wheel, its own virtual clock) plus the hosts, routers,
// and links assigned to it.  Shards only interact through *channels* —
// registered cross-shard edges with a declared minimum latency.  The
// per-pair minima form a latency matrix L(src, dst), built at wiring time,
// and execution proceeds in epochs: every shard runs its own wheel up to
// its private epoch target, a barrier is taken, cross-shard deliveries
// posted during the epoch are drained from per-channel SPSC mailboxes into
// the destination shards, and the next targets are computed.
//
// Why this is safe (the CMB null-message-style argument): each shard s has
// a committed time C(s) it has fully run through.  Any message shard u can
// still produce is produced by an event at some t > B(u) — where
// B(u) = max(C(u), nb - 1) and nb is a global lower bound on the next
// event anywhere — and is due no earlier than t + L(u, s) > B(u) + L(u, s).
// So the *horizon* H(s) = min over inbound pairs (u, s) of B(u) + L(u, s)
// is a time shard s can run to without ever receiving a message it has not
// yet seen, and running the shards concurrently to their targets
// T(s) = min(H(s), bound) is indistinguishable from any sequential order.
// A shard with no inbound cross-shard pairs has H(s) = infinity and
// *runs ahead*: its target is the bound (deadline or next barrier task)
// regardless of how far other shards lag.  The global lookahead
// min L(u, s) only matters for the tightest-coupled pair; loosely coupled
// or one-directional topologies advance in far fewer, fatter epochs.
//
// Why it is deterministic at every worker-thread count: a shard's epoch
// run depends only on that shard's own state (its wheel already orders
// events by (time, insertion-seq)) and on the target sequence, which is a
// pure function of the committed vector, the latency matrix, and the task
// plan — never of worker scheduling.  Mailbox drains merge messages in
// (delivery time, source shard, per-source post sequence) order before
// scheduling them — an order independent of which worker ran what when.
// The same seed and shard map therefore produce bit-identical event
// traces with 1, 2, or N worker threads; the replay suite in tests/sim/
// asserts exactly this.
//
// Telemetry: each shard owns a private MetricsRegistry, SpanTracer, and
// cross-shard Trace.  ShardScope installs a shard's registries and clock
// as the calling thread's current ones (see telemetry/metrics.hpp and
// simclock in common/time.hpp); the worker does this around every shard
// run phase, and topology construction does it so modules bind into their
// owning shard.  merged_metrics() / merged_crossings() produce the
// deterministic cross-shard aggregate at any parked instant.  The engine
// also publishes its wiring as gauges (parallel.connected_shard_pairs,
// parallel.min_pair_lookahead, ...) and as Chrome-trace metadata, so a
// run's partitioning and horizon structure are diagnosable from artifacts
// alone.
//
// Barrier tasks (schedule_task) run single-threaded at exact virtual
// times with every shard's clock aligned to the task time: epochs never
// cross a task time (even run-ahead shards park at next_task - 1), so
// chaos fault injection can mutate any shard's links and routers
// race-free.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sublayer::telemetry {
class ChromeTraceWriter;
}  // namespace sublayer::telemetry

namespace sublayer::sim {

/// One undirected edge of the topology graph handed to the partitioner:
/// two entity ids plus the link's propagation latency.  Lower-latency
/// edges couple their endpoints more tightly (cutting them would narrow
/// the conservative horizon), so the partitioner prefers keeping them
/// internal when breaking frontier ties.
struct TopoEdge {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::int64_t latency_ns = 1;
};

/// Maps topology entity ids (router ids, host ids) to shards.  Default is
/// a splitmix64 hash of the id modulo the shard count; topology_aware()
/// computes an edge-cut-minimizing placement instead; assign() overrides
/// the placement of individual ids (e.g. to keep a chatty pair co-located)
/// and always wins over both.
class ShardMap {
 public:
  explicit ShardMap(std::size_t shards);

  /// Greedy BFS region growth + bounded Kernighan–Lin-style refinement
  /// over the edge list, minimizing the number of cut edges under a
  /// balanced ceiling of ceil(node_count / shards) ids per shard.  Fully
  /// deterministic for a fixed graph (ties break toward the lowest id /
  /// lowest shard).  Guaranteed never worse than hash placement: if the
  /// refined cut exceeds the hash cut the hash map is returned instead
  /// (method() == "hash-fallback").
  static ShardMap topology_aware(std::size_t shards, std::uint64_t node_count,
                                 const std::vector<TopoEdge>& edges);

  /// Number of edges whose endpoints land on different shards under `map`
  /// (self-loops never count).  Uses of(), so assign() overrides are
  /// honored.
  static std::size_t edge_cut(const ShardMap& map,
                              const std::vector<TopoEdge>& edges);

  std::size_t shards() const { return shards_; }
  std::size_t of(std::uint64_t id) const;
  /// Pins `id` to `shard`, overriding both the hash and any plan.
  void assign(std::uint64_t id, std::size_t shard);

  /// "hash", "greedy-kl", or "hash-fallback" (topology_aware bailed out).
  const std::string& method() const { return method_; }
  /// One-line summary of the placement decision, e.g.
  /// "greedy-kl(shards=4,nodes=16,edge_cut=4,overrides=0)" — recorded by
  /// the engine in Chrome-trace metadata via set_partition_info().  The
  /// edge_cut is recomputed from the retained edge list at call time, so
  /// it reflects assign() overrides applied after planning.
  std::string describe() const;

 private:
  std::size_t shards_;
  std::vector<std::pair<std::uint64_t, std::size_t>> overrides_;
  /// Planned placement from topology_aware(), indexed by id; ids at or
  /// beyond plan_.size() fall back to the hash.
  std::vector<std::size_t> plan_;
  /// Edge list the plan was computed from, retained so describe() can
  /// report the cut of the placement actually in force (overrides
  /// included) instead of a stale plan-time number.
  std::vector<TopoEdge> edges_;
  std::string method_ = "hash";
};

struct ParallelConfig {
  /// Number of shards (private Simulators).  Fixed per run; the shard map
  /// — not the worker count — is what determines the event trace.
  std::size_t shards = 1;
  /// Worker threads; 0 means min(shards, hardware_concurrency).  Results
  /// are identical at every value.
  std::size_t threads = 0;
  EngineKind engine = EngineKind::kTimerWheel;
  /// Per-shard burst dequeue budget (Simulator::set_burst_budget): how
  /// many consecutive same-tick batchable events one scheduler visit may
  /// drain.  Results are identical at every value; 1 is classic stepping.
  std::size_t burst_budget = 1;
};

class ParallelSimulator {
 public:
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

  explicit ParallelSimulator(ParallelConfig config);
  ~ParallelSimulator();
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t thread_count() const { return threads_; }

  Simulator& shard(std::size_t s) { return *shards_.at(s); }
  telemetry::MetricsRegistry& shard_metrics(std::size_t s) {
    return *metrics_.at(s);
  }
  telemetry::SpanTracer& shard_spans(std::size_t s) { return *spans_.at(s); }
  telemetry::FlightRecorder& shard_flight(std::size_t s) {
    return *flights_.at(s);
  }
  /// Cross-shard deliveries INTO shard `s`, recorded at drain time in
  /// merged order — the replay suite's bit-identical artifact.
  const Trace& shard_trace(std::size_t s) const { return *traces_.at(s); }

  /// RAII: installs shard `s`'s metrics registry, span tracer, and clock
  /// as the calling thread's current ones, restoring the previous set on
  /// destruction.  Wrap topology construction in one so modules bind into
  /// their owning shard; the engine itself wraps every run phase.
  class ShardScope {
   public:
    ShardScope(ParallelSimulator& psim, std::size_t s);
    ~ShardScope();
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    telemetry::MetricsRegistry* prev_metrics_;
    telemetry::SpanTracer* prev_spans_;
    telemetry::FlightRecorder* prev_flight_;
    const TimePoint* clock_;
  };
  ShardScope bind(std::size_t s) { return ShardScope(*this, s); }

  // ---- registration (topology construction, before run_until) ----

  /// Delivery callback on the destination shard.
  using ChannelDeliver = std::function<void(Bytes)>;

  /// Registers a cross-shard edge with a guaranteed minimum latency
  /// (>= 1 ns).  The per-(src, dst) minimum over registered channels is
  /// that pair's conservative lookahead.  Returns the channel id for
  /// post().
  std::uint32_t add_channel(std::size_t src_shard, std::size_t dst_shard,
                            Duration min_latency, std::string label,
                            ChannelDeliver deliver);

  /// Global lookahead: min over all channel latencies (infinite when there
  /// are no channels).  The engine itself throttles per pair — this is the
  /// worst-case pair, kept for diagnostics and tests.
  Duration lookahead() const { return Duration::nanos(lookahead_ns_); }

  /// The conservative lookahead of the (src, dst) pair: the minimum
  /// latency over its registered channels, or 0 when the pair has none
  /// (dst is never throttled by src).
  Duration pair_lookahead(std::size_t src, std::size_t dst) const;

  /// Shard-epochs whose target was set by the bound (deadline / next
  /// task), not by an inbound horizon — i.e. the shard ran ahead of the
  /// barrier throttle.  Deterministic across worker thread counts.
  std::uint64_t runahead_shard_epochs() const { return runahead_epochs_; }

  /// Virtual time shard `s` has fully run through.  Shards park at
  /// *unequal* committed times whenever horizons differ; now() is the
  /// minimum.
  TimePoint shard_committed(std::size_t s) const {
    return TimePoint::from_ns(std::max<std::int64_t>(0, committed_ns_.at(s)));
  }

  /// One-line description of how the topology was partitioned (e.g.
  /// ShardMap::describe()); recorded in Chrome-trace metadata and kept
  /// with the run's artifacts.  Call before the first run_until.
  void set_partition_info(std::string info);

  /// Posts a frame onto `channel` for delivery at `when`.  Called from the
  /// source shard's run phase only (single producer); `when` must lie
  /// beyond the destination shard's epoch target, which the channel's
  /// declared minimum latency guarantees for any send inside the epoch.
  void post(std::uint32_t channel, TimePoint when, Bytes frame);

  /// Schedules `fn` to run single-threaded at exactly `when` — strictly
  /// after *every* shard's committed horizon, not just now() (the min):
  /// run-ahead parks shards at unequal times, and a task inside that
  /// window would mutate state a shard already simulated through, so it
  /// throws instead.  All shard clocks advance to `when` and all workers
  /// park — epochs never span a task time.  `shard_scope`
  /// (optional) wraps the task in that shard's ShardScope, for tasks that
  /// rebuild telemetry-bound state (e.g. a chaos router crash).  Counted
  /// in events_processed() like the equivalent single-simulator event.
  void schedule_task(TimePoint when, std::function<void()> fn,
                     std::size_t shard_scope = kNoShard);

  // ---- execution ----

  /// Checked at every epoch boundary (all workers parked, so it may read
  /// any shard's state); returning true ends the run at that boundary.
  using StopPredicate = std::function<bool()>;

  /// Runs every shard to `deadline` (or to the first epoch boundary where
  /// `stop` returns true).  May be called repeatedly with increasing
  /// deadlines; topology registration must be complete before the first
  /// call.
  void run_until(TimePoint deadline, StopPredicate stop = nullptr);

  /// Globally completed virtual time (every shard has run through it).
  TimePoint now() const;

  /// Events fired across all shards plus barrier tasks run — comparable
  /// with Simulator::events_processed() for an equivalent monolithic run.
  std::uint64_t events_processed() const;
  std::uint64_t tasks_run() const { return tasks_run_; }
  std::uint64_t epochs() const { return epochs_; }
  /// Frames that crossed shard boundaries (sum over source shards).
  std::uint64_t cross_shard_frames() const;

  // ---- deterministic merged views (call only while parked) ----

  /// Shard registries summed name-by-name (histograms merge bucketwise).
  /// Activity recorded outside any shard scope lands in the process-wide
  /// registry and is NOT included; reset and read that one separately.
  telemetry::MetricsSnapshot merged_metrics() const;

  /// Sorted union of layer names over all shard tracers.
  std::vector<std::string> merged_span_layers() const;
  std::uint64_t merged_crossings(std::string_view layer,
                                 telemetry::Dir dir) const;
  std::uint64_t merged_crossing_bytes(std::string_view layer,
                                      telemetry::Dir dir) const;

  /// Every cross-shard delivery, one line per frame, merged over shards in
  /// (time, destination shard, drain order) order — equal strings mean
  /// bit-identical cross-shard traffic.
  std::string cross_shard_trace_log() const;

  /// Every shard's flight-recorder ring merged in (time, shard, seq) order
  /// — like the rest of the merged views, deterministic at every worker
  /// thread count.
  std::vector<telemetry::FlightRecord> merged_flight_records() const;

  // ---- execution profiling (Chrome trace / Perfetto export) ----

  /// Lanes the engine emits into: one per shard (epoch spans, drain
  /// counters, flow spans), one engine lane (barrier tasks, wiring
  /// metadata), one per worker thread (wall-clock barrier waits).
  std::size_t chrome_lane_count() const {
    return shards_.size() + 1 + threads_;
  }

  // ---- checkpoint / restore (see sim/snapshot.hpp for the contract) ----

  /// Saves the full parallel-engine state at a parked instant (between
  /// run_until calls): the per-shard committed horizon vector (shards park
  /// at unequal times under run-ahead) and counters, per-source post
  /// sequences, undrained channel mailboxes, drained-but-undelivered
  /// cross-shard frames (re-armed on restore under their original event
  /// seqs), and then, per shard, the shard simulator, its telemetry
  /// registries (metrics/spans/flight), and its cross-shard trace.
  /// Brackets "sim.parallel" plus the per-shard module sections.
  void save(SnapshotWriter& w) const;

  /// Restores into a freshly constructed engine with the same config and
  /// the same channels registered in the same order.  Barrier-task
  /// closures are not serialized: the restore graph re-submits exactly the
  /// still-pending tasks (schedule_task accepts them after this call —
  /// ChaosController::restore does so for un-fired fault phases), and
  /// finish_restore() verifies their times against the snapshot.  Shard
  /// topology modules restore after this call and re-arm their events;
  /// then call finish_restore().
  void restore(SnapshotReader& r);

  /// Verifies every shard's re-armed pending set, its restored clock
  /// against the committed-horizon vector, and the re-submitted
  /// barrier-task times against the snapshot; call after all per-shard
  /// modules have restored.
  void finish_restore();

  /// Profiles subsequent run_until calls into `writer` (nullptr detaches):
  /// per-shard epoch spans with event counts and wall time, mailbox drain
  /// counters, barrier-task instants, per-worker barrier-wait spans, and
  /// wiring metadata (partition decision + pair-lookahead matrix).  The
  /// writer must have at least chrome_lane_count() lanes and must outlive
  /// the runs.  Virtual-time payloads are flagged deterministic;
  /// wall-clock ones are not, so writer.canonical_json() stays identical
  /// across worker thread counts.
  void attach_chrome_trace(telemetry::ChromeTraceWriter* writer);

 private:
  struct Mail {
    TimePoint when;
    std::uint64_t seq = 0;  // per-source-shard post sequence
    Bytes frame;
  };
  struct Channel {
    std::size_t src = 0;
    std::size_t dst = 0;
    Duration min_latency;
    std::string label;
    ChannelDeliver deliver;
    /// SPSC: written by src's worker during run phases, drained by dst's
    /// worker between barriers; the barrier orders the handoff.
    std::vector<Mail> inbox;
  };
  struct Task {
    std::int64_t when_ns = 0;
    std::size_t shard_scope = kNoShard;
    std::function<void()> fn;
  };
  /// A cross-shard frame drained into its destination wheel but not yet
  /// delivered.  Tracked so snapshots can serialize it and restore can
  /// re-arm the delivery under its original event seq — the scheduled
  /// closure alone would be unrecoverable.
  struct InFlight {
    std::uint32_t channel = 0;
    TimePoint when;
    Bytes frame;
    EventId event{};
  };

  void drain_shard(std::size_t dst);
  void run_shard(std::size_t s);
  void drain_shard_guarded(std::size_t dst);
  void run_shard_guarded(std::size_t s);
  /// Runs due barrier tasks, evaluates stop/deadline, computes the next
  /// per-shard targets or sets done_.  Runs single-threaded (barrier
  /// completion or the sequential loop).
  void advance_epoch_state();
  void run_due_tasks();
  /// Per-shard conservative targets from the committed vector, the pair
  /// lookahead matrix, and the bound (deadline / next task time).
  void compute_epoch_targets();
  /// Folds the finished epoch's targets into the committed vector.
  void commit_epoch();
  /// Publishes wiring gauges + Chrome-trace metadata once, at first run.
  void record_wiring_diagnostics();
  void record_error(std::exception_ptr e);

  std::size_t threads_ = 1;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::unique_ptr<telemetry::MetricsRegistry>> metrics_;
  std::vector<std::unique_ptr<telemetry::SpanTracer>> spans_;
  std::vector<std::unique_ptr<telemetry::FlightRecorder>> flights_;
  std::vector<std::unique_ptr<Trace>> traces_;
  telemetry::ChromeTraceWriter* chrome_ = nullptr;

  std::deque<Channel> channels_;  // stable addresses for deliver closures
  std::vector<std::vector<std::uint32_t>> channels_by_dst_;
  std::vector<std::uint64_t> post_seq_;  // per source shard
  std::int64_t lookahead_ns_ = 0;        // 0 = no channels yet (infinite)
  /// Per destination shard: inbound (source shard, min pair latency)
  /// pairs in source order — the latency matrix the horizon algebra runs
  /// on.  Self-pairs (src == dst) are included: a shard that posts to
  /// itself must not outrun its own mailbox.
  std::vector<std::vector<std::pair<std::size_t, std::int64_t>>> inbound_;
  /// Per destination shard, keyed by a per-shard drain counter (so map
  /// order is drain order — deterministic).  Touched only by the dst
  /// shard's drain and run phases, like the wheel it shadows.
  std::vector<std::map<std::uint64_t, InFlight>> inflight_;
  std::vector<std::uint64_t> inflight_next_;

  std::vector<Task> tasks_;
  std::size_t tasks_pos_ = 0;
  /// Pending-task times from a restore, pending verification against the
  /// re-submitted plan in finish_restore().
  std::vector<std::int64_t> restore_task_times_;
  bool restore_tasks_check_ = false;

  // Epoch state: written only single-threaded (bootstrap or barrier
  // completion); workers read it strictly after the barrier that wrote it.
  std::int64_t cur_ns_ = -1;  // min over committed_ns_ (globally completed)
  std::vector<std::int64_t> committed_ns_;  // per shard, inclusive
  std::vector<std::int64_t> target_ns_;     // per shard epoch target
  std::int64_t deadline_ns_ = -1;
  bool done_ = true;
  bool drain_barrier_next_ = true;
  bool running_ = false;
  StopPredicate stop_;
  std::uint64_t epochs_ = 0;
  std::uint64_t tasks_run_ = 0;
  std::uint64_t runahead_epochs_ = 0;
  std::string partition_info_;
  bool wiring_recorded_ = false;

  // First error raised by any worker/task; the run winds down at the next
  // epoch boundary and run_until rethrows it.
  std::mutex err_mutex_;
  std::exception_ptr error_;
  bool failed_ = false;
};

}  // namespace sublayer::sim
