// ParallelSimulator: conservative barrier-synchronous parallel simulation
// over sharded topologies.
//
// The topology is split into S shards, each owning a private Simulator
// (its own timer wheel, its own virtual clock) plus the hosts, routers,
// and links assigned to it.  Shards only interact through *channels* —
// registered cross-shard edges with a declared minimum latency.  The
// minimum over all channels is the lookahead L, and execution proceeds in
// epochs: every shard runs its own wheel up to the epoch horizon, a
// barrier is taken, cross-shard deliveries posted during the epoch are
// drained from per-channel SPSC mailboxes into the destination shards,
// and the next horizon is computed.
//
// Why this is safe (the conservative-lookahead argument): let `cur` be the
// globally completed time and E <= cur + L the epoch horizon.  Any message
// a shard produces during the epoch is produced by an event at some
// t > cur and is due no earlier than t + L > cur + L >= E — strictly
// beyond the epoch.  So no shard can receive, within an epoch, a message
// sent within the same epoch, and running the shards concurrently is
// indistinguishable from running them in any sequential order.
//
// Why it is deterministic at every worker-thread count: a shard's epoch
// run depends only on that shard's own state (its wheel already orders
// events by (time, insertion-seq)), and mailbox drains merge messages in
// (delivery time, source shard, per-source post sequence) order before
// scheduling them — an order independent of which worker ran what when.
// The same seed and shard map therefore produce bit-identical event
// traces with 1, 2, or N worker threads; the replay suite in tests/sim/
// asserts exactly this.
//
// Telemetry: each shard owns a private MetricsRegistry, SpanTracer, and
// cross-shard Trace.  ShardScope installs a shard's registries and clock
// as the calling thread's current ones (see telemetry/metrics.hpp and
// simclock in common/time.hpp); the worker does this around every shard
// run phase, and topology construction does it so modules bind into their
// owning shard.  merged_metrics() / merged_crossings() produce the
// deterministic cross-shard aggregate at any parked instant.
//
// Barrier tasks (schedule_task) run single-threaded at exact virtual
// times with every shard's clock aligned to the task time: epochs never
// cross a task time, so chaos fault injection can mutate any shard's
// links and routers race-free.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sublayer::telemetry {
class ChromeTraceWriter;
}  // namespace sublayer::telemetry

namespace sublayer::sim {

/// Maps topology entity ids (router ids, host ids) to shards.  Default is
/// a splitmix64 hash of the id modulo the shard count; assign() overrides
/// the placement of individual ids (e.g. to keep a chatty pair co-located).
class ShardMap {
 public:
  explicit ShardMap(std::size_t shards);

  std::size_t shards() const { return shards_; }
  std::size_t of(std::uint64_t id) const;
  /// Pins `id` to `shard`, overriding the hash.
  void assign(std::uint64_t id, std::size_t shard);

 private:
  std::size_t shards_;
  std::vector<std::pair<std::uint64_t, std::size_t>> overrides_;
};

struct ParallelConfig {
  /// Number of shards (private Simulators).  Fixed per run; the shard map
  /// — not the worker count — is what determines the event trace.
  std::size_t shards = 1;
  /// Worker threads; 0 means min(shards, hardware_concurrency).  Results
  /// are identical at every value.
  std::size_t threads = 0;
  EngineKind engine = EngineKind::kTimerWheel;
  /// Per-shard burst dequeue budget (Simulator::set_burst_budget): how
  /// many consecutive same-tick batchable events one scheduler visit may
  /// drain.  Results are identical at every value; 1 is classic stepping.
  std::size_t burst_budget = 1;
};

class ParallelSimulator {
 public:
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

  explicit ParallelSimulator(ParallelConfig config);
  ~ParallelSimulator();
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t thread_count() const { return threads_; }

  Simulator& shard(std::size_t s) { return *shards_.at(s); }
  telemetry::MetricsRegistry& shard_metrics(std::size_t s) {
    return *metrics_.at(s);
  }
  telemetry::SpanTracer& shard_spans(std::size_t s) { return *spans_.at(s); }
  telemetry::FlightRecorder& shard_flight(std::size_t s) {
    return *flights_.at(s);
  }
  /// Cross-shard deliveries INTO shard `s`, recorded at drain time in
  /// merged order — the replay suite's bit-identical artifact.
  const Trace& shard_trace(std::size_t s) const { return *traces_.at(s); }

  /// RAII: installs shard `s`'s metrics registry, span tracer, and clock
  /// as the calling thread's current ones, restoring the previous set on
  /// destruction.  Wrap topology construction in one so modules bind into
  /// their owning shard; the engine itself wraps every run phase.
  class ShardScope {
   public:
    ShardScope(ParallelSimulator& psim, std::size_t s);
    ~ShardScope();
    ShardScope(const ShardScope&) = delete;
    ShardScope& operator=(const ShardScope&) = delete;

   private:
    telemetry::MetricsRegistry* prev_metrics_;
    telemetry::SpanTracer* prev_spans_;
    telemetry::FlightRecorder* prev_flight_;
    const TimePoint* clock_;
  };
  ShardScope bind(std::size_t s) { return ShardScope(*this, s); }

  // ---- registration (topology construction, before run_until) ----

  /// Delivery callback on the destination shard.
  using ChannelDeliver = std::function<void(Bytes)>;

  /// Registers a cross-shard edge with a guaranteed minimum latency
  /// (>= 1 ns; the global lookahead is the minimum over all channels).
  /// Returns the channel id for post().
  std::uint32_t add_channel(std::size_t src_shard, std::size_t dst_shard,
                            Duration min_latency, std::string label,
                            ChannelDeliver deliver);

  /// Epoch lookahead: min over channel latencies (infinite when there are
  /// no channels — single-shard or fully disconnected topologies).
  Duration lookahead() const { return Duration::nanos(lookahead_ns_); }

  /// Posts a frame onto `channel` for delivery at `when`.  Called from the
  /// source shard's run phase only (single producer); `when` must lie
  /// beyond the current epoch horizon, which the channel's declared
  /// minimum latency guarantees for any send inside the epoch.
  void post(std::uint32_t channel, TimePoint when, Bytes frame);

  /// Schedules `fn` to run single-threaded at exactly `when` (strictly in
  /// the future), with every shard's clock advanced to `when` and all
  /// workers parked — epochs never span a task time.  `shard_scope`
  /// (optional) wraps the task in that shard's ShardScope, for tasks that
  /// rebuild telemetry-bound state (e.g. a chaos router crash).  Counted
  /// in events_processed() like the equivalent single-simulator event.
  void schedule_task(TimePoint when, std::function<void()> fn,
                     std::size_t shard_scope = kNoShard);

  // ---- execution ----

  /// Checked at every epoch boundary (all workers parked, so it may read
  /// any shard's state); returning true ends the run at that boundary.
  using StopPredicate = std::function<bool()>;

  /// Runs every shard to `deadline` (or to the first epoch boundary where
  /// `stop` returns true).  May be called repeatedly with increasing
  /// deadlines; topology registration must be complete before the first
  /// call.
  void run_until(TimePoint deadline, StopPredicate stop = nullptr);

  /// Globally completed virtual time (every shard has run through it).
  TimePoint now() const;

  /// Events fired across all shards plus barrier tasks run — comparable
  /// with Simulator::events_processed() for an equivalent monolithic run.
  std::uint64_t events_processed() const;
  std::uint64_t tasks_run() const { return tasks_run_; }
  std::uint64_t epochs() const { return epochs_; }
  /// Frames that crossed shard boundaries (sum over source shards).
  std::uint64_t cross_shard_frames() const;

  // ---- deterministic merged views (call only while parked) ----

  /// Shard registries summed name-by-name (histograms merge bucketwise).
  /// Activity recorded outside any shard scope lands in the process-wide
  /// registry and is NOT included; reset and read that one separately.
  telemetry::MetricsSnapshot merged_metrics() const;

  /// Sorted union of layer names over all shard tracers.
  std::vector<std::string> merged_span_layers() const;
  std::uint64_t merged_crossings(std::string_view layer,
                                 telemetry::Dir dir) const;
  std::uint64_t merged_crossing_bytes(std::string_view layer,
                                      telemetry::Dir dir) const;

  /// Every cross-shard delivery, one line per frame, merged over shards in
  /// (time, destination shard, drain order) order — equal strings mean
  /// bit-identical cross-shard traffic.
  std::string cross_shard_trace_log() const;

  /// Every shard's flight-recorder ring merged in (time, shard, seq) order
  /// — like the rest of the merged views, deterministic at every worker
  /// thread count.
  std::vector<telemetry::FlightRecord> merged_flight_records() const;

  // ---- execution profiling (Chrome trace / Perfetto export) ----

  /// Lanes the engine emits into: one per shard (epoch spans, drain
  /// counters, flow spans), one engine lane (barrier tasks), one per
  /// worker thread (wall-clock barrier waits).
  std::size_t chrome_lane_count() const {
    return shards_.size() + 1 + threads_;
  }

  // ---- checkpoint / restore (see sim/snapshot.hpp for the contract) ----

  /// Saves the full parallel-engine state at a parked instant (between
  /// run_until calls): the epoch clock and counters, per-source post
  /// sequences, undrained channel mailboxes, drained-but-undelivered
  /// cross-shard frames (re-armed on restore under their original event
  /// seqs), and then, per shard, the shard simulator, its telemetry
  /// registries (metrics/spans/flight), and its cross-shard trace.
  /// Brackets "sim.parallel" plus the per-shard module sections.
  void save(SnapshotWriter& w) const;

  /// Restores into a freshly constructed engine with the same config and
  /// the same channels registered in the same order.  Barrier-task
  /// closures are not serialized: the restore graph re-submits exactly the
  /// still-pending tasks (schedule_task accepts them after this call —
  /// ChaosController::restore does so for un-fired fault phases), and
  /// finish_restore() verifies their times against the snapshot.  Shard
  /// topology modules restore after this call and re-arm their events;
  /// then call finish_restore().
  void restore(SnapshotReader& r);

  /// Verifies every shard's re-armed pending set and the re-submitted
  /// barrier-task times against the snapshot; call after all per-shard
  /// modules have restored.
  void finish_restore();

  /// Profiles subsequent run_until calls into `writer` (nullptr detaches):
  /// per-shard epoch spans with event counts and wall time, mailbox drain
  /// counters, barrier-task instants, and per-worker barrier-wait spans.
  /// The writer must have at least chrome_lane_count() lanes and must
  /// outlive the runs.  Virtual-time payloads are flagged deterministic;
  /// wall-clock ones are not, so writer.canonical_json() stays identical
  /// across worker thread counts.
  void attach_chrome_trace(telemetry::ChromeTraceWriter* writer);

 private:
  struct Mail {
    TimePoint when;
    std::uint64_t seq = 0;  // per-source-shard post sequence
    Bytes frame;
  };
  struct Channel {
    std::size_t src = 0;
    std::size_t dst = 0;
    Duration min_latency;
    std::string label;
    ChannelDeliver deliver;
    /// SPSC: written by src's worker during run phases, drained by dst's
    /// worker between barriers; the barrier orders the handoff.
    std::vector<Mail> inbox;
  };
  struct Task {
    std::int64_t when_ns = 0;
    std::size_t shard_scope = kNoShard;
    std::function<void()> fn;
  };
  /// A cross-shard frame drained into its destination wheel but not yet
  /// delivered.  Tracked so snapshots can serialize it and restore can
  /// re-arm the delivery under its original event seq — the scheduled
  /// closure alone would be unrecoverable.
  struct InFlight {
    std::uint32_t channel = 0;
    TimePoint when;
    Bytes frame;
    EventId event{};
  };

  void drain_shard(std::size_t dst);
  void run_shard(std::size_t s);
  void drain_shard_guarded(std::size_t dst);
  void run_shard_guarded(std::size_t s);
  /// Runs due barrier tasks, evaluates stop/deadline, computes the next
  /// horizon or sets done_.  Runs single-threaded (barrier completion or
  /// the sequential loop).
  void advance_epoch_state();
  void run_due_tasks();
  void compute_next_epoch();
  void record_error(std::exception_ptr e);

  std::size_t threads_ = 1;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::unique_ptr<telemetry::MetricsRegistry>> metrics_;
  std::vector<std::unique_ptr<telemetry::SpanTracer>> spans_;
  std::vector<std::unique_ptr<telemetry::FlightRecorder>> flights_;
  std::vector<std::unique_ptr<Trace>> traces_;
  telemetry::ChromeTraceWriter* chrome_ = nullptr;

  std::deque<Channel> channels_;  // stable addresses for deliver closures
  std::vector<std::vector<std::uint32_t>> channels_by_dst_;
  std::vector<std::uint64_t> post_seq_;  // per source shard
  std::int64_t lookahead_ns_ = 0;        // 0 = no channels yet (infinite)
  /// Per destination shard, keyed by a per-shard drain counter (so map
  /// order is drain order — deterministic).  Touched only by the dst
  /// shard's drain and run phases, like the wheel it shadows.
  std::vector<std::map<std::uint64_t, InFlight>> inflight_;
  std::vector<std::uint64_t> inflight_next_;

  std::vector<Task> tasks_;
  std::size_t tasks_pos_ = 0;
  /// Pending-task times from a restore, pending verification against the
  /// re-submitted plan in finish_restore().
  std::vector<std::int64_t> restore_task_times_;
  bool restore_tasks_check_ = false;

  // Epoch state: written only single-threaded (bootstrap or barrier
  // completion); workers read it strictly after the barrier that wrote it.
  std::int64_t cur_ns_ = -1;  // completed through cur_ns_, inclusive
  std::int64_t epoch_end_ns_ = -1;
  std::int64_t deadline_ns_ = -1;
  bool done_ = true;
  bool drain_barrier_next_ = true;
  bool running_ = false;
  StopPredicate stop_;
  std::uint64_t epochs_ = 0;
  std::uint64_t tasks_run_ = 0;

  // First error raised by any worker/task; the run winds down at the next
  // epoch boundary and run_until rethrows it.
  std::mutex err_mutex_;
  std::exception_ptr error_;
  bool failed_ = false;
};

}  // namespace sublayer::sim
