#include "sim/timetravel.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace sublayer::sim {

namespace {
const Logger kLog("sim.timetravel");
}

void TimeTravel::add_checkpoint(Bytes image, std::uint64_t events,
                                TimePoint at) {
  if (!checkpoints_.empty() && events < checkpoints_.back().events) {
    throw std::logic_error("TimeTravel: checkpoints must be added in order");
  }
  checkpoints_.push_back(Checkpoint{std::move(image), events, at});
}

TimeTravel::Result TimeTravel::bisect(const Factory& make_world,
                                      std::uint64_t violated_by) const {
  Result res;
  // Latest checkpoint strictly before the detection point that replays
  // clean.  Detection lags cause (monitors sweep periodically), so a
  // checkpoint may already carry the poisoned state — those are skipped.
  std::size_t base = checkpoints_.size();
  std::unique_ptr<World> probe;
  while (base > 0) {
    const Checkpoint& c = checkpoints_[base - 1];
    if (c.events < violated_by) {
      probe = make_world(c.image);
      ++res.reexecutions;
      if (!probe->violated()) break;
    }
    --base;
  }
  if (base == 0) {
    kLog.warn("bisect: no clean checkpoint before event %llu",
              static_cast<unsigned long long>(violated_by));
    return res;
  }
  const Checkpoint& clean = checkpoints_[base - 1];
  res.base_events = clean.events;

  // Invariant of the search: running (lo - clean.events) events from the
  // clean image leaves the predicate false; running (hi - clean.events)
  // leaves it true.  The predicate is monotone, so the flip point is the
  // first offending event.
  std::uint64_t lo = clean.events;
  std::uint64_t hi = violated_by;
  // The straight run observed the violation by `hi`; verify the replayed
  // world agrees (it must, by determinism — fail loudly if not).
  {
    auto w = make_world(clean.image);
    ++res.reexecutions;
    w->run_events(static_cast<std::size_t>(hi - clean.events));
    if (!w->violated()) {
      throw std::logic_error(
          "TimeTravel: replay from clean checkpoint does not reproduce the "
          "violation — world restore is not deterministic");
    }
  }
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    auto w = make_world(clean.image);
    ++res.reexecutions;
    w->run_events(static_cast<std::size_t>(mid - clean.events));
    if (w->violated()) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Final isolating run: execute through exactly the offending event and
  // dump the focused flight window around it.
  auto w = make_world(clean.image);
  ++res.reexecutions;
  w->run_events(static_cast<std::size_t>(hi - clean.events));
  res.isolated = true;
  res.offending_event = hi;
  res.offending_time = w->now();
  res.flight_dump = w->dump_flight("timetravel-event-" + std::to_string(hi));
  return res;
}

}  // namespace sublayer::sim
