// Simulated links: the substrate every protocol in this repo runs over.
//
// A Link is a unidirectional point-to-point channel with bandwidth,
// propagation delay, and an impairment model (loss, corruption, reorder,
// duplication, tail-drop queueing).  DuplexLink pairs two of them.
// All randomness is drawn from a per-link forked Rng, so topologies are
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace sublayer::sim {

class SnapshotWriter;
class SnapshotReader;

struct LinkConfig {
  /// Bits per second; 0 means infinite (no serialization delay).
  double bandwidth_bps = 0;
  Duration propagation_delay = Duration::micros(10);
  /// Probability an entire frame is silently dropped.
  double loss_rate = 0;
  /// Probability a frame is delivered with bit corruption.
  double corrupt_rate = 0;
  /// Number of bit flips applied to a corrupted frame (at random offsets).
  int corrupt_bit_flips = 1;
  /// Probability a frame is delivered twice.
  double duplicate_rate = 0;
  /// Extra random delay in [0, jitter] added per frame.  A nonzero jitter
  /// can reorder frames.
  Duration jitter = Duration::nanos(0);
  /// Transmit queue capacity in frames; arrivals beyond this are tail-dropped.
  std::size_t queue_limit = std::numeric_limits<std::size_t>::max();

  friend bool operator==(const LinkConfig&, const LinkConfig&) = default;
};

struct LinkStats {
  std::uint64_t frames_offered = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_queue_dropped = 0;
  std::uint64_t bytes_delivered = 0;
};

/// A burst of frames handed to a batched receiver in delivery order.
using FrameBatch = std::vector<Bytes>;

class Link {
 public:
  using Receiver = std::function<void(Bytes)>;
  /// Receives the frames a burst delivered on this link, in delivery
  /// order.  The batch is the link's internal accumulator: consume or
  /// move from it freely, it is cleared after the call returns.
  using BatchReceiver = std::function<void(FrameBatch&)>;

  Link(Simulator& sim, LinkConfig config, Rng rng, std::string name = "link");

  void set_receiver(Receiver r) { receiver_ = std::move(r); }

  /// Batched mode: deliveries are scheduled *batchable* (the simulator's
  /// burst dequeue may drain several same-tick deliveries in one scheduler
  /// visit) and the receiver gets the whole burst at flush time.  Stats
  /// stay per frame: each delivery event still decrements the queue gauge
  /// and bumps frames/bytes_delivered individually, so LinkStats are
  /// identical to unbatched mode at every flush boundary.  Takes
  /// precedence over set_receiver when both are set.
  void set_batch_receiver(BatchReceiver r) { batch_receiver_ = std::move(r); }

  /// Offers each frame in turn — exactly N send() calls' worth of
  /// impairment draws, serialization accounting, and tail-drop checks, so
  /// per-frame stats and replay traces match frame-at-a-time sending.
  void send_batch(FrameBatch&& frames) {
    for (Bytes& f : frames) send(std::move(f));
    frames.clear();
  }

  /// Remote mode, for links whose receiver lives on another shard: instead
  /// of scheduling the delivery on this link's (sender-side) simulator, the
  /// sink is handed the computed delivery time and the surviving frame, and
  /// forwards both to the destination shard (ParallelSimulator::post).  All
  /// impairment draws, serialization, and delay math stay sender-side, so
  /// the delivery time and frame bytes are identical to local mode.
  /// Delivery accounting (frames/bytes_delivered, queue occupancy) is kept
  /// sender-side too: stats are bumped at send time, and queued_ is drained
  /// by expiring recorded delivery times against the sender clock on the
  /// next send() — equivalent in virtual time to the local decrement.
  using RemoteSink = std::function<void(TimePoint, Bytes)>;
  void set_remote_sink(RemoteSink sink) { remote_sink_ = std::move(sink); }

  /// Offers a frame to the link; impairments and delays are applied and the
  /// receiver callback fires at the delivery time (if the frame survives).
  void send(Bytes frame);

  const LinkStats& stats() const { return stats_; }
  const LinkConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

  /// Live-reconfiguration (e.g. a failure injection flips loss_rate to 1).
  /// Frames already in flight keep the impairments drawn at send time; only
  /// frames offered after the change see the new configuration.
  void set_loss_rate(double p) { config_.loss_rate = p; }
  void set_corrupt_rate(double p) { config_.corrupt_rate = p; }
  void set_duplicate_rate(double p) { config_.duplicate_rate = p; }
  void set_jitter(Duration j) { config_.jitter = j; }
  void set_queue_limit(std::size_t limit) { config_.queue_limit = limit; }
  /// Replaces the whole impairment model at once (chaos scripts restore a
  /// snapshot this way after a fault window ends).
  void set_config(const LinkConfig& config) { config_ = config; }
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Serialization backlog: how long a frame offered right now would wait
  /// for the transmitter (zero on an idle or infinite-bandwidth link).
  /// This is the queue-depth signal AQM/ECN marking keys off.
  Duration backlog() const {
    return tx_free_at_ > sim_.now() ? tx_free_at_ - sim_.now()
                                    : Duration::nanos(0);
  }

  /// Checkpoint/restore: rng stream, live config, stats, transmitter
  /// state, and every delivery in flight — local deliveries live in the
  /// slot pool (frame bytes + armed (deadline, seq)), so restore re-arms
  /// each one under its original ordering slot.  Inline-format: the owner
  /// (Network/DuplexLink or a test) brackets the section.
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  Duration serialization_delay(std::size_t bytes) const;
  void deliver(Bytes frame, Duration extra_delay);
  /// Fires a local delivery: hands the slot's frame to the receiver path.
  void deliver_local(std::uint32_t slot);
  /// Hands the accumulated burst to the batch receiver (deferred flush).
  void flush_rx();
  /// Slot pool for local deliveries in flight.  Frames move in at send
  /// time and out at delivery; the pool exists so a snapshot can walk the
  /// frames the event queue would otherwise own inside closures.
  std::uint32_t alloc_flight(Bytes frame, std::int64_t at_ns, bool batch);

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  struct FlightSlot {
    Bytes frame;
    std::int64_t at_ns = 0;
    EventId ev{};
    std::uint32_t next_free = kNilSlot;
    bool batch = false;
    bool in_use = false;
  };

  Simulator& sim_;
  LinkConfig config_;
  Rng rng_;
  std::string name_;
  Receiver receiver_;
  BatchReceiver batch_receiver_;
  FrameBatch rx_pending_;
  RemoteSink remote_sink_;
  LinkStats stats_;
  /// Time the transmitter becomes free (bandwidth modelling).
  TimePoint tx_free_at_;
  std::size_t queued_ = 0;
  /// Remote mode: pending delivery times (min-heap), popped against the
  /// sender clock to drain queued_ since no local delivery event runs.
  std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                      std::greater<std::int64_t>>
      inflight_;
  std::vector<FlightSlot> flights_;
  std::uint32_t flight_free_ = kNilSlot;
  bool down_ = false;
};

/// Two independent unidirectional links between endpoints A and B.
class DuplexLink {
 public:
  DuplexLink(Simulator& sim, const LinkConfig& config, Rng& parent_rng,
             std::string name = "duplex")
      : a_to_b_(sim, config, parent_rng.fork(), name + ".a2b"),
        b_to_a_(sim, config, parent_rng.fork(), name + ".b2a") {}

  /// Split form for cross-shard links: each direction's sender-side state
  /// lives on the shard that transmits on it.  Fork order matches the
  /// single-simulator constructor, so the same parent Rng yields the same
  /// per-direction streams whether or not the link spans shards.
  DuplexLink(Simulator& sim_a, Simulator& sim_b, const LinkConfig& config,
             Rng& parent_rng, std::string name = "duplex")
      : a_to_b_(sim_a, config, parent_rng.fork(), name + ".a2b"),
        b_to_a_(sim_b, config, parent_rng.fork(), name + ".b2a") {}

  Link& a_to_b() { return a_to_b_; }
  Link& b_to_a() { return b_to_a_; }

  void set_down(bool down) {
    a_to_b_.set_down(down);
    b_to_a_.set_down(down);
  }

  bool is_down() const { return a_to_b_.is_down() && b_to_a_.is_down(); }

  void set_config(const LinkConfig& config) {
    a_to_b_.set_config(config);
    b_to_a_.set_config(config);
  }

  void save(SnapshotWriter& w) const {
    a_to_b_.save(w);
    b_to_a_.save(w);
  }
  void restore(SnapshotReader& r) {
    a_to_b_.restore(r);
    b_to_a_.restore(r);
  }

 private:
  Link a_to_b_;
  Link b_to_a_;
};

}  // namespace sublayer::sim
