// Versioned, checksummed binary snapshots of simulator state.
//
// A snapshot is a flat byte image made of named, length-prefixed sections
// written in a fixed order (the module save order).  The container carries
// a magic, a format version, a section table, and a SipHash-2-4 checksum
// over the whole payload, so a truncated or bit-rotted image is rejected
// before any module sees it.
//
// What a snapshot holds — and what it deliberately does not
// --------------------------------------------------------
// Event queues hold closures, which cannot be serialized.  The design
// therefore splits responsibility:
//
//   * The engine saves the *shape* of its pending set: every live
//     (deadline, insertion-seq, batchable) triple, plus the sequence
//     counter and cursor.  This is the determinism contract's entire
//     observable surface — events fire in (time, seq) order.
//   * Each stateful module saves its own mutable fields and, for every
//     pending event it owns (a Timer deadline, a link delivery in flight,
//     a chaos apply/heal), the (deadline, seq) under which that event was
//     armed.
//   * Restore runs against a *freshly constructed, identically configured*
//     object graph (same topology code, same seeds — but nothing started):
//     each module's restore() overwrites its mutable state and re-arms its
//     own events with the original (deadline, seq) via schedule_restored_at.
//     The closures are thereby re-derived from code, not deserialized.
//
// Simulator::finish_restore() then verifies the re-armed pending set is
// *identical* to the saved one.  An event nobody claimed (or a double
// claim) fails loudly right there — this is the quiescent-point rule:
// snapshots are only valid at instants where every pending event has a
// restorable owner.  Park points of run_until() qualify for every module
// in the tree; one-shot closures scheduled ad hoc by application code do
// not, so snapshot after they have fired.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"

namespace sublayer::telemetry {
class MetricsRegistry;
class SpanTracer;
class FlightRecorder;
}  // namespace sublayer::telemetry

namespace sublayer::sim {

/// Raised on container corruption, section-order mismatch, or a restore
/// whose re-armed pending set diverges from the saved one.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// v2: sim.parallel gained the per-shard committed-horizon vector and the
/// run-ahead counter (adaptive per-pair lookahead parks shards at unequal
/// times).  v1 images are refused at open.
inline constexpr std::uint32_t kSnapshotVersion = 2;

/// Streams primitives into named sections; finish() seals the container.
class SnapshotWriter {
 public:
  void begin_section(std::string_view name);
  void end_section();

  void u8(std::uint8_t v) { payload_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void time(TimePoint t) { i64(t.ns()); }
  void dur(Duration d) { i64(d.ns()); }
  void str(std::string_view s);
  void blob(ByteView v);

  /// Seals and returns the container image.  The writer is spent after.
  Bytes finish();

 private:
  struct Section {
    std::string name;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };
  Bytes payload_;
  std::vector<Section> sections_;
  bool in_section_ = false;
};

/// Reads a sealed container; sections must be consumed in written order
/// and each must be consumed exactly (end_section verifies).
class SnapshotReader {
 public:
  /// Validates magic, version, checksum, and section table.
  explicit SnapshotReader(ByteView image);

  void begin_section(std::string_view name);
  void end_section();

  std::uint8_t u8();
  bool b() { return u8() != 0; }
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  TimePoint time() { return TimePoint::from_ns(i64()); }
  Duration dur() { return Duration::nanos(i64()); }
  std::string str();
  Bytes blob();

  /// Section names in stored order (diagnostics).
  std::vector<std::string> section_names() const;

 private:
  struct Section {
    std::string name;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };
  void require(std::size_t n) const;

  Bytes payload_;  // owned copy: a snapshot outlives the caller's buffer
  std::vector<Section> sections_;
  std::size_t pos_ = 0;
  std::size_t next_section_ = 0;
  std::uint64_t section_end_ = 0;
  bool in_section_ = false;
};

// ---- telemetry state (orchestrated here: telemetry stays sim-agnostic) ----

/// Every interned counter/gauge/histogram value (histogram buckets sparse-
/// encoded).  restore_metrics resets the registry first, then applies the
/// saved aggregates by name — instance-local handle values are restored by
/// their owning modules via Counter/Gauge::restore_local.
void save_metrics(SnapshotWriter& w, const telemetry::MetricsRegistry& reg);
void restore_metrics(SnapshotReader& r, telemetry::MetricsRegistry& reg);

/// Per-boundary crossing totals plus the recent-span ring.
void save_spans(SnapshotWriter& w, const telemetry::SpanTracer& spans);
void restore_spans(SnapshotReader& r, telemetry::SpanTracer& spans);

/// Ring contents and lifetime count; restoring the count keeps record seq
/// numbers monotone across the resume (stable merge order).
void save_flight(SnapshotWriter& w, const telemetry::FlightRecorder& fr);
void restore_flight(SnapshotReader& r, telemetry::FlightRecorder& fr);

struct LinkConfig;

/// One LinkConfig, field by field — shared by Link::save and the chaos
/// controller's baseline table so the two never drift apart.
void save_link_config(SnapshotWriter& w, const LinkConfig& c);
LinkConfig restore_link_config(SnapshotReader& r);

}  // namespace sublayer::sim
