#include "sim/snapshot.hpp"

#include <bit>
#include <cstring>

#include "common/siphash.hpp"
#include "sim/link.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sublayer::sim {

namespace {

// "SLSNAP" + version byte slot; little-endian fields throughout (the
// container is a process artifact, not a wire format — but fixed layout
// keeps images comparable across runs).
constexpr std::uint8_t kMagic[6] = {'S', 'L', 'S', 'N', 'A', 'P'};

// Fixed key: the checksum detects corruption, it does not authenticate.
constexpr SipHashKey kChecksumKey = {0x736e617073686f74ull,
                                     0x73756272696e6721ull};

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

// ---- SnapshotWriter --------------------------------------------------------

void SnapshotWriter::begin_section(std::string_view name) {
  if (in_section_) {
    throw SnapshotError("snapshot: begin_section inside open section '" +
                        sections_.back().name + "'");
  }
  in_section_ = true;
  sections_.push_back(Section{std::string(name), payload_.size(), 0});
}

void SnapshotWriter::end_section() {
  if (!in_section_) throw SnapshotError("snapshot: end_section without begin");
  in_section_ = false;
  sections_.back().end = payload_.size();
}

void SnapshotWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void SnapshotWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void SnapshotWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void SnapshotWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SnapshotWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  payload_.insert(payload_.end(), s.begin(), s.end());
}

void SnapshotWriter::blob(ByteView v) {
  u64(v.size());
  payload_.insert(payload_.end(), v.begin(), v.end());
}

Bytes SnapshotWriter::finish() {
  if (in_section_) {
    throw SnapshotError("snapshot: finish with open section '" +
                        sections_.back().name + "'");
  }
  // Append the section table to the payload so one checksum covers both.
  const std::size_t table_at = payload_.size();
  {
    SnapshotWriter& w = *this;  // reuse the primitive encoders
    w.u32(static_cast<std::uint32_t>(sections_.size()));
    for (const Section& s : sections_) {
      w.str(s.name);
      w.u64(s.begin);
      w.u64(s.end);
    }
  }
  Bytes header;
  header.reserve(32);
  header.insert(header.end(), std::begin(kMagic), std::end(kMagic));
  header.push_back(static_cast<std::uint8_t>(kSnapshotVersion));
  header.push_back(0);  // reserved
  put_u64(header, payload_.size());
  put_u64(header, table_at);
  put_u64(header, siphash24(kChecksumKey, payload_));
  Bytes image(header.size() + payload_.size());
  std::memcpy(image.data(), header.data(), header.size());
  if (!payload_.empty()) {
    std::memcpy(image.data() + header.size(), payload_.data(),
                payload_.size());
  }
  payload_.clear();
  sections_.clear();
  return image;
}

// ---- SnapshotReader --------------------------------------------------------

SnapshotReader::SnapshotReader(ByteView image) {
  constexpr std::size_t kHeader = 6 + 2 + 8 + 8 + 8;
  if (image.size() < kHeader ||
      std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError("snapshot: bad magic");
  }
  if (image[6] != kSnapshotVersion) {
    throw SnapshotError("snapshot: unsupported version " +
                        std::to_string(image[6]));
  }
  const std::uint64_t payload_size = get_u64(image.data() + 8);
  const std::uint64_t table_at = get_u64(image.data() + 16);
  const std::uint64_t checksum = get_u64(image.data() + 24);
  if (image.size() != kHeader + payload_size || table_at > payload_size) {
    throw SnapshotError("snapshot: truncated image");
  }
  payload_.assign(image.begin() + kHeader, image.end());
  if (siphash24(kChecksumKey, payload_) != checksum) {
    throw SnapshotError("snapshot: checksum mismatch");
  }
  // Parse the section table (it sits at table_at, encoded with the same
  // primitives the body uses).
  pos_ = table_at;
  section_end_ = payload_.size();
  in_section_ = true;  // lets the primitive readers run
  const std::uint32_t n = u32();
  sections_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Section s;
    s.name = str();
    s.begin = u64();
    s.end = u64();
    if (s.begin > s.end || s.end > table_at) {
      throw SnapshotError("snapshot: bad section bounds for '" + s.name + "'");
    }
    sections_.push_back(std::move(s));
  }
  in_section_ = false;
  pos_ = 0;
}

void SnapshotReader::require(std::size_t n) const {
  if (!in_section_) {
    throw SnapshotError("snapshot: read outside any section");
  }
  if (pos_ + n > section_end_) {
    throw SnapshotError("snapshot: section underrun");
  }
}

void SnapshotReader::begin_section(std::string_view name) {
  if (in_section_) {
    throw SnapshotError("snapshot: begin_section inside open section");
  }
  if (next_section_ >= sections_.size()) {
    throw SnapshotError("snapshot: no section left, wanted '" +
                        std::string(name) + "'");
  }
  const Section& s = sections_[next_section_];
  if (s.name != name) {
    throw SnapshotError("snapshot: section order mismatch, wanted '" +
                        std::string(name) + "', image has '" + s.name + "'");
  }
  ++next_section_;
  pos_ = s.begin;
  section_end_ = s.end;
  in_section_ = true;
}

void SnapshotReader::end_section() {
  if (!in_section_) throw SnapshotError("snapshot: end_section without begin");
  if (pos_ != section_end_) {
    throw SnapshotError(
        "snapshot: section '" + sections_[next_section_ - 1].name +
        "' not fully consumed (" + std::to_string(section_end_ - pos_) +
        " bytes left)");
  }
  in_section_ = false;
}

std::uint8_t SnapshotReader::u8() {
  require(1);
  return payload_[pos_++];
}

std::uint16_t SnapshotReader::u16() {
  const std::uint16_t lo = u8();
  return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
}

std::uint32_t SnapshotReader::u32() {
  const std::uint32_t lo = u16();
  return lo | (static_cast<std::uint32_t>(u16()) << 16);
}

std::uint64_t SnapshotReader::u64() {
  const std::uint64_t lo = u32();
  return lo | (static_cast<std::uint64_t>(u32()) << 32);
}

double SnapshotReader::f64() { return std::bit_cast<double>(u64()); }

std::string SnapshotReader::str() {
  const std::uint32_t n = u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(payload_.data()) + pos_, n);
  pos_ += n;
  return s;
}

Bytes SnapshotReader::blob() {
  const std::uint64_t n = u64();
  require(n);
  Bytes b(payload_.begin() + static_cast<std::ptrdiff_t>(pos_),
          payload_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

std::vector<std::string> SnapshotReader::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const Section& s : sections_) names.push_back(s.name);
  return names;
}

// ---- telemetry state -------------------------------------------------------

void save_metrics(SnapshotWriter& w, const telemetry::MetricsRegistry& reg) {
  const telemetry::MetricsSnapshot snap = reg.snapshot();
  w.begin_section("telemetry.metrics");
  w.u64(snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    w.str(name);
    w.u64(value);
  }
  w.u64(snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) {
    w.str(name);
    w.i64(value);
  }
  w.u64(snap.histograms.size());
  for (const auto& h : snap.histograms) {
    w.str(h.name);
    w.u64(h.data.count);
    w.u64(h.data.sum);
    w.u64(h.data.min);
    w.u64(h.data.max);
    std::uint32_t nonzero = 0;
    for (const std::uint64_t b : h.data.buckets) nonzero += b != 0;
    w.u32(nonzero);
    for (std::size_t i = 0; i < h.data.buckets.size(); ++i) {
      if (h.data.buckets[i] != 0) {
        w.u32(static_cast<std::uint32_t>(i));
        w.u64(h.data.buckets[i]);
      }
    }
  }
  w.end_section();
}

void restore_metrics(SnapshotReader& r, telemetry::MetricsRegistry& reg) {
  reg.reset();  // construction-time increments of the fresh graph are
                // part of the saved aggregates; zero first, then apply
  r.begin_section("telemetry.metrics");
  const std::uint64_t ncounters = r.u64();
  for (std::uint64_t i = 0; i < ncounters; ++i) {
    const std::string name = r.str();
    *reg.counter_slot(reg.intern_counter(name)) = r.u64();
  }
  const std::uint64_t ngauges = r.u64();
  for (std::uint64_t i = 0; i < ngauges; ++i) {
    const std::string name = r.str();
    *reg.gauge_slot(reg.intern_gauge(name)) = r.i64();
  }
  const std::uint64_t nhist = r.u64();
  for (std::uint64_t i = 0; i < nhist; ++i) {
    const std::string name = r.str();
    telemetry::HistogramData& h =
        *reg.histogram_slot(reg.intern_histogram(name));
    h = telemetry::HistogramData{};
    h.count = r.u64();
    h.sum = r.u64();
    h.min = r.u64();
    h.max = r.u64();
    const std::uint32_t nonzero = r.u32();
    for (std::uint32_t j = 0; j < nonzero; ++j) {
      const std::uint32_t idx = r.u32();
      if (idx >= h.buckets.size()) {
        throw SnapshotError("snapshot: histogram bucket index out of range");
      }
      h.buckets[idx] = r.u64();
    }
  }
  r.end_section();
}

void save_spans(SnapshotWriter& w, const telemetry::SpanTracer& spans) {
  w.begin_section("telemetry.spans");
  const auto& layers = spans.layers();
  w.u64(layers.size());
  for (std::uint32_t i = 0; i < layers.size(); ++i) {
    w.str(layers[i]);
    for (const std::uint64_t v : spans.totals_of(i)) w.u64(v);
  }
  const auto ring = spans.ring_spans();
  w.u64(spans.dropped());
  w.u64(ring.size());
  for (const telemetry::Span& s : ring) {
    w.u32(s.layer);
    w.u8(static_cast<std::uint8_t>(s.dir));
    w.time(s.enter);
    w.time(s.exit);
    w.u32(s.payload_bytes);
  }
  w.end_section();
}

void restore_spans(SnapshotReader& r, telemetry::SpanTracer& spans) {
  r.begin_section("telemetry.spans");
  const std::uint64_t nlayers = r.u64();
  for (std::uint64_t i = 0; i < nlayers; ++i) {
    const std::string name = r.str();
    // The fresh graph interned the same boundaries in construction order;
    // intern() is idempotent, so ids line up — verify rather than assume.
    const std::uint32_t id = spans.intern(name);
    if (id != i) {
      throw SnapshotError("snapshot: span layer '" + name +
                          "' interned out of order (restore graph differs "
                          "from the saved one)");
    }
    std::array<std::uint64_t, 4> t;
    for (std::uint64_t& v : t) v = r.u64();
    spans.restore_totals(id, t);
  }
  const std::uint64_t dropped = r.u64();
  const std::uint64_t nring = r.u64();
  std::vector<telemetry::Span> ring;
  ring.reserve(nring);
  for (std::uint64_t i = 0; i < nring; ++i) {
    telemetry::Span s;
    s.layer = r.u32();
    s.dir = static_cast<telemetry::Dir>(r.u8());
    s.enter = r.time();
    s.exit = r.time();
    s.payload_bytes = r.u32();
    ring.push_back(s);
  }
  spans.restore_ring(std::move(ring), dropped);
  r.end_section();
}

void save_flight(SnapshotWriter& w, const telemetry::FlightRecorder& fr) {
  w.begin_section("telemetry.flight");
  w.u16(fr.shard());
  w.u64(fr.total_records());
  const auto records = fr.recent();
  w.u64(records.size());
  for (const telemetry::FlightRecord& rec : records) {
    w.i64(rec.t_ns);
    w.u64(rec.a);
    w.u64(rec.b);
    w.u64(rec.c);
    w.u32(rec.seq);
    w.u16(rec.type);
    w.u16(rec.shard);
    w.str(std::string_view(rec.tag, sizeof rec.tag));
  }
  w.end_section();
}

void restore_flight(SnapshotReader& r, telemetry::FlightRecorder& fr) {
  r.begin_section("telemetry.flight");
  fr.set_shard(r.u16());
  const std::uint64_t total = r.u64();
  const std::uint64_t n = r.u64();
  std::vector<telemetry::FlightRecord> records;
  records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    telemetry::FlightRecord rec;
    rec.t_ns = r.i64();
    rec.a = r.u64();
    rec.b = r.u64();
    rec.c = r.u64();
    rec.seq = r.u32();
    rec.type = r.u16();
    rec.shard = r.u16();
    const std::string tag = r.str();
    if (tag.size() != sizeof rec.tag) {
      throw SnapshotError("snapshot: flight record tag size mismatch");
    }
    std::memcpy(rec.tag, tag.data(), sizeof rec.tag);
    records.push_back(rec);
  }
  fr.restore(records, total);
  r.end_section();
}

void save_link_config(SnapshotWriter& w, const LinkConfig& c) {
  w.f64(c.bandwidth_bps);
  w.dur(c.propagation_delay);
  w.f64(c.loss_rate);
  w.f64(c.corrupt_rate);
  w.u32(static_cast<std::uint32_t>(c.corrupt_bit_flips));
  w.f64(c.duplicate_rate);
  w.dur(c.jitter);
  w.u64(c.queue_limit);
}

LinkConfig restore_link_config(SnapshotReader& r) {
  LinkConfig c;
  c.bandwidth_bps = r.f64();
  c.propagation_delay = r.dur();
  c.loss_rate = r.f64();
  c.corrupt_rate = r.f64();
  c.corrupt_bit_flips = static_cast<int>(r.u32());
  c.duplicate_rate = r.f64();
  c.jitter = r.dur();
  c.queue_limit = r.u64();
  return c;
}

}  // namespace sublayer::sim
