#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/snapshot.hpp"
#include "telemetry/flight_recorder.hpp"

namespace sublayer::sim {

namespace {
constexpr TimePoint kNoDeadline =
    TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
}  // namespace

Simulator::Simulator(EngineKind engine)
    : kind_(engine), engine_(make_engine(engine)) {
  simclock::attach(&now_);
}

Simulator::~Simulator() { simclock::detach(&now_); }

EventId Simulator::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Simulator: scheduling into the past");
  }
  return engine_->schedule(when, std::move(fn));
}

EventId Simulator::schedule_batchable(Duration delay,
                                      std::function<void()> fn) {
  return engine_->schedule(now_ + delay, std::move(fn), true);
}

void Simulator::defer_flush(std::function<void()> fn) {
  flushes_.push_back(std::move(fn));
}

void Simulator::cancel(EventId id) { engine_->cancel(id); }

void Simulator::run_flushes() {
  // Index loop: a flush may register further flushes, growing the vector.
  for (std::size_t i = 0; i < flushes_.size(); ++i) {
    auto fn = std::move(flushes_[i]);
    fn();
  }
  flushes_.clear();
}

bool Simulator::step() {
  TimePoint when;
  EventEngine::Fn fn;
  if (!engine_->pop_if(kNoDeadline, when, fn)) return false;
  now_ = when;
  ++processed_;
  if (auto* fr = telemetry::FlightRecorder::current()) {
    fr->record(telemetry::FlightType::kEvent, "sim.event", when, processed_);
  }
  fn();
  if (!flushes_.empty()) run_flushes();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  TimePoint when;
  // Hoisted: the thread's recorder cannot change under the loop, and the
  // common case (no recorder) must stay one load + branch per event.
  telemetry::FlightRecorder* const fr = telemetry::FlightRecorder::current();
  if (burst_budget_ <= 1) {
    EventEngine::Fn fn;
    while (engine_->pop_if(deadline, when, fn)) {
      now_ = when;
      ++processed_;
      if (fr != nullptr) {
        fr->record(telemetry::FlightType::kEvent, "sim.event", when,
                   processed_);
      }
      fn();
      if (!flushes_.empty()) run_flushes();
    }
  } else {
    // Burst dequeue: each scheduler visit drains up to burst_budget_
    // consecutive same-tick batchable events; flushes registered by the
    // burst (e.g. a link's batched receiver hand-off) run once at its end.
    // Per-event local: fn() may reenter run_until through a nested drain.
    std::vector<EventEngine::Fn> fns;
    while (engine_->pop_ready_batch(deadline, when, fns, burst_budget_) > 0) {
      now_ = when;
      for (auto& fn : fns) {
        ++processed_;
        if (fr != nullptr) {
          fr->record(telemetry::FlightType::kEvent, "sim.event", when,
                     processed_);
        }
        fn();
      }
      if (!flushes_.empty()) run_flushes();
    }
  }
  now_ = std::max(now_, deadline);
}

void Simulator::advance_to(TimePoint when) { now_ = std::max(now_, when); }

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  if (burst_budget_ <= 1) {
    while (n < max_events && step()) ++n;
    return n;
  }
  TimePoint when;
  telemetry::FlightRecorder* const fr = telemetry::FlightRecorder::current();
  std::vector<EventEngine::Fn> fns;
  while (n < max_events) {
    const std::size_t budget = std::min(burst_budget_, max_events - n);
    if (engine_->pop_ready_batch(kNoDeadline, when, fns, budget) == 0) break;
    now_ = when;
    for (auto& fn : fns) {
      ++processed_;
      ++n;
      if (fr != nullptr) {
        fr->record(telemetry::FlightType::kEvent, "sim.event", when,
                   processed_);
      }
      fn();
    }
    if (!flushes_.empty()) run_flushes();
  }
  return n;
}

void Simulator::save(SnapshotWriter& w) const {
  w.begin_section("sim.core");
  w.time(now_);
  w.u64(processed_);
  w.u64(engine_->next_seq());
  const SchedStats& s = engine_->stats();
  w.u64(s.armed);
  w.u64(s.cancelled);
  w.u64(s.stale_cancels);
  w.u64(s.fired);
  w.u64(s.cascades);
  w.u64(s.overflow_arms);
  const auto pending = engine_->pending_events();
  w.u64(pending.size());
  for (const PendingEvent& e : pending) {
    w.u64(e.when_ns);
    w.u64(e.seq);
    w.b(e.batchable);
  }
  w.end_section();
}

void Simulator::restore(SnapshotReader& r) {
  if (processed_ != 0 || engine_->pending() != 0) {
    throw SnapshotError("Simulator: restore into a used simulator");
  }
  r.begin_section("sim.core");
  now_ = r.time();
  processed_ = r.u64();
  engine_->restore_cursor(now_);
  engine_->set_next_seq(r.u64());
  SchedStats s;
  s.armed = r.u64();
  s.cancelled = r.u64();
  s.stale_cancels = r.u64();
  s.fired = r.u64();
  s.cascades = r.u64();
  s.overflow_arms = r.u64();
  engine_->set_stats(s);
  restored_pending_.clear();
  const std::uint64_t n = r.u64();
  restored_pending_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PendingEvent e;
    e.when_ns = r.u64();
    e.seq = r.u64();
    e.batchable = r.b();
    restored_pending_.push_back(e);
  }
  r.end_section();
  restore_open_ = true;
}

void Simulator::finish_restore() {
  if (!restore_open_) {
    throw SnapshotError("Simulator: finish_restore without restore");
  }
  restore_open_ = false;
  const auto rearmed = engine_->pending_events();
  const std::size_t n = std::min(rearmed.size(), restored_pending_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (rearmed[i] != restored_pending_[i]) {
      throw SnapshotError(
          "Simulator: restored pending set diverges at entry " +
          std::to_string(i) + ": saved (t=" +
          std::to_string(restored_pending_[i].when_ns) +
          ", seq=" + std::to_string(restored_pending_[i].seq) +
          "), re-armed (t=" + std::to_string(rearmed[i].when_ns) +
          ", seq=" + std::to_string(rearmed[i].seq) + ")");
    }
  }
  if (rearmed.size() != restored_pending_.size()) {
    throw SnapshotError(
        "Simulator: " + std::to_string(restored_pending_.size()) +
        " events saved but " + std::to_string(rearmed.size()) +
        " re-armed — a pending event has no restoring owner (snapshot not "
        "taken at a quiescent point?)");
  }
  restored_pending_.clear();
  restored_pending_.shrink_to_fit();
}

void Timer::restart(Duration delay) {
  stop();
  deadline_ = sim_.now() + delay;
  arm_at(deadline_, 0);
}

void Timer::arm_at(TimePoint deadline, std::uint64_t restored_seq) {
  armed_ = true;
  auto fire = [this] {
    // Forget the event id BEFORE the callback runs: a stop()/restart()
    // issued by the callback itself — or by anything else at this tick —
    // must not cancel by this (already fired, soon recycled) id.
    pending_ = EventId{};
    armed_ = false;
    on_fire_();
  };
  pending_ = restored_seq == 0
                 ? sim_.schedule_at(deadline, std::move(fire))
                 : sim_.schedule_restored_at(deadline, restored_seq,
                                             std::move(fire));
}

void Timer::save(SnapshotWriter& w) const {
  w.b(armed_);
  if (armed_) {
    w.time(deadline_);
    w.u64(sim_.seq_of(pending_));
  }
}

void Timer::restore(SnapshotReader& r) {
  stop();
  if (r.b()) {
    deadline_ = r.time();
    arm_at(deadline_, r.u64());
  }
}

void Timer::stop() {
  if (pending_ != EventId{}) sim_.cancel(pending_);
  pending_ = EventId{};
  armed_ = false;
}

}  // namespace sublayer::sim
