#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "telemetry/flight_recorder.hpp"

namespace sublayer::sim {

namespace {
constexpr TimePoint kNoDeadline =
    TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
}  // namespace

Simulator::Simulator(EngineKind engine)
    : kind_(engine), engine_(make_engine(engine)) {
  simclock::attach(&now_);
}

Simulator::~Simulator() { simclock::detach(&now_); }

EventId Simulator::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Simulator: scheduling into the past");
  }
  return engine_->schedule(when, std::move(fn));
}

EventId Simulator::schedule_batchable(Duration delay,
                                      std::function<void()> fn) {
  return engine_->schedule(now_ + delay, std::move(fn), true);
}

void Simulator::defer_flush(std::function<void()> fn) {
  flushes_.push_back(std::move(fn));
}

void Simulator::cancel(EventId id) { engine_->cancel(id); }

void Simulator::run_flushes() {
  // Index loop: a flush may register further flushes, growing the vector.
  for (std::size_t i = 0; i < flushes_.size(); ++i) {
    auto fn = std::move(flushes_[i]);
    fn();
  }
  flushes_.clear();
}

bool Simulator::step() {
  TimePoint when;
  EventEngine::Fn fn;
  if (!engine_->pop_if(kNoDeadline, when, fn)) return false;
  now_ = when;
  ++processed_;
  if (auto* fr = telemetry::FlightRecorder::current()) {
    fr->record(telemetry::FlightType::kEvent, "sim.event", when, processed_);
  }
  fn();
  if (!flushes_.empty()) run_flushes();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  TimePoint when;
  // Hoisted: the thread's recorder cannot change under the loop, and the
  // common case (no recorder) must stay one load + branch per event.
  telemetry::FlightRecorder* const fr = telemetry::FlightRecorder::current();
  if (burst_budget_ <= 1) {
    EventEngine::Fn fn;
    while (engine_->pop_if(deadline, when, fn)) {
      now_ = when;
      ++processed_;
      if (fr != nullptr) {
        fr->record(telemetry::FlightType::kEvent, "sim.event", when,
                   processed_);
      }
      fn();
      if (!flushes_.empty()) run_flushes();
    }
  } else {
    // Burst dequeue: each scheduler visit drains up to burst_budget_
    // consecutive same-tick batchable events; flushes registered by the
    // burst (e.g. a link's batched receiver hand-off) run once at its end.
    // Per-event local: fn() may reenter run_until through a nested drain.
    std::vector<EventEngine::Fn> fns;
    while (engine_->pop_ready_batch(deadline, when, fns, burst_budget_) > 0) {
      now_ = when;
      for (auto& fn : fns) {
        ++processed_;
        if (fr != nullptr) {
          fr->record(telemetry::FlightType::kEvent, "sim.event", when,
                     processed_);
        }
        fn();
      }
      if (!flushes_.empty()) run_flushes();
    }
  }
  now_ = std::max(now_, deadline);
}

void Simulator::advance_to(TimePoint when) { now_ = std::max(now_, when); }

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  if (burst_budget_ <= 1) {
    while (n < max_events && step()) ++n;
    return n;
  }
  TimePoint when;
  telemetry::FlightRecorder* const fr = telemetry::FlightRecorder::current();
  std::vector<EventEngine::Fn> fns;
  while (n < max_events) {
    const std::size_t budget = std::min(burst_budget_, max_events - n);
    if (engine_->pop_ready_batch(kNoDeadline, when, fns, budget) == 0) break;
    now_ = when;
    for (auto& fn : fns) {
      ++processed_;
      ++n;
      if (fr != nullptr) {
        fr->record(telemetry::FlightType::kEvent, "sim.event", when,
                   processed_);
      }
      fn();
    }
    if (!flushes_.empty()) run_flushes();
  }
  return n;
}

void Timer::restart(Duration delay) {
  stop();
  armed_ = true;
  pending_ = sim_.schedule(delay, [this] {
    // Forget the event id BEFORE the callback runs: a stop()/restart()
    // issued by the callback itself — or by anything else at this tick —
    // must not cancel by this (already fired, soon recycled) id.
    pending_ = EventId{};
    armed_ = false;
    on_fire_();
  });
}

void Timer::stop() {
  if (pending_ != EventId{}) sim_.cancel(pending_);
  pending_ = EventId{};
  armed_ = false;
}

}  // namespace sublayer::sim
