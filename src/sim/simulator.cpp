#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "telemetry/flight_recorder.hpp"

namespace sublayer::sim {

namespace {
constexpr TimePoint kNoDeadline =
    TimePoint::from_ns(std::numeric_limits<std::int64_t>::max());
}  // namespace

Simulator::Simulator(EngineKind engine)
    : kind_(engine), engine_(make_engine(engine)) {
  simclock::attach(&now_);
}

Simulator::~Simulator() { simclock::detach(&now_); }

EventId Simulator::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Simulator: scheduling into the past");
  }
  return engine_->schedule(when, std::move(fn));
}

void Simulator::cancel(EventId id) { engine_->cancel(id); }

bool Simulator::step() {
  TimePoint when;
  EventEngine::Fn fn;
  if (!engine_->pop_if(kNoDeadline, when, fn)) return false;
  now_ = when;
  ++processed_;
  if (auto* fr = telemetry::FlightRecorder::current()) {
    fr->record(telemetry::FlightType::kEvent, "sim.event", when, processed_);
  }
  fn();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  TimePoint when;
  EventEngine::Fn fn;
  // Hoisted: the thread's recorder cannot change under the loop, and the
  // common case (no recorder) must stay one load + branch per event.
  telemetry::FlightRecorder* const fr = telemetry::FlightRecorder::current();
  while (engine_->pop_if(deadline, when, fn)) {
    now_ = when;
    ++processed_;
    if (fr != nullptr) {
      fr->record(telemetry::FlightType::kEvent, "sim.event", when, processed_);
    }
    fn();
  }
  now_ = std::max(now_, deadline);
}

void Simulator::advance_to(TimePoint when) { now_ = std::max(now_, when); }

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Timer::restart(Duration delay) {
  stop();
  armed_ = true;
  pending_ = sim_.schedule(delay, [this] {
    // Forget the event id BEFORE the callback runs: a stop()/restart()
    // issued by the callback itself — or by anything else at this tick —
    // must not cancel by this (already fired, soon recycled) id.
    pending_ = EventId{};
    armed_ = false;
    on_fire_();
  });
}

void Timer::stop() {
  if (pending_ != EventId{}) sim_.cancel(pending_);
  pending_ = EventId{};
  armed_ = false;
}

}  // namespace sublayer::sim
