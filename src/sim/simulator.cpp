#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace sublayer::sim {

Simulator::Simulator() { simclock::attach(&now_); }

Simulator::~Simulator() { simclock::detach(&now_); }

EventId Simulator::schedule(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw std::logic_error("Simulator: scheduling into the past");
  }
  const std::uint64_t id = next_seq_++;
  queue_.push(Entry{when, id, id, std::move(fn)});
  return EventId{id};
}

void Simulator::cancel(EventId id) {
  if (id.value == 0) return;
  cancelled_ids_.push_back(id.value);
  ++cancelled_;
}

bool Simulator::pop_runnable(Entry& out) {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    const auto it =
        std::find(cancelled_ids_.begin(), cancelled_ids_.end(), e.id);
    if (it != cancelled_ids_.end()) {
      cancelled_ids_.erase(it);
      --cancelled_;
      continue;
    }
    out = std::move(e);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Entry e;
  if (!pop_runnable(e)) return false;
  now_ = e.when;
  ++processed_;
  e.fn();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  Entry e;
  while (pop_runnable(e)) {
    if (e.when > deadline) {
      // Put it back: it belongs to the future beyond the horizon.
      queue_.push(std::move(e));
      break;
    }
    now_ = e.when;
    ++processed_;
    e.fn();
  }
  now_ = std::max(now_, deadline);
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Timer::restart(Duration delay) {
  stop();
  armed_ = true;
  pending_ = sim_.schedule(delay, [this] {
    armed_ = false;
    on_fire_();
  });
}

void Timer::stop() {
  if (armed_) {
    sim_.cancel(pending_);
    armed_ = false;
  }
}

}  // namespace sublayer::sim
