#include "sim/trace.hpp"

#include <cstdio>

namespace sublayer::sim {

std::uint32_t Trace::intern(std::string_view category) {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == category) return i;
  }
  names_.emplace_back(category);
  totals_.emplace_back();
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void Trace::record(TimePoint when, std::string_view category,
                   std::string detail, std::size_t size_bytes) {
  const std::uint32_t id = intern(category);
  ++totals_[id].count;
  totals_[id].bytes += size_bytes;
  ++total_events_;
  if (max_events_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() == max_events_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(TraceEvent{when, id, std::move(detail), size_bytes});
}

std::size_t Trace::count(std::string_view category) const {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == category) return totals_[i].count;
  }
  return 0;
}

std::size_t Trace::total_bytes(std::string_view category) const {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == category) return totals_[i].bytes;
  }
  return 0;
}

void Trace::set_max_events(std::size_t max_events) {
  max_events_ = max_events;
  while (events_.size() > max_events_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::string Trace::to_string(std::size_t max_events) const {
  std::string out;
  std::size_t shown = 0;
  for (const auto& e : events_) {
    if (shown++ >= max_events) {
      out += "  ... (" + std::to_string(events_.size() - max_events) +
             " more)\n";
      break;
    }
    char buf[160];
    std::snprintf(buf, sizeof buf, "  %10.6fs  %-18s %s (%zu B)\n",
                  e.when.to_seconds(), names_[e.category_id].c_str(),
                  e.detail.c_str(), e.size_bytes);
    out += buf;
  }
  return out;
}

void Trace::clear() {
  events_.clear();
  names_.clear();
  totals_.clear();
  total_events_ = 0;
}

}  // namespace sublayer::sim
