#include "sim/trace.hpp"

#include <cstdio>

#include "sim/snapshot.hpp"

namespace sublayer::sim {

std::uint32_t Trace::intern(std::string_view category) {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == category) return i;
  }
  names_.emplace_back(category);
  totals_.emplace_back();
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void Trace::record(TimePoint when, std::string_view category,
                   std::string detail, std::size_t size_bytes) {
  const std::uint32_t id = intern(category);
  ++totals_[id].count;
  totals_[id].bytes += size_bytes;
  ++total_events_;
  if (max_events_ == 0) {
    ++dropped_;
    return;
  }
  if (events_.size() == max_events_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(TraceEvent{when, id, std::move(detail), size_bytes});
}

std::size_t Trace::count(std::string_view category) const {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == category) return totals_[i].count;
  }
  return 0;
}

std::size_t Trace::total_bytes(std::string_view category) const {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == category) return totals_[i].bytes;
  }
  return 0;
}

void Trace::set_max_events(std::size_t max_events) {
  max_events_ = max_events;
  while (events_.size() > max_events_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::string Trace::to_string(std::size_t max_events) const {
  std::string out;
  std::size_t shown = 0;
  for (const auto& e : events_) {
    if (shown++ >= max_events) {
      out += "  ... (" + std::to_string(events_.size() - max_events) +
             " more)\n";
      break;
    }
    char buf[160];
    std::snprintf(buf, sizeof buf, "  %10.6fs  %-18s %s (%zu B)\n",
                  e.when.to_seconds(), names_[e.category_id].c_str(),
                  e.detail.c_str(), e.size_bytes);
    out += buf;
  }
  return out;
}

void Trace::clear() {
  events_.clear();
  names_.clear();
  totals_.clear();
  total_events_ = 0;
}

void Trace::save(SnapshotWriter& w) const {
  w.u64(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    w.str(names_[i]);
    w.u64(totals_[i].count);
    w.u64(totals_[i].bytes);
  }
  w.u64(total_events_);
  w.u64(dropped_.value());
  w.u64(events_.size());
  for (const TraceEvent& e : events_) {
    w.time(e.when);
    w.u32(e.category_id);
    w.str(e.detail);
    w.u64(e.size_bytes);
  }
}

void Trace::restore(SnapshotReader& r) {
  clear();
  const std::uint64_t ncat = r.u64();
  names_.reserve(ncat);
  totals_.reserve(ncat);
  for (std::uint64_t i = 0; i < ncat; ++i) {
    names_.push_back(r.str());
    CategoryTotals t;
    t.count = r.u64();
    t.bytes = r.u64();
    totals_.push_back(t);
  }
  total_events_ = r.u64();
  // Instance-local only: the registry slot for "sim.trace.dropped" is
  // restored wholesale with every other metric.
  dropped_.restore_local(r.u64());
  const std::uint64_t nev = r.u64();
  for (std::uint64_t i = 0; i < nev; ++i) {
    TraceEvent e;
    e.when = r.time();
    e.category_id = r.u32();
    e.detail = r.str();
    e.size_bytes = r.u64();
    events_.push_back(std::move(e));
  }
}

}  // namespace sublayer::sim
