#include "sim/trace.hpp"

#include <cstdio>

namespace sublayer::sim {

std::size_t Trace::count(std::string_view category) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.category == category) ++n;
  }
  return n;
}

std::size_t Trace::total_bytes(std::string_view category) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.category == category) n += e.size_bytes;
  }
  return n;
}

std::string Trace::to_string(std::size_t max_events) const {
  std::string out;
  std::size_t shown = 0;
  for (const auto& e : events_) {
    if (shown++ >= max_events) {
      out += "  ... (" + std::to_string(events_.size() - max_events) +
             " more)\n";
      break;
    }
    char buf[160];
    std::snprintf(buf, sizeof buf, "  %10.6fs  %-18s %s (%zu B)\n",
                  e.when.to_seconds(), e.category.c_str(), e.detail.c_str(),
                  e.size_bytes);
    out += buf;
  }
  return out;
}

}  // namespace sublayer::sim
