// Packet trace recorder: a lightweight tcpdump for the simulator.
//
// Protocol modules append events; tests and benchmarks assert on counts,
// and examples print human-readable timelines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace sublayer::sim {

struct TraceEvent {
  TimePoint when;
  std::string category;  // e.g. "tcp.tx", "arq.retransmit"
  std::string detail;
  std::size_t size_bytes = 0;
};

class Trace {
 public:
  void record(TimePoint when, std::string category, std::string detail,
              std::size_t size_bytes = 0) {
    events_.push_back(
        TraceEvent{when, std::move(category), std::move(detail), size_bytes});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t count(std::string_view category) const;
  std::size_t total_bytes(std::string_view category) const;
  std::string to_string(std::size_t max_events = 100) const;
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace sublayer::sim
