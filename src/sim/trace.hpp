// Packet trace recorder: a lightweight tcpdump for the simulator.
//
// Protocol modules append events; tests and benchmarks assert on counts,
// and examples print human-readable timelines.
//
// Categories are interned to small ids on first use, and per-category
// counts/byte totals are maintained incrementally — count()/total_bytes()
// are O(#categories) lookups (O(1) per category), not scans of the event
// log.  The event buffer itself is bounded (default 64k events, oldest
// evicted first) so long simulations cannot grow it without bound; the
// per-category totals keep counting exactly even after eviction.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "telemetry/metrics.hpp"

namespace sublayer::sim {

class SnapshotWriter;
class SnapshotReader;

struct TraceEvent {
  TimePoint when;
  std::uint32_t category_id = 0;
  std::string detail;
  std::size_t size_bytes = 0;
};

class Trace {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 65536;

  explicit Trace(std::size_t max_events = kDefaultMaxEvents)
      : max_events_(max_events) {
    // Binds to the registry current at construction — the parallel engine
    // constructs each shard's trace under that shard's registry, so
    // eviction counts surface per shard and merge like any counter.
    dropped_.bind("sim.trace.dropped");
  }

  void record(TimePoint when, std::string_view category, std::string detail,
              std::size_t size_bytes = 0);

  const std::deque<TraceEvent>& events() const { return events_; }
  /// The interned name for an event's category_id.
  const std::string& category_name(std::uint32_t id) const {
    return names_[id];
  }

  /// O(1) per category: reads the running total, which covers ALL recorded
  /// events including ones already evicted from the bounded buffer.
  std::size_t count(std::string_view category) const;
  std::size_t total_bytes(std::string_view category) const;

  /// Events recorded over the trace's lifetime (>= events().size() once
  /// the cap has evicted).
  std::size_t total_events() const { return total_events_; }

  /// Events evicted from (or refused by) the bounded buffer; also exported
  /// through the registry as the "sim.trace.dropped" counter.
  std::uint64_t dropped() const { return dropped_.value(); }

  /// Caps the event buffer; shrinking evicts oldest events immediately.
  void set_max_events(std::size_t max_events);
  std::size_t max_events() const { return max_events_; }

  std::string to_string(std::size_t max_events = 100) const;
  void clear();

  /// Checkpoint/restore: interned categories, running totals, the bounded
  /// event buffer, and the drop counter (inline format; the owner brackets
  /// the section).
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  std::uint32_t intern(std::string_view category);

  struct CategoryTotals {
    std::size_t count = 0;
    std::size_t bytes = 0;
  };

  std::deque<TraceEvent> events_;
  std::vector<std::string> names_;
  std::vector<CategoryTotals> totals_;
  std::size_t max_events_;
  std::size_t total_events_ = 0;
  telemetry::Counter dropped_;
};

}  // namespace sublayer::sim
