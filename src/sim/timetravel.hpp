// TimeTravel — checkpoint-based bisection of invariant violations.
//
// A long chaos soak that trips an invariant at event N tells you *that*
// something broke, not *where*.  TimeTravel turns periodic snapshots into a
// debugger: keep checkpoints along the straight run; when a violation (or a
// parallel-engine abort) surfaces, rebuild the world from the latest clean
// checkpoint and binary-search over the event count — re-executing
// deterministically each probe — until the first event whose execution
// flips the violation predicate is isolated.  O(log n) re-executions, each
// from a fresh object graph restored from the same image, so probes cannot
// contaminate each other.
//
// TimeTravel does not know how to build worlds; the caller supplies a
// Factory that restores a fresh world from a snapshot image and exposes
// stepping, the violation predicate, and a flight-recorder dump.  The
// final isolating run re-executes to exactly the offending event and dumps
// the focused flight-recorder window around it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"

namespace sublayer::sim {

class TimeTravel {
 public:
  /// A rebuilt world under bisection control.  Factory-returned worlds
  /// start exactly at their image's snapshot instant.
  class World {
   public:
    virtual ~World() = default;
    /// Steps at most `n` further events (Simulator::run semantics).
    virtual std::size_t run_events(std::size_t n) = 0;
    /// The violation predicate (monotone over a run: once true, stays
    /// true — violations accumulate).
    virtual bool violated() const = 0;
    virtual std::uint64_t events_processed() const = 0;
    virtual TimePoint now() const = 0;
    /// Dumps the world's flight recorder(s); returns the dump path ("" if
    /// dumping is disabled).
    virtual std::string dump_flight(const std::string& reason) = 0;
  };
  using Factory = std::function<std::unique_ptr<World>(const Bytes& image)>;

  struct Checkpoint {
    Bytes image;
    std::uint64_t events = 0;
    TimePoint at;
  };

  struct Result {
    bool isolated = false;
    /// events_processed count of the first offending event: running the
    /// world from `base_events` through this event flips the predicate;
    /// stopping one earlier does not.
    std::uint64_t offending_event = 0;
    TimePoint offending_time;
    /// The clean checkpoint the bisection ran from.
    std::uint64_t base_events = 0;
    std::size_t reexecutions = 0;
    /// Flight-recorder dump of the final isolating run ("" if disabled).
    std::string flight_dump;
  };

  /// Records a checkpoint taken on the straight run.  Checkpoints must be
  /// added in increasing event order.
  void add_checkpoint(Bytes image, std::uint64_t events, TimePoint at);
  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }

  /// Isolates the first offending event given that the predicate was
  /// observed true once the straight run had processed `violated_by`
  /// events.  Walks back to the latest checkpoint that replays clean,
  /// then binary-searches the event range up to `violated_by`.
  Result bisect(const Factory& make_world, std::uint64_t violated_by) const;

 private:
  std::vector<Checkpoint> checkpoints_;
};

}  // namespace sublayer::sim
