#include "sim/medium.hpp"

#include <algorithm>

namespace sublayer::sim {

int BroadcastMedium::attach(FrameHandler on_frame, TxDoneHandler on_tx_done) {
  stations_.push_back(Station{std::move(on_frame), std::move(on_tx_done)});
  return static_cast<int>(stations_.size()) - 1;
}

void BroadcastMedium::transmit(int station, Bytes frame) {
  ++stats_.transmissions;
  const std::uint64_t tx_id = next_tx_id_++;

  // Any overlap collides everyone currently on the wire, including us.
  const bool overlap = !ongoing_.empty();
  for (auto& o : ongoing_) o.collided = true;
  ongoing_.push_back(Ongoing{tx_id, station, overlap});

  const double seconds =
      static_cast<double>(frame.size()) * 8.0 / bandwidth_bps_;
  sim_.schedule(Duration::seconds(seconds),
                [this, tx_id, f = std::move(frame)]() mutable {
                  finish(tx_id, std::move(f));
                });
}

void BroadcastMedium::finish(std::uint64_t tx_id, Bytes frame) {
  const auto it = std::find_if(ongoing_.begin(), ongoing_.end(),
                               [&](const Ongoing& o) { return o.tx_id == tx_id; });
  if (it == ongoing_.end()) return;  // defensive; should not happen
  const Ongoing done = *it;
  ongoing_.erase(it);

  if (done.collided) ++stats_.collisions;

  auto& sender = stations_[static_cast<std::size_t>(done.station)];
  if (sender.on_tx_done) sender.on_tx_done(done.collided);

  if (!done.collided) {
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      if (static_cast<int>(i) == done.station) continue;
      if (stations_[i].on_frame) {
        ++stats_.deliveries;
        stations_[i].on_frame(frame);
      }
    }
  }
}

}  // namespace sublayer::sim
