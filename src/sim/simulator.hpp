// Discrete-event simulator core.
//
// Single-threaded virtual-time event loop.  Everything in the repository
// that "waits" — retransmission timers, link propagation, MAC backoff —
// schedules a closure here.  Determinism: ties on the timestamp are broken
// by insertion order, so a given seed always replays identically.
//
// Internally the queue is a hierarchical timer wheel (see event_engine.hpp)
// with O(1) arm/cancel; the pre-wheel binary heap survives behind
// EngineKind::kLegacyHeap as the benchmark baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/time.hpp"
#include "sim/event_engine.hpp"

namespace sublayer::sim {

class Simulator {
 public:
  /// Construction publishes this simulator's clock through simclock so
  /// telemetry and logging can timestamp without a simulator reference.
  explicit Simulator(EngineKind engine = EngineKind::kTimerWheel);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  EngineKind engine_kind() const { return kind_; }

  /// Schedules `fn` to run `delay` after the current time.
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time (must not be in the past).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown event
  /// is a harmless no-op (protocol timers race with their own firing).
  void cancel(EventId id);

  /// Runs the next pending event.  Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains or `deadline` is passed; the clock
  /// finishes at min(deadline, drain time).
  void run_until(TimePoint deadline);

  /// Runs until the queue drains or `max_events` have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  std::size_t pending_events() const { return engine_->pending(); }
  std::uint64_t events_processed() const { return processed_; }
  /// Arm/cancel/fire counters for the active engine.
  const SchedStats& sched_stats() const { return engine_->stats(); }

 private:
  TimePoint now_;
  EngineKind kind_;
  std::unique_ptr<EventEngine> engine_;
  std::uint64_t processed_ = 0;
};

/// A restartable one-shot timer bound to a simulator — the shape protocol
/// code wants for retransmission and keepalive timers.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}
  ~Timer() { stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer `delay` from now, replacing any pending firing.
  void restart(Duration delay);
  void stop();
  bool armed() const { return armed_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  EventId pending_{};
  bool armed_ = false;
};

}  // namespace sublayer::sim
