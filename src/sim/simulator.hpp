// Discrete-event simulator core.
//
// Single-threaded virtual-time event loop.  Everything in the repository
// that "waits" — retransmission timers, link propagation, MAC backoff —
// schedules a closure here.  Determinism: ties on the timestamp are broken
// by insertion order, so a given seed always replays identically.
//
// Internally the queue is a hierarchical timer wheel (see event_engine.hpp)
// with O(1) arm/cancel; the pre-wheel binary heap survives behind
// EngineKind::kLegacyHeap as the benchmark baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/time.hpp"
#include "sim/event_engine.hpp"

namespace sublayer::sim {

class SnapshotWriter;
class SnapshotReader;

class Simulator {
 public:
  /// Construction publishes this simulator's clock through simclock so
  /// telemetry and logging can timestamp without a simulator reference.
  explicit Simulator(EngineKind engine = EngineKind::kTimerWheel);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  EngineKind engine_kind() const { return kind_; }

  /// Address of this simulator's clock, stable for its lifetime.  The
  /// parallel engine publishes it through simclock on whichever worker
  /// thread is currently running this shard.
  const TimePoint* clock() const { return &now_; }

  /// Schedules `fn` to run `delay` after the current time.
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time (must not be in the past).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Like schedule(), but marks the event *batchable*: when the burst
  /// budget is > 1, the run loop may drain it together with consecutive
  /// same-tick batchable events in one scheduler visit.  Firing order is
  /// unchanged — only per-event flush work registered via defer_flush()
  /// moves to the end of the burst.  Links mark frame deliveries
  /// batchable; protocol timers stay non-batchable.
  EventId schedule_batchable(Duration delay, std::function<void()> fn);

  /// Registers `fn` to run after the current event burst completes, before
  /// the next scheduler visit.  Flushes run in registration order and may
  /// register further flushes (which still run before the next visit).
  /// Outside an event (or with budget 1) the flush runs at the end of the
  /// current/next processed event, preserving per-event semantics.
  void defer_flush(std::function<void()> fn);

  /// Burst dequeue budget: the max number of consecutive same-tick
  /// batchable events one scheduler visit may drain.  1 (default)
  /// reproduces classic one-event-at-a-time stepping exactly.
  void set_burst_budget(std::size_t budget) {
    burst_budget_ = budget == 0 ? 1 : budget;
  }
  std::size_t burst_budget() const { return burst_budget_; }

  /// Cancels a pending event; cancelling an already-fired or unknown event
  /// is a harmless no-op (protocol timers race with their own firing).
  void cancel(EventId id);

  /// Runs the next pending event.  Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains or `deadline` is passed; the clock
  /// finishes at min(deadline, drain time).
  void run_until(TimePoint deadline);

  /// Advances the clock to `when` without running anything; a no-op if the
  /// clock is already past it.  Caller's contract: no pending event may be
  /// due at or before `when` (the parallel engine uses this to align every
  /// shard's clock to a barrier task's time after running the shards
  /// through `when - 1ns`).
  void advance_to(TimePoint when);

  /// A safe lower bound on when the next live event fires: never later
  /// than the true next event, possibly earlier (cancelled husks count).
  /// False when nothing is pending.  Lets the parallel engine fast-forward
  /// epochs across globally idle stretches without running empty epochs
  /// one lookahead at a time.
  bool next_event_bound(TimePoint& when) const {
    return engine_->next_due_bound(when);
  }

  /// Runs until the queue drains or `max_events` have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  std::size_t pending_events() const { return engine_->pending(); }
  std::uint64_t events_processed() const { return processed_; }
  /// Arm/cancel/fire counters for the active engine.
  const SchedStats& sched_stats() const { return engine_->stats(); }

  // ---- checkpoint / restore (see sim/snapshot.hpp for the contract) ----
  /// Saves clock, processed count, scheduler counters, and the full
  /// (when, seq, batchable) pending table.  Valid only at a quiescent
  /// point — in practice, after run_until() has parked.
  void save(SnapshotWriter& w) const;
  /// Restores clock/counters into a freshly constructed simulator (same
  /// engine kind, nothing scheduled) and retains the saved pending table;
  /// modules then re-arm their events, and finish_restore() verifies the
  /// result.
  void restore(SnapshotReader& r);
  /// Verifies the re-armed pending set is identical to the saved one;
  /// throws SnapshotError naming the first divergence otherwise.  Call
  /// after every owning module has restored.
  void finish_restore();

  /// Re-arms an event under its original (when, seq) during restore; the
  /// per-module restore paths use this so post-resume firing order is
  /// bit-identical to the straight-through run.
  EventId schedule_restored_at(TimePoint when, std::uint64_t seq,
                               std::function<void()> fn,
                               bool batchable = false) {
    return engine_->schedule_restored(when, seq, std::move(fn), batchable);
  }
  /// The insertion seq of a live event id (0 if unknown/fired) — how
  /// owners identify their pending events at save time.
  std::uint64_t seq_of(EventId id) const { return engine_->seq_of(id); }

 private:
  /// Runs queued flushes in registration order; a flush may register more
  /// (they still run before this returns).
  void run_flushes();

  TimePoint now_;
  EngineKind kind_;
  std::unique_ptr<EventEngine> engine_;
  std::uint64_t processed_ = 0;
  std::size_t burst_budget_ = 1;
  std::vector<std::function<void()>> flushes_;
  std::vector<PendingEvent> restored_pending_;  // finish_restore's oracle
  bool restore_open_ = false;
};

/// A restartable one-shot timer bound to a simulator — the shape protocol
/// code wants for retransmission and keepalive timers.
///
/// Restart/firing race hardening: the scheduled closure clears `pending_`
/// as its very first action, before invoking the callback.  A stop() or
/// restart() issued from inside the firing (or from any event at the same
/// tick after the firing, including one on the far side of a parallel-epoch
/// barrier) therefore targets EventId{} — a guaranteed no-op — and can
/// neither cancel an unrelated recycled event nor leave `pending_`/`armed_`
/// pointing at a fired event so that a later restart() double-arms.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}
  ~Timer() { stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer `delay` from now, replacing any pending firing.
  void restart(Duration delay);
  void stop();
  bool armed() const { return armed_; }

  /// Saves armed state plus the pending firing's (deadline, seq); restore
  /// re-arms at the original deadline under the original seq, so the
  /// resumed timer fires in exactly its straight-through slot.
  void save(SnapshotWriter& w) const;
  void restore(SnapshotReader& r);

 private:
  void arm_at(TimePoint deadline, std::uint64_t restored_seq);

  Simulator& sim_;
  std::function<void()> on_fire_;
  EventId pending_{};
  TimePoint deadline_;
  bool armed_ = false;
};

}  // namespace sublayer::sim
