// Discrete-event simulator core.
//
// Single-threaded virtual-time event loop.  Everything in the repository
// that "waits" — retransmission timers, link propagation, MAC backoff —
// schedules a closure here.  Determinism: ties on the timestamp are broken
// by insertion order, so a given seed always replays identically.
//
// Internally the queue is a hierarchical timer wheel (see event_engine.hpp)
// with O(1) arm/cancel; the pre-wheel binary heap survives behind
// EngineKind::kLegacyHeap as the benchmark baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/time.hpp"
#include "sim/event_engine.hpp"

namespace sublayer::sim {

class Simulator {
 public:
  /// Construction publishes this simulator's clock through simclock so
  /// telemetry and logging can timestamp without a simulator reference.
  explicit Simulator(EngineKind engine = EngineKind::kTimerWheel);
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  EngineKind engine_kind() const { return kind_; }

  /// Address of this simulator's clock, stable for its lifetime.  The
  /// parallel engine publishes it through simclock on whichever worker
  /// thread is currently running this shard.
  const TimePoint* clock() const { return &now_; }

  /// Schedules `fn` to run `delay` after the current time.
  EventId schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time (must not be in the past).
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown event
  /// is a harmless no-op (protocol timers race with their own firing).
  void cancel(EventId id);

  /// Runs the next pending event.  Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue drains or `deadline` is passed; the clock
  /// finishes at min(deadline, drain time).
  void run_until(TimePoint deadline);

  /// Advances the clock to `when` without running anything; a no-op if the
  /// clock is already past it.  Caller's contract: no pending event may be
  /// due at or before `when` (the parallel engine uses this to align every
  /// shard's clock to a barrier task's time after running the shards
  /// through `when - 1ns`).
  void advance_to(TimePoint when);

  /// A safe lower bound on when the next live event fires: never later
  /// than the true next event, possibly earlier (cancelled husks count).
  /// False when nothing is pending.  Lets the parallel engine fast-forward
  /// epochs across globally idle stretches without running empty epochs
  /// one lookahead at a time.
  bool next_event_bound(TimePoint& when) const {
    return engine_->next_due_bound(when);
  }

  /// Runs until the queue drains or `max_events` have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  std::size_t pending_events() const { return engine_->pending(); }
  std::uint64_t events_processed() const { return processed_; }
  /// Arm/cancel/fire counters for the active engine.
  const SchedStats& sched_stats() const { return engine_->stats(); }

 private:
  TimePoint now_;
  EngineKind kind_;
  std::unique_ptr<EventEngine> engine_;
  std::uint64_t processed_ = 0;
};

/// A restartable one-shot timer bound to a simulator — the shape protocol
/// code wants for retransmission and keepalive timers.
///
/// Restart/firing race hardening: the scheduled closure clears `pending_`
/// as its very first action, before invoking the callback.  A stop() or
/// restart() issued from inside the firing (or from any event at the same
/// tick after the firing, including one on the far side of a parallel-epoch
/// barrier) therefore targets EventId{} — a guaranteed no-op — and can
/// neither cancel an unrelated recycled event nor leave `pending_`/`armed_`
/// pointing at a fired event so that a later restart() double-arms.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}
  ~Timer() { stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer `delay` from now, replacing any pending firing.
  void restart(Duration delay);
  void stop();
  bool armed() const { return armed_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  EventId pending_{};
  bool armed_ = false;
};

}  // namespace sublayer::sim
