#include "sim/event_engine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sublayer::sim {

// ---- WheelEngine -----------------------------------------------------------

WheelEngine::WheelEngine() {
  for (auto& level : heads_) {
    for (auto& head : level) head = kNil;
  }
}

std::uint32_t WheelEngine::alloc_node(std::uint64_t when, Fn fn,
                                      bool batchable) {
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = pool_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Node& n = pool_[idx];
  n.when = when;
  n.seq = next_seq_++;
  n.next = kNil;
  n.cancelled = false;
  n.batchable = batchable;
  n.fn = std::move(fn);
  return idx;
}

void WheelEngine::free_node(std::uint32_t idx) {
  Node& n = pool_[idx];
  if (++n.gen == 0) n.gen = 1;  // keep EventId{0} reserved for "null"
  n.fn = nullptr;
  n.cancelled = false;
  n.next = free_head_;
  free_head_ = idx;
}

void WheelEngine::push_slot(int level, int slot, std::uint32_t idx) {
  pool_[idx].next = heads_[level][slot];
  heads_[level][slot] = idx;
  occupied_[level][slot >> 6] |= 1ull << (slot & 63);
}

void WheelEngine::place(std::uint32_t idx) {
  const Node& n = pool_[idx];
  const std::uint64_t diff = n.when ^ current_;
  if (diff == 0) {
    // Fires at the tick currently being drained; seq keeps it FIFO.
    due_.push_back(idx);
    return;
  }
  const int level = (63 - std::countl_zero(diff)) >> 3;
  if (level >= kLevels) {
    ++stats_.overflow_arms;
    overflow_.push(OverflowRef{n.when, n.seq, idx});
    return;
  }
  push_slot(level, static_cast<int>((n.when >> (8 * level)) & 0xFF), idx);
}

EventId WheelEngine::schedule(TimePoint when, Fn fn, bool batchable) {
  const auto ticks = static_cast<std::uint64_t>(when.ns());
  const std::uint32_t idx = alloc_node(ticks, std::move(fn), batchable);
  ++stats_.armed;
  ++live_;
  place(idx);
  return EventId{(static_cast<std::uint64_t>(pool_[idx].gen) << 32) | idx};
}

void WheelEngine::cancel(EventId id) {
  if (id.value == 0) return;
  const auto idx = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id.value >> 32);
  if (idx >= pool_.size() || pool_[idx].gen != gen || pool_[idx].cancelled) {
    ++stats_.stale_cancels;  // fired, freed, repeated, or never ours: no-op
    return;
  }
  Node& n = pool_[idx];
  n.cancelled = true;
  n.fn = nullptr;  // release the closure now; the husk unlinks lazily
  --live_;
  ++stats_.cancelled;
}

int WheelEngine::next_occupied(int level, int from) const {
  int word = from >> 6;
  std::uint64_t bits = occupied_[level][word] & (~0ull << (from & 63));
  for (;;) {
    if (bits != 0) return (word << 6) + std::countr_zero(bits);
    if (++word == kWords) return -1;
    bits = occupied_[level][word];
  }
}

bool WheelEngine::fill_due(std::uint64_t deadline) {
  for (;;) {
    // Overflow entries whose 2^32 ns block the cursor has entered —
    // whether by draining the wheel or by parking at a run_until deadline
    // inside the block — must be filed into the wheel before any level
    // scan.  A later schedule into the same block lands in the wheel
    // directly, and scanning the wheel first would fire it ahead of the
    // earlier overflow entry (rewinding time).
    while (!overflow_.empty() &&
           ((overflow_.top().when ^ current_) >> 32) == 0) {
      const std::uint32_t idx = overflow_.top().node;
      overflow_.pop();
      if (pool_[idx].cancelled) {
        free_node(idx);
      } else {
        place(idx);
      }
    }
    if (!due_.empty()) {
      // A tick's batch is nearly always one node; sorting restores FIFO
      // among same-time events regardless of which path filed them.
      std::sort(due_.begin(), due_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return pool_[a].seq < pool_[b].seq;
                });
      return true;
    }
    // Level 0: a slot is one exact tick inside the cursor's 256 ns window.
    if (const int slot = next_occupied(0, static_cast<int>(current_ & 0xFF));
        slot >= 0) {
      const std::uint64_t tick =
          (current_ & ~0xFFull) | static_cast<unsigned>(slot);
      if (tick > deadline) {
        // Beyond the horizon: park the cursor at the deadline (never
        // rewinding) and leave the slot for a later call.
        current_ = std::max(current_, deadline);
        return false;
      }
      current_ = tick;
      std::uint32_t idx = heads_[0][slot];
      heads_[0][slot] = kNil;
      occupied_[0][slot >> 6] &= ~(1ull << (slot & 63));
      while (idx != kNil) {
        const std::uint32_t next = pool_[idx].next;
        if (pool_[idx].cancelled) {
          free_node(idx);
        } else {
          due_.push_back(idx);
        }
        idx = next;
      }
      continue;  // may be empty if every node was a cancelled husk
    }
    // Higher levels: cascade the first occupied slot at/after the cursor
    // down one level and rescan.  Slots behind the cursor cannot hold live
    // nodes (their window lies entirely in the past).
    bool cascaded = false;
    for (int level = 1; level < kLevels; ++level) {
      const int cursor =
          static_cast<int>((current_ >> (8 * level)) & 0xFF);
      const int slot = next_occupied(level, cursor);
      if (slot < 0) continue;
      if (slot > cursor) {
        // Jump the cursor to the slot's window start; nothing earlier is
        // occupied at any lower level.
        const std::uint64_t below = (1ull << (8 * (level + 1))) - 1;
        const std::uint64_t window_start =
            (current_ & ~below) |
            (static_cast<std::uint64_t>(slot) << (8 * level));
        if (window_start > deadline) {
          current_ = std::max(current_, deadline);
          return false;  // the whole window lies beyond the horizon
        }
        current_ = window_start;
      }
      std::uint32_t idx = heads_[level][slot];
      heads_[level][slot] = kNil;
      occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
      while (idx != kNil) {
        const std::uint32_t next = pool_[idx].next;
        if (pool_[idx].cancelled) {
          free_node(idx);
        } else {
          ++stats_.cascades;
          place(idx);
        }
        idx = next;
      }
      cascaded = true;
      break;
    }
    if (cascaded) continue;
    // Wheel drained: jump to the overflow's next occupied 2^32 ns block;
    // the block-entry migration at the top of the loop files its entries
    // into the wheel in (when, seq) heap order.
    if (overflow_.empty()) return false;
    if (overflow_.top().when > deadline) {
      current_ = std::max(current_, deadline);
      return false;
    }
    current_ = overflow_.top().when;
  }
}

bool WheelEngine::next_due_bound(TimePoint& when) const {
  if (live_ == 0) return false;  // only husks (or nothing) remain
  // An unconsumed batch fires at the cursor's tick.
  if (due_pos_ < due_.size()) {
    when = TimePoint::from_ns(static_cast<std::int64_t>(current_));
    return true;
  }
  std::uint64_t best = ~0ull;
  // Level 0: slots are exact ticks inside the cursor's 256 ns window.
  if (const int slot = next_occupied(0, static_cast<int>(current_ & 0xFF));
      slot >= 0) {
    best = (current_ & ~0xFFull) | static_cast<unsigned>(slot);
  } else {
    // Higher levels: the first occupied slot's window start is a lower
    // bound on everything filed in it.  A slot at the cursor's own
    // position can hold nodes anywhere in the current window, so the
    // cursor itself is the only safe bound there.
    for (int level = 1; level < kLevels && best == ~0ull; ++level) {
      const int cursor = static_cast<int>((current_ >> (8 * level)) & 0xFF);
      const int slot = next_occupied(level, cursor);
      if (slot < 0) continue;
      if (slot == cursor) {
        best = current_;
      } else {
        const std::uint64_t below = (1ull << (8 * (level + 1))) - 1;
        best = (current_ & ~below) |
               (static_cast<std::uint64_t>(slot) << (8 * level));
      }
    }
  }
  if (!overflow_.empty()) best = std::min(best, overflow_.top().when);
  if (best == ~0ull) return false;  // unreachable while live_ > 0
  when = TimePoint::from_ns(static_cast<std::int64_t>(best));
  return true;
}

bool WheelEngine::pop_if(TimePoint deadline, TimePoint& when, Fn& fn) {
  for (;;) {
    while (due_pos_ < due_.size()) {
      const std::uint32_t idx = due_[due_pos_];
      Node& n = pool_[idx];
      if (n.cancelled) {  // cancelled after the batch was built
        ++due_pos_;
        free_node(idx);
        continue;
      }
      const auto at = TimePoint::from_ns(static_cast<std::int64_t>(n.when));
      if (at > deadline) return false;  // batch stays for a later horizon
      ++due_pos_;
      when = at;
      fn = std::move(n.fn);
      free_node(idx);
      ++stats_.fired;
      --live_;
      return true;
    }
    due_.clear();
    due_pos_ = 0;
    if (!fill_due(static_cast<std::uint64_t>(deadline.ns()))) return false;
  }
}

std::size_t WheelEngine::pop_ready_batch(TimePoint deadline, TimePoint& when,
                                         std::vector<Fn>& out,
                                         std::size_t budget) {
  out.clear();
  for (;;) {
    while (due_pos_ < due_.size()) {
      const std::uint32_t idx = due_[due_pos_];
      Node& n = pool_[idx];
      if (n.cancelled) {  // cancelled after the batch was built
        ++due_pos_;
        free_node(idx);
        continue;
      }
      const auto at = TimePoint::from_ns(static_cast<std::int64_t>(n.when));
      if (at > deadline) return 0;  // batch stays for a later horizon
      when = at;
      const bool head_batchable = n.batchable;
      ++due_pos_;
      out.push_back(std::move(n.fn));
      free_node(idx);
      ++stats_.fired;
      --live_;
      if (!head_batchable) return 1;
      // Extend through consecutive batchable nodes of this tick.  Every
      // entry left in due_ shares the cursor's tick (fill_due migrated the
      // whole tick), so only the batchable flag and the budget gate here;
      // the first non-batchable node ends the burst so its side effects
      // keep their sequenced slot relative to later events.
      while (out.size() < budget && due_pos_ < due_.size()) {
        const std::uint32_t bidx = due_[due_pos_];
        Node& bn = pool_[bidx];
        if (bn.cancelled) {
          ++due_pos_;
          free_node(bidx);
          continue;
        }
        if (!bn.batchable) break;
        ++due_pos_;
        out.push_back(std::move(bn.fn));
        free_node(bidx);
        ++stats_.fired;
        --live_;
      }
      return out.size();
    }
    due_.clear();
    due_pos_ = 0;
    if (!fill_due(static_cast<std::uint64_t>(deadline.ns()))) return 0;
  }
}

EventId WheelEngine::schedule_restored(TimePoint when, std::uint64_t seq,
                                       Fn fn, bool batchable) {
  const auto ticks = static_cast<std::uint64_t>(when.ns());
  if (ticks <= current_) {
    throw std::logic_error(
        "WheelEngine: restored event at or before the cursor");
  }
  // alloc_node stamps (and bumps) next_seq_; the restored event carries
  // its original seq instead, and next_seq_ is owned by set_next_seq.
  const std::uint64_t saved_next = next_seq_;
  const std::uint32_t idx = alloc_node(ticks, std::move(fn), batchable);
  pool_[idx].seq = seq;
  next_seq_ = saved_next;
  ++live_;
  // The original arm already counted this event (set_stats restored that),
  // so a re-arm that lands in the overflow heap must not count it twice.
  const std::uint64_t saved_overflow = stats_.overflow_arms;
  place(idx);
  stats_.overflow_arms = saved_overflow;
  return EventId{(static_cast<std::uint64_t>(pool_[idx].gen) << 32) | idx};
}

std::uint64_t WheelEngine::seq_of(EventId id) const {
  if (id.value == 0) return 0;
  const auto idx = static_cast<std::uint32_t>(id.value & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id.value >> 32);
  if (idx >= pool_.size() || pool_[idx].gen != gen || pool_[idx].cancelled) {
    return 0;
  }
  return pool_[idx].seq;
}

std::vector<PendingEvent> WheelEngine::pending_events() const {
  // Live nodes are exactly those still holding a closure and not
  // cancelled: fired and freed nodes drop fn, cancelled husks drop fn and
  // set the flag, freelist nodes have neither.
  std::vector<PendingEvent> out;
  out.reserve(live_);
  for (const Node& n : pool_) {
    if (n.fn && !n.cancelled) out.push_back({n.when, n.seq, n.batchable});
  }
  std::sort(out.begin(), out.end(), [](const PendingEvent& a,
                                       const PendingEvent& b) {
    return a.when_ns != b.when_ns ? a.when_ns < b.when_ns : a.seq < b.seq;
  });
  return out;
}

void WheelEngine::restore_cursor(TimePoint now) {
  if (live_ != 0) {
    throw std::logic_error("WheelEngine: restore_cursor on non-empty wheel");
  }
  current_ = static_cast<std::uint64_t>(now.ns());
}

// ---- LegacyHeapEngine ------------------------------------------------------

EventId LegacyHeapEngine::schedule(TimePoint when, Fn fn, bool batchable) {
  const std::uint64_t id = next_seq_++;
  queue_.push(Entry{when, id, id, batchable, std::move(fn)});
  ++stats_.armed;
  return EventId{id};
}

void LegacyHeapEngine::cancel(EventId id) {
  if (id.value == 0) return;
  cancelled_ids_.push_back(id.value);
  ++cancelled_;
  ++stats_.cancelled;
}

bool LegacyHeapEngine::next_due_bound(TimePoint& when) const {
  if (pending() == 0) return false;
  // The top may be a cancelled husk, which can only make the bound
  // earlier — still a valid lower bound.
  when = queue_.top().when;
  return true;
}

bool LegacyHeapEngine::pop_if(TimePoint deadline, TimePoint& when, Fn& fn) {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    const auto it =
        std::find(cancelled_ids_.begin(), cancelled_ids_.end(), e.id);
    if (it != cancelled_ids_.end()) {
      cancelled_ids_.erase(it);
      --cancelled_;
      continue;
    }
    if (e.when > deadline) {
      // Put it back: it belongs to the future beyond the horizon.
      queue_.push(std::move(e));
      return false;
    }
    when = e.when;
    fn = std::move(e.fn);
    ++stats_.fired;
    return true;
  }
  return false;
}

std::size_t LegacyHeapEngine::pop_ready_batch(TimePoint deadline,
                                              TimePoint& when,
                                              std::vector<Fn>& out,
                                              std::size_t budget) {
  out.clear();
  bool head_batchable = false;
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    const auto it =
        std::find(cancelled_ids_.begin(), cancelled_ids_.end(), e.id);
    if (it != cancelled_ids_.end()) {
      cancelled_ids_.erase(it);
      --cancelled_;
      continue;
    }
    if (e.when > deadline) {
      queue_.push(std::move(e));
      return 0;
    }
    when = e.when;
    head_batchable = e.batchable;
    out.push_back(std::move(e.fn));
    ++stats_.fired;
    break;
  }
  if (out.empty()) return 0;
  if (!head_batchable) return 1;
  // Extend through consecutive same-tick batchable entries; the heap's
  // (when, seq) order makes them contiguous at the top.  The first
  // non-batchable same-tick entry ends the burst — it fires on the next
  // pop, after this burst's deferred flushes.
  while (out.size() < budget && !queue_.empty()) {
    if (queue_.top().when != when || !queue_.top().batchable) break;
    Entry e = queue_.top();
    queue_.pop();
    const auto it =
        std::find(cancelled_ids_.begin(), cancelled_ids_.end(), e.id);
    if (it != cancelled_ids_.end()) {
      cancelled_ids_.erase(it);
      --cancelled_;
      continue;
    }
    out.push_back(std::move(e.fn));
    ++stats_.fired;
  }
  return out.size();
}

EventId LegacyHeapEngine::schedule_restored(TimePoint when, std::uint64_t seq,
                                            Fn fn, bool batchable) {
  // Heap EventIds ARE insertion sequence numbers, so restoring under the
  // original seq also restores the original cancellation identity.
  queue_.push(Entry{when, seq, seq, batchable, std::move(fn)});
  return EventId{seq};
}

std::uint64_t LegacyHeapEngine::seq_of(EventId id) const { return id.value; }

std::vector<PendingEvent> LegacyHeapEngine::pending_events() const {
  std::vector<PendingEvent> out;
  out.reserve(pending());
  auto queue = queue_;  // Fn is copyable; snapshot-time cost is acceptable
  auto cancelled = cancelled_ids_;
  while (!queue.empty()) {
    const Entry& e = queue.top();
    const auto it = std::find(cancelled.begin(), cancelled.end(), e.id);
    if (it != cancelled.end()) {
      cancelled.erase(it);
    } else {
      out.push_back({static_cast<std::uint64_t>(e.when.ns()), e.seq,
                     e.batchable});
    }
    queue.pop();
  }
  return out;  // heap pops in (when, seq) order already
}

std::unique_ptr<EventEngine> make_engine(EngineKind kind) {
  if (kind == EngineKind::kLegacyHeap) {
    return std::make_unique<LegacyHeapEngine>();
  }
  return std::make_unique<WheelEngine>();
}

}  // namespace sublayer::sim
