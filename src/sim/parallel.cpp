#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <exception>
#include <limits>
#include <stdexcept>
#include <thread>

#include "sim/snapshot.hpp"
#include "telemetry/chrome_trace.hpp"

namespace sublayer::sim {

namespace {

constexpr std::int64_t kFar = std::numeric_limits<std::int64_t>::max();
constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
  return a > kFar - b ? kFar : a + b;
}

}  // namespace

// ---- ShardMap --------------------------------------------------------------

ShardMap::ShardMap(std::size_t shards) : shards_(shards) {
  if (shards == 0) throw std::invalid_argument("ShardMap: zero shards");
}

std::size_t ShardMap::of(std::uint64_t id) const {
  for (const auto& [k, s] : overrides_) {
    if (k == id) return s;
  }
  if (id < plan_.size() && plan_[id] != kUnassigned) return plan_[id];
  return static_cast<std::size_t>(splitmix64(id) % shards_);
}

void ShardMap::assign(std::uint64_t id, std::size_t shard) {
  if (shard >= shards_) throw std::out_of_range("ShardMap::assign");
  for (auto& [k, s] : overrides_) {
    if (k == id) {
      s = shard;
      return;
    }
  }
  overrides_.emplace_back(id, shard);
}

std::size_t ShardMap::edge_cut(const ShardMap& map,
                               const std::vector<TopoEdge>& edges) {
  std::size_t cut = 0;
  for (const TopoEdge& e : edges) {
    if (e.a != e.b && map.of(e.a) != map.of(e.b)) ++cut;
  }
  return cut;
}

ShardMap ShardMap::topology_aware(std::size_t shards, std::uint64_t node_count,
                                  const std::vector<TopoEdge>& edges) {
  ShardMap hash_map(shards);
  const auto n = static_cast<std::size_t>(node_count);
  if (shards <= 1 || n == 0) return hash_map;
  for (const TopoEdge& e : edges) {
    if (e.a >= node_count || e.b >= node_count) {
      throw std::out_of_range("ShardMap::topology_aware: edge endpoint id");
    }
  }

  // Undirected adjacency with parallel edges merged: weight = edge count
  // (each parallel edge would count toward the cut), lat = total latency
  // (lower = tighter coupling; used only to break frontier ties, so the
  // horizon-critical low-latency links stay internal first).
  struct Adj {
    std::size_t node;
    std::size_t weight;
    std::int64_t lat;
  };
  std::vector<std::vector<Adj>> adj(n);
  {
    std::vector<std::map<std::size_t, std::pair<std::size_t, std::int64_t>>>
        acc(n);
    for (const TopoEdge& e : edges) {
      if (e.a == e.b) continue;
      const auto a = static_cast<std::size_t>(e.a);
      const auto b = static_cast<std::size_t>(e.b);
      auto& fwd = acc[a][b];
      fwd.first += 1;
      fwd.second = sat_add(fwd.second, std::max<std::int64_t>(1, e.latency_ns));
      auto& rev = acc[b][a];
      rev.first += 1;
      rev.second = sat_add(rev.second, std::max<std::int64_t>(1, e.latency_ns));
    }
    for (std::size_t v = 0; v < n; ++v) {
      for (const auto& [peer, wl] : acc[v]) {
        adj[v].push_back(Adj{peer, wl.first, wl.second});
      }
    }
  }

  // Phase 1 — greedy BFS region growth: seed each shard at the lowest
  // unassigned id, then repeatedly absorb the unassigned node with the
  // most edges into the region (ties: lower latency into the region, then
  // lower id) until the shard reaches its balanced share of what remains.
  std::vector<std::size_t> plan(n, kUnassigned);
  std::vector<std::size_t> size(shards, 0);
  std::size_t assigned = 0;
  for (std::size_t s = 0; s < shards && assigned < n; ++s) {
    const std::size_t cap = (n - assigned + (shards - s) - 1) / (shards - s);
    std::size_t seed = 0;
    while (plan[seed] != kUnassigned) ++seed;
    std::vector<std::size_t> conn(n, 0);
    std::vector<std::int64_t> conn_lat(n, 0);
    const auto absorb = [&](std::size_t v) {
      plan[v] = s;
      ++size[s];
      ++assigned;
      for (const Adj& a : adj[v]) {
        if (plan[a.node] != kUnassigned) continue;
        conn[a.node] += a.weight;
        conn_lat[a.node] = sat_add(conn_lat[a.node], a.lat);
      }
    };
    absorb(seed);
    while (size[s] < cap && assigned < n) {
      std::size_t best = kUnassigned;
      for (std::size_t v = 0; v < n; ++v) {
        if (plan[v] != kUnassigned || conn[v] == 0) continue;
        if (best == kUnassigned || conn[v] > conn[best] ||
            (conn[v] == conn[best] && conn_lat[v] < conn_lat[best])) {
          best = v;
        }
      }
      if (best == kUnassigned) break;  // region's component exhausted
      absorb(best);
    }
  }
  // Disconnected leftovers (more components than shard seeds): fill the
  // least-loaded shard, lowest id first.
  for (std::size_t v = 0; v < n; ++v) {
    if (plan[v] != kUnassigned) continue;
    std::size_t tgt = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (size[s] < size[tgt]) tgt = s;
    }
    plan[v] = tgt;
    ++size[tgt];
    ++assigned;
  }

  // Phase 2 — bounded Kernighan–Lin/FM-style refinement: move a node to
  // the shard it has strictly more edge weight toward, as long as the
  // destination stays under the balanced ceiling and the source keeps at
  // least one node.  Deterministic: id order, strict improvement, lowest
  // destination shard wins ties.
  const std::size_t cap_hi = (n + shards - 1) / shards;
  for (int pass = 0; pass < 8; ++pass) {
    bool moved = false;
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t cur = plan[v];
      if (size[cur] <= 1) continue;
      std::vector<std::size_t> w(shards, 0);
      for (const Adj& a : adj[v]) w[plan[a.node]] += a.weight;
      std::size_t best = cur;
      for (std::size_t s = 0; s < shards; ++s) {
        if (s == cur || size[s] >= cap_hi) continue;
        if (w[s] > w[best]) best = s;
      }
      if (best != cur) {
        plan[v] = best;
        --size[cur];
        ++size[best];
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Fallback guarantee: never publish a plan that cuts more edges than
  // plain hash placement would.  (This comparison sees the plan as
  // computed; later assign() overrides are the caller's explicit choice
  // and describe() reports their cut live.)
  ShardMap planned(shards);
  planned.plan_ = std::move(plan);
  planned.method_ = "greedy-kl";
  planned.edges_ = edges;
  if (edge_cut(planned, edges) > edge_cut(hash_map, edges)) {
    hash_map.method_ = "hash-fallback";
    return hash_map;
  }
  return planned;
}

std::string ShardMap::describe() const {
  std::string out = method_;
  out += "(shards=" + std::to_string(shards_);
  if (!plan_.empty()) {
    out += ",nodes=" + std::to_string(plan_.size());
    // Recomputed from the retained edge list on every call: edge_cut()
    // goes through of(), so assign() pins applied after planning are
    // reflected — the recorded diagnostics describe the placement
    // actually in force, never a stale plan.
    out += ",edge_cut=" + std::to_string(edge_cut(*this, edges_));
  }
  out += ",overrides=" + std::to_string(overrides_.size());
  out += ")";
  return out;
}

// ---- ShardScope ------------------------------------------------------------

ParallelSimulator::ShardScope::ShardScope(ParallelSimulator& psim,
                                          std::size_t s)
    : prev_metrics_(
          telemetry::MetricsRegistry::set_current(&psim.shard_metrics(s))),
      prev_spans_(telemetry::SpanTracer::set_current(&psim.shard_spans(s))),
      prev_flight_(
          telemetry::FlightRecorder::set_current(&psim.shard_flight(s))),
      clock_(psim.shard(s).clock()) {
  simclock::attach(clock_);
}

ParallelSimulator::ShardScope::~ShardScope() {
  simclock::detach(clock_);
  telemetry::FlightRecorder::set_current(prev_flight_);
  telemetry::SpanTracer::set_current(prev_spans_);
  telemetry::MetricsRegistry::set_current(prev_metrics_);
}

// ---- ParallelSimulator -----------------------------------------------------

ParallelSimulator::ParallelSimulator(ParallelConfig config) {
  if (config.shards == 0) {
    throw std::invalid_argument("ParallelSimulator: zero shards");
  }
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  threads_ = config.threads == 0 ? std::min(config.shards, hw)
                                 : std::min(config.threads, config.shards);
  shards_.reserve(config.shards);
  for (std::size_t s = 0; s < config.shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>(config.engine));
    shards_.back()->set_burst_budget(config.burst_budget);
    metrics_.push_back(std::make_unique<telemetry::MetricsRegistry>());
    spans_.push_back(std::make_unique<telemetry::SpanTracer>());
    flights_.push_back(std::make_unique<telemetry::FlightRecorder>());
    flights_.back()->set_shard(static_cast<std::uint16_t>(s));
    // The trace binds its eviction counter at construction: construct it
    // under the owning shard's registry so "sim.trace.dropped" lands (and
    // merges) per shard.
    auto* prev = telemetry::MetricsRegistry::set_current(metrics_.back().get());
    traces_.push_back(std::make_unique<Trace>());
    telemetry::MetricsRegistry::set_current(prev);
  }
  channels_by_dst_.resize(config.shards);
  post_seq_.assign(config.shards, 0);
  inbound_.resize(config.shards);
  inflight_.resize(config.shards);
  inflight_next_.assign(config.shards, 0);
  committed_ns_.assign(config.shards, -1);
  target_ns_.assign(config.shards, -1);
}

ParallelSimulator::~ParallelSimulator() = default;

std::uint32_t ParallelSimulator::add_channel(std::size_t src_shard,
                                             std::size_t dst_shard,
                                             Duration min_latency,
                                             std::string label,
                                             ChannelDeliver deliver) {
  if (running_) {
    throw std::logic_error("ParallelSimulator: add_channel while running");
  }
  if (src_shard >= shards_.size() || dst_shard >= shards_.size()) {
    throw std::out_of_range("ParallelSimulator: bad channel shard");
  }
  if (min_latency.ns() < 1) {
    throw std::logic_error(
        "ParallelSimulator: cross-shard channels need latency >= 1 ns "
        "(the lookahead) — give the link a nonzero propagation delay");
  }
  const auto id = static_cast<std::uint32_t>(channels_.size());
  channels_.push_back(Channel{src_shard, dst_shard, min_latency,
                              std::move(label), std::move(deliver), {}});
  channels_by_dst_[dst_shard].push_back(id);
  lookahead_ns_ = lookahead_ns_ == 0
                      ? min_latency.ns()
                      : std::min(lookahead_ns_, min_latency.ns());
  auto& in = inbound_[dst_shard];
  const auto it = std::find_if(in.begin(), in.end(), [&](const auto& p) {
    return p.first == src_shard;
  });
  if (it == in.end()) {
    in.emplace_back(src_shard, min_latency.ns());
    std::sort(in.begin(), in.end());
  } else {
    it->second = std::min(it->second, min_latency.ns());
  }
  return id;
}

Duration ParallelSimulator::pair_lookahead(std::size_t src,
                                           std::size_t dst) const {
  for (const auto& [u, lat] : inbound_.at(dst)) {
    if (u == src) return Duration::nanos(lat);
  }
  return Duration::nanos(0);
}

void ParallelSimulator::set_partition_info(std::string info) {
  if (running_) {
    throw std::logic_error(
        "ParallelSimulator: set_partition_info while running");
  }
  partition_info_ = std::move(info);
}

void ParallelSimulator::post(std::uint32_t channel, TimePoint when,
                             Bytes frame) {
  Channel& ch = channels_.at(channel);
  if (when.ns() <= target_ns_[ch.dst]) {
    // A message due inside the destination's current epoch would have to
    // be delivered to a shard that may already be past it: the producing
    // link's latency undercuts the channel's declared minimum.
    throw std::logic_error("ParallelSimulator: post violates lookahead");
  }
  ch.inbox.push_back(Mail{when, post_seq_[ch.src]++, std::move(frame)});
}

void ParallelSimulator::schedule_task(TimePoint when, std::function<void()> fn,
                                      std::size_t shard_scope) {
  if (running_) {
    throw std::logic_error("ParallelSimulator: schedule_task while running");
  }
  // Validate against the whole committed vector, not just cur_ns_ (the
  // min): run-ahead parks shards at *unequal* committed times (after a
  // stop-predicate-terminated run, or a restored v2 snapshot), and a task
  // inside that window would mutate state "at time t" on a shard that
  // already simulated past t — a silent causality violation.
  const std::int64_t frontier =
      *std::max_element(committed_ns_.begin(), committed_ns_.end());
  if (when.ns() <= frontier) {
    throw std::logic_error(
        "ParallelSimulator: task scheduled at or before the committed "
        "frontier (a run-ahead shard has already simulated past it)");
  }
  if (shard_scope != kNoShard && shard_scope >= shards_.size()) {
    throw std::out_of_range("ParallelSimulator: bad task shard");
  }
  tasks_.push_back(Task{when.ns(), shard_scope, std::move(fn)});
}

TimePoint ParallelSimulator::now() const {
  return TimePoint::from_ns(std::max<std::int64_t>(0, cur_ns_));
}

std::uint64_t ParallelSimulator::events_processed() const {
  std::uint64_t n = tasks_run_;
  for (const auto& sh : shards_) n += sh->events_processed();
  return n;
}

std::uint64_t ParallelSimulator::cross_shard_frames() const {
  std::uint64_t n = 0;
  for (const auto s : post_seq_) n += s;
  return n;
}

void ParallelSimulator::drain_shard(std::size_t dst) {
  struct Ref {
    std::int64_t when;
    std::size_t src;
    std::uint64_t seq;
    std::uint32_t ch;
    std::uint32_t idx;
  };
  std::vector<Ref> merged;
  for (const std::uint32_t c : channels_by_dst_[dst]) {
    const Channel& ch = channels_[c];
    for (std::uint32_t i = 0; i < ch.inbox.size(); ++i) {
      merged.push_back(Ref{ch.inbox[i].when.ns(), ch.src, ch.inbox[i].seq, c,
                           i});
    }
  }
  if (merged.empty()) return;
  // The determinism contract: deliveries enter the destination wheel in
  // (time, source shard, per-source sequence) order no matter how many
  // workers produced them or in which interleaving.
  std::sort(merged.begin(), merged.end(), [](const Ref& a, const Ref& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  Simulator& sim = *shards_[dst];
  Trace& trace = *traces_[dst];
  for (const Ref& r : merged) {
    Channel& ch = channels_[r.ch];
    Mail& m = ch.inbox[r.idx];
    trace.record(m.when, ch.label, {}, m.frame.size());
    // Tracked delivery: the frame lives in inflight_ until it fires, so a
    // snapshot taken while it sits in the wheel can serialize and re-arm
    // it (the scheduled closure alone is unrecoverable).
    const std::uint64_t key = inflight_next_[dst]++;
    InFlight& entry =
        inflight_[dst]
            .emplace(key, InFlight{r.ch, m.when, std::move(m.frame), {}})
            .first->second;
    entry.event = sim.schedule_at(m.when, [this, dst, key] {
      auto node = inflight_[dst].extract(key);
      channels_[node.mapped().channel].deliver(std::move(node.mapped().frame));
    });
  }
  for (const std::uint32_t c : channels_by_dst_[dst]) {
    channels_[c].inbox.clear();
  }
  if (chrome_ != nullptr) {
    chrome_->counter(dst, "mailbox_drained", cur_ns_,
                     static_cast<std::int64_t>(merged.size()));
  }
}

void ParallelSimulator::run_shard(std::size_t s) {
  const std::int64_t from_ns = committed_ns_[s];
  const std::int64_t to_ns = target_ns_[s];
  if (to_ns <= from_ns) return;  // horizon-bound laggard neighbor: no-op
  ShardScope scope(*this, s);
  if (chrome_ == nullptr) {
    shards_[s]->run_until(TimePoint::from_ns(to_ns));
    return;
  }
  const std::uint64_t before = shards_[s]->events_processed();
  const auto wall0 = std::chrono::steady_clock::now();
  shards_[s]->run_until(TimePoint::from_ns(to_ns));
  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall0)
                           .count();
  const std::uint64_t events = shards_[s]->events_processed() - before;
  if (events == 0) return;  // idle epochs would drown the trace
  char args[96];
  std::snprintf(args, sizeof args, "\"events\":%llu,\"wall_us\":%.3f",
                static_cast<unsigned long long>(events),
                static_cast<double>(wall_ns) / 1000.0);
  // Virtual-time span + event count are deterministic; the wall time rides
  // along in args, which canonical_json() strips.
  chrome_->complete(s, "epoch", from_ns, to_ns - from_ns, args);
}

void ParallelSimulator::drain_shard_guarded(std::size_t dst) {
  try {
    drain_shard(dst);
  } catch (...) {
    record_error(std::current_exception());
  }
}

void ParallelSimulator::run_shard_guarded(std::size_t s) {
  try {
    run_shard(s);
  } catch (...) {
    record_error(std::current_exception());
  }
}

void ParallelSimulator::record_error(std::exception_ptr e) {
  const std::lock_guard<std::mutex> lock(err_mutex_);
  if (!failed_) {
    failed_ = true;
    error_ = std::move(e);
  }
}

void ParallelSimulator::run_due_tasks() {
  while (tasks_pos_ < tasks_.size() &&
         tasks_[tasks_pos_].when_ns == cur_ns_ + 1) {
    const auto t = TimePoint::from_ns(tasks_[tasks_pos_].when_ns);
    // Align every clock to the task's instant first: every target is
    // capped at the task time minus one tick, so by the time cur_ns_
    // (the min) reaches it, every shard has parked exactly there; faults
    // must observe (and stamp) time t, not t - 1ns, on whichever shard
    // they touch.  Alignment only ever moves clocks forward — a shard
    // already past t would be silently rewound below time it simulated
    // through.  schedule_task rejects tasks inside the committed
    // frontier, so a hole here is an engine invariant violation: fail
    // loudly (record_error — this runs inside the noexcept barrier
    // completion) rather than corrupt determinism.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s]->now().ns() > t.ns()) {
        record_error(std::make_exception_ptr(std::logic_error(
            "ParallelSimulator: task at " + std::to_string(t.ns()) +
            " ns is behind shard " + std::to_string(s) +
            "'s clock — run-ahead task hole")));
        return;
      }
    }
    for (auto& sh : shards_) sh->advance_to(t);
    for (auto& c : committed_ns_) c = t.ns();
    cur_ns_ = t.ns();
    while (tasks_pos_ < tasks_.size() &&
           tasks_[tasks_pos_].when_ns == cur_ns_) {
      Task& task = tasks_[tasks_pos_];
      ++tasks_pos_;
      ++tasks_run_;
      try {
        if (task.shard_scope != kNoShard) {
          ShardScope scope(*this, task.shard_scope);
          task.fn();
        } else {
          task.fn();
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      task.fn = nullptr;
      if (chrome_ != nullptr) {
        chrome_->instant(shards_.size(), "task", cur_ns_);
      }
    }
  }
}

void ParallelSimulator::compute_epoch_targets() {
  const std::int64_t next_task =
      tasks_pos_ < tasks_.size() ? tasks_[tasks_pos_].when_ns : kFar;
  // No target ever crosses a task time: run to the tick before it, so
  // run_due_tasks can align clocks exactly on it.
  const std::int64_t bound =
      std::min(deadline_ns_, next_task == kFar ? kFar : next_task - 1);
  // Global idle bound: nothing anywhere (any shard's wheel, any
  // undelivered mailbox message) can happen before `nb`.
  std::int64_t nb = kFar;
  for (const auto& sh : shards_) {
    TimePoint w;
    if (sh->next_event_bound(w)) nb = std::min(nb, w.ns());
  }
  for (const auto& ch : channels_) {
    for (const auto& m : ch.inbox) nb = std::min(nb, m.when.ns());
  }
  if (nb == kFar) {
    // Globally idle: no shard can fire or send before the bound — one
    // epoch to the bound for everyone.
    for (auto& t : target_ns_) t = bound;
    return;
  }
  // Per-pair conservative horizons (CMB null-message bounds): shard u's
  // next send happens no earlier than max(committed[u] + 1, nb), so its
  // deliveries into s land strictly after base(u) + L(u, s).  Idle
  // fast-forward rides on the same base: a source with nothing pending
  // until nb promises silence until then, widening every horizon it feeds.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::int64_t h = kFar;
    for (const auto& [u, lat] : inbound_[s]) {
      const std::int64_t base = std::max(committed_ns_[u], nb - 1);
      h = std::min(h, sat_add(base, lat));
    }
    std::int64_t t = std::min(h, bound);
    if (t < committed_ns_[s]) t = committed_ns_[s];
    // Run-ahead accounting: the bound, not an inbound horizon, set this
    // shard's target (no inbound pairs, or every horizon beyond the
    // bound) — the shard advanced unthrottled by its neighbors.
    if (t > committed_ns_[s] && h >= bound) ++runahead_epochs_;
    target_ns_[s] = t;
  }
}

void ParallelSimulator::commit_epoch() {
  std::int64_t mn = kFar;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    committed_ns_[s] = target_ns_[s];
    mn = std::min(mn, committed_ns_[s]);
  }
  cur_ns_ = mn;
  ++epochs_;
}

void ParallelSimulator::advance_epoch_state() {
  run_due_tasks();
  if (failed_) {
    done_ = true;
    return;
  }
  try {
    if (stop_ && stop_()) {
      done_ = true;
      return;
    }
  } catch (...) {
    record_error(std::current_exception());
    done_ = true;
    return;
  }
  if (cur_ns_ >= deadline_ns_) {
    done_ = true;
    return;
  }
  compute_epoch_targets();
}

void ParallelSimulator::record_wiring_diagnostics() {
  wiring_recorded_ = true;
  // Distinct unordered shard pairs connected by >= 1 cross-shard channel —
  // the number of throttling pair relationships in the horizon algebra.
  // NOT the topology edge cut (several cut links can collapse onto one
  // shard pair); that lives in the ShardMap::describe() string stamped
  // into parallel_partition below, under its own name.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& ch : channels_) {
    if (ch.src == ch.dst) continue;
    pairs.emplace_back(std::min(ch.src, ch.dst), std::max(ch.src, ch.dst));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  {
    // Wiring facts are pure config — identical at every worker thread
    // count — so they may live in merged_metrics as gauges.  They land in
    // shard 0's registry: gauges merge by sum, so exactly one shard may
    // carry them.  Slots are written absolutely (not through the
    // delta-forwarding Gauge instances) so a restore followed by a resume
    // stays idempotent.
    ShardScope scope(*this, 0);
    auto& reg = telemetry::MetricsRegistry::instance();
    *reg.gauge_slot(reg.intern_gauge("parallel.connected_shard_pairs")) =
        static_cast<std::int64_t>(pairs.size());
    *reg.gauge_slot(reg.intern_gauge("parallel.min_pair_lookahead")) =
        lookahead_ns_;
    *reg.gauge_slot(reg.intern_gauge("parallel.shards")) =
        static_cast<std::int64_t>(shards_.size());
  }
  if (chrome_ == nullptr) return;
  // Metadata survives into canonical_json(), so only configuration facts
  // belong here — never the worker thread count.
  std::string info;
  for (const char c : partition_info_) {
    if (c != '"' && c != '\\') info += c;
  }
  chrome_->metadata(
      shards_.size(), "parallel_partition",
      "\"shards\":" + std::to_string(shards_.size()) +
          ",\"connected_shard_pairs\":" + std::to_string(pairs.size()) +
          ",\"min_pair_lookahead_ns\":" + std::to_string(lookahead_ns_) +
          ",\"partition\":\"" + info + "\"");
  std::string matrix;
  for (std::size_t dst = 0; dst < inbound_.size(); ++dst) {
    for (const auto& [src, lat] : inbound_[dst]) {
      if (!matrix.empty()) matrix += ';';
      matrix += std::to_string(src) + ">" + std::to_string(dst) + "@" +
                std::to_string(lat);
    }
  }
  chrome_->metadata(shards_.size(), "parallel_pair_lookahead",
                    "\"pairs\":\"" + matrix + "\"");
}

void ParallelSimulator::run_until(TimePoint deadline, StopPredicate stop) {
  if (running_) {
    throw std::logic_error("ParallelSimulator: run_until re-entered");
  }
  if (deadline.ns() <= cur_ns_) return;
  running_ = true;
  deadline_ns_ = deadline.ns();
  stop_ = std::move(stop);
  done_ = false;
  if (!wiring_recorded_) record_wiring_diagnostics();
  // Tasks registered since the last run join the queue in (time, insertion
  // order); stable_sort keeps same-instant tasks in registration order.
  std::stable_sort(tasks_.begin() + static_cast<std::ptrdiff_t>(tasks_pos_),
                   tasks_.end(), [](const Task& a, const Task& b) {
                     return a.when_ns < b.when_ns;
                   });
  // Bootstrap: run tasks already due, then compute the first targets.
  advance_epoch_state();

  if (threads_ == 1) {
    // Sequential mode: the exact epoch sequence the workers execute, on
    // the calling thread — the N=1 case of the determinism contract.
    while (!done_) {
      for (std::size_t d = 0; d < shards_.size(); ++d) drain_shard_guarded(d);
      for (std::size_t s = 0; s < shards_.size(); ++s) run_shard_guarded(s);
      commit_epoch();
      advance_epoch_state();
    }
  } else if (!done_) {
    // Two barrier phases per epoch sharing one std::barrier: after the
    // drain handoff (no bookkeeping) and after the run phase (tasks, stop
    // check, next targets) — the completion step runs exactly once per
    // phase with every worker parked.
    drain_barrier_next_ = true;
    auto completion = [this]() noexcept {
      if (drain_barrier_next_) {
        drain_barrier_next_ = false;
        return;
      }
      drain_barrier_next_ = true;
      commit_epoch();
      advance_epoch_state();
    };
    std::barrier sync(static_cast<std::ptrdiff_t>(threads_), completion);
    auto worker = [this, &sync](std::size_t w) {
      // Wall-clock wait spans land in this worker's private lane, flagged
      // non-deterministic (the canonical render drops them).
      const std::size_t wait_lane = shards_.size() + 1 + w;
      const auto wait = [this, &sync, wait_lane] {
        if (chrome_ == nullptr) {
          sync.arrive_and_wait();
          return;
        }
        const std::int64_t at_ns = cur_ns_;
        const auto wall0 = std::chrono::steady_clock::now();
        sync.arrive_and_wait();
        const auto wall_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        chrome_->complete(wait_lane, "barrier_wait", at_ns, wall_ns, {},
                          /*deterministic=*/false);
      };
      while (!done_) {
        for (std::size_t d = w; d < shards_.size(); d += threads_) {
          drain_shard_guarded(d);
        }
        wait();
        for (std::size_t s = w; s < shards_.size(); s += threads_) {
          run_shard_guarded(s);
        }
        wait();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
  }

  {
    // Deterministic across thread counts (the target sequence is), so the
    // gauge may live in merged_metrics next to the wiring facts.  Written
    // absolutely: repeated run_until calls overwrite, never accumulate.
    ShardScope scope(*this, 0);
    auto& reg = telemetry::MetricsRegistry::instance();
    *reg.gauge_slot(reg.intern_gauge("parallel.runahead_shard_epochs")) =
        static_cast<std::int64_t>(runahead_epochs_);
  }
  stop_ = nullptr;
  running_ = false;
  if (failed_) {
    const std::exception_ptr e = error_;
    error_ = nullptr;
    failed_ = false;
    // Black-box the failure: stamp the abort and write the merged rings
    // out (a no-op unless a dump directory is configured).
    flights_[0]->record(telemetry::FlightType::kAbort, "parallel-abort",
                        now());
    telemetry::dump_all_flight_recorders("parallel-abort");
    std::rethrow_exception(e);
  }
}

void ParallelSimulator::attach_chrome_trace(
    telemetry::ChromeTraceWriter* writer) {
  if (running_) {
    throw std::logic_error(
        "ParallelSimulator: attach_chrome_trace while running");
  }
  if (writer != nullptr && writer->lane_count() < chrome_lane_count()) {
    throw std::invalid_argument(
        "ParallelSimulator: writer needs >= chrome_lane_count() lanes");
  }
  chrome_ = writer;
}

// ---- checkpoint / restore --------------------------------------------------

void ParallelSimulator::save(SnapshotWriter& w) const {
  if (running_) {
    throw std::logic_error("ParallelSimulator: save while running");
  }
  w.begin_section("sim.parallel");
  w.u64(shards_.size());
  w.u64(channels_.size());
  w.i64(cur_ns_);
  // Run-ahead parks shards at unequal committed times; the whole horizon
  // vector is state (v2 layout).
  for (const std::int64_t c : committed_ns_) w.i64(c);
  w.u64(runahead_epochs_);
  w.u64(epochs_);
  w.u64(tasks_run_);
  // Pending barrier tasks hold closures, so only their times are saved —
  // the restore graph re-submits them and finish_restore verifies.
  w.u64(tasks_.size() - tasks_pos_);
  for (std::size_t i = tasks_pos_; i < tasks_.size(); ++i) {
    w.i64(tasks_[i].when_ns);
  }
  for (const std::uint64_t s : post_seq_) w.u64(s);
  for (const Channel& ch : channels_) {
    w.u64(ch.inbox.size());
    for (const Mail& m : ch.inbox) {
      w.time(m.when);
      w.u64(m.seq);
      w.blob(m.frame);
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    w.u64(inflight_[s].size());
    for (const auto& [key, entry] : inflight_[s]) {
      w.u32(entry.channel);
      w.time(entry.when);
      w.u64(shards_[s]->seq_of(entry.event));
      w.blob(entry.frame);
    }
  }
  w.end_section();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->save(w);
    save_metrics(w, *metrics_[s]);
    save_spans(w, *spans_[s]);
    save_flight(w, *flights_[s]);
    w.begin_section("sim.trace");
    traces_[s]->save(w);
    w.end_section();
  }
}

void ParallelSimulator::restore(SnapshotReader& r) {
  if (running_) {
    throw std::logic_error("ParallelSimulator: restore while running");
  }
  r.begin_section("sim.parallel");
  if (r.u64() != shards_.size()) {
    throw SnapshotError("ParallelSimulator: shard count mismatch");
  }
  if (r.u64() != channels_.size()) {
    throw SnapshotError("ParallelSimulator: channel count mismatch");
  }
  cur_ns_ = r.i64();
  std::int64_t mn = kFar;
  for (auto& c : committed_ns_) {
    c = r.i64();
    mn = std::min(mn, c);
  }
  if (mn != cur_ns_) {
    throw SnapshotError(
        "ParallelSimulator: committed-horizon vector inconsistent with the "
        "saved clock");
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    target_ns_[s] = committed_ns_[s];
  }
  runahead_epochs_ = r.u64();
  epochs_ = r.u64();
  tasks_run_ = r.u64();
  // Only pending tasks exist on the restore graph (already-run phases are
  // never re-submitted), so the position resets to the front.  The
  // re-submitted plan is verified against these times in finish_restore.
  tasks_pos_ = 0;
  const std::uint64_t npending = r.u64();
  restore_task_times_.clear();
  for (std::uint64_t i = 0; i < npending; ++i) {
    restore_task_times_.push_back(r.i64());
  }
  restore_tasks_check_ = true;
  for (std::uint64_t& s : post_seq_) s = r.u64();
  for (Channel& ch : channels_) {
    ch.inbox.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const TimePoint when = r.time();
      const std::uint64_t seq = r.u64();
      ch.inbox.push_back(Mail{when, seq, r.blob()});
    }
  }
  // In-flight deliveries land in the wheel below, once the shard
  // simulators have restored; stash them until then.
  std::vector<std::vector<InFlight>> inflight(shards_.size());
  std::vector<std::vector<std::uint64_t>> inflight_seq(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint32_t channel = r.u32();
      const TimePoint when = r.time();
      inflight_seq[s].push_back(r.u64());
      inflight[s].push_back(InFlight{channel, when, r.blob(), {}});
    }
  }
  r.end_section();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->restore(r);
    restore_metrics(r, *metrics_[s]);
    restore_spans(r, *spans_[s]);
    restore_flight(r, *flights_[s]);
    r.begin_section("sim.trace");
    traces_[s]->restore(r);
    r.end_section();
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    inflight_[s].clear();
    inflight_next_[s] = 0;
    for (std::size_t i = 0; i < inflight[s].size(); ++i) {
      const std::uint64_t key = inflight_next_[s]++;
      InFlight& entry =
          inflight_[s].emplace(key, std::move(inflight[s][i])).first->second;
      entry.event = shards_[s]->schedule_restored_at(
          entry.when, inflight_seq[s][i], [this, s, key] {
            auto node = inflight_[s].extract(key);
            channels_[node.mapped().channel].deliver(
                std::move(node.mapped().frame));
          });
    }
  }
}

void ParallelSimulator::finish_restore() {
  if (restore_tasks_check_) {
    std::vector<std::int64_t> have;
    for (std::size_t i = tasks_pos_; i < tasks_.size(); ++i) {
      have.push_back(tasks_[i].when_ns);
    }
    std::sort(have.begin(), have.end());
    std::vector<std::int64_t> want = restore_task_times_;
    std::sort(want.begin(), want.end());
    if (have != want) {
      throw SnapshotError(
          "ParallelSimulator: re-submitted barrier tasks diverge from the "
          "snapshot's pending plan (" +
          std::to_string(have.size()) + " tasks vs " +
          std::to_string(want.size()) + " saved)");
    }
    restore_tasks_check_ = false;
    restore_task_times_.clear();
  }
  // A shard parks with its clock exactly on its committed horizon (the
  // run phase finishes with now == target, and task alignment moves both);
  // a restored clock that disagrees means the image and the rebuild graph
  // diverged.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (committed_ns_[s] >= 0 &&
        shards_[s]->now().ns() != committed_ns_[s]) {
      throw SnapshotError(
          "ParallelSimulator: shard " + std::to_string(s) +
          " clock diverges from its committed horizon");
    }
  }
  for (auto& sh : shards_) sh->finish_restore();
}

// ---- merged views ----------------------------------------------------------

std::vector<telemetry::FlightRecord> ParallelSimulator::merged_flight_records()
    const {
  std::vector<const telemetry::FlightRecorder*> recorders;
  recorders.reserve(flights_.size());
  for (const auto& f : flights_) recorders.push_back(f.get());
  return telemetry::FlightRecorder::merge(recorders);
}

telemetry::MetricsSnapshot ParallelSimulator::merged_metrics() const {
  // Merge by name across shard snapshots; each snapshot is already sorted,
  // so accumulate into sorted vectors via lower_bound insertion.
  telemetry::MetricsSnapshot merged;
  const auto counter_at = [&merged](const std::string& name) {
    auto it = std::lower_bound(
        merged.counters.begin(), merged.counters.end(), name,
        [](const auto& p, const std::string& n) { return p.first < n; });
    if (it == merged.counters.end() || it->first != name) {
      it = merged.counters.insert(it, {name, 0});
    }
    return it;
  };
  const auto gauge_at = [&merged](const std::string& name) {
    auto it = std::lower_bound(
        merged.gauges.begin(), merged.gauges.end(), name,
        [](const auto& p, const std::string& n) { return p.first < n; });
    if (it == merged.gauges.end() || it->first != name) {
      it = merged.gauges.insert(it, {name, 0});
    }
    return it;
  };
  for (const auto& reg : metrics_) {
    const telemetry::MetricsSnapshot snap = reg->snapshot();
    for (const auto& [name, value] : snap.counters) {
      counter_at(name)->second += value;
    }
    for (const auto& [name, value] : snap.gauges) {
      gauge_at(name)->second += value;
    }
    for (const auto& h : snap.histograms) {
      auto it = std::lower_bound(
          merged.histograms.begin(), merged.histograms.end(), h.name,
          [](const auto& a, const std::string& n) { return a.name < n; });
      if (it == merged.histograms.end() || it->name != h.name) {
        merged.histograms.insert(it, h);
        continue;
      }
      it->data.merge(h.data);
    }
  }
  return merged;
}

std::vector<std::string> ParallelSimulator::merged_span_layers() const {
  std::vector<std::string> layers;
  for (const auto& t : spans_) {
    for (const auto& name : t->layers()) layers.push_back(name);
  }
  std::sort(layers.begin(), layers.end());
  layers.erase(std::unique(layers.begin(), layers.end()), layers.end());
  return layers;
}

std::uint64_t ParallelSimulator::merged_crossings(std::string_view layer,
                                                  telemetry::Dir dir) const {
  std::uint64_t n = 0;
  for (const auto& t : spans_) n += t->crossings(layer, dir);
  return n;
}

std::uint64_t ParallelSimulator::merged_crossing_bytes(
    std::string_view layer, telemetry::Dir dir) const {
  std::uint64_t n = 0;
  for (const auto& t : spans_) n += t->crossing_bytes(layer, dir);
  return n;
}

std::string ParallelSimulator::cross_shard_trace_log() const {
  struct Line {
    std::int64_t when;
    std::size_t shard;
    std::size_t idx;  // drain order within the shard's trace
  };
  std::vector<Line> lines;
  for (std::size_t s = 0; s < traces_.size(); ++s) {
    const auto& events = traces_[s]->events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      lines.push_back(Line{events[i].when.ns(), s, i});
    }
  }
  // Per-shard drain order is chronological only per drain batch (a jittery
  // frame can be posted late for an early time); a global (time, shard)
  // sort makes the log comparable across runs regardless of batching.
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.idx < b.idx;
  });
  std::string out;
  out.reserve(lines.size() * 48);
  for (const Line& l : lines) {
    const TraceEvent& e = traces_[l.shard]->events()[l.idx];
    out += std::to_string(l.when);
    out += ' ';
    out += 's' + std::to_string(l.shard);
    out += ' ';
    out += traces_[l.shard]->category_name(e.category_id);
    out += ' ';
    out += std::to_string(e.size_bytes);
    out += '\n';
  }
  return out;
}

}  // namespace sublayer::sim
