#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <thread>

#include "sim/snapshot.hpp"
#include "telemetry/chrome_trace.hpp"

namespace sublayer::sim {

namespace {

constexpr std::int64_t kFar = std::numeric_limits<std::int64_t>::max();

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

// ---- ShardMap --------------------------------------------------------------

ShardMap::ShardMap(std::size_t shards) : shards_(shards) {
  if (shards == 0) throw std::invalid_argument("ShardMap: zero shards");
}

std::size_t ShardMap::of(std::uint64_t id) const {
  for (const auto& [k, s] : overrides_) {
    if (k == id) return s;
  }
  return static_cast<std::size_t>(splitmix64(id) % shards_);
}

void ShardMap::assign(std::uint64_t id, std::size_t shard) {
  if (shard >= shards_) throw std::out_of_range("ShardMap::assign");
  for (auto& [k, s] : overrides_) {
    if (k == id) {
      s = shard;
      return;
    }
  }
  overrides_.emplace_back(id, shard);
}

// ---- ShardScope ------------------------------------------------------------

ParallelSimulator::ShardScope::ShardScope(ParallelSimulator& psim,
                                          std::size_t s)
    : prev_metrics_(
          telemetry::MetricsRegistry::set_current(&psim.shard_metrics(s))),
      prev_spans_(telemetry::SpanTracer::set_current(&psim.shard_spans(s))),
      prev_flight_(
          telemetry::FlightRecorder::set_current(&psim.shard_flight(s))),
      clock_(psim.shard(s).clock()) {
  simclock::attach(clock_);
}

ParallelSimulator::ShardScope::~ShardScope() {
  simclock::detach(clock_);
  telemetry::FlightRecorder::set_current(prev_flight_);
  telemetry::SpanTracer::set_current(prev_spans_);
  telemetry::MetricsRegistry::set_current(prev_metrics_);
}

// ---- ParallelSimulator -----------------------------------------------------

ParallelSimulator::ParallelSimulator(ParallelConfig config) {
  if (config.shards == 0) {
    throw std::invalid_argument("ParallelSimulator: zero shards");
  }
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  threads_ = config.threads == 0 ? std::min(config.shards, hw)
                                 : std::min(config.threads, config.shards);
  shards_.reserve(config.shards);
  for (std::size_t s = 0; s < config.shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>(config.engine));
    shards_.back()->set_burst_budget(config.burst_budget);
    metrics_.push_back(std::make_unique<telemetry::MetricsRegistry>());
    spans_.push_back(std::make_unique<telemetry::SpanTracer>());
    flights_.push_back(std::make_unique<telemetry::FlightRecorder>());
    flights_.back()->set_shard(static_cast<std::uint16_t>(s));
    // The trace binds its eviction counter at construction: construct it
    // under the owning shard's registry so "sim.trace.dropped" lands (and
    // merges) per shard.
    auto* prev = telemetry::MetricsRegistry::set_current(metrics_.back().get());
    traces_.push_back(std::make_unique<Trace>());
    telemetry::MetricsRegistry::set_current(prev);
  }
  channels_by_dst_.resize(config.shards);
  post_seq_.assign(config.shards, 0);
  inflight_.resize(config.shards);
  inflight_next_.assign(config.shards, 0);
}

ParallelSimulator::~ParallelSimulator() = default;

std::uint32_t ParallelSimulator::add_channel(std::size_t src_shard,
                                             std::size_t dst_shard,
                                             Duration min_latency,
                                             std::string label,
                                             ChannelDeliver deliver) {
  if (running_) {
    throw std::logic_error("ParallelSimulator: add_channel while running");
  }
  if (src_shard >= shards_.size() || dst_shard >= shards_.size()) {
    throw std::out_of_range("ParallelSimulator: bad channel shard");
  }
  if (min_latency.ns() < 1) {
    throw std::logic_error(
        "ParallelSimulator: cross-shard channels need latency >= 1 ns "
        "(the lookahead) — give the link a nonzero propagation delay");
  }
  const auto id = static_cast<std::uint32_t>(channels_.size());
  channels_.push_back(Channel{src_shard, dst_shard, min_latency,
                              std::move(label), std::move(deliver), {}});
  channels_by_dst_[dst_shard].push_back(id);
  lookahead_ns_ = lookahead_ns_ == 0
                      ? min_latency.ns()
                      : std::min(lookahead_ns_, min_latency.ns());
  return id;
}

void ParallelSimulator::post(std::uint32_t channel, TimePoint when,
                             Bytes frame) {
  Channel& ch = channels_.at(channel);
  if (when.ns() <= epoch_end_ns_) {
    // A message due inside the epoch that produced it would have to be
    // delivered to a shard that may already be past it: the producing
    // link's latency undercuts the channel's declared minimum.
    throw std::logic_error("ParallelSimulator: post violates lookahead");
  }
  ch.inbox.push_back(Mail{when, post_seq_[ch.src]++, std::move(frame)});
}

void ParallelSimulator::schedule_task(TimePoint when, std::function<void()> fn,
                                      std::size_t shard_scope) {
  if (running_) {
    throw std::logic_error("ParallelSimulator: schedule_task while running");
  }
  if (when.ns() <= cur_ns_) {
    throw std::logic_error("ParallelSimulator: task scheduled into the past");
  }
  if (shard_scope != kNoShard && shard_scope >= shards_.size()) {
    throw std::out_of_range("ParallelSimulator: bad task shard");
  }
  tasks_.push_back(Task{when.ns(), shard_scope, std::move(fn)});
}

TimePoint ParallelSimulator::now() const {
  return TimePoint::from_ns(std::max<std::int64_t>(0, cur_ns_));
}

std::uint64_t ParallelSimulator::events_processed() const {
  std::uint64_t n = tasks_run_;
  for (const auto& sh : shards_) n += sh->events_processed();
  return n;
}

std::uint64_t ParallelSimulator::cross_shard_frames() const {
  std::uint64_t n = 0;
  for (const auto s : post_seq_) n += s;
  return n;
}

void ParallelSimulator::drain_shard(std::size_t dst) {
  struct Ref {
    std::int64_t when;
    std::size_t src;
    std::uint64_t seq;
    std::uint32_t ch;
    std::uint32_t idx;
  };
  std::vector<Ref> merged;
  for (const std::uint32_t c : channels_by_dst_[dst]) {
    const Channel& ch = channels_[c];
    for (std::uint32_t i = 0; i < ch.inbox.size(); ++i) {
      merged.push_back(Ref{ch.inbox[i].when.ns(), ch.src, ch.inbox[i].seq, c,
                           i});
    }
  }
  if (merged.empty()) return;
  // The determinism contract: deliveries enter the destination wheel in
  // (time, source shard, per-source sequence) order no matter how many
  // workers produced them or in which interleaving.
  std::sort(merged.begin(), merged.end(), [](const Ref& a, const Ref& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  Simulator& sim = *shards_[dst];
  Trace& trace = *traces_[dst];
  for (const Ref& r : merged) {
    Channel& ch = channels_[r.ch];
    Mail& m = ch.inbox[r.idx];
    trace.record(m.when, ch.label, {}, m.frame.size());
    // Tracked delivery: the frame lives in inflight_ until it fires, so a
    // snapshot taken while it sits in the wheel can serialize and re-arm
    // it (the scheduled closure alone is unrecoverable).
    const std::uint64_t key = inflight_next_[dst]++;
    InFlight& entry =
        inflight_[dst]
            .emplace(key, InFlight{r.ch, m.when, std::move(m.frame), {}})
            .first->second;
    entry.event = sim.schedule_at(m.when, [this, dst, key] {
      auto node = inflight_[dst].extract(key);
      channels_[node.mapped().channel].deliver(std::move(node.mapped().frame));
    });
  }
  for (const std::uint32_t c : channels_by_dst_[dst]) {
    channels_[c].inbox.clear();
  }
  if (chrome_ != nullptr) {
    chrome_->counter(dst, "mailbox_drained", cur_ns_,
                     static_cast<std::int64_t>(merged.size()));
  }
}

void ParallelSimulator::run_shard(std::size_t s) {
  ShardScope scope(*this, s);
  if (chrome_ == nullptr) {
    shards_[s]->run_until(TimePoint::from_ns(epoch_end_ns_));
    return;
  }
  const std::int64_t from_ns = cur_ns_;
  const std::uint64_t before = shards_[s]->events_processed();
  const auto wall0 = std::chrono::steady_clock::now();
  shards_[s]->run_until(TimePoint::from_ns(epoch_end_ns_));
  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall0)
                           .count();
  const std::uint64_t events = shards_[s]->events_processed() - before;
  if (events == 0) return;  // idle epochs would drown the trace
  char args[96];
  std::snprintf(args, sizeof args, "\"events\":%llu,\"wall_us\":%.3f",
                static_cast<unsigned long long>(events),
                static_cast<double>(wall_ns) / 1000.0);
  // Virtual-time span + event count are deterministic; the wall time rides
  // along in args, which canonical_json() strips.
  chrome_->complete(s, "epoch", from_ns, epoch_end_ns_ - from_ns, args);
}

void ParallelSimulator::drain_shard_guarded(std::size_t dst) {
  try {
    drain_shard(dst);
  } catch (...) {
    record_error(std::current_exception());
  }
}

void ParallelSimulator::run_shard_guarded(std::size_t s) {
  try {
    run_shard(s);
  } catch (...) {
    record_error(std::current_exception());
  }
}

void ParallelSimulator::record_error(std::exception_ptr e) {
  const std::lock_guard<std::mutex> lock(err_mutex_);
  if (!failed_) {
    failed_ = true;
    error_ = std::move(e);
  }
}

void ParallelSimulator::run_due_tasks() {
  while (tasks_pos_ < tasks_.size() &&
         tasks_[tasks_pos_].when_ns == cur_ns_ + 1) {
    const auto t = TimePoint::from_ns(tasks_[tasks_pos_].when_ns);
    // Align every clock to the task's instant first: the epoch ended one
    // tick short of it, and faults must observe (and stamp) time t, not
    // t - 1ns, on whichever shard they touch.
    for (auto& sh : shards_) sh->advance_to(t);
    cur_ns_ = t.ns();
    while (tasks_pos_ < tasks_.size() &&
           tasks_[tasks_pos_].when_ns == cur_ns_) {
      Task& task = tasks_[tasks_pos_];
      ++tasks_pos_;
      ++tasks_run_;
      try {
        if (task.shard_scope != kNoShard) {
          ShardScope scope(*this, task.shard_scope);
          task.fn();
        } else {
          task.fn();
        }
      } catch (...) {
        record_error(std::current_exception());
      }
      task.fn = nullptr;
      if (chrome_ != nullptr) {
        chrome_->instant(shards_.size(), "task", cur_ns_);
      }
    }
  }
}

void ParallelSimulator::compute_next_epoch() {
  const std::int64_t next_task =
      tasks_pos_ < tasks_.size() ? tasks_[tasks_pos_].when_ns : kFar;
  // The horizon never crosses a task time: run to the tick before it, so
  // run_due_tasks can align clocks exactly on it.
  const std::int64_t bound =
      std::min(deadline_ns_, next_task == kFar ? kFar : next_task - 1);
  // Idle fast-forward: nothing anywhere can happen before `nb` (a safe
  // lower bound over every shard's wheel and every undelivered mailbox
  // message), so start the lookahead window just below it instead of
  // crawling through empty epochs one L at a time.
  std::int64_t nb = kFar;
  for (const auto& sh : shards_) {
    TimePoint w;
    if (sh->next_event_bound(w)) nb = std::min(nb, w.ns());
  }
  for (const auto& ch : channels_) {
    for (const auto& m : ch.inbox) nb = std::min(nb, m.when.ns());
  }
  if (nb == kFar || lookahead_ns_ == 0) {
    // Globally idle (nothing will ever fire before the bound) or no
    // cross-shard edges (infinite lookahead): one epoch to the bound.
    epoch_end_ns_ = bound;
    return;
  }
  const std::int64_t jump = std::max(cur_ns_, nb - 1);
  epoch_end_ns_ =
      jump >= bound ? bound
                    : (lookahead_ns_ > bound - jump ? bound
                                                    : jump + lookahead_ns_);
}

void ParallelSimulator::advance_epoch_state() {
  run_due_tasks();
  if (failed_) {
    done_ = true;
    return;
  }
  try {
    if (stop_ && stop_()) {
      done_ = true;
      return;
    }
  } catch (...) {
    record_error(std::current_exception());
    done_ = true;
    return;
  }
  if (cur_ns_ >= deadline_ns_) {
    done_ = true;
    return;
  }
  compute_next_epoch();
}

void ParallelSimulator::run_until(TimePoint deadline, StopPredicate stop) {
  if (running_) {
    throw std::logic_error("ParallelSimulator: run_until re-entered");
  }
  if (deadline.ns() <= cur_ns_) return;
  running_ = true;
  deadline_ns_ = deadline.ns();
  stop_ = std::move(stop);
  done_ = false;
  // Tasks registered since the last run join the queue in (time, insertion
  // order); stable_sort keeps same-instant tasks in registration order.
  std::stable_sort(tasks_.begin() + static_cast<std::ptrdiff_t>(tasks_pos_),
                   tasks_.end(), [](const Task& a, const Task& b) {
                     return a.when_ns < b.when_ns;
                   });
  // Bootstrap: run tasks already due, then compute the first horizon.
  advance_epoch_state();

  if (threads_ == 1) {
    // Sequential mode: the exact epoch sequence the workers execute, on
    // the calling thread — the N=1 case of the determinism contract.
    while (!done_) {
      for (std::size_t d = 0; d < shards_.size(); ++d) drain_shard_guarded(d);
      for (std::size_t s = 0; s < shards_.size(); ++s) run_shard_guarded(s);
      cur_ns_ = epoch_end_ns_;
      ++epochs_;
      advance_epoch_state();
    }
  } else if (!done_) {
    // Two barrier phases per epoch sharing one std::barrier: after the
    // drain handoff (no bookkeeping) and after the run phase (tasks, stop
    // check, next horizon) — the completion step runs exactly once per
    // phase with every worker parked.
    drain_barrier_next_ = true;
    auto completion = [this]() noexcept {
      if (drain_barrier_next_) {
        drain_barrier_next_ = false;
        return;
      }
      drain_barrier_next_ = true;
      cur_ns_ = epoch_end_ns_;
      ++epochs_;
      advance_epoch_state();
    };
    std::barrier sync(static_cast<std::ptrdiff_t>(threads_), completion);
    auto worker = [this, &sync](std::size_t w) {
      // Wall-clock wait spans land in this worker's private lane, flagged
      // non-deterministic (the canonical render drops them).
      const std::size_t wait_lane = shards_.size() + 1 + w;
      const auto wait = [this, &sync, wait_lane] {
        if (chrome_ == nullptr) {
          sync.arrive_and_wait();
          return;
        }
        const std::int64_t at_ns = cur_ns_;
        const auto wall0 = std::chrono::steady_clock::now();
        sync.arrive_and_wait();
        const auto wall_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        chrome_->complete(wait_lane, "barrier_wait", at_ns, wall_ns, {},
                          /*deterministic=*/false);
      };
      while (!done_) {
        for (std::size_t d = w; d < shards_.size(); d += threads_) {
          drain_shard_guarded(d);
        }
        wait();
        for (std::size_t s = w; s < shards_.size(); s += threads_) {
          run_shard_guarded(s);
        }
        wait();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w) pool.emplace_back(worker, w);
    for (auto& t : pool) t.join();
  }

  stop_ = nullptr;
  running_ = false;
  if (failed_) {
    const std::exception_ptr e = error_;
    error_ = nullptr;
    failed_ = false;
    // Black-box the failure: stamp the abort and write the merged rings
    // out (a no-op unless a dump directory is configured).
    flights_[0]->record(telemetry::FlightType::kAbort, "parallel-abort",
                        now());
    telemetry::dump_all_flight_recorders("parallel-abort");
    std::rethrow_exception(e);
  }
}

void ParallelSimulator::attach_chrome_trace(
    telemetry::ChromeTraceWriter* writer) {
  if (running_) {
    throw std::logic_error(
        "ParallelSimulator: attach_chrome_trace while running");
  }
  if (writer != nullptr && writer->lane_count() < chrome_lane_count()) {
    throw std::invalid_argument(
        "ParallelSimulator: writer needs >= chrome_lane_count() lanes");
  }
  chrome_ = writer;
}

// ---- checkpoint / restore --------------------------------------------------

void ParallelSimulator::save(SnapshotWriter& w) const {
  if (running_) {
    throw std::logic_error("ParallelSimulator: save while running");
  }
  w.begin_section("sim.parallel");
  w.u64(shards_.size());
  w.u64(channels_.size());
  w.i64(cur_ns_);
  w.u64(epochs_);
  w.u64(tasks_run_);
  // Pending barrier tasks hold closures, so only their times are saved —
  // the restore graph re-submits them and finish_restore verifies.
  w.u64(tasks_.size() - tasks_pos_);
  for (std::size_t i = tasks_pos_; i < tasks_.size(); ++i) {
    w.i64(tasks_[i].when_ns);
  }
  for (const std::uint64_t s : post_seq_) w.u64(s);
  for (const Channel& ch : channels_) {
    w.u64(ch.inbox.size());
    for (const Mail& m : ch.inbox) {
      w.time(m.when);
      w.u64(m.seq);
      w.blob(m.frame);
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    w.u64(inflight_[s].size());
    for (const auto& [key, entry] : inflight_[s]) {
      w.u32(entry.channel);
      w.time(entry.when);
      w.u64(shards_[s]->seq_of(entry.event));
      w.blob(entry.frame);
    }
  }
  w.end_section();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->save(w);
    save_metrics(w, *metrics_[s]);
    save_spans(w, *spans_[s]);
    save_flight(w, *flights_[s]);
    w.begin_section("sim.trace");
    traces_[s]->save(w);
    w.end_section();
  }
}

void ParallelSimulator::restore(SnapshotReader& r) {
  if (running_) {
    throw std::logic_error("ParallelSimulator: restore while running");
  }
  r.begin_section("sim.parallel");
  if (r.u64() != shards_.size()) {
    throw SnapshotError("ParallelSimulator: shard count mismatch");
  }
  if (r.u64() != channels_.size()) {
    throw SnapshotError("ParallelSimulator: channel count mismatch");
  }
  cur_ns_ = r.i64();
  epochs_ = r.u64();
  tasks_run_ = r.u64();
  // Only pending tasks exist on the restore graph (already-run phases are
  // never re-submitted), so the position resets to the front.  The
  // re-submitted plan is verified against these times in finish_restore.
  tasks_pos_ = 0;
  const std::uint64_t npending = r.u64();
  restore_task_times_.clear();
  for (std::uint64_t i = 0; i < npending; ++i) {
    restore_task_times_.push_back(r.i64());
  }
  restore_tasks_check_ = true;
  for (std::uint64_t& s : post_seq_) s = r.u64();
  for (Channel& ch : channels_) {
    ch.inbox.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const TimePoint when = r.time();
      const std::uint64_t seq = r.u64();
      ch.inbox.push_back(Mail{when, seq, r.blob()});
    }
  }
  // In-flight deliveries land in the wheel below, once the shard
  // simulators have restored; stash them until then.
  std::vector<std::vector<InFlight>> inflight(shards_.size());
  std::vector<std::vector<std::uint64_t>> inflight_seq(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint32_t channel = r.u32();
      const TimePoint when = r.time();
      inflight_seq[s].push_back(r.u64());
      inflight[s].push_back(InFlight{channel, when, r.blob(), {}});
    }
  }
  r.end_section();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->restore(r);
    restore_metrics(r, *metrics_[s]);
    restore_spans(r, *spans_[s]);
    restore_flight(r, *flights_[s]);
    r.begin_section("sim.trace");
    traces_[s]->restore(r);
    r.end_section();
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    inflight_[s].clear();
    inflight_next_[s] = 0;
    for (std::size_t i = 0; i < inflight[s].size(); ++i) {
      const std::uint64_t key = inflight_next_[s]++;
      InFlight& entry =
          inflight_[s].emplace(key, std::move(inflight[s][i])).first->second;
      entry.event = shards_[s]->schedule_restored_at(
          entry.when, inflight_seq[s][i], [this, s, key] {
            auto node = inflight_[s].extract(key);
            channels_[node.mapped().channel].deliver(
                std::move(node.mapped().frame));
          });
    }
  }
}

void ParallelSimulator::finish_restore() {
  if (restore_tasks_check_) {
    std::vector<std::int64_t> have;
    for (std::size_t i = tasks_pos_; i < tasks_.size(); ++i) {
      have.push_back(tasks_[i].when_ns);
    }
    std::sort(have.begin(), have.end());
    std::vector<std::int64_t> want = restore_task_times_;
    std::sort(want.begin(), want.end());
    if (have != want) {
      throw SnapshotError(
          "ParallelSimulator: re-submitted barrier tasks diverge from the "
          "snapshot's pending plan (" +
          std::to_string(have.size()) + " tasks vs " +
          std::to_string(want.size()) + " saved)");
    }
    restore_tasks_check_ = false;
    restore_task_times_.clear();
  }
  for (auto& sh : shards_) sh->finish_restore();
}

// ---- merged views ----------------------------------------------------------

std::vector<telemetry::FlightRecord> ParallelSimulator::merged_flight_records()
    const {
  std::vector<const telemetry::FlightRecorder*> recorders;
  recorders.reserve(flights_.size());
  for (const auto& f : flights_) recorders.push_back(f.get());
  return telemetry::FlightRecorder::merge(recorders);
}

telemetry::MetricsSnapshot ParallelSimulator::merged_metrics() const {
  // Merge by name across shard snapshots; each snapshot is already sorted,
  // so accumulate into sorted vectors via lower_bound insertion.
  telemetry::MetricsSnapshot merged;
  const auto counter_at = [&merged](const std::string& name) {
    auto it = std::lower_bound(
        merged.counters.begin(), merged.counters.end(), name,
        [](const auto& p, const std::string& n) { return p.first < n; });
    if (it == merged.counters.end() || it->first != name) {
      it = merged.counters.insert(it, {name, 0});
    }
    return it;
  };
  const auto gauge_at = [&merged](const std::string& name) {
    auto it = std::lower_bound(
        merged.gauges.begin(), merged.gauges.end(), name,
        [](const auto& p, const std::string& n) { return p.first < n; });
    if (it == merged.gauges.end() || it->first != name) {
      it = merged.gauges.insert(it, {name, 0});
    }
    return it;
  };
  for (const auto& reg : metrics_) {
    const telemetry::MetricsSnapshot snap = reg->snapshot();
    for (const auto& [name, value] : snap.counters) {
      counter_at(name)->second += value;
    }
    for (const auto& [name, value] : snap.gauges) {
      gauge_at(name)->second += value;
    }
    for (const auto& h : snap.histograms) {
      auto it = std::lower_bound(
          merged.histograms.begin(), merged.histograms.end(), h.name,
          [](const auto& a, const std::string& n) { return a.name < n; });
      if (it == merged.histograms.end() || it->name != h.name) {
        merged.histograms.insert(it, h);
        continue;
      }
      it->data.merge(h.data);
    }
  }
  return merged;
}

std::vector<std::string> ParallelSimulator::merged_span_layers() const {
  std::vector<std::string> layers;
  for (const auto& t : spans_) {
    for (const auto& name : t->layers()) layers.push_back(name);
  }
  std::sort(layers.begin(), layers.end());
  layers.erase(std::unique(layers.begin(), layers.end()), layers.end());
  return layers;
}

std::uint64_t ParallelSimulator::merged_crossings(std::string_view layer,
                                                  telemetry::Dir dir) const {
  std::uint64_t n = 0;
  for (const auto& t : spans_) n += t->crossings(layer, dir);
  return n;
}

std::uint64_t ParallelSimulator::merged_crossing_bytes(
    std::string_view layer, telemetry::Dir dir) const {
  std::uint64_t n = 0;
  for (const auto& t : spans_) n += t->crossing_bytes(layer, dir);
  return n;
}

std::string ParallelSimulator::cross_shard_trace_log() const {
  struct Line {
    std::int64_t when;
    std::size_t shard;
    std::size_t idx;  // drain order within the shard's trace
  };
  std::vector<Line> lines;
  for (std::size_t s = 0; s < traces_.size(); ++s) {
    const auto& events = traces_[s]->events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      lines.push_back(Line{events[i].when.ns(), s, i});
    }
  }
  // Per-shard drain order is chronological only per drain batch (a jittery
  // frame can be posted late for an early time); a global (time, shard)
  // sort makes the log comparable across runs regardless of batching.
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.idx < b.idx;
  });
  std::string out;
  out.reserve(lines.size() * 48);
  for (const Line& l : lines) {
    const TraceEvent& e = traces_[l.shard]->events()[l.idx];
    out += std::to_string(l.when);
    out += ' ';
    out += 's' + std::to_string(l.shard);
    out += ' ';
    out += traces_[l.shard]->category_name(e.category_id);
    out += ' ';
    out += std::to_string(e.size_bytes);
    out += '\n';
  }
  return out;
}

}  // namespace sublayer::sim
