// Event-engine internals behind sim::Simulator.
//
// Two interchangeable engines share one interface and one determinism
// contract (events fire in (time, insertion-seq) order):
//
//  - WheelEngine: a hierarchical timing wheel (Varghese & Lauck, SOSP '87)
//    — 4 levels x 256 slots of 1 ns ticks (~4.29 s horizon) plus an
//    overflow heap for the long tail.  schedule() and cancel() are O(1);
//    cancellation is generation-tagged, so cancelling an already-fired
//    event is a true no-op and the pending count stays exact.  This is
//    the production engine.
//
//  - LegacyHeapEngine: the pre-wheel binary heap with a lazily-scanned
//    cancellation list, preserved verbatim (including its O(cancelled)
//    scan on every pop and its stale-cancel pending-count skew) as the
//    measured baseline for bench_manyflow.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace sublayer::sim {

/// Handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

enum class EngineKind { kTimerWheel, kLegacyHeap };

/// Scheduler-op counters, exposed as Simulator::sched_stats() for the
/// many-flow benchmark's arm/cancel/expire rates.
struct SchedStats {
  std::uint64_t armed = 0;          // schedule() calls
  std::uint64_t cancelled = 0;      // cancels that removed a live event
  std::uint64_t stale_cancels = 0;  // no-op cancels (fired/unknown/repeat)
  std::uint64_t fired = 0;          // events handed to the run loop
  std::uint64_t cascades = 0;       // wheel: node re-files while advancing
  std::uint64_t overflow_arms = 0;  // wheel: armed beyond the horizon
};

/// One live pending event as the snapshot layer sees it: the engine's
/// whole replay-visible surface is that events fire in (when, seq) order
/// with the batchable flag steering burst dequeue.  Closures are not part
/// of the snapshot — owners re-derive them on restore (see snapshot.hpp).
struct PendingEvent {
  std::uint64_t when_ns = 0;
  std::uint64_t seq = 0;
  bool batchable = false;
  friend bool operator==(const PendingEvent&, const PendingEvent&) = default;
};

class EventEngine {
 public:
  using Fn = std::function<void()>;

  virtual ~EventEngine() = default;

  /// Registers `fn` to fire at `when` (>= every previously popped time).
  /// `batchable` marks events that burst dequeue may drain together with
  /// same-tick batchable neighbours (see pop_ready_batch); it never
  /// changes firing order, only how many events one pop may hand back.
  virtual EventId schedule(TimePoint when, Fn fn, bool batchable) = 0;
  EventId schedule(TimePoint when, Fn fn) {
    return schedule(when, std::move(fn), false);
  }
  virtual void cancel(EventId id) = 0;
  /// Extracts the earliest runnable event if its time is <= `deadline`;
  /// returns false (and extracts nothing) otherwise.
  virtual bool pop_if(TimePoint deadline, TimePoint& when, Fn& fn) = 0;
  /// Burst form of pop_if.  Extracts the earliest runnable event plus — if
  /// that event is batchable — up to `budget - 1` further events that (a)
  /// share its exact tick, (b) are themselves batchable, and (c) are
  /// consecutive in insertion-seq order with no non-batchable event
  /// interleaved.  Stopping at the first non-batchable same-tick event is
  /// what keeps burst traces bit-identical to budget=1 runs: every event
  /// still fires in (time, seq) order, a burst merely defers per-event
  /// flush work (Simulator::defer_flush) to the end of the run it belongs
  /// to.  Returns the number of extracted events (0: nothing runnable by
  /// `deadline`).  A non-batchable head is returned alone.
  virtual std::size_t pop_ready_batch(TimePoint deadline, TimePoint& when,
                                      std::vector<Fn>& out,
                                      std::size_t budget) = 0;
  virtual std::size_t pending() const = 0;
  /// Non-destructive peek: a LOWER bound on the next live event's time —
  /// never later than the true next event, possibly earlier (a slot's
  /// window start, or a cancelled husk's time, both count as bounds).
  /// False when no live event is pending.  Must not move the cursor or
  /// otherwise mutate the engine.
  virtual bool next_due_bound(TimePoint& when) const = 0;

  // ---- snapshot support (see sim/snapshot.hpp for the contract) ----
  /// Re-arms an event under its original insertion sequence number during
  /// restore.  `when` must lie strictly after the restored cursor (a
  /// quiescent snapshot holds no events at or before "now"), `seq` must be
  /// unique among restored events and below the restored next_seq().
  /// Does not count as an arm in stats() — the original arm already did.
  virtual EventId schedule_restored(TimePoint when, std::uint64_t seq, Fn fn,
                                    bool batchable) = 0;
  /// The insertion sequence number of a live event (0 if fired/unknown):
  /// how owners learn the (when, seq) identity of the events they hold.
  virtual std::uint64_t seq_of(EventId id) const = 0;
  virtual std::uint64_t next_seq() const = 0;
  virtual void set_next_seq(std::uint64_t next) = 0;
  /// Every live pending event, sorted by (when, seq).
  virtual std::vector<PendingEvent> pending_events() const = 0;
  /// Positions a fresh engine's cursor at the snapshot time before the
  /// schedule_restored calls (wheel slot arithmetic is cursor-relative).
  virtual void restore_cursor(TimePoint now) = 0;

  const SchedStats& stats() const { return stats_; }
  void set_stats(const SchedStats& s) { stats_ = s; }

 protected:
  SchedStats stats_;
};

/// Hierarchical timing wheel over virtual nanoseconds.
///
/// Level L slots cover 2^(8L) ns; an event lives at the lowest level whose
/// slot still distinguishes it from the cursor, cascading down as the
/// cursor approaches (<= 3 re-files per event, O(1) amortised).  Per-level
/// 256-bit occupancy maps make "advance to the next event" a handful of
/// ctz scans regardless of how far away it is.  FIFO among same-time
/// events is restored at fire time by a per-tick sort on the insertion
/// sequence number (a tick's batch is almost always size 1).
class WheelEngine final : public EventEngine {
 public:
  WheelEngine();

  using EventEngine::schedule;
  EventId schedule(TimePoint when, Fn fn, bool batchable) override;
  void cancel(EventId id) override;
  bool pop_if(TimePoint deadline, TimePoint& when, Fn& fn) override;
  std::size_t pop_ready_batch(TimePoint deadline, TimePoint& when,
                              std::vector<Fn>& out,
                              std::size_t budget) override;
  std::size_t pending() const override { return live_; }
  bool next_due_bound(TimePoint& when) const override;
  EventId schedule_restored(TimePoint when, std::uint64_t seq, Fn fn,
                            bool batchable) override;
  std::uint64_t seq_of(EventId id) const override;
  std::uint64_t next_seq() const override { return next_seq_; }
  void set_next_seq(std::uint64_t next) override { next_seq_ = next; }
  std::vector<PendingEvent> pending_events() const override;
  void restore_cursor(TimePoint now) override;

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlots = 256;      // per level
  static constexpr int kWords = kSlots / 64;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    std::uint64_t when = 0;  // absolute virtual time, ns
    std::uint64_t seq = 0;   // FIFO tie-break among same-time events
    std::uint32_t gen = 1;   // bumped on free; stale EventIds mismatch
    std::uint32_t next = kNil;  // intrusive slot-chain / freelist link
    bool cancelled = false;
    bool batchable = false;  // may join a same-tick burst (pop_ready_batch)
    Fn fn;
  };
  struct OverflowRef {
    std::uint64_t when = 0;
    std::uint64_t seq = 0;
    std::uint32_t node = kNil;
  };
  struct OverflowLater {
    bool operator()(const OverflowRef& a, const OverflowRef& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::uint32_t alloc_node(std::uint64_t when, Fn fn, bool batchable);
  void free_node(std::uint32_t idx);
  /// Files a node into the wheel / overflow heap / current-tick batch.
  void place(std::uint32_t idx);
  void push_slot(int level, int slot, std::uint32_t idx);
  /// Advances the cursor to the next occupied tick and builds its batch —
  /// but never past `deadline`: if the next event lies beyond it, the
  /// cursor stops at the deadline and nothing is extracted, so later
  /// schedules between now and that event can still be filed correctly.
  bool fill_due(std::uint64_t deadline);
  /// First occupied slot index >= `from` at `level`, or -1.
  int next_occupied(int level, int from) const;

  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t heads_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels][kWords] = {};
  std::priority_queue<OverflowRef, std::vector<OverflowRef>, OverflowLater>
      overflow_;
  std::uint64_t current_ = 0;       // cursor: tick of the due_ batch
  std::vector<std::uint32_t> due_;  // current tick's batch, seq-sorted
  std::size_t due_pos_ = 0;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
};

/// The pre-wheel engine, verbatim: binary heap plus a cancellation list
/// scanned linearly on every pop.  Kept only as the bench baseline; its
/// known stale-cancel leak (cancelling a fired event skews pending()
/// forever) is deliberately not fixed here.
class LegacyHeapEngine final : public EventEngine {
 public:
  using EventEngine::schedule;
  EventId schedule(TimePoint when, Fn fn, bool batchable) override;
  void cancel(EventId id) override;
  bool pop_if(TimePoint deadline, TimePoint& when, Fn& fn) override;
  std::size_t pop_ready_batch(TimePoint deadline, TimePoint& when,
                              std::vector<Fn>& out,
                              std::size_t budget) override;
  std::size_t pending() const override { return queue_.size() - cancelled_; }
  bool next_due_bound(TimePoint& when) const override;
  EventId schedule_restored(TimePoint when, std::uint64_t seq, Fn fn,
                            bool batchable) override;
  std::uint64_t seq_of(EventId id) const override;
  std::uint64_t next_seq() const override { return next_seq_; }
  void set_next_seq(std::uint64_t next) override { next_seq_ = next; }
  std::vector<PendingEvent> pending_events() const override;
  void restore_cursor(TimePoint) override {}  // heap order is cursor-free

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;  // tie-break: FIFO among same-time events
    std::uint64_t id = 0;
    bool batchable = false;
    Fn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<std::uint64_t> cancelled_ids_;
  std::size_t cancelled_ = 0;
  std::uint64_t next_seq_ = 1;
};

std::unique_ptr<EventEngine> make_engine(EngineKind kind);

}  // namespace sublayer::sim
