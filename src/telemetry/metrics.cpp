#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace sublayer::telemetry {

namespace detail {

std::uint64_t* unbound_counter_slot() {
  static thread_local std::uint64_t sink = 0;
  return &sink;
}

std::int64_t* unbound_gauge_slot() {
  static thread_local std::int64_t sink = 0;
  return &sink;
}

HistogramData* unbound_histogram_slot() {
  static thread_local HistogramData sink;
  return &sink;
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace
}  // namespace detail

std::uint64_t HistogramData::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank in [1, count]: q = 0 selects the smallest observation, q = 1 the
  // largest, and the mapping is exact for counts the double can represent.
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const std::uint64_t lower = detail::histogram_bucket_lower(i);
      const std::uint64_t mid = lower + detail::histogram_bucket_width(i) / 2;
      return std::clamp(mid, min, max);
    }
  }
  return max;  // unreachable when the bucket counts are consistent
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  min = count == 0 ? other.min : std::min(min, other.min);
  max = count == 0 ? other.max : std::max(max, other.max);
  count += other.count;
  sum += other.sum;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramData* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h.data;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    detail::append_json_string(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    detail::append_json_string(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    detail::append_json_string(out, h.name);
    out += ":{\"count\":" + std::to_string(h.data.count) +
           ",\"sum\":" + std::to_string(h.data.sum) +
           ",\"min\":" + std::to_string(h.data.min) +
           ",\"max\":" + std::to_string(h.data.max) +
           ",\"p50\":" + std::to_string(h.data.quantile(0.50)) +
           ",\"p90\":" + std::to_string(h.data.quantile(0.90)) +
           ",\"p99\":" + std::to_string(h.data.quantile(0.99)) +
           ",\"p999\":" + std::to_string(h.data.quantile(0.999)) +
           ",\"buckets\":[";
    // The HDR layout is wide and sparse, so buckets serialize as
    // [index, count] pairs; the fixed layout lets readers reconstruct the
    // value range of every index.
    bool first_bucket = true;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.data.buckets[i] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '[' + std::to_string(i) + ',' +
             std::to_string(h.data.buckets[i]) + ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsRegistry::MetricsRegistry() = default;

namespace {
// The thread's current-registry override; nullptr means "the process-wide
// default".  Shard scopes swap it around construction and run phases.
thread_local MetricsRegistry* tls_current_registry = nullptr;
}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  if (tls_current_registry != nullptr) return *tls_current_registry;
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry* MetricsRegistry::set_current(MetricsRegistry* reg) {
  MetricsRegistry* prev = tls_current_registry;
  tls_current_registry = reg;
  return prev;
}

std::uint32_t MetricsRegistry::intern(std::vector<std::string>& names,
                                      std::string_view name) {
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

MetricId MetricsRegistry::intern_counter(std::string_view name) {
  const std::uint32_t id = intern(counter_names_, name);
  while (counters_.size <= id) counters_.add();
  return MetricId{id};
}

MetricId MetricsRegistry::intern_gauge(std::string_view name) {
  const std::uint32_t id = intern(gauge_names_, name);
  while (gauges_.size <= id) gauges_.add();
  return MetricId{id};
}

MetricId MetricsRegistry::intern_histogram(std::string_view name) {
  const std::uint32_t id = intern(histogram_names_, name);
  while (histograms_.size <= id) histograms_.add();
  return MetricId{id};
}

std::uint64_t* MetricsRegistry::counter_slot(MetricId id) {
  return counters_.at(id.value);
}

std::int64_t* MetricsRegistry::gauge_slot(MetricId id) {
  return gauges_.at(id.value);
}

HistogramData* MetricsRegistry::histogram_slot(MetricId id) {
  return histograms_.at(id.value);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  for (std::uint32_t i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return *counters_.at(i);
  }
  return 0;
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  for (std::uint32_t i = 0; i < gauge_names_.size(); ++i) {
    if (gauge_names_[i] == name) return *gauges_.at(i);
  }
  return 0;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::uint32_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters.emplace_back(counter_names_[i], *counters_.at(i));
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::uint32_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i], *gauges_.at(i));
  }
  snap.histograms.reserve(histogram_names_.size());
  for (std::uint32_t i = 0; i < histogram_names_.size(); ++i) {
    snap.histograms.push_back(
        HistogramSnapshot{histogram_names_[i], *histograms_.at(i)});
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset() {
  for (std::uint32_t i = 0; i < counters_.size; ++i) *counters_.at(i) = 0;
  for (std::uint32_t i = 0; i < gauges_.size; ++i) *gauges_.at(i) = 0;
  for (std::uint32_t i = 0; i < histograms_.size; ++i) {
    *histograms_.at(i) = HistogramData{};
  }
}

}  // namespace sublayer::telemetry
