#include "telemetry/span.hpp"

#include <algorithm>
#include <cstdio>

#include "telemetry/flight_recorder.hpp"

namespace sublayer::telemetry {

namespace {
thread_local SpanTracer* tls_current_tracer = nullptr;
}  // namespace

SpanTracer& SpanTracer::instance() {
  if (tls_current_tracer != nullptr) return *tls_current_tracer;
  static SpanTracer tracer;
  return tracer;
}

SpanTracer* SpanTracer::set_current(SpanTracer* tracer) {
  SpanTracer* prev = tls_current_tracer;
  tls_current_tracer = tracer;
  return prev;
}

std::uint32_t SpanTracer::intern(std::string_view layer) {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == layer) return i;
  }
  names_.emplace_back(layer);
  totals_.emplace_back();
  return static_cast<std::uint32_t>(names_.size() - 1);
}

std::uint64_t SpanTracer::crossings(std::string_view layer, Dir dir) const {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == layer) {
      return totals_[i].count[static_cast<std::size_t>(dir)];
    }
  }
  return 0;
}

std::uint64_t SpanTracer::crossing_bytes(std::string_view layer,
                                         Dir dir) const {
  for (std::uint32_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == layer) {
      return totals_[i].bytes[static_cast<std::size_t>(dir)];
    }
  }
  return 0;
}

void SpanTracer::set_capacity(std::size_t spans) {
  if (ring_.size() > spans) {
    // Keep the newest `spans` entries, oldest first.
    std::vector<Span> kept;
    kept.reserve(spans);
    const std::size_t n = ring_.size();
    for (std::size_t i = n - spans; i < n; ++i) {
      kept.push_back(ring_[(head_ + i) % n]);
    }
    dropped_ += n - spans;
    ring_ = std::move(kept);
    head_ = 0;
  }
  capacity_ = spans;
}

std::string SpanTracer::to_json(std::size_t max_spans) const {
  std::string out = "[";
  const std::size_t n = ring_.size();
  const std::size_t take = std::min(max_spans, n);
  for (std::size_t i = 0; i < take; ++i) {
    // Oldest-first within the window of the `take` most recent spans.
    const Span& s = ring_[(head_ + (n - take) + i) % n];
    if (i) out += ',';
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "{\"layer\":\"%s\",\"dir\":\"%s\",\"enter_ns\":%lld,"
                  "\"exit_ns\":%lld,\"bytes\":%u}",
                  names_[s.layer].c_str(), to_string(s.dir),
                  static_cast<long long>(s.enter.ns()),
                  static_cast<long long>(s.exit.ns()), s.payload_bytes);
    out += buf;
  }
  out += ']';
  return out;
}

void SpanTracer::reset() {
  for (auto& t : totals_) t = PerLayer{};
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

std::vector<Span> SpanTracer::ring_spans() const {
  std::vector<Span> out;
  const std::size_t n = ring_.size();
  out.reserve(n);
  // head_ is the next overwrite position once full; before that the ring
  // is in insertion order already.
  const std::size_t start = n < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % n]);
  return out;
}

void SpanTracer::restore_ring(std::vector<Span> spans, std::uint64_t dropped) {
  ring_ = std::move(spans);
  // Stored oldest-first: once full, the next overwrite target is index 0,
  // which keeps the logical (oldest-first) sequence identical to the
  // straight-through tracer's from here on.
  head_ = 0;
  dropped_ = dropped;
}

}  // namespace sublayer::telemetry
