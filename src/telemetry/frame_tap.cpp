#include "telemetry/frame_tap.hpp"

namespace sublayer::telemetry {

namespace {
thread_local TapHub* tls_current_hub = nullptr;
}  // namespace

const char* to_string(TapPoint p) {
  switch (p) {
    case TapPoint::kPhyWire: return "phy.wire";
    case TapPoint::kFraming: return "datalink.framing";
    case TapPoint::kFcs: return "datalink.errordetect";
    case TapPoint::kArq: return "datalink.arq";
    case TapPoint::kDatalinkNet: return "netlayer.link";
    case TapPoint::kNetTransport: return "transport.segment";
  }
  return "unknown";
}

std::uint16_t tap_link_type(TapPoint p) {
  // LINKTYPE_USER0..USER15 are 147..162, reserved for private use — the
  // right home for sub-datalink frames no standard dissector understands.
  return static_cast<std::uint16_t>(147 + static_cast<int>(p));
}

TapHub* TapHub::current() { return tls_current_hub; }

TapHub* TapHub::set_current(TapHub* hub) {
  TapHub* prev = tls_current_hub;
  tls_current_hub = hub;
  return prev;
}

}  // namespace sublayer::telemetry
