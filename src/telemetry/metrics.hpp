// Unified metrics registry — the observability substrate shared by every
// sublayer in the tower.
//
// Design goals, in priority order:
//   1. Hot-path cost: a bound Counter/Gauge increment is two uint64 adds
//      (one to the instance-local value, one to the process-wide slot).
//      Name interning happens ONCE, at module construction; after that no
//      strings, maps, or hashes are touched.
//   2. Per-instance stats structs keep working: the fields of DmStats,
//      RdStats, ArqStats, ... are Counters that implicitly convert to
//      uint64_t, so every existing `stats().field` read compiles and sees
//      the instance-local value, while the registry aggregates the same
//      increments across all instances under one canonical name
//      (`<layer>.<sublayer>.<event>`).
//   3. Deterministic snapshots: snapshot() orders metrics by name, so a
//      given run always serializes identically (the repo's determinism
//      tests extend to telemetry).
//
// Threading: the registry itself is single-threaded, like the simulator it
// observes.  Under the parallel sharded engine each shard owns a private
// registry; instance() resolves through a thread-local "current registry"
// pointer (defaulting to the process-wide one), so modules constructed and
// run under a shard scope bind and increment shard-private slots with zero
// hot-path cost and no cross-thread sharing.  See sim/parallel.hpp.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sublayer::telemetry {

/// Interned handle for a registered metric name.
struct MetricId {
  std::uint32_t value = 0;
  friend bool operator==(MetricId, MetricId) = default;
};

/// Log-linear ("HDR") bucket layout shared by all histograms: values below
/// kHdrSubBuckets land in exact unit buckets; above that, every power-of-two
/// octave [2^e, 2^(e+1)) is split into kHdrSubBuckets linear sub-buckets.
/// Any value is therefore recorded in a bucket whose width is at most
/// 2^-kHdrSubBucketBits (6.25%) of its lower bound, which bounds the
/// relative error of every reconstructed quantile; the layout is fixed, so
/// histograms merge bucketwise across shards.
inline constexpr std::size_t kHdrSubBucketBits = 4;
inline constexpr std::size_t kHdrSubBuckets = std::size_t{1}
                                              << kHdrSubBucketBits;
/// Indices 0..kHdrSubBuckets-1 are the unit buckets; each following run of
/// kHdrSubBuckets indices is one octave, up to the 2^63 octave.
inline constexpr std::size_t kHistogramBuckets =
    (64 - kHdrSubBucketBits + 1) * kHdrSubBuckets;

namespace detail {
/// Bucket index for a value (see the layout note on kHistogramBuckets).
constexpr std::size_t histogram_bucket(std::uint64_t value) {
  if (value < kHdrSubBuckets) return static_cast<std::size_t>(value);
  const auto e = static_cast<std::size_t>(std::bit_width(value)) - 1;
  const auto sub = static_cast<std::size_t>(
      (value >> (e - kHdrSubBucketBits)) & (kHdrSubBuckets - 1));
  return ((e - kHdrSubBucketBits + 1) << kHdrSubBucketBits) | sub;
}
/// Smallest value mapping to bucket `index`.
constexpr std::uint64_t histogram_bucket_lower(std::size_t index) {
  if (index < kHdrSubBuckets) return index;
  const std::size_t e = (index >> kHdrSubBucketBits) + kHdrSubBucketBits - 1;
  const std::uint64_t sub = index & (kHdrSubBuckets - 1);
  return (std::uint64_t{1} << e) + (sub << (e - kHdrSubBucketBits));
}
/// Number of distinct values mapping to bucket `index`.
constexpr std::uint64_t histogram_bucket_width(std::size_t index) {
  if (index < kHdrSubBuckets) return 1;
  const std::size_t e = (index >> kHdrSubBucketBits) + kHdrSubBucketBits - 1;
  return std::uint64_t{1} << (e - kHdrSubBucketBits);
}
}  // namespace detail

struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;

  /// Value at quantile q in [0, 1]: the midpoint of the bucket holding the
  /// rank-q observation, clamped to [min, max].  Relative error is bounded
  /// by half a bucket width (<= 3.125% at 16 sub-buckets per octave).
  std::uint64_t quantile(double q) const;
  /// Bucketwise accumulation of `other` — the cross-shard merge path.
  void merge(const HistogramData& other);
};

struct HistogramSnapshot {
  std::string name;
  HistogramData data;
};

/// Deterministic point-in-time copy of the registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a counter by exact name; 0 if absent.
  std::uint64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  const HistogramData* histogram(std::string_view name) const;

  std::string to_json() const;
};

/// Registry of named counters, gauges, and histograms.  instance() is the
/// calling thread's *current* registry: the process-wide default, unless a
/// shard registry has been installed with set_current (sim::ParallelSimulator
/// does this around every shard construction and run phase).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Creates a private (e.g. per-shard) registry, independent of the
  /// process-wide one.
  MetricsRegistry();

  /// Installs `reg` as this thread's current registry (nullptr restores
  /// the process-wide default).  Returns the previous override (nullptr if
  /// the default was current) so scopes can nest.
  static MetricsRegistry* set_current(MetricsRegistry* reg);

  // ---- interning (module-construction time) ----
  MetricId intern_counter(std::string_view name);
  MetricId intern_gauge(std::string_view name);
  MetricId intern_histogram(std::string_view name);

  // ---- slot access (stable addresses for the process lifetime) ----
  std::uint64_t* counter_slot(MetricId id);
  std::int64_t* gauge_slot(MetricId id);
  HistogramData* histogram_slot(MetricId id);

  // ---- introspection ----
  /// Aggregate counter value by name; 0 if never interned.
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;
  std::size_t counter_count() const { return counter_names_.size(); }

  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }

  /// Zeroes every value but keeps all interned names and slot addresses —
  /// bound handles in live modules stay valid.  (Instance-local values in
  /// stats structs are unaffected; reset scopes the *global* view, which
  /// is what benches and tests delimit runs with.)
  void reset();

 private:
  // Slots live in deques-of-chunks so interning never moves an address a
  // bound handle already holds.  Chunks shrink for large slot types so a
  // registry with two histograms does not pre-commit 256 of them.
  template <typename T>
  struct SlotArena {
    static constexpr std::size_t kChunk = sizeof(T) >= 1024 ? 8 : 256;
    std::vector<std::unique_ptr<std::array<T, kChunk>>> chunks;
    T* at(std::uint32_t i) {
      return &(*chunks[i / kChunk])[i % kChunk];
    }
    const T* at(std::uint32_t i) const {
      return &(*chunks[i / kChunk])[i % kChunk];
    }
    std::uint32_t add() {
      const auto index = static_cast<std::uint32_t>(size);
      if (index % kChunk == 0) {
        chunks.push_back(std::make_unique<std::array<T, kChunk>>());
      }
      ++size;
      return index;
    }
    std::size_t size = 0;
  };

  std::uint32_t intern(std::vector<std::string>& names, std::string_view name);

  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  SlotArena<std::uint64_t> counters_;
  SlotArena<std::int64_t> gauges_;
  SlotArena<HistogramData> histograms_;
};

namespace detail {
/// Per-thread sink for unbound handles: increments land here and are never
/// read, keeping the hot path branch-free whether or not bind() ran.
/// (thread_local so unbound handles on concurrent shards never share a
/// cache line, let alone race.)
std::uint64_t* unbound_counter_slot();
std::int64_t* unbound_gauge_slot();
HistogramData* unbound_histogram_slot();
}  // namespace detail

/// A monotonically increasing metric.  Default-constructed it counts
/// locally only; after bind("layer.sublayer.event") every increment also
/// lands in the process-wide registry slot of that name.
class Counter {
 public:
  Counter() : slot_(detail::unbound_counter_slot()) {}

  void bind(std::string_view name) {
    auto& reg = MetricsRegistry::instance();
    slot_ = reg.counter_slot(reg.intern_counter(name));
  }

  void add(std::uint64_t n) {
    local_ += n;
    *slot_ += n;
  }
  Counter& operator++() {
    add(1);
    return *this;
  }
  void operator++(int) { add(1); }
  Counter& operator+=(std::uint64_t n) {
    add(n);
    return *this;
  }

  std::uint64_t value() const { return local_; }
  operator std::uint64_t() const { return local_; }

  /// Checkpoint/restore only: overwrites the instance-local value WITHOUT
  /// touching the registry slot — slots are restored wholesale by name
  /// (sim/snapshot.hpp), so going through add() would double-count.
  void restore_local(std::uint64_t v) { local_ = v; }

  friend bool operator==(const Counter& a, const Counter& b) {
    return a.local_ == b.local_;
  }
  friend auto operator<=>(const Counter& a, const Counter& b) {
    return a.local_ <=> b.local_;
  }
  friend std::ostream& operator<<(std::ostream& os, const Counter& c) {
    return os << c.local_;
  }

 private:
  std::uint64_t local_ = 0;
  std::uint64_t* slot_;
};

/// A point-in-time quantity that can move both ways.  The registry slot
/// aggregates the *sum of instance values*: set() forwards the delta, so
/// concurrent instances (e.g. per-connection buffer occupancy) add up.
class Gauge {
 public:
  Gauge() : slot_(detail::unbound_gauge_slot()) {}

  void bind(std::string_view name) {
    auto& reg = MetricsRegistry::instance();
    slot_ = reg.gauge_slot(reg.intern_gauge(name));
  }

  void set(std::int64_t v) {
    *slot_ += v - local_;
    local_ = v;
  }
  void add(std::int64_t d) {
    local_ += d;
    *slot_ += d;
  }
  /// Ratchet: keeps the high-water mark (peak buffer depth and the like).
  void set_max(std::int64_t v) {
    if (v > local_) set(v);
  }

  std::int64_t value() const { return local_; }
  operator std::uint64_t() const { return static_cast<std::uint64_t>(local_); }

  /// Checkpoint/restore only: see Counter::restore_local.
  void restore_local(std::int64_t v) { local_ = v; }

  friend bool operator==(const Gauge& a, const Gauge& b) {
    return a.local_ == b.local_;
  }
  friend auto operator<=>(const Gauge& a, const Gauge& b) {
    return a.local_ <=> b.local_;
  }
  friend std::ostream& operator<<(std::ostream& os, const Gauge& g) {
    return os << g.local_;
  }

 private:
  std::int64_t local_ = 0;
  std::int64_t* slot_;
};

/// Log-bucketed HDR histogram for latencies and sizes (see the layout note
/// on kHistogramBuckets; quantiles come out of HistogramData::quantile with
/// bounded relative error).  Registry-global only: observations from all
/// instances merge into the one named distribution.
class Histogram {
 public:
  Histogram() : slot_(detail::unbound_histogram_slot()) {}

  void bind(std::string_view name) {
    auto& reg = MetricsRegistry::instance();
    slot_ = reg.histogram_slot(reg.intern_histogram(name));
  }

  void observe(std::uint64_t value) {
    HistogramData& h = *slot_;
    ++h.buckets[detail::histogram_bucket(value)];
    if (h.count == 0 || value < h.min) h.min = value;
    if (value > h.max) h.max = value;
    ++h.count;
    h.sum += value;
  }

 private:
  HistogramData* slot_;
};

}  // namespace sublayer::telemetry
