// FrameTap — packet capture at every sublayer boundary.
//
// Six tap points cover the tower's seams, from the line-coded wire frame
// up to the transport segment.  A module reaching a seam calls
// SUBLAYER_TAP(point, dir, bytes); when no TapHub is installed on the
// thread (the default) that is a thread-local load and a branch, and the
// whole mechanism compiles away under -DSUBLAYER_TAPS_ENABLED=0.  When a
// hub is installed, enabled tap points count the frame and forward it —
// with its sim-time timestamp — to the hub's sink, typically a
// PcapngWriter (pcapng.hpp) so the run can be opened in Wireshark.
//
// The tapped bytes are exactly the PDU crossing that seam in that
// direction; sub-datalink taps carry line-coded or bit-stuffed content and
// use custom pcapng link types (LINKTYPE_USER0..), one per tap point.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "telemetry/span.hpp"

#ifndef SUBLAYER_TAPS_ENABLED
#define SUBLAYER_TAPS_ENABLED 1
#endif

namespace sublayer::telemetry {

enum class TapPoint : std::uint8_t {
  kPhyWire = 0,      // line-coded symbols, packed for the wire
  kFraming = 1,      // stuffed + flagged channel bits (packed)
  kFcs = 2,          // error-detection-tagged ARQ frame
  kArq = 3,          // ARQ frame at the ARQ <-> data-plane seam
  kDatalinkNet = 4,  // router frame at the datalink <-> netlayer seam
  kNetTransport = 5, // segment payload at the netlayer <-> transport seam
};
inline constexpr std::size_t kTapPointCount = 6;

const char* to_string(TapPoint p);
/// pcapng link type for a tap point's interface block: LINKTYPE_USER0 (147)
/// onwards, one per tap point.
std::uint16_t tap_link_type(TapPoint p);

class TapHub {
 public:
  using Sink = std::function<void(TapPoint, Dir, TimePoint, ByteView)>;

  TapHub() = default;
  TapHub(const TapHub&) = delete;
  TapHub& operator=(const TapHub&) = delete;

  /// The calling thread's current hub, or nullptr (the default): taps
  /// disabled on this thread.
  static TapHub* current();
  /// Installs `hub` as this thread's hub; returns the previous one.
  static TapHub* set_current(TapHub* hub);

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void enable(TapPoint p, bool on = true) {
    points_[static_cast<std::size_t>(p)].on = on;
  }
  void enable_all(bool on = true) {
    for (auto& pt : points_) pt.on = on;
  }
  bool enabled(TapPoint p) const {
    return points_[static_cast<std::size_t>(p)].on;
  }

  /// Hot path for an installed hub: counts the frame at an enabled tap
  /// point and forwards it to the sink with the sim-time timestamp.
  void tap(TapPoint p, Dir dir, ByteView frame) {
    PerPoint& pt = points_[static_cast<std::size_t>(p)];
    if (!pt.on) return;
    ++pt.frames;
    pt.bytes += frame.size();
    if (sink_) sink_(p, dir, simclock::now(), frame);
  }

  std::uint64_t frames(TapPoint p) const {
    return points_[static_cast<std::size_t>(p)].frames;
  }
  std::uint64_t bytes(TapPoint p) const {
    return points_[static_cast<std::size_t>(p)].bytes;
  }
  void reset_counters() {
    for (auto& pt : points_) {
      pt.frames = 0;
      pt.bytes = 0;
    }
  }

 private:
  struct PerPoint {
    bool on = false;
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
  };
  std::array<PerPoint, kTapPointCount> points_{};
  Sink sink_;
};

}  // namespace sublayer::telemetry

#if SUBLAYER_TAPS_ENABLED
/// The boundary-tap hook: free when no hub is installed on the thread, and
/// compiled out entirely under -DSUBLAYER_TAPS_ENABLED=0.  `view` must be
/// a ByteView (or convertible); it is only evaluated when a hub exists.
#define SUBLAYER_TAP(point, dir, view)                                     \
  do {                                                                     \
    if (::sublayer::telemetry::TapHub* sublayer_tap_hub_ =                 \
            ::sublayer::telemetry::TapHub::current();                      \
        sublayer_tap_hub_ != nullptr) {                                    \
      sublayer_tap_hub_->tap((point), (dir), (view));                      \
    }                                                                      \
  } while (0)
/// True when a hub is installed AND the point is enabled — guards frame
/// materialization that only exists for the tap (e.g. packing bit strings).
#define SUBLAYER_TAP_ACTIVE(point)                                         \
  (::sublayer::telemetry::TapHub::current() != nullptr &&                  \
   ::sublayer::telemetry::TapHub::current()->enabled(point))
#else
#define SUBLAYER_TAP(point, dir, view) \
  do {                                 \
  } while (0)
#define SUBLAYER_TAP_ACTIVE(point) false
#endif
