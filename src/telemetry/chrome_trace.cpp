#include "telemetry/chrome_trace.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>

namespace sublayer::telemetry {

namespace {

/// Minimal JSON string escaping; names and args come from internal
/// constants but a stray quote must not corrupt the file.
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Trace Event Format timestamps are microseconds; keep nanosecond
/// precision as a fixed three-decimal fraction.
void append_us(std::string& out, std::int64_t ns) {
  char buf[48];
  const char* sign = ns < 0 ? "-" : "";
  const std::uint64_t abs =
      ns < 0 ? -static_cast<std::uint64_t>(ns) : static_cast<std::uint64_t>(ns);
  std::snprintf(buf, sizeof buf, "%s%" PRIu64 ".%03u", sign, abs / 1000,
                static_cast<unsigned>(abs % 1000));
  out += buf;
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::size_t lanes)
    : lanes_(std::max<std::size_t>(1, lanes)) {}

void ChromeTraceWriter::complete(std::size_t lane, std::string name,
                                 std::int64_t ts_ns, std::int64_t dur_ns,
                                 std::string args_json, bool deterministic) {
  assert(lane < lanes_.size());
  Ev ev;
  ev.ph = 'X';
  ev.det = deterministic;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.name = std::move(name);
  ev.args = std::move(args_json);
  lanes_[lane].push_back(std::move(ev));
}

void ChromeTraceWriter::instant(std::size_t lane, std::string name,
                                std::int64_t ts_ns, std::string args_json,
                                bool deterministic) {
  assert(lane < lanes_.size());
  Ev ev;
  ev.ph = 'i';
  ev.det = deterministic;
  ev.ts_ns = ts_ns;
  ev.name = std::move(name);
  ev.args = std::move(args_json);
  lanes_[lane].push_back(std::move(ev));
}

void ChromeTraceWriter::counter(std::size_t lane, std::string name,
                                std::int64_t ts_ns, std::int64_t value,
                                bool deterministic) {
  assert(lane < lanes_.size());
  Ev ev;
  ev.ph = 'C';
  ev.det = deterministic;
  ev.ts_ns = ts_ns;
  ev.value = value;
  ev.name = std::move(name);
  lanes_[lane].push_back(std::move(ev));
}

void ChromeTraceWriter::metadata(std::size_t lane, std::string name,
                                 std::string args_json) {
  assert(lane < lanes_.size());
  Ev ev;
  ev.ph = 'M';
  ev.det = true;
  ev.ts_ns = 0;
  ev.name = std::move(name);
  ev.args = std::move(args_json);
  lanes_[lane].push_back(std::move(ev));
}

void ChromeTraceWriter::async_begin(std::size_t lane, std::string name,
                                    std::int64_t ts_ns, std::uint64_t id,
                                    bool deterministic) {
  assert(lane < lanes_.size());
  Ev ev;
  ev.ph = 'b';
  ev.det = deterministic;
  ev.id = id;
  ev.ts_ns = ts_ns;
  ev.name = std::move(name);
  lanes_[lane].push_back(std::move(ev));
}

void ChromeTraceWriter::async_end(std::size_t lane, std::string name,
                                  std::int64_t ts_ns, std::uint64_t id,
                                  bool deterministic) {
  assert(lane < lanes_.size());
  Ev ev;
  ev.ph = 'e';
  ev.det = deterministic;
  ev.id = id;
  ev.ts_ns = ts_ns;
  ev.name = std::move(name);
  lanes_[lane].push_back(std::move(ev));
}

std::size_t ChromeTraceWriter::event_count() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.size();
  return n;
}

std::string ChromeTraceWriter::render(bool canonical) const {
  // A stable global order — (virtual time, lane, per-lane append order) —
  // so the rendering never depends on which thread filled which lane first.
  struct Ref {
    std::int64_t ts_ns;
    std::size_t lane;
    std::size_t idx;
  };
  std::vector<Ref> refs;
  refs.reserve(event_count());
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    for (std::size_t i = 0; i < lanes_[lane].size(); ++i) {
      const Ev& ev = lanes_[lane][i];
      if (canonical && !ev.det) continue;
      refs.push_back(Ref{ev.ts_ns, lane, i});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& x, const Ref& y) {
    if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
    if (x.lane != y.lane) return x.lane < y.lane;
    return x.idx < y.idx;
  });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Ref& ref : refs) {
    const Ev& ev = lanes_[ref.lane][ref.idx];
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"ph\":\"";
    out += ev.ph;
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(ref.lane);
    out += ",\"ts\":";
    append_us(out, ev.ts_ns);
    if (ev.ph == 'X') {
      out += ",\"dur\":";
      append_us(out, ev.dur_ns);
    } else if (ev.ph == 'i') {
      out += ",\"s\":\"t\"";
    } else if (ev.ph == 'b' || ev.ph == 'e') {
      out += ",\"cat\":\"flow\",\"id\":";
      out += std::to_string(ev.id);
    }
    if (ev.ph == 'C') {
      out += ",\"args\":{\"value\":";
      out += std::to_string(ev.value);
      out += '}';
    } else if (!ev.args.empty() && (!canonical || ev.ph == 'M')) {
      out += ",\"args\":{";
      out += ev.args;
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

std::string ChromeTraceWriter::to_json() const { return render(false); }

std::string ChromeTraceWriter::canonical_json() const { return render(true); }

bool ChromeTraceWriter::write_file(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return wrote == json.size();
}

void ChromeTraceWriter::clear() {
  for (auto& lane : lanes_) lane.clear();
}

void export_flow_spans(const std::vector<FlightRecord>& records,
                       ChromeTraceWriter& writer) {
  // A flow's open and close can land on different shards in principle;
  // pin the span to the opening shard's lane.
  std::unordered_map<std::uint64_t, std::size_t> open_lane;
  for (const FlightRecord& r : records) {
    const auto type = static_cast<FlightType>(r.type);
    const std::size_t lane =
        std::min<std::size_t>(r.shard, writer.lane_count() - 1);
    if (type == FlightType::kFlowOpen) {
      open_lane.emplace(r.a, lane);
      writer.async_begin(lane, "flow", r.t_ns, r.a);
    } else if (type == FlightType::kFlowClose) {
      const auto it = open_lane.find(r.a);
      const std::size_t end_lane = it != open_lane.end() ? it->second : lane;
      writer.async_end(end_lane, "flow", r.t_ns, r.a);
    }
  }
}

}  // namespace sublayer::telemetry
