// Minimal pcapng (pcap-ng) writer and reader.
//
// Writes the three block types a capture needs — Section Header Block,
// one Interface Description Block per tap point, Enhanced Packet Blocks —
// with nanosecond timestamps (if_tsresol = 9), little-endian, structured
// exactly as the pcapng draft specifies, so the output opens in Wireshark,
// tshark, or any libpcap-based parser.  The reader walks the same block
// structure back out of an image; the round-trip test and scripts/check.sh
// both use it to validate emitted captures.
//
// The writer buffers packets in memory (a simulation capture is bounded by
// the run, and buffering keeps the tap hot path free of file I/O) and
// encodes the whole file image on demand.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/time.hpp"
#include "telemetry/span.hpp"

namespace sublayer::telemetry {

class TapHub;

class PcapngWriter {
 public:
  /// Adds an interface (one IDB in the file); returns its interface id.
  std::uint32_t add_interface(std::string name, std::uint16_t link_type);

  /// Appends a packet on `iface`, timestamped in sim nanoseconds.  `dir`
  /// becomes the EPB flags option (inbound/outbound bits); kDown is
  /// outbound (towards the wire).
  void packet(std::uint32_t iface, TimePoint ts, ByteView data, Dir dir);

  std::size_t interface_count() const { return ifaces_.size(); }
  std::size_t packet_count() const { return packets_.size(); }

  /// The full file image: SHB, IDBs, then EPBs in capture order.
  std::vector<std::uint8_t> encode() const;
  bool write_file(const std::string& path) const;

  void clear_packets() { packets_.clear(); }

 private:
  struct Iface {
    std::string name;
    std::uint16_t link_type = 0;
  };
  struct Pkt {
    std::uint32_t iface = 0;
    std::int64_t ts_ns = 0;
    std::uint32_t flags = 0;  // EPB epb_flags option value
    Bytes data;
  };
  std::vector<Iface> ifaces_;
  std::vector<Pkt> packets_;
};

struct PcapngPacket {
  std::uint32_t iface = 0;
  std::int64_t ts_ns = 0;
  std::uint32_t flags = 0;
  Bytes data;
};

struct PcapngFile {
  /// (if_name, link type) per Interface Description Block, in file order.
  std::vector<std::pair<std::string, std::uint16_t>> interfaces;
  std::vector<PcapngPacket> packets;
};

/// Parses a little-endian pcapng image; nullopt on any structural fault
/// (bad magic, inconsistent block lengths, out-of-range interface ids).
std::optional<PcapngFile> parse_pcapng(const std::uint8_t* data,
                                       std::size_t size);

/// Wires a TapHub to a writer: one interface per tap point (named by
/// to_string(TapPoint), link type tap_link_type(TapPoint)), every tapped
/// frame appended as a packet.  Enables all tap points.
void attach_pcap_sink(TapHub& hub, PcapngWriter& writer);

}  // namespace sublayer::telemetry
