// SpanTracer — records sublayer *boundary crossings*, the narrow waists
// the paper argues sublayering creates (Fig. 2, Figs. 5-6).
//
// Every time a PDU passes down through a sublayer (towards the wire) or up
// (towards the application), the sublayer records a crossing: which
// boundary, which direction, sim-time enter/exit, and the payload size.
// Crossings land in a bounded ring buffer (JSON-exportable timeline) and
// in per-boundary counters that never saturate, so long runs keep exact
// totals even after the ring wraps.
//
// The invariant this makes checkable (and the integration test asserts):
// on a lossless path, the number of down-crossings at boundary X summed
// over all endpoints equals the number of up-crossings at X — every PDU
// pushed below a boundary surfaces above the same boundary at the peer.
//
// Layer names are interned once at module construction; a hot-path record
// is a ring-slot write plus two counter adds.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "telemetry/flight_recorder.hpp"

namespace sublayer::telemetry {

enum class Dir : std::uint8_t { kDown = 0, kUp = 1 };

inline const char* to_string(Dir d) {
  return d == Dir::kDown ? "down" : "up";
}

struct Span {
  std::uint32_t layer = 0;  // interned boundary name
  Dir dir = Dir::kDown;
  TimePoint enter;
  TimePoint exit;
  std::uint32_t payload_bytes = 0;
};

class SpanTracer {
 public:
  /// The calling thread's current tracer: the process-wide default, unless
  /// a shard tracer has been installed with set_current (the parallel
  /// engine gives each shard a private tracer; see sim/parallel.hpp).
  static SpanTracer& instance();

  /// Creates a private (e.g. per-shard) tracer.
  SpanTracer() = default;

  /// Installs `tracer` as this thread's current tracer (nullptr restores
  /// the process-wide default); returns the previous override.
  static SpanTracer* set_current(SpanTracer* tracer);

  /// Interns a boundary name ("transport.rd", "datalink.phy", ...);
  /// idempotent, O(#layers), called at module construction only.
  std::uint32_t intern(std::string_view layer);

  /// Records a crossing whose enter and exit are both "now" on the sim
  /// clock — the common case for the event-driven stack, where a sublayer
  /// transformation is instantaneous in virtual time.  Inline (as is the
  /// explicit-time overload below): the batched data path records several
  /// crossings per frame, so the record must stay a handful of stores.
  void crossing(std::uint32_t layer, Dir dir, std::size_t payload_bytes) {
    const TimePoint now = simclock::now();
    crossing(layer, dir, now, now, payload_bytes);
  }

  /// Records a crossing with explicit enter/exit times (spans that bracket
  /// scheduled work, e.g. a MAC backoff before the frame reaches the wire).
  void crossing(std::uint32_t layer, Dir dir, TimePoint enter, TimePoint exit,
                std::size_t payload_bytes) {
    PerLayer& t = totals_[layer];
    const auto d = static_cast<std::size_t>(dir);
    ++t.count[d];
    t.bytes[d] += payload_bytes;
    if (auto* fr = FlightRecorder::current()) {
      fr->record(FlightType::kCrossing, names_[layer], enter, payload_bytes,
                 static_cast<std::uint64_t>(dir));
    }
    push(Span{layer, dir, enter, exit,
              static_cast<std::uint32_t>(payload_bytes)});
  }

  // ---- totals (exact for the whole run, survive ring wrap) ----
  std::uint64_t crossings(std::string_view layer, Dir dir) const;
  std::uint64_t crossing_bytes(std::string_view layer, Dir dir) const;

  /// All interned boundary names, in interning order.
  const std::vector<std::string>& layers() const { return names_; }

  // ---- ring buffer ----
  /// Caps the ring (drops the oldest recorded spans if shrinking).
  void set_capacity(std::size_t spans);
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// The most recent spans, oldest first, at most `max_spans`, as JSON.
  std::string to_json(std::size_t max_spans = 1024) const;

  /// Zeroes counters and empties the ring; interned names (and the ids
  /// modules hold) stay valid.
  void reset();

  // ---- checkpoint/restore support (orchestrated by sim/snapshot.hpp) ----
  std::size_t layer_count() const { return names_.size(); }
  /// Raw totals of a layer id: {count_down, bytes_down, count_up, bytes_up}.
  std::array<std::uint64_t, 4> totals_of(std::uint32_t layer) const {
    const PerLayer& t = totals_[layer];
    return {t.count[0], t.bytes[0], t.count[1], t.bytes[1]};
  }
  void restore_totals(std::uint32_t layer,
                      const std::array<std::uint64_t, 4>& v) {
    PerLayer& t = totals_[layer];
    t.count[0] = v[0];
    t.bytes[0] = v[1];
    t.count[1] = v[2];
    t.bytes[1] = v[3];
  }
  /// Ring contents oldest-first (the logical span sequence, independent of
  /// physical wrap position).
  std::vector<Span> ring_spans() const;
  /// Replaces the ring with `spans` (oldest first, size <= capacity) and
  /// the drop counter, continuing the straight-through ring exactly.
  void restore_ring(std::vector<Span> spans, std::uint64_t dropped);

  /// Default ring size.  The ring is a recent-window (to_json exports at
  /// most ~1k spans and the per-boundary totals are exact forever), so the
  /// default is sized to keep the cycling writes L2-resident: at 65536
  /// entries the ring's ~2.5 MB working set turned every few crossings
  /// into a DRAM eviction and cost the batched data path ~10% throughput.
  static constexpr std::size_t kDefaultCapacity = 8192;

 private:
  struct PerLayer {
    std::uint64_t count[2] = {0, 0};
    std::uint64_t bytes[2] = {0, 0};
  };

  void push(const Span& s) {
    if (ring_.size() < capacity_) {
      ring_.push_back(s);
      return;
    }
    if (capacity_ == 0) {
      ++dropped_;
      return;
    }
    ring_[head_] = s;
    // Wrap with a compare: this runs once per crossing forever after the
    // ring first fills, and a divide here is measurable on the batched
    // path.
    if (++head_ == capacity_) head_ = 0;
    ++dropped_;
  }

  std::vector<std::string> names_;
  std::vector<PerLayer> totals_;
  std::vector<Span> ring_;
  std::size_t head_ = 0;  // next write position once the ring is full
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;
};

}  // namespace sublayer::telemetry
