#include "telemetry/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace sublayer::telemetry {

namespace {

constexpr std::uint32_t kFlightMagic = 0x52464C53u;  // "SLFR", little-endian
constexpr std::uint32_t kFlightVersion = 1;
constexpr std::size_t kReasonBytes = 32;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + kReasonBytes;

/// Registry of live recorders, so a post-mortem can collect every shard's
/// ring no matter which thread triggers it.  Construction/destruction of
/// recorders is rare; record() never touches this.
struct RecorderRegistry {
  std::mutex mutex;
  std::vector<FlightRecorder*> live;
};

RecorderRegistry& recorder_registry() {
  static RecorderRegistry reg;
  return reg;
}

struct DumpConfig {
  std::mutex mutex;
  std::string dir;
  int next_id = 0;
  DumpConfig() {
    if (const char* env = std::getenv("SUBLAYER_FLIGHT_DIR")) dir = env;
  }
};

DumpConfig& dump_config() {
  static DumpConfig cfg;
  return cfg;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

}  // namespace

const char* to_string(FlightType t) {
  switch (t) {
    case FlightType::kEvent: return "event";
    case FlightType::kCrossing: return "crossing";
    case FlightType::kChaosApply: return "chaos-apply";
    case FlightType::kChaosHeal: return "chaos-heal";
    case FlightType::kCmTransition: return "cm-transition";
    case FlightType::kFlowOpen: return "flow-open";
    case FlightType::kFlowClose: return "flow-close";
    case FlightType::kViolation: return "violation";
    case FlightType::kAbort: return "abort";
    case FlightType::kMark: return "mark";
  }
  return "unknown";
}

std::string_view FlightRecord::tag_view() const {
  std::size_t n = 0;
  while (n < sizeof tag && tag[n] != '\0') ++n;
  return std::string_view(tag, n);
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {
  auto& reg = recorder_registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  reg.live.push_back(this);
}

FlightRecorder::~FlightRecorder() {
  auto& reg = recorder_registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::erase(reg.live, this);
}

namespace detail {
thread_local FlightRecorder* tls_current_recorder = nullptr;
}  // namespace detail

FlightRecorder* FlightRecorder::set_current(FlightRecorder* r) {
  FlightRecorder* prev = detail::tls_current_recorder;
  detail::tls_current_recorder = r;
  return prev;
}

void FlightRecorder::record(FlightType type, std::string_view tag,
                            TimePoint t, std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) {
  FlightRecord& r = ring_[static_cast<std::size_t>(total_ % ring_.size())];
  r.t_ns = t.ns();
  r.a = a;
  r.b = b;
  r.c = c;
  r.seq = static_cast<std::uint32_t>(total_);
  r.type = static_cast<std::uint16_t>(type);
  r.shard = shard_;
  const std::size_t n = std::min(tag.size(), sizeof r.tag - 1);
  std::memcpy(r.tag, tag.data(), n);
  std::memset(r.tag + n, 0, sizeof r.tag - n);
  ++total_;
}

void FlightRecorder::record_now(FlightType type, std::string_view tag,
                                std::uint64_t a, std::uint64_t b,
                                std::uint64_t c) {
  record(type, tag, simclock::now(), a, b, c);
}

std::size_t FlightRecorder::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(total_, ring_.size()));
}

std::vector<FlightRecord> FlightRecorder::recent() const {
  std::vector<FlightRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t start = total_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[static_cast<std::size_t>((start + i) % ring_.size())]);
  }
  return out;
}

void FlightRecorder::reset() {
  total_ = 0;
  std::fill(ring_.begin(), ring_.end(), FlightRecord{});
}

void FlightRecorder::restore(const std::vector<FlightRecord>& records,
                             std::uint64_t total) {
  std::fill(ring_.begin(), ring_.end(), FlightRecord{});
  total_ = total;
  // Physical positions follow total_ % capacity, so the i-th newest saved
  // record lands exactly where the straight-through recorder held it.
  const std::size_t n = std::min(records.size(), ring_.size());
  const std::uint64_t start = total_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    ring_[static_cast<std::size_t>((start + i) % ring_.size())] =
        records[records.size() - n + i];
  }
}

std::vector<std::uint8_t> FlightRecorder::serialize() const {
  const std::vector<FlightRecord> records = recent();
  std::vector<std::uint8_t> out(records.size() * sizeof(FlightRecord));
  if (!records.empty()) {
    std::memcpy(out.data(), records.data(), out.size());
  }
  return out;
}

std::vector<FlightRecord> FlightRecorder::merge(
    const std::vector<const FlightRecorder*>& recorders) {
  std::vector<FlightRecord> all;
  for (const FlightRecorder* r : recorders) {
    if (r == nullptr) continue;
    const auto recs = r->recent();
    all.insert(all.end(), recs.begin(), recs.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const FlightRecord& x, const FlightRecord& y) {
                     if (x.t_ns != y.t_ns) return x.t_ns < y.t_ns;
                     if (x.shard != y.shard) return x.shard < y.shard;
                     return x.seq < y.seq;
                   });
  return all;
}

void set_flight_dump_dir(std::string dir) {
  auto& cfg = dump_config();
  const std::lock_guard<std::mutex> lock(cfg.mutex);
  cfg.dir = std::move(dir);
}

std::string flight_dump_dir() {
  auto& cfg = dump_config();
  const std::lock_guard<std::mutex> lock(cfg.mutex);
  return cfg.dir;
}

std::vector<std::uint8_t> encode_flight_dump(
    const std::vector<FlightRecord>& records, std::string_view reason) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + records.size() * sizeof(FlightRecord));
  put_u32(out, kFlightMagic);
  put_u32(out, kFlightVersion);
  put_u64(out, records.size());
  char padded[kReasonBytes] = {};
  std::memcpy(padded, reason.data(),
              std::min(reason.size(), kReasonBytes - 1));
  out.insert(out.end(), padded, padded + kReasonBytes);
  const std::size_t body = records.size() * sizeof(FlightRecord);
  const std::size_t at = out.size();
  out.resize(at + body);
  if (body != 0) std::memcpy(out.data() + at, records.data(), body);
  return out;
}

std::optional<FlightDump> parse_flight_dump(const std::uint8_t* data,
                                            std::size_t size) {
  if (data == nullptr || size < kHeaderBytes) return std::nullopt;
  if (get_u32(data) != kFlightMagic) return std::nullopt;
  if (get_u32(data + 4) != kFlightVersion) return std::nullopt;
  const std::uint64_t count = get_u64(data + 8);
  if (count > (size - kHeaderBytes) / sizeof(FlightRecord)) {
    return std::nullopt;
  }
  if (size != kHeaderBytes + count * sizeof(FlightRecord)) {
    return std::nullopt;
  }
  FlightDump dump;
  const char* reason = reinterpret_cast<const char*>(data + 16);
  std::size_t rn = 0;
  while (rn < kReasonBytes && reason[rn] != '\0') ++rn;
  dump.reason.assign(reason, rn);
  dump.records.resize(static_cast<std::size_t>(count));
  if (count != 0) {
    std::memcpy(dump.records.data(), data + kHeaderBytes,
                dump.records.size() * sizeof(FlightRecord));
  }
  return dump;
}

std::string dump_all_flight_recorders(std::string_view reason) {
  std::string dir;
  int id = 0;
  {
    auto& cfg = dump_config();
    const std::lock_guard<std::mutex> lock(cfg.mutex);
    if (cfg.dir.empty()) return {};
    dir = cfg.dir;
    id = cfg.next_id++;
  }
  std::vector<const FlightRecorder*> recorders;
  {
    auto& reg = recorder_registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    recorders.assign(reg.live.begin(), reg.live.end());
  }
  const auto merged = FlightRecorder::merge(recorders);
  // File names stay shell-safe whatever the reason string holds.
  std::string slug;
  for (const char c : reason.substr(0, 24)) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    slug += ok ? c : '-';
  }
  const std::string path =
      dir + "/flightrec-" + slug + "-" + std::to_string(id) + ".slfr";
  const auto image = encode_flight_dump(merged, reason);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return {};
  const std::size_t wrote =
      image.empty() ? 0 : std::fwrite(image.data(), 1, image.size(), f);
  std::fclose(f);
  return wrote == image.size() ? path : std::string{};
}

}  // namespace sublayer::telemetry
