// FlightRecorder — the black box of a simulation run.
//
// A fixed-size ring of 64-byte binary records holding the most recent
// happenings on one shard (or, in monolithic runs, one thread): simulator
// events, sublayer boundary crossings, chaos fault applications and heals,
// and connection-manager state transitions.  Recording is a ring-slot
// write; nothing allocates after construction.
//
// The recorder follows the telemetry layer's thread-local "current"
// convention (metrics.hpp, span.hpp) with one difference: the default is
// *no recorder* — current() returns nullptr until a recorder is installed,
// so every recording site is a TLS load and a branch when the flight
// recorder is off.  sim::ParallelSimulator owns one recorder per shard and
// installs it in ShardScope; monolithic runs install one explicitly.
//
// Post-mortems: when chaos::InvariantMonitor sees its first violation, or
// the parallel engine aborts a run on an error, every live recorder is
// merged — by (time, shard, seq), the engine's cross-shard ordering
// convention — and dumped to an SLFR file (binary header + raw records)
// under the configured dump directory.  Dumping is a no-op until
// set_flight_dump_dir() (or SUBLAYER_FLIGHT_DIR in the environment) names
// a directory, so tests that intentionally violate invariants do not
// litter the build tree.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/time.hpp"

namespace sublayer::telemetry {

enum class FlightType : std::uint16_t {
  kEvent = 1,         // simulator event fired: a = events_processed
  kCrossing = 2,      // span crossing: a = bytes, b = Dir, tag = layer
  kChaosApply = 3,    // a = fault id, b = FaultKind, c = link/router
  kChaosHeal = 4,     // a = fault id, b = FaultKind, c = link/router
  kCmTransition = 5,  // a = flow id, b = from state, c = to state
  kFlowOpen = 6,      // a = flow id (CM reached established)
  kFlowClose = 7,     // a = flow id (CM left established/time-wait)
  kViolation = 8,     // invariant violation, tag = truncated message
  kAbort = 9,         // engine abort, tag = truncated reason
  kMark = 10,         // free-form annotation from tests/benches
};

const char* to_string(FlightType t);

/// Fixed 64-byte POD — also the on-disk record layout (little-endian
/// fields, NUL-padded tag).
struct FlightRecord {
  std::int64_t t_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t seq = 0;  // per-recorder record sequence number
  std::uint16_t type = 0;
  std::uint16_t shard = 0;
  char tag[24] = {};

  std::string_view tag_view() const;
  friend bool operator==(const FlightRecord&, const FlightRecord&) = default;
};
static_assert(sizeof(FlightRecord) == 64);
static_assert(std::is_trivially_copyable_v<FlightRecord>);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The calling thread's current recorder, or nullptr (the default):
  /// recording disabled.  Inline: every telemetry crossing checks this.
  static FlightRecorder* current();
  /// Installs `r` as this thread's recorder; returns the previous one so
  /// scopes can nest.
  static FlightRecorder* set_current(FlightRecorder* r);

  /// Stamped into every record (the merge key's second component).
  void set_shard(std::uint16_t shard) { shard_ = shard; }
  std::uint16_t shard() const { return shard_; }

  void record(FlightType type, std::string_view tag, TimePoint t,
              std::uint64_t a = 0, std::uint64_t b = 0, std::uint64_t c = 0);
  /// record() stamped with simclock::now().
  void record_now(FlightType type, std::string_view tag, std::uint64_t a = 0,
                  std::uint64_t b = 0, std::uint64_t c = 0);

  /// Records written over the recorder's lifetime (>= size() once the ring
  /// has wrapped).
  std::uint64_t total_records() const { return total_; }
  std::size_t size() const;
  std::size_t capacity() const { return ring_.size(); }
  /// The ring's contents, oldest first.
  std::vector<FlightRecord> recent() const;
  void reset();

  /// Checkpoint/restore: replaces the ring with `records` (oldest first,
  /// recent()'s shape) and the lifetime count.  Record seqs are stamped
  /// from total_, so restoring it makes post-resume seqs continue the
  /// straight-through numbering monotonically — merged (time, shard, seq)
  /// order stays stable across a restore.
  void restore(const std::vector<FlightRecord>& records, std::uint64_t total);

  /// The ring's raw bytes, oldest first — one recorder's deterministic
  /// replay artifact.
  std::vector<std::uint8_t> serialize() const;

  /// Rings of several recorders merged into one stream in (time, shard,
  /// seq) order — the parallel engine's cross-shard ordering convention.
  /// Ties beyond seq (two recorders claiming one shard id) keep the
  /// recorders' argument order.
  static std::vector<FlightRecord> merge(
      const std::vector<const FlightRecorder*>& recorders);

 private:
  std::vector<FlightRecord> ring_;
  std::uint64_t total_ = 0;
  std::uint16_t shard_ = 0;
};

namespace detail {
/// The per-thread recorder slot behind FlightRecorder::current(); exposed
/// so the null check compiles down to one TLS load on hot paths.
extern thread_local FlightRecorder* tls_current_recorder;
}  // namespace detail

inline FlightRecorder* FlightRecorder::current() {
  return detail::tls_current_recorder;
}

// ---- post-mortem dump management (process-wide) ----------------------------

/// Directory for automatic dumps; the empty string (the default, unless
/// the SUBLAYER_FLIGHT_DIR environment variable is set) disables them.
void set_flight_dump_dir(std::string dir);
std::string flight_dump_dir();

/// Merges every live recorder in the process and writes
/// `<dir>/flightrec-<reason>-<n>.slfr`.  Returns the path, or an empty
/// string when dumping is disabled or the write fails.  Thread-safe.
std::string dump_all_flight_recorders(std::string_view reason);

struct FlightDump {
  std::string reason;
  std::vector<FlightRecord> records;
};

/// The SLFR container: magic, version, record count, reason, raw records.
std::vector<std::uint8_t> encode_flight_dump(
    const std::vector<FlightRecord>& records, std::string_view reason);
std::optional<FlightDump> parse_flight_dump(const std::uint8_t* data,
                                            std::size_t size);

}  // namespace sublayer::telemetry
