// Chrome-trace JSON export of a simulation run.
//
// ChromeTraceWriter collects trace events in the Trace Event Format that
// chrome://tracing and Perfetto load directly: complete ("X") spans,
// instants ("i"), counters ("C"), and async begin/end ("b"/"e") pairs for
// flow lifecycles.  sim::ParallelSimulator drives it — per-shard epoch
// spans, mailbox drain counters, barrier-task instants, and per-worker
// barrier-wait spans — and transport flow open/close records from the
// flight recorder become async "flow" spans.
//
// Lanes, not threads: each event lands in a fixed lane (rendered as the
// tid) chosen by the caller.  The engine assigns every shard its own lane
// and every worker thread its own lane, so concurrent writers never touch
// the same vector and the writer needs no locks.
//
// Determinism: events flagged deterministic carry only virtual-time
// payloads.  canonical_json() renders just those events, with wall-clock
// args stripped, and is byte-identical across thread counts for one
// workload — the parallel replay test asserts exactly that.  to_json()
// renders everything, wall-clock durations included, for humans.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/flight_recorder.hpp"

namespace sublayer::telemetry {

class ChromeTraceWriter {
 public:
  /// `lanes` fixes the lane count up front; events from distinct lanes may
  /// be appended concurrently.
  explicit ChromeTraceWriter(std::size_t lanes);
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  std::size_t lane_count() const { return lanes_.size(); }

  /// A complete ("X") span.  `args_json` must be a JSON object fragment
  /// without the braces (e.g. `"events":12`), or empty.
  void complete(std::size_t lane, std::string name, std::int64_t ts_ns,
                std::int64_t dur_ns, std::string args_json = {},
                bool deterministic = true);
  /// A thread-scoped instant ("i") event.
  void instant(std::size_t lane, std::string name, std::int64_t ts_ns,
               std::string args_json = {}, bool deterministic = true);
  /// A counter ("C") sample; the value survives into canonical_json().
  void counter(std::size_t lane, std::string name, std::int64_t ts_ns,
               std::int64_t value, bool deterministic = true);
  /// A metadata ("M") record at ts 0.  Unlike span args, metadata args
  /// survive into canonical_json() — they must describe run configuration
  /// (shard maps, latency matrices), never wall-clock measurements, so the
  /// canonical render stays byte-identical across worker thread counts.
  void metadata(std::size_t lane, std::string name, std::string args_json);
  /// An async span pair (cat "flow"), matched by `id`.
  void async_begin(std::size_t lane, std::string name, std::int64_t ts_ns,
                   std::uint64_t id, bool deterministic = true);
  void async_end(std::size_t lane, std::string name, std::int64_t ts_ns,
                 std::uint64_t id, bool deterministic = true);

  std::size_t event_count() const;

  /// Every event, wall-clock args included — the human-facing export.
  std::string to_json() const;
  /// Deterministic events only, args stripped (counter values kept),
  /// virtual time only — byte-identical across thread counts.
  std::string canonical_json() const;

  bool write_file(const std::string& path) const;
  void clear();

 private:
  struct Ev {
    char ph = 'X';
    bool det = true;
    std::uint64_t id = 0;       // async events only
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;    // complete events only
    std::int64_t value = 0;     // counter events only
    std::string name;
    std::string args;           // object fragment without braces
  };

  std::string render(bool canonical) const;

  std::vector<std::vector<Ev>> lanes_;
};

/// Turns kFlowOpen/kFlowClose flight records into async "flow" spans on
/// the record's shard lane, matched by flow id (record field `a`).
void export_flow_spans(const std::vector<FlightRecord>& records,
                       ChromeTraceWriter& writer);

}  // namespace sublayer::telemetry
